/**
 * @file
 * Throughput regression harness (BENCH_throughput.json).
 *
 * Runs a fixed set of figure-12/figure-14 cells twice each — once
 * under the tick-per-cycle reference loop and once under the
 * event-driven loop — and reports simulated cycles per wall-clock
 * second.  The two runs must produce bit-identical aggregate IPC
 * (the loops are equivalent by construction; this harness is one of
 * the locks).
 *
 * Modes:
 *   perf_throughput [--out=FILE]
 *       Measure and write the JSON report (default
 *       BENCH_throughput.json in the current directory).
 *   perf_throughput --check=FILE [--min-speedup=X] [--tolerance=X]
 *       Measure, then gate against a committed report:
 *         - aggregate IPC must match the committed value exactly
 *           (the simulator is deterministic across machines);
 *         - for every cell the event loop must reach at least 75 %
 *           of the reference loop's live throughput;
 *         - representative cells must carry a committed
 *           event-vs-pre-PR speedup >= --min-speedup (default 5);
 *         - live event throughput must be within --tolerance
 *           (default 10x, loose because CI hardware differs) of the
 *           committed value.
 *
 * The pre-PR numbers embedded below were measured with this same
 * timing loop at the tick-per-cycle baseline commit (dc21489) on the
 * reference container; they are constants of the comparison, not
 * re-measured.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace
{

constexpr srs::Cycle kCyclesPerCell = 1'000'000;
constexpr std::uint32_t kNumCores = 8;
constexpr std::uint32_t kSwapRate = 6;

struct CellSpec
{
    const char *name;
    const char *workload;
    srs::MitigationKind mitigation;
    std::uint32_t trh;
    /** acceptance-gated cell (the figure's representative workload) */
    bool representative;
    /** cyc/s at the pre-PR tick-per-cycle baseline, same machine */
    double prePrCyclesPerSec;
};

const CellSpec kCells[] = {
    {"fig12_gups_srs", "gups", srs::MitigationKind::Srs, 1200,
     true, 134722.0},
    {"fig12_mcf_rrs", "mcf", srs::MitigationKind::Rrs, 2400,
     false, 244844.0},
    {"fig12_gcc_baseline", "gcc", srs::MitigationKind::None, 4800,
     false, 375084.0},
    {"fig14_gups_scale_srs", "gups", srs::MitigationKind::ScaleSrs, 1200,
     true, 129527.0},
    {"fig14_comm1_srs", "comm1", srs::MitigationKind::Srs, 4800,
     false, 626425.0},
};

struct CellResult
{
    const CellSpec *spec = nullptr;
    double aggregateIpc = 0.0;
    double referenceSeconds = 0.0;
    double eventSeconds = 0.0;

    double referenceCps() const { return kCyclesPerCell / referenceSeconds; }
    double eventCps() const { return kCyclesPerCell / eventSeconds; }
    double eventVsReference() const { return eventCps() / referenceCps(); }
    double eventVsPrePr() const
    {
        return eventCps() / spec->prePrCyclesPerSec;
    }
};

double
timedRun(const srs::SystemConfig &sysCfg,
         const srs::WorkloadProfile &profile,
         const srs::ExperimentConfig &exp, double &ipcOut)
{
    const auto t0 = std::chrono::steady_clock::now();
    const srs::RunResult r = srs::runWorkload(sysCfg, profile, exp);
    const auto t1 = std::chrono::steady_clock::now();
    ipcOut = r.aggregateIpc;
    return std::chrono::duration<double>(t1 - t0).count();
}

CellResult
measureCell(const CellSpec &spec)
{
    srs::ExperimentConfig exp;
    exp.cycles = kCyclesPerCell;
    exp.epochLen = kCyclesPerCell / 2 - 10'000;
    exp.numCores = kNumCores;

    srs::SystemConfig sysCfg = srs::makeSystemConfig(
        exp, spec.mitigation, spec.trh, kSwapRate);
    const srs::WorkloadProfile profile =
        srs::profileByName(spec.workload);

    CellResult res;
    res.spec = &spec;

    // Best-of-two wall-clock per loop: the minimum is the run least
    // disturbed by the host, which is the quantity being tracked.
    double refIpc = 0.0;
    sysCfg.referenceLoop = true;
    res.referenceSeconds = timedRun(sysCfg, profile, exp, refIpc);
    res.referenceSeconds =
        std::min(res.referenceSeconds, timedRun(sysCfg, profile, exp, refIpc));

    double evIpc = 0.0;
    sysCfg.referenceLoop = false;
    res.eventSeconds = timedRun(sysCfg, profile, exp, evIpc);
    res.eventSeconds =
        std::min(res.eventSeconds, timedRun(sysCfg, profile, exp, evIpc));

    if (refIpc != evIpc) {
        std::fprintf(stderr,
                     "FAIL %s: reference ipc %.17g != event ipc %.17g\n",
                     spec.name, refIpc, evIpc);
        std::exit(1);
    }
    res.aggregateIpc = evIpc;
    return res;
}

std::string
renderJson(const std::vector<CellResult> &results)
{
    double refTotal = 0.0;
    double evTotal = 0.0;
    for (const CellResult &r : results) {
        refTotal += r.referenceSeconds;
        evTotal += r.eventSeconds;
    }
    const double nCells = static_cast<double>(results.size());

    std::ostringstream os;
    char buf[256];
    os << "{\n"
       << "  \"schema\": \"srs-bench-throughput-v1\",\n"
       << "  \"cycles_per_cell\": " << kCyclesPerCell << ",\n"
       << "  \"num_cores\": " << kNumCores << ",\n"
       << "  \"pre_pr_baseline\": \"tick-per-cycle loop at dc21489, "
          "same timing loop and machine\",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\n"
            "      \"name\": \"%s\",\n"
            "      \"workload\": \"%s\",\n"
            "      \"mitigation\": \"%s\",\n"
            "      \"trh\": %u,\n"
            "      \"swap_rate\": %u,\n"
            "      \"representative\": %s,\n"
            "      \"aggregate_ipc\": %.6f,\n",
            r.spec->name, r.spec->workload,
            srs::mitigationKindName(r.spec->mitigation), r.spec->trh,
            kSwapRate, r.spec->representative ? "true" : "false",
            r.aggregateIpc);
        os << buf;
        std::snprintf(
            buf, sizeof(buf),
            "      \"reference_cycles_per_sec\": %.0f,\n"
            "      \"event_cycles_per_sec\": %.0f,\n"
            "      \"event_vs_reference\": %.2f,\n"
            "      \"pre_pr_cycles_per_sec\": %.0f,\n"
            "      \"event_vs_pre_pr\": %.2f\n",
            r.referenceCps(), r.eventCps(), r.eventVsReference(),
            r.spec->prePrCyclesPerSec, r.eventVsPrePr());
        os << buf;
        os << (i + 1 < results.size() ? "    },\n" : "    }\n");
    }
    os << "  ],\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"totals\": {\n"
        "    \"reference_cells_per_sec\": %.3f,\n"
        "    \"event_cells_per_sec\": %.3f,\n"
        "    \"event_vs_reference\": %.2f\n"
        "  }\n",
        nCells / refTotal, nCells / evTotal, refTotal / evTotal);
    os << buf << "}\n";
    return os.str();
}

/**
 * Minimal field extraction for this harness's own schema: the value
 * of @p key inside the committed cell object named @p cell.
 */
bool
extractField(const std::string &json, const std::string &cell,
             const std::string &key, std::string &out)
{
    const std::size_t cellPos = json.find("\"" + cell + "\"");
    if (cellPos == std::string::npos)
        return false;
    const std::size_t keyPos = json.find("\"" + key + "\":", cellPos);
    if (keyPos == std::string::npos)
        return false;
    std::size_t v = keyPos + key.size() + 3;
    while (v < json.size() && json[v] == ' ')
        ++v;
    std::size_t e = v;
    while (e < json.size() && json[e] != ',' && json[e] != '\n')
        ++e;
    out = json.substr(v, e - v);
    return true;
}

int
checkAgainst(const std::vector<CellResult> &results,
             const std::string &path, double minSpeedup,
             double tolerance)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "FAIL: cannot read %s\n", path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();

    int failures = 0;
    for (const CellResult &r : results) {
        const std::string name = r.spec->name;

        // Determinism lock: IPC must match the committed value
        // exactly at the committed precision.
        std::string committedIpc;
        char liveIpc[64];
        std::snprintf(liveIpc, sizeof(liveIpc), "%.6f", r.aggregateIpc);
        if (!extractField(json, name, "aggregate_ipc", committedIpc)) {
            std::fprintf(stderr, "FAIL %s: missing in %s\n",
                         name.c_str(), path.c_str());
            ++failures;
            continue;
        }
        if (committedIpc != liveIpc) {
            std::fprintf(stderr,
                         "FAIL %s: ipc drifted (committed %s, live %s)\n",
                         name.c_str(), committedIpc.c_str(), liveIpc);
            ++failures;
        }

        // The event loop must never lose to the reference loop by
        // more than measurement noise.
        if (r.eventVsReference() < 0.75) {
            std::fprintf(stderr,
                         "FAIL %s: event loop %.2fx of reference\n",
                         name.c_str(), r.eventVsReference());
            ++failures;
        }

        // Committed speedup claim on the representative cells.
        if (r.spec->representative) {
            std::string committedSpeedup;
            if (!extractField(json, name, "event_vs_pre_pr",
                              committedSpeedup) ||
                std::atof(committedSpeedup.c_str()) < minSpeedup) {
                std::fprintf(
                    stderr,
                    "FAIL %s: committed event_vs_pre_pr %s < %.2f\n",
                    name.c_str(), committedSpeedup.c_str(), minSpeedup);
                ++failures;
            }
        }

        // Loose cross-machine floor on live throughput.
        std::string committedCps;
        if (extractField(json, name, "event_cycles_per_sec",
                         committedCps)) {
            const double floorCps =
                std::atof(committedCps.c_str()) / tolerance;
            if (r.eventCps() < floorCps) {
                std::fprintf(stderr,
                             "FAIL %s: live %.0f cyc/s below floor "
                             "%.0f (committed/%.0f)\n",
                             name.c_str(), r.eventCps(), floorCps,
                             tolerance);
                ++failures;
            }
        }

        std::printf("%-22s ipc=%s  ref=%8.0f cyc/s  event=%8.0f cyc/s  "
                    "(%.2fx ref, %.2fx pre-PR)\n",
                    name.c_str(), liveIpc, r.referenceCps(),
                    r.eventCps(), r.eventVsReference(),
                    r.eventVsPrePr());
    }
    if (failures > 0) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("all throughput checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_throughput.json";
    std::string checkPath;
    double minSpeedup = 5.0;
    double tolerance = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg.rfind("--check=", 0) == 0) {
            checkPath = arg.substr(8);
        } else if (arg.rfind("--min-speedup=", 0) == 0) {
            minSpeedup = std::atof(arg.c_str() + 14);
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(arg.c_str() + 12);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out=FILE | --check=FILE "
                         "[--min-speedup=X] [--tolerance=X]]\n",
                         argv[0]);
            return 2;
        }
    }

    srs::setQuietLogging(true);

    std::vector<CellResult> results;
    results.reserve(std::size(kCells));
    for (const CellSpec &spec : kCells)
        results.push_back(measureCell(spec));

    if (!checkPath.empty())
        return checkAgainst(results, checkPath, minSpeedup, tolerance);

    const std::string json = renderJson(results);
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    out << json;
    std::printf("%s", json.c_str());
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
