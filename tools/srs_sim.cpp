/**
 * @file
 * srs_sim — the command-line front-end of the library.
 *
 * Subcommands:
 *
 *   perf     run one workload under one defense and print IPC and
 *            normalized performance (optionally as CSV):
 *              srs_sim perf --workload=gcc --mitigation=scale-srs
 *                      --trh=1200 --rate=3 [--tracker=misra-gries]
 *                      [--cycles=N] [--epoch=N] [--csv]
 *
 *   attack   evaluate the Juggernaut analytical model (and optional
 *            Monte-Carlo validation, batched across a thread pool)
 *            for one configuration:
 *              srs_sim attack --defense=rrs --trh=4800 --rate=6
 *                      [--rounds=N|best] [--open-page] [--banks=B]
 *                      [--montecarlo=ITERS] [--shards=S]
 *                      [--threads=N]
 *
 *   security run the attack models (analytic + optional Monte-Carlo
 *            campaigns) over the same system axes as `sweep` and
 *            emit one schema-v6 CSV row per (axes, defense, trh,
 *            rate[, rounds]) cell — AttackParams are derived from
 *            the axes via attackParamsFromAxes(), never hand-rolled:
 *              srs_sim security --defenses=srs,rrs --trh=4800
 *                      --rates=6 [--rounds=best|N,…]
 *                      [--page-policy=A,B] [--preset=ddr4,ddr5]
 *                      [--org=CxRxB,…] [--trc=NS,…] [--trcd=NS,…]
 *                      [--trp=NS,…] [--trefi=NS,…] [--trfc=NS,…]
 *                      [--montecarlo=ITERS] [--epoch-loop-limit=N]
 *                      [--seed=S] [--threads=N] [--out=FILE]
 *
 *   storage  print the Table IV storage breakdown:
 *              srs_sim storage --trh=1200
 *
 *   trace    export a synthetic workload as a USIMM trace file:
 *              srs_sim trace --workload=gups --records=100000
 *                      --out=gups.usimm
 *
 *   sweep    run a (workload x system-axes x mitigation x TRH x
 *            rate) grid across a thread pool and emit one CSV row
 *            per cell:
 *              srs_sim sweep --workloads=gups,gcc
 *                      --mitigations=rrs,scale-srs --trh=1200,2400
 *                      --rates=3,6 [--tracker=misra-gries]
 *                      [--trace=FILE[;FILE…]] [--page-policy=A,B]
 *                      [--preset=ddr4,ddr5] [--org=CxRxB,…]
 *                      [--trc=NS,…]
 *                      [--trcd=NS,…] [--trp=NS,…] [--trefi=NS,…]
 *                      [--trfc=NS,…] [--mix=N] [--mix-base=K]
 *                      [--threads=N] [--channel-workers=N]
 *                      [--cycles=N] [--epoch=N]
 *                      [--seed=S] [--out=FILE] [--resume=FILE]
 *                      [--journal=FILE]
 *            --workloads=all sweeps every built-in profile; items
 *            spelled trace:<path>[;<path>…] (or the --trace
 *            shorthand) replay recorded USIMM trace files — one
 *            path for every core, or one per core; items spelled
 *            zipf:<rows>@s=<skew>,
 *            hotspot:<rows>@hot=<frac>@p=<prob>[@shift=<cycles>] or
 *            blend:<spec>+attack@<rate> run generator-backed skewed
 *            multi-tenant streams (Zipf row popularity, migrating
 *            hot sets, victim traffic with an embedded hammer
 *            stream — trace/generators.hh has the grammar); --mix=N
 *            appends N MIX points (per-core profile draws, starting
 *            at mix<K>) to the workload axis; --page-policy,
 *            --preset, --org (channels x ranks x banks-per-rank
 *            DRAM organizations, e.g. 2x1x16) and the
 *            --trc/--trcd/--trp/--trefi/--trfc
 *            override lists sweep the system axes (closed|open page
 *            management, ddr4|ddr5 timing preset, per-knob ns
 *            overrides, 0 = the preset's default), applied to
 *            protected and baseline runs alike.  Every row ends
 *            with the p50_lat/p99_lat/p999_lat read-latency
 *            percentile columns, the lat_samples count and the
 *            Monte-Carlo confidence columns (zeros for
 *            performance cells; schema v6).  CSV goes to stdout
 *            unless --out is given.  Output is ordered by cell
 *            (workloads outermost, then page policy, preset, org,
 *            the timing overrides, mitigations, trhs,
 *            rates innermost) and is byte-identical for any
 *            --threads or --channel-workers value (the latter
 *            parallelizes the DRAM channels *inside* each cell —
 *            useful for a few large multi-channel cells).
 *            Completed cells stream to a journal
 *            (default <out>.journal; --journal=none disables), and
 *            --resume=FILE skips cells already recorded in a
 *            previous journal or (possibly truncated) sweep CSV —
 *            the resumed output is byte-identical to a fresh run.
 *
 *   orchestrate
 *            split a sweep grid into balanced shards, run each as a
 *            supervised `srs_sim sweep` child process (restarting
 *            killed shards from their journals), and stitch the
 *            shard CSVs into one merged CSV that is byte-identical
 *            to a single-process sweep of the same grid.  Takes the
 *            sweep grid flags plus [--shards=S] [--jobs=J]
 *            [--threads=N per shard] [--retries=R] [--dir=DIR]
 *            [--sim=PATH] [--out=FILE]; --plan writes the manifest
 *            and prints the per-shard commands (for dispatch to
 *            other machines) without launching anything.
 *
 *   merge    stitch-only: validate the shard CSVs named by an
 *            orchestration manifest (written by `orchestrate`, or
 *            by hand for shards run on other machines) and emit the
 *            merged CSV:
 *              srs_sim merge --manifest=DIR/manifest [--out=FILE]
 *
 *   farm     run a planned orchestration (`orchestrate --plan`)
 *            across a fleet described by a hostfile — local job
 *            slots and/or ssh hosts — supervising every shard
 *            through its checkpoint journal, restarting or
 *            rebalancing crashed/stalled shards, and stitching the
 *            same byte-identical merged CSV:
 *              srs_sim farm --manifest=DIR/manifest
 *                      --hosts=hosts.conf [--retries=R]
 *                      [--threads=N per shard] [--poll-ms=MS]
 *                      [--stale-sec=S] [--status-file=FILE]
 *                      [--sim=PATH] [--out=FILE]
 *
 *   monitor  report live fleet progress by reading the shard
 *            journals (and the farm status file, when present) —
 *            no channel to the dispatcher needed:
 *              srs_sim monitor --dir=DIR | --manifest=FILE
 *                      [--watch] [--interval-ms=MS]
 *
 *   list     list the built-in workload profiles.
 *
 * All subcommands validate unknown flags (a typo is a fatal error,
 * not a silently ignored knob).  docs/sweep-format.md specs the CSV,
 * journal and manifest formats; docs/ARCHITECTURE.md maps the
 * library layers underneath.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/thread_pool.hh"
#include "farm/dispatcher.hh"
#include "farm/hostfile.hh"
#include "farm/progress.hh"
#include "security/attack_model.hh"
#include "security/monte_carlo.hh"
#include "security/security_sweep.hh"
#include "security/storage_model.hh"
#include "sim/experiment.hh"
#include "sim/orchestrator.hh"
#include "sim/sweep.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace srs;

int
cmdPerf(const Options &opts)
{
    const std::string workload = opts.getString("workload", "gcc");
    const std::string defense = opts.getString("mitigation", "scale-srs");
    const std::uint32_t trh =
        static_cast<std::uint32_t>(opts.getUint("trh", 1200));
    const std::uint32_t rate =
        static_cast<std::uint32_t>(opts.getUint("rate", 3));
    const TrackerKind tracker =
        trackerKindFromName(opts.getString("tracker", "misra-gries"));
    ExperimentConfig exp;
    exp.cycles = opts.getUint("cycles", 1'500'000);
    exp.epochLen = opts.getUint("epoch", exp.cycles / 2);
    const bool csv = opts.getBool("csv", false);
    opts.rejectUnknown();

    const WorkloadProfile &profile = profileByName(workload);
    const MitigationKind kind = mitigationKindFromName(defense);

    const SystemConfig baseCfg =
        makeSystemConfig(exp, MitigationKind::None, trh, rate, tracker);
    const double baseIpc =
        runWorkload(baseCfg, profile, exp).aggregateIpc;
    const SystemConfig cfg =
        makeSystemConfig(exp, kind, trh, rate, tracker);
    const RunResult res = runWorkload(cfg, profile, exp);
    const double norm = baseIpc > 0.0 ? res.aggregateIpc / baseIpc : 1.0;

    if (csv) {
        std::printf("workload,mitigation,trh,rate,ipc,baseline_ipc,"
                    "normalized,swaps,unswap_swaps,place_backs\n");
        std::printf("%s,%s,%u,%u,%.4f,%.4f,%.4f,%llu,%llu,%llu\n",
                    workload.c_str(), defense.c_str(), trh, rate,
                    res.aggregateIpc, baseIpc, norm,
                    static_cast<unsigned long long>(res.swaps),
                    static_cast<unsigned long long>(res.unswapSwaps),
                    static_cast<unsigned long long>(res.placeBacks));
    } else {
        std::printf("workload %s under %s (T_RH %u, rate %u)\n",
                    workload.c_str(), defense.c_str(), trh, rate);
        std::printf("  ipc        %.4f (baseline %.4f)\n",
                    res.aggregateIpc, baseIpc);
        std::printf("  normalized %.4f\n", norm);
        std::printf("  swaps %llu  unswap-swaps %llu  place-backs "
                    "%llu  pinned %llu\n",
                    static_cast<unsigned long long>(res.swaps),
                    static_cast<unsigned long long>(res.unswapSwaps),
                    static_cast<unsigned long long>(res.placeBacks),
                    static_cast<unsigned long long>(res.rowsPinned));
    }
    return 0;
}

/**
 * Parse the sweep grid + experiment flags shared by `sweep` and
 * `orchestrate` (--workloads/--trace/--mitigations/--page-policy/
 * --preset/--org/--trc/--trcd/--trp/--trefi/--trfc/--trh/--rates/
 * --tracker/--mix/--mix-base/--cycles/--epoch/--seed); fatal() on
 * an empty grid, a malformed org, or inconsistent timing axes.
 */
void
parseGridFlags(const Options &opts, SweepGrid &grid,
               ExperimentConfig &exp)
{
    exp.cycles = opts.getUint("cycles", 1'500'000);
    exp.epochLen = opts.getUint("epoch", exp.cycles / 2);
    exp.seed = opts.getUint("seed", exp.seed);

    const std::string workloads = opts.getString("workloads", "gcc");
    if (workloads == "all") {
        for (const WorkloadProfile &p : allProfiles())
            grid.workloads.push_back(WorkloadSpec::synthetic(p.name));
    } else {
        grid.workloads = splitSpecList(workloads, exp.numCores);
    }
    // --trace=SPEC[,SPEC…] appends trace-file workloads; each SPEC is
    // a path (all cores) or a ';'-separated per-core path list —
    // shorthand for trace:SPEC inside --workloads.
    for (const std::string &spec :
         splitList(opts.getString("trace", ""))) {
        grid.workloads.push_back(
            WorkloadSpec::parse("trace:" + spec, exp.numCores));
    }
    for (const std::string &m :
         splitList(opts.getString("mitigations", "scale-srs")))
        grid.mitigations.push_back(mitigationKindFromName(m));
    grid.pagePolicies.clear();
    for (const std::string &p :
         splitList(opts.getString("page-policy", "closed")))
        grid.pagePolicies.push_back(pagePolicyFromName(p));
    grid.presets.clear();
    for (const std::string &p :
         splitList(opts.getString("preset", "ddr4")))
        grid.presets.push_back(dramPresetFromName(p));
    grid.orgs = splitList(opts.getString("org", "2x1x16"));
    grid.tRcOverrides =
        splitUint32List(opts.getString("trc", "0"), "--trc");
    grid.tRcdOverrides =
        splitUint32List(opts.getString("trcd", "0"), "--trcd");
    grid.tRpOverrides =
        splitUint32List(opts.getString("trp", "0"), "--trp");
    grid.tRefiOverrides =
        splitUint32List(opts.getString("trefi", "0"), "--trefi");
    grid.tRfcOverrides =
        splitUint32List(opts.getString("trfc", "0"), "--trfc");
    grid.trhs =
        splitUint32List(opts.getString("trh", "1200"), "--trh");
    grid.swapRates =
        splitUint32List(opts.getString("rates", "3"), "--rates");
    grid.tracker =
        trackerKindFromName(opts.getString("tracker", "misra-gries"));

    grid.mixCount =
        static_cast<std::uint32_t>(opts.getUint("mix", 0));
    grid.mixBase =
        static_cast<std::uint32_t>(opts.getUint("mix-base", 0));
    grid.mixCores = exp.numCores;

    if ((grid.workloads.empty() && grid.mixCount == 0)
        || grid.mitigations.empty() || grid.pagePolicies.empty()
        || grid.presets.empty() || grid.orgs.empty()
        || grid.tRcOverrides.empty()
        || grid.tRcdOverrides.empty() || grid.tRpOverrides.empty()
        || grid.tRefiOverrides.empty() || grid.tRfcOverrides.empty()
        || grid.trhs.empty() || grid.swapRates.empty()) {
        fatal("sweep grid is empty: need at least one workload or "
              "MIX point, page policy, DRAM preset, DRAM "
              "organization, timing override (0 = default), "
              "mitigation, trh and rate");
    }
    // Reject malformed orgs and inconsistent timing combinations
    // (e.g. tRC < tRCD + tRP) before any shard or worker starts.
    (void)grid.axes();
}

int
cmdSweep(const Options &opts)
{
    SweepGrid grid;
    ExperimentConfig exp;
    parseGridFlags(opts, grid, exp);
    const std::size_t threads =
        static_cast<std::size_t>(opts.getUint("threads", 0));
    exp.channelWorkers = static_cast<std::uint32_t>(
        opts.getUint("channel-workers", 1));
    const std::string out = opts.getString("out", "");
    const std::string resume = opts.getString("resume", "");
    std::string journal = opts.getString(
        "journal", out.empty() ? "" : out + ".journal");
    if (journal == "none")
        journal.clear();
    opts.rejectUnknown();

    SweepRunner runner(exp, threads);
    runner.setJournal(journal);
    runner.setResume(resume);
    const std::vector<SweepResult> results = runner.run(grid);
    if (out.empty()) {
        SweepRunner::writeCsv(std::cout, results);
        if (!std::cout.flush())
            fatal("error writing CSV to stdout");
    } else {
        std::ofstream file(out);
        if (!file)
            fatal("cannot open '", out, "' for writing");
        SweepRunner::writeCsv(file, results);
        if (!file.flush())
            fatal("error writing CSV to '", out, "'");
        std::fprintf(stderr, "wrote %zu cells to %s (%zu threads)\n",
                     results.size(), out.c_str(),
                     runner.threadCount());
    }
    return 0;
}

/** argv[0] as seen by main(), the --sim fallback for orchestrate. */
std::string gArgv0;

/**
 * Best-effort path of the running binary: /proc/self/exe when the
 * kernel exposes it (Linux), else argv[0].
 */
std::string
selfExePath()
{
    std::error_code ec;
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec && !self.empty())
        return self.string();
    return gArgv0;
}

int
cmdOrchestrate(const Options &opts)
{
    SweepGrid grid;
    ExperimentConfig exp;
    parseGridFlags(opts, grid, exp);

    Orchestrator::Config cfg;
    cfg.jobs = static_cast<std::size_t>(opts.getUint("jobs", 0));
    cfg.shardThreads =
        static_cast<std::size_t>(opts.getUint("threads", 1));
    cfg.retries =
        static_cast<std::size_t>(opts.getUint("retries", 2));
    // Default shard count: one shard per concurrent job slot.
    const std::size_t shards = static_cast<std::size_t>(opts.getUint(
        "shards", ThreadPool::resolveThreads(cfg.jobs)));
    const std::string out = opts.getString("out", "");
    cfg.dir = opts.getString(
        "dir", out.empty() ? "srs_shards" : out + ".shards");
    cfg.simPath = opts.getString("sim", selfExePath());
    const bool planOnly = opts.getBool("plan", false);
    const std::string planFormat =
        opts.getString("plan-format", "text");
    if (planFormat != "text" && planFormat != "json")
        fatal("--plan-format is 'text' or 'json', not '", planFormat,
              "'");
    opts.rejectUnknown();

    const ShardManifest manifest = planShards(grid, exp, shards);
    Orchestrator orchestrator(manifest, cfg);
    if (planOnly) {
        // Write the manifest and print the shard commands for
        // dispatch to other machines; launch nothing.
        orchestrator.writePlan(std::cout, planFormat == "json");
        return 0;
    }
    if (out.empty()) {
        orchestrator.run(std::cout);
        if (!std::cout.flush())
            fatal("error writing merged CSV to stdout");
    } else {
        std::ofstream file(out, std::ios::trunc | std::ios::binary);
        if (!file)
            fatal("cannot open '", out, "' for writing");
        orchestrator.run(file);
    }
    std::fprintf(stderr,
                 "orchestrate: merged %zu cells from %zu shard(s) "
                 "into %s (%zu launched, %zu already complete)\n",
                 manifest.totalCells(), manifest.shards.size(),
                 out.empty() ? "stdout" : out.c_str(),
                 orchestrator.launches(),
                 orchestrator.skippedShards());
    return 0;
}

int
cmdMerge(const Options &opts)
{
    const std::string manifestPath = opts.getString("manifest", "");
    const std::string out = opts.getString("out", "");
    opts.rejectUnknown();
    if (manifestPath.empty())
        fatal("merge needs --manifest=FILE (written by 'srs_sim "
              "orchestrate', or by hand for remote shards)");

    const ShardManifest manifest = loadManifest(manifestPath);
    const std::string dir =
        std::filesystem::path(manifestPath).parent_path().string();
    if (out.empty()) {
        mergeShards(manifest, dir, std::cout);
        if (!std::cout.flush())
            fatal("error writing merged CSV to stdout");
    } else {
        std::ofstream file(out, std::ios::trunc | std::ios::binary);
        if (!file)
            fatal("cannot open '", out, "' for writing");
        mergeShards(manifest, dir, file);
    }
    std::fprintf(stderr,
                 "merge: stitched %zu cells from %zu shard(s)\n",
                 manifest.totalCells(), manifest.shards.size());
    return 0;
}

int
cmdFarm(const Options &opts)
{
    const std::string manifestPath = opts.getString("manifest", "");
    const std::string hostsPath = opts.getString("hosts", "");
    FarmConfig cfg;
    cfg.shardThreads =
        static_cast<std::size_t>(opts.getUint("threads", 1));
    cfg.retries =
        static_cast<std::size_t>(opts.getUint("retries", 2));
    cfg.pollMs = opts.getUint("poll-ms", 200);
    cfg.staleSec = static_cast<double>(opts.getUint("stale-sec", 0));
    cfg.statusFile = opts.getString("status-file", "");
    cfg.simPath = opts.getString("sim", selfExePath());
    const std::string out = opts.getString("out", "");
    opts.rejectUnknown();
    if (manifestPath.empty())
        fatal("farm needs --manifest=FILE (written by 'srs_sim "
              "orchestrate --plan')");
    if (hostsPath.empty())
        fatal("farm needs --hosts=FILE (the fleet hostfile; "
              "docs/sweep-format.md has the format)");

    const ShardManifest manifest = loadManifest(manifestPath);
    cfg.dir =
        std::filesystem::path(manifestPath).parent_path().string();
    if (cfg.dir.empty())
        cfg.dir = ".";
    cfg.hosts = loadHostfile(hostsPath);

    FarmDispatcher farm(manifest, cfg);
    if (out.empty()) {
        farm.run(std::cout);
        if (!std::cout.flush())
            fatal("error writing merged CSV to stdout");
    } else {
        std::ofstream file(out, std::ios::trunc | std::ios::binary);
        if (!file)
            fatal("cannot open '", out, "' for writing");
        farm.run(file);
    }
    std::fprintf(stderr,
                 "farm: merged %zu cells from %zu shard(s) across "
                 "%zu host(s) into %s (%zu launched, %zu restarted, "
                 "%zu already complete)\n",
                 manifest.totalCells(), manifest.shards.size(),
                 cfg.hosts.size(), out.empty() ? "stdout" : out.c_str(),
                 farm.launches(), farm.restarts(),
                 farm.skippedShards());
    return 0;
}

int
cmdMonitor(const Options &opts)
{
    std::string manifestPath = opts.getString("manifest", "");
    std::string dir = opts.getString("dir", "");
    const bool watch = opts.getBool("watch", false);
    const std::uint64_t intervalMs =
        opts.getUint("interval-ms", 1000);
    opts.rejectUnknown();
    if (manifestPath.empty() && dir.empty())
        fatal("monitor needs --dir=DIR (the shard directory) or "
              "--manifest=FILE");
    if (manifestPath.empty())
        manifestPath = dir + "/manifest";
    if (dir.empty()) {
        dir = std::filesystem::path(manifestPath)
                  .parent_path()
                  .string();
        if (dir.empty())
            dir = ".";
    }

    const ShardManifest manifest = loadManifest(manifestPath);
    const std::size_t n = manifest.shards.size();
    const std::string statusPath = dir + "/farm.status";

    // The snapshot is built from the shard journals alone; the
    // dispatcher's status file (when present) only decorates it with
    // host assignments.  Rates/ETAs need two samples, so one-shot
    // JSON reports them as -1 and --watch fills them in from the
    // second refresh on.
    ProgressClock clock(n);
    for (;;) {
        std::vector<ShardStatus> snapshot = snapshotFromJournals(
            manifest, dir, nullptr,
            readHostsFromStatus(statusPath, n));
        const double now =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        for (ShardStatus &s : snapshot)
            clock.sample(s.index, s.rows, now);
        for (ShardStatus &s : snapshot) {
            s.rowsPerSec = clock.rowsPerSec(s.index);
            s.etaSec = s.state == ShardState::Done
                           ? 0.0
                           : clock.etaSec(s.index, s.cells);
        }
        if (!watch) {
            writeStatusJson(std::cout, snapshot);
            if (!std::cout.flush())
                fatal("error writing status to stdout");
            return 0;
        }
        writeStatusTable(std::cout, snapshot);
        if (fleetDone(snapshot)) {
            std::printf("monitor: fleet complete\n");
            return 0;
        }
        std::printf("\n");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
}

int
cmdAttack(const Options &opts)
{
    const std::string defense = opts.getString("defense", "rrs");
    // --open-page / --ddr5 are spelled as a SystemAxes identity and
    // the attack parameters derived from it — one definition of the
    // environment, shared with the sweep cells (Section VIII-5 falls
    // out of the ddr5 preset's halved tREFI).
    SystemAxes axes;
    if (opts.getBool("open-page", false))
        axes.pagePolicy = PagePolicy::Open;
    if (opts.getBool("ddr5", false))
        axes.preset = DramPreset::Ddr5;
    const AttackParams p = attackParamsFromAxes(
        axes, static_cast<std::uint32_t>(opts.getUint("trh", 4800)),
        static_cast<std::uint32_t>(opts.getUint("rate", 6)));
    const std::uint32_t banks =
        static_cast<std::uint32_t>(opts.getUint("banks", 1));
    const std::string rounds = opts.getString("rounds", "best");
    const std::uint64_t mcIters = opts.getUint("montecarlo", 0);
    const std::size_t mcShards =
        static_cast<std::size_t>(opts.getUint("shards", 0));
    const std::size_t mcThreads =
        static_cast<std::size_t>(opts.getUint("threads", 0));
    opts.rejectUnknown();

    JuggernautModel model(p);
    AttackResult r;
    if (defense == "srs" || defense == "scale-srs") {
        r = model.evaluateSrs();
    } else if (defense == "rrs") {
        if (banks > 1)
            r = model.evaluateRrsMultiBank(banks);
        else if (rounds == "best")
            r = model.bestRrs();
        else
            r = model.evaluateRrs(std::strtoull(rounds.c_str(),
                                                nullptr, 10));
    } else {
        fatal("attack model covers 'rrs', 'srs' and 'scale-srs'");
    }

    std::printf("%s, T_RH %u, swap rate %u, %u bank(s)%s%s\n",
                defense.c_str(), p.trh, p.swapRate, banks,
                p.actTimeFactor > 1.0 ? ", open page" : "",
                p.epochSec < 64e-3 ? ", ddr5" : "");
    if (!r.feasible) {
        std::printf("  attack infeasible within one refresh epoch\n");
        return 0;
    }
    std::printf("  rounds N        %llu\n",
                static_cast<unsigned long long>(r.rounds));
    std::printf("  required k      %llu\n",
                static_cast<unsigned long long>(r.k));
    std::printf("  guesses G       %.0f per epoch\n", r.guesses);
    std::printf("  p(success)      %.3g per epoch\n", r.pSuccess);
    std::printf("  time-to-break   %.3g days\n",
                r.timeToBreakSec / 86400.0);

    if (mcIters > 0) {
        MonteCarloBatch mc(p, /*seed=*/0x5eed, mcThreads);
        const MonteCarloResult sim =
            defense == "rrs"
                ? mc.runRrs(r.rounds, mcIters, 100000, mcShards)
                : mc.runSrs(mcIters, mcShards);
        std::printf("  monte-carlo     %.3g days (%llu iters, "
                    "%zu shards)\n",
                    sim.meanTimeSec / 86400.0,
                    static_cast<unsigned long long>(mcIters),
                    MonteCarloBatch::resolveShards(mcShards, mcIters));
    }
    return 0;
}

int
cmdSecurity(const Options &opts)
{
    SecurityGrid grid;
    grid.pagePolicies.clear();
    for (const std::string &p :
         splitList(opts.getString("page-policy", "closed")))
        grid.pagePolicies.push_back(pagePolicyFromName(p));
    grid.presets.clear();
    for (const std::string &p :
         splitList(opts.getString("preset", "ddr4")))
        grid.presets.push_back(dramPresetFromName(p));
    grid.orgs = splitList(opts.getString("org", "2x1x16"));
    grid.tRcOverrides =
        splitUint32List(opts.getString("trc", "0"), "--trc");
    grid.tRcdOverrides =
        splitUint32List(opts.getString("trcd", "0"), "--trcd");
    grid.tRpOverrides =
        splitUint32List(opts.getString("trp", "0"), "--trp");
    grid.tRefiOverrides =
        splitUint32List(opts.getString("trefi", "0"), "--trefi");
    grid.tRfcOverrides =
        splitUint32List(opts.getString("trfc", "0"), "--trfc");
    for (const std::string &d :
         splitList(opts.getString("defenses", "srs,rrs")))
        grid.defenses.push_back(securityDefenseFromName(d));
    grid.trhs =
        splitUint32List(opts.getString("trh", "4800"), "--trh");
    grid.swapRates =
        splitUint32List(opts.getString("rates", "6"), "--rates");
    grid.rounds.clear();
    for (const std::string &r :
         splitList(opts.getString("rounds", "best"))) {
        grid.rounds.push_back(
            r == "best" ? SecurityGrid::kBestRounds
                        : std::strtoull(r.c_str(), nullptr, 10));
    }
    const std::uint64_t iterations = opts.getUint("montecarlo", 0);
    const std::uint64_t loopLimit =
        opts.getUint("epoch-loop-limit", 100000);
    const std::uint64_t seed = opts.getUint("seed", 0x5eed);
    const std::size_t threads =
        static_cast<std::size_t>(opts.getUint("threads", 0));
    const std::string out = opts.getString("out", "");
    opts.rejectUnknown();

    SecuritySweep sweep(seed, threads);
    sweep.setIterations(iterations);
    sweep.setEpochLoopLimit(loopLimit);
    const std::vector<SecurityResult> results = sweep.run(grid);
    if (out.empty()) {
        SecuritySweep::writeCsv(std::cout, results);
        if (!std::cout.flush())
            fatal("error writing CSV to stdout");
    } else {
        std::ofstream file(out);
        if (!file)
            fatal("cannot open '", out, "' for writing");
        SecuritySweep::writeCsv(file, results);
        if (!file.flush())
            fatal("error writing CSV to '", out, "'");
        std::fprintf(stderr,
                     "wrote %zu security cells to %s (%zu threads)\n",
                     results.size(), out.c_str(),
                     sweep.threadCount());
    }
    return 0;
}

int
cmdStorage(const Options &opts)
{
    StorageParams p;
    p.trh = static_cast<std::uint32_t>(opts.getUint("trh", 1200));
    opts.rejectUnknown();
    StorageModel model(p);
    std::printf("per-bank storage at T_RH = %u\n%-20s %10s %10s\n",
                p.trh, "structure", "RRS", "Scale-SRS");
    for (const StorageLine &line : model.breakdown()) {
        std::printf("%-20s %9.1fK %9.1fK\n", line.structure.c_str(),
                    line.rrsBytes / 1024.0,
                    line.scaleSrsBytes / 1024.0);
    }
    std::printf("%-20s %9.1fK %9.1fK   (%.1fx)\n", "total",
                model.totalRrsBytes() / 1024.0,
                model.totalScaleSrsBytes() / 1024.0,
                model.savingsRatio());
    std::printf("single-table RIT option (Section VIII-4): %.1fK\n",
                model.ritBytesScaleSrsSingleTable() / 1024.0);
    return 0;
}

int
cmdTrace(const Options &opts)
{
    const std::string workload = opts.getString("workload", "gups");
    const std::string out = opts.getString("out", workload + ".usimm");
    const std::uint64_t records = opts.getUint("records", 100'000);
    const std::uint64_t seed = opts.getUint("seed", 0xBEEF);
    const std::uint32_t core =
        static_cast<std::uint32_t>(opts.getUint("core", 0));
    opts.rejectUnknown();

    const DramOrg org;
    AddressMap map(org);
    SyntheticTrace source(profileByName(workload), map, core, seed);
    TraceWriter writer(out);
    for (std::uint64_t i = 0; i < records; ++i)
        writer.append(source.next());
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(
                    writer.recordsWritten()),
                out.c_str());
    return 0;
}

int
cmdList(const Options &opts)
{
    opts.rejectUnknown();
    std::printf("%-16s %-12s %7s %7s %8s %6s\n", "name", "suite",
                "avgGap", "hotPr", "hotRows", "fpMB");
    for (const WorkloadProfile &p : allProfiles()) {
        std::printf("%-16s %-12s %7.1f %7.2f %8u %6llu\n",
                    p.name.c_str(), p.suite.c_str(), p.avgGap,
                    p.hotProb, p.hotRows,
                    static_cast<unsigned long long>(p.footprintMB));
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: srs_sim <subcommand> [--key=value ...]\n"
        "\n"
        "subcommands and their flags (defaults in parentheses):\n"
        "\n"
        "  perf         one workload under one defense\n"
        "    --workload=NAME (gcc)  --mitigation=KIND (scale-srs)\n"
        "    --trh=N (1200)  --rate=N (3)  --tracker=KIND\n"
        "    --cycles=N (1500000)  --epoch=N (cycles/2)  --csv\n"
        "\n"
        "  sweep        workload x system-axes x mitigation x TRH x\n"
        "               rate grid, one CSV row per cell,\n"
        "               thread-pool parallel\n"
        "    --workloads=A,B|all (gcc); an item trace:<path>[;<path>]\n"
        "    replays USIMM trace file(s), one path or one per core;\n"
        "    generator items: zipf:<rows>@s=<skew>,\n"
        "    hotspot:<rows>@hot=<frac>@p=<prob>[@shift=<cycles>],\n"
        "    blend:<spec>+attack@<rate>\n"
        "    --trace=FILE[;FILE] (none)  shorthand: append a\n"
        "    trace-file workload to the grid\n"
        "    --mitigations=A,B (scale-srs)\n"
        "    --page-policy=closed|open[,..] (closed)\n"
        "    --preset=ddr4|ddr5[,..] (ddr4)  DRAM timing preset\n"
        "    --org=CxRxB[,..] (2x1x16)  DRAM organization:\n"
        "    channels x ranks x banks-per-rank, powers of two in\n"
        "    1..8 / 1..4 / 4..64\n"
        "    --trc=NS,.. --trcd=NS,.. --trp=NS,.. --trefi=NS,..\n"
        "    --trfc=NS,.. (0 = the preset's default timing)\n"
        "    --trh=N,M (1200)\n"
        "    --rates=N,M (3)  --tracker=KIND\n"
        "    --mix=N (0)  --mix-base=K (0)  --threads=N (all)\n"
        "    --channel-workers=N (1)  worker threads per cell for\n"
        "    channel-parallel simulation; never changes results\n"
        "    --cycles=N  --epoch=N  --seed=S  --out=FILE (stdout)\n"
        "    --journal=FILE|none (<out>.journal)  --resume=FILE\n"
        "\n"
        "  orchestrate  split a sweep grid into shard processes,\n"
        "               supervise them, stitch one merged CSV\n"
        "    (all sweep grid flags above, plus:)\n"
        "    --shards=S (jobs)  --jobs=J (hardware threads)\n"
        "    --threads=N per shard (1)  --retries=R (2)\n"
        "    --dir=DIR (<out>.shards)  --sim=PATH (this binary)\n"
        "    --out=FILE (stdout)  --plan (write manifest + print\n"
        "    shard commands for other machines, launch nothing)\n"
        "    --plan-format=text|json (text)  plan output format\n"
        "\n"
        "  merge        validate + stitch shard CSVs from a manifest\n"
        "    --manifest=FILE (required)  --out=FILE (stdout)\n"
        "\n"
        "  farm         dispatch a planned orchestration across a\n"
        "               fleet (hostfile: local slots and/or ssh\n"
        "               hosts), supervise via checkpoint journals,\n"
        "               restart/rebalance dead shards, stitch the\n"
        "               byte-identical merged CSV\n"
        "    --manifest=FILE (required, from orchestrate --plan)\n"
        "    --hosts=FILE (required fleet hostfile)\n"
        "    --threads=N per shard (1)  --retries=R (2)\n"
        "    --poll-ms=MS (200)  --stale-sec=S (0 = no straggler\n"
        "    timeout)  --status-file=FILE (<dir>/farm.status)\n"
        "    --sim=PATH (this binary)  --out=FILE (stdout)\n"
        "\n"
        "  monitor      live fleet progress from the shard journals\n"
        "               alone (JSON lines; --watch for a table)\n"
        "    --dir=DIR | --manifest=FILE (one required;\n"
        "    --manifest defaults to <dir>/manifest)\n"
        "    --watch  refresh a table until the fleet completes\n"
        "    --interval-ms=MS (1000)\n"
        "\n"
        "  attack       Juggernaut analytical model / Monte-Carlo\n"
        "    --defense=rrs|srs|scale-srs (rrs)  --trh=N (4800)\n"
        "    --rate=N (6)  --rounds=N|best (best)  --banks=B (1)\n"
        "    --open-page  --ddr5  --montecarlo=ITERS (0)\n"
        "    --shards=S (auto)  --threads=N (all)\n"
        "\n"
        "  security     attack-model sweep over the same system axes\n"
        "               as `sweep`, one schema-v6 CSV row per\n"
        "               (axes, defense, trh, rate[, rounds]) cell\n"
        "    --defenses=srs,rrs (srs,rrs)  --trh=N,M (4800)\n"
        "    --rates=N,M (6)  --rounds=best|N[,..] (best; RRS only)\n"
        "    --page-policy=closed|open[,..] (closed)\n"
        "    --preset=ddr4|ddr5[,..] (ddr4)  --org=CxRxB[,..]\n"
        "    --trc=NS,.. --trcd=NS,.. --trp=NS,.. --trefi=NS,..\n"
        "    --trfc=NS,..  --montecarlo=ITERS (0 = analytic only)\n"
        "    --epoch-loop-limit=N (100000)  --seed=S (0x5eed)\n"
        "    --threads=N (all; never changes results)\n"
        "    --out=FILE (stdout)\n"
        "\n"
        "  storage      Table IV storage breakdown\n"
        "    --trh=N (1200)\n"
        "\n"
        "  trace        export a synthetic workload as a USIMM trace\n"
        "    --workload=NAME (gups)  --records=N (100000)\n"
        "    --seed=S  --core=N (0)  --out=FILE (<workload>.usimm)\n"
        "\n"
        "  list         list the built-in workload profiles\n"
        "\n"
        "Unknown flags are fatal errors.  File formats (sweep CSV,\n"
        "journal, shard manifest): docs/sweep-format.md; library\n"
        "layering: docs/ARCHITECTURE.md.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    gArgv0 = argc > 0 ? argv[0] : "srs_sim";
    const Options opts = Options::fromArgs(argc, argv);
    if (opts.positional().empty()) {
        usage();
        return 1;
    }
    const std::string &cmd = opts.positional().front();
    try {
        if (cmd == "perf")
            return cmdPerf(opts);
        if (cmd == "sweep")
            return cmdSweep(opts);
        if (cmd == "orchestrate")
            return cmdOrchestrate(opts);
        if (cmd == "merge")
            return cmdMerge(opts);
        if (cmd == "farm")
            return cmdFarm(opts);
        if (cmd == "monitor")
            return cmdMonitor(opts);
        if (cmd == "attack")
            return cmdAttack(opts);
        if (cmd == "security")
            return cmdSecurity(opts);
        if (cmd == "storage")
            return cmdStorage(opts);
        if (cmd == "trace")
            return cmdTrace(opts);
        if (cmd == "list")
            return cmdList(opts);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "srs_sim: %s\n", err.what());
        return 1;
    }
    usage();
    return 1;
}
