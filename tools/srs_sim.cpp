/**
 * @file
 * srs_sim — the command-line front-end of the library.
 *
 * Subcommands:
 *
 *   perf     run one workload under one defense and print IPC and
 *            normalized performance (optionally as CSV):
 *              srs_sim perf --workload=gcc --mitigation=scale-srs
 *                      --trh=1200 --rate=3 [--tracker=misra-gries]
 *                      [--cycles=N] [--epoch=N] [--csv]
 *
 *   attack   evaluate the Juggernaut analytical model (and optional
 *            Monte-Carlo validation) for one configuration:
 *              srs_sim attack --defense=rrs --trh=4800 --rate=6
 *                      [--rounds=N|best] [--open-page] [--banks=B]
 *                      [--montecarlo=ITERS]
 *
 *   storage  print the Table IV storage breakdown:
 *              srs_sim storage --trh=1200
 *
 *   trace    export a synthetic workload as a USIMM trace file:
 *              srs_sim trace --workload=gups --records=100000
 *                      --out=gups.usimm
 *
 *   list     list the built-in workload profiles.
 *
 * All subcommands validate unknown flags (a typo is a fatal error,
 * not a silently ignored knob).
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/options.hh"
#include "security/attack_model.hh"
#include "security/monte_carlo.hh"
#include "security/storage_model.hh"
#include "sim/experiment.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace srs;

MitigationKind
kindOf(const std::string &name)
{
    if (name == "none" || name == "baseline")
        return MitigationKind::None;
    if (name == "rrs")
        return MitigationKind::Rrs;
    if (name == "rrs-no-unswap")
        return MitigationKind::RrsNoUnswap;
    if (name == "srs")
        return MitigationKind::Srs;
    if (name == "scale-srs")
        return MitigationKind::ScaleSrs;
    if (name == "blockhammer")
        return MitigationKind::BlockHammer;
    if (name == "aqua")
        return MitigationKind::Aqua;
    fatal("unknown mitigation '%s' (want none|rrs|rrs-no-unswap|srs|"
          "scale-srs|blockhammer|aqua)", name.c_str());
    return MitigationKind::None; // unreachable
}

TrackerKind
trackerOf(const std::string &name)
{
    if (name == "misra-gries")
        return TrackerKind::MisraGries;
    if (name == "hydra")
        return TrackerKind::Hydra;
    if (name == "cbt")
        return TrackerKind::Cbt;
    if (name == "twice")
        return TrackerKind::TwiCe;
    fatal("unknown tracker '%s' (want misra-gries|hydra|cbt|twice)",
          name.c_str());
    return TrackerKind::MisraGries; // unreachable
}

int
cmdPerf(const Options &opts)
{
    const std::string workload = opts.getString("workload", "gcc");
    const std::string defense = opts.getString("mitigation", "scale-srs");
    const std::uint32_t trh =
        static_cast<std::uint32_t>(opts.getUint("trh", 1200));
    const std::uint32_t rate =
        static_cast<std::uint32_t>(opts.getUint("rate", 3));
    const TrackerKind tracker =
        trackerOf(opts.getString("tracker", "misra-gries"));
    ExperimentConfig exp;
    exp.cycles = opts.getUint("cycles", 1'500'000);
    exp.epochLen = opts.getUint("epoch", exp.cycles / 2);
    const bool csv = opts.getBool("csv", false);
    opts.rejectUnknown();

    const WorkloadProfile &profile = profileByName(workload);
    const MitigationKind kind = kindOf(defense);

    const SystemConfig baseCfg =
        makeSystemConfig(exp, MitigationKind::None, trh, rate, tracker);
    const double baseIpc =
        runWorkload(baseCfg, profile, exp).aggregateIpc;
    const SystemConfig cfg =
        makeSystemConfig(exp, kind, trh, rate, tracker);
    const RunResult res = runWorkload(cfg, profile, exp);
    const double norm = baseIpc > 0.0 ? res.aggregateIpc / baseIpc : 1.0;

    if (csv) {
        std::printf("workload,mitigation,trh,rate,ipc,baseline_ipc,"
                    "normalized,swaps,unswap_swaps,place_backs\n");
        std::printf("%s,%s,%u,%u,%.4f,%.4f,%.4f,%llu,%llu,%llu\n",
                    workload.c_str(), defense.c_str(), trh, rate,
                    res.aggregateIpc, baseIpc, norm,
                    static_cast<unsigned long long>(res.swaps),
                    static_cast<unsigned long long>(res.unswapSwaps),
                    static_cast<unsigned long long>(res.placeBacks));
    } else {
        std::printf("workload %s under %s (T_RH %u, rate %u)\n",
                    workload.c_str(), defense.c_str(), trh, rate);
        std::printf("  ipc        %.4f (baseline %.4f)\n",
                    res.aggregateIpc, baseIpc);
        std::printf("  normalized %.4f\n", norm);
        std::printf("  swaps %llu  unswap-swaps %llu  place-backs "
                    "%llu  pinned %llu\n",
                    static_cast<unsigned long long>(res.swaps),
                    static_cast<unsigned long long>(res.unswapSwaps),
                    static_cast<unsigned long long>(res.placeBacks),
                    static_cast<unsigned long long>(res.rowsPinned));
    }
    return 0;
}

int
cmdAttack(const Options &opts)
{
    const std::string defense = opts.getString("defense", "rrs");
    AttackParams p;
    p.trh = static_cast<std::uint32_t>(opts.getUint("trh", 4800));
    p.swapRate = static_cast<std::uint32_t>(opts.getUint("rate", 6));
    if (opts.getBool("open-page", false))
        p.actTimeFactor = kOpenPageActFactor;
    if (opts.getBool("ddr5", false)) {
        // Section VIII-5: refresh runs twice as often, halving the
        // accumulation window.
        p.epochSec = 32e-3;
        p.refreshOpsPerEpoch = 4096;
    }
    const std::uint32_t banks =
        static_cast<std::uint32_t>(opts.getUint("banks", 1));
    const std::string rounds = opts.getString("rounds", "best");
    const std::uint64_t mcIters = opts.getUint("montecarlo", 0);
    opts.rejectUnknown();

    JuggernautModel model(p);
    AttackResult r;
    if (defense == "srs" || defense == "scale-srs") {
        r = model.evaluateSrs();
    } else if (defense == "rrs") {
        if (banks > 1)
            r = model.evaluateRrsMultiBank(banks);
        else if (rounds == "best")
            r = model.bestRrs();
        else
            r = model.evaluateRrs(std::strtoull(rounds.c_str(),
                                                nullptr, 10));
    } else {
        fatal("attack model covers 'rrs', 'srs' and 'scale-srs'");
    }

    std::printf("%s, T_RH %u, swap rate %u, %u bank(s)%s%s\n",
                defense.c_str(), p.trh, p.swapRate, banks,
                p.actTimeFactor > 1.0 ? ", open page" : "",
                p.epochSec < 64e-3 ? ", ddr5" : "");
    if (!r.feasible) {
        std::printf("  attack infeasible within one refresh epoch\n");
        return 0;
    }
    std::printf("  rounds N        %llu\n",
                static_cast<unsigned long long>(r.rounds));
    std::printf("  required k      %llu\n",
                static_cast<unsigned long long>(r.k));
    std::printf("  guesses G       %.0f per epoch\n", r.guesses);
    std::printf("  p(success)      %.3g per epoch\n", r.pSuccess);
    std::printf("  time-to-break   %.3g days\n",
                r.timeToBreakSec / 86400.0);

    if (mcIters > 0) {
        MonteCarloAttack mc(p, /*seed=*/0x5eed);
        const MonteCarloResult sim =
            defense == "rrs" ? mc.runRrs(r.rounds, mcIters)
                             : mc.runSrs(mcIters);
        std::printf("  monte-carlo     %.3g days (%llu iters)\n",
                    sim.meanTimeSec / 86400.0,
                    static_cast<unsigned long long>(mcIters));
    }
    return 0;
}

int
cmdStorage(const Options &opts)
{
    StorageParams p;
    p.trh = static_cast<std::uint32_t>(opts.getUint("trh", 1200));
    opts.rejectUnknown();
    StorageModel model(p);
    std::printf("per-bank storage at T_RH = %u\n%-20s %10s %10s\n",
                p.trh, "structure", "RRS", "Scale-SRS");
    for (const StorageLine &line : model.breakdown()) {
        std::printf("%-20s %9.1fK %9.1fK\n", line.structure.c_str(),
                    line.rrsBytes / 1024.0,
                    line.scaleSrsBytes / 1024.0);
    }
    std::printf("%-20s %9.1fK %9.1fK   (%.1fx)\n", "total",
                model.totalRrsBytes() / 1024.0,
                model.totalScaleSrsBytes() / 1024.0,
                model.savingsRatio());
    std::printf("single-table RIT option (Section VIII-4): %.1fK\n",
                model.ritBytesScaleSrsSingleTable() / 1024.0);
    return 0;
}

int
cmdTrace(const Options &opts)
{
    const std::string workload = opts.getString("workload", "gups");
    const std::string out = opts.getString("out", workload + ".usimm");
    const std::uint64_t records = opts.getUint("records", 100'000);
    const std::uint64_t seed = opts.getUint("seed", 0xBEEF);
    const std::uint32_t core =
        static_cast<std::uint32_t>(opts.getUint("core", 0));
    opts.rejectUnknown();

    const DramOrg org;
    AddressMap map(org);
    SyntheticTrace source(profileByName(workload), map, core, seed);
    TraceWriter writer(out);
    for (std::uint64_t i = 0; i < records; ++i)
        writer.append(source.next());
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(
                    writer.recordsWritten()),
                out.c_str());
    return 0;
}

int
cmdList(const Options &opts)
{
    opts.rejectUnknown();
    std::printf("%-16s %-12s %7s %7s %8s %6s\n", "name", "suite",
                "avgGap", "hotPr", "hotRows", "fpMB");
    for (const WorkloadProfile &p : allProfiles()) {
        std::printf("%-16s %-12s %7.1f %7.2f %8u %6llu\n",
                    p.name.c_str(), p.suite.c_str(), p.avgGap,
                    p.hotProb, p.hotRows,
                    static_cast<unsigned long long>(p.footprintMB));
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: srs_sim <perf|attack|storage|trace|list> [--key=value]\n"
        "run 'srs_sim' with a subcommand; see the file header or\n"
        "README.md for the full flag list per subcommand.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const Options opts = Options::fromArgs(argc, argv);
    if (opts.positional().empty()) {
        usage();
        return 1;
    }
    const std::string &cmd = opts.positional().front();
    try {
        if (cmd == "perf")
            return cmdPerf(opts);
        if (cmd == "attack")
            return cmdAttack(opts);
        if (cmd == "storage")
            return cmdStorage(opts);
        if (cmd == "trace")
            return cmdTrace(opts);
        if (cmd == "list")
            return cmdList(opts);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "srs_sim: %s\n", err.what());
        return 1;
    }
    usage();
    return 1;
}
