#include "cpu/core.hh"

#include "common/logging.hh"

namespace srs
{

Core::Core(CoreId id, const CoreConfig &cfg, TraceSource &trace,
           CoreMemoryInterface &mem)
    : id_(id), cfg_(cfg), trace_(trace), mem_(mem)
{
    SRS_ASSERT(cfg_.robSize > 0 && cfg_.fetchWidth > 0 &&
               cfg_.retireWidth > 0, "degenerate core config");
}

void
Core::tick(Cycle now)
{
    // Retire in program order.
    std::uint32_t retiredNow = 0;
    while (retiredNow < cfg_.retireWidth && !rob_.empty() &&
           rob_.front().doneAt <= now) {
        rob_.pop_front();
        ++retired_;
        ++retiredNow;
    }

    // Fetch.
    std::uint32_t fetched = 0;
    bool rejected = false;
    for (std::uint32_t f = 0; f < cfg_.fetchWidth; ++f) {
        if (rob_.size() >= cfg_.robSize)
            break;
        if (!fetchOne(now)) {
            rejected = true;
            break;
        }
        ++fetched;
    }

    // Wake policy.  Any progress — and any structural reject, since a
    // queue slot (or a forwardable posted write) can appear on the
    // very next cycle — demands a tick next cycle.  Otherwise the ROB
    // was full with an unretirable head, and every cycle until the
    // head completes is provably a no-op: nothing can retire in
    // order, the full ROB blocks fetch, and the trace source is
    // untouched.
    if (retiredNow > 0 || fetched > 0 || rejected || rob_.empty()) {
        wakeAt_ = now + 1;
        return;
    }
    const Cycle headDone = rob_.front().doneAt;
    wakeAt_ = headDone == kNoCycle ? kNoCycle : headDone;
}

bool
Core::fetchOne(Cycle now)
{
    if (!recordValid_) {
        current_ = trace_.next();
        gapLeft_ = current_.nonMemGap;
        memOpPendingIssue_ = true;
        recordValid_ = true;
    }

    if (gapLeft_ > 0) {
        rob_.push_back(RobEntry{0, now + cfg_.pipelineDepth});
        --gapLeft_;
        return true;
    }

    SRS_ASSERT(memOpPendingIssue_, "record exhausted without mem op");
    if (current_.addr == kInvalidAddr) {
        // Pure-compute record (finite trace sources emit these after
        // exhaustion): retires like a non-memory instruction.
        rob_.push_back(RobEntry{0, now + cfg_.pipelineDepth});
        recordValid_ = false;
        memOpPendingIssue_ = false;
        return true;
    }
    Cycle latency = 0;
    const std::uint64_t token =
        (static_cast<std::uint64_t>(id_) << 48) | nextToken_;
    const auto outcome = mem_.access(current_.addr, current_.isWrite,
                                     id_, token, now, latency);
    switch (outcome) {
      case CoreMemoryInterface::Outcome::Hit:
        rob_.push_back(RobEntry{0, now + latency});
        break;
      case CoreMemoryInterface::Outcome::Pending:
        rob_.push_back(RobEntry{token, kNoCycle});
        ++nextToken_;
        break;
      case CoreMemoryInterface::Outcome::Reject:
        return false; // structural stall; retry next cycle
    }
    if (current_.isWrite)
        ++memWrites_;
    else
        ++memReads_;
    recordValid_ = false;
    memOpPendingIssue_ = false;
    return true;
}

void
Core::complete(std::uint64_t token, Cycle now)
{
    for (RobEntry &e : rob_) {
        if (e.token == token) {
            SRS_ASSERT(e.doneAt == kNoCycle, "double completion");
            e.doneAt = now;
            e.token = 0;
            // A sleeping core can retire this entry (head) or resume
            // fetch next cycle; re-arm the wake.
            wakeAt_ = now + 1;
            return;
        }
    }
    panic("completion for unknown token ", token);
}

double
Core::ipc(Cycle elapsed) const
{
    return elapsed == 0
        ? 0.0
        : static_cast<double>(retired_) / static_cast<double>(elapsed);
}

} // namespace srs
