/**
 * @file
 * Trace-driven core model (USIMM-equivalent; paper Table III).
 *
 * Each core owns a 192-entry reorder buffer, fetches and retires up
 * to 4 instructions per cycle, and pulls work from a TraceSource.
 * Non-memory instructions complete after a fixed pipeline depth;
 * memory reads complete when the memory hierarchy answers; writes are
 * posted through a store buffer and retire immediately after issue.
 */

#ifndef SRS_CPU_CORE_HH
#define SRS_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace srs
{

/** One unit of trace: a run of non-memory work then one memory op. */
struct TraceRecord
{
    std::uint32_t nonMemGap = 0;  ///< non-memory instructions first
    Addr addr = kInvalidAddr;     ///< then one access to this address
    bool isWrite = false;
};

/** Pull-based instruction stream; implementations are deterministic. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Produce the next record (sources are infinite / rate mode). */
    virtual TraceRecord next() = 0;
};

/** Memory hierarchy seen by a core. */
class CoreMemoryInterface
{
  public:
    /** What happened to an access issued this cycle. */
    enum class Outcome
    {
        Hit,       ///< satisfied now; latency returned
        Pending,   ///< miss in flight; complete(token) will be called
        Reject,    ///< queues full; retry next cycle
    };

    virtual ~CoreMemoryInterface() = default;

    /**
     * Issue one access.
     * @param token  opaque tag the hierarchy echoes on completion
     * @param latencyOut  filled with the hit latency on Outcome::Hit
     */
    virtual Outcome access(Addr addr, bool isWrite, CoreId core,
                           std::uint64_t token, Cycle now,
                           Cycle &latencyOut) = 0;
};

/** Core configuration (defaults: paper Table III). */
struct CoreConfig
{
    std::uint32_t robSize = 192;
    std::uint32_t fetchWidth = 4;
    std::uint32_t retireWidth = 4;
    Cycle pipelineDepth = 5;   ///< completion latency of non-mem instrs
};

/** A single out-of-order core fed by a trace. */
class Core
{
  public:
    Core(CoreId id, const CoreConfig &cfg, TraceSource &trace,
         CoreMemoryInterface &mem);

    /** Advance one CPU cycle (retire then fetch). */
    void tick(Cycle now);

    /** Complete the in-flight read tagged @p token. */
    void complete(std::uint64_t token, Cycle now);

    /**
     * Earliest cycle at which ticking this core is not provably a
     * no-op; maintained by tick()/complete().  While the ROB is full
     * and nothing can retire, the core sleeps until its head entry's
     * completion cycle — kNoCycle when the head is a pending read, in
     * which case complete() re-arms the wake.  The event-driven run
     * loop uses this so stalled cores cost zero ticks; ticking a
     * sleeping core anyway is always safe (the tick is a no-op).
     */
    Cycle nextEventAt() const { return wakeAt_; }

    CoreId id() const { return id_; }
    std::uint64_t retiredInstrs() const { return retired_; }
    std::uint64_t memReads() const { return memReads_; }
    std::uint64_t memWrites() const { return memWrites_; }

    /** Retired instructions per cycle over the core's lifetime. */
    double ipc(Cycle elapsed) const;

  private:
    struct RobEntry
    {
        std::uint64_t token = 0;  ///< nonzero for pending memory reads
        Cycle doneAt = kNoCycle;  ///< completion cycle once known
    };

    /** Fetch a single instruction; @return false when stalled. */
    bool fetchOne(Cycle now);

    CoreId id_;
    CoreConfig cfg_;
    TraceSource &trace_;
    CoreMemoryInterface &mem_;

    std::deque<RobEntry> rob_;
    TraceRecord current_;
    std::uint32_t gapLeft_ = 0;     ///< non-mem instrs left in record
    bool recordValid_ = false;
    bool memOpPendingIssue_ = false;///< record's mem op awaiting issue

    std::uint64_t nextToken_ = 1;
    Cycle wakeAt_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
};

} // namespace srs

#endif // SRS_CPU_CORE_HH
