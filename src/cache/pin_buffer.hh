/**
 * @file
 * Scale-SRS pin-buffer (paper Section V-C).
 *
 * A small fully-associative buffer in front of the LLC that records
 * the physical base addresses of pinned DRAM rows.  Every LLC access
 * flows through it; hits are redirected to a fixed, reserved range of
 * LLC sets so pinned rows can never conflict with each other or be
 * evicted by demand traffic.  Entries are cleared when the refresh
 * interval ends.
 */

#ifndef SRS_CACHE_PIN_BUFFER_HH
#define SRS_CACHE_PIN_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace srs
{

/** One pinned row: address range plus its reserved set base. */
struct PinEntry
{
    Addr rowBase = kInvalidAddr;  ///< first byte of the pinned row
    std::uint64_t setBase = 0;    ///< first reserved LLC set
};

/** Fixed-capacity pin-buffer with row-granularity matching. */
class PinBuffer
{
  public:
    /**
     * @param capacity  maximum pinned rows (paper: up to 66 across a
     *                  multi-bank attack; 3 in the single-bank case)
     * @param rowBytes  DRAM row size (match granularity)
     */
    PinBuffer(std::uint32_t capacity, std::uint32_t rowBytes);

    /** @return true and the entry when @p addr falls in a pinned row. */
    const PinEntry *lookup(Addr addr) const;

    /** @return true when @p rowBase is already pinned. */
    bool pinned(Addr rowBase) const;

    /**
     * Pin a row.  @return the assigned entry, or nullptr when the
     * buffer is full or the row is already pinned.
     */
    const PinEntry *pin(Addr rowBase, std::uint64_t setBase);

    /** Drop all entries (refresh-interval boundary). */
    void clear();

    /** All current entries, in pin order. */
    const std::vector<PinEntry> &entries() const { return entries_; }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }
    std::uint32_t capacity() const { return capacity_; }

    /** Storage cost in bits: entries * (physAddrBits - rowOffsetBits). */
    std::uint64_t storageBits(std::uint32_t physAddrBits = 48) const;

    const StatSet &stats() const { return stats_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t rowBytes_;
    std::vector<PinEntry> entries_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_CACHE_PIN_BUFFER_HH
