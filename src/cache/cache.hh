/**
 * @file
 * Set-associative tag-store cache model with true-LRU replacement.
 *
 * Only tags and metadata are modelled (no data movement); the System
 * turns miss/writeback outcomes into memory traffic.  Sets can be
 * partially or fully reserved, which is how the Scale-SRS pin-buffer
 * carves out space for pinned DRAM rows (Section V-C).
 */

#ifndef SRS_CACHE_CACHE_HH
#define SRS_CACHE_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace srs
{

/** Geometry for a set-associative cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 8ULL * 1024 * 1024;
    std::uint32_t ways = 16;
    std::uint32_t lineBytes = 64;

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * lineBytes);
    }
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writebackNeeded = false;   ///< a dirty victim was evicted
    Addr writebackAddr = kInvalidAddr;
    bool bypassed = false;          ///< set fully reserved, no allocate
};

/** LRU set-associative tag store. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    /**
     * Look up @p addr, allocating on miss.
     * @param isWrite marks the line dirty on hit or fill
     */
    CacheAccessResult access(Addr addr, bool isWrite);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /**
     * Dirty-victim probe: the writeback address that access(@p addr)
     * would emit, without performing the access.  Mirrors access()'s
     * victim selection exactly (hit, bypass, and invalid-way fills
     * evict nothing).
     * @return kInvalidAddr when the access would cause no writeback
     */
    Addr victimWritebackAddr(Addr addr) const;

    /** Invalidate one line. @return true when it was present+dirty. */
    bool invalidate(Addr addr);

    /**
     * Reserve @p ways ways in set @p set (pin-buffer carve-out).
     * Reserved ways are unusable by demand fills; resident lines in
     * reserved ways are invalidated (dirty ones reported via
     * @p writebacks).
     */
    void reserveWays(std::uint64_t set, std::uint32_t ways,
                     std::vector<Addr> &writebacks);

    /** Release all reservations in set @p set. */
    void releaseWays(std::uint64_t set);

    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return cfg_.ways; }
    const CacheConfig &config() const { return cfg_; }

    /** Map an address to its set index. */
    std::uint64_t setOf(Addr addr) const;

    const StatSet &stats() const { return stats_; }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr;   ///< full line-aligned address
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp
    };

    Addr lineAlign(Addr addr) const;

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;   ///< numSets * ways, row-major by set
    std::unordered_map<std::uint64_t, std::uint32_t> reservedWays_;
    std::uint64_t useClock_ = 0;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_CACHE_CACHE_HH
