#include "cache/llc.hh"

#include "common/logging.hh"

namespace srs
{

Llc::Llc(const CacheConfig &cfg, std::uint32_t rowBytes,
         std::uint32_t pinCapacity)
    : cache_(cfg), pins_(pinCapacity, rowBytes), rowBytes_(rowBytes)
{
    const std::uint64_t linesPerRow = rowBytes_ / cfg.lineBytes;
    setsPerRow_ = linesPerRow / cfg.ways;
    if (setsPerRow_ == 0)
        fatal("LLC associativity exceeds lines per DRAM row");
    if (static_cast<std::uint64_t>(pinCapacity) * setsPerRow_ >
        cache_.numSets()) {
        fatal("pin capacity exceeds LLC sets");
    }
}

LlcResult
Llc::access(Addr addr, bool isWrite)
{
    LlcResult res;
    if (pins_.lookup(addr) != nullptr) {
        res.hit = true;
        res.pinnedHit = true;
        stats_.inc("pinned_hits");
        return res;
    }
    const CacheAccessResult c = cache_.access(addr, isWrite);
    res.hit = c.hit;
    res.writebackNeeded = c.writebackNeeded;
    res.writebackAddr = c.writebackAddr;
    if (c.hit)
        stats_.inc("hits");
    else
        stats_.inc("misses");
    return res;
}

bool
Llc::pinRow(Addr rowBase, std::vector<Addr> *evicted)
{
    SRS_ASSERT((rowBase & (rowBytes_ - 1)) == 0,
               "pinRow target not row-aligned");
    if (pins_.pinned(rowBase))
        return true;
    // Fixed mapping: entry i owns sets [i*setsPerRow, (i+1)*setsPerRow).
    const std::uint64_t setBase = pins_.size() * setsPerRow_;
    const PinEntry *entry = pins_.pin(rowBase, setBase);
    if (entry == nullptr)
        return false;
    std::vector<Addr> writebacks;
    for (std::uint64_t s = setBase; s < setBase + setsPerRow_; ++s)
        cache_.reserveWays(s, cache_.ways(), writebacks);
    // Stale normal-way copies of the row's lines become invalid; their
    // latest contents now live in the pinned copy.  Displaced dirty
    // lines of other rows, however, exist nowhere else — surface them
    // so the caller can post the writebacks.
    const std::uint32_t lineBytes = cache_.config().lineBytes;
    for (Addr a = rowBase; a < rowBase + rowBytes_; a += lineBytes)
        cache_.invalidate(a);
    for (const Addr wb : writebacks) {
        if (wb - rowBase < rowBytes_)
            continue;   // the pinned row's own line: absorbed, not lost
        stats_.inc("pin_evictions");
        if (evicted != nullptr)
            evicted->push_back(wb);
    }
    stats_.inc("rows_pinned");
    return true;
}

std::vector<Addr>
Llc::unpinAll()
{
    std::vector<Addr> rows;
    rows.reserve(pins_.size());
    for (const PinEntry &e : pins_.entries()) {
        rows.push_back(e.rowBase);
        for (std::uint64_t s = e.setBase; s < e.setBase + setsPerRow_; ++s)
            cache_.releaseWays(s);
    }
    pins_.clear();
    return rows;
}

} // namespace srs
