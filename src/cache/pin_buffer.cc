#include "cache/pin_buffer.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

PinBuffer::PinBuffer(std::uint32_t capacity, std::uint32_t rowBytes)
    : capacity_(capacity), rowBytes_(rowBytes)
{
    if (!isPowerOfTwo(rowBytes_))
        fatal("pin-buffer row size must be a power of two");
    entries_.reserve(capacity_);
}

const PinEntry *
PinBuffer::lookup(Addr addr) const
{
    const Addr base = addr & ~static_cast<Addr>(rowBytes_ - 1);
    for (const PinEntry &e : entries_) {
        if (e.rowBase == base)
            return &e;
    }
    return nullptr;
}

bool
PinBuffer::pinned(Addr rowBase) const
{
    return lookup(rowBase) != nullptr;
}

const PinEntry *
PinBuffer::pin(Addr rowBase, std::uint64_t setBase)
{
    SRS_ASSERT((rowBase & (rowBytes_ - 1)) == 0,
               "pin target not row-aligned");
    if (entries_.size() >= capacity_) {
        stats_.inc("pin_rejected_full");
        return nullptr;
    }
    if (pinned(rowBase)) {
        stats_.inc("pin_duplicate");
        return nullptr;
    }
    entries_.push_back(PinEntry{rowBase, setBase});
    stats_.inc("pins");
    return &entries_.back();
}

void
PinBuffer::clear()
{
    entries_.clear();
}

std::uint64_t
PinBuffer::storageBits(std::uint32_t physAddrBits) const
{
    const std::uint64_t tagBits = physAddrBits - floorLog2(rowBytes_);
    return static_cast<std::uint64_t>(capacity_) * tagBits;
}

} // namespace srs
