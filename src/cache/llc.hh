/**
 * @file
 * Shared last-level cache with Scale-SRS row pinning.
 *
 * Composes the set-associative tag store with the pin-buffer: every
 * access is checked against the pin-buffer first (paper Section V-C,
 * "All accesses into the LLC flow through the pin-buffer").  Pinned
 * rows always hit and consume a fixed range of reserved sets; demand
 * traffic mapping into fully-reserved sets streams around the cache.
 */

#ifndef SRS_CACHE_LLC_HH
#define SRS_CACHE_LLC_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/pin_buffer.hh"
#include "common/types.hh"

namespace srs
{

/** Outcome of an LLC access. */
struct LlcResult
{
    bool hit = false;
    bool pinnedHit = false;        ///< served by a pinned row
    bool writebackNeeded = false;
    Addr writebackAddr = kInvalidAddr;
};

/** The shared LLC (paper Table III: 8MB, 16-way, 64B lines). */
class Llc
{
  public:
    /**
     * @param cfg         cache geometry
     * @param rowBytes    DRAM row size (pinning granularity)
     * @param pinCapacity maximum simultaneously pinned rows
     */
    Llc(const CacheConfig &cfg, std::uint32_t rowBytes,
        std::uint32_t pinCapacity);

    /** Access a line; fills on miss. */
    LlcResult access(Addr addr, bool isWrite);

    /**
     * Side-effect-free dirty-victim probe: the writeback address
     * access(@p addr) would emit.  Pinned rows never evict.
     * @return kInvalidAddr when the access would cause no writeback
     */
    Addr probeWriteback(Addr addr) const
    {
        if (pins_.lookup(addr) != nullptr)
            return kInvalidAddr;
        return cache_.victimWritebackAddr(addr);
    }

    /**
     * Pin a DRAM row: reserve its set range and install a pin-buffer
     * entry.  Stale copies of the row's lines are invalidated from the
     * normal ways (their contents are absorbed into the pinned copy,
     * which is written back wholesale at unpin).  Dirty lines of
     * *other* rows displaced from the reserved sets are appended to
     * @p evicted (when given) and must be written back by the caller —
     * dropping them loses committed stores.
     * @return true when pinned; false when the buffer is full.
     */
    bool pinRow(Addr rowBase, std::vector<Addr> *evicted = nullptr);

    /** @return true when the row containing @p addr is pinned. */
    bool rowPinned(Addr addr) const
    {
        return pins_.lookup(addr) != nullptr;
    }

    /**
     * Unpin everything (refresh-interval boundary).
     * @return the base addresses of the rows that were pinned, so the
     *         caller can write their contents back to DRAM.
     */
    std::vector<Addr> unpinAll();

    std::uint32_t pinnedRows() const { return pins_.size(); }

    /** LLC sets consumed per pinned row. */
    std::uint64_t setsPerRow() const { return setsPerRow_; }

    const SetAssocCache &cache() const { return cache_; }
    const PinBuffer &pinBuffer() const { return pins_; }
    const StatSet &stats() const { return stats_; }

  private:
    SetAssocCache cache_;
    PinBuffer pins_;
    std::uint32_t rowBytes_;
    std::uint64_t setsPerRow_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_CACHE_LLC_HH
