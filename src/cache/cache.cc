#include "cache/cache.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

SetAssocCache::SetAssocCache(const CacheConfig &cfg)
    : cfg_(cfg), numSets_(cfg.numSets())
{
    if (numSets_ == 0)
        fatal("cache smaller than one set");
    if (!isPowerOfTwo(numSets_) || !isPowerOfTwo(cfg_.lineBytes))
        fatal("cache geometry must be a power of two");
    lines_.resize(numSets_ * cfg_.ways);
}

Addr
SetAssocCache::lineAlign(Addr addr) const
{
    return addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
}

std::uint64_t
SetAssocCache::setOf(Addr addr) const
{
    return (addr / cfg_.lineBytes) & (numSets_ - 1);
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool isWrite)
{
    const Addr tag = lineAlign(addr);
    const std::uint64_t set = setOf(addr);
    Line *base = &lines_[set * cfg_.ways];

    std::uint32_t reserved = 0;
    if (const auto it = reservedWays_.find(set); it != reservedWays_.end())
        reserved = it->second;
    const std::uint32_t usable = cfg_.ways - reserved;

    CacheAccessResult res;
    ++useClock_;

    // Hit path: reserved ways were invalidated at reservation time, so
    // scanning only the usable prefix is sufficient.
    for (std::uint32_t w = 0; w < usable; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || isWrite;
            res.hit = true;
            stats_.inc("hits");
            return res;
        }
    }

    stats_.inc("misses");
    if (usable == 0) {
        // Fully reserved set: stream around the cache.
        res.bypassed = true;
        stats_.inc("bypasses");
        return res;
    }

    // Fill: pick invalid way or LRU victim among usable ways.
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < usable; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        res.writebackNeeded = true;
        res.writebackAddr = victim->tag;
        stats_.inc("writebacks");
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = isWrite;
    victim->lastUse = useClock_;
    return res;
}

Addr
SetAssocCache::victimWritebackAddr(Addr addr) const
{
    const Addr tag = lineAlign(addr);
    const std::uint64_t set = setOf(addr);
    const Line *base = &lines_[set * cfg_.ways];

    std::uint32_t reserved = 0;
    if (const auto it = reservedWays_.find(set); it != reservedWays_.end())
        reserved = it->second;
    const std::uint32_t usable = cfg_.ways - reserved;

    for (std::uint32_t w = 0; w < usable; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return kInvalidAddr;   // hit: nothing evicted
    }
    if (usable == 0)
        return kInvalidAddr;       // bypass: nothing allocated
    const Line *victim = nullptr;
    for (std::uint32_t w = 0; w < usable; ++w) {
        const Line &line = base[w];
        if (!line.valid)
            return kInvalidAddr;   // invalid way: fill without eviction
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    return victim->dirty ? victim->tag : kInvalidAddr;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr tag = lineAlign(addr);
    const std::uint64_t set = setOf(addr);
    const Line *base = &lines_[set * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const Addr tag = lineAlign(addr);
    const std::uint64_t set = setOf(addr);
    Line *base = &lines_[set * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            const bool wasDirty = line.dirty;
            line = Line{};
            return wasDirty;
        }
    }
    return false;
}

void
SetAssocCache::reserveWays(std::uint64_t set, std::uint32_t ways,
                           std::vector<Addr> &writebacks)
{
    SRS_ASSERT(set < numSets_, "set out of range");
    SRS_ASSERT(ways <= cfg_.ways, "reserving more ways than exist");
    reservedWays_[set] = ways;
    // Reserved ways live at the top of the set; displace residents.
    Line *base = &lines_[set * cfg_.ways];
    for (std::uint32_t w = cfg_.ways - ways; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.dirty)
            writebacks.push_back(line.tag);
        line = Line{};
    }
}

void
SetAssocCache::releaseWays(std::uint64_t set)
{
    reservedWays_.erase(set);
}

} // namespace srs
