/**
 * @file
 * On-chip storage model (paper Table IV) and the Section VIII-4
 * single-RIT optimization.
 *
 * RIT sizing rule: each swap creates mappings in both directions
 * (RRS: tuple pairs; SRS: real + mirrored halves).  RRS retains
 * entries for two epochs (current + previous, cleaned on demand),
 * while Scale-SRS's paced place-back frees the previous epoch's
 * entries continuously, so only one epoch's worth must be
 * provisioned.  Entries are 40 bits (two 17-bit row ids, valid,
 * lock, spare) and the table is over-provisioned by 5% against CAT
 * bucket conflicts.
 */

#ifndef SRS_SECURITY_STORAGE_MODEL_HH
#define SRS_SECURITY_STORAGE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace srs
{

/** Inputs to the storage computation. */
struct StorageParams
{
    std::uint32_t trh = 1200;
    std::uint32_t rrsSwapRate = 6;
    std::uint32_t scaleSrsSwapRate = 3;
    std::uint64_t actMaxPerEpoch = 1360000;
    std::uint32_t rowBits = 17;
    double catOverProvision = 1.05;
    std::uint64_t swapBufferBytes = 1024;
    std::uint64_t placeBackBufferBytes = 8 * 1024;
    std::uint32_t epochRegisterBits = 19;
    std::uint32_t pinBufferEntries = 66;    ///< T_RH-dependent in paper
    std::uint32_t pinEntryBits = 35;
};

/** One line of the Table IV breakdown. */
struct StorageLine
{
    std::string structure;
    std::uint64_t rrsBytes = 0;
    std::uint64_t scaleSrsBytes = 0;
};

/** Per-bank storage accounting for RRS vs Scale-SRS. */
class StorageModel
{
  public:
    explicit StorageModel(const StorageParams &params);

    /** RIT bytes per bank for RRS (tuples, two epochs retained). */
    std::uint64_t ritBytesRrs() const;

    /** RIT bytes per bank for Scale-SRS (one epoch retained). */
    std::uint64_t ritBytesScaleSrs() const;

    /** Section VIII-4: fold the mirrored half into a direction bit. */
    std::uint64_t ritBytesScaleSrsSingleTable() const;

    /** Full Table IV breakdown. */
    std::vector<StorageLine> breakdown() const;

    std::uint64_t totalRrsBytes() const;
    std::uint64_t totalScaleSrsBytes() const;

    /** The headline ratio (paper: ~3.3x at T_RH = 1200). */
    double savingsRatio() const;

    const StorageParams &params() const { return params_; }

  private:
    std::uint64_t ritEntries(std::uint32_t swapRate,
                             std::uint32_t epochsRetained) const;

    StorageParams params_;
};

} // namespace srs

#endif // SRS_SECURITY_STORAGE_MODEL_HH
