#include "security/half_double.hh"

#include <cmath>

#include "common/logging.hh"

namespace srs
{

HalfDoubleModel::HalfDoubleModel(const HalfDoubleParams &params)
    : params_(params)
{
    if (params_.trh == 0 || params_.victimRefreshPeriod == 0)
        fatal("half-double: T_RH and T_V must be nonzero");
    if (params_.blastRadius == 0)
        fatal("half-double: blast radius must be nonzero");
}

double
HalfDoubleModel::inducedActivations(std::uint32_t distance,
                                    std::uint64_t aggressorActs) const
{
    if (distance == 0)
        return static_cast<double>(aggressorActs);

    const double tv = params_.victimRefreshPeriod;
    double acts = static_cast<double>(aggressorActs);
    if (!params_.refreshesCounted) {
        // Every T_V aggressor activations refresh the whole blast
        // radius once; each refresh activates every row in it, and
        // those activations are invisible to the tracker, so no
        // further mitigations dampen them.  Rows beyond the radius
        // receive leakage from the outermost refreshed row but no
        // refreshes of their own.
        if (distance <= params_.blastRadius + 1)
            acts = acts / tv;
        else
            acts = 0.0;
    } else {
        // Counted refreshes re-arm the tracker at every level: each
        // additional hop costs another factor of T_V.
        for (std::uint32_t d = 0; d < distance; ++d)
            acts /= tv;
    }
    if (distance <= params_.blastRadius + 1)
        acts += params_.directDribble;
    return acts;
}

HalfDoubleResult
HalfDoubleModel::evaluateAtDistance(std::uint32_t distance) const
{
    HalfDoubleResult res;
    if (distance == 0) {
        // The aggressor row itself: the attacker just hammers it.
        res.aggressorActsNeeded = params_.trh;
        res.inducedActs = params_.trh;
        res.feasibleWithinEpoch =
            params_.trh <= params_.actMaxPerEpoch;
        res.epochFraction = static_cast<double>(params_.trh) /
                            static_cast<double>(params_.actMaxPerEpoch);
        return res;
    }

    const double dribble = params_.directDribble;
    if (dribble >= params_.trh) {
        res.aggressorActsNeeded = 0;
        res.inducedActs = dribble;
        res.feasibleWithinEpoch = true;
        res.epochFraction = 0.0;
        return res;
    }
    const double needed = static_cast<double>(params_.trh) - dribble;

    const double tv = params_.victimRefreshPeriod;
    double amplification;
    if (!params_.refreshesCounted) {
        amplification =
            distance <= params_.blastRadius + 1 ? tv : 0.0;
    } else {
        amplification = std::pow(tv, distance);
    }
    if (amplification <= 0.0) {
        // Beyond the refresh reach nothing arrives: unbreakable via
        // this channel.
        res.aggressorActsNeeded = ~0ULL;
        return res;
    }

    const double h = needed * amplification;
    res.aggressorActsNeeded = static_cast<std::uint64_t>(std::ceil(h));
    res.inducedActs =
        inducedActivations(distance, res.aggressorActsNeeded);
    res.epochFraction =
        h / static_cast<double>(params_.actMaxPerEpoch);
    res.feasibleWithinEpoch = res.epochFraction <= 1.0;
    return res;
}

HalfDoubleResult
HalfDoubleModel::evaluate() const
{
    return evaluateAtDistance(params_.blastRadius + 1);
}

std::uint32_t
HalfDoubleModel::maxVulnerablePeriod() const
{
    // Feasible while T_V * (T_RH - dribble) <= ACT_max.
    const double dribble = params_.directDribble;
    if (dribble >= params_.trh)
        return ~0u;
    const double needed = static_cast<double>(params_.trh) - dribble;
    const double tv =
        static_cast<double>(params_.actMaxPerEpoch) / needed;
    return static_cast<std::uint32_t>(std::floor(tv));
}

bool
HalfDoubleModel::distance1Safe(std::uint32_t sides) const
{
    return static_cast<std::uint64_t>(sides) *
               params_.victimRefreshPeriod <
           params_.trh;
}

} // namespace srs
