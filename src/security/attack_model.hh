/**
 * @file
 * Analytical model of the Juggernaut attack pattern — a direct
 * implementation of paper Section III-B (Equations 1-10) and the SRS
 * security analysis of Section IV-E (Equations 11-12).
 *
 * The same machinery covers:
 *  - Figure 1(a): the random-guess-only attack on RRS (N = 0);
 *  - Figure 6:    time-to-break RRS vs. attack rounds N;
 *  - Figure 7:    required correct guesses k vs. N;
 *  - Figure 10:   SRS vs. RRS across swap rates (RRS at optimal N);
 *  - Section III-C: the multi-bank attack degradation;
 *  - Section VIII-3/5: open-page and DDR5 (2x refresh) variants.
 */

#ifndef SRS_SECURITY_ATTACK_MODEL_HH
#define SRS_SECURITY_ATTACK_MODEL_HH

#include <cstdint>

#include "sim/workload_spec.hh"

namespace srs
{

/**
 * Open-page per-activation time factor, calibrated so the
 * Section VIII-3 anchor holds: Juggernaut vs RRS at T_RH 4800 and
 * swap rate 6 takes ~4 hours closed-page and ~10 days open-page.
 * (The interleaved second row is itself a useful aggressor, so the
 * effective cost is well below a full 2x tRC.)
 */
constexpr double kOpenPageActFactor = 1.35;

/** Parameters of Table II plus environment knobs. */
struct AttackParams
{
    std::uint32_t trh = 4800;         ///< Row Hammer threshold
    std::uint32_t swapRate = 6;       ///< T_RH / T_S
    std::uint64_t rowsPerBank = 131072;

    double tRcSec = 45e-9;            ///< row cycle time
    double tRfcSec = 350e-9;          ///< refresh command time
    std::uint64_t refreshOpsPerEpoch = 8192;
    double epochSec = 64e-3;          ///< refresh interval

    double tSwapSec = 2.7e-6;         ///< swap latency
    double tReswapSec = 5.4e-6;       ///< unswap-swap latency
    double latentPerRound = 1.5;      ///< L (paper footnote 2)

    /**
     * Per-activation time multiplier.  1.0 = closed page; under an
     * open-page controller the attacker must interleave a second
     * row to force each activation (Section VIII-3), costing extra
     * time per target ACT.  kOpenPageActFactor reproduces the
     * paper's anchor (4 hours -> ~10 days at T_RH 4800, rate 6).
     */
    double actTimeFactor = 1.0;

    std::uint32_t ts() const { return trh / swapRate; }
};

/**
 * Derive AttackParams from a performance-sweep SystemAxes identity.
 *
 * The security and performance figures share one definition of the
 * environment: the axes' effective DRAM timings (preset + overrides)
 * give the refresh epoch and the per-epoch refresh budget, scaled
 * from the paper's DDR4 anchors (tREFI 7800 ns -> 64 ms epochs with
 * 8192 refresh commands), tRC/tRFC give the activation and refresh
 * command times, and an open page policy applies
 * kOpenPageActFactor.  On the default ddr4 axes this returns exactly
 * the paper-default AttackParams; on `@ddr5` it reproduces the
 * Section VIII-5 environment (32 ms epochs, 4096 refresh ops).
 *
 * @param axes performance-cell axes (validated; overrides applied)
 * @param trh  Row Hammer threshold
 * @param rate swap rate (T_RH / T_S)
 */
AttackParams attackParamsFromAxes(const SystemAxes &axes,
                                  std::uint32_t trh,
                                  std::uint32_t rate);

/** Everything Equations 1-10 produce for one choice of N. */
struct AttackResult
{
    std::uint64_t rounds = 0;        ///< N
    double actAggr = 0.0;            ///< Eq. 1 (or Eq. 11 for SRS)
    double actLeft = 0.0;            ///< Eq. 2 / Eq. 12
    std::uint64_t k = 0;             ///< Eq. 3: required correct guesses
    double tActualSec = 0.0;         ///< Eq. 4
    double tAggrSec = 0.0;           ///< Eq. 5
    double tLeftSec = 0.0;           ///< Eq. 6
    double guesses = 0.0;            ///< Eq. 7: G
    double pSuccess = 0.0;           ///< Eq. 8 at k
    double expectedEpochs = 0.0;     ///< Eq. 9
    double timeToBreakSec = 0.0;     ///< Eq. 10
    bool feasible = false;           ///< N fits in the epoch, p > 0
};

/** The analytical attack model. */
class JuggernautModel
{
  public:
    explicit JuggernautModel(const AttackParams &params);

    /** Attack RRS with N biasing rounds (Eq. 1-10). */
    AttackResult evaluateRrs(std::uint64_t rounds) const;

    /**
     * Attack SRS: latent activations do not accumulate (Eq. 11-12),
     * so the optimal strategy is pure random guessing (N = 0).
     */
    AttackResult evaluateSrs() const;

    /** RRS at the attacker-optimal N in [0, maxRounds]. */
    AttackResult bestRrs(std::uint64_t maxRounds = 2000) const;

    /** Required correct guesses k as a function of N (Figure 7). */
    std::uint64_t requiredGuesses(std::uint64_t rounds) const;

    /**
     * Multi-bank attack (Section III-C): hammering B banks serializes
     * biasing rounds and guesses across the shared command/data path,
     * dividing the per-bank time budget by B; success requires any
     * bank's target to break.
     */
    AttackResult evaluateRrsMultiBank(std::uint32_t banks,
                                      std::uint64_t maxRounds
                                      = 2000) const;

    const AttackParams &params() const { return params_; }

  private:
    AttackResult evaluate(std::uint64_t rounds, double latentPerRound,
                          double timeShare) const;

    AttackParams params_;
};

} // namespace srs

#endif // SRS_SECURITY_ATTACK_MODEL_HH
