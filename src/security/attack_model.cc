#include "security/attack_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

JuggernautModel::JuggernautModel(const AttackParams &params)
    : params_(params)
{
    if (params_.swapRate < 2)
        fatal("swap rate must be at least 2");
    if (params_.ts() == 0)
        fatal("T_S rounds to zero");
}

AttackResult
JuggernautModel::evaluate(std::uint64_t rounds, double latentPerRound,
                          double timeShare) const
{
    const double ts = params_.ts();
    const double tRc = params_.tRcSec * params_.actTimeFactor;
    AttackResult r;
    r.rounds = rounds;

    // Eq. 1 / Eq. 11: 2*T_S - 1 direct activations plus one latent
    // from the initial swap, plus L per unswap-swap round.
    r.actAggr = 2.0 * ts + latentPerRound * static_cast<double>(rounds);

    // Eq. 2 / Eq. 12.
    r.actLeft = static_cast<double>(params_.trh) - r.actAggr;

    // Eq. 3.
    r.k = r.actLeft <= 0.0
        ? 0
        : static_cast<std::uint64_t>(std::ceil(r.actLeft / ts));

    // Eq. 4: time usable by the attacker within one epoch.
    r.tActualSec = (params_.epochSec -
                    params_.tRfcSec *
                        static_cast<double>(params_.refreshOpsPerEpoch)) *
                   timeShare;

    // Eq. 5: biasing-round time.
    r.tAggrSec = ((ts - 1.0) * tRc + params_.tReswapSec) *
                 static_cast<double>(rounds);

    // Eq. 6: time left for random guessing.
    r.tLeftSec = r.tActualSec - r.tAggrSec -
                 (tRc * (2.0 * ts - 1.0) + params_.tSwapSec);

    if (r.tLeftSec <= 0.0)
        return r; // infeasible: rounds exceed the epoch

    // Eq. 7.
    r.guesses = r.tLeftSec / (tRc * (ts - 1.0) + params_.tSwapSec);

    // Eq. 8: the probability that exactly k of G uniform guesses land
    // on the aggressor's original location.
    const double pRow = 1.0 / static_cast<double>(params_.rowsPerBank);
    const auto g = static_cast<std::uint64_t>(r.guesses);
    if (r.k == 0) {
        r.pSuccess = 1.0; // latent activations alone cross T_RH
    } else if (r.k > g) {
        r.pSuccess = 0.0;
    } else {
        r.pSuccess = binomialPmf(g, r.k, pRow);
    }

    if (r.pSuccess <= 0.0)
        return r;

    // Eq. 9-10.
    r.expectedEpochs = 1.0 / r.pSuccess;
    r.timeToBreakSec = params_.epochSec * r.expectedEpochs;
    r.feasible = true;
    return r;
}

AttackResult
JuggernautModel::evaluateRrs(std::uint64_t rounds) const
{
    return evaluate(rounds, params_.latentPerRound, 1.0);
}

AttackResult
JuggernautModel::evaluateSrs() const
{
    // Swap-only indirection: unswap-swap rounds deposit nothing, so
    // the attacker skips phase one entirely (Section IV-E).
    return evaluate(0, 0.0, 1.0);
}

AttackResult
JuggernautModel::bestRrs(std::uint64_t maxRounds) const
{
    AttackResult best;
    best.timeToBreakSec = std::numeric_limits<double>::infinity();
    for (std::uint64_t n = 0; n <= maxRounds; n += 1) {
        const AttackResult r = evaluateRrs(n);
        if (r.feasible && r.timeToBreakSec < best.timeToBreakSec)
            best = r;
    }
    return best;
}

std::uint64_t
JuggernautModel::requiredGuesses(std::uint64_t rounds) const
{
    return evaluateRrs(rounds).k;
}

AttackResult
JuggernautModel::evaluateRrsMultiBank(std::uint32_t banks,
                                      std::uint64_t maxRounds) const
{
    SRS_ASSERT(banks >= 1, "need at least one bank");
    AttackResult best;
    best.timeToBreakSec = std::numeric_limits<double>::infinity();
    for (std::uint64_t n = 0; n <= maxRounds; ++n) {
        // Each bank only gets 1/banks of the attacker's time.
        AttackResult r =
            evaluate(n, params_.latentPerRound,
                     1.0 / static_cast<double>(banks));
        if (!r.feasible)
            continue;
        // Success when any of the `banks` independent targets breaks.
        const double pAny =
            1.0 - std::pow(1.0 - r.pSuccess, static_cast<double>(banks));
        if (pAny <= 0.0)
            continue;
        r.pSuccess = pAny;
        r.expectedEpochs = 1.0 / pAny;
        r.timeToBreakSec = params_.epochSec * r.expectedEpochs;
        if (r.timeToBreakSec < best.timeToBreakSec)
            best = r;
    }
    return best;
}

AttackParams
attackParamsFromAxes(const SystemAxes &axes, std::uint32_t trh,
                     std::uint32_t rate)
{
    axes.validate();
    const DramTimingNs eff = axes.effectiveTimingNs();
    const DramTimingNs ddr4 = DramTimingNs::preset(DramPreset::Ddr4);
    // The paper's DDR4 anchor: tREFI 7800 ns <=> a 64 ms refresh
    // epoch holding 8192 refresh commands.  Halving tREFI (DDR5)
    // halves both; a relaxed @trefi override stretches both.
    const double refiRatio = eff.tREFI / ddr4.tREFI;
    AttackParams p;
    p.trh = trh;
    p.swapRate = rate;
    // Rows-per-bank is not a swept axis (see SystemAxes): every org
    // keeps the Table III row count, same as the performance cells.
    p.rowsPerBank = DramOrg{}.rowsPerBank;
    p.epochSec *= refiRatio;
    p.refreshOpsPerEpoch = static_cast<std::uint64_t>(
        static_cast<double>(p.refreshOpsPerEpoch) * refiRatio);
    p.tRcSec = eff.tRC * 1e-9;
    p.tRfcSec = eff.tRFC * 1e-9;
    if (axes.pagePolicy == PagePolicy::Open)
        p.actTimeFactor = kOpenPageActFactor;
    return p;
}

} // namespace srs
