/**
 * @file
 * Security-figure sweep engine: the analytic/Monte-Carlo attack
 * models on the same (axes, trh, rate) grid as the performance
 * sweeps.
 *
 * Each SecurityCell names a machine variant (SystemAxes — page
 * policy, DRAM preset, organization, timing overrides), a defense
 * (SRS or RRS), a Row Hammer threshold, a swap rate and — for RRS —
 * a biasing-round count N (or "best", the attacker-optimal N).  The
 * cell's AttackParams are derived from the axes via
 * attackParamsFromAxes(), so the security figures and the
 * performance figures share one definition of what e.g. "DDR5"
 * means; no bench hand-rolls epochSec any more.
 *
 * Results go into the shared schema-v6 sweep CSV (25 columns,
 * docs/sweep-format.md): the identity prefix carries the attack
 * label (`attack:srs`, `attack:rrs@n=800`, `attack:rrs@best`) in the
 * workload_spec column, `-` as the tracker, and the payload columns
 * are reinterpreted — ipc = Monte-Carlo mean time-to-break (s),
 * baseline_ipc = analytic time-to-break (s), normalized = their
 * ratio, swaps = k, unswap_swaps = G, place_backs = N; the v6
 * columns carry the campaign's iteration/censored counts and the
 * p_break estimate with its 95% confidence interval.
 *
 * Determinism: per-cell seeds are SweepRunner::cellSeed over a
 * canonical cell key, each cell's campaign runs a serial
 * MonteCarloAttack (itself internally stratified — results are
 * thread- and shard-count invariant), and cells land in
 * pre-assigned slots, so CSV output is byte-identical at any
 * thread count.
 */

#ifndef SRS_SECURITY_SECURITY_SWEEP_HH
#define SRS_SECURITY_SECURITY_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "security/attack_model.hh"
#include "security/monte_carlo.hh"
#include "sim/workload_spec.hh"

namespace srs
{

/** Which mitigation the modeled attack runs against. */
enum class SecurityDefense
{
    Srs, ///< (Scale-)SRS: random guessing only (evaluateSrs)
    Rrs, ///< RRS under Juggernaut biasing (evaluateRrs/bestRrs)
};

/** @return printable defense name ("srs" / "rrs"). */
const char *securityDefenseName(SecurityDefense defense);

/** Inverse of securityDefenseName(); fatal() on anything else. */
SecurityDefense securityDefenseFromName(const std::string &name);

/** One security experiment point. */
struct SecurityCell
{
    SystemAxes axes;
    SecurityDefense defense = SecurityDefense::Srs;
    std::uint32_t trh = 4800;
    std::uint32_t swapRate = 6;
    /** RRS biasing rounds N; ignored for SRS. */
    std::uint64_t rounds = 0;
    /** True: use the attacker-optimal N (bestRrs) instead. */
    bool bestRounds = false;

    /**
     * Attack label for the CSV workload_spec column:
     * `attack:srs`, `attack:rrs@n=<N>` or `attack:rrs@best`.
     */
    std::string label() const;
};

/**
 * Cross-product security-sweep description.  expand() enumerates
 * cells with the system axes outermost (the same policy -> preset ->
 * org -> timing-knob order as SweepGrid), then defenses, trhs,
 * swapRates, and the RRS rounds axis innermost (SRS cells ignore it
 * and appear once per (axes, trh, rate)).  Invalid combinations
 * (swap rate < 2, T_S rounding to zero) are fatal() at expansion,
 * before any campaign starts.
 */
struct SecurityGrid
{
    /** Attacker-optimal rounds sentinel for the rounds axis. */
    static constexpr std::uint64_t kBestRounds = ~0ULL;

    std::vector<PagePolicy> pagePolicies = {PagePolicy::Closed};
    std::vector<DramPreset> presets = {DramPreset::Ddr4};
    std::vector<std::string> orgs = {"2x1x16"};
    std::vector<std::uint32_t> tRcOverrides = {0};
    std::vector<std::uint32_t> tRcdOverrides = {0};
    std::vector<std::uint32_t> tRpOverrides = {0};
    std::vector<std::uint32_t> tRefiOverrides = {0};
    std::vector<std::uint32_t> tRfcOverrides = {0};
    std::vector<SecurityDefense> defenses;
    std::vector<std::uint32_t> trhs;
    std::vector<std::uint32_t> swapRates;
    /** RRS rounds axis (kBestRounds = attacker-optimal N). */
    std::vector<std::uint64_t> rounds = {kBestRounds};

    /** The system-axes axis, exactly as SweepGrid::axes(). */
    std::vector<SystemAxes> axes() const;

    std::vector<SecurityCell> expand() const;
};

/** Result of one security cell, in input order. */
struct SecurityResult
{
    SecurityCell cell;
    /** Campaign seed actually used (SecuritySweep::cellSeed). */
    std::uint64_t seed = 0;
    /** Analytic evaluation at the cell's (resolved) rounds. */
    AttackResult analytic;
    /** Monte-Carlo campaign; iterations == 0 when analytic-only. */
    MonteCarloResult mc;
};

/** Thread-pool-backed security-sweep executor. */
class SecuritySweep
{
  public:
    /**
     * @param baseSeed campaign base seed; per-cell seeds derive
     *                 from it via cellSeed()
     * @param threads  worker count; 0 picks hardware concurrency.
     *                 Changing it never changes results.
     */
    explicit SecuritySweep(std::uint64_t baseSeed,
                           std::size_t threads = 0);

    /** Monte-Carlo trials per cell; 0 (default) = analytic only. */
    void setIterations(std::uint64_t iterations);

    /** As MonteCarloAttack::runRrs epochLoopLimit (default 1e5). */
    void setEpochLoopLimit(std::uint64_t limit);

    /** Run every cell; results in cell order. */
    std::vector<SecurityResult>
    run(const std::vector<SecurityCell> &cells);

    /** Convenience: expand + run. */
    std::vector<SecurityResult> run(const SecurityGrid &grid);

    std::size_t threadCount() const;

    /**
     * Campaign seed for one cell: SweepRunner::cellSeed over the
     * canonical key `<label>,<trh>,<rate>,<axes field>` — a pure
     * function of the cell identity, independent of grid position.
     */
    static std::uint64_t cellSeed(std::uint64_t base,
                                  const SecurityCell &cell);

    /**
     * One schema-v6 CSV data row (no trailing newline) for result
     * @p r at cell index @p index — same 25-column shape as
     * SweepRunner::formatRow (see the file comment for the payload
     * reinterpretation).
     */
    static std::string formatRow(std::size_t index,
                                 const SecurityResult &r);

    /** Shared v6 header + one line per result (stable formatting). */
    static void writeCsv(std::ostream &os,
                         const std::vector<SecurityResult> &results);

  private:
    std::uint64_t seed_;
    std::uint64_t iterations_ = 0;
    std::uint64_t epochLoopLimit_ = 100000;
    ThreadPool pool_;
};

} // namespace srs

#endif // SRS_SECURITY_SECURITY_SWEEP_HH
