#include "security/storage_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

StorageModel::StorageModel(const StorageParams &params)
    : params_(params)
{
    if (params_.trh / params_.rrsSwapRate == 0 ||
        params_.trh / params_.scaleSrsSwapRate == 0) {
        fatal("storage model: T_S rounds to zero");
    }
}

std::uint64_t
StorageModel::ritEntries(std::uint32_t swapRate,
                         std::uint32_t epochsRetained) const
{
    const std::uint32_t ts = params_.trh / swapRate;
    const std::uint64_t swapsPerEpoch =
        ceilDiv(params_.actMaxPerEpoch, ts);
    // Two directions per swap (tuple / real+mirrored).
    const double entries = 2.0 *
        static_cast<double>(swapsPerEpoch) * epochsRetained *
        params_.catOverProvision;
    return static_cast<std::uint64_t>(std::ceil(entries));
}

std::uint64_t
StorageModel::ritBytesRrs() const
{
    // 40-bit entries: two row ids + valid + lock + spare.
    const std::uint64_t entryBits = 2ULL * params_.rowBits + 6;
    return ritEntries(params_.rrsSwapRate, 2) * entryBits / 8;
}

std::uint64_t
StorageModel::ritBytesScaleSrs() const
{
    const std::uint64_t entryBits = 2ULL * params_.rowBits + 6;
    return ritEntries(params_.scaleSrsSwapRate, 1) * entryBits / 8;
}

std::uint64_t
StorageModel::ritBytesScaleSrsSingleTable() const
{
    // Section VIII-4: one table with an original/reverse tag bit
    // halves the entry count at the cost of one bit per entry.
    const std::uint64_t entryBits = 2ULL * params_.rowBits + 7;
    return ritEntries(params_.scaleSrsSwapRate, 1) / 2 * entryBits / 8;
}

std::vector<StorageLine>
StorageModel::breakdown() const
{
    std::vector<StorageLine> lines;
    lines.push_back({"RIT", ritBytesRrs(), ritBytesScaleSrs()});
    lines.push_back({"Swap-Buffer", params_.swapBufferBytes,
                     params_.swapBufferBytes});
    lines.push_back({"Place-Back Buffer", 0,
                     params_.placeBackBufferBytes});
    lines.push_back({"Epoch Register", 0,
                     (params_.epochRegisterBits + 7) / 8});
    lines.push_back(
        {"Pin Buffer", 0,
         static_cast<std::uint64_t>(params_.pinBufferEntries) *
             params_.pinEntryBits / 8});
    return lines;
}

std::uint64_t
StorageModel::totalRrsBytes() const
{
    std::uint64_t total = 0;
    for (const StorageLine &l : breakdown())
        total += l.rrsBytes;
    return total;
}

std::uint64_t
StorageModel::totalScaleSrsBytes() const
{
    std::uint64_t total = 0;
    for (const StorageLine &l : breakdown())
        total += l.scaleSrsBytes;
    return total;
}

double
StorageModel::savingsRatio() const
{
    return static_cast<double>(totalRrsBytes()) /
           static_cast<double>(totalScaleSrsBytes());
}

} // namespace srs
