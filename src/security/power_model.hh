/**
 * @file
 * Power-overhead model (paper Table V).
 *
 * SRAM power: an affine CACTI-6.0 surrogate at 32nm calibrated to
 * the paper's two data points (RRS 36KB -> 903 mW, Scale-SRS
 * 18.7KB -> 703 mW): P = base + slope * KB, where the base term
 * captures peripheral/decoder power and the slope the array.
 *
 * DRAM power: swap traffic expressed in row-movement units per
 * mitigation.  RRS re-mitigations move two row pairs (unswap-swap)
 * at swap rate 6; Scale-SRS moves one pair at swap rate 3 plus a
 * counter access — calibrated so the worst case lands on the paper's
 * 0.5% / 0.2% overheads.
 */

#ifndef SRS_SECURITY_POWER_MODEL_HH
#define SRS_SECURITY_POWER_MODEL_HH

#include <cstdint>

namespace srs
{

/** Calibration constants (see file header). */
struct PowerParams
{
    double sramBaseMw = 487.0;       ///< peripheral power
    double sramSlopeMwPerKb = 11.56; ///< array power per KB
    /** DRAM overhead percent per row-movement unit at swap rate 1. */
    double dramPctPerUnit = 0.25;
};

/** Power estimates for a mitigation configuration. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params = {});

    /** SRAM power (mW) for @p sramKb of on-chip structures. */
    double sramPowerMw(double sramKb) const;

    /**
     * DRAM power overhead (percent of DRAM power) from swaps.
     * @param swapRate      T_RH / T_S
     * @param movesPerMitigation  2 for RRS unswap-swap, 1 for SRS
     */
    double dramOverheadPct(std::uint32_t swapRate,
                           double movesPerMitigation) const;

  private:
    PowerParams params_;
};

} // namespace srs

#endif // SRS_SECURITY_POWER_MODEL_HH
