/**
 * @file
 * Analytical model of the half-double attack against victim-focused
 * mitigation (Google 2021; paper Sections I, II-E and IX-B).
 *
 * Half-double is the motivation for aggressor-focused designs: a
 * VFM defense refreshes the rows within the blast radius of a
 * recognized aggressor, but each such refresh is itself an
 * activation of the victim row.  Those induced activations are
 * invisible to the aggressor tracker (they happen inside the
 * mitigation), so a distance-(n+1) row can be hammered *through*
 * the defense: hammering the aggressor H times induces about
 * H / T_V activations on each blast-radius row, where T_V is the
 * VFM mitigation period in aggressor activations.
 *
 * The model exposes the resulting trade-off: an aggressive VFM
 * (small T_V) pays high refresh overhead *and* hands the attacker
 * more induced activations per unit time, while a lazy VFM (T_V
 * close to T_RH) risks the classic distance-1 attack.  Row-swap
 * defenses sidestep the dilemma because their mitigative action
 * does not activate neighbours — the paper's core argument.
 */

#ifndef SRS_SECURITY_HALF_DOUBLE_HH
#define SRS_SECURITY_HALF_DOUBLE_HH

#include <cstdint>

namespace srs
{

/** Inputs of the half-double feasibility analysis. */
struct HalfDoubleParams
{
    std::uint32_t trh = 4800;            ///< Row Hammer threshold

    /**
     * VFM mitigation period T_V: the defense refreshes the blast
     * radius once per T_V aggressor activations.  For a threshold
     * tracker this is the tracker threshold; for PARA it is 1/p.
     */
    std::uint32_t victimRefreshPeriod = 128;

    std::uint32_t blastRadius = 1;       ///< rows refreshed per side

    /** Direct activations the attacker dribbles onto the
     *  blast-radius row itself (kept below tracker visibility). */
    std::uint32_t directDribble = 0;

    /** Attacker activation budget within one refresh interval. */
    std::uint64_t actMaxPerEpoch = 1360000;

    /**
     * When true, the defense feeds its own refreshes back into the
     * aggressor tracker (the fix Section IX-B discusses, requiring
     * proprietary row mappings): escalation then compounds one
     * factor of T_V per blast-radius level.
     */
    bool refreshesCounted = false;
};

/** Result of one feasibility query. */
struct HalfDoubleResult
{
    std::uint64_t aggressorActsNeeded = 0; ///< H to flip the target
    double inducedActs = 0.0;      ///< activations at the target row
    bool feasibleWithinEpoch = false;
    double epochFraction = 0.0;    ///< H / ACT_max
};

/** The half-double feasibility model. */
class HalfDoubleModel
{
  public:
    explicit HalfDoubleModel(const HalfDoubleParams &params);

    /**
     * Induced activations at distance @p distance from the
     * aggressor after @p aggressorActs direct activations.
     * Distance 0 is the aggressor itself.
     */
    double inducedActivations(std::uint32_t distance,
                              std::uint64_t aggressorActs) const;

    /**
     * Feasibility of flipping bits at @p distance (the half-double
     * target is blastRadius + 1).
     */
    HalfDoubleResult evaluateAtDistance(std::uint32_t distance) const;

    /** The canonical half-double query: distance blastRadius + 1. */
    HalfDoubleResult evaluate() const;

    /**
     * Largest mitigation period T_V for which half-double fits in
     * one refresh interval — the "danger zone" boundary: a VFM with
     * T_V at or below this value is exposed.
     */
    std::uint32_t maxVulnerablePeriod() const;

    /**
     * Classic distance-1 safety check: with @p sides simultaneous
     * aggressors, the victim sees at most sides * T_V activations
     * between its refreshes; safe while that stays below T_RH.
     */
    bool distance1Safe(std::uint32_t sides = 2) const;

    const HalfDoubleParams &params() const { return params_; }

  private:
    HalfDoubleParams params_;
};

} // namespace srs

#endif // SRS_SECURITY_HALF_DOUBLE_HH
