#include "security/security_sweep.hh"

#include <cstdio>
#include <mutex>
#include <ostream>

#include "common/logging.hh"
#include "sim/sweep.hh"

namespace srs
{

const char *
securityDefenseName(SecurityDefense defense)
{
    switch (defense) {
    case SecurityDefense::Srs:
        return "srs";
    case SecurityDefense::Rrs:
        return "rrs";
    }
    fatal("unknown SecurityDefense ", static_cast<int>(defense));
}

SecurityDefense
securityDefenseFromName(const std::string &name)
{
    if (name == "srs")
        return SecurityDefense::Srs;
    if (name == "rrs")
        return SecurityDefense::Rrs;
    fatal("unknown security defense '", name, "' (want srs or rrs)");
}

std::string
SecurityCell::label() const
{
    if (defense == SecurityDefense::Srs)
        return "attack:srs";
    if (bestRounds)
        return "attack:rrs@best";
    return "attack:rrs@n=" + std::to_string(rounds);
}

std::vector<SystemAxes>
SecurityGrid::axes() const
{
    // Mirrors SweepGrid::axes() axis-for-axis so a security sweep
    // enumerates machine variants in the same order as the
    // performance sweep it accompanies.
    std::vector<SystemAxes> out;
    out.reserve(pagePolicies.size() * presets.size() * orgs.size()
                * tRcOverrides.size() * tRcdOverrides.size()
                * tRpOverrides.size() * tRefiOverrides.size()
                * tRfcOverrides.size());
    for (const PagePolicy policy : pagePolicies) {
        for (const DramPreset preset : presets) {
            for (const std::string &org : orgs) {
                for (const std::uint32_t trc : tRcOverrides) {
                    for (const std::uint32_t trcd : tRcdOverrides) {
                        for (const std::uint32_t trp : tRpOverrides) {
                            for (const std::uint32_t trefi : tRefiOverrides) {
                                for (const std::uint32_t trfc : tRfcOverrides) {
                                    SystemAxes a;
                                    a.pagePolicy = policy;
                                    a.preset = preset;
                                    dramOrgFromName(org, a);
                                    a.tRcNs = trc;
                                    a.tRcdNs = trcd;
                                    a.tRpNs = trp;
                                    a.tRefiNs = trefi;
                                    a.tRfcNs = trfc;
                                    a.validate();
                                    out.push_back(a);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::vector<SecurityCell>
SecurityGrid::expand() const
{
    if (defenses.empty())
        fatal("security grid has no defenses");
    if (trhs.empty())
        fatal("security grid has no Row Hammer thresholds");
    if (swapRates.empty())
        fatal("security grid has no swap rates");
    if (rounds.empty())
        fatal("security grid has no rounds axis");
    for (const std::uint32_t rate : swapRates) {
        if (rate < 2)
            fatal("security grid swap rate ", rate,
                  " is invalid (must be at least 2)");
        for (const std::uint32_t trh : trhs) {
            if (trh / rate == 0)
                fatal("security grid cell trh=", trh, " rate=", rate,
                      ": T_S = trh/rate rounds to zero");
        }
    }

    const std::vector<SystemAxes> axisList = axes();
    std::vector<SecurityCell> cells;
    for (const SystemAxes &a : axisList) {
        for (const SecurityDefense defense : defenses) {
            for (const std::uint32_t trh : trhs) {
                for (const std::uint32_t rate : swapRates) {
                    const auto append = [&](std::uint64_t n,
                                            bool best) {
                        SecurityCell cell;
                        cell.axes = a;
                        cell.defense = defense;
                        cell.trh = trh;
                        cell.swapRate = rate;
                        cell.rounds = best ? 0 : n;
                        cell.bestRounds = best;
                        cells.push_back(std::move(cell));
                    };
                    if (defense == SecurityDefense::Srs) {
                        // SRS ignores the rounds axis: latent
                        // activations do not accumulate, so there
                        // is exactly one attack per (axes, trh,
                        // rate) point.
                        append(0, false);
                        continue;
                    }
                    for (const std::uint64_t n : rounds)
                        append(n, n == kBestRounds);
                }
            }
        }
    }
    return cells;
}

SecuritySweep::SecuritySweep(std::uint64_t baseSeed, std::size_t threads)
    : seed_(baseSeed), pool_(threads)
{
}

void
SecuritySweep::setIterations(std::uint64_t iterations)
{
    iterations_ = iterations;
}

void
SecuritySweep::setEpochLoopLimit(std::uint64_t limit)
{
    epochLoopLimit_ = limit;
}

std::size_t
SecuritySweep::threadCount() const
{
    return pool_.threadCount();
}

std::uint64_t
SecuritySweep::cellSeed(std::uint64_t base, const SecurityCell &cell)
{
    const std::string key = cell.label() + ','
                            + std::to_string(cell.trh) + ','
                            + std::to_string(cell.swapRate) + ','
                            + cell.axes.field();
    return SweepRunner::cellSeed(base, key);
}

std::vector<SecurityResult>
SecuritySweep::run(const std::vector<SecurityCell> &cells)
{
    std::vector<SecurityResult> results(cells.size());

    // As in SweepRunner::run: a FatalError escaping a worker would
    // std::terminate, so jobs trap it and the first message (in cell
    // order) is re-raised on the calling thread after the pool
    // drains.
    std::mutex errorMutex;
    std::size_t errorAt = cells.size();
    std::string errorMsg;
    const auto record = [&](std::size_t at, const std::string &msg) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (at < errorAt) {
            errorAt = at;
            errorMsg = msg;
        }
    };

    for (std::size_t i = 0; i < cells.size(); ++i) {
        pool_.submit([this, &cells, &results, &record, i] {
            try {
                const SecurityCell &cell = cells[i];
                SecurityResult &r = results[i];
                r.cell = cell;
                r.seed = cellSeed(seed_, cell);
                const AttackParams params = attackParamsFromAxes(
                    cell.axes, cell.trh, cell.swapRate);
                const JuggernautModel model(params);
                r.analytic =
                    cell.defense == SecurityDefense::Srs
                        ? model.evaluateSrs()
                        : (cell.bestRounds
                               ? model.bestRrs()
                               : model.evaluateRrs(cell.rounds));
                if (iterations_ > 0) {
                    // Serial per cell: MonteCarloAttack is itself
                    // stratified, so the campaign is bit-identical
                    // at any sweep thread count.
                    MonteCarloAttack mc(params, r.seed);
                    r.mc = mc.run(r.analytic, iterations_,
                                  epochLoopLimit_);
                }
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool_.wait();
    {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!errorMsg.empty())
            throw FatalError(errorMsg);
    }
    return results;
}

std::vector<SecurityResult>
SecuritySweep::run(const SecurityGrid &grid)
{
    return run(grid.expand());
}

std::string
SecuritySweep::formatRow(std::size_t index, const SecurityResult &r)
{
    // Identity prefix, byte-compatible with the perf sweep's:
    // index,workload_spec,mitigation,tracker,trh,rate,axes,seed.
    // The attack label rides in the workload_spec column and the
    // tracker column is `-` (no tracker in the analytic model).
    char numbers[64];
    std::snprintf(numbers, sizeof(numbers), ",%u,%u,", r.cell.trh,
                  r.cell.swapRate);
    char seedField[32];
    std::snprintf(seedField, sizeof(seedField), "0x%016llx,",
                  static_cast<unsigned long long>(r.seed));
    std::string row = std::to_string(index);
    row += ',';
    row += r.cell.label();
    row += ',';
    row += securityDefenseName(r.cell.defense);
    row += ",-";
    row += numbers;
    row += r.cell.axes.field();
    row += ',';
    row += seedField;

    // Payload reinterpretation (see the file comment): ipc = MC mean
    // time-to-break, baseline_ipc = analytic time-to-break,
    // normalized = their ratio, swaps = k, unswap_swaps = G,
    // place_backs = N; the latency columns are zeros.  %.9g keeps
    // deep-tail times (1e14 s) and probabilities (1e-9) exact where
    // the perf columns' fixed-point %.6f would flush them.
    const double mcTime = r.mc.meanTimeSec;
    const double anTime = r.analytic.timeToBreakSec;
    const double ratio = anTime > 0.0 ? mcTime / anTime : 0.0;
    char payload[320];
    std::snprintf(
        payload, sizeof(payload),
        "%.9g,%.9g,%.9g,%llu,%llu,%llu,0,0,0,0,0,0,%llu,%llu,"
        "%.9g,%.9g,%.9g",
        mcTime, anTime, ratio,
        static_cast<unsigned long long>(r.analytic.k),
        static_cast<unsigned long long>(r.analytic.guesses),
        static_cast<unsigned long long>(r.analytic.rounds),
        static_cast<unsigned long long>(r.mc.iterations),
        static_cast<unsigned long long>(r.mc.censored),
        r.mc.pBreak, r.mc.pBreakCiLo, r.mc.pBreakCiHi);
    return row + payload;
}

void
SecuritySweep::writeCsv(std::ostream &os,
                        const std::vector<SecurityResult> &results)
{
    os << SweepRunner::csvHeader() << '\n';
    for (std::size_t i = 0; i < results.size(); ++i)
        os << formatRow(i, results[i]) << '\n';
}

} // namespace srs
