#include "security/outlier_model.hh"

#include <cmath>
#include <unordered_map>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

OutlierModel::OutlierModel(const OutlierParams &params)
    : params_(params)
{
    if (params_.ts() == 0)
        fatal("outlier model: T_S rounds to zero");
}

double
OutlierModel::swapsPerEpoch() const
{
    return static_cast<double>(params_.actMaxPerEpoch) /
           static_cast<double>(params_.ts());
}

double
OutlierModel::pRowChosen(std::uint64_t k) const
{
    const auto g = static_cast<std::uint64_t>(swapsPerEpoch());
    const double p = 1.0 / static_cast<double>(params_.rowsPerBank);
    return binomialPmf(g, k, p);
}

double
OutlierModel::expectedRowsWith(std::uint64_t k) const
{
    return static_cast<double>(params_.rowsPerBank) * pRowChosen(k);
}

double
OutlierModel::pSimultaneous(std::uint64_t m, std::uint64_t k) const
{
    const double rk = expectedRowsWith(k);
    // Poisson(R_K) point mass at M (paper footnote 4).
    return poissonPmf(m, rk);
}

double
OutlierModel::timeToAppearSec(std::uint64_t m, std::uint64_t k) const
{
    const double p = pSimultaneous(m, k);
    if (p <= 0.0)
        return std::numeric_limits<double>::infinity();
    return params_.epochSec / p;
}

double
OutlierModel::timeToAppearSec(std::uint64_t m) const
{
    return timeToAppearSec(m, params_.swapRate);
}

double
OutlierModel::simulateSimultaneous(std::uint64_t m, std::uint64_t k,
                                   std::uint64_t epochs,
                                   std::uint64_t seed) const
{
    Rng rng(seed);
    const auto g = static_cast<std::uint64_t>(swapsPerEpoch());
    std::uint64_t hits = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> landings;
    for (std::uint64_t e = 0; e < epochs; ++e) {
        landings.clear();
        std::uint64_t rowsAtK = 0;
        for (std::uint64_t s = 0; s < g; ++s) {
            const std::uint64_t row =
                rng.nextBelow(params_.rowsPerBank);
            if (++landings[row] == k)
                ++rowsAtK;
        }
        if (rowsAtK >= m)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(epochs);
}

} // namespace srs
