#include "security/power_model.hh"

#include "common/logging.hh"

namespace srs
{

PowerModel::PowerModel(const PowerParams &params)
    : params_(params)
{
}

double
PowerModel::sramPowerMw(double sramKb) const
{
    SRS_ASSERT(sramKb >= 0.0, "negative SRAM size");
    return params_.sramBaseMw + params_.sramSlopeMwPerKb * sramKb;
}

double
PowerModel::dramOverheadPct(std::uint32_t swapRate,
                            double movesPerMitigation) const
{
    SRS_ASSERT(swapRate > 0, "zero swap rate");
    // Mitigation frequency scales with the swap rate (lower T_S =>
    // more swaps); each mitigation costs movesPerMitigation row-pair
    // movements.
    return params_.dramPctPerUnit *
        static_cast<double>(swapRate) / 6.0 * movesPerMitigation;
}

} // namespace srs
