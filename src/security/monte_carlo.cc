#include "security/monte_carlo.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/thread_pool.hh"

namespace srs
{

namespace
{

/** 97.5% normal quantile: two-sided 95% confidence intervals. */
constexpr double kZ95 = 1.959963984540054;

/** Importance-sampling proposal: epoch count ~ Geometric(kProposalP). */
constexpr double kProposalP = 0.5;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Everything a stratum needs, precomputed once per campaign. */
struct CampaignSpec
{
    bool feasible = false;
    bool instant = false; ///< k == 0: latent acts break epoch 1
    double epochSec = 0.0;
    double pEpoch = 0.0;  ///< exact per-epoch success probability
    std::uint64_t g = 0;  ///< guesses per epoch
    std::uint64_t k = 0;  ///< required correct guesses
    double pRow = 0.0;    ///< per-guess landing probability
    bool iterate = false; ///< epoch-by-epoch vs geometric sampling
    std::uint64_t valve = 0; ///< censoring threshold in epochs
};

CampaignSpec
makeCampaign(const AttackParams &params, const AttackResult &analytic,
             std::uint64_t epochLoopLimit, std::uint64_t valveOverride)
{
    CampaignSpec c;
    // An infeasible analytic result is infeasible regardless of its
    // k — k == 0 there means "no budget for even one guess", not
    // "breaks for free".
    if (!analytic.feasible)
        return c;
    c.feasible = true;
    c.epochSec = params.epochSec;
    if (analytic.k == 0) {
        // Latent activations alone break the row in the first epoch.
        c.instant = true;
        c.pEpoch = 1.0;
        return c;
    }
    c.pRow = 1.0 / static_cast<double>(params.rowsPerBank);
    c.g = static_cast<std::uint64_t>(analytic.guesses);
    // Per-epoch success probability (exact upper tail).
    c.pEpoch = binomialSf(c.g, analytic.k, c.pRow);
    if (c.pEpoch <= 0.0) {
        c.feasible = false;
        return c;
    }
    c.k = analytic.k;
    c.iterate =
        c.pEpoch > 1.0 / static_cast<double>(epochLoopLimit);
    c.valve = valveOverride != 0 ? valveOverride
                                 : 100ULL * epochLoopLimit;
    return c;
}

/** Exact per-stratum sums; folded in stratum order. */
struct StratumStats
{
    std::uint64_t n = 0;
    std::uint64_t censored = 0;
    double sumT = 0.0;
    double sumSqT = 0.0;
    double sumP = 0.0;
    double sumSqP = 0.0;
};

StratumStats
runStratum(const CampaignSpec &c, std::uint64_t seed,
           std::uint64_t trials)
{
    StratumStats st;
    st.n = trials;
    Rng rng(seed);
    for (std::uint64_t j = 0; j < trials; ++j) {
        if (c.iterate) {
            // Event-driven: draw guess landings epoch by epoch.  The
            // first epoch doubles as a naive sample of pEpoch.
            std::uint64_t epochs = 0;
            bool firstEpochBreak = false;
            bool censored = false;
            for (;;) {
                ++epochs;
                const bool broke =
                    rng.nextBinomial(c.g, c.pRow) >= c.k;
                if (epochs == 1)
                    firstEpochBreak = broke;
                if (broke)
                    break;
                if (epochs > c.valve) {
                    censored = true;
                    break;
                }
            }
            const double pv = firstEpochBreak ? 1.0 : 0.0;
            st.sumP += pv;
            st.sumSqP += pv * pv;
            if (censored) {
                ++st.censored;
            } else {
                const double t =
                    static_cast<double>(epochs) * c.epochSec;
                st.sumT += t;
                st.sumSqT += t * t;
            }
        } else {
            // Deep tail.  Time: stratified inverse-CDF geometric —
            // trial j of n maps u = (j + xi) / n through the
            // geometric quantile, unbiased for any n.
            const double u = (static_cast<double>(j) +
                              rng.nextDouble()) /
                             static_cast<double>(trials);
            const double denom = std::log1p(-c.pEpoch);
            double epochs =
                denom < 0.0 ? std::ceil(std::log1p(-u) / denom) : 1.0;
            if (!(epochs >= 1.0))
                epochs = 1.0;
            const double t = epochs * c.epochSec;
            st.sumT += t;
            st.sumSqT += t * t;
            // pEpoch: importance sampling.  Draw the epoch count
            // from the Geometric(kProposalP) proposal; the
            // likelihood-weighted first-epoch indicator
            // w(1) * 1{E == 1} with w(1) = pEpoch / kProposalP has
            // mean pEpoch and relative stddev ~1 per trial at any
            // pEpoch, so 10^-9 probabilities resolve in O(1/eps^2)
            // trials instead of O(1/p).
            const std::uint64_t proposal =
                rng.nextGeometric(kProposalP);
            const double w =
                proposal == 1 ? c.pEpoch / kProposalP : 0.0;
            st.sumP += w;
            st.sumSqP += w * w;
        }
    }
    return st;
}

/** Derive the presented statistics from the folded exact sums. */
void
finalize(const CampaignSpec &c, MonteCarloResult &out)
{
    if (out.iterations == 0)
        return;
    const double n = static_cast<double>(out.iterations);
    out.pBreak = out.sumPBreak / n;
    double pHalf = 0.0;
    if (out.iterations >= 2) {
        const double varP = std::max(
            0.0, (out.sumSqPBreak - n * out.pBreak * out.pBreak) /
                     (n - 1.0));
        pHalf = kZ95 * std::sqrt(varP / n);
    }
    out.pBreakCiLo = std::max(0.0, out.pBreak - pHalf);
    out.pBreakCiHi = std::min(1.0, out.pBreak + pHalf);

    const std::uint64_t kept = out.iterations - out.censored;
    if (kept > 0) {
        const double m = static_cast<double>(kept);
        out.meanTimeSec = out.sumTimeSec / m;
        out.meanEpochs = out.meanTimeSec / c.epochSec;
        double tHalf = 0.0;
        if (kept >= 2) {
            const double var = std::max(
                0.0, (out.sumSqTimeSec -
                      m * out.meanTimeSec * out.meanTimeSec) /
                         (m - 1.0));
            out.stddevTimeSec = std::sqrt(var);
            tHalf = kZ95 * out.stddevTimeSec / std::sqrt(m);
        }
        out.timeCiLoSec = std::max(0.0, out.meanTimeSec - tHalf);
        out.timeCiHiSec = out.meanTimeSec + tHalf;
    }
    // More than 5% censored trials bias the truncated time mean too
    // far to trust the estimate.
    out.reliable = kept > 0 && out.censored * 20 <= out.iterations;
}

/** The k == 0 campaign is deterministic: every trial breaks in the
 *  first epoch.  Fill the sums exactly, no sampling. */
MonteCarloResult
instantResult(const CampaignSpec &c, std::uint64_t iterations)
{
    MonteCarloResult out;
    out.feasible = true;
    out.iterations = iterations;
    if (iterations == 0)
        return out;
    const double n = static_cast<double>(iterations);
    out.meanEpochs = 1.0;
    out.meanTimeSec = c.epochSec;
    out.timeCiLoSec = c.epochSec;
    out.timeCiHiSec = c.epochSec;
    out.pBreak = 1.0;
    out.pBreakCiLo = 1.0;
    out.pBreakCiHi = 1.0;
    out.sumTimeSec = n * c.epochSec;
    out.sumSqTimeSec = n * c.epochSec * c.epochSec;
    out.sumPBreak = n;
    out.sumSqPBreak = n;
    out.reliable = true;
    return out;
}

std::size_t
strataCount(std::uint64_t iterations)
{
    return static_cast<std::size_t>(std::min<std::uint64_t>(
        iterations, MonteCarloAttack::kStrata));
}

MonteCarloResult
foldStrata(const CampaignSpec &c,
           const std::vector<StratumStats> &parts)
{
    MonteCarloResult out;
    out.feasible = true;
    // Strict stratum order: double addition is not associative, and
    // the bitwise serial == batch contract hangs on this fold.
    for (const StratumStats &st : parts) {
        out.iterations += st.n;
        out.censored += st.censored;
        out.sumTimeSec += st.sumT;
        out.sumSqTimeSec += st.sumSqT;
        out.sumPBreak += st.sumP;
        out.sumSqPBreak += st.sumSqP;
    }
    finalize(c, out);
    return out;
}

} // namespace

MonteCarloAttack::MonteCarloAttack(const AttackParams &params,
                                   std::uint64_t seed)
    : params_(params), model_(params), seed_(seed)
{
}

void
MonteCarloAttack::setEpochValve(std::uint64_t maxEpochs)
{
    valveOverride_ = maxEpochs;
}

MonteCarloResult
MonteCarloAttack::run(const AttackResult &analytic,
                      std::uint64_t iterations,
                      std::uint64_t epochLoopLimit)
{
    const CampaignSpec c = makeCampaign(params_, analytic,
                                        epochLoopLimit,
                                        valveOverride_);
    MonteCarloResult out;
    out.iterations = iterations;
    if (!c.feasible)
        return out;
    if (c.instant)
        return instantResult(c, iterations);
    if (iterations == 0) {
        out.feasible = true;
        return out;
    }

    const std::size_t strata = strataCount(iterations);
    const std::uint64_t perStratum = iterations / strata;
    const std::uint64_t remainder = iterations % strata;
    std::vector<StratumStats> parts(strata);
    for (std::size_t s = 0; s < strata; ++s) {
        const std::uint64_t trials =
            perStratum + (s < remainder ? 1 : 0);
        parts[s] = runStratum(c, MonteCarloBatch::shardSeed(seed_, s),
                              trials);
    }
    return foldStrata(c, parts);
}

MonteCarloResult
MonteCarloAttack::runRrs(std::uint64_t rounds, std::uint64_t iterations,
                         std::uint64_t epochLoopLimit)
{
    return run(model_.evaluateRrs(rounds), iterations, epochLoopLimit);
}

MonteCarloResult
MonteCarloAttack::runSrs(std::uint64_t iterations)
{
    return run(model_.evaluateSrs(), iterations, 100000);
}

MonteCarloBatch::MonteCarloBatch(const AttackParams &params,
                                 std::uint64_t seed,
                                 std::size_t threads)
    : params_(params), seed_(seed), pool_(threads)
{
}

void
MonteCarloBatch::setEpochValve(std::uint64_t maxEpochs)
{
    valveOverride_ = maxEpochs;
}

std::size_t
MonteCarloBatch::threadCount() const
{
    return pool_.threadCount();
}

std::uint64_t
MonteCarloBatch::shardSeed(std::uint64_t base, std::size_t shard)
{
    if (shard == 0)
        return base;
    return splitmix64(base ^ splitmix64(shard));
}

std::size_t
MonteCarloBatch::resolveShards(std::size_t requested,
                               std::uint64_t iterations)
{
    std::uint64_t shards = requested == 0 ? 16 : requested;
    shards = std::min<std::uint64_t>(shards, std::max<std::uint64_t>(
                                                 iterations, 1));
    return static_cast<std::size_t>(shards);
}

MonteCarloResult
MonteCarloBatch::runCampaign(const AttackResult &analytic,
                             std::uint64_t iterations,
                             std::uint64_t epochLoopLimit)
{
    const CampaignSpec c = makeCampaign(params_, analytic,
                                        epochLoopLimit,
                                        valveOverride_);
    MonteCarloResult out;
    out.iterations = iterations;
    if (!c.feasible)
        return out;
    if (c.instant)
        return instantResult(c, iterations);
    if (iterations == 0) {
        out.feasible = true;
        return out;
    }

    // Same strata, same seeds, same fold as the serial path — only
    // the execution moves to the pool, so the result is bitwise
    // identical to MonteCarloAttack at any thread count.
    const std::size_t strata = strataCount(iterations);
    const std::uint64_t perStratum = iterations / strata;
    const std::uint64_t remainder = iterations % strata;
    std::vector<StratumStats> parts(strata);
    for (std::size_t s = 0; s < strata; ++s) {
        pool_.submit([&, s] {
            const std::uint64_t trials =
                perStratum + (s < remainder ? 1 : 0);
            parts[s] = runStratum(c, shardSeed(seed_, s), trials);
        });
    }
    pool_.wait();
    return foldStrata(c, parts);
}

MonteCarloResult
MonteCarloBatch::runRrs(std::uint64_t rounds, std::uint64_t iterations,
                        std::uint64_t epochLoopLimit,
                        std::size_t shards)
{
    (void)shards; // execution hint only; results never depend on it
    return runCampaign(JuggernautModel(params_).evaluateRrs(rounds),
                       iterations, epochLoopLimit);
}

MonteCarloResult
MonteCarloBatch::runSrs(std::uint64_t iterations, std::size_t shards)
{
    (void)shards;
    return runCampaign(JuggernautModel(params_).evaluateSrs(),
                       iterations, 100000);
}

} // namespace srs
