#include "security/monte_carlo.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/thread_pool.hh"

namespace srs
{

MonteCarloAttack::MonteCarloAttack(const AttackParams &params,
                                   std::uint64_t seed)
    : params_(params), model_(params), rng_(seed)
{
}

MonteCarloResult
MonteCarloAttack::run(const AttackResult &analytic,
                      std::uint64_t iterations,
                      std::uint64_t epochLoopLimit)
{
    MonteCarloResult out;
    out.iterations = iterations;
    if (!analytic.feasible && analytic.k > 0)
        return out;
    out.feasible = true;

    if (analytic.k == 0) {
        // Latent activations alone break the row in the first epoch.
        out.meanEpochs = 1.0;
        out.meanTimeSec = params_.epochSec;
        return out;
    }

    const double pRow = 1.0 / static_cast<double>(params_.rowsPerBank);
    const auto g = static_cast<std::uint64_t>(analytic.guesses);
    // Per-epoch success probability (exact upper tail).
    const double pEpoch = binomialSf(g, analytic.k, pRow);
    if (pEpoch <= 0.0) {
        out.feasible = false;
        return out;
    }

    const bool iterate =
        pEpoch > 1.0 / static_cast<double>(epochLoopLimit);

    double sum = 0.0;
    double sumSq = 0.0;
    for (std::uint64_t it = 0; it < iterations; ++it) {
        std::uint64_t epochs = 0;
        if (iterate) {
            // Event-driven: draw guess landings epoch by epoch.
            for (;;) {
                ++epochs;
                if (rng_.nextBinomial(g, pRow) >= analytic.k)
                    break;
                if (epochs > 100ULL * epochLoopLimit)
                    break; // statistical safety valve
            }
        } else {
            epochs = rng_.nextGeometric(pEpoch);
        }
        const double t = static_cast<double>(epochs) * params_.epochSec;
        sum += t;
        sumSq += t * t;
    }
    const double n = static_cast<double>(iterations);
    out.meanTimeSec = sum / n;
    out.meanEpochs = out.meanTimeSec / params_.epochSec;
    const double var = std::max(0.0, sumSq / n -
                                         out.meanTimeSec *
                                             out.meanTimeSec);
    out.stddevTimeSec = std::sqrt(var);
    return out;
}

MonteCarloResult
MonteCarloAttack::runRrs(std::uint64_t rounds, std::uint64_t iterations,
                         std::uint64_t epochLoopLimit)
{
    return run(model_.evaluateRrs(rounds), iterations, epochLoopLimit);
}

MonteCarloResult
MonteCarloAttack::runSrs(std::uint64_t iterations)
{
    return run(model_.evaluateSrs(), iterations, 100000);
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

MonteCarloBatch::MonteCarloBatch(const AttackParams &params,
                                 std::uint64_t seed,
                                 std::size_t threads)
    : params_(params), seed_(seed), pool_(threads)
{
}

std::size_t
MonteCarloBatch::threadCount() const
{
    return pool_.threadCount();
}

std::uint64_t
MonteCarloBatch::shardSeed(std::uint64_t base, std::size_t shard)
{
    if (shard == 0)
        return base;
    return splitmix64(base ^ splitmix64(shard));
}

std::size_t
MonteCarloBatch::resolveShards(std::size_t requested,
                               std::uint64_t iterations)
{
    std::uint64_t shards = requested == 0 ? 16 : requested;
    shards = std::min<std::uint64_t>(shards, std::max<std::uint64_t>(
                                                 iterations, 1));
    return static_cast<std::size_t>(shards);
}

MonteCarloResult
MonteCarloBatch::runShards(
    std::uint64_t iterations, std::size_t shards,
    const std::function<MonteCarloResult(MonteCarloAttack &,
                                         std::uint64_t)> &shardRun)
{
    shards = resolveShards(shards, iterations);
    const std::uint64_t perShard = iterations / shards;
    const std::uint64_t remainder = iterations % shards;

    std::vector<MonteCarloResult> parts(shards);
    std::mutex errorMutex;
    std::string errorMsg;
    for (std::size_t s = 0; s < shards; ++s) {
        pool_.submit([&, s] {
            try {
                MonteCarloAttack attack(params_, shardSeed(seed_, s));
                const std::uint64_t iters =
                    perShard + (s < remainder ? 1 : 0);
                parts[s] = shardRun(attack, iters);
            } catch (const FatalError &err) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (errorMsg.empty())
                    errorMsg = err.what();
            }
        });
    }
    pool_.wait();
    if (!errorMsg.empty())
        throw FatalError(errorMsg);

    // A one-shard batch IS the serial campaign; return it verbatim.
    if (shards == 1)
        return parts[0];

    // Deterministic reduction: reconstruct each shard's time sums
    // from its mean/stddev and fold them in shard order.  Pure
    // arithmetic over the shard results, so the outcome is the same
    // for every thread count.
    MonteCarloResult out;
    out.feasible = true;
    double sum = 0.0;
    double sumSq = 0.0;
    for (const MonteCarloResult &part : parts) {
        out.iterations += part.iterations;
        out.feasible = out.feasible && part.feasible;
        const double n = static_cast<double>(part.iterations);
        sum += part.meanTimeSec * n;
        sumSq += (part.stddevTimeSec * part.stddevTimeSec +
                  part.meanTimeSec * part.meanTimeSec) *
                 n;
    }
    if (!out.feasible || out.iterations == 0)
        return out;
    const double n = static_cast<double>(out.iterations);
    out.meanTimeSec = sum / n;
    out.meanEpochs = out.meanTimeSec / params_.epochSec;
    const double var = std::max(0.0, sumSq / n -
                                         out.meanTimeSec *
                                             out.meanTimeSec);
    out.stddevTimeSec = std::sqrt(var);
    return out;
}

MonteCarloResult
MonteCarloBatch::runRrs(std::uint64_t rounds, std::uint64_t iterations,
                        std::uint64_t epochLoopLimit,
                        std::size_t shards)
{
    return runShards(iterations, shards,
                     [rounds, epochLoopLimit](MonteCarloAttack &mc,
                                              std::uint64_t iters) {
                         return mc.runRrs(rounds, iters,
                                          epochLoopLimit);
                     });
}

MonteCarloResult
MonteCarloBatch::runSrs(std::uint64_t iterations, std::size_t shards)
{
    return runShards(iterations, shards,
                     [](MonteCarloAttack &mc, std::uint64_t iters) {
                         return mc.runSrs(iters);
                     });
}

} // namespace srs
