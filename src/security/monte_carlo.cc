#include "security/monte_carlo.hh"

#include <cmath>

#include "common/mathutil.hh"

namespace srs
{

MonteCarloAttack::MonteCarloAttack(const AttackParams &params,
                                   std::uint64_t seed)
    : params_(params), model_(params), rng_(seed)
{
}

MonteCarloResult
MonteCarloAttack::run(const AttackResult &analytic,
                      std::uint64_t iterations,
                      std::uint64_t epochLoopLimit)
{
    MonteCarloResult out;
    out.iterations = iterations;
    if (!analytic.feasible && analytic.k > 0)
        return out;
    out.feasible = true;

    if (analytic.k == 0) {
        // Latent activations alone break the row in the first epoch.
        out.meanEpochs = 1.0;
        out.meanTimeSec = params_.epochSec;
        return out;
    }

    const double pRow = 1.0 / static_cast<double>(params_.rowsPerBank);
    const auto g = static_cast<std::uint64_t>(analytic.guesses);
    // Per-epoch success probability (exact upper tail).
    const double pEpoch = binomialSf(g, analytic.k, pRow);
    if (pEpoch <= 0.0) {
        out.feasible = false;
        return out;
    }

    const bool iterate =
        pEpoch > 1.0 / static_cast<double>(epochLoopLimit);

    double sum = 0.0;
    double sumSq = 0.0;
    for (std::uint64_t it = 0; it < iterations; ++it) {
        std::uint64_t epochs = 0;
        if (iterate) {
            // Event-driven: draw guess landings epoch by epoch.
            for (;;) {
                ++epochs;
                if (rng_.nextBinomial(g, pRow) >= analytic.k)
                    break;
                if (epochs > 100ULL * epochLoopLimit)
                    break; // statistical safety valve
            }
        } else {
            epochs = rng_.nextGeometric(pEpoch);
        }
        const double t = static_cast<double>(epochs) * params_.epochSec;
        sum += t;
        sumSq += t * t;
    }
    const double n = static_cast<double>(iterations);
    out.meanTimeSec = sum / n;
    out.meanEpochs = out.meanTimeSec / params_.epochSec;
    const double var = std::max(0.0, sumSq / n -
                                         out.meanTimeSec *
                                             out.meanTimeSec);
    out.stddevTimeSec = std::sqrt(var);
    return out;
}

MonteCarloResult
MonteCarloAttack::runRrs(std::uint64_t rounds, std::uint64_t iterations,
                         std::uint64_t epochLoopLimit)
{
    return run(model_.evaluateRrs(rounds), iterations, epochLoopLimit);
}

MonteCarloResult
MonteCarloAttack::runSrs(std::uint64_t iterations)
{
    return run(model_.evaluateSrs(), iterations, 100000);
}

} // namespace srs
