/**
 * @file
 * Event-driven Monte-Carlo validation of the analytical attack model
 * (the "bins and buckets" simulation of the paper's artifact,
 * validating Figure 6).
 *
 * Each trial simulates refresh epochs: per epoch the attacker makes
 * G random guesses and the number landing on the aggressor's original
 * location is drawn from Binomial(G, 1/R); the attack succeeds in the
 * first epoch with >= k landings.  For success probabilities too
 * small to iterate epoch-by-epoch the epoch count is drawn from the
 * exact geometric distribution instead — statistically identical,
 * just without the O(1/p) loop.
 */

#ifndef SRS_SECURITY_MONTE_CARLO_HH
#define SRS_SECURITY_MONTE_CARLO_HH

#include <cstdint>

#include "common/rng.hh"
#include "security/attack_model.hh"

namespace srs
{

/** Aggregate outcome of a Monte-Carlo campaign. */
struct MonteCarloResult
{
    std::uint64_t iterations = 0;
    double meanEpochs = 0.0;
    double meanTimeSec = 0.0;
    double stddevTimeSec = 0.0;
    bool feasible = false;
};

/** Monte-Carlo attack simulator. */
class MonteCarloAttack
{
  public:
    MonteCarloAttack(const AttackParams &params, std::uint64_t seed);

    /**
     * Simulate the Juggernaut attack on RRS with N biasing rounds.
     * @param iterations number of independent trials
     * @param epochLoopLimit trials iterate epoch-by-epoch while the
     *        per-epoch success probability exceeds 1/epochLoopLimit
     */
    MonteCarloResult runRrs(std::uint64_t rounds,
                            std::uint64_t iterations,
                            std::uint64_t epochLoopLimit = 100000);

    /** Simulate the random-guess attack on SRS (no latent rounds). */
    MonteCarloResult runSrs(std::uint64_t iterations);

  private:
    MonteCarloResult run(const AttackResult &analytic,
                         std::uint64_t iterations,
                         std::uint64_t epochLoopLimit);

    AttackParams params_;
    JuggernautModel model_;
    Rng rng_;
};

} // namespace srs

#endif // SRS_SECURITY_MONTE_CARLO_HH
