/**
 * @file
 * Event-driven Monte-Carlo validation of the analytical attack model
 * (the "bins and buckets" simulation of the paper's artifact,
 * validating Figure 6).
 *
 * Each trial simulates refresh epochs: per epoch the attacker makes
 * G random guesses and the number landing on the aggressor's original
 * location is drawn from Binomial(G, 1/R); the attack succeeds in the
 * first epoch with >= k landings.  For success probabilities too
 * small to iterate epoch-by-epoch the epoch count is drawn from the
 * exact geometric distribution instead — statistically identical,
 * just without the O(1/p) loop.
 *
 * Trials are independent, so MonteCarloBatch shards a campaign
 * across a ThreadPool: each shard is a MonteCarloAttack with its own
 * derived seed, and the shard results are reduced in shard order, so
 * a batch result depends only on (seed, iterations, shard count) —
 * never on the thread count or completion order.
 */

#ifndef SRS_SECURITY_MONTE_CARLO_HH
#define SRS_SECURITY_MONTE_CARLO_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "security/attack_model.hh"

namespace srs
{

/** Aggregate outcome of a Monte-Carlo campaign. */
struct MonteCarloResult
{
    /** Number of independent trials behind the statistics. */
    std::uint64_t iterations = 0;
    /** Mean refresh epochs until the first successful epoch. */
    double meanEpochs = 0.0;
    /** Mean attack time (meanEpochs x AttackParams::epochSec). */
    double meanTimeSec = 0.0;
    /** Standard deviation of the per-trial attack time. */
    double stddevTimeSec = 0.0;
    /** False when the analytic model says the attack cannot land. */
    bool feasible = false;
};

/** Single-threaded Monte-Carlo attack simulator. */
class MonteCarloAttack
{
  public:
    /**
     * @param params attack/system parameters (also fed to the
     *               analytical JuggernautModel that derives G and k)
     * @param seed   RNG seed; equal seeds replay equal campaigns
     */
    MonteCarloAttack(const AttackParams &params, std::uint64_t seed);

    /**
     * Simulate the Juggernaut attack on RRS with N biasing rounds.
     * @param rounds biasing rounds N (see JuggernautModel)
     * @param iterations number of independent trials
     * @param epochLoopLimit trials iterate epoch-by-epoch while the
     *        per-epoch success probability exceeds 1/epochLoopLimit
     * @return aggregate statistics over the trials
     */
    MonteCarloResult runRrs(std::uint64_t rounds,
                            std::uint64_t iterations,
                            std::uint64_t epochLoopLimit = 100000);

    /**
     * Simulate the random-guess attack on SRS (no latent rounds).
     * @param iterations number of independent trials
     * @return aggregate statistics over the trials
     */
    MonteCarloResult runSrs(std::uint64_t iterations);

  private:
    MonteCarloResult run(const AttackResult &analytic,
                         std::uint64_t iterations,
                         std::uint64_t epochLoopLimit);

    AttackParams params_;
    JuggernautModel model_;
    Rng rng_;
};

/**
 * Thread-pool-backed Monte-Carlo campaign runner.
 *
 * Iterations are embarrassingly parallel: the campaign is split into
 * shards, shard s running floor(iterations / shards) (+1 for the
 * first iterations % shards shards) trials on its own
 * MonteCarloAttack seeded with shardSeed(seed, s).  Shard statistics
 * are reduced in shard order, making the result a pure function of
 * (params, seed, iterations, shard count): any thread count produces
 * bit-identical output.  A single-shard batch returns exactly what a
 * serial MonteCarloAttack with the same seed returns.
 */
class MonteCarloBatch
{
  public:
    /**
     * @param params  attack/system parameters, as MonteCarloAttack
     * @param seed    campaign base seed; per-shard seeds derive from
     *                it via shardSeed()
     * @param threads worker count; 0 picks hardware concurrency.
     *                Changing it never changes results.
     */
    MonteCarloBatch(const AttackParams &params, std::uint64_t seed,
                    std::size_t threads = 0);

    /**
     * Batched MonteCarloAttack::runRrs.
     * @param rounds biasing rounds N
     * @param iterations total trials across all shards
     * @param epochLoopLimit as MonteCarloAttack::runRrs
     * @param shards shard count; 0 picks min(iterations, 16).
     *        Results depend on the shard count (each shard is its
     *        own RNG stream) but not on the thread count.
     */
    MonteCarloResult runRrs(std::uint64_t rounds,
                            std::uint64_t iterations,
                            std::uint64_t epochLoopLimit = 100000,
                            std::size_t shards = 0);

    /**
     * Batched MonteCarloAttack::runSrs.
     * @param iterations total trials across all shards
     * @param shards shard count; 0 picks min(iterations, 16)
     */
    MonteCarloResult runSrs(std::uint64_t iterations,
                            std::size_t shards = 0);

    /** Worker threads actually in use. */
    std::size_t threadCount() const;

    /**
     * Seed of shard @p shard: the base seed itself for shard 0 (so a
     * one-shard batch replays the serial campaign bit-for-bit),
     * splitmix64-derived for the rest.
     */
    static std::uint64_t shardSeed(std::uint64_t base,
                                   std::size_t shard);

    /** Resolve a shard count: 0 -> min(iterations, 16), >= 1. */
    static std::size_t resolveShards(std::size_t requested,
                                     std::uint64_t iterations);

  private:
    MonteCarloResult
    runShards(std::uint64_t iterations, std::size_t shards,
              const std::function<MonteCarloResult(
                  MonteCarloAttack &, std::uint64_t)> &shardRun);

    AttackParams params_;
    std::uint64_t seed_;
    /** Reused across campaigns (wait() makes the pool reusable). */
    ThreadPool pool_;
};

} // namespace srs

#endif // SRS_SECURITY_MONTE_CARLO_HH
