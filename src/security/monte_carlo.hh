/**
 * @file
 * Event-driven Monte-Carlo validation of the analytical attack model
 * (the "bins and buckets" simulation of the paper's artifact,
 * validating Figure 6), at production confidence.
 *
 * Each trial simulates refresh epochs: per epoch the attacker makes
 * G random guesses and the number landing on the aggressor's original
 * location is drawn from Binomial(G, 1/R); the attack succeeds in the
 * first epoch with >= k landings.  Trials that outlive the epoch
 * safety valve are *censored*: they are counted
 * (MonteCarloResult::censored) and excluded from the time statistics
 * instead of being booked as a break at the cap, and a censored
 * fraction above 5% marks the estimate unreliable.
 *
 * For success probabilities too small to iterate epoch-by-epoch two
 * estimators take over: the trial's epoch count is drawn from the
 * exact geometric distribution by stratified inverse-CDF sampling
 * (trial j of n maps u = (j + xi) / n through the geometric
 * quantile function — unbiased for any n, with strongly reduced
 * variance), and the per-epoch break probability is estimated by
 * importance sampling with a Geometric(1/2) proposal and likelihood
 * weighting, so p_break values in the 10^-6..10^-9 range carry a
 * ~1/sqrt(N) *relative* error instead of needing ~1/p trials.
 *
 * Determinism contract: a campaign of N trials is always split into
 * S = min(N, 16) fixed *strata*; stratum s runs its share on an Rng
 * seeded with MonteCarloBatch::shardSeed(seed, s), and the exact
 * per-stratum sums are folded in stratum order.  The result is a
 * pure function of (params, seed, iterations, epochLoopLimit,
 * valve): MonteCarloBatch distributes strata over a ThreadPool but
 * folds the same sums in the same order, so the batch result is
 * bit-identical to the serial MonteCarloAttack at *any* shard or
 * thread count.
 */

#ifndef SRS_SECURITY_MONTE_CARLO_HH
#define SRS_SECURITY_MONTE_CARLO_HH

#include <cstddef>
#include <cstdint>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "security/attack_model.hh"

namespace srs
{

/** Aggregate outcome of a Monte-Carlo campaign. */
struct MonteCarloResult
{
    /** Total independent trials, censored ones included. */
    std::uint64_t iterations = 0;
    /** Trials cut off by the epoch safety valve (not broken). */
    std::uint64_t censored = 0;
    /** Mean refresh epochs until the first successful epoch. */
    double meanEpochs = 0.0;
    /** Mean attack time over the *uncensored* trials. */
    double meanTimeSec = 0.0;
    /** Unbiased (n-1) sample stddev of the per-trial attack time. */
    double stddevTimeSec = 0.0;
    /** 95% confidence interval on meanTimeSec. */
    double timeCiLoSec = 0.0;
    double timeCiHiSec = 0.0;
    /** Estimated per-epoch break probability (importance-sampled in
     *  the deep tail, first-epoch indicator otherwise). */
    double pBreak = 0.0;
    /** 95% confidence interval on pBreak, clamped to [0, 1]. */
    double pBreakCiLo = 0.0;
    double pBreakCiHi = 0.0;
    /** Exact running sums behind the statistics — carried so shard
     *  and batch reductions fold losslessly instead of
     *  reconstructing them from rounded means. */
    double sumTimeSec = 0.0;   ///< sum of t over uncensored trials
    double sumSqTimeSec = 0.0; ///< sum of t^2 over uncensored trials
    double sumPBreak = 0.0;    ///< sum of per-trial p estimates
    double sumSqPBreak = 0.0;  ///< sum of their squares
    /** False when the analytic model says the attack cannot land. */
    bool feasible = false;
    /** False when no uncensored trial exists or more than 5% of the
     *  trials were censored — the time estimate is then biased. */
    bool reliable = false;
};

/** Single-threaded Monte-Carlo attack simulator. */
class MonteCarloAttack
{
  public:
    /** Strata per campaign: S = min(iterations, kStrata). */
    static constexpr std::size_t kStrata = 16;

    /**
     * @param params attack/system parameters (also fed to the
     *               analytical JuggernautModel that derives G and k)
     * @param seed   RNG seed; equal seeds replay equal campaigns
     *               (runs do not perturb each other — every run
     *               re-derives its stratum Rngs from the seed)
     */
    MonteCarloAttack(const AttackParams &params, std::uint64_t seed);

    /**
     * Override the epoch safety valve: a trial still unbroken after
     * this many epochs is recorded as censored.  0 (the default)
     * derives the valve as 100 * epochLoopLimit.
     */
    void setEpochValve(std::uint64_t maxEpochs);

    /**
     * Simulate the Juggernaut attack on RRS with N biasing rounds.
     * @param rounds biasing rounds N (see JuggernautModel)
     * @param iterations number of independent trials
     * @param epochLoopLimit trials iterate epoch-by-epoch while the
     *        per-epoch success probability exceeds 1/epochLoopLimit
     * @return aggregate statistics over the trials
     */
    MonteCarloResult runRrs(std::uint64_t rounds,
                            std::uint64_t iterations,
                            std::uint64_t epochLoopLimit = 100000);

    /**
     * Simulate the random-guess attack on SRS (no latent rounds).
     * @param iterations number of independent trials
     * @return aggregate statistics over the trials
     */
    MonteCarloResult runSrs(std::uint64_t iterations);

    /**
     * Run a campaign against a precomputed analytic evaluation —
     * the workhorse behind runRrs/runSrs, public so SecuritySweep
     * cells and bestRrs-style callers reuse one code path.  An
     * infeasible @p analytic returns an infeasible result
     * regardless of its k.
     */
    MonteCarloResult run(const AttackResult &analytic,
                         std::uint64_t iterations,
                         std::uint64_t epochLoopLimit);

  private:
    AttackParams params_;
    JuggernautModel model_;
    std::uint64_t seed_;
    std::uint64_t valveOverride_ = 0;
};

/**
 * Thread-pool-backed Monte-Carlo campaign runner.
 *
 * Statistically identical to MonteCarloAttack: the campaign's fixed
 * strata (see the file comment) are distributed over the pool, their
 * exact sums folded in stratum order, so the result is a pure
 * function of (params, seed, iterations, epochLoopLimit, valve) —
 * bit-identical to the serial MonteCarloAttack at any thread count
 * and any shard count.  The @p shards arguments survive as
 * execution hints for API compatibility; they no longer change
 * results.
 */
class MonteCarloBatch
{
  public:
    /**
     * @param params  attack/system parameters, as MonteCarloAttack
     * @param seed    campaign base seed; per-stratum seeds derive
     *                from it via shardSeed()
     * @param threads worker count; 0 picks hardware concurrency.
     *                Changing it never changes results.
     */
    MonteCarloBatch(const AttackParams &params, std::uint64_t seed,
                    std::size_t threads = 0);

    /** As MonteCarloAttack::setEpochValve. */
    void setEpochValve(std::uint64_t maxEpochs);

    /**
     * Batched MonteCarloAttack::runRrs.
     * @param rounds biasing rounds N
     * @param iterations total trials across all strata
     * @param epochLoopLimit as MonteCarloAttack::runRrs
     * @param shards execution hint only; results are bit-identical
     *        at every shard count (the campaign always uses the
     *        fixed min(iterations, 16) strata)
     */
    MonteCarloResult runRrs(std::uint64_t rounds,
                            std::uint64_t iterations,
                            std::uint64_t epochLoopLimit = 100000,
                            std::size_t shards = 0);

    /**
     * Batched MonteCarloAttack::runSrs.
     * @param iterations total trials across all strata
     * @param shards execution hint only (see runRrs)
     */
    MonteCarloResult runSrs(std::uint64_t iterations,
                            std::size_t shards = 0);

    /** Worker threads actually in use. */
    std::size_t threadCount() const;

    /**
     * Seed of stratum @p shard: the base seed itself for stratum 0
     * (so a one-stratum campaign replays a plain serial Rng stream
     * bit-for-bit), splitmix64-derived for the rest.
     */
    static std::uint64_t shardSeed(std::uint64_t base,
                                   std::size_t shard);

    /** Resolve a shard count: 0 -> min(iterations, 16), >= 1. */
    static std::size_t resolveShards(std::size_t requested,
                                     std::uint64_t iterations);

  private:
    MonteCarloResult runCampaign(const AttackResult &analytic,
                                 std::uint64_t iterations,
                                 std::uint64_t epochLoopLimit);

    AttackParams params_;
    std::uint64_t seed_;
    std::uint64_t valveOverride_ = 0;
    /** Reused across campaigns (wait() makes the pool reusable). */
    ThreadPool pool_;
};

} // namespace srs

#endif // SRS_SECURITY_MONTE_CARLO_HH
