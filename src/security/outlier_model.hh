/**
 * @file
 * Outlier-row statistics (paper Section V-B, Figure 13).
 *
 * Under a maximal attack, at most ACT_max / T_S rows can be driven
 * past T_S per epoch; their swap destinations are uniform over the
 * bank's R rows.  The expected number of rows chosen k times is
 * R_K = R * pmf(Binomial(G, 1/R) = k), and the probability of M such
 * rows appearing simultaneously follows Poisson(R_K) (footnote 4):
 * p_M = e^{-R_K} R_K^M / M!.  Time-to-appear = epoch / p_M.
 */

#ifndef SRS_SECURITY_OUTLIER_MODEL_HH
#define SRS_SECURITY_OUTLIER_MODEL_HH

#include <cstdint>

#include "common/rng.hh"

namespace srs
{

/** Parameters for the outlier analysis. */
struct OutlierParams
{
    std::uint32_t trh = 4800;
    std::uint32_t swapRate = 3;
    std::uint64_t rowsPerBank = 131072;
    std::uint64_t actMaxPerEpoch = 1360000;  ///< ACT_max (Section II-B)
    double epochSec = 64e-3;

    std::uint32_t ts() const { return trh / swapRate; }
};

/** Poisson model of simultaneous outlier rows. */
class OutlierModel
{
  public:
    explicit OutlierModel(const OutlierParams &params);

    /** Rows the attacker can push past T_S per epoch (G). */
    double swapsPerEpoch() const;

    /** P[a given row is chosen exactly k times within one epoch]. */
    double pRowChosen(std::uint64_t k) const;

    /** Expected rows with exactly k swaps per epoch (R_K). */
    double expectedRowsWith(std::uint64_t k) const;

    /** P[M rows with k swaps appear in the same epoch] (Poisson). */
    double pSimultaneous(std::uint64_t m, std::uint64_t k) const;

    /** Expected time until M rows with k swaps coincide, seconds. */
    double timeToAppearSec(std::uint64_t m, std::uint64_t k) const;

    /**
     * Convenience for Figure 13: time until M outliers (k = swap
     * rate, i.e. rows whose landings alone would cross T_RH).
     */
    double timeToAppearSec(std::uint64_t m) const;

    const OutlierParams &params() const { return params_; }

    /**
     * Monte-Carlo cross-check of the footnote-4 statistics: simulate
     * @p epochs epochs of G uniform swap landings over R rows and
     * return the fraction of epochs in which at least @p m rows
     * collected >= @p k landings.  Compare against pSimultaneous().
     */
    double simulateSimultaneous(std::uint64_t m, std::uint64_t k,
                                std::uint64_t epochs,
                                std::uint64_t seed) const;

  private:
    OutlierParams params_;
};

} // namespace srs

#endif // SRS_SECURITY_OUTLIER_MODEL_HH
