#include "dram/bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srs
{

Bank::Bank(const DramTiming &timing, std::uint32_t rowsPerBank)
    : timing_(timing), rowsPerBank_(rowsPerBank)
{
}

bool
Bank::canIssue(DramCommand cmd, RowId row, Cycle now) const
{
    if (now < blockedUntil_)
        return false;
    switch (cmd) {
      case DramCommand::Activate:
        return !rowOpen() && now >= actReady_ && row < rowsPerBank_;
      case DramCommand::Read:
        return rowOpen() && openRow_ == row && now >= rdReady_;
      case DramCommand::Write:
        return rowOpen() && openRow_ == row && now >= wrReady_;
      case DramCommand::Precharge:
        return now >= preReady_;
      case DramCommand::Refresh:
        // Refresh legality (all banks closed) is enforced at rank level.
        return !rowOpen() && now >= actReady_;
    }
    return false;
}

Cycle
Bank::issue(DramCommand cmd, RowId row, Cycle now, bool autoPre)
{
    SRS_ASSERT(canIssue(cmd, row, now), "illegal ", commandName(cmd),
               " at cycle ", now);
    switch (cmd) {
      case DramCommand::Activate:
        openRow_ = row;
        chargeActivation(row);
        rdReady_ = now + timing_.tRCD;
        wrReady_ = now + timing_.tRCD;
        preReady_ = now + timing_.tRAS;
        actReady_ = now + timing_.tRC;
        return now + timing_.tRCD;

      case DramCommand::Read: {
        const Cycle dataDone = now + timing_.tCAS + timing_.tBL;
        rdReady_ = std::max(rdReady_, now + timing_.tCCD);
        wrReady_ = std::max(wrReady_, dataDone + timing_.tWTR);
        preReady_ = std::max(preReady_, now + timing_.tRTP);
        if (autoPre) {
            // RD-AP: the bank self-precharges tRTP after the column
            // access; the next ACT may come tRP later.
            actReady_ = std::max(actReady_,
                                 now + timing_.tRTP + timing_.tRP);
            openRow_ = kInvalidRow;
        }
        return dataDone;
      }

      case DramCommand::Write: {
        const Cycle restored =
            now + timing_.tCWL + timing_.tBL + timing_.tWR;
        wrReady_ = std::max(wrReady_, now + timing_.tCCD);
        rdReady_ = std::max(rdReady_, now + timing_.tCWL + timing_.tBL +
                                          timing_.tWTR);
        preReady_ = std::max(preReady_, restored);
        if (autoPre) {
            actReady_ = std::max(actReady_, restored + timing_.tRP);
            openRow_ = kInvalidRow;
        }
        return now + timing_.tCWL + timing_.tBL;
      }

      case DramCommand::Precharge:
        openRow_ = kInvalidRow;
        actReady_ = std::max(actReady_, now + timing_.tRP);
        return now + timing_.tRP;

      case DramCommand::Refresh:
        actReady_ = std::max(actReady_, now + timing_.tRFC);
        preReady_ = std::max(preReady_, now + timing_.tRFC);
        return now + timing_.tRFC;
    }
    panic("unreachable command");
}

Cycle
Bank::blockFor(Cycle now, Cycle duration)
{
    SRS_ASSERT(!blocked(now), "bank already mid-migration");
    blockedUntil_ = std::max(now, actReady_) + duration;
    // A migration streams rows through the bank; afterwards the bank
    // is precharged and immediately usable.
    openRow_ = kInvalidRow;
    actReady_ = std::max(actReady_, blockedUntil_);
    preReady_ = std::max(preReady_, blockedUntil_);
    rdReady_ = std::max(rdReady_, blockedUntil_);
    wrReady_ = std::max(wrReady_, blockedUntil_);
    return blockedUntil_;
}

void
Bank::chargeActivation(RowId row, std::uint32_t count)
{
    SRS_ASSERT(row < rowsPerBank_, "activation to nonexistent row");
    auto &cell = actCounts_[row];
    cell += count;
    totalActs_ += count;
    if (cell > maxActs_) {
        maxActs_ = cell;
        maxActRow_ = row;
    }
}

std::uint64_t
Bank::activationsOf(RowId row) const
{
    const auto it = actCounts_.find(row);
    return it == actCounts_.end() ? 0 : it->second;
}

void
Bank::resetEpochCounters()
{
    actCounts_.clear();
    maxActs_ = 0;
    maxActRow_ = kInvalidRow;
    totalActs_ = 0;
}

} // namespace srs
