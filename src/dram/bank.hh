/**
 * @file
 * Per-bank DDR4 timing state machine.
 *
 * The bank tracks the open row plus the earliest cycle at which each
 * command class may legally issue.  The controller asks canIssue()
 * before issue() — issue() panics on a timing violation, making the
 * protocol checker part of the model itself.
 *
 * The bank also owns the per-epoch activation ground truth used by the
 * Row Hammer security analyses: every ACT (demand or mitigation-
 * induced "latent" activation) increments a per-row counter that the
 * experiment harnesses inspect to decide whether T_RH was crossed.
 */

#ifndef SRS_DRAM_BANK_HH
#define SRS_DRAM_BANK_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/params.hh"

namespace srs
{

/** One DRAM bank: open-row state, timing windows, activation counts. */
class Bank
{
  public:
    Bank(const DramTiming &timing, std::uint32_t rowsPerBank);

    /** @return true when @p cmd to @p row may issue at @p now. */
    bool canIssue(DramCommand cmd, RowId row, Cycle now) const;

    /**
     * Issue a command, updating timing windows.
     *
     * @param cmd        command to issue
     * @param row        target row (ACT/RD/WR) or ignored (PRE)
     * @param now        current cycle
     * @param autoPre    close the row after the column access (RD/WR)
     * @return cycle at which the command's data/effect completes
     *         (RD: data returned; WR: write restored; others: done)
     */
    Cycle issue(DramCommand cmd, RowId row, Cycle now,
                bool autoPre = true);

    /** @return true when a row is open in the row buffer. */
    bool rowOpen() const { return openRow_ != kInvalidRow; }

    /** @return the open row (kInvalidRow when closed). */
    RowId openRow() const { return openRow_; }

    /**
     * Block the bank for a mitigation-driven row migration.  While
     * blocked, no demand command can issue.  @return completion cycle.
     */
    Cycle blockFor(Cycle now, Cycle duration);

    /** @return true when a migration currently occupies the bank. */
    bool blocked(Cycle now) const { return now < blockedUntil_; }

    /** @return cycle when the current migration finishes. */
    Cycle blockedUntil() const { return blockedUntil_; }

    /**
     * Charge activations to a physical row without running the FSM
     * (used for the latent activations embedded in migration jobs,
     * whose timing is folded into the migration duration).
     */
    void chargeActivation(RowId row, std::uint32_t count = 1);

    /** Per-epoch activation count of @p row (ground truth). */
    std::uint64_t activationsOf(RowId row) const;

    /** Highest per-row activation count this epoch. */
    std::uint64_t maxActivations() const { return maxActs_; }

    /** Row holding the per-epoch activation maximum. */
    RowId maxActivationRow() const { return maxActRow_; }

    /** Total ACTs this epoch (all rows). */
    std::uint64_t totalActivations() const { return totalActs_; }

    /** Reset per-epoch activation ground truth (refresh boundary). */
    void resetEpochCounters();

    /** Earliest cycle an ACT may issue (exposed for tests). */
    Cycle actReadyAt() const { return actReady_; }

    /** Earliest cycle a PRE may issue (exposed for tests). */
    Cycle preReadyAt() const { return preReady_; }

  private:
    const DramTiming &timing_;
    std::uint32_t rowsPerBank_;

    RowId openRow_ = kInvalidRow;
    Cycle actReady_ = 0;    ///< earliest ACT
    Cycle rdReady_ = 0;     ///< earliest RD to the open row
    Cycle wrReady_ = 0;     ///< earliest WR to the open row
    Cycle preReady_ = 0;    ///< earliest PRE
    Cycle blockedUntil_ = 0;

    std::unordered_map<RowId, std::uint64_t> actCounts_;
    std::uint64_t maxActs_ = 0;
    RowId maxActRow_ = kInvalidRow;
    std::uint64_t totalActs_ = 0;
};

} // namespace srs

#endif // SRS_DRAM_BANK_HH
