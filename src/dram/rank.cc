#include "dram/rank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srs
{

Rank::Rank(const DramTiming &timing, const DramOrg &org)
    : timing_(timing)
{
    banks_.reserve(org.banksPerRank);
    for (std::uint32_t i = 0; i < org.banksPerRank; ++i)
        banks_.emplace_back(timing, org.rowsPerBank);
    actWindow_.fill(0);
}

bool
Rank::canIssue(DramCommand cmd, std::uint32_t bankIdx, RowId row,
               Cycle now) const
{
    if (refreshing(now))
        return false;
    if (cmd == DramCommand::Activate && actCount_ > 0) {
        if (now < lastAct_ + timing_.tRRD)
            return false;
        // Four-activate window: once four ACTs have issued, the
        // fourth-last must be at least tFAW in the past.
        if (actCount_ >= actWindow_.size()) {
            const Cycle oldest = actWindow_[actWindowHead_];
            if (now < oldest + timing_.tFAW)
                return false;
        }
    }
    if (cmd == DramCommand::Read || cmd == DramCommand::Write) {
        const Cycle dataStart = now +
            (cmd == DramCommand::Read ? timing_.tCAS : timing_.tCWL);
        if (!busFree(dataStart, timing_.tBL))
            return false;
    }
    return banks_[bankIdx].canIssue(cmd, row, now);
}

Cycle
Rank::issue(DramCommand cmd, std::uint32_t bankIdx, RowId row, Cycle now,
            bool autoPre)
{
    SRS_ASSERT(canIssue(cmd, bankIdx, row, now),
               "rank rejects ", commandName(cmd));
    if (cmd == DramCommand::Activate) {
        actWindow_[actWindowHead_] = now;
        actWindowHead_ = (actWindowHead_ + 1) % actWindow_.size();
        lastAct_ = now;
        ++actCount_;
    }
    if (cmd == DramCommand::Read || cmd == DramCommand::Write) {
        const Cycle dataStart = now +
            (cmd == DramCommand::Read ? timing_.tCAS : timing_.tCWL);
        reserveBus(dataStart, timing_.tBL);
    }
    return banks_[bankIdx].issue(cmd, row, now, autoPre);
}

bool
Rank::canRefresh(Cycle now) const
{
    if (refreshing(now))
        return false;
    for (const Bank &b : banks_) {
        if (b.rowOpen() || b.blocked(now) || now < b.actReadyAt())
            return false;
    }
    return true;
}

Cycle
Rank::refresh(Cycle now)
{
    SRS_ASSERT(canRefresh(now), "refresh while rank busy");
    refreshUntil_ = now + timing_.tRFC;
    ++refreshCount_;
    for (Bank &b : banks_)
        b.issue(DramCommand::Refresh, 0, now);
    return refreshUntil_;
}

bool
Rank::busFree(Cycle start, Cycle len) const
{
    (void)len;
    // The bus is modelled as busy-until: transfers are queued in issue
    // order, so a transfer starting at or after the current horizon is
    // conflict-free.
    return start >= busBusyUntil_;
}

void
Rank::reserveBus(Cycle start, Cycle len)
{
    busBusyUntil_ = std::max(busBusyUntil_, start + len);
}

} // namespace srs
