/**
 * @file
 * DRAM command vocabulary shared by the bank/rank timing models and
 * the memory controller.
 */

#ifndef SRS_DRAM_COMMAND_HH
#define SRS_DRAM_COMMAND_HH

#include <string_view>

namespace srs
{

/** The DDR4 command subset the controller issues. */
enum class DramCommand
{
    Activate,       ///< ACT: open a row into the row buffer
    Read,           ///< RD with auto-precharge under closed-page policy
    Write,          ///< WR with auto-precharge under closed-page policy
    Precharge,      ///< PRE: close the open row
    Refresh,        ///< REF: all-bank refresh, occupies rank for tRFC
};

/** @return a short mnemonic for tracing. */
constexpr std::string_view
commandName(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::Activate:  return "ACT";
      case DramCommand::Read:      return "RD";
      case DramCommand::Write:     return "WR";
      case DramCommand::Precharge: return "PRE";
      case DramCommand::Refresh:   return "REF";
    }
    return "?";
}

/** Row-buffer page management policy (paper assumes closed-page). */
enum class PagePolicy
{
    Closed,     ///< auto-precharge after every column access
    Open,       ///< keep rows open until a conflict forces PRE
};

} // namespace srs

#endif // SRS_DRAM_COMMAND_HH
