/**
 * @file
 * DRAM organization and timing parameters (paper Table III).
 *
 * Timings are specified in nanoseconds and converted once into CPU
 * cycles via DramTiming::fromNs().  The simulator always works in CPU
 * cycles; the memory bus runs at half the CPU clock (3.2 GHz CPU,
 * 1.6 GHz DDR4-3200 bus).
 */

#ifndef SRS_DRAM_PARAMS_HH
#define SRS_DRAM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace srs
{

/** Geometry of the memory system (defaults: paper Table III). */
struct DramOrg
{
    std::uint32_t channels = 2;
    std::uint32_t ranksPerChannel = 1;
    std::uint32_t banksPerRank = 16;
    std::uint32_t rowsPerBank = 128 * 1024;
    std::uint32_t rowBytes = 8 * 1024;
    std::uint32_t lineBytes = 64;

    /** Cache lines per row (columns at line granularity). */
    std::uint32_t linesPerRow() const { return rowBytes / lineBytes; }

    /** Total banks across the system. */
    std::uint32_t totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(rowsPerBank) * rowBytes *
               totalBanks();
    }

    /** Sanity-check invariants (power-of-two fields); fatal() on error. */
    void validate() const;
};

/**
 * Named DRAM-generation timing presets.  Ddr4 is the paper's
 * Table III baseline; Ddr5 is the Section VIII-5 DDR5-4800-class
 * variant (DramTimingNs::ddr5()).  The sweep engine exposes the
 * preset as a system axis (`SystemAxes`, sim/workload_spec.hh).
 */
enum class DramPreset
{
    Ddr4,
    Ddr5,
};

/** Raw DDR4 timing parameters in nanoseconds (defaults: Table III). */
struct DramTimingNs
{
    double cpuFreqGHz = 3.2;

    double tCK = 0.625;   // bus clock period (1.6 GHz bus)
    double tRCD = 14.0;
    double tRP = 14.0;
    double tCAS = 14.0;   // CL
    double tCWL = 10.0;
    double tRC = 45.0;
    double tRAS = 31.0;   // tRC - tRP
    double tRFC = 350.0;
    double tREFI = 7800.0;
    double tCCD = 5.0;    // column-to-column, same bank group worst case
    double tBL = 2.5;     // burst of 8 @ DDR
    double tWR = 15.0;
    double tRTP = 7.5;
    double tRRD = 5.0;
    double tFAW = 25.0;
    double tWTR = 7.5;

    /**
     * DDR5-4800-class preset (Section VIII-5): the bus doubles to
     * 2.4 GHz and refresh runs twice as often (tREFI halves), which
     * halves the window an attack has to accumulate activations —
     * the property the DDR5 analysis in the paper rests on.  Core
     * timings stay at their DDR4-like nanosecond values (tRC barely
     * moves across generations).
     */
    static DramTimingNs ddr5();

    /** Timing defaults of @p preset (Ddr4 = Table III, Ddr5 above). */
    static DramTimingNs preset(DramPreset preset);
};

/** DDR4 timing parameters converted to CPU cycles. */
struct DramTiming
{
    Cycle tRCD, tRP, tCAS, tCWL, tRC, tRAS, tRFC, tREFI;
    Cycle tCCD, tBL, tWR, tRTP, tRRD, tFAW, tWTR;
    /** CPU cycles per memory bus clock (controller decision period). */
    Cycle busClock;

    /** Convert from nanosecond parameters at the given CPU frequency. */
    static DramTiming fromNs(const DramTimingNs &ns);

    /**
     * Cycles to stream one whole row through the controller:
     * ACT + linesPerRow column accesses + PRE.  This is the unit cost
     * used for swap / unswap / place-back row movements.
     */
    Cycle rowTransferCycles(std::uint32_t linesPerRow) const;
};

/** Convert nanoseconds to (rounded-up) CPU cycles. */
Cycle nsToCycles(double ns, double cpuFreqGHz);

/** Convert CPU cycles back to seconds. */
double cyclesToSec(Cycle cycles, double cpuFreqGHz);

} // namespace srs

#endif // SRS_DRAM_PARAMS_HH
