#include "dram/address.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

AddressMap::AddressMap(const DramOrg &org)
    : org_(org)
{
    org_.validate();
    offsetBits_ = floorLog2(org_.lineBytes);
    columnBits_ = floorLog2(org_.linesPerRow());
    channelBits_ = floorLog2(org_.channels);
    // validate() already guarantees power-of-two geometry, so every
    // field width (rank included) comes straight from the org.
    rankBits_ = floorLog2(org_.ranksPerChannel);
    bankBits_ = floorLog2(org_.banksPerRank);
    rowBits_ = floorLog2(org_.rowsPerBank);
}

DramCoord
AddressMap::decode(Addr addr) const
{
    DramCoord c;
    Addr bits = addr >> offsetBits_;
    c.column = static_cast<std::uint32_t>(bits & ((1ULL << columnBits_) - 1));
    bits >>= columnBits_;
    c.channel = static_cast<std::uint32_t>(bits &
        ((1ULL << channelBits_) - 1));
    bits >>= channelBits_;
    if (rankBits_ > 0) {
        c.rank = static_cast<std::uint32_t>(bits &
            ((1ULL << rankBits_) - 1));
        bits >>= rankBits_;
    }
    c.bank = static_cast<std::uint32_t>(bits & ((1ULL << bankBits_) - 1));
    bits >>= bankBits_;
    c.row = static_cast<RowId>(bits & ((1ULL << rowBits_) - 1));
    return c;
}

Addr
AddressMap::encode(const DramCoord &coord) const
{
    SRS_ASSERT(coord.channel < org_.channels, "channel out of range");
    SRS_ASSERT(coord.rank < org_.ranksPerChannel, "rank out of range");
    SRS_ASSERT(coord.bank < org_.banksPerRank, "bank out of range");
    SRS_ASSERT(coord.row < org_.rowsPerBank, "row out of range");
    SRS_ASSERT(coord.column < org_.linesPerRow(), "column out of range");

    Addr bits = coord.row;
    bits = (bits << bankBits_) | coord.bank;
    if (rankBits_ > 0)
        bits = (bits << rankBits_) | coord.rank;
    bits = (bits << channelBits_) | coord.channel;
    bits = (bits << columnBits_) | coord.column;
    return bits << offsetBits_;
}

BankId
AddressMap::flatBank(const DramCoord &coord) const
{
    return (coord.channel * org_.ranksPerChannel + coord.rank) *
               org_.banksPerRank +
           coord.bank;
}

Addr
AddressMap::rowBaseAddr(std::uint32_t channel, std::uint32_t rank,
                        std::uint32_t bank, RowId row) const
{
    DramCoord c;
    c.channel = channel;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.column = 0;
    return encode(c);
}

Addr
AddressMap::rowBaseOf(Addr addr) const
{
    DramCoord c = decode(addr);
    c.column = 0;
    return encode(c);
}

} // namespace srs
