/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping.
 *
 * Layout (LSB to MSB): line offset | column | channel | rank | bank
 * | row.  Every field width is derived from the live DramOrg (no
 * width is hard-coded): with the default 2x1x16 Table III geometry
 * that is 6 + 7 + 1 + 0 + 4 + 17 = 35 bits (32 GB); a 4x2x32 org
 * yields 6 + 7 + 2 + 1 + 5 + 17 = 38 bits.  Channel, rank and bank
 * bits sit just above the column so consecutive row-sized blocks
 * stripe across every bank in the system before the row index
 * advances — maximizing bank/channel parallelism for streaming
 * workloads — while one DRAM row stays contiguous in the physical
 * address space (required for LLC row pinning).
 */

#ifndef SRS_DRAM_ADDRESS_HH
#define SRS_DRAM_ADDRESS_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/params.hh"

namespace srs
{

/** Decoded DRAM coordinates for one physical address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;     ///< bank index within the rank
    RowId row = 0;              ///< row index within the bank
    std::uint32_t column = 0;   ///< cache-line index within the row

    bool operator==(const DramCoord &) const = default;
};

/** Bidirectional address mapper derived from a DramOrg. */
class AddressMap
{
  public:
    explicit AddressMap(const DramOrg &org);

    /** Decode a byte address into DRAM coordinates. */
    DramCoord decode(Addr addr) const;

    /** Encode DRAM coordinates back into a (line-aligned) address. */
    Addr encode(const DramCoord &coord) const;

    /**
     * Flat bank index across the system:
     * channel * ranks * banksPerRank + rank * banksPerRank + bank.
     */
    BankId flatBank(const DramCoord &coord) const;

    /** @return first byte address of the given row. */
    Addr rowBaseAddr(std::uint32_t channel, std::uint32_t rank,
                     std::uint32_t bank, RowId row) const;

    /** @return the row-aligned base of @p addr. */
    Addr rowBaseOf(Addr addr) const;

    const DramOrg &org() const { return org_; }

  private:
    DramOrg org_;
    unsigned offsetBits_;
    unsigned columnBits_;
    unsigned channelBits_;
    unsigned rankBits_;
    unsigned bankBits_;
    unsigned rowBits_;
};

} // namespace srs

#endif // SRS_DRAM_ADDRESS_HH
