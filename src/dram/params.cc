#include "dram/params.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

void
DramOrg::validate() const
{
    if (channels == 0 || ranksPerChannel == 0 || banksPerRank == 0)
        fatal("DramOrg: zero-sized geometry");
    if (!isPowerOfTwo(channels) || !isPowerOfTwo(ranksPerChannel) ||
        !isPowerOfTwo(banksPerRank) ||
        !isPowerOfTwo(rowsPerBank) || !isPowerOfTwo(rowBytes) ||
        !isPowerOfTwo(lineBytes)) {
        fatal("DramOrg: geometry fields must be powers of two");
    }
    if (rowBytes < lineBytes)
        fatal("DramOrg: row smaller than a cache line");
}

Cycle
nsToCycles(double ns, double cpuFreqGHz)
{
    return static_cast<Cycle>(std::ceil(ns * cpuFreqGHz - 1e-9));
}

double
cyclesToSec(Cycle cycles, double cpuFreqGHz)
{
    return static_cast<double>(cycles) / (cpuFreqGHz * 1e9);
}

DramTimingNs
DramTimingNs::ddr5()
{
    DramTimingNs ns;
    ns.tCK = 0.417;      // 2.4 GHz bus (DDR5-4800)
    ns.tREFI = 3900.0;   // 2x refresh frequency
    ns.tRFC = 295.0;     // same-density DDR5 tRFC1
    ns.tBL = 1.667;      // burst of 16 at twice the rate
    return ns;
}

DramTimingNs
DramTimingNs::preset(DramPreset preset)
{
    switch (preset) {
      case DramPreset::Ddr4: return DramTimingNs{};
      case DramPreset::Ddr5: return ddr5();
    }
    fatal("unknown DRAM preset");
}

DramTiming
DramTiming::fromNs(const DramTimingNs &ns)
{
    const double f = ns.cpuFreqGHz;
    DramTiming t;
    t.tRCD = nsToCycles(ns.tRCD, f);
    t.tRP = nsToCycles(ns.tRP, f);
    t.tCAS = nsToCycles(ns.tCAS, f);
    t.tCWL = nsToCycles(ns.tCWL, f);
    t.tRC = nsToCycles(ns.tRC, f);
    t.tRAS = nsToCycles(ns.tRAS, f);
    t.tRFC = nsToCycles(ns.tRFC, f);
    t.tREFI = nsToCycles(ns.tREFI, f);
    t.tCCD = nsToCycles(ns.tCCD, f);
    t.tBL = nsToCycles(ns.tBL, f);
    t.tWR = nsToCycles(ns.tWR, f);
    t.tRTP = nsToCycles(ns.tRTP, f);
    t.tRRD = nsToCycles(ns.tRRD, f);
    t.tFAW = nsToCycles(ns.tFAW, f);
    t.tWTR = nsToCycles(ns.tWTR, f);
    t.busClock = nsToCycles(ns.tCK, f);
    if (t.busClock == 0)
        fatal("DramTiming: bus clock rounds to zero CPU cycles");
    return t;
}

Cycle
DramTiming::rowTransferCycles(std::uint32_t linesPerRow) const
{
    return tRCD + static_cast<Cycle>(linesPerRow) * tCCD + tRP;
}

} // namespace srs
