/**
 * @file
 * Rank-level DDR4 constraints: tRRD / tFAW activation pacing, the
 * shared data bus, and all-bank refresh.
 */

#ifndef SRS_DRAM_RANK_HH
#define SRS_DRAM_RANK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/params.hh"

namespace srs
{

/** A rank: a set of banks sharing ACT pacing, data bus, and refresh. */
class Rank
{
  public:
    Rank(const DramTiming &timing, const DramOrg &org);

    /** Access a bank by index within the rank (hot path: inline). */
    Bank &bank(std::uint32_t idx)
    {
        SRS_ASSERT(idx < banks_.size(), "bank index out of range");
        return banks_[idx];
    }
    const Bank &bank(std::uint32_t idx) const
    {
        SRS_ASSERT(idx < banks_.size(), "bank index out of range");
        return banks_[idx];
    }

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** @return true when rank-level rules admit @p cmd at @p now. */
    bool canIssue(DramCommand cmd, std::uint32_t bankIdx, RowId row,
                  Cycle now) const;

    /**
     * Issue through the rank (applies pacing, then delegates to the
     * bank).  @return completion cycle as defined by Bank::issue().
     */
    Cycle issue(DramCommand cmd, std::uint32_t bankIdx, RowId row,
                Cycle now, bool autoPre = true);

    /** @return true when an all-bank refresh may start at @p now. */
    bool canRefresh(Cycle now) const;

    /** Start an all-bank refresh. @return completion cycle. */
    Cycle refresh(Cycle now);

    /** @return true while a refresh occupies the rank. */
    bool refreshing(Cycle now) const { return now < refreshUntil_; }

    /** Count of refreshes performed since construction. */
    std::uint64_t refreshCount() const { return refreshCount_; }

    /** Reserve the shared data bus [start, start+len). */
    bool busFree(Cycle start, Cycle len) const;
    void reserveBus(Cycle start, Cycle len);

  private:
    const DramTiming &timing_;
    std::vector<Bank> banks_;

    /** Sliding window of the last four ACT issue cycles (tFAW). */
    std::array<Cycle, 4> actWindow_{};
    std::uint32_t actWindowHead_ = 0;
    std::uint64_t actCount_ = 0;
    Cycle lastAct_ = 0;

    Cycle busBusyUntil_ = 0;
    Cycle refreshUntil_ = 0;
    std::uint64_t refreshCount_ = 0;
};

} // namespace srs

#endif // SRS_DRAM_RANK_HH
