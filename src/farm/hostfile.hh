/**
 * @file
 * Fleet host descriptions for the farm dispatcher.
 *
 * A hostfile is the versioned `key=value` description of the fleet a
 * `srs_sim farm` run may dispatch shards to: one block per host with
 * its job-slot count, optional srs_sim binary path, and remote work
 * directory.  The reserved host name "local" selects the fork/exec
 * LocalTransport (no ssh involved), which is what every test and CI
 * job uses; anything else is an ssh destination
 * (farm/transport.hh).  docs/sweep-format.md specifies the schema.
 *
 * The hostfile never affects results: transports and host
 * assignments are not part of any cell's identity, so the merged CSV
 * is byte-identical whatever fleet computed it.
 */

#ifndef SRS_FARM_HOSTFILE_HH
#define SRS_FARM_HOSTFILE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace srs
{

/** Hostfile schema version this build writes and reads. */
inline constexpr unsigned kHostfileVersion = 1;

/** One dispatch target: a host and its capacity. */
struct HostSpec
{
    /**
     * Dispatch destination: the reserved name "local" runs shards
     * as direct children; anything else is an ssh destination
     * (`user@node` or a ~/.ssh/config alias).
     */
    std::string host = "local";
    /** Concurrent shard slots on this host (>= 1). */
    std::size_t jobs = 1;
    /**
     * srs_sim binary path *on the host*; empty means the
     * dispatcher's own --sim default.  Remote hosts usually need an
     * explicit path — the local binary's path rarely exists there.
     */
    std::string sim;
    /**
     * Work directory *on the host* where shard CSVs/journals/logs
     * live while the shard runs (created on launch, files pulled
     * back by the transport).  Required for ssh hosts; ignored for
     * "local", whose shards write straight into the shard dir.
     */
    std::string workdir;

    /** @return true when this host uses the fork/exec transport. */
    bool isLocal() const { return host == "local"; }
};

/**
 * Parse a hostfile: `version=1`, `hosts=<N>`, then per host K the
 * keys `hostK.host=`, `hostK.jobs=`, `hostK.sim=`, `hostK.workdir=`
 * ('#' comments allowed).  Unknown keys, unknown versions, zero
 * hosts/jobs, or an ssh host without a workdir are fatal() —
 * misconfigured fleets fail by name before anything launches.
 */
std::vector<HostSpec> loadHostfile(const std::string &path);

/** The on-disk text loadHostfile() parses (for tests and tooling). */
std::string serializeHostfile(const std::vector<HostSpec> &hosts);

/**
 * One dispatcher slot per host job, host-major: a fleet of
 * {A:2 jobs, B:1 job} expands to slots [A, A, B] (indices into
 * @p hosts).  More slots than shards just leaves slots idle — the
 * planner clamps shard counts to the grid's outer axis, not to the
 * fleet size.
 */
std::vector<std::size_t>
expandHostSlots(const std::vector<HostSpec> &hosts);

} // namespace srs

#endif // SRS_FARM_HOSTFILE_HH
