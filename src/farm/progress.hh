/**
 * @file
 * Journal-based fleet progress: the farm's observability channel.
 *
 * Every shard sweep already streams one flushed journal line per
 * completed cell (sim/sweep.hh) — so per-shard progress, rows/sec,
 * and ETA are computable by *reading files*, with zero
 * instrumentation in the simulator hot path.  This header holds the
 * pieces both consumers share:
 *
 *  - scanShardJournal() counts a journal's complete data rows and
 *    validates its header comment against the shard's expected grid
 *    digest, so a stale or foreign journal is rejected by name;
 *  - ProgressClock turns successive (rows, time) samples into
 *    rows/sec and ETA estimates;
 *  - writeStatusJson()/writeStatusTable() render a fleet snapshot
 *    as JSON lines (one "shard" object per shard plus one "fleet"
 *    totals object — docs/sweep-format.md has the schema) or as a
 *    human --watch table.
 *
 * `srs_sim farm --status-file` snapshots through these after every
 * poll; `srs_sim monitor` builds the same snapshot from the shard
 * directory alone, while the fleet is running or after it died.
 */

#ifndef SRS_FARM_PROGRESS_HH
#define SRS_FARM_PROGRESS_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/orchestrator.hh"

namespace srs
{

/** What one shard's checkpoint journal says about its progress. */
struct JournalScan
{
    /** The journal file exists. */
    bool exists = false;
    /** A journal header comment was present (and validated). */
    bool headerSeen = false;
    /** Complete ('\n'-terminated) non-comment rows. */
    std::size_t rows = 0;
    /**
     * Non-empty when the journal must be rejected: its header names
     * a different schema or grid than this shard's.  Torn final
     * lines are not an error — they are simply not counted.
     */
    std::string error;
};

/**
 * Scan one shard journal at @p path.  @p cells and @p digest are
 * the shard's expected cell count and SweepRunner::gridDigest —
 * a header naming anything else fills JournalScan::error.
 * Headerless journals (pre-header builds) scan fine; rows are
 * clamped to @p cells.
 */
JournalScan scanShardJournal(const std::string &path,
                             std::size_t cells, std::uint64_t digest);

/** Lifecycle of one shard as the monitor/dispatcher sees it. */
enum class ShardState
{
    Pending,  ///< no journal yet, not launched (or just launched)
    Running,  ///< journal growing (or launched and warming up)
    Done,     ///< all cells journaled / CSV validated
    Failed,   ///< gave up after retries
};

/** Lowercase state name for status output. */
const char *shardStateName(ShardState state);

/** One row of a fleet status snapshot. */
struct ShardStatus
{
    std::size_t index = 0;
    ShardState state = ShardState::Pending;
    /** Host label ("-" when unassigned/unknown). */
    std::string host = "-";
    /** Cells completed (journal rows). */
    std::size_t rows = 0;
    /** Cells total. */
    std::size_t cells = 0;
    /** Launches so far (0 until first dispatch). */
    std::size_t attempts = 0;
    /** Completion rate; < 0 when unknown (needs two samples). */
    double rowsPerSec = -1.0;
    /** Remaining-time estimate in seconds; < 0 when unknown. */
    double etaSec = -1.0;
};

/**
 * Rows/sec and ETA from successive journal samples.  Rates are
 * measured between the first and the latest sample that advanced a
 * shard's row count, so one snapshot yields "unknown" (-1) and a
 * stalled shard's rate goes stale rather than inventing progress.
 * Deterministic given the sample sequence — tests feed synthetic
 * clocks.
 */
class ProgressClock
{
  public:
    explicit ProgressClock(std::size_t shardCount);

    /** Record that @p shard had @p rows rows at time @p nowSec. */
    void sample(std::size_t shard, std::size_t rows, double nowSec);

    /** Rows/sec for @p shard; < 0 while unknown. */
    double rowsPerSec(std::size_t shard) const;

    /**
     * Seconds until @p shard reaches @p cells rows at its measured
     * rate; < 0 while the rate is unknown, 0 when already there.
     */
    double etaSec(std::size_t shard, std::size_t cells) const;

  private:
    struct Track
    {
        bool seeded = false;
        std::size_t firstRows = 0;
        double firstSec = 0.0;
        std::size_t lastRows = 0;
        double lastSec = 0.0;
    };
    std::vector<Track> tracks_;
};

/**
 * JSON-lines snapshot: one `{"type":"shard",…}` object per entry of
 * @p shards, then one `{"type":"fleet",…}` totals object.  Fixed
 * field order and formatting (docs/sweep-format.md), `-1` for
 * unknown rates/ETAs — parseable line by line with any JSON reader.
 */
void writeStatusJson(std::ostream &os,
                     const std::vector<ShardStatus> &shards);

/** Human --watch rendering of the same snapshot. */
void writeStatusTable(std::ostream &os,
                      const std::vector<ShardStatus> &shards);

/** @return true when every shard is Done. */
bool fleetDone(const std::vector<ShardStatus> &shards);

/**
 * Build a fleet snapshot for @p manifest by reading the shard
 * journals under @p dir — nothing else; works while a farm/
 * orchestrate run is live on the same directory or after it died.
 * A journal whose header names a different grid is fatal() (reject
 * by name, never misread).  @p clock, when non-null, supplies
 * rows/sec and ETA (the caller samples it); host labels come from
 * @p hosts when non-empty (parallel to shards, "" = unknown).
 */
std::vector<ShardStatus>
snapshotFromJournals(const ShardManifest &manifest,
                     const std::string &dir,
                     const ProgressClock *clock,
                     const std::vector<std::string> &hosts = {});

/**
 * Best-effort host labels from a dispatcher --status-file written
 * by writeStatusJson() (one label per shard of @p shardCount; ""
 * when absent/unreadable).  Lets `monitor` show assignments without
 * any channel beyond the shard directory.
 */
std::vector<std::string>
readHostsFromStatus(const std::string &path, std::size_t shardCount);

} // namespace srs

#endif // SRS_FARM_PROGRESS_HH
