#include "farm/progress.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace srs
{

namespace
{

/** "%.2f" / "%.1f" with "-1" for unknown (negative) values. */
std::string
fmtRate(double v)
{
    if (v < 0)
        return "-1";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

std::string
fmtSec(double v)
{
    if (v < 0)
        return "-1";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

std::string
fmtPct(std::size_t rows, std::size_t cells)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  cells > 0 ? 100.0 * static_cast<double>(rows)
                                  / static_cast<double>(cells)
                            : 0.0);
    return buf;
}

} // namespace

JournalScan
scanShardJournal(const std::string &path, std::size_t cells,
                 std::uint64_t digest)
{
    JournalScan scan;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return scan;
    scan.exists = true;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string::size_type start = 0;
    while (start < text.size()) {
        const auto nl = text.find('\n', start);
        if (nl == std::string::npos)
            break; // torn final line: the writer died mid-row
        const std::string line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            SweepRunner::JournalHeader header;
            try {
                if (!SweepRunner::parseJournalHeader(line, header))
                    continue;
            } catch (const FatalError &err) {
                scan.error = err.what();
                return scan;
            }
            scan.headerSeen = true;
            if (header.schema != SweepRunner::kJournalSchema) {
                scan.error =
                    "journal header names schema "
                    + std::to_string(header.schema)
                    + "; this build reads schema "
                    + std::to_string(SweepRunner::kJournalSchema)
                    + " only";
                return scan;
            }
            if (header.cells != cells || header.digest != digest) {
                char want[64], got[64];
                std::snprintf(want, sizeof(want),
                              "cells=%zu grid=0x%016llx", cells,
                              static_cast<unsigned long long>(
                                  digest));
                std::snprintf(got, sizeof(got),
                              "cells=%llu grid=0x%016llx",
                              static_cast<unsigned long long>(
                                  header.cells),
                              static_cast<unsigned long long>(
                                  header.digest));
                scan.error = std::string("journal belongs to a "
                                         "different grid (header: ")
                             + got + "; this shard: " + want + ")";
                return scan;
            }
            continue;
        }
        ++scan.rows;
    }
    // A resumed journal re-records completed rows first; never
    // report more progress than the shard has cells.
    if (scan.rows > cells)
        scan.rows = cells;
    return scan;
}

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Pending: return "pending";
      case ShardState::Running: return "running";
      case ShardState::Done:    return "done";
      case ShardState::Failed:  return "failed";
    }
    return "?";
}

ProgressClock::ProgressClock(std::size_t shardCount)
    : tracks_(shardCount)
{
}

void
ProgressClock::sample(std::size_t shard, std::size_t rows,
                      double nowSec)
{
    if (shard >= tracks_.size())
        return;
    Track &t = tracks_[shard];
    if (!t.seeded) {
        t.seeded = true;
        t.firstRows = t.lastRows = rows;
        t.firstSec = t.lastSec = nowSec;
        return;
    }
    if (rows > t.lastRows) {
        t.lastRows = rows;
        t.lastSec = nowSec;
    }
    if (rows < t.firstRows) {
        // A restart rewrote the journal shorter (different resume
        // point); restart the measurement instead of reporting a
        // negative rate.
        t.firstRows = t.lastRows = rows;
        t.firstSec = t.lastSec = nowSec;
    }
}

double
ProgressClock::rowsPerSec(std::size_t shard) const
{
    if (shard >= tracks_.size())
        return -1.0;
    const Track &t = tracks_[shard];
    if (!t.seeded || t.lastRows <= t.firstRows
        || t.lastSec <= t.firstSec)
        return -1.0;
    return static_cast<double>(t.lastRows - t.firstRows)
           / (t.lastSec - t.firstSec);
}

double
ProgressClock::etaSec(std::size_t shard, std::size_t cells) const
{
    if (shard >= tracks_.size())
        return -1.0;
    const Track &t = tracks_[shard];
    if (t.seeded && t.lastRows >= cells)
        return 0.0;
    const double rate = rowsPerSec(shard);
    if (rate <= 0)
        return -1.0;
    return static_cast<double>(cells - t.lastRows) / rate;
}

void
writeStatusJson(std::ostream &os,
                const std::vector<ShardStatus> &shards)
{
    std::size_t pending = 0, running = 0, done = 0, failed = 0;
    std::size_t rows = 0, cells = 0;
    double fleetRate = 0.0;
    bool anyRate = false;
    for (const ShardStatus &s : shards) {
        os << "{\"type\":\"shard\",\"shard\":" << s.index
           << ",\"state\":\"" << shardStateName(s.state)
           << "\",\"host\":" << jsonQuote(s.host)
           << ",\"rows\":" << s.rows << ",\"cells\":" << s.cells
           << ",\"pct\":" << fmtPct(s.rows, s.cells)
           << ",\"rows_per_sec\":" << fmtRate(s.rowsPerSec)
           << ",\"eta_sec\":" << fmtSec(s.etaSec)
           << ",\"attempts\":" << s.attempts << "}\n";
        switch (s.state) {
          case ShardState::Pending: ++pending; break;
          case ShardState::Running: ++running; break;
          case ShardState::Done:    ++done; break;
          case ShardState::Failed:  ++failed; break;
        }
        rows += s.rows;
        cells += s.cells;
        if (s.state != ShardState::Done && s.rowsPerSec > 0) {
            fleetRate += s.rowsPerSec;
            anyRate = true;
        }
    }
    double fleetEta = -1.0;
    if (rows >= cells)
        fleetEta = 0.0;
    else if (anyRate && fleetRate > 0)
        fleetEta = static_cast<double>(cells - rows) / fleetRate;
    os << "{\"type\":\"fleet\",\"shards\":" << shards.size()
       << ",\"pending\":" << pending << ",\"running\":" << running
       << ",\"done\":" << done << ",\"failed\":" << failed
       << ",\"rows\":" << rows << ",\"cells\":" << cells
       << ",\"pct\":" << fmtPct(rows, cells) << ",\"rows_per_sec\":"
       << (anyRate ? fmtRate(fleetRate) : "-1") << ",\"eta_sec\":"
       << fmtSec(fleetEta) << "}\n";
    os.flush();
}

void
writeStatusTable(std::ostream &os,
                 const std::vector<ShardStatus> &shards)
{
    os << "shard  state    host              rows/cells     pct"
          "    rows/s       eta  attempts\n";
    std::size_t rows = 0, cells = 0, done = 0;
    for (const ShardStatus &s : shards) {
        char head[64];
        std::snprintf(head, sizeof(head), "%5zu  %-7s  %-16s",
                      s.index, shardStateName(s.state),
                      s.host.c_str());
        char mid[80];
        std::snprintf(mid, sizeof(mid), "  %5zu/%-5zu  %5s%%",
                      s.rows, s.cells,
                      fmtPct(s.rows, s.cells).c_str());
        os << head << mid << "  " << (s.rowsPerSec < 0
                                          ? std::string("     -")
                                          : fmtRate(s.rowsPerSec))
           << "  " << (s.etaSec < 0 ? std::string("       -")
                                    : fmtSec(s.etaSec) + "s")
           << "  " << s.attempts << '\n';
        rows += s.rows;
        cells += s.cells;
        done += s.state == ShardState::Done ? 1 : 0;
    }
    os << "fleet: " << done << "/" << shards.size() << " shards, "
       << rows << "/" << cells << " rows (" << fmtPct(rows, cells)
       << "%)\n";
    os.flush();
}

bool
fleetDone(const std::vector<ShardStatus> &shards)
{
    for (const ShardStatus &s : shards) {
        if (s.state != ShardState::Done)
            return false;
    }
    return true;
}

std::vector<ShardStatus>
snapshotFromJournals(const ShardManifest &manifest,
                     const std::string &dir,
                     const ProgressClock *clock,
                     const std::vector<std::string> &hosts)
{
    std::vector<ShardStatus> statuses;
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        const ShardSpec &shard = manifest.shards[k];
        const std::string journal =
            dir + "/" + shard.csv + ".journal";
        const std::uint64_t digest = SweepRunner::gridDigest(
            shard.grid.expand(), manifest.exp.seed);
        const JournalScan scan =
            scanShardJournal(journal, shard.cells, digest);
        if (!scan.error.empty()) {
            fatal("shard ", k, " journal '", journal, "': ",
                  scan.error);
        }
        ShardStatus status;
        status.index = k;
        status.rows = scan.rows;
        status.cells = shard.cells;
        if (scan.rows >= shard.cells)
            status.state = ShardState::Done;
        else if (scan.exists)
            status.state = ShardState::Running;
        else
            status.state = ShardState::Pending;
        if (k < hosts.size() && !hosts[k].empty())
            status.host = hosts[k];
        if (clock) {
            status.rowsPerSec = clock->rowsPerSec(k);
            status.etaSec = status.state == ShardState::Done
                                ? 0.0
                                : clock->etaSec(k, shard.cells);
        } else if (status.state == ShardState::Done) {
            status.etaSec = 0.0;
        }
        statuses.push_back(std::move(status));
    }
    return statuses;
}

std::vector<std::string>
readHostsFromStatus(const std::string &path, std::size_t shardCount)
{
    std::vector<std::string> hosts(shardCount);
    std::ifstream in(path);
    if (!in)
        return hosts;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"type\":\"shard\"") == std::string::npos)
            continue;
        const auto shardAt = line.find("\"shard\":");
        const auto hostAt = line.find("\"host\":\"");
        if (shardAt == std::string::npos
            || hostAt == std::string::npos)
            continue;
        const std::size_t index = static_cast<std::size_t>(
            std::strtoull(line.c_str() + shardAt + 8, nullptr, 10));
        const auto hostStart = hostAt + 8;
        const auto hostEnd = line.find('"', hostStart);
        if (index < shardCount && hostEnd != std::string::npos)
            hosts[index] = line.substr(hostStart,
                                       hostEnd - hostStart);
    }
    return hosts;
}

} // namespace srs
