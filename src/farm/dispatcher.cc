#include "farm/dispatcher.hh"

#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/subprocess.hh"
#include "farm/progress.hh"
#include "farm/transport.hh"

namespace srs
{

namespace
{

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/** Monotonic seconds for rate/staleness measurement. */
double
steadySec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

FarmDispatcher::FarmDispatcher(ShardManifest manifest,
                               FarmConfig config)
    : manifest_(std::move(manifest)), config_(std::move(config))
{
    if (config_.dir.empty())
        fatal("farm: no shard directory configured");
    if (config_.simPath.empty())
        fatal("farm: no srs_sim binary path configured");
    if (config_.hosts.empty())
        fatal("farm: the hostfile provides no hosts");
}

#if !defined(_WIN32)

void
FarmDispatcher::run(std::ostream &mergedOut)
{
    prepareShardDir(manifest_, config_.dir);
    const std::string statusPath = config_.statusFile.empty()
                                       ? config_.dir + "/farm.status"
                                       : config_.statusFile;

    std::vector<std::unique_ptr<Transport>> transports;
    for (const HostSpec &spec : config_.hosts)
        transports.push_back(makeTransport(spec, config_.dir));
    const std::vector<std::size_t> slots =
        expandHostSlots(config_.hosts);

    const std::size_t n = manifest_.shards.size();
    states_.assign(n, ShardRunState{});

    /** Runtime state the supervisor tracks per shard. */
    struct Live
    {
        ShardState state = ShardState::Pending;
        long pid = -1;
        std::size_t slot = kNoSlot;
        std::size_t rows = 0;
        double lastAdvance = 0.0;
        std::string host = "-";
        bool checkedComplete = false;
    };
    std::vector<Live> live(n);
    std::vector<std::uint64_t> digests(n);
    for (std::size_t k = 0; k < n; ++k) {
        digests[k] = SweepRunner::gridDigest(
            manifest_.shards[k].grid.expand(), manifest_.exp.seed);
    }

    std::deque<std::size_t> pending;
    for (std::size_t k = 0; k < n; ++k)
        pending.push_back(k);
    std::vector<char> slotBusy(slots.size(), 0);
    ProgressClock clock(n);

    const auto localCsv = [&](std::size_t k) {
        return config_.dir + "/" + manifest_.shards[k].csv;
    };
    const auto logPath = [&](std::size_t k) {
        return config_.dir + "/shard" + std::to_string(k) + ".log";
    };
    const auto freeSlot = [&]() -> std::size_t {
        for (std::size_t s = 0; s < slots.size(); ++s) {
            if (!slotBusy[s])
                return s;
        }
        return kNoSlot;
    };

    const auto writeStatus = [&] {
        std::vector<ShardStatus> snapshot;
        for (std::size_t k = 0; k < n; ++k) {
            ShardStatus status;
            status.index = k;
            status.state = live[k].state;
            status.host = live[k].host;
            status.rows = live[k].rows;
            status.cells = manifest_.shards[k].cells;
            status.attempts = states_[k].launches;
            status.rowsPerSec = clock.rowsPerSec(k);
            status.etaSec =
                live[k].state == ShardState::Done
                    ? 0.0
                    : clock.etaSec(k, manifest_.shards[k].cells);
            snapshot.push_back(std::move(status));
        }
        // Written whole then renamed into place, so a concurrent
        // reader never sees a half-written snapshot.
        const std::string tmp = statusPath + ".tmp";
        {
            std::ofstream out(tmp,
                              std::ios::trunc | std::ios::binary);
            if (!out)
                fatal("farm: cannot write status file '", tmp, "'");
            writeStatusJson(out, snapshot);
        }
        std::error_code ec;
        std::filesystem::rename(tmp, statusPath, ec);
        if (ec) {
            fatal("farm: cannot move status snapshot into '",
                  statusPath, "': ", ec.message());
        }
    };

    // Reap every in-flight child before a fatal() — orphans would
    // keep writing into the shard directory and race a re-run.
    // Their journals survive, so no completed cell is lost.
    const auto teardown = [&] {
        for (std::size_t k = 0; k < n; ++k) {
            if (live[k].pid >= 0) {
                killProcess(live[k].pid);
                waitProcess(live[k].pid);
                live[k].pid = -1;
            }
        }
    };

    const auto launch = [&](std::size_t k, std::size_t s) {
        Transport &transport = *transports[slots[s]];
        const HostSpec &host = config_.hosts[slots[s]];
        const ShardSpec &shard = manifest_.shards[k];
        // Ship the latest checkpoint to the executing side so a
        // restarted (or rebalanced) shard resumes from its last
        // journal row instead of recomputing finished cells.
        std::string resume;
        const std::string journal = shard.csv + ".journal";
        if (std::filesystem::exists(config_.dir + "/" + journal)) {
            transport.push(journal);
            resume = transport.remoteDir() + "/" + journal;
        } else if (std::filesystem::exists(localCsv(k))) {
            transport.push(shard.csv);
            resume = transport.remoteDir() + "/" + shard.csv;
        }
        const std::string sim =
            host.sim.empty() ? config_.simPath : host.sim;
        const long pid = transport.launch(
            shardCommandLine(manifest_, k, sim,
                             transport.remoteDir(),
                             config_.shardThreads, resume),
            logPath(k));
        ++launches_;
        ++states_[k].launches;
        slotBusy[s] = 1;
        live[k].state = ShardState::Running;
        live[k].pid = pid;
        live[k].slot = s;
        live[k].host = transport.label();
        live[k].lastAdvance = steadySec();
        std::fprintf(stderr,
                     "farm: shard %zu of %zu -> %s (slot %zu, pid "
                     "%ld, %zu cells%s)\n",
                     k, n, transport.label().c_str(), s, pid,
                     shard.cells, resume.empty() ? "" : ", resumed");
    };

    const auto releaseSlot = [&](std::size_t k) {
        if (live[k].slot != kNoSlot)
            slotBusy[live[k].slot] = 0;
        live[k].slot = kNoSlot;
        live[k].pid = -1;
    };

    // A failed or stalled shard goes back in the queue and takes
    // the next free slot on any live host — that requeue *is* the
    // rebalance away from dead hosts.  fatal() (with the fleet torn
    // down and the child's last words) once its retries run out.
    const auto handleFailure = [&](std::size_t k,
                                   const std::string &err) {
        releaseSlot(k);
        states_[k].lastError = err;
        if (states_[k].launches > config_.retries) {
            live[k].state = ShardState::Failed;
            writeStatus();
            teardown();
            const std::string tail = lastLogLine(logPath(k));
            writeShardSummary(std::cerr, manifest_, states_,
                              config_.dir);
            fatal("farm: shard ", k, " failed after ",
                  states_[k].launches, " attempt(s): ", err,
                  tail.empty()
                      ? ""
                      : "\n  shard's last log line: " + tail,
                  "\n  (see ", logPath(k), ")");
        }
        ++restarts_;
        ++states_[k].restarts;
        live[k].state = ShardState::Pending;
        live[k].host = "-";
        std::fprintf(stderr,
                     "farm: shard %zu failed (%s), relaunching from "
                     "its journal (attempt %zu/%zu)\n",
                     k, err.c_str(), states_[k].launches + 1,
                     config_.retries + 1);
        pending.push_back(k);
    };

    for (;;) {
        // Fill free slots from the queue, skipping shards whose
        // CSVs already validate (a previous run finished them).
        while (!pending.empty()) {
            const std::size_t k = pending.front();
            if (!live[k].checkedComplete) {
                live[k].checkedComplete = true;
                if (validateShardCsv(manifest_.shards[k],
                                     manifest_.exp, localCsv(k))
                        .empty()) {
                    pending.pop_front();
                    live[k].state = ShardState::Done;
                    live[k].rows = manifest_.shards[k].cells;
                    states_[k].done = true;
                    ++skipped_;
                    std::fprintf(stderr,
                                 "farm: shard %zu already complete "
                                 "(%zu cells)\n",
                                 k, manifest_.shards[k].cells);
                    continue;
                }
            }
            const std::size_t s = freeSlot();
            if (s == kNoSlot)
                break;
            pending.pop_front();
            launch(k, s);
        }

        bool anyRunning = false;
        for (std::size_t k = 0; k < n; ++k)
            anyRunning |= live[k].state == ShardState::Running;
        if (!anyRunning && pending.empty())
            break;

        writeStatus();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.pollMs));
        const double now = steadySec();

        for (std::size_t k = 0; k < n; ++k) {
            if (live[k].state != ShardState::Running)
                continue;
            Transport &transport = *transports[slots[live[k].slot]];
            const std::string journal =
                manifest_.shards[k].csv + ".journal";
            int status = 0;
            if (pollProcess(live[k].pid, status)) {
                // Collect outputs before judging: the merge needs
                // the CSV locally, and a failure keeps the pulled
                // journal as the next attempt's resume point.
                transport.pull(manifest_.shards[k].csv);
                transport.pull(journal);
                std::string err;
                if (processExitedCleanly(status)) {
                    err = validateShardCsv(manifest_.shards[k],
                                           manifest_.exp,
                                           localCsv(k));
                } else {
                    err = describeProcessExit(status);
                }
                if (err.empty()) {
                    releaseSlot(k);
                    live[k].state = ShardState::Done;
                    live[k].rows = manifest_.shards[k].cells;
                    states_[k].done = true;
                    clock.sample(k, live[k].rows, now);
                    std::fprintf(stderr, "farm: shard %zu done\n",
                                 k);
                } else {
                    handleFailure(k, err);
                }
                continue;
            }
            if (transport.pull(journal)) {
                const JournalScan scan = scanShardJournal(
                    config_.dir + "/" + journal,
                    manifest_.shards[k].cells, digests[k]);
                if (!scan.error.empty()) {
                    teardown();
                    fatal("farm: shard ", k, " journal '",
                          config_.dir + "/" + journal, "': ",
                          scan.error);
                }
                if (scan.rows > live[k].rows) {
                    live[k].rows = scan.rows;
                    live[k].lastAdvance = now;
                }
                clock.sample(k, live[k].rows, now);
            }
            if (config_.staleSec > 0
                && now - live[k].lastAdvance > config_.staleSec) {
                killProcess(live[k].pid);
                waitProcess(live[k].pid);
                char why[96];
                std::snprintf(why, sizeof(why),
                              "stalled: journal did not advance for "
                              "%.1fs (straggler or dead host)",
                              now - live[k].lastAdvance);
                handleFailure(k, why);
            }
        }
    }

    writeStatus();
    writeShardSummary(std::cerr, manifest_, states_, config_.dir);
    mergeShards(manifest_, config_.dir, mergedOut);
}

#else // _WIN32

void
FarmDispatcher::run(std::ostream &)
{
    fatal("srs_sim farm requires a POSIX platform (fork/waitpid); "
          "run the shards from the manifest by hand and stitch with "
          "'srs_sim merge'");
}

#endif

} // namespace srs
