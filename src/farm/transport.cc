#include "farm/transport.hh"

#include <filesystem>
#include <utility>

#include "common/logging.hh"
#include "common/subprocess.hh"

namespace srs
{

std::string
shellQuote(const std::string &s)
{
    // 'foo'\''bar': close the quote, emit a literal ', reopen.
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

LocalTransport::LocalTransport(std::string label, std::string dir)
    : label_(std::move(label)), dir_(std::move(dir))
{
}

long
LocalTransport::launch(const std::vector<std::string> &argv,
                       const std::string &logPath)
{
    return spawnProcess(argv, logPath);
}

bool
LocalTransport::pull(const std::string &name)
{
    // The shard writes straight into the shard dir; "pulling" is
    // just an existence check so the dispatcher's journal polling
    // works identically on both transports.
    return std::filesystem::exists(dir_ + "/" + name);
}

void
LocalTransport::push(const std::string &)
{
}

SshTransport::SshTransport(const HostSpec &spec, std::string dir)
    : label_(spec.host), host_(spec.host), workdir_(spec.workdir),
      dir_(std::move(dir))
{
    if (workdir_.empty())
        fatal("ssh host '", host_, "' has no workdir configured");
}

long
SshTransport::launch(const std::vector<std::string> &argv,
                     const std::string &logPath)
{
    // The remote shell gets one quoted command string; exec keeps
    // the remote shard as the ssh client's direct child, so killing
    // the local ssh pid tears the remote side down with it
    // (BatchMode keeps a dead host from hanging on a password
    // prompt — it fails fast and the dispatcher's retry logic takes
    // over).
    std::string remote = "mkdir -p " + shellQuote(workdir_) + " && cd "
                         + shellQuote(workdir_) + " && exec";
    for (const std::string &arg : argv)
        remote += " " + shellQuote(arg);
    return spawnProcess({"/usr/bin/ssh", "-o", "BatchMode=yes", "-tt",
                         host_, remote},
                        logPath);
}

bool
SshTransport::pull(const std::string &name)
{
    // Whole-file copy per poll: journals are one short line per
    // completed cell, so incremental pulls stay cheap even on
    // paper-scale grids.
    return runProcess({"/usr/bin/scp", "-q", "-o", "BatchMode=yes",
                       host_ + ":" + workdir_ + "/" + name,
                       dir_ + "/" + name})
           == 0;
}

void
SshTransport::push(const std::string &name)
{
    if (runProcess({"/usr/bin/ssh", "-o", "BatchMode=yes", host_,
                    "mkdir -p " + shellQuote(workdir_)})
        != 0) {
        fatal("farm: cannot create workdir '", workdir_, "' on '",
              host_, "'");
    }
    if (runProcess({"/usr/bin/scp", "-q", "-o", "BatchMode=yes",
                    dir_ + "/" + name,
                    host_ + ":" + workdir_ + "/" + name})
        != 0) {
        fatal("farm: cannot push '", name, "' to '", host_, ":",
              workdir_, "'");
    }
}

std::unique_ptr<Transport>
makeTransport(const HostSpec &spec, const std::string &dir)
{
    if (spec.isLocal())
        return std::make_unique<LocalTransport>(spec.host, dir);
    return std::make_unique<SshTransport>(spec, dir);
}

} // namespace srs
