/**
 * @file
 * The fleet dispatcher behind `srs_sim farm`.
 *
 * FarmDispatcher takes a planned orchestration (the shard manifest)
 * and a fleet (the hostfile) and runs the shards to completion
 * across the fleet's job slots:
 *
 *  - shards are assigned to free slots in order; a fleet with more
 *    slots than shards just leaves slots idle;
 *  - each launch goes through the host's Transport with the exact
 *    shardCommandLine() argv — resume checkpoints are pushed ahead
 *    of the launch, so a restarted shard never recomputes finished
 *    cells;
 *  - supervision is journal-based: every poll pulls each running
 *    shard's checkpoint journal and samples its row count.  A shard
 *    whose journal stops advancing for --stale-sec (straggler, dead
 *    host, wedged ssh) is killed and requeued; requeued shards take
 *    the *next free slot on any live host*, which is what rebalances
 *    work away from dead hosts.  Crashes requeue the same way, up to
 *    --retries relaunches per shard;
 *  - after every poll a status snapshot (farm/progress.hh JSON
 *    lines) is written atomically to the status file, so `srs_sim
 *    monitor` and external tooling can watch the fleet live;
 *  - when every shard's CSV validates, the existing mergeShards()
 *    stitches the merged CSV — byte-identical to a single-process
 *    sweep, whatever hosts, transports, kills, or restarts the run
 *    saw.  Transport is never part of cell identity.
 *
 * POSIX-only (like the orchestrator); run() is fatal() elsewhere.
 */

#ifndef SRS_FARM_DISPATCHER_HH
#define SRS_FARM_DISPATCHER_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "farm/hostfile.hh"
#include "sim/orchestrator.hh"

namespace srs
{

/** Fleet-level knobs (the grid lives in the manifest). */
struct FarmConfig
{
    /** Local shard directory (the manifest's directory). */
    std::string dir;
    /** The fleet (loadHostfile order; slots expand host-major). */
    std::vector<HostSpec> hosts;
    /** Default srs_sim path for hosts without their own sim=. */
    std::string simPath;
    /** --threads passed to each shard process. */
    std::size_t shardThreads = 1;
    /** Relaunches per shard after a crash, kill, or stall. */
    std::size_t retries = 2;
    /** Poll interval for journals/children, in milliseconds. */
    std::uint64_t pollMs = 200;
    /**
     * Straggler timeout: a running shard whose journal has not
     * grown for this many seconds is killed and requeued onto the
     * next free slot.  0 disables staleness detection.
     */
    double staleSec = 0.0;
    /** Status-snapshot path; empty writes <dir>/farm.status. */
    std::string statusFile;
};

/** Runs one manifest's shards across a fleet (see file comment). */
class FarmDispatcher
{
  public:
    FarmDispatcher(ShardManifest manifest, FarmConfig config);

    /**
     * Dispatch, supervise, and merge: returns after writing the
     * merged CSV to @p mergedOut and the final status snapshot.  A
     * shard that exhausts its retries is fatal() — with the fleet
     * torn down, the per-shard summary printed, and the dead
     * shard's last log line in the message.
     */
    void run(std::ostream &mergedOut);

    /** Child launches performed (first runs plus retries). */
    std::size_t launches() const { return launches_; }
    /** Relaunches after a crash, kill, or staleness timeout. */
    std::size_t restarts() const { return restarts_; }
    /** Shards whose CSVs already validated and never launched. */
    std::size_t skippedShards() const { return skipped_; }
    /** Per-shard accounting of the last run() (summary data). */
    const std::vector<ShardRunState> &shardStates() const
    {
        return states_;
    }

  private:
    ShardManifest manifest_;
    FarmConfig config_;
    std::size_t launches_ = 0;
    std::size_t restarts_ = 0;
    std::size_t skipped_ = 0;
    std::vector<ShardRunState> states_;
};

} // namespace srs

#endif // SRS_FARM_DISPATCHER_HH
