/**
 * @file
 * How a shard command reaches a host: the farm transport layer.
 *
 * A Transport carries one host's shard launches and file syncs.  The
 * dispatcher (farm/dispatcher.hh) only ever sees local child pids —
 * LocalTransport's pid *is* the shard, SshTransport's pid is the ssh
 * client supervising the remote shard — so supervision (poll, kill,
 * staleness) is transport-agnostic, and everything above this layer
 * is testable without a cluster.  Two implementations:
 *
 *  - LocalTransport: fork/exec into the shard directory.  Every
 *    test and CI job runs on this one; a hostfile with several
 *    "local" entries simulates a fleet on one machine.
 *  - SshTransport: wraps the shard argv in
 *    `ssh <host> 'mkdir -p <workdir> && cd <workdir> && exec …'`
 *    and syncs shard files (journal pulls for progress, CSV pulls
 *    for the merge, checkpoint pushes for resume) with scp.
 *
 * Transports never touch the command's science: the shard argv is
 * built by shardCommandLine() from the manifest alone, so a shard
 * computes byte-identical results whichever transport ran it —
 * transport is not part of any cell's identity.
 */

#ifndef SRS_FARM_TRANSPORT_HH
#define SRS_FARM_TRANSPORT_HH

#include <memory>
#include <string>
#include <vector>

#include "farm/hostfile.hh"

namespace srs
{

/** One host's launch/sync channel (see file comment). */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Host label for logs and status output. */
    virtual const std::string &label() const = 0;

    /**
     * The directory shard file names resolve against *on the
     * executing side*: the local shard dir, or the remote workdir.
     * Shard commands must be built against this path.
     */
    virtual const std::string &remoteDir() const = 0;

    /**
     * Launch @p argv on the host with output captured to the local
     * @p logPath.  @return the pid of the local supervising process
     * (the shard itself, or the ssh client); poll/kill it with the
     * common/subprocess.hh helpers.
     */
    virtual long launch(const std::vector<std::string> &argv,
                        const std::string &logPath) = 0;

    /**
     * Sync shard file @p name (a path relative to the shard dir /
     * workdir) from the host into the local shard dir.  @return
     * false when the file does not exist on the host (yet) — a
     * normal condition while a shard is starting up.  No-op (true)
     * for LocalTransport.
     */
    virtual bool pull(const std::string &name) = 0;

    /**
     * Ship shard file @p name from the local shard dir to the host
     * ahead of a launch (resume checkpoints).  fatal() on copy
     * failure.  No-op for LocalTransport.
     */
    virtual void push(const std::string &name) = 0;
};

/** Fork/exec transport; shards run straight in @p dir. */
class LocalTransport : public Transport
{
  public:
    /** @param label status label  @param dir local shard dir */
    LocalTransport(std::string label, std::string dir);

    const std::string &label() const override { return label_; }
    const std::string &remoteDir() const override { return dir_; }
    long launch(const std::vector<std::string> &argv,
                const std::string &logPath) override;
    bool pull(const std::string &name) override;
    void push(const std::string &name) override;

  private:
    std::string label_;
    std::string dir_;
};

/** ssh/scp transport for one remote host (see file comment). */
class SshTransport : public Transport
{
  public:
    /** @param spec hostfile entry  @param dir local shard dir */
    SshTransport(const HostSpec &spec, std::string dir);

    const std::string &label() const override { return label_; }
    const std::string &remoteDir() const override { return workdir_; }
    long launch(const std::vector<std::string> &argv,
                const std::string &logPath) override;
    bool pull(const std::string &name) override;
    void push(const std::string &name) override;

  private:
    std::string label_;
    std::string host_;
    std::string workdir_;
    std::string dir_;
};

/**
 * The transport for one hostfile entry: LocalTransport for "local",
 * SshTransport otherwise.  @p dir is the local shard directory.
 */
std::unique_ptr<Transport> makeTransport(const HostSpec &spec,
                                         const std::string &dir);

/** POSIX single-quote shell escaping (for the ssh command string). */
std::string shellQuote(const std::string &s);

} // namespace srs

#endif // SRS_FARM_TRANSPORT_HH
