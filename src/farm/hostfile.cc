#include "farm/hostfile.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/options.hh"

namespace srs
{

namespace
{

std::string
hostKey(std::size_t index, const char *field)
{
    return "host" + std::to_string(index) + "." + field;
}

} // namespace

std::vector<HostSpec>
loadHostfile(const std::string &path)
{
    const Options opts = Options::fromFile(path);
    const std::uint64_t version = opts.getUint("version", 0);
    if (version != kHostfileVersion) {
        fatal("hostfile '", path, "': unsupported version ", version,
              " (this build reads version ", kHostfileVersion,
              " — docs/sweep-format.md has the schema)");
    }
    const std::uint64_t count = opts.getUint("hosts", 0);
    if (count == 0)
        fatal("hostfile '", path, "': no hosts (hosts=0 or missing)");

    std::vector<HostSpec> hosts;
    for (std::size_t k = 0; k < count; ++k) {
        HostSpec spec;
        spec.host = opts.getString(hostKey(k, "host"), "");
        if (spec.host.empty()) {
            fatal("hostfile '", path, "': host ", k, " has no '",
                  hostKey(k, "host"), "=' entry");
        }
        spec.jobs = opts.getUint(hostKey(k, "jobs"), 1);
        if (spec.jobs == 0) {
            fatal("hostfile '", path, "': host ", k, " ('", spec.host,
                  "') has jobs=0; every host needs at least one "
                  "slot");
        }
        spec.sim = opts.getString(hostKey(k, "sim"), "");
        spec.workdir = opts.getString(hostKey(k, "workdir"), "");
        if (!spec.isLocal() && spec.workdir.empty()) {
            fatal("hostfile '", path, "': ssh host ", k, " ('",
                  spec.host, "') has no workdir= — remote shards "
                  "need a directory to run in");
        }
        hosts.push_back(std::move(spec));
    }
    opts.rejectUnknown();
    return hosts;
}

std::string
serializeHostfile(const std::vector<HostSpec> &hosts)
{
    std::ostringstream out;
    out << "# srs_sim farm hostfile (docs/sweep-format.md)\n"
        << "version=" << kHostfileVersion << '\n'
        << "hosts=" << hosts.size() << '\n';
    for (std::size_t k = 0; k < hosts.size(); ++k) {
        const HostSpec &spec = hosts[k];
        out << hostKey(k, "host") << '=' << spec.host << '\n'
            << hostKey(k, "jobs") << '=' << spec.jobs << '\n';
        if (!spec.sim.empty())
            out << hostKey(k, "sim") << '=' << spec.sim << '\n';
        if (!spec.workdir.empty()) {
            out << hostKey(k, "workdir") << '=' << spec.workdir
                << '\n';
        }
    }
    return out.str();
}

std::vector<std::size_t>
expandHostSlots(const std::vector<HostSpec> &hosts)
{
    std::vector<std::size_t> slots;
    for (std::size_t k = 0; k < hosts.size(); ++k) {
        for (std::size_t j = 0; j < hosts[k].jobs; ++j)
            slots.push_back(k);
    }
    return slots;
}

} // namespace srs
