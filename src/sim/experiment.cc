#include "sim/experiment.hh"

#include <cmath>

#include "common/logging.hh"
#include "trace/synthetic.hh"

namespace srs
{

SystemConfig
makeSystemConfig(const ExperimentConfig &exp, MitigationKind kind,
                 std::uint32_t trh, std::uint32_t swapRate,
                 TrackerKind tracker, const SystemAxes &axes)
{
    SystemConfig cfg;
    cfg.numCores = exp.numCores;
    cfg.mitigation = kind;
    cfg.tracker = tracker;
    cfg.mit.trh = trh;
    cfg.mit.swapRate = swapRate;
    cfg.mit.seed = exp.seed ^ 0x517e5ULL;
    cfg.epochLen = exp.epochLen;
    cfg.seed = exp.seed;
    cfg.referenceLoop = exp.referenceLoop;
    cfg.channelWorkers = exp.channelWorkers;
    axes.apply(cfg);
    return cfg;
}

namespace
{

RunResult
collect(System &sys)
{
    RunResult r;
    r.aggregateIpc = sys.aggregateIpc();
    for (CoreId c = 0; c < sys.config().numCores; ++c)
        r.coreIpc.push_back(sys.coreIpc(c));
    const StatSet &ms = sys.mitigation().stats();
    // AQUA reports its one-way moves instead of swaps.
    r.swaps = ms.get("swaps") + ms.get("quarantine_moves");
    r.unswapSwaps = ms.get("unswap_swaps");
    r.placeBacks = ms.get("place_backs") + ms.get("lazy_restores");
    r.rowsPinned = ms.get("rows_pinned");
    r.latentActivations =
        sys.controller().stats().get("latent_activations");
    r.maxRowActivations = sys.maxEpochActivations();
    r.readLatency = sys.controller().readLatency();
    r.p50Lat = r.readLatency.quantilePermille(500);
    r.p99Lat = r.readLatency.quantilePermille(990);
    r.p999Lat = r.readLatency.quantilePermille(999);
    r.latSamples = r.readLatency.total();
    return r;
}

} // namespace

RunResult
runWorkloadMix(const SystemConfig &sysCfg,
               const std::vector<WorkloadProfile> &perCore,
               const ExperimentConfig &exp)
{
    SRS_ASSERT(perCore.size() == sysCfg.numCores,
               "need one profile per core");
    System sys(sysCfg);
    for (CoreId c = 0; c < sysCfg.numCores; ++c) {
        sys.setTrace(c, std::make_unique<SyntheticTrace>(
                            perCore[c], sys.controller().addressMap(),
                            c, exp.seed));
    }
    sys.run(exp.warmup + exp.cycles);
    return collect(sys);
}

RunResult
runWorkloadTrace(const SystemConfig &sysCfg,
                 const std::vector<SharedTraceRecords> &perCore,
                 const ExperimentConfig &exp)
{
    SRS_ASSERT(perCore.size() == 1
                   || perCore.size() == sysCfg.numCores,
               "need one trace per core, or a single shared trace");
    System sys(sysCfg);
    for (CoreId c = 0; c < sysCfg.numCores; ++c) {
        const SharedTraceRecords &records =
            perCore.size() == 1 ? perCore[0] : perCore[c];
        sys.setTrace(c, std::make_unique<FileTrace>(records,
                                                    /*loop=*/true));
    }
    sys.run(exp.warmup + exp.cycles);
    return collect(sys);
}

RunResult
runWorkloadGenerator(const SystemConfig &sysCfg,
                     const GeneratorSpec &gen,
                     const ExperimentConfig &exp)
{
    System sys(sysCfg);
    for (CoreId c = 0; c < sysCfg.numCores; ++c) {
        sys.setTrace(c, std::make_unique<GeneratorTrace>(
                            gen, sys.controller().addressMap(), c,
                            exp.seed));
    }
    sys.run(exp.warmup + exp.cycles);
    return collect(sys);
}

RunResult
runWorkload(const SystemConfig &sysCfg, const WorkloadProfile &profile,
            const ExperimentConfig &exp)
{
    // Rate mode: every core runs the same benchmark (Section VI).
    const std::vector<WorkloadProfile> perCore(sysCfg.numCores, profile);
    return runWorkloadMix(sysCfg, perCore, exp);
}

double
normalizedPerf(const ExperimentConfig &exp, MitigationKind kind,
               std::uint32_t trh, std::uint32_t swapRate,
               const WorkloadProfile &profile, TrackerKind tracker)
{
    const SystemConfig base =
        makeSystemConfig(exp, MitigationKind::None, trh, swapRate,
                         tracker);
    const SystemConfig prot =
        makeSystemConfig(exp, kind, trh, swapRate, tracker);
    const RunResult baseRes = runWorkload(base, profile, exp);
    const RunResult protRes = runWorkload(prot, profile, exp);
    if (baseRes.aggregateIpc <= 0.0)
        return 1.0;
    return protRes.aggregateIpc / baseRes.aggregateIpc;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (const double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace srs
