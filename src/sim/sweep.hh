/**
 * @file
 * Multi-threaded experiment-sweep engine.
 *
 * The performance figures all share one shape: run a grid of
 * (workload x mitigation x T_RH x swap-rate) experiment cells, each
 * an independent single-threaded simulation, and normalize against
 * the unprotected baseline of the same workload.  SweepRunner fans
 * that grid across a ThreadPool:
 *
 *  - one baseline run per distinct workload (phase 1), then one run
 *    per cell (phase 2), all pool-parallel;
 *  - deterministic per-cell RNG seeding: the trace seed is a pure
 *    function of (base seed, workload name), so a cell's result does
 *    not depend on thread count or completion order, and protected
 *    runs replay the exact trace of their baseline;
 *  - results land in pre-assigned slots and are reported in cell
 *    order, so CSV output is byte-identical for threads=1 and
 *    threads=N.
 */

#ifndef SRS_SIM_SWEEP_HH
#define SRS_SIM_SWEEP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace srs
{

/** One experiment point of a sweep. */
struct SweepCell
{
    std::string workload;
    MitigationKind mitigation = MitigationKind::ScaleSrs;
    std::uint32_t trh = 1200;
    std::uint32_t swapRate = 3;
    TrackerKind tracker = TrackerKind::MisraGries;
};

/**
 * Cross-product sweep description.  expand() enumerates cells in
 * row-major order: workloads outermost, then mitigations, then
 * trhs, then swapRates innermost.
 */
struct SweepGrid
{
    std::vector<std::string> workloads;
    std::vector<MitigationKind> mitigations;
    std::vector<std::uint32_t> trhs;
    std::vector<std::uint32_t> swapRates;
    TrackerKind tracker = TrackerKind::MisraGries;

    std::vector<SweepCell> expand() const;
};

/** Result of one sweep cell, in input order. */
struct SweepResult
{
    SweepCell cell;
    /** Trace seed actually used (derived, see SweepRunner::cellSeed). */
    std::uint64_t seed = 0;
    RunResult run;
    /** Unprotected IPC of the same workload and seed. */
    double baselineIpc = 0.0;
    /** run.aggregateIpc / baselineIpc (1.0 when baseline is zero). */
    double normalized = 1.0;
};

/** Thread-pool-backed sweep executor. */
class SweepRunner
{
  public:
    /**
     * @param exp      shared experiment knobs (cycles, epoch, cores,
     *                 base seed); per-cell seeds are derived from
     *                 exp.seed.
     * @param threads  worker count; 0 picks hardware concurrency.
     */
    SweepRunner(const ExperimentConfig &exp, std::size_t threads);

    /**
     * Run every cell (plus one baseline per distinct workload) and
     * return results in cell order.  fatal()s on unknown workload
     * names before any simulation starts.
     */
    std::vector<SweepResult> run(const std::vector<SweepCell> &cells);

    /** Convenience: expand + run. */
    std::vector<SweepResult> run(const SweepGrid &grid);

    std::size_t threadCount() const;

    /**
     * Trace seed for one cell: splitmix64 over the base seed and an
     * FNV-1a hash of the workload name.  Workload-only on purpose —
     * every mitigation replays the identical trace, keeping
     * normalization an apples-to-apples comparison.
     */
    static std::uint64_t cellSeed(std::uint64_t base,
                                  const std::string &workload);

    /** Write header + one line per result (stable formatting). */
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepResult> &results);

  private:
    ExperimentConfig exp_;
    std::size_t threads_;
};

/** Parse a mitigation name (same spellings the CLI accepts). */
MitigationKind mitigationKindFromName(const std::string &name);

/** Parse a tracker name; fatal() when unknown. */
TrackerKind trackerKindFromName(const std::string &name);

/** @return printable tracker name (round-trips with FromName). */
const char *trackerKindName(TrackerKind kind);

} // namespace srs

#endif // SRS_SIM_SWEEP_HH
