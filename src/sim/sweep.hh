/**
 * @file
 * Multi-threaded experiment-sweep engine.
 *
 * The multi-configuration experiments all share one shape: run a
 * grid of independent single-threaded simulation cells and normalize
 * each against the unprotected baseline of the same workload, system
 * axes and trace seed.  SweepRunner fans that grid across a
 * ThreadPool:
 *
 *  - one baseline run per distinct (workload, system-axes) pair
 *    (phase 1), then one run per cell (phase 2), all pool-parallel;
 *  - deterministic per-cell RNG seeding: the trace seed is a pure
 *    function of (base seed, workload label), so a cell's result
 *    does not depend on thread count or completion order, and
 *    protected runs replay the exact trace of their baseline;
 *  - results land in pre-assigned slots and are reported in cell
 *    order, so CSV output is byte-identical for threads=1 and
 *    threads=N;
 *  - a cell's WorkloadSpec selects what drives the cores: a
 *    synthetic rate-mode profile, a per-core MIX profile list
 *    (runWorkloadMix), recorded USIMM trace file(s)
 *    (runWorkloadTrace) — each distinct trace file is parsed once
 *    and shared across every cell and core that replays it — or a
 *    generator-backed Zipf/hotspot/blend spec
 *    (runWorkloadGenerator);
 *  - a cell's SystemAxes select which machine variant it runs on
 *    (page policy, DRAM timing overrides), applied to the protected
 *    run and its baseline alike;
 *  - completed cells are appended (one flushed line each) to an
 *    optional sidecar journal — opened with a schema/grid-identity
 *    header comment (journalHeader()) so supervisors can match a
 *    journal to its producer — and a previous journal or truncated
 *    CSV can be fed back via setResume() to skip already-computed
 *    cells — the resumed output is byte-identical to an
 *    uninterrupted run (docs/sweep-format.md has the file formats,
 *    schema v6 — the `p50_lat,p99_lat,p999_lat` tail-latency
 *    columns landed with the generator workloads, `lat_samples`
 *    with the DRAM-organization axis, and the
 *    `iterations,censored,p_break,ci_lo,ci_hi` Monte-Carlo
 *    confidence columns with the security sweep; performance cells
 *    write zeros there, security cells (security/security_sweep.hh)
 *    fill them in).
 */

#ifndef SRS_SIM_SWEEP_HH
#define SRS_SIM_SWEEP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/workload_spec.hh"

namespace srs
{

/**
 * One experiment point of a sweep: which workload (WorkloadSpec),
 * on which machine variant (SystemAxes), under which defense
 * configuration.  Cells with the same workload label must carry the
 * same spec — the label keys the cell's trace seed and its shared
 * baseline.
 */
struct SweepCell
{
    WorkloadSpec workload;
    SystemAxes axes;
    MitigationKind mitigation = MitigationKind::ScaleSrs;
    std::uint32_t trh = 1200;
    std::uint32_t swapRate = 3;
    TrackerKind tracker = TrackerKind::MisraGries;
};

/**
 * Build an unconfigured MIX cell for MIX point @p index: label
 * "mix<index>" plus the deterministic per-core profile draw of
 * mixWorkload(index, cores).  Caller fills mitigation/trh/rate.
 */
SweepCell mixSweepCell(std::uint32_t index, std::uint32_t cores);

/**
 * Cross-product sweep description.  expand() enumerates cells in
 * row-major order: workloads outermost, then the system axes (page
 * policies outermost, then DRAM presets, then DRAM organizations,
 * then the timing overrides in the order tRC, tRCD, tRP, tREFI,
 * tRFC), then mitigations, then trhs, then swapRates innermost.  When mixCount > 0, MIX points
 * mix<mixBase>..mix<mixBase+mixCount-1> follow the named workloads
 * as additional outermost entries, crossed with the same inner axes.
 */
struct SweepGrid
{
    std::vector<WorkloadSpec> workloads;
    /** Page-policy axis (outermost of the system axes). */
    std::vector<PagePolicy> pagePolicies = {PagePolicy::Closed};
    /** DRAM-generation preset axis (ddr4 = Table III defaults). */
    std::vector<DramPreset> presets = {DramPreset::Ddr4};
    /**
     * DRAM-organization axis: `CxRxB` spellings (channels x ranks x
     * banks-per-rank, dramOrgFromName bounds).  "2x1x16" is the
     * default Table III geometry and is canonicalized away in the
     * axes field, exactly like the ddr4 preset.
     */
    std::vector<std::string> orgs = {"2x1x16"};
    /** Timing-override axes in ns; 0 = the preset's default. */
    std::vector<std::uint32_t> tRcOverrides = {0};
    std::vector<std::uint32_t> tRcdOverrides = {0};
    std::vector<std::uint32_t> tRpOverrides = {0};
    std::vector<std::uint32_t> tRefiOverrides = {0};
    std::vector<std::uint32_t> tRfcOverrides = {0};
    std::vector<MitigationKind> mitigations;
    std::vector<std::uint32_t> trhs;
    std::vector<std::uint32_t> swapRates;
    TrackerKind tracker = TrackerKind::MisraGries;
    /** Number of MIX points appended after the named workloads. */
    std::uint32_t mixCount = 0;
    /**
     * First MIX point index.  A shard covering the middle of a larger
     * grid's MIX range names its exact points (e.g. mix3..mix5 via
     * mixBase=3, mixCount=3); a MIX label's profile draw and trace
     * seed depend only on its index, so mix3 means the same cell in
     * every shard and in the full grid.
     */
    std::uint32_t mixBase = 0;
    /** Cores per MIX point; must match ExperimentConfig::numCores. */
    std::uint32_t mixCores = 8;

    /**
     * The system-axes axis: pagePolicies x presets x orgs x the
     * five timing-override lists, crossed in declaration order
     * (policy outermost, tRFC innermost).  Every combination is
     * validated (SystemAxes::validate), so an inconsistent grid is
     * fatal() before any simulation starts.
     */
    std::vector<SystemAxes> axes() const;
    /** Cells per outer entry: axes x mitigations x trhs x swapRates. */
    std::size_t innerCells() const;
    /** Outer-axis length: named workloads plus MIX points. */
    std::size_t outerCount() const;

    std::vector<SweepCell> expand() const;
};

/** Result of one sweep cell, in input order. */
struct SweepResult
{
    SweepCell cell;
    /** Trace seed actually used (derived, see SweepRunner::cellSeed). */
    std::uint64_t seed = 0;
    RunResult run;
    /** Unprotected IPC of the same workload, axes and seed. */
    double baselineIpc = 0.0;
    /** run.aggregateIpc / baselineIpc (1.0 when baseline is zero). */
    double normalized = 1.0;
    /**
     * Verbatim CSV row recovered from a resume file; when non-empty
     * the cell was not re-simulated and writeCsv() re-emits this
     * exact line (guaranteeing byte-identity).  The numeric fields
     * above are parsed back from it best-effort.
     */
    std::string resumedRow;
};

/** Thread-pool-backed sweep executor. */
class SweepRunner
{
  public:
    /**
     * @param exp      shared experiment knobs (cycles, epoch, cores,
     *                 base seed); per-cell seeds are derived from
     *                 exp.seed.
     * @param threads  worker count; 0 picks hardware concurrency.
     */
    SweepRunner(const ExperimentConfig &exp, std::size_t threads);

    /**
     * Append each completed cell's CSV row to @p path, one flushed
     * line per cell in completion order.  The file is truncated at
     * the start of run() (resumed cells are re-recorded first, so
     * the journal is always a self-contained checkpoint).  An empty
     * path disables journaling.
     */
    void setJournal(const std::string &path);

    /**
     * Before running, load completed rows from @p path — a sweep
     * CSV (possibly truncated mid-file) or a journal — and skip
     * re-simulating those cells.  Rows are validated against the
     * grid (workload spec, mitigation, tracker, trh, rate, axes,
     * seed); a mismatch is fatal(), and a schema-v1, -v2, -v3, -v4
     * or -v5 file (15-column rows, a header naming the v2 `policy`
     * column, 16-column rows/headers without the v4
     * latency-percentile columns, 19-column rows/headers without
     * the v5 `lat_samples` column, or 20-column rows/headers
     * without the v6 Monte-Carlo confidence columns) is rejected
     * with a versioned error.  Incomplete
     * trailing lines are ignored and recomputed.  An empty path
     * disables resuming.
     */
    void setResume(const std::string &path);

    /**
     * Run every cell (plus one baseline per distinct
     * (workload, axes) pair that still has pending cells) and
     * return results in cell order.  fatal()s on unknown workload
     * names, unreadable trace files, inconsistent labels, or a
     * mismatched resume file before any simulation starts.
     */
    std::vector<SweepResult> run(const std::vector<SweepCell> &cells);

    /** Convenience: expand + run. */
    std::vector<SweepResult> run(const SweepGrid &grid);

    std::size_t threadCount() const;

    /**
     * Trace seed for one cell: splitmix64 over the base seed and an
     * FNV-1a hash of the workload label.  Keyed by workload only on
     * purpose — every mitigation and every system-axes variant
     * replays the identical trace, keeping normalization an
     * apples-to-apples comparison.
     */
    static std::uint64_t cellSeed(std::uint64_t base,
                                  const std::string &workloadLabel);

    /** Write header + one line per result (stable formatting). */
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepResult> &results);

    /**
     * One CSV data row (no trailing newline) for result @p r at cell
     * index @p index — the exact bytes writeCsv() and the journal
     * emit.
     */
    static std::string formatRow(std::size_t index,
                                 const SweepResult &r);

    /**
     * The first eight columns of a row ("index,workload_spec,
     * mitigation,tracker,trh,rate,axes,seed," — comma-terminated):
     * the cell identity a resume row or a shard row must reproduce
     * byte for byte.  Resume validation and the shard-merge tool
     * (sim/orchestrator.hh) both compare against these exact bytes.
     */
    static std::string identityPrefix(std::size_t index,
                                      const SweepCell &cell,
                                      std::uint64_t seed);

    /** The CSV header line writeCsv() emits (no trailing newline). */
    static const char *csvHeader();

    /** Total fields of one schema-v6 CSV data row. */
    static constexpr std::size_t kRowColumns = 25;

    /** Journal/CSV schema version this build writes and reads. */
    static constexpr std::uint64_t kJournalSchema = 6;

    /**
     * FNV-1a digest over every cell's identity prefix — a compact
     * fingerprint of "this exact grid under this base seed".  Any
     * change that would alter any row's identity bytes (workload
     * list, axes, mitigation/trh/rate lists, base seed, cell order)
     * changes the digest, and a shard slice digests differently from
     * the full grid (the prefix embeds the slice-local index), so a
     * journal can be matched to its exact producer by name.
     */
    static std::uint64_t gridDigest(const std::vector<SweepCell> &cells,
                                    std::uint64_t baseSeed);

    /** Parsed journal header comment (see journalHeader()). */
    struct JournalHeader
    {
        std::uint64_t schema = 0;
        std::uint64_t cells = 0;
        std::uint64_t digest = 0;
        std::uint64_t seed = 0;
    };

    /**
     * The comment line a checkpoint journal now starts with:
     * `# srs_sim sweep journal schema=6 cells=<N> grid=0x<digest>
     * seed=0x<seed>` (no trailing newline; digest = gridDigest()).
     * Resume and the fleet monitor reject a journal whose header
     * names a different schema or grid; headerless journals stay
     * accepted as long as their rows carry the current schema
     * (docs/sweep-format.md).
     */
    static std::string
    journalHeader(const std::vector<SweepCell> &cells,
                  std::uint64_t baseSeed);

    /**
     * Parse @p line as a journal header comment.  @return false when
     * the line is not tagged as one (any other comment or data
     * line); fatal() when it carries the tag but is malformed.
     */
    static bool parseJournalHeader(const std::string &line,
                                   JournalHeader &header);

  private:
    void loadResume(const std::vector<SweepCell> &cells,
                    std::vector<SweepResult> &results,
                    std::vector<char> &done) const;

    ExperimentConfig exp_;
    std::size_t threads_;
    std::string journalPath_;
    std::string resumePath_;
};

/**
 * Split a comma-separated list ("a,b,c") into its non-empty items;
 * an empty string yields no items.  The list syntax shared by the
 * CLI flags and the shard manifest.
 */
std::vector<std::string> splitList(const std::string &value);

/**
 * Parse a comma-separated list of 32-bit unsigned integers;
 * fatal() on malformed, negative, or out-of-range items, naming
 * @p what (e.g. "--trh" or "manifest: trh") in the message.
 */
std::vector<std::uint32_t> splitUint32List(const std::string &value,
                                           const std::string &what);

/** Join items with commas (inverse of splitList). */
std::string joinList(const std::vector<std::string> &items);

/** Join integers with commas (inverse of splitUint32List). */
std::string joinUint32List(const std::vector<std::uint32_t> &items);

/** Canonical spellings of @p specs (joinList of labels). */
std::string joinSpecList(const std::vector<WorkloadSpec> &specs);

/**
 * Parse a comma-separated list of workload-spec spellings (see
 * WorkloadSpec::parse); an empty string yields no specs.
 */
std::vector<WorkloadSpec> splitSpecList(const std::string &value,
                                        std::uint32_t cores);

/** Parse a mitigation name (same spellings the CLI accepts). */
MitigationKind mitigationKindFromName(const std::string &name);

/** Parse a tracker name; fatal() when unknown. */
TrackerKind trackerKindFromName(const std::string &name);

/** @return printable tracker name (round-trips with FromName). */
const char *trackerKindName(TrackerKind kind);

} // namespace srs

#endif // SRS_SIM_SWEEP_HH
