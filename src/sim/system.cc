#include "sim/system.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace srs
{

const char *
mitigationKindName(MitigationKind kind)
{
    switch (kind) {
      case MitigationKind::None:        return "baseline";
      case MitigationKind::Rrs:         return "rrs";
      case MitigationKind::RrsNoUnswap: return "rrs-no-unswap";
      case MitigationKind::Srs:         return "srs";
      case MitigationKind::ScaleSrs:    return "scale-srs";
      case MitigationKind::BlockHammer: return "blockhammer";
      case MitigationKind::Aqua:        return "aqua";
    }
    return "?";
}

Cycle
SystemConfig::effectiveEpochLen() const
{
    if (epochLen != 0)
        return epochLen;
    return nsToCycles(kRefreshIntervalSec * 1e9, timingNs.cpuFreqGHz);
}

std::uint64_t
SystemConfig::actMaxPerEpoch() const
{
    const double epochSec =
        static_cast<double>(effectiveEpochLen()) /
        (timingNs.cpuFreqGHz * 1e9);
    // Refresh steals tRFC out of every tREFI window, so the share
    // follows the cell's effective timings: a DDR5 preset (or a
    // tREFI/tRFC override) resizes the activation budget — and the
    // trackers derived from it — exactly as it resizes the real
    // controller's refresh overhead.
    const double refreshShare =
        epochSec * (timingNs.tRFC / timingNs.tREFI);
    return static_cast<std::uint64_t>(
        (epochSec - refreshShare) / (timingNs.tRC * 1e-9));
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), epochLen_(cfg.effectiveEpochLen()),
      timing_(DramTiming::fromNs(cfg.timingNs)),
      nextEpochAt_(epochLen_)
{
    cfg_.org.validate();
    MemCtrlConfig mcfg = cfg_.memCtrl;
    mcfg.channelWorkers = cfg_.channelWorkers;
    ctrl_ = std::make_unique<MemoryController>(cfg_.org, timing_, mcfg);
    llc_ = std::make_unique<Llc>(cfg_.llc, cfg_.org.rowBytes,
                                 cfg_.pinCapacity);

    const std::uint32_t banksPerChannel =
        cfg_.org.ranksPerChannel * cfg_.org.banksPerRank;

    switch (cfg_.tracker) {
      case TrackerKind::MisraGries: {
        MisraGriesConfig t;
        t.ts = cfg_.mit.ts();
        t.actMaxPerEpoch = cfg_.actMaxPerEpoch();
        t.channels = cfg_.org.channels;
        t.banksPerChannel = banksPerChannel;
        tracker_ = std::make_unique<MisraGriesTracker>(t);
        break;
      }
      case TrackerKind::Hydra: {
        HydraConfig t;
        t.ts = cfg_.mit.ts();
        t.channels = cfg_.org.channels;
        t.banksPerChannel = banksPerChannel;
        t.rowsPerBank = cfg_.org.rowsPerBank;
        t.rctAccessCycles = timing_.tRC + timing_.tCAS + timing_.tBL;
        auto hydra = std::make_unique<HydraTracker>(t);
        hydra->setTrafficHook(
            [this](std::uint32_t ch, std::uint32_t bank,
                   MigrationJob job) {
                ctrl_->scheduleMigration(ch, bank, std::move(job));
            });
        tracker_ = std::move(hydra);
        break;
      }
      case TrackerKind::Cbt: {
        CbtConfig t;
        t.ts = cfg_.mit.ts();
        t.rowsPerBank = cfg_.org.rowsPerBank;
        t.channels = cfg_.org.channels;
        t.banksPerChannel = banksPerChannel;
        tracker_ = std::make_unique<CbtTracker>(t);
        break;
      }
      case TrackerKind::TwiCe: {
        TwiceConfig t;
        t.ts = cfg_.mit.ts();
        t.actMaxPerEpoch = cfg_.actMaxPerEpoch();
        t.channels = cfg_.org.channels;
        t.banksPerChannel = banksPerChannel;
        tracker_ = std::make_unique<TwiceTracker>(t);
        break;
      }
    }

    switch (cfg_.mitigation) {
      case MitigationKind::None:
        mitigation_ = std::make_unique<NoMitigation>(*ctrl_, *tracker_,
                                                     cfg_.mit);
        break;
      case MitigationKind::Rrs:
        mitigation_ = std::make_unique<Rrs>(*ctrl_, *tracker_, cfg_.mit,
                                            RrsConfig{true});
        break;
      case MitigationKind::RrsNoUnswap:
        mitigation_ = std::make_unique<Rrs>(*ctrl_, *tracker_, cfg_.mit,
                                            RrsConfig{false});
        break;
      case MitigationKind::Srs:
        mitigation_ = std::make_unique<Srs>(*ctrl_, *tracker_, cfg_.mit,
                                            cfg_.srsCfg);
        break;
      case MitigationKind::ScaleSrs: {
        auto scale = std::make_unique<ScaleSrs>(
            *ctrl_, *tracker_, cfg_.mit, cfg_.srsCfg, cfg_.scaleCfg);
        scale->setPinHook([this](std::uint32_t ch, std::uint32_t bank,
                                 RowId logical) {
            const std::uint32_t rank = bank / cfg_.org.banksPerRank;
            const std::uint32_t bankInRank =
                bank % cfg_.org.banksPerRank;
            const Addr base = ctrl_->addressMap().rowBaseAddr(
                ch, rank, bankInRank, logical);
            // Park displaced dirty lines; the run loop posts them
            // (the hook fires mid-queue-iteration, where enqueuing
            // directly could invalidate the controller's iterators).
            return llc_->pinRow(base, &pendingPinWritebacks_);
        });
        mitigation_ = std::move(scale);
        break;
      }
      case MitigationKind::BlockHammer:
        mitigation_ = std::make_unique<BlockHammer>(
            *ctrl_, *tracker_, cfg_.mit, cfg_.bhCfg);
        break;
      case MitigationKind::Aqua:
        mitigation_ = std::make_unique<Aqua>(*ctrl_, *tracker_,
                                             cfg_.mit, cfg_.aquaCfg);
        break;
    }

    // The baseline runs without a listener: no remap, no tracking
    // overheads — "a baseline that does not mitigate against RH".
    if (cfg_.mitigation != MitigationKind::None)
        ctrl_->setListener(mitigation_.get());

    ctrl_->setReadCallback(
        [this](const MemRequest &req) { onReadDone(req); });

    traces_.resize(cfg_.numCores);
    maxEpochActsPerBank_.assign(
        static_cast<std::size_t>(cfg_.org.channels) * banksPerChannel,
        0);
}

void
System::setTrace(CoreId core, std::unique_ptr<TraceSource> trace)
{
    SRS_ASSERT(core < cfg_.numCores, "core index out of range");
    traces_[core] = std::move(trace);
}

void
System::onReadDone(const MemRequest &req)
{
    const auto it = outstanding_.find(req.id);
    if (it == outstanding_.end())
        return; // request issued by a non-core agent
    const auto [core, token] = it->second;
    outstanding_.erase(it);
    cores_[core]->complete(token, now_);
}

CoreMemoryInterface::Outcome
System::access(Addr addr, bool isWrite, CoreId core, std::uint64_t token,
               Cycle now, Cycle &latencyOut)
{
    // The pin-buffer fronts everything (Section V-C): accesses to
    // pinned rows never reach DRAM.
    if (llc_->rowPinned(addr)) {
        stats_.inc("pinned_absorbed");
        latencyOut = cfg_.llcHitLatency;
        // Record the hit in the LLC stats for visibility.  The
        // pin-buffer short-circuits the tag store, so this access is
        // guaranteed non-mutating: it can never evict a dirty victim.
        const LlcResult res = llc_->access(addr, isWrite);
        SRS_ASSERT(res.pinnedHit && !res.writebackNeeded,
                   "pinned-row access must be absorbed by the pin-buffer");
        return Outcome::Hit;
    }

    if (cfg_.modelLlc) {
        // Make sure both the demand access and the dirty victim it
        // would evict can be posted before mutating tags.  The victim
        // can live on a different channel than the miss address, so
        // its capacity is probed at the actual writeback address.
        const Addr wb = llc_->probeWriteback(addr);
        if (!ctrl_->canAccept(addr, isWrite) ||
            (wb != kInvalidAddr && !ctrl_->canAccept(wb, true))) {
            return Outcome::Reject;
        }
        const LlcResult res = llc_->access(addr, isWrite);
        if (res.writebackNeeded) {
            SRS_ASSERT(res.writebackAddr == wb,
                       "victim probe out of sync with access");
            const std::uint64_t id =
                ctrl_->enqueue(res.writebackAddr, true, core, now);
            if (id == std::numeric_limits<std::uint64_t>::max())
                stats_.inc("writebacks_dropped");
        }
        if (res.hit) {
            latencyOut = cfg_.llcHitLatency;
            return Outcome::Hit;
        }
        if (isWrite) {
            // No-allocate store miss: post the write to memory.
            ctrl_->enqueue(addr, true, core, now);
            latencyOut = 1;
            return Outcome::Hit;
        }
        const std::uint64_t id = ctrl_->enqueue(addr, false, core, now);
        outstanding_.emplace(id, std::make_pair(core, token));
        return Outcome::Pending;
    }

    // USIMM mode: the trace is already a post-LLC miss stream.
    if (!ctrl_->canAccept(addr, isWrite))
        return Outcome::Reject;
    if (isWrite) {
        ctrl_->enqueue(addr, true, core, now);
        latencyOut = 1;
        return Outcome::Hit;
    }
    const std::uint64_t id = ctrl_->enqueue(addr, false, core, now);
    outstanding_.emplace(id, std::make_pair(core, token));
    return Outcome::Pending;
}

void
System::onEpochBoundary()
{
    ++epochs_;
    // Sample the Row Hammer ground truth before counters reset.
    const std::uint32_t banksPerChannel =
        cfg_.org.ranksPerChannel * cfg_.org.banksPerRank;
    for (std::uint32_t ch = 0; ch < cfg_.org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            const std::uint64_t acts =
                ctrl_->bankAt(ch, b).maxActivations();
            auto &cell = maxEpochActsPerBank_[
                static_cast<std::size_t>(ch) * banksPerChannel + b];
            cell = std::max(cell, acts);
            maxEpochActs_ = std::max(maxEpochActs_, acts);
        }
    }
    ctrl_->resetEpochCounters();
    mitigation_->onEpochEnd(now_, epochLen_);

    // Pinned rows are evicted at the refresh boundary; restore their
    // contents with posted writes (one per row: the full-row restore
    // is modelled at row granularity).
    for (const Addr rowBase : llc_->unpinAll()) {
        if (ctrl_->canAccept(rowBase, true))
            ctrl_->enqueue(rowBase, true, 0, now_);
        stats_.inc("pinned_rows_restored");
    }
}

void
System::drainPinWritebacks()
{
    while (!pendingPinWritebacks_.empty()) {
        const Addr wb = pendingPinWritebacks_.front();
        if (!ctrl_->canAccept(wb, true))
            break;   // write queue full: retry next cycle, never drop
        ctrl_->enqueue(wb, true, 0, now_);
        stats_.inc("pin_writebacks_posted");
        pendingPinWritebacks_.erase(pendingPinWritebacks_.begin());
    }
}

void
System::run(Cycle cycles)
{
    // Lazily build cores on first run so all traces are attached.
    if (cores_.empty()) {
        for (CoreId c = 0; c < cfg_.numCores; ++c) {
            SRS_ASSERT(traces_[c] != nullptr,
                       "core ", c, " has no trace attached");
            cores_.push_back(std::make_unique<Core>(c, cfg_.core,
                                                    *traces_[c], *this));
        }
    }

    const Cycle end = now_ + cycles;
    if (cfg_.referenceLoop)
        runReference(end);
    else
        runEventDriven(end);
}

void
System::runReference(Cycle end)
{
    // Tick-per-cycle reference: every component, every cycle.  The
    // event-driven loop below must be byte-identical to this one.
    const Cycle busClock = timing_.busClock;
    while (now_ < end) {
        for (auto &core : cores_)
            core->tick(now_);
        if (now_ % busClock == 0) {
            ctrl_->tick(now_);
            mitigation_->tick(now_);
        }
        if (now_ >= nextEpochAt_) {
            onEpochBoundary();
            nextEpochAt_ += epochLen_;
        }
        drainPinWritebacks();
        ++now_;
    }
}

void
System::runEventDriven(Cycle end)
{
    // Event-driven skip-ahead.  Each visited cycle replays exactly
    // what the reference loop would do at that cycle; the loop then
    // jumps now_ to the earliest cycle at which any component's tick
    // is not provably a no-op (cores report wake cycles, the
    // controller and mitigation report their next deadlines on the
    // bus-clock lattice, and epoch boundaries are always visited).
    // Skipping is only ever an optimization: visiting a cycle where
    // every tick is a no-op cannot change state, so correctness
    // reduces to never jumping past a non-no-op cycle.
    const Cycle busClock = timing_.busClock;
    while (now_ < end) {
        for (auto &core : cores_) {
            if (core->nextEventAt() <= now_)
                core->tick(now_);
        }
        if (now_ % busClock == 0) {
            ctrl_->tick(now_);
            mitigation_->tick(now_);
        }
        if (now_ >= nextEpochAt_) {
            onEpochBoundary();
            nextEpochAt_ += epochLen_;
        }
        drainPinWritebacks();

        Cycle next = std::min(end, nextEpochAt_);
        for (const auto &core : cores_) {
            const Cycle wake = core->nextEventAt();
            if (wake != kNoCycle)
                next = std::min(next, wake);
        }
        const Cycle mem = std::min(ctrl_->nextEventAt(now_),
                                   mitigation_->nextEventAt(now_));
        if (mem != kNoCycle) {
            // These only tick on bus edges; round up to the lattice.
            const Cycle onBus =
                ((mem + busClock - 1) / busClock) * busClock;
            next = std::min(next, onBus);
        }
        if (!pendingPinWritebacks_.empty())
            next = std::min(next, now_ + 1);
        now_ = std::max(now_ + 1, next);
    }
}

double
System::aggregateIpc() const
{
    double total = 0.0;
    for (const auto &core : cores_)
        total += core->ipc(now_);
    return total;
}

double
System::coreIpc(CoreId core) const
{
    SRS_ASSERT(core < cores_.size(), "core index out of range");
    return cores_[core]->ipc(now_);
}

std::uint64_t
System::maxEpochActivations() const
{
    std::uint64_t best = maxEpochActs_;
    const std::uint32_t banksPerChannel =
        cfg_.org.ranksPerChannel * cfg_.org.banksPerRank;
    for (std::uint32_t ch = 0; ch < cfg_.org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            best = std::max(best,
                            ctrl_->bankAt(ch, b).maxActivations());
        }
    }
    return best;
}

std::uint64_t
System::maxEpochActivationsAt(std::uint32_t channel,
                              std::uint32_t bank) const
{
    const std::uint32_t banksPerChannel =
        cfg_.org.ranksPerChannel * cfg_.org.banksPerRank;
    // Include the in-progress epoch so short runs see live counts.
    const std::uint64_t live =
        ctrl_->bankAt(channel, bank).maxActivations();
    return std::max(live, maxEpochActsPerBank_[
        static_cast<std::size_t>(channel) * banksPerChannel + bank]);
}

} // namespace srs
