/**
 * @file
 * First-class experiment-identity types shared by the sweep engine,
 * the orchestrator, and the CLI:
 *
 *  - WorkloadSpec names *what* a sweep cell runs — a synthetic
 *    rate-mode profile, a per-core MIX profile list, recorded USIMM
 *    trace file(s), or a generator-backed spec (Zipf / hotspot /
 *    blend-with-attack, trace/generators.hh) — behind one canonical
 *    label that keys the cell's trace seed and baseline exactly as
 *    the plain workload name used to;
 *  - SystemAxes names *which machine variant* it runs on — the
 *    page-management policy, a DRAM-generation timing preset
 *    (ddr4/ddr5), the DRAM organization (`org=CxRxB`: channels x
 *    ranks-per-channel x banks-per-rank), and per-knob nanosecond
 *    timing overrides (tRC, tRCD, tRP, tREFI, tRFC) — as a
 *    sweepable axis applied uniformly to the protected run and its
 *    unprotected baseline.
 *
 * Both types have a canonical, comma-free text spelling that appears
 * verbatim in the sweep CSV identity columns (`workload_spec`,
 * `axes`) and in the shard manifest, so resume validation and the
 * shard merge can compare identities byte for byte
 * (docs/sweep-format.md specs the formats, schema v6).
 */

#ifndef SRS_SIM_WORKLOAD_SPEC_HH
#define SRS_SIM_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/params.hh"
#include "trace/generators.hh"

namespace srs
{

struct SystemConfig;

/** Which flavour of input drives a sweep cell's cores. */
enum class WorkloadKind
{
    /** One synthetic profile on every core (rate mode). */
    Synthetic,
    /** One synthetic profile per core (MIX workloads). */
    Mix,
    /** Recorded USIMM trace file(s), looped in rate mode. */
    TraceFile,
    /** Generator-backed spec (Zipf / hotspot / blend-with-attack). */
    Generator,
};

/**
 * Identity of one workload: what runs on the cores, plus the
 * canonical label that keys per-cell seeding and baseline sharing.
 *
 * The label is also the spec's text spelling (CSV `workload_spec`
 * column, manifest `workloads=` items, CLI `--workloads` items):
 *
 *  - Synthetic: the profile name (`gcc`);
 *  - Mix:       the MIX label (`mix0`); the per-core profile list is
 *               a pure function of the MIX index, so the label alone
 *               reproduces the spec;
 *  - TraceFile: `trace:<path>` (every core replays the file) or
 *               `trace:<p0>;<p1>;…` (one path per core);
 *  - Generator: the generator's canonical spelling
 *               (`zipf:4096@s=0.99`, `hotspot:…`, `blend:…+attack@…`
 *               — trace/generators.hh has the grammar).
 *
 * Two cells with the same label must carry the same spec; the sweep
 * runner rejects a label reused with different contents.
 */
struct WorkloadSpec
{
    WorkloadKind kind = WorkloadKind::Synthetic;
    /** Profile name (Synthetic) or MIX label (Mix). */
    std::string name;
    /** Per-core profile names (Mix only). */
    std::vector<std::string> mixProfiles;
    /** Trace file path(s): one for all cores, or one per core. */
    std::vector<std::string> tracePaths;
    /** Generator identity (Generator only). */
    GeneratorSpec generator;

    bool operator==(const WorkloadSpec &) const = default;

    /**
     * Canonical label: keys the cell's trace seed and its shared
     * baseline, and is the spec's verbatim CSV/manifest spelling.
     */
    std::string label() const;

    /** Rate-mode spec for one named synthetic profile. */
    static WorkloadSpec synthetic(const std::string &profileName);

    /**
     * MIX point @p index: label "mix<index>" plus the deterministic
     * per-core profile draw of mixWorkload(index, cores).
     */
    static WorkloadSpec mix(std::uint32_t index, std::uint32_t cores);

    /**
     * Trace-file spec; @p paths holds one path (all cores) or one
     * per core.  fatal() on an empty list or a path that cannot be
     * spelled in a CSV/manifest (embedded comma, whitespace or '#').
     */
    static WorkloadSpec traceFiles(std::vector<std::string> paths);

    /** Generator-backed spec; the label is @p gen's canonical
     *  spelling (GeneratorSpec::label). */
    static WorkloadSpec generatorSpec(const GeneratorSpec &gen);

    /**
     * Parse one spelling (a `--workloads` item, a manifest
     * `workloads=` item, or a CSV `workload_spec` field):
     * `trace:<path>[;<path>…]` yields a TraceFile spec (fatal()
     * unless the list has exactly one or @p cores entries);
     * `zipf:…`, `hotspot:…` and `blend:…` yield a Generator spec
     * (GeneratorSpec::parse, fatal() listing the generator grammar
     * on malformed input); anything else is a Synthetic profile
     * name, validated later against the profile table by the sweep
     * runner.
     */
    static WorkloadSpec parse(const std::string &spelling,
                              std::uint32_t cores);
};

/**
 * System-configuration overlay swept as its own axis: the page
 * policy, a DRAM-generation timing preset (DDR4 Table III defaults
 * or the DDR5-4800-class variant), the DRAM organization (channels,
 * ranks per channel, banks per rank), and per-knob nanosecond
 * timing overrides layered on top of the preset.  Applied by
 * makeSystemConfig() to protected and baseline runs alike, so
 * normalization always compares like with like.
 */
struct SystemAxes
{
    PagePolicy pagePolicy = PagePolicy::Closed;
    /** Timing preset the overrides below are layered onto. */
    DramPreset preset = DramPreset::Ddr4;
    /**
     * DRAM organization (the `@org=CxRxB` suffix): channels, ranks
     * per channel and banks per rank, each a power of two within
     * channels 1..8, ranks 1..4, banks-per-rank 4..64.  The
     * defaults mirror DramOrg{} (2x1x16, the Table III geometry),
     * and — like `@ddr4` — the default triple is canonicalized away
     * by field().  Rows-per-bank and row/line bytes are not swept.
     */
    std::uint32_t orgChannels = 2;
    std::uint32_t orgRanks = 1;
    std::uint32_t orgBanks = 16;
    /**
     * Per-knob timing overrides in nanoseconds; 0 keeps the preset's
     * value.  tRAS is re-derived as tRC - tRP so the bank state
     * machine stays self-consistent, and the effective combination
     * must satisfy tRC >= tRCD + tRP (validate()).
     */
    std::uint32_t tRcNs = 0;
    std::uint32_t tRcdNs = 0;
    std::uint32_t tRpNs = 0;
    std::uint32_t tRefiNs = 0;
    std::uint32_t tRfcNs = 0;

    bool operator==(const SystemAxes &) const = default;

    /**
     * Canonical text field (CSV `axes` column, manifest spelling):
     * the policy name, then `@ddr5` when the preset is not DDR4,
     * then `@org=CxRxB` when the organization is not the default
     * 2x1x16, then one `@<knob>=<ns>` suffix per overridden knob in
     * the fixed order trc, trcd, trp, trefi, trfc — `closed`,
     * `open`, `open@trc=48`, `open@ddr5@org=2x2x32@trefi=3900`.
     */
    std::string field() const;

    /**
     * Inverse of field(): parse one axes spelling
     * (`<policy>[@ddr4|@ddr5][@org=CxRxB][@trc=NS][@trcd=NS]
     * [@trp=NS][@trefi=NS][@trfc=NS]`, suffixes in that order, each
     * at most once).  fatal() names the offending input verbatim and
     * lists every accepted spelling; the parsed axes are
     * validate()d.
     */
    static SystemAxes parse(const std::string &text);

    /**
     * Effective timing values — the preset's defaults with this
     * axes' overrides applied — as raw nanosecond parameters.
     */
    DramTimingNs effectiveTimingNs() const;

    /**
     * fatal() when the effective timings are inconsistent (tRC <
     * tRCD + tRP, which would make the derived tRAS unable to cover
     * the row-open window) or the organization triple is out of
     * range; the message names field() and the offending values.
     */
    void validate() const;

    /** Overlay these axes onto a SystemConfig (validate()s first). */
    void apply(SystemConfig &cfg) const;
};

/** @return printable page-policy name ("closed" / "open"). */
const char *pagePolicyName(PagePolicy policy);

/** Parse a page-policy name; fatal() listing accepted spellings. */
PagePolicy pagePolicyFromName(const std::string &name);

/** @return printable DRAM-preset name ("ddr4" / "ddr5"). */
const char *dramPresetName(DramPreset preset);

/** Parse a DRAM-preset name; fatal() listing accepted spellings. */
DramPreset dramPresetFromName(const std::string &name);

/**
 * Parse a `CxRxB` DRAM-organization spelling (a `--org` grid item or
 * manifest `orgs=` item) into @p axes' org fields; fatal() listing
 * the accepted shape and bounds on malformed or out-of-range input.
 */
void dramOrgFromName(const std::string &name, SystemAxes &axes);

} // namespace srs

#endif // SRS_SIM_WORKLOAD_SPEC_HH
