#include "sim/sweep.hh"

#include <cstdio>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "trace/profiles.hh"

namespace srs
{

std::vector<SweepCell>
SweepGrid::expand() const
{
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * mitigations.size() * trhs.size()
                  * swapRates.size());
    for (const std::string &w : workloads) {
        for (const MitigationKind m : mitigations) {
            for (const std::uint32_t trh : trhs) {
                for (const std::uint32_t rate : swapRates) {
                    SweepCell cell;
                    cell.workload = w;
                    cell.mitigation = m;
                    cell.trh = trh;
                    cell.swapRate = rate;
                    cell.tracker = tracker;
                    cells.push_back(std::move(cell));
                }
            }
        }
    }
    return cells;
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace

std::uint64_t
SweepRunner::cellSeed(std::uint64_t base, const std::string &workload)
{
    return splitmix64(base ^ splitmix64(fnv1a(workload)));
}

SweepRunner::SweepRunner(const ExperimentConfig &exp, std::size_t threads)
    : exp_(exp), threads_(ThreadPool::resolveThreads(threads))
{
}

std::size_t
SweepRunner::threadCount() const
{
    return threads_;
}

std::vector<SweepResult>
SweepRunner::run(const SweepGrid &grid)
{
    return run(grid.expand());
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    // Validate every workload before any simulation starts, so a typo
    // is a clean fatal() in the calling thread, not a worker abort.
    std::vector<std::string> workloads;
    std::unordered_map<std::string, std::size_t> workloadIndex;
    for (const SweepCell &cell : cells) {
        if (workloadIndex.count(cell.workload))
            continue;
        profileByName(cell.workload); // fatal() on unknown names
        workloadIndex.emplace(cell.workload, workloads.size());
        workloads.push_back(cell.workload);
    }

    ThreadPool pool(threads_);

    // A FatalError escaping a worker would std::terminate the whole
    // process, so jobs trap it; the first message (in cell order) is
    // re-raised on the calling thread after the phase completes.
    std::mutex errorMutex;
    std::size_t errorAt = cells.size() + workloads.size();
    std::string errorMsg;
    const auto record = [&](std::size_t at, const std::string &msg) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (at < errorAt) {
            errorAt = at;
            errorMsg = msg;
        }
    };
    const auto rethrow = [&] {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!errorMsg.empty())
            throw FatalError(errorMsg);
    };

    // Phase 1: one unprotected baseline per distinct workload.  The
    // baseline ignores trh/rate (no mitigation is wired), so any
    // values work; mirror bench_util's BaselineCache choice.
    std::vector<RunResult> baseline(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        pool.submit([this, &workloads, &baseline, &record, i] {
            try {
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, workloads[i]);
                const SystemConfig cfg = makeSystemConfig(
                    exp, MitigationKind::None, 4800, 6);
                baseline[i] = runWorkload(
                    cfg, profileByName(workloads[i]), exp);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();

    // Phase 2: every cell, each writing its pre-assigned slot.
    // Unprotected cells replay the phase-1 baseline bit-for-bit
    // (same seed, same config), so reuse it instead of re-running.
    std::vector<SweepResult> results(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].mitigation == MitigationKind::None)
            continue;
        pool.submit([this, &cells, &results, &record, i] {
            try {
                const SweepCell &cell = cells[i];
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, cell.workload);
                const SystemConfig cfg =
                    makeSystemConfig(exp, cell.mitigation, cell.trh,
                                     cell.swapRate, cell.tracker);
                results[i].run =
                    runWorkload(cfg, profileByName(cell.workload), exp);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SweepResult &r = results[i];
        r.cell = cells[i];
        r.seed = cellSeed(exp_.seed, cells[i].workload);
        const RunResult &base =
            baseline[workloadIndex.at(cells[i].workload)];
        if (cells[i].mitigation == MitigationKind::None)
            r.run = base;
        r.baselineIpc = base.aggregateIpc;
        r.normalized = r.baselineIpc > 0.0
                           ? r.run.aggregateIpc / r.baselineIpc
                           : 1.0;
    }
    return results;
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepResult> &results)
{
    os << "index,workload,mitigation,tracker,trh,rate,seed,ipc,"
          "baseline_ipc,normalized,swaps,unswap_swaps,place_backs,"
          "rows_pinned,max_row_acts\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%zu,%s,%s,%s,%u,%u,0x%016llx,%.6f,%.6f,%.6f,%llu,%llu,"
            "%llu,%llu,%llu\n",
            i, r.cell.workload.c_str(),
            mitigationKindName(r.cell.mitigation),
            trackerKindName(r.cell.tracker), r.cell.trh,
            r.cell.swapRate,
            static_cast<unsigned long long>(r.seed),
            r.run.aggregateIpc, r.baselineIpc, r.normalized,
            static_cast<unsigned long long>(r.run.swaps),
            static_cast<unsigned long long>(r.run.unswapSwaps),
            static_cast<unsigned long long>(r.run.placeBacks),
            static_cast<unsigned long long>(r.run.rowsPinned),
            static_cast<unsigned long long>(r.run.maxRowActivations));
        os << buf;
    }
}

MitigationKind
mitigationKindFromName(const std::string &name)
{
    if (name == "none" || name == "baseline")
        return MitigationKind::None;
    if (name == "rrs")
        return MitigationKind::Rrs;
    if (name == "rrs-no-unswap")
        return MitigationKind::RrsNoUnswap;
    if (name == "srs")
        return MitigationKind::Srs;
    if (name == "scale-srs")
        return MitigationKind::ScaleSrs;
    if (name == "blockhammer")
        return MitigationKind::BlockHammer;
    if (name == "aqua")
        return MitigationKind::Aqua;
    fatal("unknown mitigation '", name,
          "' (want none|rrs|rrs-no-unswap|srs|scale-srs|blockhammer|"
          "aqua)");
}

TrackerKind
trackerKindFromName(const std::string &name)
{
    if (name == "misra-gries")
        return TrackerKind::MisraGries;
    if (name == "hydra")
        return TrackerKind::Hydra;
    if (name == "cbt")
        return TrackerKind::Cbt;
    if (name == "twice")
        return TrackerKind::TwiCe;
    fatal("unknown tracker '", name,
          "' (want misra-gries|hydra|cbt|twice)");
}

const char *
trackerKindName(TrackerKind kind)
{
    switch (kind) {
      case TrackerKind::MisraGries: return "misra-gries";
      case TrackerKind::Hydra:      return "hydra";
      case TrackerKind::Cbt:        return "cbt";
      case TrackerKind::TwiCe:      return "twice";
    }
    return "?";
}

} // namespace srs
