#include "sim/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "trace/profiles.hh"
#include "trace/trace_file.hh"

namespace srs
{

SweepCell
mixSweepCell(std::uint32_t index, std::uint32_t cores)
{
    SweepCell cell;
    cell.workload = WorkloadSpec::mix(index, cores);
    return cell;
}

std::vector<SystemAxes>
SweepGrid::axes() const
{
    std::vector<SystemAxes> out;
    out.reserve(pagePolicies.size() * presets.size() * orgs.size()
                * tRcOverrides.size() * tRcdOverrides.size()
                * tRpOverrides.size() * tRefiOverrides.size()
                * tRfcOverrides.size());
    for (const PagePolicy policy : pagePolicies) {
        for (const DramPreset preset : presets) {
            for (const std::string &org : orgs) {
                for (const std::uint32_t trc : tRcOverrides) {
                    for (const std::uint32_t trcd : tRcdOverrides) {
                        for (const std::uint32_t trp : tRpOverrides) {
                            for (const std::uint32_t trefi : tRefiOverrides) {
                                for (const std::uint32_t trfc : tRfcOverrides) {
                                    SystemAxes a;
                                    a.pagePolicy = policy;
                                    a.preset = preset;
                                    dramOrgFromName(org, a);
                                    a.tRcNs = trc;
                                    a.tRcdNs = trcd;
                                    a.tRpNs = trp;
                                    a.tRefiNs = trefi;
                                    a.tRfcNs = trfc;
                                    a.validate();
                                    out.push_back(a);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::size_t
SweepGrid::innerCells() const
{
    return pagePolicies.size() * presets.size() * orgs.size()
           * tRcOverrides.size() * tRcdOverrides.size()
           * tRpOverrides.size() * tRefiOverrides.size()
           * tRfcOverrides.size() * mitigations.size() * trhs.size()
           * swapRates.size();
}

std::size_t
SweepGrid::outerCount() const
{
    return workloads.size() + mixCount;
}

std::vector<SweepCell>
SweepGrid::expand() const
{
    const std::vector<SystemAxes> axisList = axes();
    std::vector<SweepCell> cells;
    cells.reserve(outerCount() * innerCells());
    const auto appendInner = [&](const WorkloadSpec &spec) {
        for (const SystemAxes &a : axisList) {
            for (const MitigationKind m : mitigations) {
                for (const std::uint32_t trh : trhs) {
                    for (const std::uint32_t rate : swapRates) {
                        SweepCell cell;
                        cell.workload = spec;
                        cell.axes = a;
                        cell.mitigation = m;
                        cell.trh = trh;
                        cell.swapRate = rate;
                        cell.tracker = tracker;
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    };
    for (const WorkloadSpec &spec : workloads)
        appendInner(spec);
    for (std::uint32_t mix = 0; mix < mixCount; ++mix)
        appendInner(WorkloadSpec::mix(mixBase + mix, mixCores));
    return cells;
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Split one CSV line into its comma-separated fields. */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::string::size_type start = 0;
    for (;;) {
        const auto comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

/** "0x%016llx" spelling shared by headers and error messages. */
std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** The tag every journal header comment starts with. */
constexpr const char *kJournalHeaderTag = "# srs_sim sweep journal ";

} // namespace

std::uint64_t
SweepRunner::cellSeed(std::uint64_t base, const std::string &workloadLabel)
{
    return splitmix64(base ^ splitmix64(fnv1a(workloadLabel)));
}

std::uint64_t
SweepRunner::gridDigest(const std::vector<SweepCell> &cells,
                        std::uint64_t baseSeed)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string prefix = identityPrefix(
            i, cells[i],
            cellSeed(baseSeed, cells[i].workload.label()));
        for (const char c : prefix) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001B3ULL;
        }
    }
    return h;
}

std::string
SweepRunner::journalHeader(const std::vector<SweepCell> &cells,
                           std::uint64_t baseSeed)
{
    return std::string(kJournalHeaderTag) + "schema="
           + std::to_string(kJournalSchema) + " cells="
           + std::to_string(cells.size()) + " grid="
           + hex64(gridDigest(cells, baseSeed)) + " seed="
           + hex64(baseSeed);
}

bool
SweepRunner::parseJournalHeader(const std::string &line,
                                JournalHeader &header)
{
    if (line.rfind(kJournalHeaderTag, 0) != 0)
        return false;
    unsigned long long schema = 0, cells = 0, digest = 0, seed = 0;
    if (std::sscanf(line.c_str() + std::strlen(kJournalHeaderTag),
                    "schema=%llu cells=%llu grid=0x%llx seed=0x%llx",
                    &schema, &cells, &digest, &seed)
        != 4) {
        fatal("malformed journal header (want 'schema=<N> cells=<N> "
              "grid=0x<hex> seed=0x<hex>'): ", line);
    }
    header.schema = schema;
    header.cells = cells;
    header.digest = digest;
    header.seed = seed;
    return true;
}

std::string
SweepRunner::identityPrefix(std::size_t index, const SweepCell &cell,
                            std::uint64_t seed)
{
    // Assembled from strings (not one bounded snprintf) because a
    // per-core trace spec's label can be arbitrarily long.
    char numbers[64];
    std::snprintf(numbers, sizeof(numbers), ",%u,%u,", cell.trh,
                  cell.swapRate);
    char seedField[32];
    std::snprintf(seedField, sizeof(seedField), "0x%016llx,",
                  static_cast<unsigned long long>(seed));
    std::string prefix = std::to_string(index);
    prefix += ',';
    prefix += cell.workload.label();
    prefix += ',';
    prefix += mitigationKindName(cell.mitigation);
    prefix += ',';
    prefix += trackerKindName(cell.tracker);
    prefix += numbers;
    prefix += cell.axes.field();
    prefix += ',';
    prefix += seedField;
    return prefix;
}

const char *
SweepRunner::csvHeader()
{
    return "index,workload_spec,mitigation,tracker,trh,rate,axes,"
           "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
           "place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,"
           "p999_lat,lat_samples,iterations,censored,p_break,ci_lo,"
           "ci_hi";
}

SweepRunner::SweepRunner(const ExperimentConfig &exp, std::size_t threads)
    : exp_(exp), threads_(ThreadPool::resolveThreads(threads))
{
}

void
SweepRunner::setJournal(const std::string &path)
{
    journalPath_ = path;
}

void
SweepRunner::setResume(const std::string &path)
{
    resumePath_ = path;
}

std::size_t
SweepRunner::threadCount() const
{
    return threads_;
}

std::vector<SweepResult>
SweepRunner::run(const SweepGrid &grid)
{
    return run(grid.expand());
}

void
SweepRunner::loadResume(const std::vector<SweepCell> &cells,
                        std::vector<SweepResult> &results,
                        std::vector<char> &done) const
{
    std::ifstream in(resumePath_);
    if (!in)
        fatal("cannot open resume file '", resumePath_, "'");
    std::string line;
    while (std::getline(in, line)) {
        // An interrupted writer can leave a torn final line — every
        // complete row ends with '\n', so a line that ran into EOF
        // instead may be cut anywhere (even mid-digit of the last
        // field, where it still splits into 20 plausible fields).
        // Never trust it; the cell is simply recomputed.
        if (in.eof())
            continue;
        if (line.empty() || line == csvHeader())
            continue;
        if (line[0] == '#') {
            // A journal's header comment names its producer; when it
            // parses, it must name *this* grid — a mismatch means the
            // user pointed --resume at some other sweep's checkpoint,
            // which the per-row identity check below would also catch,
            // but only with a cryptic prefix diff.  Other comments
            // (and headers from future schemas' tags) are skipped.
            JournalHeader header;
            if (!parseJournalHeader(line, header))
                continue;
            if (header.schema != kJournalSchema) {
                fatal("resume file '", resumePath_, "': journal "
                      "header names schema ", header.schema,
                      "; this build reads schema ", kJournalSchema,
                      " only — re-run the sweep "
                      "(docs/sweep-format.md)");
            }
            if (header.cells != cells.size()
                || header.digest != gridDigest(cells, exp_.seed)
                || header.seed != exp_.seed) {
                fatal("resume file '", resumePath_, "': journal "
                      "header describes a different grid\n  header:   "
                      "cells=", header.cells, " grid=",
                      hex64(header.digest), " seed=",
                      hex64(header.seed), "\n  this sweep: cells=",
                      cells.size(), " grid=",
                      hex64(gridDigest(cells, exp_.seed)), " seed=",
                      hex64(exp_.seed));
            }
            continue;
        }
        if (line.rfind("index,workload_spec", 0) == 0) {
            // A byte-exact v6 header matched above.  A v2 header is
            // recognized by its `policy` identity column, a v3
            // header by the missing latency-percentile columns, a v4
            // header by the missing sample-count column, a v5 header
            // by the missing Monte-Carlo confidence columns;
            // anything else here is a header-like line this build
            // cannot trust (foreign schema, stray \r, edited file).
            if (line.find(",policy,") != std::string::npos) {
                fatal("resume file '", resumePath_, "' carries the "
                      "sweep CSV schema v2 header (`policy` identity "
                      "column, no DRAM preset/timing axes); this "
                      "build reads schema v6 only — re-run the sweep "
                      "(docs/sweep-format.md)");
            }
            if (line.find(",p50_lat") == std::string::npos) {
                fatal("resume file '", resumePath_, "' carries the "
                      "sweep CSV schema v3 header (no "
                      "p50_lat/p99_lat/p999_lat tail-latency "
                      "columns); this build reads schema v6 only — "
                      "re-run the sweep (docs/sweep-format.md)");
            }
            if (line.find(",lat_samples") == std::string::npos) {
                fatal("resume file '", resumePath_, "' carries the "
                      "sweep CSV schema v4 header (no lat_samples "
                      "column; it predates the DRAM-organization "
                      "axis); this build reads schema v6 only — "
                      "re-run the sweep (docs/sweep-format.md)");
            }
            if (line.find(",iterations") == std::string::npos) {
                fatal("resume file '", resumePath_, "' carries the "
                      "sweep CSV schema v5 header (no "
                      "iterations/censored/p_break/ci_lo/ci_hi "
                      "Monte-Carlo confidence columns); this build "
                      "reads schema v6 only — re-run the sweep "
                      "(docs/sweep-format.md)");
            }
            fatal("resume file '", resumePath_, "' has a header line "
                  "that does not byte-match this build's schema v6 "
                  "header (foreign schema version, or the file was "
                  "edited — check for trailing whitespace or \\r "
                  "line endings):\n  got:      ", line,
                  "\n  expected: ", csvHeader());
        }
        if (line.rfind("index,workload", 0) == 0) {
            fatal("resume file '", resumePath_, "' carries the sweep "
                  "CSV schema v1 header (no workload_spec/axes "
                  "columns); this build reads schema v6 only — "
                  "re-run the sweep (docs/sweep-format.md)");
        }
        const std::vector<std::string> fields = splitFields(line);
        // A complete v1 row has 15 fields with the 0x-seed in column
        // 7 (v2/v3 keep it in column 8 of a 16-field row, v4 in
        // column 8 of a 19-field row, v5 in column 8 of a 20-field
        // row); recognize all of them so stale checkpoints fail with
        // a versioned message, not a silent recompute or a cryptic
        // prefix mismatch.
        if (fields.size() == 15
            && fields.size() > 6 && fields[6].rfind("0x", 0) == 0) {
            fatal("resume file '", resumePath_, "': row '", fields[0],
                  "' is a sweep CSV schema v1 row (15 columns, seed "
                  "in column 7); this build reads schema v6 only — "
                  "re-run the sweep (docs/sweep-format.md)");
        }
        if (fields.size() == 16
            && fields.size() > 7 && fields[7].rfind("0x", 0) == 0) {
            fatal("resume file '", resumePath_, "': row '", fields[0],
                  "' is a sweep CSV schema v2 or v3 row (16 columns, "
                  "no p50_lat/p99_lat/p999_lat tail-latency "
                  "columns); this build reads schema v6 only — "
                  "re-run the sweep (docs/sweep-format.md)");
        }
        if (fields.size() == 19
            && fields.size() > 7 && fields[7].rfind("0x", 0) == 0) {
            fatal("resume file '", resumePath_, "': row '", fields[0],
                  "' is a sweep CSV schema v4 row (19 columns, no "
                  "lat_samples column); this build reads schema v6 "
                  "only — re-run the sweep (docs/sweep-format.md)");
        }
        if (fields.size() == 20
            && fields.size() > 7 && fields[7].rfind("0x", 0) == 0) {
            fatal("resume file '", resumePath_, "': row '", fields[0],
                  "' is a sweep CSV schema v5 row (20 columns, no "
                  "iterations/censored/p_break/ci_lo/ci_hi "
                  "Monte-Carlo confidence columns); this build reads "
                  "schema v6 only — re-run the sweep "
                  "(docs/sweep-format.md)");
        }
        if (fields.size() != kRowColumns || fields.back().empty())
            continue;
        char *end = nullptr;
        const unsigned long long index =
            std::strtoull(fields[0].c_str(), &end, 10);
        if (end == fields[0].c_str() || *end != '\0')
            continue;
        if (index >= cells.size()) {
            fatal("resume file '", resumePath_, "': row index ",
                  fields[0], " is outside this sweep's ",
                  cells.size(), "-cell grid");
        }
        const std::size_t i = static_cast<std::size_t>(index);
        const std::string expected = identityPrefix(
            i, cells[i],
            cellSeed(exp_.seed, cells[i].workload.label()));
        if (line.compare(0, expected.size(), expected) != 0) {
            fatal("resume file '", resumePath_, "': row ", fields[0],
                  " does not match this sweep's cell (different grid "
                  "or --seed?)\n  row:      ", line,
                  "\n  expected: ", expected, "...");
        }
        SweepResult &r = results[i];
        r.cell = cells[i];
        r.seed = cellSeed(exp_.seed, cells[i].workload.label());
        r.run.aggregateIpc = std::strtod(fields[8].c_str(), nullptr);
        r.baselineIpc = std::strtod(fields[9].c_str(), nullptr);
        r.normalized = std::strtod(fields[10].c_str(), nullptr);
        r.run.swaps = std::strtoull(fields[11].c_str(), nullptr, 10);
        r.run.unswapSwaps =
            std::strtoull(fields[12].c_str(), nullptr, 10);
        r.run.placeBacks =
            std::strtoull(fields[13].c_str(), nullptr, 10);
        r.run.rowsPinned =
            std::strtoull(fields[14].c_str(), nullptr, 10);
        r.run.maxRowActivations =
            std::strtoull(fields[15].c_str(), nullptr, 10);
        r.run.p50Lat = std::strtoull(fields[16].c_str(), nullptr, 10);
        r.run.p99Lat = std::strtoull(fields[17].c_str(), nullptr, 10);
        r.run.p999Lat =
            std::strtoull(fields[18].c_str(), nullptr, 10);
        r.run.latSamples =
            std::strtoull(fields[19].c_str(), nullptr, 10);
        r.resumedRow = line;
        done[i] = 1;
    }
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    // Resolve every workload spec before any simulation starts, so a
    // typo'd profile name or an unreadable trace file is a clean
    // fatal() in the calling thread, not a worker abort.  A label
    // reused with a different spec is rejected (the label keys both
    // the trace seed and the shared baseline), and each distinct
    // trace file is parsed exactly once, shared by every cell and
    // core that replays it.
    struct Workload
    {
        WorkloadSpec spec;
        const WorkloadProfile *single = nullptr;
        std::vector<WorkloadProfile> perCore;
        std::vector<SharedTraceRecords> traces;
    };
    std::vector<Workload> workloads;
    std::unordered_map<std::string, std::size_t> workloadIndex;
    std::unordered_map<std::string, SharedTraceRecords> traceCache;
    std::vector<std::size_t> keyOf(cells.size());
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        const SweepCell &cell = cells[ci];
        const std::string label = cell.workload.label();
        const auto it = workloadIndex.find(label);
        if (it != workloadIndex.end()) {
            if (workloads[it->second].spec != cell.workload) {
                fatal("sweep cell ", ci, ": label '", label,
                      "' reused with a different workload spec");
            }
            keyOf[ci] = it->second;
            continue;
        }
        Workload w;
        w.spec = cell.workload;
        switch (cell.workload.kind) {
          case WorkloadKind::Synthetic:
            w.single = &profileByName(cell.workload.name);
            break;
          case WorkloadKind::Mix:
            if (cell.workload.mixProfiles.size() != exp_.numCores) {
                fatal("sweep cell ", ci, " ('", label, "'): ",
                      cell.workload.mixProfiles.size(),
                      " per-core profiles but the experiment has ",
                      exp_.numCores, " cores");
            }
            for (const std::string &name : cell.workload.mixProfiles)
                w.perCore.push_back(profileByName(name));
            break;
          case WorkloadKind::TraceFile:
            if (cell.workload.tracePaths.size() != 1
                && cell.workload.tracePaths.size() != exp_.numCores) {
                fatal("sweep cell ", ci, " ('", label, "'): ",
                      cell.workload.tracePaths.size(),
                      " trace paths but the experiment has ",
                      exp_.numCores, " cores (want 1 shared path or "
                      "one per core)");
            }
            for (const std::string &path : cell.workload.tracePaths) {
                auto cached = traceCache.find(path);
                if (cached == traceCache.end()) {
                    cached = traceCache
                                 .emplace(path, loadTraceRecords(path))
                                 .first;
                }
                w.traces.push_back(cached->second);
            }
            break;
          case WorkloadKind::Generator:
            // Nothing to preload; the spec itself drives the trace.
            // Geometry bounds are checked at GeneratorTrace
            // construction, against the cell's actual machine.
            break;
        }
        keyOf[ci] = workloads.size();
        workloadIndex.emplace(label, workloads.size());
        workloads.push_back(std::move(w));
    }

    std::vector<SweepResult> results(cells.size());
    std::vector<char> done(cells.size(), 0);
    if (!resumePath_.empty())
        loadResume(cells, results, done);

    // The journal is rewritten each run: resumed rows first, so the
    // file is a complete checkpoint even after repeated interruptions.
    std::ofstream journal;
    std::mutex journalMutex;
    if (!journalPath_.empty()) {
        journal.open(journalPath_, std::ios::trunc);
        if (!journal)
            fatal("cannot open journal '", journalPath_,
                  "' for writing");
        journal << journalHeader(cells, exp_.seed) << '\n';
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (done[i])
                journal << results[i].resumedRow << '\n';
        }
        if (!journal.flush())
            fatal("error writing resumed rows to journal '",
                  journalPath_, "'");
    }
    const auto journalAppend = [&](std::size_t i) {
        if (!journal.is_open())
            return;
        const std::string row = formatRow(i, results[i]);
        std::lock_guard<std::mutex> lock(journalMutex);
        journal << row << '\n';
        if (!journal.flush())
            fatal("error appending to journal '", journalPath_, "'");
    };

    // One simulation of workload @p w (baseline or protected).
    const auto simulate = [this](const Workload &w,
                                 const SystemConfig &cfg,
                                 const ExperimentConfig &exp) {
        switch (w.spec.kind) {
          case WorkloadKind::Synthetic:
            return runWorkload(cfg, *w.single, exp);
          case WorkloadKind::Mix:
            return runWorkloadMix(cfg, w.perCore, exp);
          case WorkloadKind::TraceFile:
            return runWorkloadTrace(cfg, w.traces, exp);
          case WorkloadKind::Generator:
            return runWorkloadGenerator(cfg, w.spec.generator, exp);
        }
        fatal("unreachable workload kind");
    };

    ThreadPool pool(threads_);

    // A FatalError escaping a worker would std::terminate the whole
    // process, so jobs trap it; the first message (in cell order) is
    // re-raised on the calling thread after the phase completes.
    std::mutex errorMutex;
    std::size_t errorAt = cells.size() + workloads.size();
    std::string errorMsg;
    const auto record = [&](std::size_t at, const std::string &msg) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (at < errorAt) {
            errorAt = at;
            errorMsg = msg;
        }
    };
    const auto rethrow = [&] {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!errorMsg.empty())
            throw FatalError(errorMsg);
    };

    // Baselines are shared per distinct (workload, system axes)
    // pair: the axes overlay changes the unprotected machine too, so
    // an open-page cell normalizes against an open-page baseline.
    struct BaselineGroup
    {
        std::size_t workload;
        SystemAxes axes;
    };
    std::vector<BaselineGroup> groups;
    std::map<std::pair<std::size_t, std::string>, std::size_t>
        groupIndex;
    std::vector<std::size_t> groupOf(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto key =
            std::make_pair(keyOf[i], cells[i].axes.field());
        const auto it = groupIndex.find(key);
        if (it != groupIndex.end()) {
            groupOf[i] = it->second;
            continue;
        }
        groupOf[i] = groups.size();
        groupIndex.emplace(key, groups.size());
        groups.push_back(BaselineGroup{keyOf[i], cells[i].axes});
    }

    // Phase 1: one unprotected baseline per (workload, axes) group
    // that still has pending cells.  The baseline ignores trh/rate
    // (no mitigation is wired), so any values work.
    std::vector<char> groupNeeded(groups.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!done[i])
            groupNeeded[groupOf[i]] = 1;
    }
    std::vector<RunResult> baseline(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
        if (!groupNeeded[i])
            continue;
        pool.submit([this, &workloads, &groups, &baseline, &simulate,
                     &record, i] {
            try {
                const Workload &w = workloads[groups[i].workload];
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, w.spec.label());
                const SystemConfig cfg = makeSystemConfig(
                    exp, MitigationKind::None, 4800, 6,
                    TrackerKind::MisraGries, groups[i].axes);
                baseline[i] = simulate(w, cfg, exp);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();

    // Fill one finished cell: identity, baseline normalization, and
    // one journal line.  Safe concurrently — each call touches only
    // its own slot and the journal lock serializes the append.
    const auto finishCell = [&](std::size_t i) {
        SweepResult &r = results[i];
        r.cell = cells[i];
        r.seed = cellSeed(exp_.seed, cells[i].workload.label());
        const RunResult &base = baseline[groupOf[i]];
        if (cells[i].mitigation == MitigationKind::None)
            r.run = base;
        r.baselineIpc = base.aggregateIpc;
        r.normalized = r.baselineIpc > 0.0
                           ? r.run.aggregateIpc / r.baselineIpc
                           : 1.0;
        journalAppend(i);
    };

    // Unprotected cells replay the phase-1 baseline bit-for-bit
    // (same seed, same config), so reuse it instead of re-running.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!done[i] && cells[i].mitigation == MitigationKind::None)
            finishCell(i);
    }

    // Phase 2: every pending cell, each writing its pre-assigned slot.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (done[i] || cells[i].mitigation == MitigationKind::None)
            continue;
        pool.submit([this, &cells, &workloads, &keyOf, &results,
                     &simulate, &finishCell, &record, i] {
            try {
                const SweepCell &cell = cells[i];
                const Workload &w = workloads[keyOf[i]];
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, cell.workload.label());
                const SystemConfig cfg = makeSystemConfig(
                    exp, cell.mitigation, cell.trh, cell.swapRate,
                    cell.tracker, cell.axes);
                results[i].run = simulate(w, cfg, exp);
                finishCell(i);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();
    return results;
}

std::string
SweepRunner::formatRow(std::size_t index, const SweepResult &r)
{
    // Performance cells have no Monte-Carlo campaign behind them;
    // the v6 confidence columns are fixed zeros (security cells —
    // security/security_sweep.hh — fill them in).
    char payload[256];
    std::snprintf(
        payload, sizeof(payload),
        "%.6f,%.6f,%.6f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,0,0,0,0,0",
        r.run.aggregateIpc, r.baselineIpc, r.normalized,
        static_cast<unsigned long long>(r.run.swaps),
        static_cast<unsigned long long>(r.run.unswapSwaps),
        static_cast<unsigned long long>(r.run.placeBacks),
        static_cast<unsigned long long>(r.run.rowsPinned),
        static_cast<unsigned long long>(r.run.maxRowActivations),
        static_cast<unsigned long long>(r.run.p50Lat),
        static_cast<unsigned long long>(r.run.p99Lat),
        static_cast<unsigned long long>(r.run.p999Lat),
        static_cast<unsigned long long>(r.run.latSamples));
    return identityPrefix(index, r.cell, r.seed) + payload;
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepResult> &results)
{
    os << csvHeader() << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        if (r.resumedRow.empty())
            os << formatRow(i, r) << '\n';
        else
            os << r.resumedRow << '\n';
    }
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::string::size_type start = 0;
    while (start <= value.size()) {
        const auto comma = value.find(',', start);
        const auto end =
            comma == std::string::npos ? value.size() : comma;
        if (end > start)
            items.push_back(value.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return items;
}

std::vector<std::uint32_t>
splitUint32List(const std::string &value, const std::string &what)
{
    std::vector<std::uint32_t> items;
    for (const std::string &item : splitList(value)) {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0' || item[0] == '-'
            || v > std::numeric_limits<std::uint32_t>::max()) {
            fatal(what, ": '", item,
                  "' is not a 32-bit unsigned integer");
        }
        items.push_back(static_cast<std::uint32_t>(v));
    }
    return items;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string joined;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            joined += ',';
        joined += items[i];
    }
    return joined;
}

std::string
joinUint32List(const std::vector<std::uint32_t> &items)
{
    std::vector<std::string> strings;
    for (const std::uint32_t v : items)
        strings.push_back(std::to_string(v));
    return joinList(strings);
}

std::string
joinSpecList(const std::vector<WorkloadSpec> &specs)
{
    std::vector<std::string> labels;
    for (const WorkloadSpec &spec : specs)
        labels.push_back(spec.label());
    return joinList(labels);
}

std::vector<WorkloadSpec>
splitSpecList(const std::string &value, std::uint32_t cores)
{
    std::vector<WorkloadSpec> specs;
    for (const std::string &item : splitList(value))
        specs.push_back(WorkloadSpec::parse(item, cores));
    return specs;
}

MitigationKind
mitigationKindFromName(const std::string &name)
{
    if (name == "none" || name == "baseline")
        return MitigationKind::None;
    if (name == "rrs")
        return MitigationKind::Rrs;
    if (name == "rrs-no-unswap")
        return MitigationKind::RrsNoUnswap;
    if (name == "srs")
        return MitigationKind::Srs;
    if (name == "scale-srs")
        return MitigationKind::ScaleSrs;
    if (name == "blockhammer")
        return MitigationKind::BlockHammer;
    if (name == "aqua")
        return MitigationKind::Aqua;
    fatal("unknown mitigation '", name,
          "' (want none|rrs|rrs-no-unswap|srs|scale-srs|blockhammer|"
          "aqua)");
}

TrackerKind
trackerKindFromName(const std::string &name)
{
    if (name == "misra-gries")
        return TrackerKind::MisraGries;
    if (name == "hydra")
        return TrackerKind::Hydra;
    if (name == "cbt")
        return TrackerKind::Cbt;
    if (name == "twice")
        return TrackerKind::TwiCe;
    fatal("unknown tracker '", name,
          "' (want misra-gries|hydra|cbt|twice)");
}

const char *
trackerKindName(TrackerKind kind)
{
    switch (kind) {
      case TrackerKind::MisraGries: return "misra-gries";
      case TrackerKind::Hydra:      return "hydra";
      case TrackerKind::Cbt:        return "cbt";
      case TrackerKind::TwiCe:      return "twice";
    }
    return "?";
}

} // namespace srs
