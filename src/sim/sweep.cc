#include "sim/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "trace/profiles.hh"

namespace srs
{

SweepCell
mixSweepCell(std::uint32_t index, std::uint32_t cores)
{
    SweepCell cell;
    cell.workload = "mix" + std::to_string(index);
    for (const WorkloadProfile &p : mixWorkload(index, cores))
        cell.mixProfiles.push_back(p.name);
    return cell;
}

std::size_t
SweepGrid::innerCells() const
{
    return mitigations.size() * trhs.size() * swapRates.size();
}

std::size_t
SweepGrid::outerCount() const
{
    return workloads.size() + mixCount;
}

std::vector<SweepCell>
SweepGrid::expand() const
{
    std::vector<SweepCell> cells;
    cells.reserve(outerCount() * innerCells());
    const auto appendInner = [&](const SweepCell &proto) {
        for (const MitigationKind m : mitigations) {
            for (const std::uint32_t trh : trhs) {
                for (const std::uint32_t rate : swapRates) {
                    SweepCell cell = proto;
                    cell.mitigation = m;
                    cell.trh = trh;
                    cell.swapRate = rate;
                    cell.tracker = tracker;
                    cells.push_back(std::move(cell));
                }
            }
        }
    };
    for (const std::string &w : workloads) {
        SweepCell proto;
        proto.workload = w;
        appendInner(proto);
    }
    for (std::uint32_t mix = 0; mix < mixCount; ++mix)
        appendInner(mixSweepCell(mixBase + mix, mixCores));
    return cells;
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Total fields of one CSV data row (7-column identity prefix +
 *  8-column measurement payload). */
constexpr std::size_t kRowColumns = 15;

/** Split one CSV line into its comma-separated fields. */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::string::size_type start = 0;
    for (;;) {
        const auto comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

} // namespace

std::uint64_t
SweepRunner::cellSeed(std::uint64_t base, const std::string &workload)
{
    return splitmix64(base ^ splitmix64(fnv1a(workload)));
}

std::string
SweepRunner::identityPrefix(std::size_t index, const SweepCell &cell,
                            std::uint64_t seed)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%zu,%s,%s,%s,%u,%u,0x%016llx,",
                  index, cell.workload.c_str(),
                  mitigationKindName(cell.mitigation),
                  trackerKindName(cell.tracker), cell.trh,
                  cell.swapRate,
                  static_cast<unsigned long long>(seed));
    return buf;
}

const char *
SweepRunner::csvHeader()
{
    return "index,workload,mitigation,tracker,trh,rate,seed,ipc,"
           "baseline_ipc,normalized,swaps,unswap_swaps,place_backs,"
           "rows_pinned,max_row_acts";
}

SweepRunner::SweepRunner(const ExperimentConfig &exp, std::size_t threads)
    : exp_(exp), threads_(ThreadPool::resolveThreads(threads))
{
}

void
SweepRunner::setJournal(const std::string &path)
{
    journalPath_ = path;
}

void
SweepRunner::setResume(const std::string &path)
{
    resumePath_ = path;
}

std::size_t
SweepRunner::threadCount() const
{
    return threads_;
}

std::vector<SweepResult>
SweepRunner::run(const SweepGrid &grid)
{
    return run(grid.expand());
}

void
SweepRunner::loadResume(const std::vector<SweepCell> &cells,
                        std::vector<SweepResult> &results,
                        std::vector<char> &done) const
{
    std::ifstream in(resumePath_);
    if (!in)
        fatal("cannot open resume file '", resumePath_, "'");
    std::string line;
    while (std::getline(in, line)) {
        // An interrupted writer can leave a torn final line — every
        // complete row ends with '\n', so a line that ran into EOF
        // instead may be cut anywhere (even mid-digit of the last
        // field, where it still splits into 15 plausible fields).
        // Never trust it; the cell is simply recomputed.
        if (in.eof())
            continue;
        if (line.empty() || line.rfind("index,workload", 0) == 0)
            continue;
        const std::vector<std::string> fields = splitFields(line);
        if (fields.size() != kRowColumns || fields.back().empty())
            continue;
        char *end = nullptr;
        const unsigned long long index =
            std::strtoull(fields[0].c_str(), &end, 10);
        if (end == fields[0].c_str() || *end != '\0')
            continue;
        if (index >= cells.size()) {
            fatal("resume file '", resumePath_, "': row index ",
                  fields[0], " is outside this sweep's ",
                  cells.size(), "-cell grid");
        }
        const std::size_t i = static_cast<std::size_t>(index);
        const std::string expected = identityPrefix(
            i, cells[i], cellSeed(exp_.seed, cells[i].workload));
        if (line.compare(0, expected.size(), expected) != 0) {
            fatal("resume file '", resumePath_, "': row ", fields[0],
                  " does not match this sweep's cell (different grid "
                  "or --seed?)\n  row:      ", line,
                  "\n  expected: ", expected, "...");
        }
        SweepResult &r = results[i];
        r.cell = cells[i];
        r.seed = cellSeed(exp_.seed, cells[i].workload);
        r.run.aggregateIpc = std::strtod(fields[7].c_str(), nullptr);
        r.baselineIpc = std::strtod(fields[8].c_str(), nullptr);
        r.normalized = std::strtod(fields[9].c_str(), nullptr);
        r.run.swaps = std::strtoull(fields[10].c_str(), nullptr, 10);
        r.run.unswapSwaps =
            std::strtoull(fields[11].c_str(), nullptr, 10);
        r.run.placeBacks =
            std::strtoull(fields[12].c_str(), nullptr, 10);
        r.run.rowsPinned =
            std::strtoull(fields[13].c_str(), nullptr, 10);
        r.run.maxRowActivations =
            std::strtoull(fields[14].c_str(), nullptr, 10);
        r.resumedRow = line;
        done[i] = 1;
    }
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    // Validate every workload before any simulation starts, so a typo
    // is a clean fatal() in the calling thread, not a worker abort.
    // MIX cells pre-resolve their per-core profiles here too, and a
    // label reused with a different profile list is rejected (the
    // label keys both the trace seed and the shared baseline).
    struct Workload
    {
        std::string name;
        const WorkloadProfile *single = nullptr;
        std::vector<WorkloadProfile> perCore;
    };
    std::vector<Workload> workloads;
    std::unordered_map<std::string, std::size_t> workloadIndex;
    std::vector<std::size_t> keyOf(cells.size());
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        const SweepCell &cell = cells[ci];
        const auto it = workloadIndex.find(cell.workload);
        if (it != workloadIndex.end()) {
            const Workload &known = workloads[it->second];
            std::vector<std::string> knownNames;
            for (const WorkloadProfile &p : known.perCore)
                knownNames.push_back(p.name);
            if (knownNames != cell.mixProfiles) {
                fatal("sweep cell ", ci, ": label '", cell.workload,
                      "' reused with a different per-core profile "
                      "list");
            }
            keyOf[ci] = it->second;
            continue;
        }
        Workload w;
        w.name = cell.workload;
        if (cell.mixProfiles.empty()) {
            w.single = &profileByName(cell.workload); // fatal if unknown
        } else {
            if (cell.mixProfiles.size() != exp_.numCores) {
                fatal("sweep cell ", ci, " ('", cell.workload,
                      "'): ", cell.mixProfiles.size(),
                      " per-core profiles but the experiment has ",
                      exp_.numCores, " cores");
            }
            for (const std::string &name : cell.mixProfiles)
                w.perCore.push_back(profileByName(name));
        }
        keyOf[ci] = workloads.size();
        workloadIndex.emplace(cell.workload, workloads.size());
        workloads.push_back(std::move(w));
    }

    std::vector<SweepResult> results(cells.size());
    std::vector<char> done(cells.size(), 0);
    if (!resumePath_.empty())
        loadResume(cells, results, done);

    // The journal is rewritten each run: resumed rows first, so the
    // file is a complete checkpoint even after repeated interruptions.
    std::ofstream journal;
    std::mutex journalMutex;
    if (!journalPath_.empty()) {
        journal.open(journalPath_, std::ios::trunc);
        if (!journal)
            fatal("cannot open journal '", journalPath_,
                  "' for writing");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (done[i])
                journal << results[i].resumedRow << '\n';
        }
        if (!journal.flush())
            fatal("error writing resumed rows to journal '",
                  journalPath_, "'");
    }
    const auto journalAppend = [&](std::size_t i) {
        if (!journal.is_open())
            return;
        const std::string row = formatRow(i, results[i]);
        std::lock_guard<std::mutex> lock(journalMutex);
        journal << row << '\n';
        if (!journal.flush())
            fatal("error appending to journal '", journalPath_, "'");
    };

    ThreadPool pool(threads_);

    // A FatalError escaping a worker would std::terminate the whole
    // process, so jobs trap it; the first message (in cell order) is
    // re-raised on the calling thread after the phase completes.
    std::mutex errorMutex;
    std::size_t errorAt = cells.size() + workloads.size();
    std::string errorMsg;
    const auto record = [&](std::size_t at, const std::string &msg) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (at < errorAt) {
            errorAt = at;
            errorMsg = msg;
        }
    };
    const auto rethrow = [&] {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!errorMsg.empty())
            throw FatalError(errorMsg);
    };

    // Phase 1: one unprotected baseline per distinct workload that
    // still has pending cells.  The baseline ignores trh/rate (no
    // mitigation is wired), so any values work.
    std::vector<char> keyNeeded(workloads.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!done[i])
            keyNeeded[keyOf[i]] = 1;
    }
    std::vector<RunResult> baseline(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (!keyNeeded[i])
            continue;
        pool.submit([this, &workloads, &baseline, &record, i] {
            try {
                const Workload &w = workloads[i];
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, w.name);
                const SystemConfig cfg = makeSystemConfig(
                    exp, MitigationKind::None, 4800, 6);
                baseline[i] = w.single
                                  ? runWorkload(cfg, *w.single, exp)
                                  : runWorkloadMix(cfg, w.perCore, exp);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();

    // Fill one finished cell: identity, baseline normalization, and
    // one journal line.  Safe concurrently — each call touches only
    // its own slot and the journal lock serializes the append.
    const auto finishCell = [&](std::size_t i) {
        SweepResult &r = results[i];
        r.cell = cells[i];
        r.seed = cellSeed(exp_.seed, cells[i].workload);
        const RunResult &base = baseline[keyOf[i]];
        if (cells[i].mitigation == MitigationKind::None)
            r.run = base;
        r.baselineIpc = base.aggregateIpc;
        r.normalized = r.baselineIpc > 0.0
                           ? r.run.aggregateIpc / r.baselineIpc
                           : 1.0;
        journalAppend(i);
    };

    // Unprotected cells replay the phase-1 baseline bit-for-bit
    // (same seed, same config), so reuse it instead of re-running.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!done[i] && cells[i].mitigation == MitigationKind::None)
            finishCell(i);
    }

    // Phase 2: every pending cell, each writing its pre-assigned slot.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (done[i] || cells[i].mitigation == MitigationKind::None)
            continue;
        pool.submit([this, &cells, &workloads, &keyOf, &results,
                     &finishCell, &record, i] {
            try {
                const SweepCell &cell = cells[i];
                const Workload &w = workloads[keyOf[i]];
                ExperimentConfig exp = exp_;
                exp.seed = cellSeed(exp_.seed, cell.workload);
                const SystemConfig cfg =
                    makeSystemConfig(exp, cell.mitigation, cell.trh,
                                     cell.swapRate, cell.tracker);
                results[i].run =
                    w.single ? runWorkload(cfg, *w.single, exp)
                             : runWorkloadMix(cfg, w.perCore, exp);
                finishCell(i);
            } catch (const FatalError &err) {
                record(i, err.what());
            }
        });
    }
    pool.wait();
    rethrow();
    return results;
}

std::string
SweepRunner::formatRow(std::size_t index, const SweepResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%zu,%s,%s,%s,%u,%u,0x%016llx,%.6f,%.6f,%.6f,%llu,%llu,"
        "%llu,%llu,%llu",
        index, r.cell.workload.c_str(),
        mitigationKindName(r.cell.mitigation),
        trackerKindName(r.cell.tracker), r.cell.trh, r.cell.swapRate,
        static_cast<unsigned long long>(r.seed), r.run.aggregateIpc,
        r.baselineIpc, r.normalized,
        static_cast<unsigned long long>(r.run.swaps),
        static_cast<unsigned long long>(r.run.unswapSwaps),
        static_cast<unsigned long long>(r.run.placeBacks),
        static_cast<unsigned long long>(r.run.rowsPinned),
        static_cast<unsigned long long>(r.run.maxRowActivations));
    return buf;
}

void
SweepRunner::writeCsv(std::ostream &os,
                      const std::vector<SweepResult> &results)
{
    os << csvHeader() << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        if (r.resumedRow.empty())
            os << formatRow(i, r) << '\n';
        else
            os << r.resumedRow << '\n';
    }
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::string::size_type start = 0;
    while (start <= value.size()) {
        const auto comma = value.find(',', start);
        const auto end =
            comma == std::string::npos ? value.size() : comma;
        if (end > start)
            items.push_back(value.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return items;
}

std::vector<std::uint32_t>
splitUint32List(const std::string &value, const std::string &what)
{
    std::vector<std::uint32_t> items;
    for (const std::string &item : splitList(value)) {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0' || item[0] == '-'
            || v > std::numeric_limits<std::uint32_t>::max()) {
            fatal(what, ": '", item,
                  "' is not a 32-bit unsigned integer");
        }
        items.push_back(static_cast<std::uint32_t>(v));
    }
    return items;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string joined;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            joined += ',';
        joined += items[i];
    }
    return joined;
}

std::string
joinUint32List(const std::vector<std::uint32_t> &items)
{
    std::vector<std::string> strings;
    for (const std::uint32_t v : items)
        strings.push_back(std::to_string(v));
    return joinList(strings);
}

MitigationKind
mitigationKindFromName(const std::string &name)
{
    if (name == "none" || name == "baseline")
        return MitigationKind::None;
    if (name == "rrs")
        return MitigationKind::Rrs;
    if (name == "rrs-no-unswap")
        return MitigationKind::RrsNoUnswap;
    if (name == "srs")
        return MitigationKind::Srs;
    if (name == "scale-srs")
        return MitigationKind::ScaleSrs;
    if (name == "blockhammer")
        return MitigationKind::BlockHammer;
    if (name == "aqua")
        return MitigationKind::Aqua;
    fatal("unknown mitigation '", name,
          "' (want none|rrs|rrs-no-unswap|srs|scale-srs|blockhammer|"
          "aqua)");
}

TrackerKind
trackerKindFromName(const std::string &name)
{
    if (name == "misra-gries")
        return TrackerKind::MisraGries;
    if (name == "hydra")
        return TrackerKind::Hydra;
    if (name == "cbt")
        return TrackerKind::Cbt;
    if (name == "twice")
        return TrackerKind::TwiCe;
    fatal("unknown tracker '", name,
          "' (want misra-gries|hydra|cbt|twice)");
}

const char *
trackerKindName(TrackerKind kind)
{
    switch (kind) {
      case TrackerKind::MisraGries: return "misra-gries";
      case TrackerKind::Hydra:      return "hydra";
      case TrackerKind::Cbt:        return "cbt";
      case TrackerKind::TwiCe:      return "twice";
    }
    return "?";
}

} // namespace srs
