/**
 * @file
 * Experiment harness: builds Systems from workload profiles, runs
 * them for a fixed cycle budget, and reports normalized performance
 * against the unprotected baseline — the methodology behind every
 * performance figure (4, 12, 14, 15, 16).
 *
 * Multi-configuration grids should go through SweepRunner
 * (sim/sweep.hh), which fans these primitives across a thread pool
 * with deterministic per-cell seeding; the functions here run one
 * simulation on the calling thread.
 */

#ifndef SRS_SIM_EXPERIMENT_HH
#define SRS_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"
#include "sim/workload_spec.hh"
#include "trace/generators.hh"
#include "trace/profiles.hh"
#include "trace/trace_file.hh"

namespace srs
{

/** Result of one simulation run. */
struct RunResult
{
    /** Sum of per-core IPCs over the measured window. */
    double aggregateIpc = 0.0;
    /** Per-core IPC, indexed by core id. */
    std::vector<double> coreIpc;
    /** Row swaps performed by the mitigation (AQUA: quarantine moves). */
    std::uint64_t swaps = 0;
    /** Immediate unswap operations (RRS-style restores). */
    std::uint64_t unswapSwaps = 0;
    /** Epoch-boundary place-backs plus lazy restores. */
    std::uint64_t placeBacks = 0;
    /** Activations that landed on not-yet-restored (latent) rows. */
    std::uint64_t latentActivations = 0;
    /** Hottest row's activation count in any single epoch. */
    std::uint64_t maxRowActivations = 0;
    /** Rows parked in the LLC pin buffer (Scale-SRS outliers). */
    std::uint64_t rowsPinned = 0;
    /**
     * Read-latency histogram (one sample per completed demand read,
     * in CPU cycles) — the source of the percentile columns, kept so
     * equivalence tests can compare whole distributions.  Rows parsed
     * back from a resume file carry only the percentiles below.
     */
    LatencyHistogram readLatency;
    /** p50/p99/p999 read latency (cycles; histogram bucket upper
     *  bounds — the CSV schema v4 tail-latency columns). */
    std::uint64_t p50Lat = 0;
    std::uint64_t p99Lat = 0;
    std::uint64_t p999Lat = 0;
    /** Completed demand reads behind the percentiles
     *  (readLatency.total() — the CSV schema v5 `lat_samples`
     *  column; survives a resume-file round trip). */
    std::uint64_t latSamples = 0;
};

/** Knobs of the experiment harness. */
struct ExperimentConfig
{
    /** CPU cycles to simulate per run (after warmup). */
    Cycle cycles = 3'000'000;
    /** Warmup cycles excluded implicitly (IPC uses the full window;
     *  warmup is kept small instead of tracked separately). */
    Cycle warmup = 0;
    /** Scaled-down refresh interval for tractable runs (default:
     *  1 ms at 3.2 GHz; thresholds stay unscaled — see DESIGN.md). */
    Cycle epochLen = 3'200'000;
    /** Cores per simulated system (the paper evaluates 8). */
    std::uint32_t numCores = 8;
    /** Trace/RIT base seed; equal seeds replay equal runs. */
    std::uint64_t seed = 0xBEEFULL;
    /** Run under the tick-per-cycle reference loop instead of the
     *  event-driven loop (A/B equivalence checks and the perf
     *  harness; results are identical either way). */
    bool referenceLoop = false;
    /** Worker threads for channel-parallel simulation inside one
     *  run (1 = serial; capped at the channel count; results are
     *  byte-identical at any value — see sim/system.hh). */
    std::uint32_t channelWorkers = 1;
};

/**
 * Build the SystemConfig for one (mitigation, trh, swapRate) point.
 *
 * @param exp      shared harness knobs (cores, epoch, seed)
 * @param kind     mitigation to wire (MitigationKind::None for the
 *                 unprotected baseline)
 * @param trh      Row Hammer threshold T_RH
 * @param swapRate swaps per T_SWAP window (the paper's rate knob)
 * @param tracker  aggressor tracker implementation
 * @param axes     system-variant overlay (page policy, DRAM timing
 *                 overrides); applied identically to protected and
 *                 baseline configurations so normalization compares
 *                 like with like
 * @return a SystemConfig ready for System construction
 */
SystemConfig makeSystemConfig(const ExperimentConfig &exp,
                              MitigationKind kind, std::uint32_t trh,
                              std::uint32_t swapRate,
                              TrackerKind tracker
                              = TrackerKind::MisraGries,
                              const SystemAxes &axes = {});

/**
 * Run one workload (same profile on every core, rate mode) on a
 * configured system.
 *
 * @param sysCfg  system under test (makeSystemConfig())
 * @param profile synthetic benchmark profile driving every core
 * @param exp     cycle budget, warmup and trace seed
 * @return aggregate statistics of the run
 */
RunResult runWorkload(const SystemConfig &sysCfg,
                      const WorkloadProfile &profile,
                      const ExperimentConfig &exp);

/**
 * Run a MIX workload (per-core profiles).
 *
 * @param sysCfg  system under test
 * @param perCore one profile per core; size must equal
 *                sysCfg.numCores
 * @param exp     cycle budget, warmup and trace seed
 * @return aggregate statistics of the run
 */
RunResult runWorkloadMix(const SystemConfig &sysCfg,
                         const std::vector<WorkloadProfile> &perCore,
                         const ExperimentConfig &exp);

/**
 * Replay recorded USIMM trace(s) (the paper's Pin-trace workflow).
 * Each core loops its trace like USIMM rate mode; the parsed records
 * are shared, not copied, so N cores replaying one file reference a
 * single image (loadTraceRecords()).
 *
 * @param sysCfg  system under test
 * @param perCore one parsed trace per core, or a single entry
 *                replayed by every core
 * @param exp     cycle budget and warmup (the trace itself is the
 *                access stream, so exp.seed does not reshape it)
 * @return aggregate statistics of the run
 */
RunResult runWorkloadTrace(const SystemConfig &sysCfg,
                           const std::vector<SharedTraceRecords> &perCore,
                           const ExperimentConfig &exp);

/**
 * Run a generator-backed workload (Zipf / hotspot / blend — see
 * trace/generators.hh): every core drives one GeneratorTrace of the
 * same spec, decorrelated per core exactly like SyntheticTrace.
 *
 * @param sysCfg system under test
 * @param gen    generator identity (parsed from its spelling)
 * @param exp    cycle budget, warmup and trace seed
 * @return aggregate statistics of the run
 */
RunResult runWorkloadGenerator(const SystemConfig &sysCfg,
                               const GeneratorSpec &gen,
                               const ExperimentConfig &exp);

/**
 * Normalized performance of @p kind vs. the unprotected baseline for
 * one workload: IPC(kind) / IPC(baseline).  Both runs replay the
 * same trace seed.
 *
 * @return the IPC ratio, or 1.0 when the baseline IPC is zero
 */
double normalizedPerf(const ExperimentConfig &exp, MitigationKind kind,
                      std::uint32_t trh, std::uint32_t swapRate,
                      const WorkloadProfile &profile,
                      TrackerKind tracker = TrackerKind::MisraGries);

/**
 * Geometric mean, the figure-of-merit for suite averages.
 *
 * @param values strictly positive samples (normalized IPCs)
 * @return the geometric mean, or 0.0 for an empty input
 */
double geoMean(const std::vector<double> &values);

} // namespace srs

#endif // SRS_SIM_EXPERIMENT_HH
