/**
 * @file
 * Experiment harness: builds Systems from workload profiles, runs
 * them for a fixed cycle budget, and reports normalized performance
 * against the unprotected baseline — the methodology behind every
 * performance figure (4, 12, 14, 15, 16).
 */

#ifndef SRS_SIM_EXPERIMENT_HH
#define SRS_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "trace/profiles.hh"

namespace srs
{

/** Result of one simulation run. */
struct RunResult
{
    double aggregateIpc = 0.0;
    std::vector<double> coreIpc;
    std::uint64_t swaps = 0;
    std::uint64_t unswapSwaps = 0;
    std::uint64_t placeBacks = 0;
    std::uint64_t latentActivations = 0;
    std::uint64_t maxRowActivations = 0;
    std::uint64_t rowsPinned = 0;
};

/** Knobs of the experiment harness. */
struct ExperimentConfig
{
    /** CPU cycles to simulate per run (after warmup). */
    Cycle cycles = 3'000'000;
    /** Warmup cycles excluded implicitly (IPC uses the full window;
     *  warmup is kept small instead of tracked separately). */
    Cycle warmup = 0;
    /** Scaled-down refresh interval for tractable runs (default:
     *  1 ms at 3.2 GHz; thresholds stay unscaled — see DESIGN.md). */
    Cycle epochLen = 3'200'000;
    std::uint32_t numCores = 8;
    std::uint64_t seed = 0xBEEFULL;
};

/** Build the SystemConfig for one (mitigation, trh, swapRate) point. */
SystemConfig makeSystemConfig(const ExperimentConfig &exp,
                              MitigationKind kind, std::uint32_t trh,
                              std::uint32_t swapRate,
                              TrackerKind tracker
                              = TrackerKind::MisraGries);

/**
 * Run one workload (same profile on every core, rate mode) on a
 * configured system.
 */
RunResult runWorkload(const SystemConfig &sysCfg,
                      const WorkloadProfile &profile,
                      const ExperimentConfig &exp);

/** Run a MIX workload (per-core profiles). */
RunResult runWorkloadMix(const SystemConfig &sysCfg,
                         const std::vector<WorkloadProfile> &perCore,
                         const ExperimentConfig &exp);

/**
 * Normalized performance of @p kind vs. the unprotected baseline for
 * one workload: IPC(kind) / IPC(baseline).
 */
double normalizedPerf(const ExperimentConfig &exp, MitigationKind kind,
                      std::uint32_t trh, std::uint32_t swapRate,
                      const WorkloadProfile &profile,
                      TrackerKind tracker = TrackerKind::MisraGries);

/** Geometric mean, the figure-of-merit for suite averages. */
double geoMean(const std::vector<double> &values);

} // namespace srs

#endif // SRS_SIM_EXPERIMENT_HH
