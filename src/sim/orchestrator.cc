#include "sim/orchestrator.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>

#if !defined(_WIN32)
#include <sys/wait.h>
#endif

#include "common/logging.hh"
#include "common/options.hh"
#include "common/subprocess.hh"
#include "common/thread_pool.hh"
#include "sim/system.hh"

namespace srs
{

namespace
{

constexpr std::uint64_t kManifestVersion = 6;

std::string
shardKey(std::size_t index, const char *field)
{
    return "shard" + std::to_string(index) + "." + field;
}

/**
 * Read one shard CSV, validate it against @p shard / @p exp, and
 * append its data rows (shard-local numbering, no newlines) to
 * @p rows when given.  Returns an empty string on success, else the
 * reason the shard must be rejected.
 */
std::string
loadShardRows(const ShardSpec &shard, const ExperimentConfig &exp,
              const std::string &path, std::vector<std::string> *rows)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open shard CSV '" + path + "'";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (text.empty())
        return "shard CSV '" + path + "' is empty";
    if (text.back() != '\n') {
        return "shard CSV '" + path
               + "' is torn: no final newline (writer died mid-row)";
    }

    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start < text.size()) {
        const auto nl = text.find('\n', start);
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    if (lines.empty() || lines.front() != SweepRunner::csvHeader()) {
        if (!lines.empty()
            && lines.front().rfind("index,workload,", 0) == 0) {
            return "shard CSV '" + path + "' carries the sweep CSV "
                   "schema v1 header (no workload_spec/axes "
                   "columns); this build merges schema v6 only — "
                   "re-run the shard (docs/sweep-format.md)";
        }
        if (!lines.empty()
            && lines.front().find(",policy,") != std::string::npos
            && lines.front().rfind("index,workload_spec,", 0) == 0) {
            return "shard CSV '" + path + "' carries the sweep CSV "
                   "schema v2 header (`policy` identity column, no "
                   "DRAM preset/timing axes); this build merges "
                   "schema v6 only — re-run the shard "
                   "(docs/sweep-format.md)";
        }
        if (!lines.empty()
            && lines.front().rfind("index,workload_spec,", 0) == 0
            && lines.front().find(",p50_lat") == std::string::npos) {
            return "shard CSV '" + path + "' carries the sweep CSV "
                   "schema v3 header (no p50_lat/p99_lat/p999_lat "
                   "tail-latency columns); this build merges schema "
                   "v6 only — re-run the shard (docs/sweep-format.md)";
        }
        if (!lines.empty()
            && lines.front().rfind("index,workload_spec,", 0) == 0
            && lines.front().find(",lat_samples")
                   == std::string::npos) {
            return "shard CSV '" + path + "' carries the sweep CSV "
                   "schema v4 header (no lat_samples column; it "
                   "predates the DRAM-organization axis); this build "
                   "merges schema v6 only — re-run the shard "
                   "(docs/sweep-format.md)";
        }
        if (!lines.empty()
            && lines.front().rfind("index,workload_spec,", 0) == 0
            && lines.front().find(",iterations")
                   == std::string::npos) {
            return "shard CSV '" + path + "' carries the sweep CSV "
                   "schema v5 header (no iterations/censored/"
                   "p_break/ci_lo/ci_hi Monte-Carlo confidence "
                   "columns); this build merges schema v6 only — "
                   "re-run the shard (docs/sweep-format.md)";
        }
        return "shard CSV '" + path + "' does not start with this "
               "build's schema v6 sweep CSV header";
    }
    if (lines.size() - 1 != shard.cells) {
        return "shard CSV '" + path + "' has "
               + std::to_string(lines.size() - 1) + " data rows, "
               "manifest expects " + std::to_string(shard.cells);
    }

    const std::vector<SweepCell> cells = shard.grid.expand();
    if (cells.size() != shard.cells) {
        return "manifest is inconsistent: shard grid expands to "
               + std::to_string(cells.size()) + " cells, not "
               + std::to_string(shard.cells);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string &row = lines[i + 1];
        const std::string expected = SweepRunner::identityPrefix(
            i, cells[i],
            SweepRunner::cellSeed(exp.seed,
                                  cells[i].workload.label()));
        if (row.compare(0, expected.size(), expected) != 0) {
            return "shard CSV '" + path + "' row " + std::to_string(i)
                   + " does not match the manifest's cell identity"
                     "\n  row:      " + row
                   + "\n  expected: " + expected + "...";
        }
        const auto columns = static_cast<std::size_t>(
            std::count(row.begin(), row.end(), ',') + 1);
        if (columns != SweepRunner::kRowColumns
            || row.back() == ',') {
            return "shard CSV '" + path + "' row " + std::to_string(i)
                   + " does not have "
                   + std::to_string(SweepRunner::kRowColumns)
                   + " fields";
        }
        if (rows)
            rows->push_back(row);
    }
    return "";
}

/**
 * Stitch pre-validated shard rows (loadShardRows output, one vector
 * per shard) into one global CSV on @p out, rewriting each
 * shard-local index to the global cell index; every byte after the
 * first comma passes through untouched.
 */
void
stitchRows(const ShardManifest &manifest,
           const std::vector<std::vector<std::string>> &rowsPerShard,
           std::ostream &out)
{
    out << SweepRunner::csvHeader() << '\n';
    std::size_t global = 0;
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        if (global != manifest.shards[k].offset) {
            fatal("merge: shard ", k, " offset ",
                  manifest.shards[k].offset, " does not follow the "
                  "previous shard (", global, " cells merged so "
                  "far)");
        }
        for (const std::string &row : rowsPerShard[k]) {
            const auto comma = row.find(',');
            out << global << row.substr(comma) << '\n';
            ++global;
        }
    }
    if (!out.flush())
        fatal("merge: error writing merged CSV");
}

} // namespace

std::size_t
ShardManifest::totalCells() const
{
    std::size_t total = 0;
    for (const ShardSpec &shard : shards)
        total += shard.cells;
    return total;
}

ShardManifest
planShards(const SweepGrid &grid, const ExperimentConfig &exp,
           std::size_t shardCount)
{
    const std::size_t outer = grid.outerCount();
    const std::size_t inner = grid.innerCells();
    if (outer == 0 || inner == 0) {
        fatal("cannot shard an empty sweep grid: need at least one "
              "workload or MIX point, page policy, mitigation, trh "
              "and rate");
    }
    if (shardCount == 0)
        fatal("--shards must be at least 1");
    const std::size_t count = std::min(shardCount, outer);

    ShardManifest manifest;
    manifest.grid = grid;
    manifest.exp = exp;
    for (std::size_t k = 0; k < count; ++k) {
        // Balanced contiguous partition of the outer axis: shard k
        // covers outer entries [k*outer/count, (k+1)*outer/count).
        const std::size_t begin = k * outer / count;
        const std::size_t end = (k + 1) * outer / count;
        ShardSpec shard;
        shard.grid = grid;
        shard.grid.workloads.clear();
        shard.grid.mixCount = 0;
        shard.grid.mixBase = 0;
        for (std::size_t o = begin; o < end; ++o) {
            if (o < grid.workloads.size()) {
                shard.grid.workloads.push_back(grid.workloads[o]);
            } else {
                const std::uint32_t mix = static_cast<std::uint32_t>(
                    o - grid.workloads.size());
                if (shard.grid.mixCount == 0)
                    shard.grid.mixBase = grid.mixBase + mix;
                ++shard.grid.mixCount;
            }
        }
        shard.offset = begin * inner;
        shard.cells = (end - begin) * inner;
        shard.csv = "shard" + std::to_string(k) + ".csv";
        manifest.shards.push_back(std::move(shard));
    }
    return manifest;
}

void
writeManifest(const ShardManifest &manifest, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        fatal("cannot open manifest '", path, "' for writing");
    out << serializeManifest(manifest);
    if (!out.flush())
        fatal("error writing manifest '", path, "'");
}

std::string
serializeManifest(const ShardManifest &manifest)
{
    const SweepGrid &grid = manifest.grid;
    std::ostringstream out;
    out << "# srs_sim shard manifest (docs/sweep-format.md)\n"
        << "version=" << kManifestVersion << '\n'
        << "workloads=" << joinSpecList(grid.workloads) << '\n';
    std::vector<std::string> mitigations;
    for (const MitigationKind kind : grid.mitigations)
        mitigations.push_back(mitigationKindName(kind));
    std::vector<std::string> policies;
    for (const PagePolicy policy : grid.pagePolicies)
        policies.push_back(pagePolicyName(policy));
    std::vector<std::string> presets;
    for (const DramPreset preset : grid.presets)
        presets.push_back(dramPresetName(preset));
    out << "mitigations=" << joinList(mitigations) << '\n'
        << "policies=" << joinList(policies) << '\n'
        << "presets=" << joinList(presets) << '\n'
        << "orgs=" << joinList(grid.orgs) << '\n'
        << "trc=" << joinUint32List(grid.tRcOverrides) << '\n'
        << "trcd=" << joinUint32List(grid.tRcdOverrides) << '\n'
        << "trp=" << joinUint32List(grid.tRpOverrides) << '\n'
        << "trefi=" << joinUint32List(grid.tRefiOverrides) << '\n'
        << "trfc=" << joinUint32List(grid.tRfcOverrides) << '\n'
        << "trh=" << joinUint32List(grid.trhs) << '\n'
        << "rates=" << joinUint32List(grid.swapRates) << '\n'
        << "tracker=" << trackerKindName(grid.tracker) << '\n'
        << "mix=" << grid.mixCount << '\n'
        << "mix_base=" << grid.mixBase << '\n'
        << "seed=" << manifest.exp.seed << '\n'
        << "cycles=" << manifest.exp.cycles << '\n'
        << "epoch=" << manifest.exp.epochLen << '\n'
        << "cores=" << manifest.exp.numCores << '\n'
        << "shards=" << manifest.shards.size() << '\n';
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        const ShardSpec &shard = manifest.shards[k];
        out << shardKey(k, "workloads") << '='
            << joinSpecList(shard.grid.workloads) << '\n'
            << shardKey(k, "mix") << '=' << shard.grid.mixCount << '\n'
            << shardKey(k, "mix_base") << '=' << shard.grid.mixBase
            << '\n'
            << shardKey(k, "offset") << '=' << shard.offset << '\n'
            << shardKey(k, "cells") << '=' << shard.cells << '\n'
            << shardKey(k, "csv") << '=' << shard.csv << '\n';
    }
    return out.str();
}

ShardManifest
loadManifest(const std::string &path)
{
    const Options opts = Options::fromFile(path);
    const std::uint64_t version = opts.getUint("version", 0);
    if (version == 1) {
        fatal("manifest '", path, "': schema version 1 (pre-"
              "WorkloadSpec, no policies/trc axes); this build reads "
              "manifest version ", kManifestVersion, " only — "
              "re-plan the orchestration with 'srs_sim orchestrate' "
              "(docs/sweep-format.md)");
    }
    if (version == 2) {
        fatal("manifest '", path, "': schema version 2 (no DRAM "
              "preset or tRCD/tRP/tREFI/tRFC axes); this build reads "
              "manifest version ", kManifestVersion, " only — "
              "re-plan the orchestration with 'srs_sim orchestrate' "
              "(docs/sweep-format.md)");
    }
    if (version == 3) {
        fatal("manifest '", path, "': schema version 3 (its shards "
              "emit schema-v3 CSVs without the p50_lat/p99_lat/"
              "p999_lat tail-latency columns, and predate generator "
              "workload spellings); this build reads manifest "
              "version ", kManifestVersion, " only — re-plan the "
              "orchestration with 'srs_sim orchestrate' "
              "(docs/sweep-format.md)");
    }
    if (version == 4) {
        fatal("manifest '", path, "': schema version 4 (no orgs "
              "axis; its shards emit schema-v4 CSVs without the "
              "lat_samples column); this build reads manifest "
              "version ", kManifestVersion, " only — re-plan the "
              "orchestration with 'srs_sim orchestrate' "
              "(docs/sweep-format.md)");
    }
    if (version == 5) {
        fatal("manifest '", path, "': schema version 5 (its shards "
              "emit schema-v5 CSVs without the iterations/censored/"
              "p_break/ci_lo/ci_hi Monte-Carlo confidence columns); "
              "this build reads manifest version ", kManifestVersion,
              " only — re-plan the orchestration with 'srs_sim "
              "orchestrate' (docs/sweep-format.md)");
    }
    if (version != kManifestVersion) {
        fatal("manifest '", path, "': unsupported version ", version,
              " (this build reads version ", kManifestVersion, ")");
    }

    ShardManifest manifest;
    manifest.exp.seed = opts.getUint("seed", manifest.exp.seed);
    manifest.exp.cycles = opts.getUint("cycles", manifest.exp.cycles);
    manifest.exp.epochLen =
        opts.getUint("epoch", manifest.exp.epochLen);
    manifest.exp.numCores = static_cast<std::uint32_t>(
        opts.getUint("cores", manifest.exp.numCores));

    SweepGrid &grid = manifest.grid;
    grid.workloads = splitSpecList(opts.getString("workloads", ""),
                                   manifest.exp.numCores);
    for (const std::string &name :
         splitList(opts.getString("mitigations", "")))
        grid.mitigations.push_back(mitigationKindFromName(name));
    grid.pagePolicies.clear();
    for (const std::string &name :
         splitList(opts.getString("policies", "closed")))
        grid.pagePolicies.push_back(pagePolicyFromName(name));
    grid.presets.clear();
    for (const std::string &name :
         splitList(opts.getString("presets", "ddr4")))
        grid.presets.push_back(dramPresetFromName(name));
    grid.orgs = splitList(opts.getString("orgs", "2x1x16"));
    for (const std::string &org : grid.orgs) {
        // Surface a malformed org spelling at load time, with the
        // manifest named, instead of deep inside the first shard run.
        SystemAxes probe;
        dramOrgFromName(org, probe);
    }
    grid.tRcOverrides =
        splitUint32List(opts.getString("trc", "0"), "manifest: trc");
    grid.tRcdOverrides = splitUint32List(
        opts.getString("trcd", "0"), "manifest: trcd");
    grid.tRpOverrides =
        splitUint32List(opts.getString("trp", "0"), "manifest: trp");
    grid.tRefiOverrides = splitUint32List(
        opts.getString("trefi", "0"), "manifest: trefi");
    grid.tRfcOverrides = splitUint32List(
        opts.getString("trfc", "0"), "manifest: trfc");
    grid.trhs = splitUint32List(opts.getString("trh", ""), "manifest: trh");
    grid.swapRates = splitUint32List(opts.getString("rates", ""), "manifest: rates");
    grid.tracker =
        trackerKindFromName(opts.getString("tracker", "misra-gries"));
    grid.mixCount =
        static_cast<std::uint32_t>(opts.getUint("mix", 0));
    grid.mixBase =
        static_cast<std::uint32_t>(opts.getUint("mix_base", 0));
    grid.mixCores = manifest.exp.numCores;

    const std::uint64_t shardCount = opts.getUint("shards", 0);
    if (shardCount == 0)
        fatal("manifest '", path, "': no shards");

    // Rebuild each shard slice and check that, in order, the slices
    // tile the full grid: workload lists concatenate to the global
    // list, MIX ranges cover mixBase..mixBase+mixCount contiguously,
    // and offsets/cell counts line up with the expansion order.
    const std::size_t inner = grid.innerCells();
    std::vector<WorkloadSpec> seenWorkloads;
    std::uint32_t nextMix = grid.mixBase;
    std::size_t nextOffset = 0;
    for (std::size_t k = 0; k < shardCount; ++k) {
        ShardSpec shard;
        shard.grid = grid;
        shard.grid.workloads = splitSpecList(
            opts.getString(shardKey(k, "workloads"), ""),
            manifest.exp.numCores);
        shard.grid.mixCount = static_cast<std::uint32_t>(
            opts.getUint(shardKey(k, "mix"), 0));
        shard.grid.mixBase = static_cast<std::uint32_t>(
            opts.getUint(shardKey(k, "mix_base"), 0));
        shard.offset = opts.getUint(shardKey(k, "offset"), 0);
        shard.cells = opts.getUint(shardKey(k, "cells"), 0);
        shard.csv = opts.getString(shardKey(k, "csv"),
                                   "shard" + std::to_string(k)
                                       + ".csv");

        if (shard.grid.workloads.empty() && shard.grid.mixCount == 0)
            fatal("manifest '", path, "': shard ", k, " is empty");
        if (!shard.grid.workloads.empty() && nextMix != grid.mixBase) {
            fatal("manifest '", path, "': shard ", k, " names "
                  "workloads after an earlier shard started the MIX "
                  "range");
        }
        for (const WorkloadSpec &w : shard.grid.workloads)
            seenWorkloads.push_back(w);
        if (shard.grid.mixCount > 0
            && shard.grid.mixBase != nextMix) {
            fatal("manifest '", path, "': shard ", k, " MIX range "
                  "starts at ", shard.grid.mixBase, ", expected ",
                  nextMix);
        }
        nextMix += shard.grid.mixCount;
        if (shard.offset != nextOffset) {
            fatal("manifest '", path, "': shard ", k, " offset ",
                  shard.offset, " does not follow the previous "
                  "shard (expected ", nextOffset, ")");
        }
        const std::size_t expanded =
            shard.grid.outerCount() * inner;
        if (shard.cells != expanded) {
            fatal("manifest '", path, "': shard ", k, " claims ",
                  shard.cells, " cells but its grid slice expands "
                  "to ", expanded);
        }
        nextOffset += shard.cells;
        manifest.shards.push_back(std::move(shard));
    }
    if (seenWorkloads != grid.workloads
        || nextMix != grid.mixBase + grid.mixCount) {
        fatal("manifest '", path, "': shard slices do not tile the "
              "full grid's workload/MIX axes");
    }
    if (nextOffset != grid.outerCount() * inner) {
        fatal("manifest '", path, "': shard cells sum to ",
              nextOffset, ", full grid has ",
              grid.outerCount() * inner);
    }
    opts.rejectUnknown();
    return manifest;
}

std::string
validateShardCsv(const ShardSpec &shard, const ExperimentConfig &exp,
                 const std::string &path)
{
    return loadShardRows(shard, exp, path, nullptr);
}

void
mergeShards(const ShardManifest &manifest, const std::string &dir,
            std::ostream &out)
{
    std::vector<std::vector<std::string>> rowsPerShard(
        manifest.shards.size());
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        const ShardSpec &shard = manifest.shards[k];
        const std::string path =
            dir.empty() ? shard.csv : dir + "/" + shard.csv;
        const std::string err = loadShardRows(
            shard, manifest.exp, path, &rowsPerShard[k]);
        if (!err.empty())
            fatal("merge: shard ", k, ": ", err);
    }
    stitchRows(manifest, rowsPerShard, out);
}

Orchestrator::Orchestrator(ShardManifest manifest, Config config)
    : manifest_(std::move(manifest)), config_(std::move(config))
{
    if (config_.simPath.empty())
        fatal("orchestrator: no srs_sim binary path configured");
    if (config_.dir.empty())
        fatal("orchestrator: no shard directory configured");
}

std::vector<std::string>
Orchestrator::shardCommand(std::size_t index) const
{
    // A previous attempt's checkpoint (or torn CSV) seeds a resume,
    // so a killed shard never recomputes its finished cells.
    const std::string csv =
        config_.dir + "/" + manifest_.shards[index].csv;
    const std::string journal = csv + ".journal";
    std::string resume;
    if (std::filesystem::exists(journal))
        resume = journal;
    else if (std::filesystem::exists(csv))
        resume = csv;
    return shardCommandLine(manifest_, index, config_.simPath,
                            config_.dir, config_.shardThreads,
                            resume);
}

void
Orchestrator::prepareDir()
{
    prepareShardDir(manifest_, config_.dir);
}

std::vector<std::string>
shardCommandLine(const ShardManifest &manifest, std::size_t index,
                 const std::string &simPath, const std::string &dir,
                 std::size_t shardThreads, const std::string &resume)
{
    const ShardSpec &shard = manifest.shards[index];
    const SweepGrid &grid = shard.grid;
    const std::string csv = dir + "/" + shard.csv;
    const std::string journal = csv + ".journal";

    std::vector<std::string> cmd;
    cmd.push_back(simPath);
    cmd.push_back("sweep");
    cmd.push_back("--workloads=" + joinSpecList(grid.workloads));
    std::vector<std::string> mitigations;
    for (const MitigationKind kind : grid.mitigations)
        mitigations.push_back(mitigationKindName(kind));
    cmd.push_back("--mitigations=" + joinList(mitigations));
    std::vector<std::string> policies;
    for (const PagePolicy policy : grid.pagePolicies)
        policies.push_back(pagePolicyName(policy));
    cmd.push_back("--page-policy=" + joinList(policies));
    std::vector<std::string> presets;
    for (const DramPreset preset : grid.presets)
        presets.push_back(dramPresetName(preset));
    cmd.push_back("--preset=" + joinList(presets));
    cmd.push_back("--org=" + joinList(grid.orgs));
    cmd.push_back("--trc=" + joinUint32List(grid.tRcOverrides));
    cmd.push_back("--trcd=" + joinUint32List(grid.tRcdOverrides));
    cmd.push_back("--trp=" + joinUint32List(grid.tRpOverrides));
    cmd.push_back("--trefi=" + joinUint32List(grid.tRefiOverrides));
    cmd.push_back("--trfc=" + joinUint32List(grid.tRfcOverrides));
    cmd.push_back("--trh=" + joinUint32List(grid.trhs));
    cmd.push_back("--rates=" + joinUint32List(grid.swapRates));
    cmd.push_back("--tracker="
                  + std::string(trackerKindName(grid.tracker)));
    if (grid.mixCount > 0) {
        cmd.push_back("--mix=" + std::to_string(grid.mixCount));
        cmd.push_back("--mix-base=" + std::to_string(grid.mixBase));
    }
    cmd.push_back("--cycles=" + std::to_string(manifest.exp.cycles));
    cmd.push_back("--epoch=" + std::to_string(manifest.exp.epochLen));
    cmd.push_back("--seed=" + std::to_string(manifest.exp.seed));
    cmd.push_back("--threads=" + std::to_string(shardThreads));
    cmd.push_back("--out=" + csv);
    cmd.push_back("--journal=" + journal);
    if (!resume.empty())
        cmd.push_back("--resume=" + resume);
    return cmd;
}

void
prepareShardDir(const ShardManifest &manifest, const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        fatal("cannot create shard directory '", dir, "': ",
              ec.message());
    }

    // The manifest is the shard directory's identity: reusing a
    // directory that belongs to a *different* orchestration must be
    // an error, not a silent mix of incompatible checkpoints.
    const std::string manifestPath = dir + "/manifest";
    const std::string serialized = serializeManifest(manifest);
    if (std::filesystem::exists(manifestPath)) {
        std::ifstream in(manifestPath, std::ios::binary);
        std::ostringstream existing;
        existing << in.rdbuf();
        if (existing.str() != serialized) {
            fatal("'", manifestPath, "' describes a different "
                  "orchestration (grid, seed or shard count "
                  "changed); use a fresh --dir");
        }
    } else {
        writeManifest(manifest, manifestPath);
    }
}

std::string
lastLogLine(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::string line, last;
    while (std::getline(in, line)) {
        while (!line.empty()
               && (line.back() == '\r' || line.back() == ' '
                   || line.back() == '\t'))
            line.pop_back();
        if (!line.empty())
            last = line;
    }
    return last;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
writeShardSummary(std::ostream &out, const ShardManifest &manifest,
                  const std::vector<ShardRunState> &states,
                  const std::string &dir)
{
    out << "shard summary:\n"
           "  shard     cells  launches  restarts  status  log\n";
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        const ShardRunState state =
            k < states.size() ? states[k] : ShardRunState{};
        // A completed shard that never needed a launch this run was
        // picked up from a previous attempt's validated CSV.
        const char *status = state.done
                                 ? (state.launches == 0 ? "cached"
                                                        : "done")
                                 : "FAILED";
        char row[64];
        std::snprintf(row, sizeof(row), "  %5zu  %8zu  %8zu  %8zu  ",
                      k, manifest.shards[k].cells, state.launches,
                      state.restarts);
        out << row << status << (std::strlen(status) < 6 ? "    " : "  ")
            << dir << "/shard" << k << ".log\n";
        if (!state.lastError.empty())
            out << "         last error: " << state.lastError << '\n';
    }
    out.flush();
}

void
Orchestrator::writePlan(std::ostream &out, bool json)
{
    prepareDir();
    const std::string manifestPath = config_.dir + "/manifest";
    if (!json) {
        out << "# manifest: " << manifestPath << '\n'
            << "# run each shard (any machine, same binary), collect "
               "the CSVs next to the manifest,\n"
            << "# then: " << config_.simPath << " merge --manifest="
            << manifestPath << '\n';
        for (std::size_t k = 0; k < manifest_.shards.size(); ++k) {
            const std::vector<std::string> cmd = shardCommand(k);
            for (std::size_t a = 0; a < cmd.size(); ++a)
                out << (a > 0 ? " " : "") << cmd[a];
            out << '\n';
        }
        if (!out.flush())
            fatal("orchestrator: error writing the shard plan");
        return;
    }

    const auto argvJson = [](const std::vector<std::string> &cmd) {
        std::string joined = "[";
        for (std::size_t a = 0; a < cmd.size(); ++a) {
            if (a > 0)
                joined += ", ";
            joined += jsonQuote(cmd[a]);
        }
        return joined + "]";
    };
    out << "{\n"
        << "  \"manifest\": " << jsonQuote(manifestPath) << ",\n"
        << "  \"version\": " << kManifestVersion << ",\n"
        << "  \"cells\": " << manifest_.totalCells() << ",\n"
        << "  \"merge\": "
        << argvJson({config_.simPath, "merge",
                     "--manifest=" + manifestPath})
        << ",\n"
        << "  \"shards\": [\n";
    for (std::size_t k = 0; k < manifest_.shards.size(); ++k) {
        const ShardSpec &shard = manifest_.shards[k];
        const std::string csv = config_.dir + "/" + shard.csv;
        out << "    {\"index\": " << k << ", \"offset\": "
            << shard.offset << ", \"cells\": " << shard.cells
            << ", \"csv\": " << jsonQuote(csv) << ", \"journal\": "
            << jsonQuote(csv + ".journal") << ", \"log\": "
            << jsonQuote(config_.dir + "/shard" + std::to_string(k)
                         + ".log")
            << ", \"argv\": " << argvJson(shardCommand(k)) << '}'
            << (k + 1 < manifest_.shards.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    if (!out.flush())
        fatal("orchestrator: error writing the shard plan");
}

#if !defined(_WIN32)

long
Orchestrator::launchShard(std::size_t index)
{
    // spawnProcess sets PDEATHSIG on Linux: a SIGKILLed supervisor
    // must not leave orphan shards racing a later re-orchestration
    // for the same CSV and journal files.
    return spawnProcess(shardCommand(index),
                        config_.dir + "/shard"
                            + std::to_string(index) + ".log");
}

void
Orchestrator::run(std::ostream &mergedOut)
{
    prepareDir();

    const std::size_t jobs = ThreadPool::resolveThreads(config_.jobs);
    std::deque<std::size_t> pending;
    for (std::size_t k = 0; k < manifest_.shards.size(); ++k)
        pending.push_back(k);
    states_.assign(manifest_.shards.size(), ShardRunState{});
    std::map<long, std::size_t> running;

    // Each shard CSV is read and validated exactly once, at the
    // moment it is found complete; the surviving rows feed the
    // final stitch directly.
    std::vector<std::vector<std::string>> rowsPerShard(
        manifest_.shards.size());
    const auto validateCollect = [&](std::size_t k) {
        rowsPerShard[k].clear();
        return loadShardRows(manifest_.shards[k], manifest_.exp,
                             config_.dir + "/"
                                 + manifest_.shards[k].csv,
                             &rowsPerShard[k]);
    };

    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < jobs) {
            const std::size_t k = pending.front();
            pending.pop_front();
            const ShardSpec &shard = manifest_.shards[k];
            if (validateCollect(k).empty()) {
                std::fprintf(stderr,
                             "orchestrate: shard %zu already "
                             "complete (%zu cells)\n",
                             k, shard.cells);
                ++skipped_;
                states_[k].done = true;
                continue;
            }
            const long pid = launchShard(k);
            ++launches_;
            ++states_[k].launches;
            std::fprintf(stderr,
                         "orchestrate: shard %zu of %zu launched "
                         "(pid %ld, %zu cells%s)\n",
                         k, manifest_.shards.size(), pid,
                         shard.cells,
                         states_[k].restarts > 0 ? ", resumed" : "");
            running.emplace(pid, k);
        }
        if (running.empty())
            break; // every remaining shard was already complete

        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0)
            fatal("orchestrator: waitpid failed: ",
                  std::strerror(errno));
        const auto it = running.find(pid);
        if (it == running.end())
            continue; // not one of our shards
        const std::size_t k = it->second;
        running.erase(it);

        std::string err;
        if (processExitedCleanly(status))
            err = validateCollect(k);
        else
            err = describeProcessExit(status);
        if (err.empty()) {
            std::fprintf(stderr, "orchestrate: shard %zu done\n", k);
            states_[k].done = true;
            continue;
        }
        states_[k].lastError = err;
        if (states_[k].launches > config_.retries) {
            // Reap the other in-flight shards before bailing out —
            // orphans would keep writing into the shard directory
            // and race a re-orchestration.  Their journals survive,
            // so no completed cell is lost.
            for (const auto &[otherPid, otherShard] : running) {
                (void)otherShard;
                killProcess(otherPid);
            }
            for (const auto &[otherPid, otherShard] : running) {
                (void)otherShard;
                waitProcess(otherPid);
            }
            const std::string log = config_.dir + "/shard"
                                    + std::to_string(k) + ".log";
            // Surface the child's own last words (usually its fatal
            // message) instead of leaving users to grep the log.
            const std::string tail = lastLogLine(log);
            writeShardSummary(std::cerr, manifest_, states_,
                              config_.dir);
            fatal("orchestrator: shard ", k, " failed after ",
                  states_[k].launches, " attempt(s): ", err,
                  tail.empty() ? ""
                               : "\n  shard's last log line: " + tail,
                  "\n  (see ", log, ")");
        }
        ++states_[k].restarts;
        std::fprintf(stderr,
                     "orchestrate: shard %zu failed (%s), "
                     "relaunching from its journal (attempt "
                     "%zu/%zu)\n",
                     k, err.c_str(), states_[k].launches + 1,
                     config_.retries + 1);
        pending.push_back(k);
    }

    writeShardSummary(std::cerr, manifest_, states_, config_.dir);
    stitchRows(manifest_, rowsPerShard, mergedOut);
}

#else // _WIN32

long
Orchestrator::launchShard(std::size_t)
{
    fatal("srs_sim orchestrate requires a POSIX platform (fork/"
          "waitpid); run the shards from the manifest by hand and "
          "stitch with 'srs_sim merge'");
}

void
Orchestrator::run(std::ostream &)
{
    launchShard(0);
}

#endif

} // namespace srs
