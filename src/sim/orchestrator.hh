/**
 * @file
 * Multi-process sweep orchestration: shard planning, the shard
 * manifest, byte-exact CSV stitching, and child-process supervision.
 *
 * SweepRunner (sim/sweep.hh) scales a grid across the threads of one
 * process; this layer scales it across *processes* — on one machine
 * (`srs_sim orchestrate`) or many (`srs_sim sweep` per shard plus
 * `srs_sim merge`) — without giving up the engine's byte-identity
 * guarantee.  The pieces:
 *
 *  - planShards() splits a SweepGrid along the outer (workload) axis
 *    into balanced, contiguous shard grids.  MIX points are split
 *    like named workloads (a shard can cover mix3..mix5 via
 *    SweepGrid::mixBase), so paper-scale MIX campaigns shard too.
 *  - ShardManifest is the on-disk contract between the splitter, the
 *    shard runs, and the merge: the full grid, the experiment knobs
 *    (seed/cycles/epoch/cores), and each shard's grid slice, global
 *    index offset, expected cell count, and CSV path.  Every shard
 *    row's identity prefix is recomputable from it, which is what
 *    lets the merge reject foreign or torn shards byte-exactly
 *    (docs/sweep-format.md specs the file format).
 *  - mergeShards() validates every shard CSV against the manifest
 *    (header, row count, newline termination, per-row identity
 *    prefix) and stitches them into one global CSV, renumbering the
 *    per-shard indices — the output is byte-identical to a
 *    single-process `srs_sim sweep` of the full grid.
 *  - Orchestrator forks `srs_sim sweep` children (POSIX), at most
 *    `jobs` at a time, restarts crashed or killed shards from their
 *    checkpoint journals (the engine's --resume machinery), and
 *    merges on completion.  Re-running a killed orchestration
 *    resumes every partial shard instead of starting over.
 */

#ifndef SRS_SIM_ORCHESTRATOR_HH
#define SRS_SIM_ORCHESTRATOR_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace srs
{

/** One shard of an orchestrated sweep: a contiguous grid slice. */
struct ShardSpec
{
    /**
     * The shard's own sweep grid: a contiguous run of the full
     * grid's outer entries (named workloads and/or a MIX sub-range
     * via mixBase/mixCount) crossed with the same inner axes.
     * Running it with `srs_sim sweep` reproduces the full grid's
     * rows for those entries exactly — per-cell seeds depend only on
     * the workload label, never on the surrounding grid.
     */
    SweepGrid grid;
    /** Global cell index of this shard's first cell. */
    std::size_t offset = 0;
    /** Expanded cell count of this shard (grid slice size). */
    std::size_t cells = 0;
    /**
     * Shard CSV file name, relative to the manifest's directory (so
     * a manifest plus collected shard files relocate together).
     * The shard's checkpoint journal is always `<csv>.journal`.
     */
    std::string csv;
};

/**
 * Everything the merge (or a remote shard runner) needs to know
 * about one orchestrated sweep.  Serialized as `key=value` lines
 * (schema version 6: workload-spec spellings on the outer axis,
 * page-policy/DRAM-preset/DRAM-organization/timing-override system
 * axes on the inner; its shards emit schema-v6 CSVs carrying the
 * Monte-Carlo confidence columns) — see docs/sweep-format.md for
 * the schema.  Version-1 through version-5 manifests are rejected
 * with a versioned error, never misread.
 */
struct ShardManifest
{
    /** The full grid, exactly as a single-process sweep would run it. */
    SweepGrid grid;
    /** Shared experiment knobs; exp.seed keys every cell seed. */
    ExperimentConfig exp;
    /** Shard slices, in global cell order (offsets ascending). */
    std::vector<ShardSpec> shards;

    /** Total cells across all shards (== grid.expand().size()). */
    std::size_t totalCells() const;
};

/**
 * Per-shard supervision accounting, shared by the local orchestrator
 * and the fleet dispatcher (farm/dispatcher.hh) so both report the
 * same end-of-run summary.
 */
struct ShardRunState
{
    /** Child launches performed (first run plus retries). */
    std::size_t launches = 0;
    /** Relaunches after a crash, kill, or staleness timeout. */
    std::size_t restarts = 0;
    /** The shard's CSV validated complete. */
    bool done = false;
    /** Last failure reason; empty when the shard never failed. */
    std::string lastError;
};

/**
 * Split @p grid into at most @p shardCount balanced contiguous
 * shards along the outer axis (named workloads first, then MIX
 * points).  The effective shard count is clamped to the number of
 * outer entries; requesting 0 shards is fatal().  Shard CSV names
 * default to "shard<K>.csv".
 *
 * @param grid       full sweep grid (must expand to >= 1 cell)
 * @param exp        experiment knobs recorded in the manifest
 * @param shardCount requested number of shards
 */
ShardManifest planShards(const SweepGrid &grid,
                         const ExperimentConfig &exp,
                         std::size_t shardCount);

/**
 * The manifest's on-disk text: `key=value` lines (with a comment
 * header) parseable by Options::fromFile — see docs/sweep-format.md
 * for the schema.  Deterministic: equal manifests serialize to
 * equal bytes, which is how an orchestrator detects that a shard
 * directory belongs to a different orchestration.
 */
std::string serializeManifest(const ShardManifest &manifest);

/** Serialize @p manifest to @p path (fatal() on I/O error). */
void writeManifest(const ShardManifest &manifest,
                   const std::string &path);

/**
 * Parse a manifest written by writeManifest().  Unknown keys,
 * missing shards, a version mismatch, or shard slices that do not
 * tile the full grid contiguously are fatal().
 */
ShardManifest loadManifest(const std::string &path);

/**
 * Validate one shard's CSV against the manifest expectations.
 *
 * Checks, in order: the file exists and ends with a newline (a
 * torn final line means the writer died mid-row), the first line is
 * the schema-v6 sweep CSV header (a v1 through v5 header is
 * rejected with a versioned message), exactly @p shard.cells data
 * rows follow, and
 * every row has SweepRunner::kRowColumns fields and byte-matches
 * the identity prefix of its cell *within the shard's own
 * numbering* (index local to the shard, seed derived from @p exp).
 *
 * @return empty string when valid, else a human-readable reason.
 */
std::string validateShardCsv(const ShardSpec &shard,
                             const ExperimentConfig &exp,
                             const std::string &path);

/**
 * Stitch the manifest's shard CSVs into one global CSV on @p out.
 *
 * Every shard is validated with validateShardCsv() first — any
 * mismatched identity prefix, wrong row count, or torn file is
 * fatal(); results are never silently mixed.  Rows are re-emitted
 * with their shard-local index rewritten to the global cell index;
 * all other bytes pass through untouched, so the merged CSV is
 * byte-identical to a single-process sweep of the full grid.
 *
 * @param manifest the orchestration description
 * @param dir      directory shard CSV names are resolved against
 *                 (normally the manifest file's directory)
 * @param out      destination stream for the merged CSV
 */
void mergeShards(const ShardManifest &manifest, const std::string &dir,
                 std::ostream &out);

/**
 * The exact `srs_sim sweep` argv for shard @p index of @p manifest,
 * with file paths resolved against @p dir — the shard directory as
 * seen by the *executing* process (the local dir, or a remote
 * host's workdir).  @p resume, when non-empty, is passed through as
 * `--resume=…`; callers decide whether a checkpoint exists on the
 * executing side.  The single source of truth for Orchestrator,
 * `orchestrate --plan` (text and JSON), and the farm dispatcher —
 * transport never appears in the command, so a shard computes the
 * same bytes wherever it runs.
 */
std::vector<std::string>
shardCommandLine(const ShardManifest &manifest, std::size_t index,
                 const std::string &simPath, const std::string &dir,
                 std::size_t shardThreads,
                 const std::string &resume = "");

/**
 * Create @p dir and write its manifest, or verify byte-equality
 * with the manifest already there — reusing a directory that
 * belongs to a *different* orchestration is fatal(), never a silent
 * mix of incompatible checkpoints.
 */
void prepareShardDir(const ShardManifest &manifest,
                     const std::string &dir);

/**
 * Last non-empty line of @p path, trailing \r/whitespace stripped
 * ("" when unreadable or empty).  Supervisors use it to surface a
 * dead child's fatal message instead of pointing at a log file.
 */
std::string lastLogLine(const std::string &path);

/** Minimal JSON string escape+quote for the plan/status emitters. */
std::string jsonQuote(const std::string &s);

/**
 * End-of-run per-shard summary table: cells, launches, restarts,
 * final status, log path, and any last error — one row per shard.
 * @p states must parallel @p manifest.shards.
 */
void writeShardSummary(std::ostream &out,
                       const ShardManifest &manifest,
                       const std::vector<ShardRunState> &states,
                       const std::string &dir);

/**
 * Launches and supervises the shard child processes of one
 * orchestrated sweep, then merges their CSVs.  POSIX-only (fork and
 * waitpid); construction is fatal() elsewhere.
 */
class Orchestrator
{
  public:
    /** Process-level knobs (the grid lives in the manifest). */
    struct Config
    {
        /** Path of the srs_sim binary to exec for each shard. */
        std::string simPath;
        /** Directory for shard CSVs, journals, and logs. */
        std::string dir;
        /** Max concurrent shard processes; 0 = hardware threads. */
        std::size_t jobs = 0;
        /** --threads passed to each shard process. */
        std::size_t shardThreads = 1;
        /** Relaunch attempts per shard after a crash or kill. */
        std::size_t retries = 2;
    };

    Orchestrator(ShardManifest manifest, Config config);

    /**
     * Run the orchestration to completion: write the manifest into
     * the shard directory, launch every incomplete shard (resuming
     * from its journal when one exists) with at most `jobs` children
     * in flight, relaunch failed shards up to `retries` times, and
     * finally merge all shard CSVs onto @p mergedOut.  A shard that
     * still fails after its retries, or a shard directory holding a
     * *different* orchestration's manifest, is fatal().
     */
    void run(std::ostream &mergedOut);

    /**
     * Plan-only mode: create the shard directory, write the
     * manifest, and print each shard's `srs_sim sweep` command line
     * to @p out — launch nothing.  The commands are exactly what
     * run() would exec, ready to be dispatched to other machines
     * and stitched back with `srs_sim merge`.  With @p json, the
     * same plan is emitted as one machine-readable JSON object
     * (manifest path, merge argv, per-shard offset/cells/file
     * paths/argv — docs/sweep-format.md has the schema) so external
     * schedulers and the farm dispatcher consume the same source of
     * truth as the human listing.
     */
    void writePlan(std::ostream &out, bool json = false);

    /** Shards whose CSVs already validated and were not relaunched. */
    std::size_t skippedShards() const { return skipped_; }
    /** Child launches performed (first runs plus retries). */
    std::size_t launches() const { return launches_; }
    /** Per-shard accounting of the last run() (summary table data). */
    const std::vector<ShardRunState> &shardStates() const
    {
        return states_;
    }

  private:
    /** Create the shard dir and write/verify its manifest. */
    void prepareDir();
    /** Fork one child for shard @p index; returns its pid. */
    long launchShard(std::size_t index);
    /** Command line for shard @p index (argv, argv[0] = simPath). */
    std::vector<std::string> shardCommand(std::size_t index) const;

    ShardManifest manifest_;
    Config config_;
    std::size_t skipped_ = 0;
    std::size_t launches_ = 0;
    std::vector<ShardRunState> states_;
};

} // namespace srs

#endif // SRS_SIM_ORCHESTRATOR_HH
