/**
 * @file
 * Full-system wiring: cores + LLC/pin-buffer + memory controller +
 * tracker + mitigation, with refresh-epoch management.
 *
 * Two operating modes, selected by SystemConfig::modelLlc:
 *  - USIMM mode (default, the paper's setup): traces are post-LLC
 *    miss streams fed straight to the memory controller; only the
 *    pin-buffer intercepts accesses (for Scale-SRS row pinning);
 *  - full-LLC mode: every access goes through the shared LLC model
 *    (used by cache-focused tests and examples).
 */

#ifndef SRS_SIM_SYSTEM_HH
#define SRS_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/llc.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "memctrl/controller.hh"
#include "mitigation/mitigation.hh"
#include "mitigation/aqua.hh"
#include "mitigation/blockhammer.hh"
#include "mitigation/rrs.hh"
#include "mitigation/scale_srs.hh"
#include "mitigation/srs.hh"
#include "tracker/cbt.hh"
#include "tracker/hydra.hh"
#include "tracker/misra_gries.hh"
#include "tracker/twice.hh"

namespace srs
{

/** Which defense protects the system. */
enum class MitigationKind
{
    None,
    Rrs,
    RrsNoUnswap,
    Srs,
    ScaleSrs,
    BlockHammer,
    Aqua,
};

/** Which aggressor tracker feeds the defense. */
enum class TrackerKind
{
    MisraGries,
    Hydra,
    Cbt,
    TwiCe,
};

/** @return printable mitigation name. */
const char *mitigationKindName(MitigationKind kind);

/** Top-level configuration (defaults reproduce paper Table III). */
struct SystemConfig
{
    DramOrg org;
    DramTimingNs timingNs;
    MemCtrlConfig memCtrl;
    CoreConfig core;
    std::uint32_t numCores = 8;

    MitigationKind mitigation = MitigationKind::None;
    TrackerKind tracker = TrackerKind::MisraGries;
    MitigationConfig mit;
    RrsConfig rrsCfg;
    BlockHammerConfig bhCfg;
    AquaConfig aquaCfg;
    SrsConfig srsCfg;
    ScaleSrsConfig scaleCfg;

    /** Refresh-interval length in CPU cycles; 0 derives 64 ms. */
    Cycle epochLen = 0;

    bool modelLlc = false;
    CacheConfig llc;
    Cycle llcHitLatency = 40;
    std::uint32_t pinCapacity = 66;

    /**
     * Use the tick-per-cycle reference loop instead of the
     * event-driven skip-ahead loop.  Results are identical by
     * construction (the equivalence tests lock this down); the
     * reference exists for A/B verification and the perf harness.
     */
    bool referenceLoop = false;

    /**
     * Worker threads for the controller's channel-parallel
     * scheduling phase (copied into MemCtrlConfig::channelWorkers;
     * 1 = serial, values above the channel count are capped).  Like
     * referenceLoop, this never changes results — the org-invariance
     * tests lock serial and parallel runs to exact equality.
     */
    std::uint32_t channelWorkers = 1;

    std::uint64_t seed = 0xD00DULL;

    /** Effective epoch length in cycles. */
    Cycle effectiveEpochLen() const;

    /** ACT_max for one bank in one epoch (tRC-limited). */
    std::uint64_t actMaxPerEpoch() const;
};

/** The simulated machine. */
class System : public CoreMemoryInterface
{
  public:
    explicit System(const SystemConfig &cfg);

    /** Attach a trace to core @p core (must cover all cores). */
    void setTrace(CoreId core, std::unique_ptr<TraceSource> trace);

    /** Advance the machine by @p cycles CPU cycles. */
    void run(Cycle cycles);

    /** CoreMemoryInterface */
    Outcome access(Addr addr, bool isWrite, CoreId core,
                   std::uint64_t token, Cycle now,
                   Cycle &latencyOut) override;

    Cycle now() const { return now_; }
    std::uint64_t epochsCompleted() const { return epochs_; }

    /** Retired instructions per cycle, summed over cores. */
    double aggregateIpc() const;
    double coreIpc(CoreId core) const;

    MemoryController &controller() { return *ctrl_; }
    const MemoryController &controller() const { return *ctrl_; }
    Mitigation &mitigation() { return *mitigation_; }
    AggressorTracker &tracker() { return *tracker_; }
    Llc &llc() { return *llc_; }
    const SystemConfig &config() const { return cfg_; }

    /**
     * Highest per-row activation count observed in any bank in any
     * completed epoch (the Row Hammer ground truth; compare against
     * T_RH to decide whether the defense held).
     */
    std::uint64_t maxEpochActivations() const;

    /** Same, restricted to one bank (flat index within channel). */
    std::uint64_t maxEpochActivationsAt(std::uint32_t channel,
                                        std::uint32_t bank) const;

    const StatSet &stats() const { return stats_; }

  private:
    void onEpochBoundary();
    void onReadDone(const MemRequest &req);
    void runReference(Cycle end);
    void runEventDriven(Cycle end);
    void drainPinWritebacks();

    SystemConfig cfg_;
    Cycle epochLen_;
    DramTiming timing_;

    std::unique_ptr<MemoryController> ctrl_;
    std::unique_ptr<Llc> llc_;
    std::unique_ptr<AggressorTracker> tracker_;
    std::unique_ptr<Mitigation> mitigation_;
    std::vector<std::unique_ptr<TraceSource>> traces_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** outstanding read id -> (core, token) */
    std::unordered_map<std::uint64_t,
                       std::pair<CoreId, std::uint64_t>> outstanding_;

    /**
     * Dirty lines displaced by Scale-SRS row pinning.  The pin hook
     * fires inside the controller's own queue iteration, where
     * enqueuing could reallocate the vector being walked; evictions
     * are parked here and posted once per simulated cycle instead.
     */
    std::vector<Addr> pendingPinWritebacks_;

    Cycle now_ = 0;
    Cycle nextEpochAt_;
    std::uint64_t epochs_ = 0;
    std::uint64_t maxEpochActs_ = 0;
    std::vector<std::uint64_t> maxEpochActsPerBank_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_SIM_SYSTEM_HH
