#include "sim/workload_spec.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

namespace srs
{

namespace
{

constexpr const char *kTracePrefix = "trace:";

/** Split @p value on ';' into its non-empty items. */
std::vector<std::string>
splitSemis(const std::string &value)
{
    std::vector<std::string> items;
    std::string::size_type start = 0;
    while (start <= value.size()) {
        const auto semi = value.find(';', start);
        const auto end =
            semi == std::string::npos ? value.size() : semi;
        if (end > start)
            items.push_back(value.substr(start, end - start));
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    return items;
}

/**
 * A trace path appears verbatim inside one CSV field and one
 * manifest value, so it must not contain the characters those
 * formats give meaning to — nor ';', the per-core path separator,
 * or the label would re-parse as a different spec.
 */
void
validateTracePath(const std::string &path)
{
    for (const char c : path) {
        if (c == ',' || c == ';' || c == '#'
            || std::isspace(static_cast<unsigned char>(c))) {
            fatal("trace path '", path, "' contains '", std::string(1, c),
                  "', which cannot be spelled in a sweep CSV or shard "
                  "manifest (no commas, semicolons, whitespace or "
                  "'#'; want trace:<path> or trace:<p0>;<p1>;...)");
        }
    }
}

} // namespace

std::string
WorkloadSpec::label() const
{
    if (kind != WorkloadKind::TraceFile)
        return name;
    std::string joined = kTracePrefix;
    for (std::size_t i = 0; i < tracePaths.size(); ++i) {
        if (i > 0)
            joined += ';';
        joined += tracePaths[i];
    }
    return joined;
}

WorkloadSpec
WorkloadSpec::synthetic(const std::string &profileName)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Synthetic;
    spec.name = profileName;
    return spec;
}

WorkloadSpec
WorkloadSpec::mix(std::uint32_t index, std::uint32_t cores)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Mix;
    spec.name = "mix" + std::to_string(index);
    for (const WorkloadProfile &p : mixWorkload(index, cores))
        spec.mixProfiles.push_back(p.name);
    return spec;
}

WorkloadSpec
WorkloadSpec::traceFiles(std::vector<std::string> paths)
{
    if (paths.empty()) {
        fatal("trace workload spec needs at least one path (want "
              "trace:<path> or trace:<p0>;<p1>;... with one path per "
              "core)");
    }
    for (const std::string &path : paths)
        validateTracePath(path);
    WorkloadSpec spec;
    spec.kind = WorkloadKind::TraceFile;
    spec.tracePaths = std::move(paths);
    spec.name = spec.label();
    return spec;
}

WorkloadSpec
WorkloadSpec::parse(const std::string &spelling, std::uint32_t cores)
{
    if (spelling.rfind(kTracePrefix, 0) != 0)
        return synthetic(spelling);
    std::vector<std::string> paths =
        splitSemis(spelling.substr(std::string(kTracePrefix).size()));
    if (paths.empty()) {
        fatal("workload spec '", spelling, "': trace spec needs at "
              "least one path (want trace:<path> or "
              "trace:<p0>;<p1>;... with one path per core)");
    }
    if (paths.size() != 1 && paths.size() != cores) {
        fatal("workload spec '", spelling, "': ", paths.size(),
              " trace paths, but a per-core list needs exactly ",
              cores, " (or a single path shared by every core)");
    }
    return traceFiles(std::move(paths));
}

std::string
SystemAxes::field() const
{
    std::string text = pagePolicyName(pagePolicy);
    if (tRcNs != 0)
        text += "@trc=" + std::to_string(tRcNs);
    return text;
}

SystemAxes
SystemAxes::parse(const std::string &text)
{
    SystemAxes axes;
    const auto at = text.find('@');
    axes.pagePolicy = pagePolicyFromName(text.substr(0, at));
    if (at == std::string::npos)
        return axes;
    const std::string suffix = text.substr(at + 1);
    if (suffix.rfind("trc=", 0) != 0) {
        fatal("system axes '", text, "': unknown timing override '",
              suffix, "' (want <policy> or <policy>@trc=<ns>)");
    }
    const std::string value = suffix.substr(4);
    char *end = nullptr;
    const unsigned long long ns =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0'
        || ns == 0 || ns > 10'000) {
        fatal("system axes '", text, "': '", value,
              "' is not a tRC override in nanoseconds (1..10000)");
    }
    axes.tRcNs = static_cast<std::uint32_t>(ns);
    return axes;
}

void
SystemAxes::apply(SystemConfig &cfg) const
{
    cfg.memCtrl.pagePolicy = pagePolicy;
    if (tRcNs != 0) {
        cfg.timingNs.tRC = static_cast<double>(tRcNs);
        cfg.timingNs.tRAS = cfg.timingNs.tRC - cfg.timingNs.tRP;
        if (cfg.timingNs.tRAS <= 0.0) {
            fatal("system axes '", field(), "': tRC override ", tRcNs,
                  "ns is not larger than tRP (",
                  cfg.timingNs.tRP, "ns)");
        }
    }
}

const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::Closed: return "closed";
      case PagePolicy::Open:   return "open";
    }
    return "?";
}

PagePolicy
pagePolicyFromName(const std::string &name)
{
    if (name == "closed")
        return PagePolicy::Closed;
    if (name == "open")
        return PagePolicy::Open;
    fatal("unknown page policy '", name, "' (want closed|open)");
}

} // namespace srs
