#include "sim/workload_spec.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

namespace srs
{

namespace
{

constexpr const char *kTracePrefix = "trace:";

/** Split @p value on ';' into its non-empty items. */
std::vector<std::string>
splitSemis(const std::string &value)
{
    std::vector<std::string> items;
    std::string::size_type start = 0;
    while (start <= value.size()) {
        const auto semi = value.find(';', start);
        const auto end =
            semi == std::string::npos ? value.size() : semi;
        if (end > start)
            items.push_back(value.substr(start, end - start));
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    return items;
}

/**
 * A trace path appears verbatim inside one CSV field and one
 * manifest value, so it must not contain the characters those
 * formats give meaning to — nor ';', the per-core path separator,
 * or the label would re-parse as a different spec.
 */
void
validateTracePath(const std::string &path)
{
    for (const char c : path) {
        if (c == ',' || c == ';' || c == '#'
            || std::isspace(static_cast<unsigned char>(c))) {
            fatal("trace path '", path, "' contains '", std::string(1, c),
                  "', which cannot be spelled in a sweep CSV or shard "
                  "manifest (no commas, semicolons, whitespace or "
                  "'#'; want trace:<path> or trace:<p0>;<p1>;...)");
        }
    }
}

} // namespace

std::string
WorkloadSpec::label() const
{
    if (kind != WorkloadKind::TraceFile)
        return name;
    std::string joined = kTracePrefix;
    for (std::size_t i = 0; i < tracePaths.size(); ++i) {
        if (i > 0)
            joined += ';';
        joined += tracePaths[i];
    }
    return joined;
}

WorkloadSpec
WorkloadSpec::synthetic(const std::string &profileName)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Synthetic;
    spec.name = profileName;
    return spec;
}

WorkloadSpec
WorkloadSpec::mix(std::uint32_t index, std::uint32_t cores)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Mix;
    spec.name = "mix" + std::to_string(index);
    for (const WorkloadProfile &p : mixWorkload(index, cores))
        spec.mixProfiles.push_back(p.name);
    return spec;
}

WorkloadSpec
WorkloadSpec::traceFiles(std::vector<std::string> paths)
{
    if (paths.empty()) {
        fatal("trace workload spec needs at least one path (want "
              "trace:<path> or trace:<p0>;<p1>;... with one path per "
              "core)");
    }
    for (const std::string &path : paths)
        validateTracePath(path);
    WorkloadSpec spec;
    spec.kind = WorkloadKind::TraceFile;
    spec.tracePaths = std::move(paths);
    spec.name = spec.label();
    return spec;
}

WorkloadSpec
WorkloadSpec::generatorSpec(const GeneratorSpec &gen)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Generator;
    spec.generator = gen;
    spec.name = gen.label();
    return spec;
}

WorkloadSpec
WorkloadSpec::parse(const std::string &spelling, std::uint32_t cores)
{
    if (GeneratorSpec::matchesPrefix(spelling))
        return generatorSpec(GeneratorSpec::parse(spelling));
    if (spelling.rfind(kTracePrefix, 0) != 0)
        return synthetic(spelling);
    std::vector<std::string> paths =
        splitSemis(spelling.substr(std::string(kTracePrefix).size()));
    if (paths.empty()) {
        fatal("workload spec '", spelling, "': trace spec needs at "
              "least one path (want trace:<path> or "
              "trace:<p0>;<p1>;... with one path per core)");
    }
    if (paths.size() != 1 && paths.size() != cores) {
        fatal("workload spec '", spelling, "': ", paths.size(),
              " trace paths, but a per-core list needs exactly ",
              cores, " (or a single path shared by every core)");
    }
    return traceFiles(std::move(paths));
}

namespace
{

/**
 * The timing-knob suffixes of an axes spelling, in canonical order.
 * The order is load-bearing: field() emits overridden knobs in this
 * sequence and parse() requires it, which is what makes the two
 * exact inverses.
 */
struct AxesKnob
{
    const char *key;
    std::uint32_t SystemAxes::*member;
    /** Largest accepted override in ns (row timings stay far below
     *  refresh-interval scale, so the sanity bound is per knob). */
    std::uint32_t maxNs;
};

constexpr AxesKnob kAxesKnobs[] = {
    {"trc", &SystemAxes::tRcNs, 10'000},
    {"trcd", &SystemAxes::tRcdNs, 10'000},
    {"trp", &SystemAxes::tRpNs, 10'000},
    // DDR4's default tREFI is already 7800 ns; relaxed-refresh
    // sensitivity points (2x, 4x tREFI) must stay spellable.
    {"trefi", &SystemAxes::tRefiNs, 100'000},
    {"trfc", &SystemAxes::tRfcNs, 10'000},
};

constexpr const char *kAxesGrammar =
    "<policy>[@ddr4|@ddr5][@org=CxRxB][@trc=NS][@trcd=NS][@trp=NS]"
    "[@trefi=NS][@trfc=NS] with policy closed|open, suffixes in that "
    "order, org a power-of-two channels x ranks x banks-per-rank "
    "triple (channels 1..8, ranks 1..4, banks 4..64), NS in 1..10000 "
    "nanoseconds (trefi: 1..100000)";

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** One strictly-decimal component of a CxRxB triple. */
bool
parseOrgPart(const std::string &part, std::uint32_t &out)
{
    if (part.empty()
        || !std::isdigit(static_cast<unsigned char>(part[0])))
        return false;
    char *endp = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &endp, 10);
    if (endp != part.c_str() + part.size() || v > 0xFFFFFFFFull)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

/** Shape check only: exactly three 'x'-separated decimal fields. */
bool
parseOrgValue(const std::string &value, std::uint32_t &channels,
              std::uint32_t &ranks, std::uint32_t &banks)
{
    const auto x1 = value.find('x');
    if (x1 == std::string::npos)
        return false;
    const auto x2 = value.find('x', x1 + 1);
    if (x2 == std::string::npos
        || value.find('x', x2 + 1) != std::string::npos)
        return false;
    return parseOrgPart(value.substr(0, x1), channels)
        && parseOrgPart(value.substr(x1 + 1, x2 - x1 - 1), ranks)
        && parseOrgPart(value.substr(x2 + 1), banks);
}

bool
orgInBounds(std::uint32_t channels, std::uint32_t ranks,
            std::uint32_t banks)
{
    return isPow2(channels) && channels <= 8
        && isPow2(ranks) && ranks <= 4
        && isPow2(banks) && banks >= 4 && banks <= 64;
}

} // namespace

std::string
SystemAxes::field() const
{
    std::string text = pagePolicyName(pagePolicy);
    if (preset != DramPreset::Ddr4) {
        text += '@';
        text += dramPresetName(preset);
    }
    const DramOrg defaultOrg{};
    if (orgChannels != defaultOrg.channels
        || orgRanks != defaultOrg.ranksPerChannel
        || orgBanks != defaultOrg.banksPerRank) {
        text += "@org=" + std::to_string(orgChannels) + "x"
                + std::to_string(orgRanks) + "x"
                + std::to_string(orgBanks);
    }
    for (const AxesKnob &knob : kAxesKnobs) {
        const std::uint32_t ns = this->*knob.member;
        if (ns != 0)
            text += "@" + std::string(knob.key) + "="
                    + std::to_string(ns);
    }
    return text;
}

SystemAxes
SystemAxes::parse(const std::string &text)
{
    SystemAxes axes;
    const auto at = text.find('@');
    const std::string policy = text.substr(0, at);
    if (policy == "closed") {
        axes.pagePolicy = PagePolicy::Closed;
    } else if (policy == "open") {
        axes.pagePolicy = PagePolicy::Open;
    } else {
        fatal("system axes '", text, "': unknown page policy '",
              policy, "' (want ", kAxesGrammar, ")");
    }

    // Each '@'-chained suffix is the preset name, the org triple, or
    // one knob=value pair; kAxesKnobs order is enforced (nextKnob
    // only advances), which also rejects duplicates.
    std::size_t nextKnob = 0;
    bool sawPreset = false;
    bool sawOrg = false;
    std::string::size_type start = at;
    while (start != std::string::npos) {
        const auto end = text.find('@', start + 1);
        const std::string suffix =
            text.substr(start + 1, end == std::string::npos
                                       ? std::string::npos
                                       : end - start - 1);
        start = end;

        const auto eq = suffix.find('=');
        if (eq == std::string::npos) {
            if (sawPreset || sawOrg || nextKnob > 0) {
                fatal("system axes '", text, "': preset '", suffix,
                      "' must come right after the policy (want ",
                      kAxesGrammar, ")");
            }
            if (suffix == "ddr4") {
                axes.preset = DramPreset::Ddr4;
            } else if (suffix == "ddr5") {
                axes.preset = DramPreset::Ddr5;
            } else {
                fatal("system axes '", text, "': unknown suffix '",
                      suffix, "' (want ", kAxesGrammar, ")");
            }
            sawPreset = true;
            continue;
        }

        const std::string key = suffix.substr(0, eq);
        if (key == "org") {
            if (sawOrg || nextKnob > 0) {
                fatal("system axes '", text, "': ",
                      sawOrg ? "repeated" : "out-of-order",
                      " org suffix '", suffix, "' — org comes right "
                      "after the policy/preset (want ", kAxesGrammar,
                      ")");
            }
            const std::string value = suffix.substr(eq + 1);
            std::uint32_t channels = 0, ranks = 0, banks = 0;
            if (!parseOrgValue(value, channels, ranks, banks)
                || !orgInBounds(channels, ranks, banks)) {
                fatal("system axes '", text, "': '", value,
                      "' is not a CxRxB DRAM organization (want ",
                      kAxesGrammar, ")");
            }
            axes.orgChannels = channels;
            axes.orgRanks = ranks;
            axes.orgBanks = banks;
            sawOrg = true;
            continue;
        }
        std::size_t k = nextKnob;
        while (k < std::size(kAxesKnobs) && key != kAxesKnobs[k].key)
            ++k;
        if (k == std::size(kAxesKnobs)) {
            bool knownKey = false;
            for (const AxesKnob &knob : kAxesKnobs)
                knownKey = knownKey || key == knob.key;
            fatal("system axes '", text, "': ",
                  knownKey ? "out-of-order or repeated" : "unknown",
                  " timing override '", suffix, "' (want ",
                  kAxesGrammar, ")");
        }
        const std::string value = suffix.substr(eq + 1);
        char *endp = nullptr;
        const unsigned long long ns =
            std::strtoull(value.c_str(), &endp, 10);
        if (value.empty() || endp == value.c_str() || *endp != '\0'
            || ns == 0 || ns > kAxesKnobs[k].maxNs) {
            fatal("system axes '", text, "': '", value, "' is not a ",
                  key, " override in nanoseconds (want ",
                  kAxesGrammar, ")");
        }
        axes.*kAxesKnobs[k].member = static_cast<std::uint32_t>(ns);
        nextKnob = k + 1;
    }
    axes.validate();
    return axes;
}

DramTimingNs
SystemAxes::effectiveTimingNs() const
{
    DramTimingNs ns = DramTimingNs::preset(preset);
    if (tRcNs != 0)
        ns.tRC = static_cast<double>(tRcNs);
    if (tRcdNs != 0)
        ns.tRCD = static_cast<double>(tRcdNs);
    if (tRpNs != 0)
        ns.tRP = static_cast<double>(tRpNs);
    if (tRefiNs != 0)
        ns.tREFI = static_cast<double>(tRefiNs);
    if (tRfcNs != 0)
        ns.tRFC = static_cast<double>(tRfcNs);
    // tRAS is never overridden directly; it is re-derived so the
    // bank state machine stays self-consistent.
    ns.tRAS = ns.tRC - ns.tRP;
    return ns;
}

void
SystemAxes::validate() const
{
    if (!orgInBounds(orgChannels, orgRanks, orgBanks)) {
        fatal("system axes '", field(), "': DRAM organization ",
              orgChannels, "x", orgRanks, "x", orgBanks,
              " out of range — channels, ranks and banks-per-rank "
              "must be powers of two within 1..8 / 1..4 / 4..64");
    }
    const DramTimingNs ns = effectiveTimingNs();
    if (ns.tRC < ns.tRCD + ns.tRP) {
        fatal("system axes '", field(), "': inconsistent timings — "
              "tRC (", ns.tRC, "ns) is smaller than tRCD + tRP (",
              ns.tRCD, "ns + ", ns.tRP, "ns); a row cycle must cover "
              "opening and closing the row");
    }
}

void
SystemAxes::apply(SystemConfig &cfg) const
{
    validate();
    cfg.memCtrl.pagePolicy = pagePolicy;
    cfg.org.channels = orgChannels;
    cfg.org.ranksPerChannel = orgRanks;
    cfg.org.banksPerRank = orgBanks;
    const double cpuFreqGHz = cfg.timingNs.cpuFreqGHz;
    cfg.timingNs = effectiveTimingNs();
    cfg.timingNs.cpuFreqGHz = cpuFreqGHz;
}

const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::Closed: return "closed";
      case PagePolicy::Open:   return "open";
    }
    return "?";
}

PagePolicy
pagePolicyFromName(const std::string &name)
{
    if (name == "closed")
        return PagePolicy::Closed;
    if (name == "open")
        return PagePolicy::Open;
    fatal("unknown page policy '", name, "' (want closed|open)");
}

const char *
dramPresetName(DramPreset preset)
{
    switch (preset) {
      case DramPreset::Ddr4: return "ddr4";
      case DramPreset::Ddr5: return "ddr5";
    }
    return "?";
}

DramPreset
dramPresetFromName(const std::string &name)
{
    if (name == "ddr4")
        return DramPreset::Ddr4;
    if (name == "ddr5")
        return DramPreset::Ddr5;
    fatal("unknown DRAM preset '", name, "' (want ddr4|ddr5)");
}

void
dramOrgFromName(const std::string &name, SystemAxes &axes)
{
    std::uint32_t channels = 0, ranks = 0, banks = 0;
    if (!parseOrgValue(name, channels, ranks, banks)
        || !orgInBounds(channels, ranks, banks)) {
        fatal("unknown DRAM org '", name, "' (want CxRxB — "
              "power-of-two channels x ranks x banks-per-rank, "
              "channels 1..8, ranks 1..4, banks 4..64)");
    }
    axes.orgChannels = channels;
    axes.orgRanks = ranks;
    axes.orgBanks = banks;
}

} // namespace srs
