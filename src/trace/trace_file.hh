/**
 * @file
 * USIMM-format trace file reader and writer.
 *
 * The paper's artifact consumes Pin-captured, cache-filtered memory
 * traces in the USIMM text format, one access per line:
 *
 *     <gap> R <hex-address> <hex-pc>
 *     <gap> W <hex-address>
 *
 * where <gap> is the number of non-memory instructions preceding
 * the access.  Lines starting with '#' and blank lines are skipped.
 * This module lets users bring their own Pin/DynamoRIO traces to
 * the simulator (the artifact's workflow) and lets the synthetic
 * generator export reproducible workloads.
 *
 * FileTrace loads the whole file and replays it as a TraceSource;
 * like USIMM's rate mode it loops back to the beginning when the
 * trace is exhausted.
 */

#ifndef SRS_TRACE_TRACE_FILE_HH
#define SRS_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"

namespace srs
{

/**
 * An immutable, shareable parsed trace.  The sweep engine parses
 * each trace file once and hands the same record vector to every
 * cell (and every core) that replays it; FileTrace instances built
 * from it carry only a cursor.
 */
using SharedTraceRecords =
    std::shared_ptr<const std::vector<TraceRecord>>;

/**
 * Parse the USIMM trace file at @p path once; fatal() on I/O
 * errors, malformed lines (the line number is reported), or an
 * empty trace.
 */
SharedTraceRecords loadTraceRecords(const std::string &path);

/** Writes TraceRecords in USIMM text format. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() when it cannot be created. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (@p pc is emitted for reads only). */
    void append(const TraceRecord &rec, Addr pc = 0);

    /** Flush and close; further appends are invalid. */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream *out_;
    std::uint64_t records_ = 0;
};

/** In-memory replay of a USIMM-format trace file. */
class FileTrace : public TraceSource
{
  public:
    /**
     * Parse @p path eagerly; fatal() on I/O errors or malformed
     * lines (the line number is reported).
     * @param loop  wrap to the start when exhausted (rate mode);
     *              when false, the source repeats a terminal
     *              non-memory gap forever after the last record
     */
    explicit FileTrace(const std::string &path, bool loop = true);

    /** Build directly from records (tests, programmatic use). */
    explicit FileTrace(std::vector<TraceRecord> records,
                       bool loop = true);

    /**
     * Replay an already-parsed shared trace (loadTraceRecords());
     * the records are not copied, so N cores (or N sweep cells)
     * replaying one file share a single parsed image.
     */
    explicit FileTrace(SharedTraceRecords records, bool loop = true);

    TraceRecord next() override;

    std::size_t size() const { return records_->size(); }
    std::uint64_t wraps() const { return wraps_; }
    const std::vector<TraceRecord> &records() const { return *records_; }

  private:
    SharedTraceRecords records_;
    std::size_t cursor_ = 0;
    bool loop_;
    std::uint64_t wraps_ = 0;
};

/**
 * Parse one USIMM trace line into @p out.
 * @return false for blank/comment lines; fatal() on malformed input
 *         (@p context names the source for the error message)
 */
bool parseTraceLine(const std::string &line, TraceRecord &out,
                    const std::string &context);

} // namespace srs

#endif // SRS_TRACE_TRACE_FILE_HH
