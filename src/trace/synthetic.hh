/**
 * @file
 * Deterministic synthetic trace generator implementing TraceSource.
 *
 * Produces a post-cache memory access stream for one core from a
 * WorkloadProfile.  Address streams have three components:
 *
 *  1. hot-row accesses: a small set of (bank, row) targets placed at
 *     the top of the row space, selected with geometric skew and
 *     visited column-round-robin — these are the rows that cross T_S
 *     and exercise the swap machinery;
 *  2. background streaming: a sequential sweep through the core's
 *     private footprint (row-buffer-friendly, ACT per line under the
 *     closed-page policy);
 *  3. background random: uniform lines in the footprint.
 */

#ifndef SRS_TRACE_SYNTHETIC_HH
#define SRS_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "cpu/core.hh"
#include "dram/address.hh"
#include "trace/profiles.hh"

namespace srs
{

/** Per-core synthetic trace. */
class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param profile behavioural knobs
     * @param map     system address map (for hot-row placement)
     * @param core    core index (offsets footprint and hot set)
     * @param seed    RNG seed; same seed -> identical stream
     */
    SyntheticTrace(const WorkloadProfile &profile, const AddressMap &map,
                   CoreId core, std::uint64_t seed);

    TraceRecord next() override;

    /** Hot-row targets chosen for this core (for tests/analysis). */
    const std::vector<Addr> &hotRowBases() const { return hotBases_; }

  private:
    Addr pickHotAddr();
    Addr pickStreamAddr();
    Addr pickRandomAddr();

    WorkloadProfile profile_;
    const AddressMap &map_;
    CoreId core_;
    Rng rng_;

    Addr footprintBase_ = 0;
    std::uint64_t footprintLines_ = 0;
    std::uint64_t streamCursor_ = 0;

    std::vector<Addr> hotBases_;       ///< row base address per hot row
    std::vector<double> hotCdf_;       ///< geometric-skew CDF
    std::vector<std::uint32_t> hotCol_;///< per-row column cursor
};

} // namespace srs

#endif // SRS_TRACE_SYNTHETIC_HH
