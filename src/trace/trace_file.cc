#include "trace/trace_file.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace srs
{

TraceWriter::TraceWriter(const std::string &path)
    : out_(new std::ofstream(path))
{
    if (!out_->is_open())
        fatal("trace writer: cannot create '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
    delete out_;
    out_ = nullptr;
}

void
TraceWriter::append(const TraceRecord &rec, Addr pc)
{
    SRS_ASSERT(out_ != nullptr && out_->is_open(),
               "append on a closed trace writer");
    (*out_) << rec.nonMemGap << ' ' << (rec.isWrite ? 'W' : 'R')
            << " 0x" << std::hex << rec.addr;
    if (!rec.isWrite)
        (*out_) << " 0x" << pc;
    (*out_) << std::dec << '\n';
    ++records_;
}

void
TraceWriter::close()
{
    if (out_ != nullptr && out_->is_open()) {
        out_->flush();
        out_->close();
    }
}

bool
parseTraceLine(const std::string &line, TraceRecord &out,
               const std::string &context)
{
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    if (i == line.size() || line[i] == '#')
        return false;

    std::istringstream is(line);
    std::uint64_t gap = 0;
    std::string op;
    std::string addr;
    if (!(is >> gap >> op >> addr))
        fatal(context, ": malformed trace line '", line, "'");
    if (op != "R" && op != "W")
        fatal(context, ": bad op '", op, "' (want R or W)");

    out.nonMemGap = static_cast<std::uint32_t>(gap);
    out.isWrite = (op == "W");
    try {
        out.addr = std::stoull(addr, nullptr, 16);
    } catch (const std::exception &) {
        fatal(context, ": bad address '", addr, "'");
    }
    // Reads carry a PC column; it is optional and unused here.
    return true;
}

SharedTraceRecords
loadTraceRecords(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        fatal("file trace: cannot open '", path, "'");
    auto records = std::make_shared<std::vector<TraceRecord>>();
    std::string line;
    std::uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        TraceRecord rec;
        const std::string context =
            path + ":" + std::to_string(lineNo);
        if (parseTraceLine(line, rec, context))
            records->push_back(rec);
    }
    if (records->empty())
        fatal("file trace: '", path, "' contains no records");
    return records;
}

FileTrace::FileTrace(const std::string &path, bool loop)
    : records_(loadTraceRecords(path)), loop_(loop)
{
}

FileTrace::FileTrace(std::vector<TraceRecord> records, bool loop)
    : records_(std::make_shared<std::vector<TraceRecord>>(
          std::move(records))),
      loop_(loop)
{
    if (records_->empty())
        fatal("file trace: no records");
}

FileTrace::FileTrace(SharedTraceRecords records, bool loop)
    : records_(std::move(records)), loop_(loop)
{
    if (records_ == nullptr || records_->empty())
        fatal("file trace: no records");
}

TraceRecord
FileTrace::next()
{
    if (cursor_ == records_->size()) {
        if (!loop_) {
            // Exhausted non-looping trace: emit pure compute so the
            // core idles without touching memory again.
            TraceRecord idle;
            idle.nonMemGap = 1000;
            idle.addr = kInvalidAddr;
            return idle;
        }
        cursor_ = 0;
        ++wraps_;
    }
    return (*records_)[cursor_++];
}

} // namespace srs
