/**
 * @file
 * Generator-backed workloads: skewed multi-tenant traffic shapes
 * spelled as first-class WorkloadSpec labels (docs/sweep-format.md,
 * schema v4).
 *
 * Three families, one canonical comma-free grammar:
 *
 *  - `zipf:<rows>@s=<skew>` — row popularity follows a Zipf law with
 *    exponent <skew> over a <rows>-row region (rank 0 hottest);
 *  - `hotspot:<rows>@hot=<frac>@p=<prob>[@shift=<cycles>]` — a hot
 *    set covering <frac> of the region absorbs <prob> of the
 *    accesses; with @shift the hot set migrates to the next window
 *    every <cycles> of generator time (phase changes);
 *  - `blend:<zipf-or-hotspot-spec>+attack@<rate>` — the victim
 *    stream above with an embedded Row Hammer stream: a <rate>
 *    fraction of records become zero-gap reads alternating over the
 *    victim's two hottest rows.
 *
 * GeneratorSpec::parse and ::label are exact inverses
 * (parse(label(x)) == x); fractional knobs are stored in exact
 * milli-units so equality and re-spelling never touch floats.  A
 * malformed spelling is fatal(), quoting the input verbatim and
 * listing the whole grammar — the same contract the synthetic/MIX/
 * trace spellings and SystemAxes already honour.
 */

#ifndef SRS_TRACE_GENERATORS_HH
#define SRS_TRACE_GENERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "cpu/core.hh"
#include "dram/address.hh"

namespace srs
{

/** Which generator family shapes the victim traffic. */
enum class GeneratorFamily
{
    /** Zipf-distributed row popularity. */
    Zipf,
    /** Hot-set with optional phase migration. */
    Hotspot,
};

/**
 * Identity of one generator-backed workload.  Fractional knobs
 * (skew, hot fraction, hot probability, attack rate) are exact
 * milli-units (990 = 0.99) so the spec round-trips its spelling
 * byte-exactly and compares with defaulted equality.  A blend is the
 * victim family plus a nonzero attackRateMilli — nesting a blend
 * inside a blend is a grammar error.
 */
struct GeneratorSpec
{
    GeneratorFamily family = GeneratorFamily::Zipf;
    /** Size of the touched row region (1..65536). */
    std::uint32_t rows = 0;
    /** Zipf exponent in milli-units (0..8000). */
    std::uint32_t skewMilli = 0;
    /** Hotspot hot-set fraction in milli-units (1..999). */
    std::uint32_t hotFracMilli = 0;
    /** Hotspot hot-set hit probability in milli-units (1..1000). */
    std::uint32_t hotProbMilli = 0;
    /** Hotspot phase-shift period in generator time; 0 = static. */
    std::uint64_t shiftCycles = 0;
    /** Blend attack fraction in milli-units; 0 = no attack stream. */
    std::uint32_t attackRateMilli = 0;

    bool operator==(const GeneratorSpec &) const = default;

    /**
     * Canonical spelling — the WorkloadSpec label that keys the
     * cell's trace seed and baseline.  Exact inverse of parse().
     */
    std::string label() const;

    /**
     * Parse one generator spelling (`zipf:...`, `hotspot:...` or
     * `blend:...`); fatal() quotes @p spelling verbatim and lists
     * the whole grammar on any malformed or out-of-range input.
     */
    static GeneratorSpec parse(const std::string &spelling);

    /** @return true when @p spelling starts with a generator prefix. */
    static bool matchesPrefix(const std::string &spelling);
};

/**
 * Deterministic per-core TraceSource driving a GeneratorSpec.
 *
 * Row indices stripe across channels, then banks, then ranks, then
 * rows-in-bank (the address map's own interleave order), so a small
 * region still exercises every bank.  Per-core streams are seeded
 * exactly like SyntheticTrace (seed ^ golden-ratio * (core+1)); the
 * hotspot phase clock advances in generator time (accumulated
 * nonMemGap + 1 per record), so phase boundaries are identical under
 * the reference and event-driven loops and at any thread count.
 */
class GeneratorTrace : public TraceSource
{
  public:
    /**
     * @param spec generator identity (validated by parse())
     * @param map  system address map; fatal() when spec.rows exceeds
     *             the mapped row count
     * @param core core index (decorrelates per-core streams)
     * @param seed trace seed; same seed -> identical stream
     */
    GeneratorTrace(const GeneratorSpec &spec, const AddressMap &map,
                   CoreId core, std::uint64_t seed);

    TraceRecord next() override;

  private:
    Addr addrOfRowIndex(std::uint64_t rowIndex, std::uint64_t line);
    std::uint64_t hotSetStart() const;
    std::uint64_t pickVictimRow();

    GeneratorSpec spec_;
    const AddressMap &map_;
    CoreId core_;
    Rng rng_;

    std::vector<double> zipfCdf_;   ///< cumulative popularity by rank
    std::uint64_t time_ = 0;        ///< generator time for @shift
    std::uint64_t victimLine_ = 0;  ///< column cursor, victim stream
    std::uint64_t attackLine_ = 0;  ///< column cursor, attack stream
    std::uint64_t attackFlip_ = 0;  ///< alternates the aggressor pair
};

} // namespace srs

#endif // SRS_TRACE_GENERATORS_HH
