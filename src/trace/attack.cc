#include "trace/attack.hh"

namespace srs
{

HammerTrace::HammerTrace(const AddressMap &map, std::uint32_t channel,
                         std::uint32_t bank, RowId row, std::uint32_t gap)
    : map_(map), base_(map.rowBaseAddr(channel, 0, bank, row)), gap_(gap)
{
}

TraceRecord
HammerTrace::next()
{
    const DramOrg &org = map_.org();
    TraceRecord rec;
    rec.nonMemGap = gap_;
    rec.addr = base_ +
        static_cast<Addr>(col_++ % org.linesPerRow()) * org.lineBytes;
    rec.isWrite = false;
    return rec;
}

JuggernautTrace::JuggernautTrace(const AddressMap &map,
                                 std::uint32_t channel, std::uint32_t bank,
                                 RowId aggrRow, std::uint32_t ts,
                                 std::uint32_t rounds, std::uint64_t seed,
                                 std::uint32_t gap)
    : map_(map), channel_(channel), bank_(bank), aggrRow_(aggrRow),
      ts_(ts), gap_(gap),
      // Phase 1: 2*T_S - 1 initial activations plus T_S per biasing
      // round (each round forces one unswap-swap on the aggressor).
      biasAccessesLeft_(2ULL * ts - 1 +
                        static_cast<std::uint64_t>(rounds) * ts),
      rng_(seed)
{
}

Addr
JuggernautTrace::rowAddr(RowId row, std::uint32_t col) const
{
    const DramOrg &org = map_.org();
    return map_.rowBaseAddr(channel_, 0, bank_, row) +
        static_cast<Addr>(col % org.linesPerRow()) * org.lineBytes;
}

TraceRecord
JuggernautTrace::next()
{
    TraceRecord rec;
    rec.nonMemGap = gap_;
    rec.isWrite = false;

    if (biasAccessesLeft_ > 0) {
        --biasAccessesLeft_;
        rec.addr = rowAddr(aggrRow_, col_++);
        return rec;
    }

    guessing_ = true;
    if (guessAccessesLeft_ == 0) {
        // Pick a fresh random row and hammer it T_S times.
        guessRow_ = static_cast<RowId>(
            rng_.nextBelow(map_.org().rowsPerBank));
        guessAccessesLeft_ = ts_;
        ++guesses_;
    }
    --guessAccessesLeft_;
    rec.addr = rowAddr(guessRow_, col_++);
    return rec;
}

} // namespace srs
