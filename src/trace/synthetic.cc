#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace srs
{

SyntheticTrace::SyntheticTrace(const WorkloadProfile &profile,
                               const AddressMap &map, CoreId core,
                               std::uint64_t seed)
    : profile_(profile), map_(map), core_(core),
      rng_(seed ^ (0x9E3779B9ULL * (core + 1)))
{
    const DramOrg &org = map_.org();
    const std::uint64_t fpBytes = profile_.footprintMB * 1024 * 1024;
    if (fpBytes == 0)
        fatal("workload footprint must be nonzero");
    if (fpBytes * 8 > org.capacityBytes())
        fatal("workload footprint exceeds memory capacity");
    footprintBase_ = static_cast<Addr>(core_) * fpBytes;
    footprintLines_ = fpBytes / org.lineBytes;

    // Hot rows live in a per-core band high in the row space —
    // below the top 2%, so defenses that reserve the top of the
    // bank (AQUA's quarantine region) never collide with them — and
    // above the streaming footprints, so the bands see only their
    // own traffic.
    const std::uint32_t spread = org.channels * org.banksPerRank;
    constexpr std::uint32_t maxBandRows = 64;
    SRS_ASSERT(profile_.hotRows <= maxBandRows * spread,
               "hot set too large for the per-core row band");
    for (std::uint32_t j = 0; j < profile_.hotRows; ++j) {
        // Offset the bank walk by core so rate-mode copies do not
        // pile their hot rows into the same few banks (which would
        // cap per-row activation rates at tRC / cores).
        const std::uint32_t slot = core_ * 7 + j;
        const std::uint32_t channel = slot % org.channels;
        const std::uint32_t bank =
            (slot / org.channels) % org.banksPerRank;
        const RowId bandTop = org.rowsPerBank -
            org.rowsPerBank / 50 - 1;
        const RowId row = bandTop - (core_ * maxBandRows + j / spread);
        hotBases_.push_back(map_.rowBaseAddr(channel, 0, bank, row));
        hotCol_.push_back(0);
    }

    // Geometric skew: the hottest row gets ~1/skew^2 times the
    // coldest row's share, decaying smoothly across the set.
    double acc = 0.0;
    for (std::uint32_t j = 0; j < profile_.hotRows; ++j) {
        const double expo = profile_.hotRows <= 1
            ? 0.0
            : 2.0 * static_cast<double>(j) /
                  static_cast<double>(profile_.hotRows);
        acc += std::pow(std::max(profile_.hotSkew, 1e-3), expo);
        hotCdf_.push_back(acc);
    }
    for (double &v : hotCdf_)
        v /= acc;
}

TraceRecord
SyntheticTrace::next()
{
    TraceRecord rec;
    // Exponentially distributed non-memory run length.
    const double u = rng_.nextDouble();
    rec.nonMemGap = static_cast<std::uint32_t>(
        std::min(-profile_.avgGap * std::log1p(-u), 100000.0));

    const double pick = rng_.nextDouble();
    if (!hotBases_.empty() && pick < profile_.hotProb) {
        rec.addr = pickHotAddr();
    } else if (rng_.nextDouble() < profile_.streamProb) {
        rec.addr = pickStreamAddr();
    } else {
        rec.addr = pickRandomAddr();
    }
    rec.isWrite = rng_.nextBool(profile_.writeFrac);
    return rec;
}

Addr
SyntheticTrace::pickHotAddr()
{
    const double u = rng_.nextDouble();
    const auto it = std::lower_bound(hotCdf_.begin(), hotCdf_.end(), u);
    const std::size_t j = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - hotCdf_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     hotCdf_.size() - 1)));
    const DramOrg &org = map_.org();
    const std::uint32_t col = hotCol_[j]++ % org.linesPerRow();
    return hotBases_[j] + static_cast<Addr>(col) * org.lineBytes;
}

Addr
SyntheticTrace::pickStreamAddr()
{
    const Addr line = streamCursor_++ % footprintLines_;
    return footprintBase_ + line * map_.org().lineBytes;
}

Addr
SyntheticTrace::pickRandomAddr()
{
    const Addr line = rng_.nextBelow(footprintLines_);
    return footprintBase_ + line * map_.org().lineBytes;
}

} // namespace srs
