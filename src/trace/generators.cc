#include "trace/generators.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace srs
{

namespace
{

constexpr const char *kZipfPrefix = "zipf:";
constexpr const char *kHotspotPrefix = "hotspot:";
constexpr const char *kBlendPrefix = "blend:";
constexpr const char *kAttackMarker = "+attack@";

constexpr std::uint32_t kMaxRows = 65536;
constexpr std::uint32_t kMaxSkewMilli = 8000;
constexpr std::uint64_t kMaxShift = 1'000'000'000;

/**
 * Victim-stream intensity knobs.  Not part of the grammar on
 * purpose: the generator families parameterize *where* accesses
 * land; how fast a tenant issues them is fixed at a memory-intensive
 * setting so labels stay short and one spelling means one stream.
 */
constexpr double kVictimAvgGap = 8.0;
constexpr double kVictimWriteFrac = 0.2;

constexpr const char *kGeneratorGrammar =
    "zipf:<rows>@s=<skew> | "
    "hotspot:<rows>@hot=<frac>@p=<prob>[@shift=<cycles>] | "
    "blend:<zipf-or-hotspot-spec>+attack@<rate>, with rows in "
    "1..65536, skew in 0..8, frac and rate in 0.001..0.999, prob in "
    "0.001..1, shift in 1..1000000000, and decimals carrying at most "
    "3 fractional digits";

bool
allDigits(const std::string &text)
{
    if (text.empty())
        return false;
    for (const char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

/** Parse a plain decimal integer knob in [lo, hi]. */
std::uint64_t
parseUint(const std::string &spelling, const char *what,
          const std::string &text, std::uint64_t lo, std::uint64_t hi)
{
    if (!allDigits(text) || text.size() > 12) {
        fatal("workload generator '", spelling, "': '", text,
              "' is not a valid ", what, " (want ", kGeneratorGrammar,
              ")");
    }
    const std::uint64_t value = std::strtoull(text.c_str(), nullptr, 10);
    if (value < lo || value > hi) {
        fatal("workload generator '", spelling, "': ", what, " ", text,
              " is out of range (want ", kGeneratorGrammar, ")");
    }
    return value;
}

/**
 * Parse a decimal fraction with at most 3 fractional digits into
 * exact milli-units ("0.99" -> 990, "1" -> 1000), range-checked
 * against [lo, hi] milli.
 */
std::uint32_t
parseMilli(const std::string &spelling, const char *what,
           const std::string &text, std::uint32_t lo, std::uint32_t hi)
{
    const auto dot = text.find('.');
    const std::string whole = text.substr(0, dot);
    std::string frac =
        dot == std::string::npos ? std::string() : text.substr(dot + 1);
    if (!allDigits(whole) || whole.size() > 6
        || (dot != std::string::npos
            && (!allDigits(frac) || frac.size() > 3))) {
        fatal("workload generator '", spelling, "': '", text,
              "' is not a valid ", what, " (want ", kGeneratorGrammar,
              ")");
    }
    while (frac.size() < 3)
        frac += '0';
    const std::uint64_t milli =
        std::strtoull(whole.c_str(), nullptr, 10) * 1000
        + std::strtoull(frac.c_str(), nullptr, 10);
    if (milli < lo || milli > hi) {
        fatal("workload generator '", spelling, "': ", what, " ", text,
              " is out of range (want ", kGeneratorGrammar, ")");
    }
    return static_cast<std::uint32_t>(milli);
}

/** Canonical milli-unit spelling: 990 -> "0.99", 1000 -> "1". */
std::string
milliToText(std::uint32_t milli)
{
    std::string text = std::to_string(milli / 1000);
    const std::uint32_t frac = milli % 1000;
    if (frac == 0)
        return text;
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03u", frac);
    std::string tail = buf;
    while (tail.back() == '0')
        tail.pop_back();
    return text + tail;
}

/** Split "<a>@<b>@<c>" into its '@'-separated pieces (may be empty). */
std::vector<std::string>
splitAts(const std::string &text)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    for (;;) {
        const auto at = text.find('@', start);
        if (at == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, at - start));
        start = at + 1;
    }
}

/** The part of @p part after "<key>", or fatal() naming the grammar. */
std::string
expectKey(const std::string &spelling, const std::string &part,
          const char *key)
{
    if (part.rfind(key, 0) != 0) {
        fatal("workload generator '", spelling, "': expected '", key,
              "<value>' but found '", part, "' (want ",
              kGeneratorGrammar, ")");
    }
    return part.substr(std::string(key).size());
}

GeneratorSpec
parseZipf(const std::string &spelling, const std::string &body)
{
    const std::vector<std::string> parts = splitAts(body);
    if (parts.size() != 2) {
        fatal("workload generator '", spelling, "': a zipf spec has "
              "exactly one @s=<skew> suffix (want ", kGeneratorGrammar,
              ")");
    }
    GeneratorSpec spec;
    spec.family = GeneratorFamily::Zipf;
    spec.rows = static_cast<std::uint32_t>(
        parseUint(spelling, "row count", parts[0], 1, kMaxRows));
    spec.skewMilli = parseMilli(
        spelling, "skew", expectKey(spelling, parts[1], "s="), 0,
        kMaxSkewMilli);
    return spec;
}

GeneratorSpec
parseHotspot(const std::string &spelling, const std::string &body)
{
    const std::vector<std::string> parts = splitAts(body);
    if (parts.size() != 3 && parts.size() != 4) {
        fatal("workload generator '", spelling, "': a hotspot spec "
              "has @hot=<frac>@p=<prob> and an optional "
              "@shift=<cycles> (want ", kGeneratorGrammar, ")");
    }
    GeneratorSpec spec;
    spec.family = GeneratorFamily::Hotspot;
    spec.rows = static_cast<std::uint32_t>(
        parseUint(spelling, "row count", parts[0], 1, kMaxRows));
    spec.hotFracMilli = parseMilli(
        spelling, "hot fraction", expectKey(spelling, parts[1], "hot="),
        1, 999);
    spec.hotProbMilli = parseMilli(
        spelling, "hot probability", expectKey(spelling, parts[2], "p="),
        1, 1000);
    if (parts.size() == 4) {
        spec.shiftCycles = parseUint(
            spelling, "shift period",
            expectKey(spelling, parts[3], "shift="), 1, kMaxShift);
    }
    return spec;
}

} // namespace

std::string
GeneratorSpec::label() const
{
    std::string victim;
    switch (family) {
      case GeneratorFamily::Zipf:
        victim = kZipfPrefix + std::to_string(rows)
                 + "@s=" + milliToText(skewMilli);
        break;
      case GeneratorFamily::Hotspot:
        victim = kHotspotPrefix + std::to_string(rows)
                 + "@hot=" + milliToText(hotFracMilli)
                 + "@p=" + milliToText(hotProbMilli);
        if (shiftCycles != 0)
            victim += "@shift=" + std::to_string(shiftCycles);
        break;
    }
    if (attackRateMilli == 0)
        return victim;
    return kBlendPrefix + victim + kAttackMarker
           + milliToText(attackRateMilli);
}

bool
GeneratorSpec::matchesPrefix(const std::string &spelling)
{
    return spelling.rfind(kZipfPrefix, 0) == 0
           || spelling.rfind(kHotspotPrefix, 0) == 0
           || spelling.rfind(kBlendPrefix, 0) == 0;
}

GeneratorSpec
GeneratorSpec::parse(const std::string &spelling)
{
    if (spelling.rfind(kZipfPrefix, 0) == 0) {
        return parseZipf(
            spelling, spelling.substr(std::string(kZipfPrefix).size()));
    }
    if (spelling.rfind(kHotspotPrefix, 0) == 0) {
        return parseHotspot(
            spelling,
            spelling.substr(std::string(kHotspotPrefix).size()));
    }
    if (spelling.rfind(kBlendPrefix, 0) != 0) {
        fatal("workload generator '", spelling, "': unknown generator "
              "family (want ", kGeneratorGrammar, ")");
    }
    const std::string rest =
        spelling.substr(std::string(kBlendPrefix).size());
    const auto marker = rest.find(kAttackMarker);
    if (marker == std::string::npos) {
        fatal("workload generator '", spelling, "': a blend spec "
              "needs a '", kAttackMarker, "<rate>' attack stream "
              "(want ", kGeneratorGrammar, ")");
    }
    const std::string victimText = rest.substr(0, marker);
    if (victimText.rfind(kBlendPrefix, 0) == 0) {
        fatal("workload generator '", spelling, "': a blend victim "
              "must be a zipf or hotspot spec, not another blend "
              "(want ", kGeneratorGrammar, ")");
    }
    GeneratorSpec spec = parse(victimText);
    spec.attackRateMilli = parseMilli(
        spelling, "attack rate",
        rest.substr(marker + std::string(kAttackMarker).size()), 1,
        999);
    return spec;
}

GeneratorTrace::GeneratorTrace(const GeneratorSpec &spec,
                               const AddressMap &map, CoreId core,
                               std::uint64_t seed)
    : spec_(spec), map_(map), core_(core),
      rng_(seed ^ (0x9E3779B9ULL * (core + 1)))
{
    const DramOrg &org = map_.org();
    const std::uint64_t totalRows =
        static_cast<std::uint64_t>(org.channels) * org.ranksPerChannel
        * org.banksPerRank * org.rowsPerBank;
    if (spec_.rows == 0 || spec_.rows > totalRows) {
        fatal("workload generator '", spec_.label(), "': ", spec_.rows,
              " rows exceed the machine's ", totalRows, " mapped rows");
    }
    if (spec_.family == GeneratorFamily::Zipf) {
        const double s =
            static_cast<double>(spec_.skewMilli) / 1000.0;
        double acc = 0.0;
        zipfCdf_.reserve(spec_.rows);
        for (std::uint32_t rank = 0; rank < spec_.rows; ++rank) {
            acc += std::pow(static_cast<double>(rank + 1), -s);
            zipfCdf_.push_back(acc);
        }
        for (double &v : zipfCdf_)
            v /= acc;
    }
}

Addr
GeneratorTrace::addrOfRowIndex(std::uint64_t rowIndex,
                               std::uint64_t line)
{
    const DramOrg &org = map_.org();
    const std::uint32_t channel =
        static_cast<std::uint32_t>(rowIndex % org.channels);
    std::uint64_t rest = rowIndex / org.channels;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(rest % org.banksPerRank);
    rest /= org.banksPerRank;
    const std::uint32_t rank =
        static_cast<std::uint32_t>(rest % org.ranksPerChannel);
    const RowId row = static_cast<RowId>(rest / org.ranksPerChannel);
    const std::uint64_t col = line % org.linesPerRow();
    return map_.rowBaseAddr(channel, rank, bank, row)
           + static_cast<Addr>(col) * org.lineBytes;
}

std::uint64_t
GeneratorTrace::hotSetStart() const
{
    const std::uint64_t phase =
        spec_.shiftCycles == 0 ? 0 : time_ / spec_.shiftCycles;
    const std::uint64_t hotRows = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec_.rows)
               * spec_.hotFracMilli / 1000);
    return (phase * hotRows) % spec_.rows;
}

std::uint64_t
GeneratorTrace::pickVictimRow()
{
    if (spec_.family == GeneratorFamily::Zipf) {
        const double u = rng_.nextDouble();
        const auto it =
            std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
        return static_cast<std::uint64_t>(std::min<std::ptrdiff_t>(
            it - zipfCdf_.begin(),
            static_cast<std::ptrdiff_t>(zipfCdf_.size() - 1)));
    }
    const std::uint64_t hotRows = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec_.rows)
               * spec_.hotFracMilli / 1000);
    if (rng_.nextBool(static_cast<double>(spec_.hotProbMilli) / 1000.0))
        return (hotSetStart() + rng_.nextBelow(hotRows)) % spec_.rows;
    return rng_.nextBelow(spec_.rows);
}

TraceRecord
GeneratorTrace::next()
{
    TraceRecord rec;
    // Exponentially distributed non-memory run length, like
    // SyntheticTrace.
    const double u = rng_.nextDouble();
    rec.nonMemGap = static_cast<std::uint32_t>(
        std::min(-kVictimAvgGap * std::log1p(-u), 100000.0));

    const bool attack =
        spec_.attackRateMilli != 0
        && rng_.nextBool(
               static_cast<double>(spec_.attackRateMilli) / 1000.0);
    if (attack) {
        // The embedded hammer stream: zero-gap reads alternating
        // over the victim's two hottest rows (Zipf ranks 0/1, or the
        // leading rows of the current hot set, so the attack follows
        // a phase shift).
        rec.nonMemGap = 0;
        const std::uint64_t hottest =
            spec_.family == GeneratorFamily::Zipf ? 0 : hotSetStart();
        const std::uint64_t offset =
            spec_.rows > 1 ? (attackFlip_++ & 1) : 0;
        rec.addr = addrOfRowIndex((hottest + offset) % spec_.rows,
                                  attackLine_++);
        rec.isWrite = false;
    } else {
        rec.addr = addrOfRowIndex(pickVictimRow(), victimLine_++);
        rec.isWrite = rng_.nextBool(kVictimWriteFrac);
    }
    time_ += rec.nonMemGap + 1;
    return rec;
}

} // namespace srs
