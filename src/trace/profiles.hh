/**
 * @file
 * Named workload profiles standing in for the paper's Pin traces.
 *
 * The paper drives USIMM with post-cache memory traces of SPEC2006,
 * SPEC2017, GAP, COMMERCIAL, PARSEC and BIOBENCH (Section VI).  Those
 * traces are not redistributable, so each benchmark is represented by
 * a deterministic synthetic profile whose knobs control exactly the
 * properties the row-swap mechanisms are sensitive to:
 *
 *  - avgGap:       non-memory instructions per memory access
 *                  (memory intensity)
 *  - hotProb:      fraction of accesses landing in a small hot-row
 *                  set (drives rows past T_S and forces swaps)
 *  - hotRows:      hot-set size; with hotSkew, sets how many rows
 *                  cross a given activation threshold per epoch
 *  - hotSkew:      geometric weighting so the hottest rows see
 *                  multiples of the T_S threshold
 *  - footprintMB:  background working set per core
 *  - streamProb:   background sequential (row-streaming) fraction
 *  - writeFrac:    store ratio
 */

#ifndef SRS_TRACE_PROFILES_HH
#define SRS_TRACE_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace srs
{

/** Tunable description of one benchmark's memory behaviour. */
struct WorkloadProfile
{
    std::string name;
    std::string suite;
    double avgGap = 30.0;
    double hotProb = 0.0;
    std::uint32_t hotRows = 0;
    double hotSkew = 0.5;
    std::uint64_t footprintMB = 64;
    double streamProb = 0.5;
    double writeFrac = 0.3;
};

/** All built-in benchmark profiles (39 workloads across 7 suites). */
const std::vector<WorkloadProfile> &allProfiles();

/** Look up one profile by name; fatal() when unknown. */
const WorkloadProfile &profileByName(const std::string &name);

/** Profiles belonging to @p suite (GUPS/SPEC2K6/.../BIOBENCH). */
std::vector<WorkloadProfile> profilesOfSuite(const std::string &suite);

/** Distinct suite names in presentation order (matches the figures). */
const std::vector<std::string> &suiteNames();

/**
 * Compose a MIX workload: per-core profiles drawn deterministically
 * (seeded by @p index) from the single-benchmark pool.
 */
std::vector<WorkloadProfile> mixWorkload(std::uint32_t index,
                                         std::uint32_t cores);

} // namespace srs

#endif // SRS_TRACE_PROFILES_HH
