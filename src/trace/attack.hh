/**
 * @file
 * Attacker access-pattern generators (Section III).
 *
 * HammerTrace issues back-to-back accesses to one logical row — the
 * biasing phase of Juggernaut.  Because the attacker addresses the
 * row *logically*, the stream keeps following the row through every
 * swap the mitigation performs, forcing unswap-swap after unswap-swap
 * and depositing latent activations at the row's original physical
 * location (under RRS) or not (under SRS).
 *
 * JuggernautTrace composes the full two-phase pattern of Figure 5:
 * N biasing rounds on the aggressor followed by random-guess rounds
 * of T_S activations each.
 */

#ifndef SRS_TRACE_ATTACK_HH
#define SRS_TRACE_ATTACK_HH

#include <cstdint>

#include "common/rng.hh"
#include "cpu/core.hh"
#include "dram/address.hh"

namespace srs
{

/** Continuous single-row hammer with configurable spacing. */
class HammerTrace : public TraceSource
{
  public:
    /**
     * @param map   address map
     * @param channel/bank/row  logical target row
     * @param gap   non-memory instructions between accesses.  The
     *              default spaces accesses ~tRC apart, modelling the
     *              clflush+fence serialization real Row Hammer
     *              attacks use to force one ACT per access (without
     *              it, FR-FCFS coalesces the stream into row hits).
     */
    HammerTrace(const AddressMap &map, std::uint32_t channel,
                std::uint32_t bank, RowId row, std::uint32_t gap = 600);

    TraceRecord next() override;

    Addr targetRowBase() const { return base_; }

  private:
    const AddressMap &map_;
    Addr base_;
    std::uint32_t gap_;
    std::uint32_t col_ = 0;
};

/** Two-phase Juggernaut pattern (Figure 5). */
class JuggernautTrace : public TraceSource
{
  public:
    /**
     * @param map      address map
     * @param channel/bank  attacked bank
     * @param aggrRow  logical aggressor row
     * @param ts       activations per round (T_S)
     * @param rounds   biasing rounds (N) before random guessing
     * @param seed     RNG seed for the guess sequence
     * @param gap      access spacing (see HammerTrace)
     */
    JuggernautTrace(const AddressMap &map, std::uint32_t channel,
                    std::uint32_t bank, RowId aggrRow, std::uint32_t ts,
                    std::uint32_t rounds, std::uint64_t seed,
                    std::uint32_t gap = 600);

    TraceRecord next() override;

    /** @return true once the biasing phase is over. */
    bool guessing() const { return guessing_; }

    /** Rows guessed so far in phase two. */
    std::uint64_t guessesMade() const { return guesses_; }

  private:
    Addr rowAddr(RowId row, std::uint32_t col) const;

    const AddressMap &map_;
    std::uint32_t channel_;
    std::uint32_t bank_;
    RowId aggrRow_;
    std::uint32_t ts_;
    std::uint32_t gap_;
    std::uint64_t biasAccessesLeft_;
    Rng rng_;

    bool guessing_ = false;
    RowId guessRow_ = kInvalidRow;
    std::uint32_t guessAccessesLeft_ = 0;
    std::uint64_t guesses_ = 0;
    std::uint32_t col_ = 0;
};

} // namespace srs

#endif // SRS_TRACE_ATTACK_HH
