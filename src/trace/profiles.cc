#include "trace/profiles.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace srs
{

namespace
{

/**
 * The profile table.  Intensity and hot-row parameters are chosen so
 * the benchmarks the paper singles out as swap-heavy at T_RH = 1200
 * (gcc, hmmer, bzip2, zeusmp, astar, sphinx, xz_17, GUPS) have rows
 * crossing T_S many times per epoch, while compute-bound codes
 * (swaptions, freqmine, ...) barely touch memory.
 */
std::vector<WorkloadProfile>
buildProfiles()
{
    std::vector<WorkloadProfile> p;
    auto add = [&p](const char *name, const char *suite, double gap,
                    double hotProb, std::uint32_t hotRows, double skew,
                    std::uint64_t fpMB, double stream, double wf) {
        p.push_back(WorkloadProfile{name, suite, gap, hotProb, hotRows,
                                    skew, fpMB, stream, wf});
    };

    // name, suite, avgGap, hotProb, hotRows, hotSkew, fpMB, stream, wr
    add("gups", "GUPS", 1.0, 0.75, 2, 0.60, 64, 0.00, 0.50);

    add("gcc", "SPEC2K6", 8.0, 0.50, 6, 0.35, 96, 0.35, 0.30);
    add("hmmer", "SPEC2K6", 7.0, 0.40, 6, 0.30, 24, 0.50, 0.25);
    add("bzip2", "SPEC2K6", 9.0, 0.35, 8, 0.30, 48, 0.40, 0.30);
    add("zeusmp", "SPEC2K6", 10.0, 0.32, 8, 0.30, 128, 0.60, 0.30);
    add("astar", "SPEC2K6", 11.0, 0.30, 8, 0.30, 64, 0.20, 0.25);
    add("sphinx3", "SPEC2K6", 10.0, 0.30, 8, 0.30, 80, 0.30, 0.20);
    add("mcf", "SPEC2K6", 6.0, 0.04, 32, 0.40, 384, 0.10, 0.25);
    add("lbm", "SPEC2K6", 8.0, 0.05, 8, 0.40, 256, 0.90, 0.45);
    add("libquantum", "SPEC2K6", 9.0, 0.04, 4, 0.50, 128, 0.95, 0.25);
    add("omnetpp", "SPEC2K6", 13.0, 0.12, 24, 0.35, 160, 0.15, 0.30);
    add("milc", "SPEC2K6", 11.0, 0.06, 8, 0.40, 192, 0.70, 0.35);
    add("soplex", "SPEC2K6", 10.0, 0.10, 16, 0.35, 224, 0.40, 0.25);

    add("xz_17", "SPEC2K17", 7.0, 0.40, 6, 0.30, 64, 0.30, 0.35);
    add("gcc_17", "SPEC2K17", 14.0, 0.10, 20, 0.30, 96, 0.35, 0.30);
    add("mcf_17", "SPEC2K17", 7.0, 0.08, 32, 0.40, 320, 0.10, 0.25);
    add("lbm_17", "SPEC2K17", 8.0, 0.05, 8, 0.40, 256, 0.90, 0.45);
    add("cam4_17", "SPEC2K17", 22.0, 0.10, 12, 0.35, 96, 0.50, 0.30);
    add("fotonik3d_17", "SPEC2K17", 12.0, 0.04, 4, 0.50, 192, 0.92, 0.40);

    add("bc", "GAP", 6.0, 0.08, 48, 0.15, 256, 0.05, 0.20);
    add("bfs", "GAP", 7.0, 0.07, 40, 0.15, 256, 0.05, 0.15);
    add("cc", "GAP", 8.0, 0.06, 40, 0.18, 224, 0.05, 0.15);
    add("pr", "GAP", 5.0, 0.09, 64, 0.12, 320, 0.05, 0.25);
    add("sssp", "GAP", 7.0, 0.07, 48, 0.15, 256, 0.05, 0.20);
    add("tc", "GAP", 9.0, 0.05, 32, 0.20, 192, 0.05, 0.10);

    add("comm1", "COMMERCIAL", 20.0, 0.06, 24, 0.30, 128, 0.20, 0.35);
    add("comm2", "COMMERCIAL", 26.0, 0.10, 16, 0.30, 96, 0.25, 0.35);
    add("comm3", "COMMERCIAL", 30.0, 0.08, 16, 0.35, 128, 0.20, 0.30);
    add("comm4", "COMMERCIAL", 24.0, 0.06, 20, 0.30, 160, 0.15, 0.40);
    add("comm5", "COMMERCIAL", 34.0, 0.05, 8, 0.40, 96, 0.30, 0.30);

    add("canneal", "PARSEC", 12.0, 0.07, 32, 0.30, 384, 0.05, 0.25);
    add("facesim", "PARSEC", 24.0, 0.08, 12, 0.35, 128, 0.55, 0.35);
    add("ferret", "PARSEC", 28.0, 0.06, 8, 0.40, 96, 0.35, 0.25);
    add("fluidanimate", "PARSEC", 26.0, 0.06, 8, 0.40, 128, 0.60, 0.35);
    add("freqmine", "PARSEC", 60.0, 0.02, 4, 0.50, 64, 0.40, 0.20);
    add("streamcluster", "PARSEC", 10.0, 0.03, 4, 0.50, 160, 0.95, 0.20);
    add("swaptions", "PARSEC", 120.0, 0.00, 0, 0.50, 16, 0.50, 0.20);

    add("mummer", "BIOBENCH", 7.0, 0.09, 24, 0.25, 192, 0.15, 0.15);
    add("tigr", "BIOBENCH", 9.0, 0.07, 20, 0.30, 160, 0.20, 0.15);

    return p;
}

} // namespace

const std::vector<WorkloadProfile> &
allProfiles()
{
    static const std::vector<WorkloadProfile> table = buildProfiles();
    return table;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const WorkloadProfile &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile: ", name);
}

std::vector<WorkloadProfile>
profilesOfSuite(const std::string &suite)
{
    std::vector<WorkloadProfile> out;
    for (const WorkloadProfile &p : allProfiles()) {
        if (p.suite == suite)
            out.push_back(p);
    }
    if (out.empty())
        fatal("unknown suite: ", suite);
    return out;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "GUPS", "SPEC2K6", "SPEC2K17", "GAP",
        "COMMERCIAL", "PARSEC", "BIOBENCH",
    };
    return names;
}

std::vector<WorkloadProfile>
mixWorkload(std::uint32_t index, std::uint32_t cores)
{
    const auto &pool = allProfiles();
    Rng rng(0xC0FFEE00ULL + index);
    std::vector<WorkloadProfile> out;
    out.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c)
        out.push_back(pool[rng.nextBelow(pool.size())]);
    return out;
}

} // namespace srs
