#include "tracker/misra_gries.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

MisraGriesTracker::MisraGriesTracker(const MisraGriesConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.ts == 0)
        fatal("MisraGries: T_S must be nonzero");
    const std::uint64_t minEntries =
        ceilDiv(cfg_.actMaxPerEpoch, cfg_.ts);
    entriesPerBank_ = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(minEntries) * cfg_.overProvision));
    const std::uint32_t banks = cfg_.channels * cfg_.banksPerChannel;
    tables_.reserve(banks);
    for (std::uint32_t i = 0; i < banks; ++i)
        tables_.emplace_back(entriesPerBank_);
}

bool
MisraGriesTracker::recordActivation(std::uint32_t channel,
                                    std::uint32_t bank, RowId physRow,
                                    Cycle now)
{
    (void)now;
    const std::uint32_t idx = channel * cfg_.banksPerChannel + bank;
    SRS_ASSERT(idx < tables_.size(), "bank index out of range");
    SpaceSaving &table = tables_[idx];
    const std::uint32_t count = table.increment(physRow);
    if (count >= cfg_.ts) {
        table.reset(physRow);
        return true;
    }
    return false;
}

void
MisraGriesTracker::resetEpoch()
{
    for (SpaceSaving &t : tables_)
        t.clear();
}

std::uint64_t
MisraGriesTracker::storageBitsPerBank() const
{
    // Each entry: row id (log2 rows, ~17 bits rounded to 20 for tag
    // flexibility) + count (log2 T_S + 1, stored as 13 bits to match
    // the paper's per-row counter width).
    constexpr std::uint64_t entryBits = 20 + 13;
    return static_cast<std::uint64_t>(entriesPerBank_) * entryBits;
}

const SpaceSaving &
MisraGriesTracker::tableAt(std::uint32_t channel, std::uint32_t bank) const
{
    return tables_.at(channel * cfg_.banksPerChannel + bank);
}

} // namespace srs
