/**
 * @file
 * Counting Bloom filters — the tracking substrate of BlockHammer
 * (Yaglikci et al., HPCA 2021; paper Section IX-A).
 *
 * A counting Bloom filter over-approximates per-row activation
 * counts in bounded SRAM: each insert increments k hashed counters
 * and the estimate of a key is the minimum of its counters, so the
 * estimate never under-counts (the property BlockHammer's safety
 * argument rests on).  The optional conservative-update policy only
 * bumps the counters that equal the current minimum, tightening the
 * over-approximation at no storage cost.
 *
 * DualCountingBloom time-interleaves two filters so history always
 * spans at least one full blacklisting window: the active filter
 * absorbs inserts, estimates take the maximum over both, and at
 * every window boundary the passive filter is cleared and the roles
 * swap.
 */

#ifndef SRS_TRACKER_COUNTING_BLOOM_HH
#define SRS_TRACKER_COUNTING_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace srs
{

/** Sizing and policy knobs for one counting Bloom filter. */
struct CountingBloomConfig
{
    std::uint32_t counters = 8192;   ///< counter array size (pow2)
    std::uint32_t hashes = 4;        ///< k
    std::uint32_t counterBits = 16;  ///< saturation width
    bool conservativeUpdate = true;  ///< bump only min counters
};

/** One counting Bloom filter over RowId keys. */
class CountingBloom
{
  public:
    CountingBloom(const CountingBloomConfig &cfg, std::uint64_t seed);

    /**
     * Record one occurrence of @p key.
     * @return the key's post-insert estimate
     */
    std::uint32_t insert(RowId key);

    /** Over-approximate occurrence count of @p key. */
    std::uint32_t estimate(RowId key) const;

    /** Zero all counters. */
    void clear();

    /** Inserts since the last clear. */
    std::uint64_t inserts() const { return inserts_; }

    /** SRAM bits: counters x counter width. */
    std::uint64_t storageBits() const;

    const CountingBloomConfig &config() const { return cfg_; }

  private:
    std::uint32_t indexOf(RowId key, std::uint32_t hash) const;

    CountingBloomConfig cfg_;
    std::uint32_t mask_;
    std::uint32_t maxCount_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint64_t> seeds_;
    std::uint64_t inserts_ = 0;
};

/** Two time-interleaved filters (the BlockHammer arrangement). */
class DualCountingBloom
{
  public:
    DualCountingBloom(const CountingBloomConfig &cfg,
                      std::uint64_t seed);

    /** Record into the active filter; @return combined estimate. */
    std::uint32_t insert(RowId key);

    /** max(active, passive) — never under-counts across windows. */
    std::uint32_t estimate(RowId key) const;

    /** Window boundary: clear the passive filter, swap roles. */
    void rotate();

    /** Clear both filters (epoch reset). */
    void clearAll();

    std::uint64_t storageBits() const;

    /** Rotations performed. */
    std::uint64_t rotations() const { return rotations_; }

  private:
    CountingBloom filters_[2];
    std::uint32_t active_ = 0;
    std::uint64_t rotations_ = 0;
};

} // namespace srs

#endif // SRS_TRACKER_COUNTING_BLOOM_HH
