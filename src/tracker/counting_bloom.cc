#include "tracker/counting_bloom.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace srs
{

namespace
{

/** Stateless 64-bit mix (splitmix64 finalizer). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

CountingBloom::CountingBloom(const CountingBloomConfig &cfg,
                             std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg_.counters == 0 ||
        (cfg_.counters & (cfg_.counters - 1)) != 0) {
        fatal("counting bloom: counters must be a power of two");
    }
    if (cfg_.hashes == 0 || cfg_.hashes > 8)
        fatal("counting bloom: need 1-8 hash functions");
    if (cfg_.counterBits == 0 || cfg_.counterBits > 32)
        fatal("counting bloom: counter width must be 1-32 bits");
    mask_ = cfg_.counters - 1;
    maxCount_ = cfg_.counterBits >= 32
        ? ~0u
        : (1u << cfg_.counterBits) - 1;
    counts_.assign(cfg_.counters, 0);
    Rng rng(seed);
    seeds_.reserve(cfg_.hashes);
    for (std::uint32_t h = 0; h < cfg_.hashes; ++h)
        seeds_.push_back(rng.next() | 1);
}

std::uint32_t
CountingBloom::indexOf(RowId key, std::uint32_t hash) const
{
    return static_cast<std::uint32_t>(mix64(key ^ seeds_[hash])) & mask_;
}

std::uint32_t
CountingBloom::insert(RowId key)
{
    ++inserts_;
    std::uint32_t minBefore = ~0u;
    for (std::uint32_t h = 0; h < cfg_.hashes; ++h)
        minBefore = std::min(minBefore, counts_[indexOf(key, h)]);
    std::uint32_t minAfter = ~0u;
    for (std::uint32_t h = 0; h < cfg_.hashes; ++h) {
        std::uint32_t &slot = counts_[indexOf(key, h)];
        if (cfg_.conservativeUpdate && slot != minBefore) {
            // Conservative update: a counter above the current
            // minimum already over-counts this key; bumping it again
            // would only loosen the estimate.
            minAfter = std::min(minAfter, slot);
            continue;
        }
        if (slot < maxCount_)
            ++slot;
        minAfter = std::min(minAfter, slot);
    }
    return minAfter;
}

std::uint32_t
CountingBloom::estimate(RowId key) const
{
    std::uint32_t est = ~0u;
    for (std::uint32_t h = 0; h < cfg_.hashes; ++h)
        est = std::min(est, counts_[indexOf(key, h)]);
    return est;
}

void
CountingBloom::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    inserts_ = 0;
}

std::uint64_t
CountingBloom::storageBits() const
{
    return static_cast<std::uint64_t>(cfg_.counters) * cfg_.counterBits;
}

DualCountingBloom::DualCountingBloom(const CountingBloomConfig &cfg,
                                     std::uint64_t seed)
    : filters_{CountingBloom(cfg, mix64(seed)),
               CountingBloom(cfg, mix64(seed + 1))}
{
}

std::uint32_t
DualCountingBloom::insert(RowId key)
{
    filters_[active_].insert(key);
    return estimate(key);
}

std::uint32_t
DualCountingBloom::estimate(RowId key) const
{
    return std::max(filters_[0].estimate(key),
                    filters_[1].estimate(key));
}

void
DualCountingBloom::rotate()
{
    const std::uint32_t passive = active_ ^ 1u;
    filters_[passive].clear();
    active_ = passive;
    ++rotations_;
}

void
DualCountingBloom::clearAll()
{
    filters_[0].clear();
    filters_[1].clear();
}

std::uint64_t
DualCountingBloom::storageBits() const
{
    return filters_[0].storageBits() + filters_[1].storageBits();
}

} // namespace srs
