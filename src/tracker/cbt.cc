#include "tracker/cbt.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srs
{

CbtTracker::CbtTracker(const CbtConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.ts == 0)
        fatal("cbt: T_S must be nonzero");
    if (cfg_.maxCounters < 2)
        fatal("cbt: need at least two counters per bank");
    if (cfg_.splitFraction <= 0.0 || cfg_.splitFraction > 1.0)
        fatal("cbt: split fraction must be in (0, 1]");
    if (cfg_.rowsPerBank < 2)
        fatal("cbt: bank needs at least two rows");
    trees_.resize(static_cast<std::size_t>(cfg_.channels) *
                  cfg_.banksPerChannel);
    resetEpoch();
}

CbtTracker::BankTree &
CbtTracker::tree(std::uint32_t channel, std::uint32_t bank)
{
    const std::size_t idx =
        static_cast<std::size_t>(channel) * cfg_.banksPerChannel + bank;
    SRS_ASSERT(idx < trees_.size(), "bank index out of range");
    return trees_[idx];
}

const CbtTracker::BankTree &
CbtTracker::tree(std::uint32_t channel, std::uint32_t bank) const
{
    const std::size_t idx =
        static_cast<std::size_t>(channel) * cfg_.banksPerChannel + bank;
    SRS_ASSERT(idx < trees_.size(), "bank index out of range");
    return trees_[idx];
}

std::size_t
CbtTracker::leafIndex(const BankTree &t, RowId row)
{
    // Leaves are sorted by lo and cover the row space: binary search
    // for the first leaf whose hi >= row.
    const auto it = std::lower_bound(
        t.leaves.begin(), t.leaves.end(), row,
        [](const Leaf &leaf, RowId r) { return leaf.hi < r; });
    SRS_ASSERT(it != t.leaves.end() && it->lo <= row && row <= it->hi,
               "cbt leaves lost coverage");
    return static_cast<std::size_t>(it - t.leaves.begin());
}

bool
CbtTracker::recordActivation(std::uint32_t channel, std::uint32_t bank,
                             RowId physRow, Cycle now)
{
    (void)now;
    SRS_ASSERT(physRow < cfg_.rowsPerBank, "row out of range");
    BankTree &t = tree(channel, bank);
    std::size_t i = leafIndex(t, physRow);
    Leaf *leaf = &t.leaves[i];
    ++leaf->count;

    const auto splitAt = static_cast<std::uint64_t>(
        cfg_.splitFraction * cfg_.ts);
    // Narrow hot ranges while counter budget remains.  Children
    // inherit the parent count so the estimate never under-counts.
    while (leaf->lo != leaf->hi &&
           leaf->count >= std::max<std::uint64_t>(1, splitAt) &&
           t.leaves.size() < cfg_.maxCounters) {
        const RowId mid = leaf->lo + (leaf->hi - leaf->lo) / 2;
        Leaf right{static_cast<RowId>(mid + 1), leaf->hi, leaf->count};
        leaf->hi = mid;
        t.leaves.insert(t.leaves.begin() +
                            static_cast<std::ptrdiff_t>(i) + 1,
                        right);
        stats_.inc("splits");
        if (physRow > mid)
            ++i;
        leaf = &t.leaves[i];
    }

    if (leaf->lo == leaf->hi && leaf->count >= cfg_.ts) {
        leaf->count = 0;
        stats_.inc("triggers");
        return true;
    }
    if (leaf->lo != leaf->hi && leaf->count >= cfg_.ts) {
        // Out of counters: the range can no longer narrow, so fire
        // conservatively on the accessed row (a granularity false
        // positive, counted separately for analysis).
        leaf->count = 0;
        stats_.inc("coarse_triggers");
        return true;
    }
    return false;
}

void
CbtTracker::resetEpoch()
{
    for (BankTree &t : trees_) {
        t.leaves.clear();
        t.leaves.push_back(
            Leaf{0, static_cast<RowId>(cfg_.rowsPerBank - 1), 0});
    }
    stats_.inc("epoch_resets");
}

std::uint64_t
CbtTracker::storageBitsPerBank() const
{
    // Each counter: two row-range bounds (17 bits each) plus a
    // 13-bit count (T_S < 8192 in every configuration evaluated).
    return static_cast<std::uint64_t>(cfg_.maxCounters) *
           (2 * 17 + 13);
}

std::uint32_t
CbtTracker::leavesAt(std::uint32_t channel, std::uint32_t bank) const
{
    return static_cast<std::uint32_t>(tree(channel, bank).leaves.size());
}

std::uint64_t
CbtTracker::countOf(std::uint32_t channel, std::uint32_t bank,
                    RowId physRow) const
{
    const BankTree &t = tree(channel, bank);
    return t.leaves[leafIndex(t, physRow)].count;
}

} // namespace srs
