#include "tracker/space_saving.hh"

#include "common/logging.hh"

namespace srs
{

SpaceSaving::SpaceSaving(std::uint32_t capacity)
    : capacity_(capacity)
{
    SRS_ASSERT(capacity_ > 0, "zero-capacity tracker");
}

void
SpaceSaving::moveBucket(RowId row, std::uint32_t from, std::uint32_t to)
{
    auto it = byCount_.find(from);
    SRS_ASSERT(it != byCount_.end(), "bucket bookkeeping broken");
    it->second.erase(row);
    if (it->second.empty())
        byCount_.erase(it);
    byCount_[to].insert(row);
}

std::uint32_t
SpaceSaving::increment(RowId row)
{
    auto it = counts_.find(row);
    if (it != counts_.end()) {
        const std::uint32_t old = it->second;
        ++it->second;
        moveBucket(row, old, it->second);
        return it->second;
    }

    if (counts_.size() < capacity_) {
        counts_[row] = 1;
        byCount_[1].insert(row);
        return 1;
    }

    // Displace a minimum-count victim; the newcomer inherits its
    // count + 1 (the Space-Saving overestimate).
    auto minIt = byCount_.begin();
    const std::uint32_t minCount = minIt->first;
    const RowId victim = *minIt->second.begin();
    minIt->second.erase(victim);
    if (minIt->second.empty())
        byCount_.erase(minIt);
    counts_.erase(victim);

    const std::uint32_t newCount = minCount + 1;
    counts_[row] = newCount;
    byCount_[newCount].insert(row);
    return newCount;
}

std::uint32_t
SpaceSaving::countOf(RowId row) const
{
    const auto it = counts_.find(row);
    return it == counts_.end() ? 0 : it->second;
}

void
SpaceSaving::reset(RowId row)
{
    auto it = counts_.find(row);
    if (it == counts_.end())
        return;
    moveBucket(row, it->second, 0);
    it->second = 0;
}

void
SpaceSaving::clear()
{
    counts_.clear();
    byCount_.clear();
}

} // namespace srs
