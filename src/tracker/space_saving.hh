/**
 * @file
 * Space-Saving frequent-item summary — the Misra-Gries-family
 * counting structure behind Graphene-style trackers.
 *
 * Guarantee: any row with true count > ACT_max / capacity is present
 * in the table, and estimates never undercount (a displaced entry's
 * successor inherits its count).  Overcounting is security-safe: it
 * can only trigger mitigations early.
 */

#ifndef SRS_TRACKER_SPACE_SAVING_HH
#define SRS_TRACKER_SPACE_SAVING_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"

namespace srs
{

/** Bounded-size counter table with O(log) bucket maintenance. */
class SpaceSaving
{
  public:
    explicit SpaceSaving(std::uint32_t capacity);

    /**
     * Count one occurrence of @p row.
     * @return the row's (possibly overestimated) count after update
     */
    std::uint32_t increment(RowId row);

    /** Current estimate; 0 when untracked. */
    std::uint32_t countOf(RowId row) const;

    /** Reset a row's count to zero (post-mitigation). */
    void reset(RowId row);

    /** Drop everything (epoch boundary). */
    void clear();

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(counts_.size());
    }
    std::uint32_t capacity() const { return capacity_; }

  private:
    void moveBucket(RowId row, std::uint32_t from, std::uint32_t to);

    std::uint32_t capacity_;
    std::unordered_map<RowId, std::uint32_t> counts_;
    /** count -> rows at that count; begin() is the eviction pool. */
    std::map<std::uint32_t, std::unordered_set<RowId>> byCount_;
};

} // namespace srs

#endif // SRS_TRACKER_SPACE_SAVING_HH
