/**
 * @file
 * TWiCe — Time Window Counter tracker (Lee et al., ISCA 2019; cited
 * by the paper as a VFM-era tracker, Section IX-B).
 *
 * TWiCe keeps an exact counter per *tracked* row but bounds the
 * table by pruning: a row whose activation count after `age` epochs
 * of its lifetime could not reach the threshold even at the maximum
 * remaining rate is dropped.  Concretely, an entry is pruned at its
 * periodic checkpoint when
 *
 *     count < age * threshold / checkpointsPerWindow
 *
 * i.e. the row is not on pace.  Rows on pace survive and fire at
 * T_S like every other tracker here, so TWiCe slots into the same
 * AggressorTracker seam as Misra-Gries / Hydra / CBT and can drive
 * any of the mitigations.
 *
 * The interesting properties — table occupancy bounded by pruning,
 * no false negatives for on-pace rows, pruning false negatives only
 * for rows that stop hammering — are covered by tests.
 */

#ifndef SRS_TRACKER_TWICE_HH
#define SRS_TRACKER_TWICE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "tracker/tracker.hh"

namespace srs
{

/** Configuration for the TWiCe tracker. */
struct TwiceConfig
{
    std::uint32_t ts = 800;            ///< trigger threshold T_S
    std::uint64_t actMaxPerEpoch = 1360000;
    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 16;

    /** Pruning checkpoints per refresh window. */
    std::uint32_t checkpoints = 16;

    /** Activations between checkpoints (derived). */
    std::uint64_t checkpointInterval() const
    {
        return actMaxPerEpoch / checkpoints;
    }
};

/** Per-bank time-window counters with on-pace pruning. */
class TwiceTracker : public AggressorTracker
{
  public:
    explicit TwiceTracker(const TwiceConfig &cfg);

    bool recordActivation(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now) override;
    void resetEpoch() override;
    std::uint64_t storageBitsPerBank() const override;
    const char *name() const override { return "twice"; }

    /** Live entries in one bank's table. */
    std::size_t entriesAt(std::uint32_t channel,
                          std::uint32_t bank) const;

    /** Tracked count for a row (0 when pruned/untracked). */
    std::uint32_t countOf(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow) const;

    const StatSet &stats() const { return stats_; }

  private:
    struct Entry
    {
        std::uint32_t count = 0;
        std::uint32_t age = 0;   ///< checkpoints survived
    };

    struct BankTable
    {
        std::unordered_map<RowId, Entry> rows;
        std::uint64_t actsSinceCheckpoint = 0;
    };

    void checkpoint(BankTable &table);

    BankTable &table(std::uint32_t channel, std::uint32_t bank);
    const BankTable &table(std::uint32_t channel,
                           std::uint32_t bank) const;

    TwiceConfig cfg_;
    std::vector<BankTable> tables_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_TRACKER_TWICE_HH
