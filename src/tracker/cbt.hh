/**
 * @file
 * CBT — Counter-Based Tree aggressor tracker (Seyedzadeh et al.,
 * ISCA 2018; paper Section IX-B).
 *
 * CBT tracks activations with a small adaptive binary tree per
 * bank: each leaf counter covers a contiguous range of rows.  A
 * counter that grows hot *splits*, halving its range and focusing
 * resolution where the activity is; the split children inherit the
 * parent's count (never under-counting, like the counting Bloom
 * filter).  When every row of a leaf's range could not individually
 * have crossed T_S the leaf stays coarse and cheap.
 *
 * A leaf whose range has narrowed to a single row and whose count
 * reaches T_S fires the mitigation trigger.  All counters reset at
 * the epoch boundary (the tree collapses back to the root).
 *
 * Compared to Misra-Gries the tree needs far fewer counters, at the
 * cost of range-granularity false positives early in an epoch —
 * both properties are covered by tests and visible in the stats.
 */

#ifndef SRS_TRACKER_CBT_HH
#define SRS_TRACKER_CBT_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "tracker/tracker.hh"

namespace srs
{

/** Configuration for the CBT tracker. */
struct CbtConfig
{
    std::uint32_t ts = 800;          ///< trigger threshold T_S
    std::uint32_t maxCounters = 256; ///< counters per bank
    std::uint32_t rowsPerBank = 128 * 1024;
    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 16;

    /** Split a leaf when its count reaches splitFraction * T_S. */
    double splitFraction = 0.5;
};

/** Per-bank adaptive counter-tree tracking. */
class CbtTracker : public AggressorTracker
{
  public:
    explicit CbtTracker(const CbtConfig &cfg);

    bool recordActivation(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now) override;
    void resetEpoch() override;
    std::uint64_t storageBitsPerBank() const override;
    const char *name() const override { return "cbt"; }

    /** Live leaves in one bank's tree (tests/analysis). */
    std::uint32_t leavesAt(std::uint32_t channel,
                           std::uint32_t bank) const;

    /** Count currently accumulated for the leaf covering a row. */
    std::uint64_t countOf(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow) const;

    const StatSet &stats() const { return stats_; }

  private:
    /** One leaf: a row range [lo, hi] with a shared counter. */
    struct Leaf
    {
        RowId lo;
        RowId hi;
        std::uint64_t count;
    };

    struct BankTree
    {
        std::vector<Leaf> leaves;  ///< sorted, disjoint, covering
    };

    BankTree &tree(std::uint32_t channel, std::uint32_t bank);
    const BankTree &tree(std::uint32_t channel,
                         std::uint32_t bank) const;
    static std::size_t leafIndex(const BankTree &t, RowId row);

    CbtConfig cfg_;
    std::vector<BankTree> trees_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_TRACKER_CBT_HH
