/**
 * @file
 * Misra-Gries / Graphene-style aggressor tracker (used by RRS and
 * SRS in the paper; modelled as a CAT in the memory controller).
 *
 * One Space-Saving table per bank, sized so every row that can make
 * T_S activations within an epoch is guaranteed to be tracked:
 * entries = ceil(ACT_max_epoch / T_S).
 */

#ifndef SRS_TRACKER_MISRA_GRIES_HH
#define SRS_TRACKER_MISRA_GRIES_HH

#include <cstdint>
#include <vector>

#include "tracker/space_saving.hh"
#include "tracker/tracker.hh"

namespace srs
{

/** Configuration for the Misra-Gries tracker. */
struct MisraGriesConfig
{
    std::uint32_t ts = 800;              ///< swap threshold T_S
    std::uint64_t actMaxPerEpoch = 1360000; ///< ACTs per bank per epoch
    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 16;
    /** Safety margin on table size (Graphene doubles it). */
    double overProvision = 2.0;
};

/** Per-bank Misra-Gries tracking with T_S trigger. */
class MisraGriesTracker : public AggressorTracker
{
  public:
    explicit MisraGriesTracker(const MisraGriesConfig &cfg);

    bool recordActivation(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now) override;
    void resetEpoch() override;
    std::uint64_t storageBitsPerBank() const override;
    const char *name() const override { return "misra-gries"; }

    /** Table capacity per bank (exposed for tests). */
    std::uint32_t entriesPerBank() const { return entriesPerBank_; }

    /** Direct table access for tests. */
    const SpaceSaving &tableAt(std::uint32_t channel,
                               std::uint32_t bank) const;

  private:
    MisraGriesConfig cfg_;
    std::uint32_t entriesPerBank_;
    std::vector<SpaceSaving> tables_;  ///< channel-major, per bank
};

} // namespace srs

#endif // SRS_TRACKER_MISRA_GRIES_HH
