#include "tracker/hydra.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

HydraTracker::HydraTracker(const HydraConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.ts == 0 || cfg_.rowsPerGroup == 0)
        fatal("Hydra: degenerate configuration");
    groupsPerBank_ = ceilDiv(cfg_.rowsPerBank, cfg_.rowsPerGroup);
    gct_.assign(cfg_.channels * cfg_.banksPerChannel,
                std::vector<std::uint32_t>(groupsPerBank_, 0));
    rcc_.resize(cfg_.channels);
}

std::uint64_t
HydraTracker::rowKey(std::uint32_t bank, RowId row) const
{
    return (static_cast<std::uint64_t>(bank) << 32) | row;
}

std::uint32_t
HydraTracker::groupThreshold() const
{
    const auto thr = static_cast<std::uint32_t>(
        static_cast<double>(cfg_.ts) * cfg_.groupThresholdFrac);
    return thr == 0 ? 1 : thr;
}

bool
HydraTracker::recordActivation(std::uint32_t channel, std::uint32_t bank,
                               RowId physRow, Cycle now)
{
    (void)now;
    const std::uint32_t flat = channel * cfg_.banksPerChannel + bank;
    SRS_ASSERT(flat < gct_.size(), "bank index out of range");
    const std::uint32_t group = physRow / cfg_.rowsPerGroup;
    std::uint32_t &gcount = gct_[flat][group];

    if (gcount < groupThreshold()) {
        ++gcount;
        return false;
    }

    // Hot group: per-row tracking through the RCC.
    Rcc &rcc = rcc_[channel];
    const std::uint64_t key = rowKey(bank, physRow);
    auto it = rcc.map.find(key);
    if (it == rcc.map.end()) {
        stats_.inc("rcc_misses");
        // RCT read (and write-back of the victim) occupy the bank.
        if (traffic_) {
            MigrationJob job;
            job.kind = MigrationJob::Kind::CounterAccess;
            job.duration = cfg_.rctAccessCycles;
            const RowId counterRow = group % cfg_.rctRows;
            job.charges.push_back(RowCharge{counterRow, 1});
            traffic_(channel, bank, std::move(job));
        }
        if (rcc.map.size() >= cfg_.rccEntries) {
            const std::uint64_t victim = rcc.lru.back();
            rcc.lru.pop_back();
            rcc.map.erase(victim);
            stats_.inc("rcc_evictions");
        }
        rcc.lru.push_front(key);
        // Pessimistic initialization: the row is assumed to have
        // contributed the whole group threshold (Hydra's safe init).
        Rcc::Entry entry{groupThreshold(), rcc.lru.begin()};
        it = rcc.map.emplace(key, entry).first;
    } else {
        stats_.inc("rcc_hits");
        rcc.lru.splice(rcc.lru.begin(), rcc.lru, it->second.lruIt);
    }

    if (++it->second.count >= cfg_.ts) {
        it->second.count = 0;
        return true;
    }
    return false;
}

void
HydraTracker::resetEpoch()
{
    for (auto &bank : gct_)
        std::fill(bank.begin(), bank.end(), 0);
    for (Rcc &r : rcc_) {
        r.map.clear();
        r.lru.clear();
    }
}

std::uint64_t
HydraTracker::storageBitsPerBank() const
{
    // GCT: one counter (log2 ts + margin ~ 13 bits) per group.
    const std::uint64_t gctBits =
        static_cast<std::uint64_t>(groupsPerBank_) * 13;
    // RCC is shared per channel; apportion per bank.
    constexpr std::uint64_t rccEntryBits = 32 + 13; // tag + count
    const std::uint64_t rccBits =
        static_cast<std::uint64_t>(cfg_.rccEntries) * rccEntryBits /
        cfg_.banksPerChannel;
    return gctBits + rccBits;
}

} // namespace srs
