/**
 * @file
 * Aggressor-row tracker interface (paper Section II-D).
 *
 * Trackers observe demand activations and decide when a row has
 * crossed the swap threshold T_S.  The mitigation (RRS / SRS /
 * Scale-SRS) is tracker-agnostic; the paper evaluates Misra-Gries
 * (Graphene-style) and Hydra, both implemented here.
 */

#ifndef SRS_TRACKER_TRACKER_HH
#define SRS_TRACKER_TRACKER_HH

#include <cstdint>

#include "common/types.hh"

namespace srs
{

/**
 * Observes per-bank physical-row activations; flags T_S crossings.
 *
 * Implementations (tracker/misra_gries.hh, tracker/hydra.hh,
 * tracker/cbt.hh, tracker/twice.hh) are selected by TrackerKind and
 * constructed by the System; the mitigation consumes only this
 * interface.  Trackers are single-threaded like the rest of a
 * simulated System — parallel experiments each own their System and
 * tracker (see sim/sweep.hh).
 */
class AggressorTracker
{
  public:
    virtual ~AggressorTracker() = default;

    /**
     * Record one activation of @p physRow.
     *
     * @param channel  channel index
     * @param bank     bank index flattened within the channel
     * @param physRow  physical (post-indirection) row activated
     * @param now      current simulation cycle
     * @return true when the row just crossed T_S; the tracker resets
     *         its estimate for the row (the caller must mitigate)
     */
    virtual bool recordActivation(std::uint32_t channel,
                                  std::uint32_t bank, RowId physRow,
                                  Cycle now) = 0;

    /** Clear all tracking state (refresh-epoch boundary). */
    virtual void resetEpoch() = 0;

    /**
     * SRAM cost of the tracker.
     *
     * @return storage in bits per bank (feeds the Table IV model)
     */
    virtual std::uint64_t storageBitsPerBank() const = 0;

    /**
     * Identification for stats and experiment logs.
     *
     * @return a static, human-readable tracker name
     */
    virtual const char *name() const = 0;
};

} // namespace srs

#endif // SRS_TRACKER_TRACKER_HH
