#include "tracker/twice.hh"

#include "common/logging.hh"

namespace srs
{

TwiceTracker::TwiceTracker(const TwiceConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.ts == 0)
        fatal("twice: T_S must be nonzero");
    if (cfg_.checkpoints == 0)
        fatal("twice: need at least one checkpoint per window");
    if (cfg_.checkpointInterval() == 0)
        fatal("twice: checkpoint interval rounds to zero");
    tables_.resize(static_cast<std::size_t>(cfg_.channels) *
                   cfg_.banksPerChannel);
}

TwiceTracker::BankTable &
TwiceTracker::table(std::uint32_t channel, std::uint32_t bank)
{
    const std::size_t idx =
        static_cast<std::size_t>(channel) * cfg_.banksPerChannel + bank;
    SRS_ASSERT(idx < tables_.size(), "bank index out of range");
    return tables_[idx];
}

const TwiceTracker::BankTable &
TwiceTracker::table(std::uint32_t channel, std::uint32_t bank) const
{
    const std::size_t idx =
        static_cast<std::size_t>(channel) * cfg_.banksPerChannel + bank;
    SRS_ASSERT(idx < tables_.size(), "bank index out of range");
    return tables_[idx];
}

void
TwiceTracker::checkpoint(BankTable &t)
{
    // Pace test: after `age` checkpoints a row must have at least
    // age * T_S / checkpoints activations, or it can no longer reach
    // T_S at the maximum remaining rate a single row sustains.
    for (auto it = t.rows.begin(); it != t.rows.end();) {
        Entry &e = it->second;
        ++e.age;
        const std::uint64_t pace =
            static_cast<std::uint64_t>(e.age) * cfg_.ts /
            cfg_.checkpoints;
        if (e.count < pace) {
            it = t.rows.erase(it);
            stats_.inc("pruned");
        } else {
            ++it;
        }
    }
    stats_.inc("checkpoints");
}

bool
TwiceTracker::recordActivation(std::uint32_t channel,
                               std::uint32_t bank, RowId physRow,
                               Cycle now)
{
    (void)now;
    BankTable &t = table(channel, bank);
    Entry &e = t.rows[physRow];
    ++e.count;

    bool fired = false;
    if (e.count >= cfg_.ts) {
        t.rows.erase(physRow);
        stats_.inc("triggers");
        fired = true;
    }

    if (++t.actsSinceCheckpoint >= cfg_.checkpointInterval()) {
        t.actsSinceCheckpoint = 0;
        checkpoint(t);
    }
    return fired;
}

void
TwiceTracker::resetEpoch()
{
    for (BankTable &t : tables_) {
        t.rows.clear();
        t.actsSinceCheckpoint = 0;
    }
    stats_.inc("epoch_resets");
}

std::uint64_t
TwiceTracker::storageBitsPerBank() const
{
    // Pruning bounds the live table near checkpoints * (rows on
    // pace); TWiCe provisions ACT_max / T_S entries (every row that
    // could reach T_S), each holding a 17-bit row id, a count up to
    // T_S (<= 13 bits) and a checkpoint age.
    const std::uint64_t entries = cfg_.actMaxPerEpoch / cfg_.ts;
    const std::uint64_t entryBits = 17 + 13 + 5;
    return entries * entryBits;
}

std::size_t
TwiceTracker::entriesAt(std::uint32_t channel, std::uint32_t bank) const
{
    return table(channel, bank).rows.size();
}

std::uint32_t
TwiceTracker::countOf(std::uint32_t channel, std::uint32_t bank,
                      RowId physRow) const
{
    const BankTable &t = table(channel, bank);
    const auto it = t.rows.find(physRow);
    return it == t.rows.end() ? 0 : it->second.count;
}

} // namespace srs
