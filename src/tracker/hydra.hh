/**
 * @file
 * Hydra hybrid tracker (Qureshi et al., ISCA 2022; paper Section
 * VII-C evaluates RRS and Scale-SRS on top of it).
 *
 * Two-level design:
 *  - Group Count Table (GCT): small on-chip counters, one per group
 *    of rows.  While a group's count is below the group threshold no
 *    per-row state is kept.
 *  - Row Count Table (RCT): per-row counters stored *in DRAM*,
 *    cached by an on-chip Row Count Cache (RCC).  Once a group goes
 *    hot, every activation needs the row's counter; RCC misses
 *    create real DRAM traffic — the reason RRS+Hydra degrades so
 *    much at low T_RH (Figure 16).
 *
 * RCT traffic is injected through a hook as CounterAccess migration
 * jobs so it occupies banks like any other mitigation traffic.
 */

#ifndef SRS_TRACKER_HYDRA_HH
#define SRS_TRACKER_HYDRA_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "memctrl/request.hh"
#include "tracker/tracker.hh"

namespace srs
{

/** Hydra configuration. */
struct HydraConfig
{
    std::uint32_t ts = 800;             ///< swap threshold T_S
    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 16;
    std::uint32_t rowsPerBank = 128 * 1024;
    std::uint32_t rowsPerGroup = 128;   ///< GCT granularity
    std::uint32_t rccEntries = 4096;    ///< per channel
    /** Group goes hot at ts * groupThresholdFrac activations. */
    double groupThresholdFrac = 0.5;
    /** Cycles one RCT access occupies the bank (set from timing). */
    Cycle rctAccessCycles = 200;
    /** Row (at the bottom of the bank) holding RCT counters. */
    std::uint32_t rctRows = 64;
};

/** Hybrid group/row tracker with in-DRAM counter traffic. */
class HydraTracker : public AggressorTracker
{
  public:
    /** Hook used to inject RCT DRAM accesses. */
    using TrafficHook = std::function<void(
        std::uint32_t channel, std::uint32_t bank, MigrationJob job)>;

    explicit HydraTracker(const HydraConfig &cfg);

    /** Install the DRAM traffic hook (nullptr disables traffic). */
    void setTrafficHook(TrafficHook hook) { traffic_ = std::move(hook); }

    bool recordActivation(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now) override;
    void resetEpoch() override;
    std::uint64_t storageBitsPerBank() const override;
    const char *name() const override { return "hydra"; }

    const StatSet &stats() const { return stats_; }

  private:
    /** Per-channel LRU row-count cache. */
    struct Rcc
    {
        struct Entry
        {
            std::uint32_t count;
            std::list<std::uint64_t>::iterator lruIt;
        };
        std::unordered_map<std::uint64_t, Entry> map;
        std::list<std::uint64_t> lru;   ///< front = most recent
    };

    std::uint64_t rowKey(std::uint32_t bank, RowId row) const;
    std::uint32_t groupThreshold() const;

    HydraConfig cfg_;
    std::uint32_t groupsPerBank_;
    /** GCT: [channel*banks + bank][group] */
    std::vector<std::vector<std::uint32_t>> gct_;
    std::vector<Rcc> rcc_;  ///< one per channel
    TrafficHook traffic_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_TRACKER_HYDRA_HH
