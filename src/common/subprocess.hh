/**
 * @file
 * Child-process helpers shared by the supervision layers.
 *
 * The orchestrator (sim/orchestrator.hh) and the fleet dispatcher
 * (farm/dispatcher.hh) both fork worker processes — a shard sweep
 * locally, or an ssh/scp client carrying one to another machine —
 * and both need the same primitives: spawn with output captured to a
 * log file, non-blocking reap, kill, and a human-readable exit
 * description.  POSIX-only (fork/execv/waitpid); every entry point
 * is fatal() on non-POSIX platforms.
 */

#ifndef SRS_COMMON_SUBPROCESS_HH
#define SRS_COMMON_SUBPROCESS_HH

#include <string>
#include <vector>

namespace srs
{

/**
 * Fork and exec @p argv (argv[0] is the executable path, resolved
 * without PATH search) with stdout and stderr appended to
 * @p logPath; an empty @p logPath inherits the parent's streams.
 * On Linux the child dies with the parent (PDEATHSIG), so a killed
 * supervisor never leaks workers that race a later re-run for the
 * same output files.
 *
 * @return the child pid; fatal() when the fork fails.  An exec
 *         failure surfaces as exit status 127 with the reason as
 *         the log's last line.
 */
long spawnProcess(const std::vector<std::string> &argv,
                  const std::string &logPath);

/**
 * Non-blocking reap of @p pid (waitpid WNOHANG).
 *
 * @return true when the child has exited — @p status then holds the
 *         raw waitpid status (decode with describeProcessExit or
 *         processExitCode); false while it is still running.
 */
bool pollProcess(long pid, int &status);

/** Blocking reap of @p pid; @return the raw waitpid status. */
int waitProcess(long pid);

/** SIGKILL @p pid (best-effort; no error when already gone). */
void killProcess(long pid);

/**
 * Spawn @p argv, wait for it, and return its exit code (127 when
 * the exec failed, 128+signal when it died on one).  Used for the
 * short-lived copy children (scp/rsync) of the ssh transport.
 */
int runProcess(const std::vector<std::string> &argv,
               const std::string &logPath = "");

/** @return true when the raw status is a clean zero exit. */
bool processExitedCleanly(int status);

/** "exited with status N" / "killed by signal N" for messages. */
std::string describeProcessExit(int status);

} // namespace srs

#endif // SRS_COMMON_SUBPROCESS_HH
