#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace srs
{

namespace
{

std::atomic<bool> quiet{false};

} // namespace

void
setQuietLogging(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quiet.load(std::memory_order_relaxed);
}

namespace detail
{

void
informImpl(const std::string &msg)
{
    if (!quietLogging())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    if (!quietLogging())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace detail

} // namespace srs
