#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace srs
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    SRS_ASSERT(bound > 0, "nextBelow(0) is meaningless");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    SRS_ASSERT(lo <= hi, "empty range");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextPoisson(double lambda)
{
    SRS_ASSERT(lambda >= 0.0, "negative Poisson mean");
    if (lambda == 0.0)
        return 0;
    // Inversion by sequential search (Devroye); fine for small means.
    if (lambda < 30.0) {
        const double limit = std::exp(-lambda);
        double prod = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            prod *= nextDouble();
        } while (prod > limit);
        return k - 1;
    }
    // Split large means to keep the inversion numerically safe.
    const std::uint64_t half = nextPoisson(lambda / 2.0);
    return half + nextPoisson(lambda - lambda / 2.0);
}

std::uint64_t
Rng::nextBinomial(std::uint64_t n, double p)
{
    SRS_ASSERT(p >= 0.0 && p <= 1.0, "binomial p outside [0,1]");
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;
    const double mean = static_cast<double>(n) * p;
    // Small-probability regime: Poisson(np) is an excellent and much
    // faster approximation (error O(p) per trial).
    if (p < 1e-3 && n > 1000) {
        const std::uint64_t draw = nextPoisson(mean);
        return draw > n ? n : draw;
    }
    // Exact: sum of Bernoulli trials (n is small in the exact path).
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        hits += nextBool(p) ? 1 : 0;
    return hits;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    SRS_ASSERT(p > 0.0 && p <= 1.0, "geometric p outside (0,1]");
    if (p == 1.0)
        return 1;
    // Inverse CDF: ceil(ln(U) / ln(1-p)).
    const double u = 1.0 - nextDouble(); // (0, 1]
    return static_cast<std::uint64_t>(
        std::ceil(std::log(u) / std::log1p(-p)));
}

} // namespace srs
