#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace srs
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
Histogram::add(std::uint64_t key, std::uint64_t weight)
{
    buckets_[key] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::countOf(std::uint64_t key) const
{
    const auto it = buckets_.find(key);
    return it == buckets_.end() ? 0 : it->second;
}

std::uint64_t
Histogram::maxKey() const
{
    return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

void
LatencyHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    counts_[bucketOf(value)] += weight;
    total_ += weight;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::uint32_t b = 0; b < kBucketCount; ++b)
        counts_[b] += other.counts_[b];
    total_ += other.total_;
}

std::uint32_t
LatencyHistogram::bucketOf(std::uint64_t value)
{
    if (value < 16)
        return static_cast<std::uint32_t>(value);
    std::uint32_t octave = 63;
    while ((value >> octave) == 0)
        --octave;
    const std::uint32_t sub = static_cast<std::uint32_t>(
        (value >> (octave - kSubBits)) - (1u << kSubBits));
    return 16 + (octave - 4) * (1u << kSubBits) + sub;
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::uint32_t bucket)
{
    if (bucket < 16)
        return bucket;
    const std::uint32_t rel = bucket - 16;
    const std::uint32_t octave = 4 + rel / (1u << kSubBits);
    const std::uint64_t sub = rel % (1u << kSubBits);
    // The (1 << kSubBits) + sub + 1 mantissa shifted into place; the
    // top bucket wraps to exactly UINT64_MAX, its true upper bound.
    return (((1u << kSubBits) + sub + 1) << (octave - kSubBits)) - 1;
}

std::uint64_t
LatencyHistogram::quantilePermille(std::uint32_t permille) const
{
    if (total_ == 0)
        return 0;
    // ceil(total * permille / 1000) without 128-bit intermediates.
    const std::uint64_t whole = total_ / 1000;
    const std::uint64_t rem = total_ % 1000;
    const std::uint64_t rank =
        whole * permille + (rem * permille + 999) / 1000;
    std::uint64_t cumulative = 0;
    for (std::uint32_t b = 0; b < kBucketCount; ++b) {
        cumulative += counts_[b];
        if (cumulative >= rank)
            return bucketUpperBound(b);
    }
    return bucketUpperBound(kBucketCount - 1);
}

StatSet::Handle
StatSet::handle(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const Handle h = static_cast<Handle>(values_.size());
    index_.emplace(name, h);
    values_.push_back(0);
    return h;
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    inc(handle(name), delta);
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    setAt(handle(name), value);
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, h] : other.index_) {
        if (other.values_[h] != 0)
            inc(name, other.values_[h]);
    }
}

std::map<std::string, std::uint64_t>
StatSet::all() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, h] : index_)
        out.emplace(name, values_[h]);
    return out;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, h] : index_)
        os << name << " = " << values_[h] << "\n";
    return os.str();
}

} // namespace srs
