/**
 * @file
 * Minimal fixed-size thread pool for embarrassingly parallel
 * experiment fan-out (the sweep engine, parallel benches).
 *
 * Jobs are arbitrary std::function<void()>; submit() is callable from
 * any thread, wait() blocks until every submitted job has finished.
 * The pool makes no ordering promise between jobs — callers that need
 * deterministic output must write results into pre-assigned slots and
 * serialize after wait() (see sim/sweep.hh).
 */

#ifndef SRS_COMMON_THREAD_POOL_HH
#define SRS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace srs
{

/** Fixed set of worker threads draining one shared job queue. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.  0 picks the hardware concurrency
     * (at least 1).
     */
    explicit ThreadPool(std::size_t threads);

    /** Finishes all queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; runs on some worker at some later point. */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has completed. */
    void wait();

    /** @return the number of worker threads actually started. */
    std::size_t threadCount() const { return workers_.size(); }

    /** Resolve a requested thread count: 0 -> hardware concurrency. */
    static std::size_t resolveThreads(std::size_t requested);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable hasWork_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

} // namespace srs

#endif // SRS_COMMON_THREAD_POOL_HH
