#include "common/mathutil.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace srs
{

double
logFactorial(std::uint64_t n)
{
    return std::lgamma(static_cast<double>(n) + 1.0);
}

double
logBinomialCoeff(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return -std::numeric_limits<double>::infinity();
    return logFactorial(n) - logFactorial(k) - logFactorial(n - k);
}

double
binomialPmf(std::uint64_t n, std::uint64_t k, double p)
{
    SRS_ASSERT(p >= 0.0 && p <= 1.0, "p outside [0,1]");
    if (k > n)
        return 0.0;
    if (p == 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p == 1.0)
        return k == n ? 1.0 : 0.0;
    const double logp = logBinomialCoeff(n, k) +
        static_cast<double>(k) * std::log(p) +
        static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(logp);
}

double
binomialSf(std::uint64_t n, std::uint64_t k, double p)
{
    if (k == 0)
        return 1.0;
    if (k > n)
        return 0.0;
    // The tail decays geometrically past the mean in our regime
    // (np << k); summing point masses until they become negligible
    // relative to the accumulated total is accurate and fast.
    double total = 0.0;
    for (std::uint64_t i = k; i <= n; ++i) {
        const double term = binomialPmf(n, i, p);
        total += term;
        if (term < total * 1e-16 && i > k + 4)
            break;
    }
    return total;
}

double
poissonPmf(std::uint64_t k, double lambda)
{
    SRS_ASSERT(lambda >= 0.0, "negative Poisson mean");
    if (lambda == 0.0)
        return k == 0 ? 1.0 : 0.0;
    const double logp = -lambda +
        static_cast<double>(k) * std::log(lambda) - logFactorial(k);
    return std::exp(logp);
}

double
poissonSf(std::uint64_t k, double lambda)
{
    if (k == 0)
        return 1.0;
    // P[X >= k] = 1 - sum_{i<k} pmf(i); compute the complement sum in
    // a numerically friendly direction.
    double below = 0.0;
    for (std::uint64_t i = 0; i < k; ++i)
        below += poissonPmf(i, lambda);
    const double sf = 1.0 - below;
    if (sf > 1e-9)
        return sf;
    // Tiny tail: sum upward instead to dodge cancellation.
    double total = 0.0;
    for (std::uint64_t i = k; i < k + 400; ++i) {
        const double term = poissonPmf(i, lambda);
        total += term;
        if (term < total * 1e-16 && i > k + 4)
            break;
    }
    return total;
}

std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    SRS_ASSERT(v >= 1, "nextPowerOfTwo(0)");
    --v;
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v |= v >> 32;
    return v + 1;
}

unsigned
floorLog2(std::uint64_t v)
{
    SRS_ASSERT(v >= 1, "floorLog2(0)");
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

} // namespace srs
