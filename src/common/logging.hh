/**
 * @file
 * gem5-style status and error reporting.
 *
 * Four severities, mirroring gem5's src/base/logging.hh contract:
 *  - inform(): status messages, no connotation of incorrect behaviour.
 *  - warn():   something may be modelled imperfectly but continues.
 *  - fatal():  the user asked for something impossible (bad config);
 *              throws FatalError so tests can assert on misuse.
 *  - panic():  an internal invariant broke (a simulator bug); aborts.
 */

#ifndef SRS_COMMON_LOGGING_HH
#define SRS_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace srs
{

/** Exception thrown by fatal() so configuration errors are testable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);

} // namespace detail

/** Globally silence inform()/warn() output (used by benches). */
void setQuietLogging(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool quietLogging();

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about imperfect but survivable modelling. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Abort the simulation due to a user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Abort the simulation due to an internal bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define SRS_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::srs::panic("assertion failed: ", #cond, " | ",             \
                         ##__VA_ARGS__);                                 \
        }                                                                \
    } while (0)

} // namespace srs

#endif // SRS_COMMON_LOGGING_HH
