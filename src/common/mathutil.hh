/**
 * @file
 * Log-space combinatorics for the analytical security models.
 *
 * The attack-time equations of the paper (Section III-B, Eq. 8-10)
 * evaluate binomial point probabilities with n up to ~10^5 and
 * p ~ 1/131072; naive factorials overflow, so everything is done in
 * log space.
 */

#ifndef SRS_COMMON_MATHUTIL_HH
#define SRS_COMMON_MATHUTIL_HH

#include <cstdint>

namespace srs
{

/** @return ln(n!) via lgamma. */
double logFactorial(std::uint64_t n);

/** @return ln(C(n, k)); -inf when k > n. */
double logBinomialCoeff(std::uint64_t n, std::uint64_t k);

/**
 * Binomial point mass P[X = k] for X ~ Binomial(n, p).
 *
 * @param n number of trials
 * @param k exact number of successes
 * @param p per-trial success probability
 */
double binomialPmf(std::uint64_t n, std::uint64_t k, double p);

/** Upper tail P[X >= k] for X ~ Binomial(n, p). */
double binomialSf(std::uint64_t n, std::uint64_t k, double p);

/** Poisson point mass P[X = k] for X ~ Poisson(lambda). */
double poissonPmf(std::uint64_t k, double lambda);

/** Poisson upper tail P[X >= k]. */
double poissonSf(std::uint64_t k, double lambda);

/** @return ceil(a / b) for positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return true when @p v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return smallest power of two >= v (v >= 1). */
std::uint64_t nextPowerOfTwo(std::uint64_t v);

/** @return floor(log2(v)) for v >= 1. */
unsigned floorLog2(std::uint64_t v);

} // namespace srs

#endif // SRS_COMMON_MATHUTIL_HH
