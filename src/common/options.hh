/**
 * @file
 * Minimal --key=value option parsing shared by the CLI tools and
 * examples.
 *
 * Options collects "--key=value" / "--flag" tokens (and "key=value"
 * lines from a config file), exposes typed getters with defaults,
 * and can verify that every provided key was actually consumed —
 * catching typos like --thr=1200 instead of fatal-ing silently.
 */

#ifndef SRS_COMMON_OPTIONS_HH
#define SRS_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace srs
{

/** Parsed option bag with typed access. */
class Options
{
  public:
    Options() = default;

    /**
     * Parse argv-style tokens.  "--key=value" and "--flag" (implicit
     * value "1") populate the bag; bare words are collected as
     * positional arguments.
     */
    static Options fromArgs(int argc, const char *const *argv);

    /** Parse "key=value" lines ('#' comments allowed) from a file. */
    static Options fromFile(const std::string &path);

    /** @return true when @p key was provided. */
    bool has(const std::string &key) const;

    /** Typed getters; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Positional (non --key) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** fatal() when any provided key was never read. */
    void rejectUnknown() const;

    /** Insert/overwrite (programmatic defaults, tests). */
    void set(const std::string &key, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    mutable std::set<std::string> consumed_;
};

} // namespace srs

#endif // SRS_COMMON_OPTIONS_HH
