/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 *
 * The simulator advances in CPU cycles (3.2 GHz by default).  DRAM
 * timing parameters are specified in nanoseconds and converted to CPU
 * cycles once, at configuration time.  Analytical security models work
 * directly in seconds (double) since they never interact with the
 * cycle-accurate machinery.
 */

#ifndef SRS_COMMON_TYPES_HH
#define SRS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace srs
{

/** Simulation time in CPU cycles. */
using Cycle = std::uint64_t;

/** Byte-granularity physical address. */
using Addr = std::uint64_t;

/** DRAM row index within one bank. */
using RowId = std::uint32_t;

/** Flat bank index across the whole memory system. */
using BankId = std::uint32_t;

/** Core (hardware thread) index. */
using CoreId = std::uint32_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid rows. */
constexpr RowId kInvalidRow = std::numeric_limits<RowId>::max();

/** Sentinel for invalid addresses. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Number of seconds in one default refresh interval (64 ms). */
constexpr double kRefreshIntervalSec = 64e-3;

} // namespace srs

#endif // SRS_COMMON_TYPES_HH
