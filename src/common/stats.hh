/**
 * @file
 * Lightweight statistics containers used across the simulator.
 */

#ifndef SRS_COMMON_STATS_HH
#define SRS_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace srs
{

/** Running scalar summary: count, sum, min, max, mean, variance. */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double m2_ = 0.0;   // Welford accumulator
    double mean_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Sparse integer histogram keyed by bucket value. */
class Histogram
{
  public:
    /** Count one occurrence of @p key. */
    void add(std::uint64_t key, std::uint64_t weight = 1);

    std::uint64_t total() const { return total_; }
    std::uint64_t countOf(std::uint64_t key) const;
    /** Largest key observed; 0 when empty. */
    std::uint64_t maxKey() const;
    const std::map<std::uint64_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Fixed-bucket log-scale latency histogram for tail percentiles.
 *
 * Values 0..15 get one exact bucket each; beyond that every
 * power-of-two octave is split into 8 sub-buckets (HDR-style), so the
 * relative bucket width is at most 1/8 across the whole 64-bit range
 * while the array stays a flat 496 counters.  Everything is integer
 * arithmetic on a fixed layout, which is what makes the histogram
 * safe for byte-identity contracts: merging per-core or per-shard
 * histograms is a commutative counter add, equality is memberwise,
 * and quantiles are derived values that never feed back into state.
 *
 * quantilePermille() reports the q-th percentile as the inclusive
 * upper bound of the first bucket whose cumulative count reaches
 * ceil(total * q / 1000) — a deterministic integer, exact below 16
 * and within 12.5% above, which is the CSV contract for the
 * p50_lat/p99_lat/p999_lat columns (docs/sweep-format.md, schema v4).
 */
class LatencyHistogram
{
  public:
    /** Sub-buckets per octave = 2^kSubBits. */
    static constexpr std::uint32_t kSubBits = 3;
    /** Flat bucket count covering the full uint64 value range. */
    static constexpr std::uint32_t kBucketCount =
        16 + (64 - 4) * (1u << kSubBits);

    /** Count one sample of @p value (e.g. a read latency in cycles). */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Fold another histogram in (commutative counter add). */
    void merge(const LatencyHistogram &other);

    std::uint64_t total() const { return total_; }

    /** Raw count of bucket @p bucket (tests, analysis). */
    std::uint64_t countAt(std::uint32_t bucket) const
    {
        return counts_[bucket];
    }

    /** Flat bucket index holding @p value. */
    static std::uint32_t bucketOf(std::uint64_t value);

    /** Largest value bucket @p bucket can hold (inclusive). */
    static std::uint64_t bucketUpperBound(std::uint32_t bucket);

    /**
     * @p permille-th percentile (500 = p50, 990 = p99, 999 = p999)
     * as the inclusive upper bound of the bucket where the
     * cumulative count first reaches ceil(total * permille / 1000);
     * 0 when the histogram is empty.
     */
    std::uint64_t quantilePermille(std::uint32_t permille) const;

    bool operator==(const LatencyHistogram &) const = default;

  private:
    std::array<std::uint64_t, kBucketCount> counts_{};
    std::uint64_t total_ = 0;
};

/**
 * Named counter registry: simulator components register counters so
 * experiment harnesses can dump everything uniformly.
 *
 * Counters are stored in a flat array indexed by interned handles.
 * Hot paths intern their names once (handle()) and then update
 * counters with a single array add; the string-keyed API remains for
 * cold paths, tests and reporting.
 */
class StatSet
{
  public:
    /** Interned counter index; stable for the StatSet's lifetime. */
    using Handle = std::uint32_t;

    /** Intern @p name, creating the counter at zero. */
    Handle handle(const std::string &name);

    /** Add @p delta to the counter behind @p h (no lookup). */
    void inc(Handle h, std::uint64_t delta = 1) { values_[h] += delta; }

    /** Overwrite the counter behind @p h. */
    void setAt(Handle h, std::uint64_t value) { values_[h] = value; }

    /** @return value of the counter behind @p h. */
    std::uint64_t getAt(Handle h) const { return values_[h]; }

    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite counter @p name. */
    void set(const std::string &name, std::uint64_t value);

    /** @return counter value; 0 when never touched. */
    std::uint64_t get(const std::string &name) const;

    /**
     * Fold @p other in: every counter of @p other is added to the
     * same-named counter here (interned at zero when new).  A
     * commutative counter add, so folding per-channel shards into an
     * aggregate in any fixed order yields identical values — the
     * same byte-identity argument as LatencyHistogram::merge().
     */
    void merge(const StatSet &other);

    /** Materialized name -> value view of every registered counter. */
    std::map<std::string, std::uint64_t> all() const;

    /** Render "name = value" lines, sorted by name. */
    std::string dump() const;

  private:
    std::map<std::string, Handle> index_;
    std::vector<std::uint64_t> values_;
};

} // namespace srs

#endif // SRS_COMMON_STATS_HH
