#include "common/options.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"

namespace srs
{

namespace
{

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

Options
Options::fromArgs(int argc, const char *const *argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        if (tok.rfind("--", 0) != 0) {
            opts.positional_.push_back(tok);
            continue;
        }
        const std::string body = tok.substr(2);
        const std::size_t eq = body.find('=');
        if (eq == std::string::npos)
            opts.values_[body] = "1";
        else
            opts.values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
    return opts;
}

Options
Options::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        fatal("options: cannot open '", path, "'");
    Options opts;
    std::string line;
    std::uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string body = trim(line);
        if (body.empty())
            continue;
        const std::size_t eq = body.find('=');
        if (eq == std::string::npos)
            fatal(path, ":", lineNo, ": expected key=value");
        opts.values_[trim(body.substr(0, eq))] =
            trim(body.substr(eq + 1));
    }
    return opts;
}

bool
Options::has(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::string
Options::getString(const std::string &key, const std::string &def) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
Options::getUint(const std::string &key, std::uint64_t def) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --", key, ": '", it->second,
              "' is not an integer");
    return v;
}

double
Options::getDouble(const std::string &key, double def) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --", key, ": '", it->second,
              "' is not a number");
    return v;
}

bool
Options::getBool(const std::string &key, bool def) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("option --", key, ": '", v, "' is not a boolean");
    return def; // unreachable
}

void
Options::rejectUnknown() const
{
    for (const auto &[key, value] : values_) {
        (void)value;
        if (consumed_.find(key) == consumed_.end())
            fatal("unknown option --", key);
    }
}

void
Options::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

} // namespace srs
