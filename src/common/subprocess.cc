#include "common/subprocess.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "common/logging.hh"

namespace srs
{

#if !defined(_WIN32)

long
spawnProcess(const std::vector<std::string> &argv,
             const std::string &logPath)
{
    if (argv.empty())
        fatal("spawnProcess: empty command line");
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed: ", std::strerror(errno));
    if (pid == 0) {
#if defined(__linux__)
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
        if (!logPath.empty()) {
            const int fd = ::open(logPath.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, 1);
                ::dup2(fd, 2);
                ::close(fd);
            }
        }
        std::vector<char *> args;
        for (const std::string &arg : argv)
            args.push_back(const_cast<char *>(arg.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        std::fprintf(stderr, "exec %s failed: %s\n", args[0],
                     std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

bool
pollProcess(long pid, int &status)
{
    const pid_t r =
        ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
    if (r < 0)
        fatal("waitpid(", pid, ") failed: ", std::strerror(errno));
    return r == static_cast<pid_t>(pid);
}

int
waitProcess(long pid)
{
    int status = 0;
    if (::waitpid(static_cast<pid_t>(pid), &status, 0) < 0)
        fatal("waitpid(", pid, ") failed: ", std::strerror(errno));
    return status;
}

void
killProcess(long pid)
{
    ::kill(static_cast<pid_t>(pid), SIGKILL);
}

int
runProcess(const std::vector<std::string> &argv,
           const std::string &logPath)
{
    const int status = waitProcess(spawnProcess(argv, logPath));
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return status;
}

bool
processExitedCleanly(int status)
{
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

std::string
describeProcessExit(int status)
{
    if (WIFSIGNALED(status)) {
        return "killed by signal "
               + std::to_string(WTERMSIG(status));
    }
    return "exited with status "
           + std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                              : status);
}

#else // _WIN32

namespace
{

[[noreturn]] void
posixOnly()
{
    fatal("process supervision (srs_sim orchestrate/farm) requires "
          "a POSIX platform (fork/waitpid); run the shards from the "
          "manifest by hand and stitch with 'srs_sim merge'");
}

} // namespace

long
spawnProcess(const std::vector<std::string> &, const std::string &)
{
    posixOnly();
}

bool
pollProcess(long, int &)
{
    posixOnly();
}

int
waitProcess(long)
{
    posixOnly();
}

void
killProcess(long)
{
    posixOnly();
}

int
runProcess(const std::vector<std::string> &, const std::string &)
{
    posixOnly();
}

bool
processExitedCleanly(int status)
{
    return status == 0;
}

std::string
describeProcessExit(int status)
{
    return "exited with status " + std::to_string(status);
}

#endif

} // namespace srs
