/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (trace generation, RIT partner selection,
 * Monte-Carlo attack simulation) takes an explicit Rng so experiments
 * are reproducible from a single seed.  The engine is xoshiro256**,
 * which is fast, has a 2^256-1 period, and passes BigCrush.
 */

#ifndef SRS_COMMON_RNG_HH
#define SRS_COMMON_RNG_HH

#include <cstdint>

namespace srs
{

/** Seedable xoshiro256** engine with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound), bias-free. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool nextBool(double p);

    /**
     * Sample Binomial(n, p) hits.  Uses exact inversion for small
     * means and a Poisson approximation for large n with tiny p (the
     * regime of random-guess landings: n up to ~10^5, p ~ 1/131072).
     */
    std::uint64_t nextBinomial(std::uint64_t n, double p);

    /** Sample Poisson(lambda) via inversion (lambda < ~30 expected). */
    std::uint64_t nextPoisson(double lambda);

    /** Sample Geometric: number of Bernoulli(p) trials until success. */
    std::uint64_t nextGeometric(double p);

    /** Satisfy UniformRandomBitGenerator so <algorithm> shuffles work. */
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

  private:
    std::uint64_t s_[4];
};

} // namespace srs

#endif // SRS_COMMON_RNG_HH
