#include "common/thread_pool.hh"

#include <utility>

namespace srs
{

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = resolveThreads(threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    hasWork_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    hasWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            hasWork_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and drained: exit.  Jobs still running on
                // other workers keep inFlight_ > 0 until they finish.
                return;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace srs
