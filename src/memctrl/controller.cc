#include "memctrl/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srs
{

/** Tombstones tolerated in a queue before it is compacted. */
constexpr std::uint32_t kCompactThreshold = 32;

const char *
migrationKindName(MigrationJob::Kind kind)
{
    switch (kind) {
      case MigrationJob::Kind::Swap:          return "swap";
      case MigrationJob::Kind::UnswapSwap:    return "unswap_swap";
      case MigrationJob::Kind::PlaceBack:     return "place_back";
      case MigrationJob::Kind::CounterAccess: return "counter_access";
    }
    return "?";
}

namespace
{

/**
 * Intern every controller counter into @p s in one fixed order, so
 * the controller-wide set and each channel shard assign identical
 * handles and the single StatHandles struct indexes them all.
 */
void
internCounters(StatSet &s)
{
    s.handle("writes_enqueued");
    s.handle("reads_forwarded");
    s.handle("reads_enqueued");
    s.handle("reads_completed");
    s.handle("read_latency_cycles");
    s.handle("refreshes");
    s.handle("forced_precharges");
    s.handle("latent_activations");
    s.handle("migration_busy_cycles");
    s.handle("writes_issued");
    s.handle("reads_issued");
    s.handle("row_hits");
    s.handle("row_conflicts");
    s.handle("activations");
    s.handle("idle_closes");
    s.handle("p2_skip_busy");
    s.handle("p2_skip_forced");
    s.handle("p2_skip_hit_wait");
    s.handle("p2_skip_pre_wait");
    s.handle("p2_skip_act_wait");
    s.handle("p2_skip_throttled");
    for (int k = 0; k < 4; ++k) {
        const auto kind = static_cast<MigrationJob::Kind>(k);
        s.handle(std::string("mig_scheduled_") + migrationKindName(kind));
        s.handle(std::string("mig_started_") + migrationKindName(kind));
    }
}

} // namespace

MemoryController::MemoryController(const DramOrg &org,
                                   const DramTiming &timing,
                                   const MemCtrlConfig &cfg)
    : org_(org), timing_(timing), cfg_(cfg), map_(org)
{
    if (cfg_.writeLoWatermark >= cfg_.writeHiWatermark)
        fatal("write drain watermarks inverted");
    const std::uint32_t flats = org_.ranksPerChannel * org_.banksPerRank;
    channels_.resize(org_.channels);
    for (auto &c : channels_) {
        c.ranks.reserve(org_.ranksPerChannel);
        for (std::uint32_t r = 0; r < org_.ranksPerChannel; ++r)
            c.ranks.emplace_back(timing_, org_);
        c.migQ.resize(flats);
        c.nextRefreshDue.assign(org_.ranksPerChannel, timing_.tREFI);
        c.refreshDebt.assign(org_.ranksPerChannel, 0);
        c.openRowArr.assign(flats, kInvalidRow);
        c.readHit.assign(flats, 0);
        c.writeHit.assign(flats, 0);
        c.p2Verdict.assign(flats, 0);
        // Tombstones let a queue exceed its live depth briefly.
        c.readQ.reserve(cfg_.readQueueDepth + kCompactThreshold + 1);
        c.writeQ.reserve(cfg_.writeQueueDepth + kCompactThreshold + 1);
        internCounters(c.stats);
    }

    internCounters(stats_);
    h_.writesEnqueued = stats_.handle("writes_enqueued");
    h_.readsForwarded = stats_.handle("reads_forwarded");
    h_.readsEnqueued = stats_.handle("reads_enqueued");
    h_.readsCompleted = stats_.handle("reads_completed");
    h_.readLatencyCycles = stats_.handle("read_latency_cycles");
    h_.refreshes = stats_.handle("refreshes");
    h_.forcedPrecharges = stats_.handle("forced_precharges");
    h_.latentActivations = stats_.handle("latent_activations");
    h_.migrationBusyCycles = stats_.handle("migration_busy_cycles");
    h_.writesIssued = stats_.handle("writes_issued");
    h_.readsIssued = stats_.handle("reads_issued");
    h_.rowHits = stats_.handle("row_hits");
    h_.rowConflicts = stats_.handle("row_conflicts");
    h_.activations = stats_.handle("activations");
    h_.idleCloses = stats_.handle("idle_closes");
    h_.p2SkipBusy = stats_.handle("p2_skip_busy");
    h_.p2SkipForced = stats_.handle("p2_skip_forced");
    h_.p2SkipHitWait = stats_.handle("p2_skip_hit_wait");
    h_.p2SkipPreWait = stats_.handle("p2_skip_pre_wait");
    h_.p2SkipActWait = stats_.handle("p2_skip_act_wait");
    h_.p2SkipThrottled = stats_.handle("p2_skip_throttled");
    for (int k = 0; k < 4; ++k) {
        const auto kind = static_cast<MigrationJob::Kind>(k);
        h_.migScheduled[k] = stats_.handle(
            std::string("mig_scheduled_") + migrationKindName(kind));
        h_.migStarted[k] = stats_.handle(
            std::string("mig_started_") + migrationKindName(kind));
    }

    const std::uint32_t workers =
        std::min(cfg_.channelWorkers, org_.channels);
    if (workers > 1)
        pool_ = std::make_unique<ThreadPool>(workers);
}

std::uint32_t
MemoryController::flatBank(const ChannelState &, std::uint32_t rank,
                           std::uint32_t bank) const
{
    return rank * org_.banksPerRank + bank;
}

bool
MemoryController::wouldForward(const ChannelState &c, Addr line) const
{
    for (const MemRequest &w : c.writeQ) {
        if (w.dead)
            continue;
        if ((w.addr & ~static_cast<Addr>(org_.lineBytes - 1)) == line)
            return true;
    }
    return false;
}

bool
MemoryController::canAccept(Addr addr, bool isWrite) const
{
    const DramCoord coord = map_.decode(addr);
    const ChannelState &c = channels_[coord.channel];
    if (isWrite)
        return liveWrites(c) < cfg_.writeQueueDepth;
    if (liveReads(c) < cfg_.readQueueDepth)
        return true;
    // A read served by read-around-write forwarding never occupies a
    // read-queue slot, so a full read queue must not reject it.
    return wouldForward(c, addr & ~static_cast<Addr>(org_.lineBytes - 1));
}

std::uint64_t
MemoryController::enqueue(Addr addr, bool isWrite, CoreId core, Cycle now)
{
    if (!canAccept(addr, isWrite))
        return std::numeric_limits<std::uint64_t>::max();

    MemRequest req;
    req.id = nextReqId_++;
    req.addr = addr;
    req.isWrite = isWrite;
    req.core = core;
    req.arrival = now;
    req.coord = map_.decode(addr);

    ChannelState &c = channels_[req.coord.channel];
    if (isWrite) {
        stats_.inc(h_.writesEnqueued);
        c.writeQ.push_back(req);
        ++c.writeStale;
        return req.id;
    }

    // Read-around-write forwarding: a read that hits a posted write
    // is satisfied from the write queue without touching DRAM.  This
    // is checked before the queue-capacity path so a forwardable read
    // is accepted even when the read queue is full.
    const Addr line = addr & ~static_cast<Addr>(org_.lineBytes - 1);
    if (wouldForward(c, line)) {
        stats_.inc(h_.readsForwarded);
        MemRequest done = req;
        done.completion = now + 1;
        c.pendingReads.push({done.completion, done});
        return req.id;
    }
    stats_.inc(h_.readsEnqueued);
    c.readQ.push_back(req);
    ++c.readStale;
    return req.id;
}

void
MemoryController::scheduleMigration(std::uint32_t channel,
                                    std::uint32_t bank, MigrationJob job)
{
    SRS_ASSERT(channel < channels_.size(), "bad channel");
    ChannelState &c = channels_[channel];
    SRS_ASSERT(bank < c.migQ.size(), "bad bank");
    stats_.inc(h_.migScheduled[static_cast<int>(job.kind)]);
    // Any mitigation activity may have changed the row mapping, so
    // cached remaps in queued requests must be recomputed.  Every
    // live request becomes stale; no cached translation can be a
    // row-buffer hit until physRowOf() revalidates it.
    ++c.mapVersion;
    c.readStale = liveReads(c);
    c.writeStale = liveWrites(c);
    std::fill(c.readHit.begin(), c.readHit.end(), 0u);
    std::fill(c.writeHit.begin(), c.writeHit.end(), 0u);
    c.readHitSum = 0;
    c.writeHitSum = 0;
    ++c.migCount;
    c.migQ[bank].push_back(std::move(job));
}

std::size_t
MemoryController::pendingMigrations(std::uint32_t channel,
                                    std::uint32_t bank) const
{
    return channels_[channel].migQ[bank].size();
}

void
MemoryController::drainCompletedReads(ChannelState &c, Cycle now)
{
    while (!c.pendingReads.empty() && c.pendingReads.top().done <= now) {
        MemRequest req = c.pendingReads.top().req;
        c.pendingReads.pop();
        stats_.inc(h_.readsCompleted);
        stats_.inc(h_.readLatencyCycles, req.completion - req.arrival);
        readLatency_.add(req.completion - req.arrival);
        if (onReadDone_)
            onReadDone_(req);
    }
}

void
MemoryController::tick(Cycle now)
{
    // Phase A (serial): deliver completed reads, channel by channel
    // in index order.  Completion effects commute across distinct
    // requests (each wakes its own core token; the latency histogram
    // and counters are commutative adds), so draining per channel is
    // state-identical to draining one global completion queue — and
    // gives the parallel phase fully channel-private queues.
    for (auto &c : channels_)
        drainCompletedReads(c, now);

    // Phase B: per-channel scheduling.  Channels share no mutable
    // state here — queues, banks, migration jobs and the statistics
    // shard are all channel-private, listener notifications are
    // deferred, and the remaining listener queries are read-only or
    // per-channel unless the listener opts out.
    if (pool_ != nullptr &&
        (listener_ == nullptr ||
         listener_->concurrentChannelQueriesSafe())) {
        for (std::uint32_t ch = 0; ch < channels_.size(); ++ch)
            pool_->submit([this, ch, now] { tickChannel(ch, now); });
        pool_->wait();
    } else {
        for (std::uint32_t ch = 0; ch < channels_.size(); ++ch)
            tickChannel(ch, now);
    }

    // Phase C (serial): replay deferred activations in channel order
    // — the order the serial loop would have fired them — so the
    // mitigation's trackers, RNG draws and migration scheduling see
    // one deterministic sequence at any worker count.
    for (std::uint32_t ch = 0; ch < channels_.size(); ++ch) {
        ChannelState &c = channels_[ch];
        if (!c.deferredAct.valid)
            continue;
        const DeferredAct act = c.deferredAct;
        c.deferredAct = DeferredAct{};
        listener_->onActivate(ch, act.flat, act.phys, now);
        // The mitigation may have remapped rows; refresh the cached
        // translation of the request whose ACT triggered it.
        invalidateReqCache(c, *act.req);
        physRowOf(ch, c, *act.req);
    }
}

bool
MemoryController::manageRefresh(ChannelState &c, Cycle now)
{
    for (std::uint32_t ri = 0; ri < c.ranks.size(); ++ri) {
        auto &due = c.nextRefreshDue[ri];
        auto &debt = c.refreshDebt[ri];
        while (now >= due && debt < cfg_.maxPostponedRefreshes) {
            due += timing_.tREFI;
            ++debt;
        }
        if (debt == 0)
            continue;
        Rank &rank = c.ranks[ri];
        if (rank.canRefresh(now)) {
            // canRefresh() requires every bank closed, so an all-bank
            // refresh never disturbs the open-row mirror.
            rank.refresh(now);
            --debt;
            c.stats.inc(h_.refreshes);
            return true;
        }
        if (debt >= cfg_.maxPostponedRefreshes) {
            // Forced refresh: close an open bank to make progress.
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
                if (rank.bank(b).rowOpen() &&
                    rank.canIssue(DramCommand::Precharge, b, 0, now)) {
                    issueCmd(c, ri, DramCommand::Precharge, b, 0, now);
                    c.stats.inc(h_.forcedPrecharges);
                    return true;
                }
            }
        }
    }
    return false;
}

bool
MemoryController::startMigration(std::uint32_t chIdx, ChannelState &c,
                                 Cycle now)
{
    (void)chIdx;
    for (std::uint32_t flat = 0; flat < c.migQ.size(); ++flat) {
        if (c.migQ[flat].empty())
            continue;
        const std::uint32_t ri = flat / org_.banksPerRank;
        const std::uint32_t bi = flat % org_.banksPerRank;
        Rank &rank = c.ranks[ri];
        // Do not delay a forced refresh by multiple microseconds.
        if (c.refreshDebt[ri] >= cfg_.maxPostponedRefreshes ||
            rank.refreshing(now)) {
            continue;
        }
        Bank &bank = rank.bank(bi);
        if (bank.blocked(now))
            continue;
        if (bank.rowOpen()) {
            if (rank.canIssue(DramCommand::Precharge, bi, 0, now)) {
                issueCmd(c, ri, DramCommand::Precharge, bi, 0, now);
                return true;
            }
            continue;
        }
        if (now < bank.actReadyAt())
            continue;
        MigrationJob job = std::move(c.migQ[flat].front());
        c.migQ[flat].pop_front();
        --c.migCount;
        bank.blockFor(now, job.duration);
        for (const RowCharge &charge : job.charges) {
            bank.chargeActivation(charge.row, charge.count);
            c.stats.inc(h_.latentActivations, charge.count);
        }
        c.stats.inc(h_.migStarted[static_cast<int>(job.kind)]);
        c.stats.inc(h_.migrationBusyCycles, job.duration);
        return true;
    }
    return false;
}

void
MemoryController::updateDrainState(ChannelState &c)
{
    if (!c.draining && liveWrites(c) >= cfg_.writeHiWatermark)
        c.draining = true;
    else if (c.draining && liveWrites(c) <= cfg_.writeLoWatermark)
        c.draining = false;
}

RowId
MemoryController::physRowOf(std::uint32_t chIdx, ChannelState &c,
                            MemRequest &req)
{
    if (req.mapVersion == c.mapVersion && req.physRow != kInvalidRow)
        return req.physRow;
    RowId phys = req.coord.row;
    const std::uint32_t flat = flatBank(c, req.coord.rank, req.coord.bank);
    if (listener_)
        phys = listener_->remapRow(chIdx, flat, phys);
    // The request leaves the stale set; if its fresh translation hits
    // its bank's open row it joins the hit counters.
    if (req.isWrite)
        --c.writeStale;
    else
        --c.readStale;
    req.physRow = phys;
    req.mapVersion = c.mapVersion;
    if (c.openRowArr[flat] == phys) {
        if (req.isWrite) {
            ++c.writeHit[flat];
            ++c.writeHitSum;
        } else {
            ++c.readHit[flat];
            ++c.readHitSum;
        }
    }
    return phys;
}

Cycle
MemoryController::issueCmd(ChannelState &c, std::uint32_t rank,
                           DramCommand cmd, std::uint32_t bank, RowId row,
                           Cycle now, bool autoPre)
{
    Rank &r = c.ranks[rank];
    const Cycle done = r.issue(cmd, bank, row, now, autoPre);
    const std::uint32_t flat = flatBank(c, rank, bank);
    const Bank &b = r.bank(bank);
    const RowId open = b.rowOpen() ? b.openRow() : kInvalidRow;
    if (open != c.openRowArr[flat]) {
        if (c.openRowArr[flat] == kInvalidRow)
            ++c.openCount;
        else if (open == kInvalidRow)
            --c.openCount;
        c.openRowArr[flat] = open;
        recountBankHits(c, flat);
    }
    return done;
}

void
MemoryController::recountBankHits(ChannelState &c, std::uint32_t flat)
{
    c.readHitSum -= c.readHit[flat];
    c.writeHitSum -= c.writeHit[flat];
    c.readHit[flat] = 0;
    c.writeHit[flat] = 0;
    const RowId open = c.openRowArr[flat];
    if (open == kInvalidRow)
        return;
    for (const MemRequest &r : c.readQ) {
        if (!r.dead && r.mapVersion == c.mapVersion && r.physRow == open &&
            flatBank(c, r.coord.rank, r.coord.bank) == flat) {
            ++c.readHit[flat];
        }
    }
    for (const MemRequest &w : c.writeQ) {
        if (!w.dead && w.mapVersion == c.mapVersion && w.physRow == open &&
            flatBank(c, w.coord.rank, w.coord.bank) == flat) {
            ++c.writeHit[flat];
        }
    }
    c.readHitSum += c.readHit[flat];
    c.writeHitSum += c.writeHit[flat];
}

void
MemoryController::killRequest(ChannelState &c, MemRequest &req)
{
    if (req.mapVersion == c.mapVersion) {
        const std::uint32_t flat =
            flatBank(c, req.coord.rank, req.coord.bank);
        if (c.openRowArr[flat] == req.physRow) {
            if (req.isWrite) {
                --c.writeHit[flat];
                --c.writeHitSum;
            } else {
                --c.readHit[flat];
                --c.readHitSum;
            }
        }
    } else {
        if (req.isWrite)
            --c.writeStale;
        else
            --c.readStale;
    }
    req.dead = true;
    if (req.isWrite)
        ++c.writeDead;
    else
        ++c.readDead;
}

void
MemoryController::compactIfNeeded(ChannelState &c,
                                  std::vector<MemRequest> &q, bool isWrite)
{
    std::uint32_t &dead = isWrite ? c.writeDead : c.readDead;
    if (dead < kCompactThreshold)
        return;
    std::erase_if(q, [](const MemRequest &r) { return r.dead; });
    dead = 0;
}

void
MemoryController::invalidateReqCache(ChannelState &c, MemRequest &req)
{
    if (req.mapVersion == c.mapVersion) {
        const std::uint32_t flat =
            flatBank(c, req.coord.rank, req.coord.bank);
        if (c.openRowArr[flat] == req.physRow) {
            if (req.isWrite) {
                --c.writeHit[flat];
                --c.writeHitSum;
            } else {
                --c.readHit[flat];
                --c.readHitSum;
            }
        }
        if (req.isWrite)
            ++c.writeStale;
        else
            ++c.readStale;
    }
    req.mapVersion = 0;
}

bool
MemoryController::serviceQueue(std::uint32_t chIdx, ChannelState &c,
                               std::vector<MemRequest> &q, bool isWrite,
                               Cycle now)
{
    const DramCommand cas =
        isWrite ? DramCommand::Write : DramCommand::Read;

    // Pass 1 (FR of FR-FCFS): serve a queued row-buffer hit.  The
    // scan is provably a no-op — and skipped — when no current cached
    // translation equals its bank's open row AND no translation is
    // stale: physRowOf() revalidates stale entries as a side effect,
    // which can surface hits mid-scan, so staleness forces the walk.
    const std::uint32_t hitSum = isWrite ? c.writeHitSum : c.readHitSum;
    const std::uint32_t staleCnt = isWrite ? c.writeStale : c.readStale;
    if (hitSum > 0 || staleCnt > 0) {
        for (std::size_t i = 0; i < q.size(); ++i) {
            MemRequest &req = q[i];
            if (req.dead)
                continue;
            const std::uint32_t ri = req.coord.rank;
            const std::uint32_t bi = req.coord.bank;
            Rank &rank = c.ranks[ri];
            Bank &bank = rank.bank(bi);
            if (rank.refreshing(now) || bank.blocked(now) ||
                !bank.rowOpen()) {
                continue;
            }
            const RowId phys = physRowOf(chIdx, c, req);
            if (bank.openRow() != phys)
                continue;
            if (!rank.canIssue(cas, bi, phys, now))
                continue;
            const Cycle done = issueCmd(c, ri, cas, bi, phys, now,
                                        /*autoPre=*/false);
            if (isWrite) {
                c.stats.inc(h_.writesIssued);
            } else {
                c.stats.inc(h_.readsIssued);
                c.stats.inc(h_.rowHits);
                MemRequest finished = req;
                finished.completion = done;
                c.pendingReads.push({done, finished});
            }
            killRequest(c, req);
            compactIfNeeded(c, q, isWrite);
            return true;
        }
    }

    // Pass 2 (FCFS): open the oldest serviceable request's row.
    //
    // Bank and rank state are constant for the duration of the scan
    // (issuing any command returns immediately), so the skip verdict
    // for a bank is computed once and memoized for every later
    // request targeting it.  Verdicts reached after the physRowOf()
    // call in the original control flow still refresh the skipped
    // request's translation cache, preserving the side effect the
    // unmemoized scan had; busy/forced verdicts precede it and must
    // not.  Throttling is row-dependent and is never memoized.
    enum : std::uint8_t
    {
        kVerdictNone = 0,
        kVerdictBusy,
        kVerdictForced,
        kVerdictHitWait,
        kVerdictPreWait,
        kVerdictActWait,
    };
    std::vector<std::uint8_t> &verdict = c.p2Verdict;
    std::fill(verdict.begin(), verdict.end(), kVerdictNone);
    std::uint64_t nBusy = 0;
    std::uint64_t nForced = 0;
    std::uint64_t nHitWait = 0;
    std::uint64_t nPreWait = 0;
    std::uint64_t nActWait = 0;
    const auto flushSkips = [&]() {
        if (nBusy > 0)
            c.stats.inc(h_.p2SkipBusy, nBusy);
        if (nForced > 0)
            c.stats.inc(h_.p2SkipForced, nForced);
        if (nHitWait > 0)
            c.stats.inc(h_.p2SkipHitWait, nHitWait);
        if (nPreWait > 0)
            c.stats.inc(h_.p2SkipPreWait, nPreWait);
        if (nActWait > 0)
            c.stats.inc(h_.p2SkipActWait, nActWait);
    };
    for (std::size_t i = 0; i < q.size(); ++i) {
        MemRequest &req = q[i];
        if (req.dead)
            continue;
        const std::uint32_t ri = req.coord.rank;
        const std::uint32_t bi = req.coord.bank;
        const std::uint32_t flat = flatBank(c, ri, bi);
        switch (verdict[flat]) {
          case kVerdictBusy:
            ++nBusy;
            continue;
          case kVerdictForced:
            ++nForced;
            continue;
          case kVerdictHitWait:
            physRowOf(chIdx, c, req);
            ++nHitWait;
            continue;
          case kVerdictPreWait:
            physRowOf(chIdx, c, req);
            ++nPreWait;
            continue;
          case kVerdictActWait:
            physRowOf(chIdx, c, req);
            ++nActWait;
            continue;
          default:
            break;
        }
        Rank &rank = c.ranks[ri];
        Bank &bank = rank.bank(bi);
        if (rank.refreshing(now) || bank.blocked(now)) {
            verdict[flat] = kVerdictBusy;
            ++nBusy;
            continue;
        }
        // Forced-refresh mode: no new activations on this rank.
        if (c.refreshDebt[ri] >= cfg_.maxPostponedRefreshes) {
            verdict[flat] = kVerdictForced;
            ++nForced;
            continue;
        }
        const RowId phys = physRowOf(chIdx, c, req);
        if (bank.rowOpen()) {
            // Conflict: close the row so this request can proceed
            // (pass 1 already drained any hits to the open row).
            if (bankHasPendingHit(c, ri, bi, bank.openRow())) {
                verdict[flat] = kVerdictHitWait;
                ++nHitWait;
                continue;
            }
            if (rank.canIssue(DramCommand::Precharge, bi, 0, now)) {
                issueCmd(c, ri, DramCommand::Precharge, bi, 0, now);
                c.stats.inc(h_.rowConflicts);
                flushSkips();
                return true;
            }
            verdict[flat] = kVerdictPreWait;
            ++nPreWait;
            continue;
        }
        if (!rank.canIssue(DramCommand::Activate, bi, phys, now)) {
            // Activate legality is row-independent (tRRD/tFAW and the
            // bank's tRC window), so the verdict covers the bank.
            verdict[flat] = kVerdictActWait;
            ++nActWait;
            continue;
        }
        if (listener_ != nullptr &&
            listener_->actAllowedAt(chIdx, flat, phys, now) > now) {
            c.stats.inc(h_.p2SkipThrottled);
            continue;
        }
        issueCmd(c, ri, DramCommand::Activate, bi, phys, now);
        c.stats.inc(h_.activations);
        flushSkips();
        if (listener_) {
            // Notify in the serial phase-C sweep of tick(), not here:
            // the mitigation feeds shared trackers and draws RNG, so
            // the callback must fire in fixed channel order.  Nothing
            // else in this channel's tick consults the mitigation
            // after this point (we return immediately), so deferral
            // is exactly equivalent to the former inline call.
            c.deferredAct = DeferredAct{true, flat, phys, &req};
        }
        return true;
    }
    flushSkips();
    return false;
}

bool
MemoryController::bankHasPendingHit(const ChannelState &c,
                                    std::uint32_t rank,
                                    std::uint32_t bank,
                                    RowId openRow) const
{
    // Formerly a scan of both queues per call (the simulator's top
    // hotspot); the incremental counters answer in O(1).  Semantics
    // are unchanged: only requests whose cached translation is
    // current can register as hits, and writes count only while the
    // channel is draining (otherwise a parked write would wedge the
    // bank open forever).
    const std::uint32_t flat = flatBank(c, rank, bank);
    SRS_ASSERT(c.openRowArr[flat] == openRow, "open-row mirror stale");
    return c.readHit[flat] > 0 || (c.draining && c.writeHit[flat] > 0);
}

bool
MemoryController::idleClose(ChannelState &c, Cycle now)
{
    // Closed-page policy: proactively precharge one bank per tick
    // whose open row has no queued hit.
    if (c.openCount == 0)
        return false;
    const std::uint32_t banks =
        org_.ranksPerChannel * org_.banksPerRank;
    for (std::uint32_t step = 0; step < banks; ++step) {
        const std::uint32_t flat = (c.closeCursor + step) % banks;
        if (c.openRowArr[flat] == kInvalidRow)
            continue;
        const std::uint32_t ri = flat / org_.banksPerRank;
        const std::uint32_t bi = flat % org_.banksPerRank;
        Rank &rank = c.ranks[ri];
        Bank &bank = rank.bank(bi);
        if (rank.refreshing(now) || bank.blocked(now) || !bank.rowOpen())
            continue;
        if (bankHasPendingHit(c, ri, bi, bank.openRow()))
            continue;
        if (!rank.canIssue(DramCommand::Precharge, bi, 0, now))
            continue;
        issueCmd(c, ri, DramCommand::Precharge, bi, 0, now);
        c.stats.inc(h_.idleCloses);
        c.closeCursor = (flat + 1) % banks;
        return true;
    }
    return false;
}

void
MemoryController::tickChannel(std::uint32_t ch, Cycle now)
{
    ChannelState &c = channels_[ch];
    if (manageRefresh(c, now))
        return;
    if (startMigration(ch, c, now))
        return;
    updateDrainState(c);
    bool issued = false;
    if (c.draining) {
        issued = serviceQueue(ch, c, c.writeQ, true, now) ||
                 serviceQueue(ch, c, c.readQ, false, now);
    } else {
        issued = serviceQueue(ch, c, c.readQ, false, now);
        if (!issued && liveWrites(c) > 0 && liveReads(c) == 0)
            issued = serviceQueue(ch, c, c.writeQ, true, now);
    }
    if (!issued && cfg_.pagePolicy == PagePolicy::Closed)
        idleClose(c, now);
}

void
MemoryController::resetEpochCounters()
{
    for (auto &c : channels_) {
        for (auto &rank : c.ranks) {
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b)
                rank.bank(b).resetEpochCounters();
        }
    }
}

Bank &
MemoryController::bankAt(std::uint32_t channel, std::uint32_t bank)
{
    ChannelState &c = channels_.at(channel);
    const std::uint32_t ri = bank / org_.banksPerRank;
    const std::uint32_t bi = bank % org_.banksPerRank;
    return c.ranks.at(ri).bank(bi);
}

const Bank &
MemoryController::bankAt(std::uint32_t channel, std::uint32_t bank) const
{
    const ChannelState &c = channels_.at(channel);
    const std::uint32_t ri = bank / org_.banksPerRank;
    const std::uint32_t bi = bank % org_.banksPerRank;
    return c.ranks.at(ri).bank(bi);
}

bool
MemoryController::idle(Cycle now) const
{
    for (const auto &c : channels_) {
        if (!c.pendingReads.empty())
            return false;
        if (liveReads(c) > 0 || liveWrites(c) > 0 || c.migCount > 0)
            return false;
        for (std::uint32_t ri = 0; ri < c.ranks.size(); ++ri) {
            const Rank &rank = c.ranks[ri];
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
                if (rank.bank(b).blocked(now))
                    return false;
            }
        }
    }
    return true;
}

Cycle
MemoryController::nextEventAt(Cycle now) const
{
    Cycle next = kNoCycle;
    for (const auto &c : channels_) {
        // A queued completion bounds the next effect; any live
        // request, pending migration, owed refresh, or — under the
        // closed-page policy — an open bank means the channel can
        // act (or count a p2_skip_* stat) on the very next bus edge.
        // Early-returning now + 1 below is safe alongside this: it is
        // the smallest value any channel could contribute.
        if (!c.pendingReads.empty()) {
            next = std::min(next,
                            std::max(c.pendingReads.top().done, now + 1));
        }
        if (liveReads(c) > 0 || liveWrites(c) > 0 || c.migCount > 0)
            return now + 1;
        bool debtPending = false;
        for (std::uint32_t ri = 0; ri < c.ranks.size(); ++ri) {
            if (c.refreshDebt[ri] > 0) {
                debtPending = true;
                break;
            }
        }
        if (debtPending)
            return now + 1;
        if (cfg_.pagePolicy == PagePolicy::Closed && c.openCount > 0)
            return now + 1;
        // Fully drained: the next effect is refresh debt accrual.
        for (const Cycle due : c.nextRefreshDue)
            next = std::min(next, std::max(due, now + 1));
    }
    return next;
}

const StatSet &
MemoryController::stats() const
{
    // Rebuild the merged view on every call (cold path: tests,
    // result collection, reporting).  Shards fold in channel order —
    // commutative adds, so the values are independent of where each
    // counter was bumped and of the phase-B worker count.
    mergedStats_ = stats_;
    for (const auto &c : channels_)
        mergedStats_.merge(c.stats);
    return mergedStats_;
}

} // namespace srs
