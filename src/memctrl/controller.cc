#include "memctrl/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srs
{

const char *
migrationKindName(MigrationJob::Kind kind)
{
    switch (kind) {
      case MigrationJob::Kind::Swap:          return "swap";
      case MigrationJob::Kind::UnswapSwap:    return "unswap_swap";
      case MigrationJob::Kind::PlaceBack:     return "place_back";
      case MigrationJob::Kind::CounterAccess: return "counter_access";
    }
    return "?";
}

MemoryController::MemoryController(const DramOrg &org,
                                   const DramTiming &timing,
                                   const MemCtrlConfig &cfg)
    : org_(org), timing_(timing), cfg_(cfg), map_(org)
{
    if (cfg_.writeLoWatermark >= cfg_.writeHiWatermark)
        fatal("write drain watermarks inverted");
    channels_.resize(org_.channels);
    for (auto &c : channels_) {
        c.ranks.reserve(org_.ranksPerChannel);
        for (std::uint32_t r = 0; r < org_.ranksPerChannel; ++r)
            c.ranks.emplace_back(timing_, org_);
        c.migQ.resize(org_.ranksPerChannel * org_.banksPerRank);
        c.nextRefreshDue.assign(org_.ranksPerChannel, timing_.tREFI);
        c.refreshDebt.assign(org_.ranksPerChannel, 0);
    }
}

std::uint32_t
MemoryController::flatBank(const ChannelState &, std::uint32_t rank,
                           std::uint32_t bank) const
{
    return rank * org_.banksPerRank + bank;
}

bool
MemoryController::canAccept(Addr addr, bool isWrite) const
{
    const DramCoord coord = map_.decode(addr);
    const ChannelState &c = channels_[coord.channel];
    if (isWrite)
        return c.writeQ.size() < cfg_.writeQueueDepth;
    return c.readQ.size() < cfg_.readQueueDepth;
}

std::uint64_t
MemoryController::enqueue(Addr addr, bool isWrite, CoreId core, Cycle now)
{
    if (!canAccept(addr, isWrite))
        return std::numeric_limits<std::uint64_t>::max();

    MemRequest req;
    req.id = nextReqId_++;
    req.addr = addr;
    req.isWrite = isWrite;
    req.core = core;
    req.arrival = now;
    req.coord = map_.decode(addr);

    ChannelState &c = channels_[req.coord.channel];
    if (isWrite) {
        stats_.inc("writes_enqueued");
        c.writeQ.push_back(req);
        return req.id;
    }

    // Read-around-write forwarding: a read that hits a posted write
    // is satisfied from the write queue without touching DRAM.
    const Addr line = addr & ~static_cast<Addr>(org_.lineBytes - 1);
    for (const MemRequest &w : c.writeQ) {
        const Addr wline = w.addr & ~static_cast<Addr>(org_.lineBytes - 1);
        if (wline == line) {
            stats_.inc("reads_forwarded");
            MemRequest done = req;
            done.completion = now + 1;
            pendingReads_.push({done.completion, done});
            return req.id;
        }
    }
    stats_.inc("reads_enqueued");
    c.readQ.push_back(req);
    return req.id;
}

void
MemoryController::scheduleMigration(std::uint32_t channel,
                                    std::uint32_t bank, MigrationJob job)
{
    SRS_ASSERT(channel < channels_.size(), "bad channel");
    ChannelState &c = channels_[channel];
    SRS_ASSERT(bank < c.migQ.size(), "bad bank");
    stats_.inc(std::string("mig_scheduled_") + migrationKindName(job.kind));
    // Any mitigation activity may have changed the row mapping, so
    // cached remaps in queued requests must be recomputed.
    ++c.mapVersion;
    c.migQ[bank].push_back(std::move(job));
}

std::size_t
MemoryController::pendingMigrations(std::uint32_t channel,
                                    std::uint32_t bank) const
{
    return channels_[channel].migQ[bank].size();
}

void
MemoryController::tick(Cycle now)
{
    while (!pendingReads_.empty() && pendingReads_.top().done <= now) {
        MemRequest req = pendingReads_.top().req;
        pendingReads_.pop();
        stats_.inc("reads_completed");
        stats_.inc("read_latency_cycles", req.completion - req.arrival);
        if (onReadDone_)
            onReadDone_(req);
    }
    for (std::uint32_t ch = 0; ch < channels_.size(); ++ch)
        tickChannel(ch, now);
}

bool
MemoryController::manageRefresh(ChannelState &c, Cycle now)
{
    for (std::uint32_t ri = 0; ri < c.ranks.size(); ++ri) {
        auto &due = c.nextRefreshDue[ri];
        auto &debt = c.refreshDebt[ri];
        while (now >= due && debt < cfg_.maxPostponedRefreshes) {
            due += timing_.tREFI;
            ++debt;
        }
        if (debt == 0)
            continue;
        Rank &rank = c.ranks[ri];
        if (rank.canRefresh(now)) {
            rank.refresh(now);
            --debt;
            stats_.inc("refreshes");
            return true;
        }
        if (debt >= cfg_.maxPostponedRefreshes) {
            // Forced refresh: close an open bank to make progress.
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
                if (rank.bank(b).rowOpen() &&
                    rank.canIssue(DramCommand::Precharge, b, 0, now)) {
                    rank.issue(DramCommand::Precharge, b, 0, now);
                    stats_.inc("forced_precharges");
                    return true;
                }
            }
        }
    }
    return false;
}

bool
MemoryController::startMigration(std::uint32_t chIdx, ChannelState &c,
                                 Cycle now)
{
    (void)chIdx;
    for (std::uint32_t flat = 0; flat < c.migQ.size(); ++flat) {
        if (c.migQ[flat].empty())
            continue;
        const std::uint32_t ri = flat / org_.banksPerRank;
        const std::uint32_t bi = flat % org_.banksPerRank;
        Rank &rank = c.ranks[ri];
        // Do not delay a forced refresh by multiple microseconds.
        if (c.refreshDebt[ri] >= cfg_.maxPostponedRefreshes ||
            rank.refreshing(now)) {
            continue;
        }
        Bank &bank = rank.bank(bi);
        if (bank.blocked(now))
            continue;
        if (bank.rowOpen()) {
            if (rank.canIssue(DramCommand::Precharge, bi, 0, now)) {
                rank.issue(DramCommand::Precharge, bi, 0, now);
                return true;
            }
            continue;
        }
        if (now < bank.actReadyAt())
            continue;
        MigrationJob job = std::move(c.migQ[flat].front());
        c.migQ[flat].pop_front();
        bank.blockFor(now, job.duration);
        for (const RowCharge &charge : job.charges) {
            bank.chargeActivation(charge.row, charge.count);
            stats_.inc("latent_activations", charge.count);
        }
        stats_.inc(std::string("mig_started_") +
                   migrationKindName(job.kind));
        stats_.inc("migration_busy_cycles", job.duration);
        return true;
    }
    return false;
}

void
MemoryController::updateDrainState(ChannelState &c)
{
    if (!c.draining && c.writeQ.size() >= cfg_.writeHiWatermark)
        c.draining = true;
    else if (c.draining && c.writeQ.size() <= cfg_.writeLoWatermark)
        c.draining = false;
}

RowId
MemoryController::physRowOf(std::uint32_t chIdx, const ChannelState &c,
                            MemRequest &req)
{
    if (req.mapVersion == c.mapVersion && req.physRow != kInvalidRow)
        return req.physRow;
    RowId phys = req.coord.row;
    if (listener_) {
        const std::uint32_t bankInChannel =
            flatBank(c, req.coord.rank, req.coord.bank);
        phys = listener_->remapRow(chIdx, bankInChannel, phys);
    }
    req.physRow = phys;
    req.mapVersion = c.mapVersion;
    return phys;
}

bool
MemoryController::serviceQueue(std::uint32_t chIdx, ChannelState &c,
                               std::vector<MemRequest> &q, bool isWrite,
                               Cycle now)
{
    const DramCommand cas =
        isWrite ? DramCommand::Write : DramCommand::Read;

    // Pass 1 (FR of FR-FCFS): serve a queued row-buffer hit.
    for (std::size_t i = 0; i < q.size(); ++i) {
        MemRequest &req = q[i];
        const std::uint32_t ri = req.coord.rank;
        const std::uint32_t bi = req.coord.bank;
        Rank &rank = c.ranks[ri];
        Bank &bank = rank.bank(bi);
        if (rank.refreshing(now) || bank.blocked(now) || !bank.rowOpen())
            continue;
        const RowId phys = physRowOf(chIdx, c, req);
        if (bank.openRow() != phys)
            continue;
        if (!rank.canIssue(cas, bi, phys, now))
            continue;
        const Cycle done = rank.issue(cas, bi, phys, now,
                                      /*autoPre=*/false);
        if (isWrite) {
            stats_.inc("writes_issued");
        } else {
            stats_.inc("reads_issued");
            stats_.inc("row_hits");
            MemRequest finished = req;
            finished.completion = done;
            pendingReads_.push({done, finished});
        }
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }

    // Pass 2 (FCFS): open the oldest serviceable request's row.
    for (std::size_t i = 0; i < q.size(); ++i) {
        MemRequest &req = q[i];
        const std::uint32_t ri = req.coord.rank;
        const std::uint32_t bi = req.coord.bank;
        Rank &rank = c.ranks[ri];
        Bank &bank = rank.bank(bi);
        if (rank.refreshing(now) || bank.blocked(now)) {
            stats_.inc("p2_skip_busy");
            continue;
        }
        // Forced-refresh mode: no new activations on this rank.
        if (c.refreshDebt[ri] >= cfg_.maxPostponedRefreshes) {
            stats_.inc("p2_skip_forced");
            continue;
        }
        const RowId phys = physRowOf(chIdx, c, req);
        if (bank.rowOpen()) {
            // Conflict: close the row so this request can proceed
            // (pass 1 already drained any hits to the open row).
            if (bankHasPendingHit(c, ri, bi, bank.openRow())) {
                stats_.inc("p2_skip_hit_wait");
                continue;
            }
            if (rank.canIssue(DramCommand::Precharge, bi, 0, now)) {
                rank.issue(DramCommand::Precharge, bi, 0, now);
                stats_.inc("row_conflicts");
                return true;
            }
            stats_.inc("p2_skip_pre_wait");
            continue;
        }
        if (!rank.canIssue(DramCommand::Activate, bi, phys, now)) {
            stats_.inc("p2_skip_act_wait");
            continue;
        }
        if (listener_ != nullptr &&
            listener_->actAllowedAt(chIdx, flatBank(c, ri, bi), phys,
                                    now) > now) {
            stats_.inc("p2_skip_throttled");
            continue;
        }
        rank.issue(DramCommand::Activate, bi, phys, now);
        stats_.inc("activations");
        if (listener_) {
            const std::uint32_t bankInChannel = flatBank(c, ri, bi);
            listener_->onActivate(chIdx, bankInChannel, phys, now);
            // The mitigation may have remapped rows; refresh the
            // cached translation of this request.
            req.mapVersion = 0;
            if (physRowOf(chIdx, c, req) != phys) {
                // Our own row was swapped away mid-flight; retry via
                // the normal path next tick.
                return true;
            }
        }
        return true;
    }
    return false;
}

bool
MemoryController::bankHasPendingHit(const ChannelState &c,
                                    std::uint32_t rank,
                                    std::uint32_t bank,
                                    RowId openRow) const
{
    auto scan = [&](const std::vector<MemRequest> &q) {
        for (const MemRequest &req : q) {
            if (req.coord.rank == rank && req.coord.bank == bank &&
                req.mapVersion == c.mapVersion &&
                req.physRow == openRow) {
                return true;
            }
        }
        return false;
    };
    // Only count hits the scheduler will actually serve soon: reads
    // are always eligible; writes only while the channel is draining
    // (otherwise a parked write would wedge the bank open forever).
    return scan(c.readQ) || (c.draining && scan(c.writeQ));
}

bool
MemoryController::idleClose(ChannelState &c, Cycle now)
{
    // Closed-page policy: proactively precharge one bank per tick
    // whose open row has no queued hit.
    const std::uint32_t banks =
        org_.ranksPerChannel * org_.banksPerRank;
    for (std::uint32_t step = 0; step < banks; ++step) {
        const std::uint32_t flat = (c.closeCursor + step) % banks;
        const std::uint32_t ri = flat / org_.banksPerRank;
        const std::uint32_t bi = flat % org_.banksPerRank;
        Rank &rank = c.ranks[ri];
        Bank &bank = rank.bank(bi);
        if (rank.refreshing(now) || bank.blocked(now) || !bank.rowOpen())
            continue;
        if (bankHasPendingHit(c, ri, bi, bank.openRow()))
            continue;
        if (!rank.canIssue(DramCommand::Precharge, bi, 0, now))
            continue;
        rank.issue(DramCommand::Precharge, bi, 0, now);
        stats_.inc("idle_closes");
        c.closeCursor = (flat + 1) % banks;
        return true;
    }
    return false;
}

void
MemoryController::tickChannel(std::uint32_t ch, Cycle now)
{
    ChannelState &c = channels_[ch];
    if (manageRefresh(c, now))
        return;
    if (startMigration(ch, c, now))
        return;
    updateDrainState(c);
    bool issued = false;
    if (c.draining) {
        issued = serviceQueue(ch, c, c.writeQ, true, now) ||
                 serviceQueue(ch, c, c.readQ, false, now);
    } else {
        issued = serviceQueue(ch, c, c.readQ, false, now);
        if (!issued && !c.writeQ.empty() && c.readQ.empty())
            issued = serviceQueue(ch, c, c.writeQ, true, now);
    }
    if (!issued && cfg_.pagePolicy == PagePolicy::Closed)
        idleClose(c, now);
}

void
MemoryController::resetEpochCounters()
{
    for (auto &c : channels_) {
        for (auto &rank : c.ranks) {
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b)
                rank.bank(b).resetEpochCounters();
        }
    }
}

Bank &
MemoryController::bankAt(std::uint32_t channel, std::uint32_t bank)
{
    ChannelState &c = channels_.at(channel);
    const std::uint32_t ri = bank / org_.banksPerRank;
    const std::uint32_t bi = bank % org_.banksPerRank;
    return c.ranks.at(ri).bank(bi);
}

const Bank &
MemoryController::bankAt(std::uint32_t channel, std::uint32_t bank) const
{
    const ChannelState &c = channels_.at(channel);
    const std::uint32_t ri = bank / org_.banksPerRank;
    const std::uint32_t bi = bank % org_.banksPerRank;
    return c.ranks.at(ri).bank(bi);
}

bool
MemoryController::idle(Cycle now) const
{
    if (!pendingReads_.empty())
        return false;
    for (const auto &c : channels_) {
        if (!c.readQ.empty() || !c.writeQ.empty())
            return false;
        for (const auto &q : c.migQ) {
            if (!q.empty())
                return false;
        }
        for (std::uint32_t ri = 0; ri < c.ranks.size(); ++ri) {
            const Rank &rank = c.ranks[ri];
            for (std::uint32_t b = 0; b < rank.numBanks(); ++b) {
                if (rank.bank(b).blocked(now))
                    return false;
            }
        }
    }
    return true;
}

} // namespace srs
