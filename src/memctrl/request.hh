/**
 * @file
 * Memory request and row-migration job types exchanged between the
 * LLC, the memory controller and the Row Hammer mitigations.
 */

#ifndef SRS_MEMCTRL_REQUEST_HH
#define SRS_MEMCTRL_REQUEST_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/address.hh"

namespace srs
{

/** One demand access (an LLC miss or writeback) to main memory. */
struct MemRequest
{
    std::uint64_t id = 0;       ///< unique tag, assigned by controller
    Addr addr = kInvalidAddr;   ///< byte address (logical / OS view)
    bool isWrite = false;
    CoreId core = 0;
    Cycle arrival = 0;          ///< enqueue cycle

    DramCoord coord;            ///< decoded coordinates (logical row)
    RowId physRow = kInvalidRow;///< row after RIT remap (cached)
    std::uint64_t mapVersion = 0;///< remap-cache validity stamp

    Cycle completion = kNoCycle;///< data-return cycle once issued

    /**
     * Tombstone: the request was served and awaits queue compaction.
     * Scheduler scans skip dead entries; compaction is amortized so
     * serving a request never pays an O(queue) vector::erase.
     */
    bool dead = false;
};

/** Activation charge to a physical row embedded in a migration. */
struct RowCharge
{
    RowId row;
    std::uint32_t count;
};

/**
 * A mitigation-driven row movement.  Jobs occupy their bank for
 * `duration` cycles and atomically charge the listed "latent"
 * activations to the ground-truth per-row counters when they start.
 */
struct MigrationJob
{
    enum class Kind
    {
        Swap,           ///< RRS/SRS initial swap (two-row exchange)
        UnswapSwap,     ///< RRS restore + re-swap (the Juggernaut lever)
        PlaceBack,      ///< SRS lazy eviction step
        CounterAccess,  ///< per-row swap-counter / Hydra RCT access
    };

    Kind kind = Kind::Swap;
    Cycle duration = 0;
    std::vector<RowCharge> charges;
};

/** @return human-readable name for stats. */
const char *migrationKindName(MigrationJob::Kind kind);

} // namespace srs

#endif // SRS_MEMCTRL_REQUEST_HH
