/**
 * @file
 * Cycle-level DDR4 memory controller (USIMM-equivalent abstraction).
 *
 * Per channel: a read queue, a posted write queue with high/low
 * watermark draining, FCFS-with-ready-first scheduling under a
 * closed-page policy (the paper's assumption; open-page is available
 * for the Section VIII-3 study), tREFI/tRFC refresh with JEDEC
 * postponement, and a per-bank migration-job queue through which Row
 * Hammer mitigations perform swap / unswap-swap / place-back row
 * movements that occupy banks and deposit latent activations.
 *
 * Channels are independent command streams once requests are routed,
 * so tick() is structured as three phases: a serial completion drain
 * in channel order, a per-channel scheduling phase that may fan out
 * across a thread pool (MemCtrlConfig::channelWorkers), and a serial
 * sweep that replays deferred mitigation notifications in channel
 * order.  Every cross-channel effect (read completions, listener
 * callbacks, statistics reduction) happens in one of the serial
 * phases at a fixed channel order, so results are identical at any
 * worker count — parallelism is an optimization, never an axis.
 */

#ifndef SRS_MEMCTRL_CONTROLLER_HH
#define SRS_MEMCTRL_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"
#include "dram/address.hh"
#include "dram/command.hh"
#include "dram/params.hh"
#include "dram/rank.hh"
#include "memctrl/request.hh"

namespace srs
{

/**
 * Hook through which a mitigation observes and redirects traffic.
 * remapRow() is consulted on every ACT; onActivate() fires after the
 * ACT has issued so the mitigation can count and react (schedule
 * migrations).
 */
class MemCtrlListener
{
  public:
    virtual ~MemCtrlListener() = default;

    /** Translate a logical row to its current physical row. */
    virtual RowId
    remapRow(std::uint32_t channel, std::uint32_t bank, RowId logical)
    {
        (void)channel; (void)bank;
        return logical;
    }

    /** Observe a demand activation of a physical row. */
    virtual void
    onActivate(std::uint32_t channel, std::uint32_t bank, RowId physRow,
               Cycle now)
    {
        (void)channel; (void)bank; (void)physRow; (void)now;
    }

    /**
     * Earliest cycle at which an ACT of @p physRow may issue.
     * Throttling defenses (BlockHammer) return a future cycle for
     * blacklisted rows; the controller keeps the request queued
     * until that cycle.
     * @return 0 when unconstrained
     */
    virtual Cycle
    actAllowedAt(std::uint32_t channel, std::uint32_t bank,
                 RowId physRow, Cycle now)
    {
        (void)channel; (void)bank; (void)physRow; (void)now;
        return 0;
    }

    /**
     * Whether remapRow()/actAllowedAt() may be queried from several
     * channel workers concurrently.  True for listeners whose query
     * paths only read, or only touch per-(channel, bank) state
     * (onActivate() is always serialized by the controller, so
     * mutation there is fine).  Listeners that mutate shared state
     * while answering queries — BlockHammer's throttle bookkeeping
     * updates a shared counter inside actAllowedAt() — return false
     * and the controller falls back to the serial channel loop;
     * results are identical either way, only the parallel speedup is
     * forfeited.
     */
    virtual bool concurrentChannelQueriesSafe() const { return true; }
};

/** Controller configuration knobs. */
struct MemCtrlConfig
{
    std::uint32_t readQueueDepth = 128;  ///< per channel
    std::uint32_t writeQueueDepth = 96;  ///< per channel
    std::uint32_t writeHiWatermark = 64; ///< start draining
    std::uint32_t writeLoWatermark = 24; ///< stop draining
    PagePolicy pagePolicy = PagePolicy::Closed;
    std::uint32_t maxPostponedRefreshes = 8;
    /**
     * Worker threads for the per-channel scheduling phase of tick()
     * (1 = serial; capped at the channel count).  Results are
     * byte-identical at any value — see the file comment.
     */
    std::uint32_t channelWorkers = 1;
};

/** The full-system memory controller (all channels). */
class MemoryController
{
  public:
    MemoryController(const DramOrg &org, const DramTiming &timing,
                     const MemCtrlConfig &cfg = {});

    /** Register the mitigation hook (nullptr = identity mapping). */
    void setListener(MemCtrlListener *listener) { listener_ = listener; }

    /** Callback fired when a read's data returns. */
    using ReadCallback = std::function<void(const MemRequest &)>;
    void setReadCallback(ReadCallback cb) { onReadDone_ = std::move(cb); }

    /** @return true when channel queues can accept @p isWrite request. */
    bool canAccept(Addr addr, bool isWrite) const;

    /**
     * Enqueue a demand access.  Writes are posted (no callback);
     * reads complete through the read callback.
     * @return assigned request id, or UINT64_MAX when rejected.
     */
    std::uint64_t enqueue(Addr addr, bool isWrite, CoreId core, Cycle now);

    /** Queue a migration job on (channel, bank). */
    void scheduleMigration(std::uint32_t channel, std::uint32_t bank,
                           MigrationJob job);

    /** @return number of queued-but-unstarted migrations on a bank. */
    std::size_t pendingMigrations(std::uint32_t channel,
                                  std::uint32_t bank) const;

    /**
     * Advance the controller; call once per memory bus clock.
     *
     * Three phases: (A) completed reads are drained and delivered in
     * channel order; (B) every channel schedules commands — in
     * parallel across the worker pool when channelWorkers > 1 and
     * the listener's query paths are concurrency-safe; (C) deferred
     * listener activations (at most one per channel per tick) replay
     * in channel order.  Phases A and C are the deterministic sync
     * points that make worker count invisible in the results.
     */
    void tick(Cycle now);

    /**
     * Earliest cycle (> @p now) at which ticking the controller is
     * not provably a no-op.  Conservative: whenever any queue holds a
     * live request, a migration is pending, refresh debt is owed, or
     * a bank must be idle-closed, this returns now+1 so the event
     * loop ticks at every bus edge exactly like the reference loop.
     * With everything drained it jumps to the next tREFI deadline.
     * @return kNoCycle when no future tick can have any effect
     */
    Cycle nextEventAt(Cycle now) const;

    /** Reset per-epoch activation ground truth in every bank. */
    void resetEpochCounters();

    /** Ground-truth access for security checks and tests. */
    Bank &bankAt(std::uint32_t channel, std::uint32_t bank);
    const Bank &bankAt(std::uint32_t channel, std::uint32_t bank) const;

    const AddressMap &addressMap() const { return map_; }
    const DramOrg &org() const { return org_; }
    const DramTiming &timing() const { return timing_; }

    /**
     * Aggregate statistics (acts, reads, writes, migrations...).
     * Counters touched by the per-channel scheduling phase live in
     * per-channel shards; this merges them (in channel order) with
     * the serial-phase counters into a cached view.  The reference
     * stays valid until the controller is destroyed, but its values
     * are a snapshot — call again after further ticks.
     */
    const StatSet &stats() const;

    /**
     * Read-latency histogram, one sample per completed demand read
     * (arrival to data return, in CPU cycles; write-queue-forwarded
     * reads land here too, at latency 1).  Identical between the
     * event-driven and reference loops by construction.
     */
    const LatencyHistogram &readLatency() const { return readLatency_; }

    /** @return true when all queues and banks are idle. */
    bool idle(Cycle now) const;

  private:
    /** (completionCycle, request) ordered soonest-first. */
    struct PendingRead
    {
        Cycle done;
        MemRequest req;
        bool operator>(const PendingRead &o) const { return done > o.done; }
    };

    /**
     * One listener activation recorded during the scheduling phase
     * and replayed in the serial phase-C sweep of tick().  At most
     * one per channel per tick: serviceQueue() returns immediately
     * after issuing the ACT, and nothing else in that channel's tick
     * consults the mitigation afterwards, so the deferral is exactly
     * equivalent to the former inline callback.
     */
    struct DeferredAct
    {
        bool valid = false;
        std::uint32_t flat = 0;
        RowId phys = kInvalidRow;
        /** the request whose translation cache must be refreshed */
        MemRequest *req = nullptr;
    };

    struct ChannelState
    {
        std::vector<Rank> ranks;
        std::vector<MemRequest> readQ;
        std::vector<MemRequest> writeQ;
        /** per (rank, bank) migration queues, flattened */
        std::vector<std::deque<MigrationJob>> migQ;
        bool draining = false;
        /** per-rank refresh bookkeeping */
        std::vector<Cycle> nextRefreshDue;
        std::vector<std::uint32_t> refreshDebt;
        /** bumped whenever the row mapping may have changed */
        std::uint64_t mapVersion = 1;
        /** round-robin cursor for idle-close precharges */
        std::uint32_t closeCursor = 0;

        // Incrementally-maintained scheduler state.  The invariant,
        // re-established by every queue/bank/remap mutation: for each
        // flat bank, readHit/writeHit count the live queued requests
        // whose cached translation is current (mapVersion matches)
        // and equals that bank's open row; readStale/writeStale count
        // live requests whose cached translation is out of date.
        // This turns bankHasPendingHit — formerly a full two-queue
        // scan per precharge decision — into an array read.

        /** mirror of each bank's open row (kInvalidRow when closed) */
        std::vector<RowId> openRowArr;
        std::vector<std::uint32_t> readHit;
        std::vector<std::uint32_t> writeHit;
        std::uint32_t readHitSum = 0;
        std::uint32_t writeHitSum = 0;
        std::uint32_t readStale = 0;
        std::uint32_t writeStale = 0;
        /** tombstoned (served, not yet compacted) entries per queue */
        std::uint32_t readDead = 0;
        std::uint32_t writeDead = 0;
        /** banks currently holding an open row */
        std::uint32_t openCount = 0;
        /** queued-but-unstarted migration jobs across all banks */
        std::uint64_t migCount = 0;
        /**
         * Per-scan scratch for serviceQueue pass 2: the memoized
         * skip verdict per flat bank (bank state cannot change
         * mid-scan, so one verdict covers every later request to
         * the same bank).  Kept here to avoid per-tick allocation.
         */
        std::vector<std::uint8_t> p2Verdict;

        /** reads in flight on this channel, soonest-done first */
        std::priority_queue<PendingRead, std::vector<PendingRead>,
                            std::greater<>> pendingReads;
        /**
         * Statistics shard for counters bumped inside tickChannel()
         * (the possibly-parallel phase).  Interned with the exact
         * handle order of the controller-wide set, so the shared
         * StatHandles index both; stats() folds the shards back in.
         */
        StatSet stats;
        /** activation awaiting the phase-C listener sweep */
        DeferredAct deferredAct;
    };

    void drainCompletedReads(ChannelState &c, Cycle now);
    void tickChannel(std::uint32_t ch, Cycle now);
    bool manageRefresh(ChannelState &c, Cycle now);
    bool startMigration(std::uint32_t chIdx, ChannelState &c, Cycle now);
    bool serviceQueue(std::uint32_t chIdx, ChannelState &c,
                      std::vector<MemRequest> &q, bool isWrite, Cycle now);
    bool idleClose(ChannelState &c, Cycle now);
    bool bankHasPendingHit(const ChannelState &c, std::uint32_t rank,
                           std::uint32_t bank, RowId openRow) const;
    RowId physRowOf(std::uint32_t chIdx, ChannelState &c, MemRequest &req);
    void updateDrainState(ChannelState &c);
    std::uint32_t flatBank(const ChannelState &c, std::uint32_t rank,
                           std::uint32_t bank) const;

    /** issue through the rank, keeping open-row mirrors + hit counts. */
    Cycle issueCmd(ChannelState &c, std::uint32_t rank, DramCommand cmd,
                   std::uint32_t bank, RowId row, Cycle now,
                   bool autoPre = false);
    /** rebuild one bank's hit counters after its open row changed. */
    void recountBankHits(ChannelState &c, std::uint32_t flat);
    /** tombstone a served request, maintaining the counters. */
    void killRequest(ChannelState &c, MemRequest &req);
    /** amortized removal of tombstoned entries. */
    void compactIfNeeded(ChannelState &c, std::vector<MemRequest> &q,
                         bool isWrite);
    /** counter-aware replacement for `req.mapVersion = 0`. */
    void invalidateReqCache(ChannelState &c, MemRequest &req);
    /** true when a read of @p line would be served from the write queue */
    bool wouldForward(const ChannelState &c, Addr line) const;

    std::uint32_t liveReads(const ChannelState &c) const
    {
        return static_cast<std::uint32_t>(c.readQ.size()) - c.readDead;
    }
    std::uint32_t liveWrites(const ChannelState &c) const
    {
        return static_cast<std::uint32_t>(c.writeQ.size()) - c.writeDead;
    }

    DramOrg org_;
    DramTiming timing_;
    MemCtrlConfig cfg_;
    AddressMap map_;

    std::vector<ChannelState> channels_;

    MemCtrlListener *listener_ = nullptr;
    ReadCallback onReadDone_;
    std::uint64_t nextReqId_ = 1;
    /** serial-phase counters (enqueue, completions, migrations) */
    StatSet stats_;
    /** lazily rebuilt stats_ + channel shards view (cold path) */
    mutable StatSet mergedStats_;
    LatencyHistogram readLatency_;
    /** workers for the scheduling phase; null when serial */
    std::unique_ptr<ThreadPool> pool_;

    /** Interned counter handles for the per-command hot paths. */
    struct StatHandles
    {
        StatSet::Handle writesEnqueued, readsForwarded, readsEnqueued,
            readsCompleted, readLatencyCycles, refreshes,
            forcedPrecharges, latentActivations, migrationBusyCycles,
            writesIssued, readsIssued, rowHits, rowConflicts,
            activations, idleCloses, p2SkipBusy, p2SkipForced,
            p2SkipHitWait, p2SkipPreWait, p2SkipActWait, p2SkipThrottled;
        StatSet::Handle migScheduled[4], migStarted[4];
    };
    StatHandles h_;
};

} // namespace srs

#endif // SRS_MEMCTRL_CONTROLLER_HH
