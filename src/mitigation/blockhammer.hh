/**
 * @file
 * BlockHammer (Yaglikci et al., HPCA 2021) — the throttling-based
 * aggressor-focused baseline the paper contrasts against in
 * Section IX-A.
 *
 * Per bank, a pair of time-interleaved counting Bloom filters
 * over-approximates per-row activation counts.  Once a row's
 * estimate crosses the blacklist threshold N_BL, further ACTs of
 * that row are delayed so the row cannot reach T_RH within the
 * blacklisting window: the enforced spacing is
 * window / (T_RH - N_BL), which at T_RH = 4800 with the default
 * half-threshold blacklist comes to ~26 us — the "approximately
 * 20 us per activation" DoS figure the paper quotes.
 *
 * No rows move: remapping is identity and the defense needs no RIT,
 * but every blacklisted row (benign or not) eats the full throttle
 * delay — the denial-of-service exposure Scale-SRS avoids.
 */

#ifndef SRS_MITIGATION_BLOCKHAMMER_HH
#define SRS_MITIGATION_BLOCKHAMMER_HH

#include <unordered_map>
#include <vector>

#include "mitigation/mitigation.hh"
#include "tracker/counting_bloom.hh"

namespace srs
{

/** BlockHammer-specific knobs. */
struct BlockHammerConfig
{
    /** Blacklist when the estimate reaches blacklistFraction * T_RH. */
    double blacklistFraction = 0.5;

    /** Counting-Bloom sizing (per bank, two filters). */
    CountingBloomConfig bloom;

    /** Filter-rotation windows per refresh epoch. */
    std::uint32_t windowsPerEpoch = 2;

    /**
     * Safety margin on the throttle budget: the spacing is computed
     * against safetyFactor * (T_RH - N_BL) remaining activations.
     */
    double safetyFactor = 1.0;
};

/** The BlockHammer mitigation (throttling, no row movement). */
class BlockHammer : public Mitigation
{
  public:
    BlockHammer(MemoryController &ctrl, AggressorTracker &tracker,
                const MitigationConfig &cfg,
                const BlockHammerConfig &bhCfg = {});

    const char *name() const override { return "blockhammer"; }

    // Identity mapping: BlockHammer never moves rows.
    RowId remapRow(std::uint32_t channel, std::uint32_t bank,
                   RowId logical) override;

    void onActivate(std::uint32_t channel, std::uint32_t bank,
                    RowId physRow, Cycle now) override;

    Cycle actAllowedAt(std::uint32_t channel, std::uint32_t bank,
                       RowId physRow, Cycle now) override;

    /**
     * actAllowedAt() prunes expired throttle entries and counts
     * throttled ACTs on the shared stat set, so concurrent channel
     * queries would race; the controller falls back to its serial
     * channel loop (results are identical either way).
     */
    bool concurrentChannelQueriesSafe() const override { return false; }

    void tick(Cycle now) override;

    /** Folds the filter-rotation deadline into the base schedule. */
    Cycle nextEventAt(Cycle now) const override
    {
        Cycle next = Mitigation::nextEventAt(now);
        if (nextRotateAt_ != kNoCycle)
            next = std::min(next, std::max(nextRotateAt_, now + 1));
        return next;
    }

    void onEpochEnd(Cycle now, Cycle epochLen) override;

    std::uint64_t storageBitsPerBank() const override;

    /** Blacklist threshold N_BL in activations. */
    std::uint32_t blacklistThreshold() const { return nbl_; }

    /** Enforced inter-ACT spacing for blacklisted rows, in cycles. */
    Cycle throttleSpacing() const { return spacing_; }

    /** Rows currently blacklisted on (channel, bank). */
    std::size_t blacklistedRows(std::uint32_t channel,
                                std::uint32_t bank) const;

    /** Filter estimate probe (tests). */
    std::uint32_t estimateOf(std::uint32_t channel, std::uint32_t bank,
                             RowId physRow) const;

  protected:
    /** Swapping never happens; T_S crossings are ignored. */
    void mitigate(std::uint32_t, std::uint32_t, RowId, Cycle) override {}

  private:
    /** Derive the throttle spacing from the epoch length. */
    void computeSpacing(Cycle epochLen);

    std::uint32_t flatIndex(std::uint32_t channel,
                            std::uint32_t bank) const;

    BlockHammerConfig bhCfg_;
    std::uint32_t nbl_;
    Cycle spacing_ = 0;
    Cycle windowLen_ = 0;
    Cycle nextRotateAt_ = kNoCycle;

    std::vector<DualCountingBloom> filters_;  ///< one per bank
    /** per bank: blacklisted row -> next allowed ACT cycle */
    std::vector<std::unordered_map<RowId, Cycle>> nextAllowed_;
    std::uint32_t banksPerChannel_;
};

} // namespace srs

#endif // SRS_MITIGATION_BLOCKHAMMER_HH
