/**
 * @file
 * Scalable and Secure Row-Swap (Scale-SRS; paper Section V) — the
 * paper's headline contribution.
 *
 * SRS plus:
 *  - a reduced swap rate (default 3 instead of 6), halving the swap
 *    traffic and shrinking the RIT;
 *  - outlier detection: when a physical row's swap-tracking counter
 *    reaches outlierSwaps * T_S in-epoch activations, the row is an
 *    outlier (expected only once every ~31 days under attack,
 *    Figure 13);
 *  - LLC pinning: the outlier's resident logical row is pinned in
 *    the last-level cache through the pin-buffer for the rest of the
 *    refresh interval, absorbing all further activations.
 */

#ifndef SRS_MITIGATION_SCALE_SRS_HH
#define SRS_MITIGATION_SCALE_SRS_HH

#include <functional>

#include "mitigation/srs.hh"

namespace srs
{

/** Scale-SRS-specific knobs. */
struct ScaleSrsConfig
{
    /** Pin when the swap counter reaches outlierSwaps * T_S. */
    std::uint32_t outlierSwaps = 3;
};

/** The Scale-SRS mitigation. */
class ScaleSrs : public Srs
{
  public:
    /**
     * Hook that pins a logical row in the LLC.
     * @return true when the pin succeeded (pin-buffer not full)
     */
    using PinHook = std::function<bool(std::uint32_t channel,
                                       std::uint32_t bank,
                                       RowId logicalRow)>;

    ScaleSrs(MemoryController &ctrl, AggressorTracker &tracker,
             const MitigationConfig &cfg, const SrsConfig &srsCfg = {},
             const ScaleSrsConfig &scaleCfg = {});

    /** Install the LLC pinning hook (provided by the System). */
    void setPinHook(PinHook hook) { pinHook_ = std::move(hook); }

    const char *name() const override { return "scale-srs"; }

    std::uint64_t storageBitsPerBank() const override;

  protected:
    void mitigate(std::uint32_t channel, std::uint32_t bank,
                  RowId physRow, Cycle now) override;

  private:
    ScaleSrsConfig scaleCfg_;
    PinHook pinHook_;
};

} // namespace srs

#endif // SRS_MITIGATION_SCALE_SRS_HH
