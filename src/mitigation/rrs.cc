#include "mitigation/rrs.hh"

#include "common/logging.hh"

namespace srs
{

Rrs::Rrs(MemoryController &ctrl, AggressorTracker &tracker,
         const MitigationConfig &cfg, const RrsConfig &rrsCfg)
    : Mitigation(ctrl, tracker, cfg), rrsCfg_(rrsCfg)
{
    // A swap streams two rows out and back: four row transfers
    // (~2.7 us with Table III timings); an unswap-swap doubles it.
    const Cycle transfer =
        ctrl_.timing().rowTransferCycles(ctrl_.org().linesPerRow());
    swapCycles_ = 4 * transfer;
    unswapSwapCycles_ = 8 * transfer;
}

void
Rrs::mitigate(std::uint32_t channel, std::uint32_t bank, RowId physRow,
              Cycle now)
{
    (void)now;
    RowIndirection &r = rit(channel, bank);
    const RowId logical = r.logicalAt(physRow);
    const RowId home = logical;
    const bool alreadySwapped = r.remap(logical) != logical;

    MigrationJob job;
    if (alreadySwapped && rrsCfg_.immediateUnswap) {
        // Unswap the tuple, then swap the aggressor to a new partner.
        r.swapPhysical(physRow, home, epochId_);
        const RowId partner = pickSwapPartner(r, home);
        r.swapPhysical(home, partner, epochId_);

        job.kind = MigrationJob::Kind::UnswapSwap;
        job.duration = unswapSwapCycles_;
        // The aggressor's original slot takes one or two latent
        // activations depending on swap-buffer scheduling (avg 1.5,
        // paper footnote 2).
        const std::uint32_t homeLatent = rng_.nextBool(0.5) ? 1 : 2;
        job.charges.push_back(RowCharge{home, homeLatent});
        job.charges.push_back(RowCharge{physRow, 1});
        job.charges.push_back(RowCharge{partner, 1});
        stats_.inc("unswap_swaps");
    } else {
        // Initial swap (or a chained swap in no-unswap mode).
        const RowId partner = pickSwapPartner(r, physRow);
        r.swapPhysical(physRow, partner, epochId_);

        job.kind = MigrationJob::Kind::Swap;
        job.duration = swapCycles_;
        job.charges.push_back(RowCharge{physRow, 1});
        job.charges.push_back(RowCharge{partner, 1});
        stats_.inc("swaps");
    }
    schedule(channel, bank, std::move(job));

    if (cfg_.ritCapacityPerBank != 0 &&
        r.entries() > cfg_.ritCapacityPerBank) {
        // The CAT never admits more than its provisioned entries; an
        // overflow here means the configuration under-provisioned it.
        stats_.inc("rit_overflows");
        restoreOneStale(channel, bank, now);
    }
}

bool
Rrs::restoreOneStale(std::uint32_t channel, std::uint32_t bank, Cycle now)
{
    (void)now;
    RowIndirection &r = rit(channel, bank);
    const RowId logical = r.findStale(epochId_);
    if (logical == kInvalidRow)
        return false;
    const RowId pos = r.remap(logical);
    SRS_ASSERT(pos != logical, "stale identity mapping");
    r.swapPhysical(pos, logical, epochId_);
    // Restoring re-tags the touched mappings with the current epoch;
    // for a clean tuple both mappings collapse to identity anyway.

    MigrationJob job;
    job.kind = MigrationJob::Kind::PlaceBack;
    job.duration = swapCycles_;
    job.charges.push_back(RowCharge{pos, 1});
    job.charges.push_back(RowCharge{logical, 1});
    schedule(channel, bank, std::move(job));
    stats_.inc("lazy_restores");
    return true;
}

void
Rrs::lazyStep(Cycle now)
{
    const auto &org = ctrl_.org();
    const std::uint32_t banksPerChannel =
        org.ranksPerChannel * org.banksPerRank;
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            if (restoreOneStale(ch, b, now))
                return;
        }
    }
    nextLazyAt_ = kNoCycle; // nothing stale left this epoch
}

void
Rrs::onEpochEnd(Cycle now, Cycle epochLen)
{
    Mitigation::onEpochEnd(now, epochLen);
    if (rrsCfg_.immediateUnswap)
        return;
    // No-unswap mode: the swap chains must be unravelled *now*; the
    // resulting burst of restores is the latency spike of Figure 4.
    const auto &org = ctrl_.org();
    const std::uint32_t banksPerChannel =
        org.ranksPerChannel * org.banksPerRank;
    std::uint64_t restored = 0;
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            while (restoreOneStale(ch, b, now))
                ++restored;
        }
    }
    stats_.inc("burst_restores", restored);
    nextLazyAt_ = kNoCycle;
}

} // namespace srs
