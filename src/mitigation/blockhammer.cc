#include "mitigation/blockhammer.hh"

#include <cmath>

#include "common/logging.hh"

namespace srs
{

BlockHammer::BlockHammer(MemoryController &ctrl,
                         AggressorTracker &tracker,
                         const MitigationConfig &cfg,
                         const BlockHammerConfig &bhCfg)
    : Mitigation(ctrl, tracker, cfg), bhCfg_(bhCfg),
      banksPerChannel_(ctrl.org().ranksPerChannel *
                       ctrl.org().banksPerRank)
{
    if (bhCfg_.blacklistFraction <= 0.0 ||
        bhCfg_.blacklistFraction >= 1.0) {
        fatal("blockhammer: blacklist fraction must be in (0, 1)");
    }
    if (bhCfg_.windowsPerEpoch == 0)
        fatal("blockhammer: need at least one window per epoch");
    if (bhCfg_.safetyFactor <= 0.0 || bhCfg_.safetyFactor > 1.0)
        fatal("blockhammer: safety factor must be in (0, 1]");
    nbl_ = static_cast<std::uint32_t>(
        bhCfg_.blacklistFraction * cfg_.trh);
    SRS_ASSERT(nbl_ > 0 && nbl_ < cfg_.trh, "bad blacklist threshold");

    const std::uint32_t banks =
        ctrl_.org().channels * banksPerChannel_;
    filters_.reserve(banks);
    for (std::uint32_t i = 0; i < banks; ++i)
        filters_.emplace_back(bhCfg_.bloom, cfg_.seed + i);
    nextAllowed_.resize(banks);

    // Until the first epoch boundary reports the real epoch length,
    // derive the 64 ms refresh window from tREFI (8192 refreshes).
    computeSpacing(ctrl_.timing().tREFI * 8192);
    nextRotateAt_ = windowLen_;
}

void
BlockHammer::computeSpacing(Cycle epochLen)
{
    windowLen_ = std::max<Cycle>(1, epochLen / bhCfg_.windowsPerEpoch);
    // A blacklisted row has at most T_RH - N_BL activations left in
    // the window; spacing them evenly keeps it under T_RH.
    const double budget =
        bhCfg_.safetyFactor * static_cast<double>(cfg_.trh - nbl_);
    spacing_ = std::max<Cycle>(
        1, static_cast<Cycle>(static_cast<double>(windowLen_) /
                              budget));
    stats_.set("throttle_spacing_cycles", spacing_);
}

std::uint32_t
BlockHammer::flatIndex(std::uint32_t channel, std::uint32_t bank) const
{
    const std::uint32_t idx = channel * banksPerChannel_ + bank;
    SRS_ASSERT(idx < filters_.size(), "bank index out of range");
    return idx;
}

RowId
BlockHammer::remapRow(std::uint32_t, std::uint32_t, RowId logical)
{
    return logical;
}

void
BlockHammer::onActivate(std::uint32_t channel, std::uint32_t bank,
                        RowId physRow, Cycle now)
{
    const std::uint32_t idx = flatIndex(channel, bank);
    const std::uint32_t est = filters_[idx].insert(physRow);
    if (est < nbl_)
        return;
    auto [it, fresh] =
        nextAllowed_[idx].insert_or_assign(physRow, now + spacing_);
    (void)it;
    if (fresh)
        stats_.inc("rows_blacklisted");
    stats_.inc("throttle_stamps");
}

Cycle
BlockHammer::actAllowedAt(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now)
{
    const std::uint32_t idx = flatIndex(channel, bank);
    const auto it = nextAllowed_[idx].find(physRow);
    if (it == nextAllowed_[idx].end())
        return 0;
    if (it->second <= now) {
        nextAllowed_[idx].erase(it);
        return 0;
    }
    stats_.inc("throttled_acts");
    return it->second;
}

void
BlockHammer::tick(Cycle now)
{
    Mitigation::tick(now);
    if (now < nextRotateAt_)
        return;
    nextRotateAt_ += windowLen_;
    for (auto &filter : filters_)
        filter.rotate();
    // Drop expired throttle stamps so the maps stay small.
    for (auto &bank : nextAllowed_) {
        for (auto it = bank.begin(); it != bank.end();) {
            if (it->second <= now)
                it = bank.erase(it);
            else
                ++it;
        }
    }
    stats_.inc("filter_rotations");
}

void
BlockHammer::onEpochEnd(Cycle now, Cycle epochLen)
{
    Mitigation::onEpochEnd(now, epochLen);
    computeSpacing(epochLen);
    nextRotateAt_ = now + windowLen_;
}

std::uint64_t
BlockHammer::storageBitsPerBank() const
{
    // Dual counting Bloom filters plus a small row-blocker buffer
    // (blacklist stamps); no RIT, no place-back storage.
    const std::uint64_t blockerBits = 1024ULL * 8;
    return filters_.empty()
        ? blockerBits
        : filters_[0].storageBits() + blockerBits;
}

std::size_t
BlockHammer::blacklistedRows(std::uint32_t channel,
                             std::uint32_t bank) const
{
    return nextAllowed_[flatIndex(channel, bank)].size();
}

std::uint32_t
BlockHammer::estimateOf(std::uint32_t channel, std::uint32_t bank,
                        RowId physRow) const
{
    return filters_[flatIndex(channel, bank)].estimate(physRow);
}

} // namespace srs
