/**
 * @file
 * PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA
 * 2014), the classic victim-focused mitigation (paper Section II-E).
 *
 * On every activation, with probability p the rows within the blast
 * radius of the aggressor are refreshed.  Implemented here as the
 * contrast case for the paper's motivation: the mitigative refreshes
 * themselves activate the victim rows, so a distance-1 victim row
 * accumulates activations proportional to the aggressor's — the
 * lever the half-double attack (Section II-E) uses to flip bits at
 * distance 2.  The `VfmExposure` probe in the tests demonstrates
 * exactly that accumulation, which aggressor-focused row swaps avoid
 * by construction.
 */

#ifndef SRS_MITIGATION_PARA_HH
#define SRS_MITIGATION_PARA_HH

#include "mitigation/mitigation.hh"

namespace srs
{

/** PARA knobs. */
struct ParaConfig
{
    /** Refresh probability per activation (typical: 0.001-0.01). */
    double refreshProbability = 0.005;
    /** Victim rows refreshed on each side of the aggressor. */
    std::uint32_t blastRadius = 1;
};

/** Probabilistic victim-refresh mitigation. */
class Para : public Mitigation
{
  public:
    Para(MemoryController &ctrl, AggressorTracker &tracker,
         const MitigationConfig &cfg, const ParaConfig &paraCfg = {});

    /**
     * PARA ignores the tracker: every activation independently
     * triggers a neighbor refresh with probability p.
     */
    void onActivate(std::uint32_t channel, std::uint32_t bank,
                    RowId physRow, Cycle now) override;

    const char *name() const override { return "para"; }

    /** PARA keeps no tables; its SRAM cost is one LFSR. */
    std::uint64_t storageBitsPerBank() const override { return 32; }

  protected:
    void mitigate(std::uint32_t channel, std::uint32_t bank,
                  RowId physRow, Cycle now) override;

  private:
    ParaConfig paraCfg_;
    Cycle refreshCycles_;
};

} // namespace srs

#endif // SRS_MITIGATION_PARA_HH
