#include "mitigation/scale_srs.hh"

#include "common/logging.hh"

namespace srs
{

ScaleSrs::ScaleSrs(MemoryController &ctrl, AggressorTracker &tracker,
                   const MitigationConfig &cfg, const SrsConfig &srsCfg,
                   const ScaleSrsConfig &scaleCfg)
    : Srs(ctrl, tracker, cfg, srsCfg), scaleCfg_(scaleCfg)
{
    if (scaleCfg_.outlierSwaps == 0)
        fatal("Scale-SRS outlier threshold must be nonzero");
}

void
ScaleSrs::mitigate(std::uint32_t channel, std::uint32_t bank,
                   RowId physRow, Cycle now)
{
    RowIndirection &r = rit(channel, bank);
    // The hammered logical row (resident of the crossing slot) — this
    // is what the LLC can absorb if the slot turns out to be an
    // outlier.
    const RowId logical = r.logicalAt(physRow);

    // Swap-only mitigation + counter update, as in SRS.
    Srs::mitigate(channel, bank, physRow, now);

    const std::uint32_t banksPerChannel =
        ctrl_.org().ranksPerChannel * ctrl_.org().banksPerRank;
    const auto &file = counters(channel, bank % banksPerChannel);
    const std::uint32_t count = file.countOf(
        physRow, epochId_ % (1u << 19));

    if (count >= scaleCfg_.outlierSwaps * cfg_.ts()) {
        stats_.inc("outliers_detected");
        if (pinHook_ && pinHook_(channel, bank, logical))
            stats_.inc("rows_pinned");
    }
}

std::uint64_t
ScaleSrs::storageBitsPerBank() const
{
    // SRS structures plus the pin-buffer share (entries are per
    // channel; apportion per bank: 66 entries * 35 bits / 16 banks).
    const std::uint64_t banksPerChannel =
        ctrl_.org().ranksPerChannel * ctrl_.org().banksPerRank;
    const std::uint64_t pinBufferBits = 66ULL * 35 / banksPerChannel;
    return Srs::storageBitsPerBank() + pinBufferBits + 19;
}

} // namespace srs
