/**
 * @file
 * AQUA (Saxena et al., MICRO 2022) — quarantine-based aggressor
 * isolation, the second related-work baseline of Section IX-A.
 *
 * Instead of randomizing an aggressor's location (RRS/SRS), AQUA
 * reserves a dedicated quarantine region in each bank and *moves*
 * aggressor rows there when they cross the migration threshold.
 * Quarantine slots are handed out by a sequential cursor; hammering
 * a quarantined row simply moves it to the next slot, so — like SRS
 * — no unswap is ever needed and no latent activations accumulate
 * at the original home.  Quarantined rows are lazily restored after
 * the refresh interval, and a cursor wrap inside one epoch first
 * restores the slot's previous tenant.
 *
 * Relative to Scale-SRS the trade-off is capacity (the quarantine
 * region is carved out of the bank) versus the smaller pointer
 * tables (FPT/RPT) replacing the RIT.
 */

#ifndef SRS_MITIGATION_AQUA_HH
#define SRS_MITIGATION_AQUA_HH

#include <vector>

#include "mitigation/mitigation.hh"

namespace srs
{

/** AQUA-specific knobs. */
struct AquaConfig
{
    /**
     * Quarantine slots per bank; 0 derives 1% of the bank (the AQUA
     * paper's provisioning for T_RH = 4800).
     */
    std::uint32_t quarantineRows = 0;
};

/** The AQUA mitigation. */
class Aqua : public Mitigation
{
  public:
    Aqua(MemoryController &ctrl, AggressorTracker &tracker,
         const MitigationConfig &cfg, const AquaConfig &aquaCfg = {});

    const char *name() const override { return "aqua"; }

    std::uint64_t storageBitsPerBank() const override;

    /** Quarantine slots provisioned per bank. */
    std::uint32_t quarantineRows() const { return quarantineRows_; }

    /** First physical row of the quarantine region. */
    RowId quarantineBase() const { return quarantineBase_; }

    /** @return true when @p phys lies inside the quarantine region. */
    bool inQuarantine(RowId phys) const
    {
        return phys >= quarantineBase_ &&
               phys < quarantineBase_ + quarantineRows_;
    }

    /** Occupied quarantine slots on (channel, bank). */
    std::uint32_t quarantineOccupancy(std::uint32_t channel,
                                      std::uint32_t bank) const;

  protected:
    void mitigate(std::uint32_t channel, std::uint32_t bank,
                  RowId physRow, Cycle now) override;
    void lazyStep(Cycle now) override;

  private:
    struct BankState
    {
        std::uint32_t cursor = 0;  ///< next quarantine slot offset
    };

    /** Restore one stale quarantined row home; @return true if any. */
    bool restoreOne(std::uint32_t channel, std::uint32_t bank,
                    Cycle now);

    /** Move the resident of @p slot home (cursor-wrap eviction). */
    void evictSlot(std::uint32_t channel, std::uint32_t bank,
                   RowId slot, Cycle now);

    BankState &state(std::uint32_t channel, std::uint32_t bank);

    AquaConfig aquaCfg_;
    std::uint32_t quarantineRows_;
    RowId quarantineBase_;
    Cycle moveCycles_;
    std::vector<BankState> states_;
    std::uint32_t banksPerChannel_;
};

} // namespace srs

#endif // SRS_MITIGATION_AQUA_HH
