/**
 * @file
 * Secure Row-Swap (SRS; paper Section IV).
 *
 * Differences from RRS, all reproduced here:
 *  - swap-only indirection (split real/mirrored RIT): a re-mitigated
 *    row is simply swapped again, never unswapped first, so no latent
 *    activations accumulate at its original slot (Eq. 11);
 *  - lazy cross-epoch evictions: stale mappings are placed back via
 *    the per-bank place-back buffer, paced evenly across the epoch;
 *  - per-row swap-tracking counters in reserved DRAM (Section IV-F)
 *    with a 19-bit epoch register, updated before every swap —
 *    the attack-detection substrate that Scale-SRS builds on.
 */

#ifndef SRS_MITIGATION_SRS_HH
#define SRS_MITIGATION_SRS_HH

#include <vector>

#include "mitigation/mitigation.hh"
#include "rowswap/swap_counters.hh"

namespace srs
{

/** SRS-specific knobs. */
struct SrsConfig
{
    /** Flag a potential attack when a row's in-epoch swap-counter
     *  reaches detectMultiple * T_S activations. */
    std::uint32_t detectMultiple = 3;
    /** Model the counter read-modify-write DRAM traffic. */
    bool modelCounterTraffic = true;
};

/** The SRS mitigation. */
class Srs : public Mitigation
{
  public:
    Srs(MemoryController &ctrl, AggressorTracker &tracker,
        const MitigationConfig &cfg, const SrsConfig &srsCfg = {});

    const char *name() const override { return "srs"; }

    /**
     * Epoch boundary; additionally, when the 19-bit epoch register
     * wraps to all-zeros the per-row swap-tracking counters are
     * globally reset (Section IV-F: a 41 us sweep of the 64 counter
     * rows once every 2^19 epochs = ~4.6 hours), preventing stale
     * counters from aliasing into the new epoch-id space.
     */
    void onEpochEnd(Cycle now, Cycle epochLen) override;

    std::uint64_t storageBitsPerBank() const override;

    /** Swap-tracking counter file of one bank (tests/analysis). */
    const SwapTrackingCounters &counters(std::uint32_t channel,
                                         std::uint32_t bank) const;

  protected:
    void mitigate(std::uint32_t channel, std::uint32_t bank,
                  RowId physRow, Cycle now) override;
    void lazyStep(Cycle now) override;

    /**
     * Update the swap-tracking counter for @p physRow and emit the
     * counter-row access traffic.
     * @return the row's post-update in-epoch activation count
     */
    std::uint32_t trackSwap(std::uint32_t channel, std::uint32_t bank,
                            RowId physRow, std::uint32_t latent);

    /** Place one stale row back home; @return true when one existed. */
    bool placeBackOne(std::uint32_t channel, std::uint32_t bank,
                      Cycle now);

    SrsConfig srsCfg_;
    Cycle swapCycles_;
    Cycle counterAccessCycles_;
    std::vector<SwapTrackingCounters> counters_;
};

} // namespace srs

#endif // SRS_MITIGATION_SRS_HH
