#include "mitigation/srs.hh"

#include "common/logging.hh"

namespace srs
{

Srs::Srs(MemoryController &ctrl, AggressorTracker &tracker,
         const MitigationConfig &cfg, const SrsConfig &srsCfg)
    : Mitigation(ctrl, tracker, cfg), srsCfg_(srsCfg)
{
    const Cycle transfer =
        ctrl_.timing().rowTransferCycles(ctrl_.org().linesPerRow());
    swapCycles_ = 4 * transfer;
    // Counter read-modify-write: one activation plus a short burst.
    counterAccessCycles_ = ctrl_.timing().tRC + ctrl_.timing().tCAS +
                           ctrl_.timing().tBL;
    const std::uint32_t banks = ctrl_.org().channels *
        ctrl_.org().ranksPerChannel * ctrl_.org().banksPerRank;
    counters_.reserve(banks);
    for (std::uint32_t i = 0; i < banks; ++i)
        counters_.emplace_back(ctrl_.org().rowsPerBank);
}

const SwapTrackingCounters &
Srs::counters(std::uint32_t channel, std::uint32_t bank) const
{
    const std::uint32_t banksPerChannel =
        ctrl_.org().ranksPerChannel * ctrl_.org().banksPerRank;
    return counters_.at(channel * banksPerChannel + bank);
}

std::uint32_t
Srs::trackSwap(std::uint32_t channel, std::uint32_t bank, RowId physRow,
               std::uint32_t latent)
{
    const std::uint32_t banksPerChannel =
        ctrl_.org().ranksPerChannel * ctrl_.org().banksPerRank;
    SwapTrackingCounters &file =
        counters_[channel * banksPerChannel + bank];
    const std::uint32_t count =
        file.recordSwap(physRow, epochId_ % file.epochIdLimit(),
                        cfg_.ts() + latent);

    if (srsCfg_.modelCounterTraffic) {
        // The counter row holding this row's 32-bit counter lives in
        // the reserved low region and takes one activation per update.
        MigrationJob job;
        job.kind = MigrationJob::Kind::CounterAccess;
        job.duration = counterAccessCycles_;
        const std::uint32_t counterRows =
            file.counterRows(ctrl_.org().rowBytes);
        job.charges.push_back(
            RowCharge{physRow % std::max(1u, counterRows), 1});
        schedule(channel, bank, std::move(job));
    }

    if (count >= srsCfg_.detectMultiple * cfg_.ts())
        stats_.inc("attacks_detected");
    return count;
}

void
Srs::mitigate(std::uint32_t channel, std::uint32_t bank, RowId physRow,
              Cycle now)
{
    (void)now;
    RowIndirection &r = rit(channel, bank);

    // Swap-only: pick a fresh partner; never unswap first.
    const RowId partner = pickSwapPartner(r, physRow);
    r.swapPhysical(physRow, partner, epochId_);

    MigrationJob job;
    job.kind = MigrationJob::Kind::Swap;
    job.duration = swapCycles_;
    job.charges.push_back(RowCharge{physRow, 1});
    job.charges.push_back(RowCharge{partner, 1});
    schedule(channel, bank, std::move(job));
    stats_.inc("swaps");

    trackSwap(channel, bank, physRow, 1);

    if (cfg_.ritCapacityPerBank != 0 &&
        r.entries() > cfg_.ritCapacityPerBank) {
        stats_.inc("rit_overflows");
        placeBackOne(channel, bank, now);
    }
}

bool
Srs::placeBackOne(std::uint32_t channel, std::uint32_t bank, Cycle now)
{
    (void)now;
    RowIndirection &r = rit(channel, bank);
    const RowId logical = r.findStale(epochId_);
    if (logical == kInvalidRow)
        return false;
    const RowId pos = r.remap(logical);
    SRS_ASSERT(pos != logical, "stale identity mapping");
    r.swapPhysical(pos, logical, epochId_);

    // One place-back step: the row goes home through the swap buffer
    // while the displaced resident parks in the place-back buffer
    // (Figure 8); cost-wise it is one two-row movement.
    MigrationJob job;
    job.kind = MigrationJob::Kind::PlaceBack;
    job.duration = swapCycles_;
    job.charges.push_back(RowCharge{pos, 1});
    job.charges.push_back(RowCharge{logical, 1});
    schedule(channel, bank, std::move(job));
    stats_.inc("place_backs");
    return true;
}

void
Srs::onEpochEnd(Cycle now, Cycle epochLen)
{
    Mitigation::onEpochEnd(now, epochLen);
    if (epochId_ != 0)
        return;
    // The on-chip epoch register just showed all 1s and wrapped:
    // sweep every counter row.  Cost: one activation per counter
    // row per bank (~64 rows, ~41 us per the paper), charged as a
    // single long counter-access job.
    const auto &org = ctrl_.org();
    const std::uint32_t banksPerChannel =
        org.ranksPerChannel * org.banksPerRank;
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            SwapTrackingCounters &file =
                counters_[ch * banksPerChannel + b];
            file.resetAll();
            if (!srsCfg_.modelCounterTraffic)
                continue;
            const std::uint32_t rows =
                file.counterRows(org.rowBytes);
            MigrationJob job;
            job.kind = MigrationJob::Kind::CounterAccess;
            job.duration = counterAccessCycles_ * rows;
            for (std::uint32_t r = 0; r < rows; ++r)
                job.charges.push_back(RowCharge{r, 1});
            schedule(ch, b, std::move(job));
        }
    }
    stats_.inc("counter_sweeps");
}

void
Srs::lazyStep(Cycle now)
{
    const auto &org = ctrl_.org();
    const std::uint32_t banksPerChannel =
        org.ranksPerChannel * org.banksPerRank;
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel; ++b) {
            if (placeBackOne(ch, b, now))
                return;
        }
    }
    nextLazyAt_ = kNoCycle;
}

std::uint64_t
Srs::storageBitsPerBank() const
{
    // Split RIT (real + mirrored) sized like the RRS tuple store,
    // plus the 8KB place-back buffer; the swap-tracking counters live
    // in DRAM, not SRAM.
    const std::uint64_t placeBackBits = 8ULL * 1024 * 8;
    return Mitigation::storageBitsPerBank() + placeBackBits;
}

} // namespace srs
