#include "mitigation/mitigation.hh"

#include "common/logging.hh"

namespace srs
{

Mitigation::Mitigation(MemoryController &ctrl, AggressorTracker &tracker,
                       const MitigationConfig &cfg)
    : ctrl_(ctrl), tracker_(tracker), cfg_(cfg), rng_(cfg.seed),
      banksPerChannel_(ctrl.org().ranksPerChannel *
                       ctrl.org().banksPerRank)
{
    if (cfg_.swapRate == 0 || cfg_.trh == 0)
        fatal("mitigation needs nonzero T_RH and swap rate");
    if (cfg_.ts() == 0)
        fatal("swap rate exceeds T_RH");
    const std::uint32_t banks = ctrl_.org().channels * banksPerChannel_;
    rits_.reserve(banks);
    for (std::uint32_t i = 0; i < banks; ++i)
        rits_.emplace_back(ctrl_.org().rowsPerBank);
}

RowIndirection &
Mitigation::rit(std::uint32_t channel, std::uint32_t bank)
{
    const std::uint32_t idx = channel * banksPerChannel_ + bank;
    SRS_ASSERT(idx < rits_.size(), "bank index out of range");
    return rits_[idx];
}

const RowIndirection &
Mitigation::indirection(std::uint32_t channel, std::uint32_t bank) const
{
    const std::uint32_t idx = channel * banksPerChannel_ + bank;
    SRS_ASSERT(idx < rits_.size(), "bank index out of range");
    return rits_[idx];
}

RowId
Mitigation::remapRow(std::uint32_t channel, std::uint32_t bank,
                     RowId logical)
{
    return rit(channel, bank).remap(logical);
}

void
Mitigation::onActivate(std::uint32_t channel, std::uint32_t bank,
                       RowId physRow, Cycle now)
{
    if (tracker_.recordActivation(channel, bank, physRow, now)) {
        stats_.inc("mitigations");
        mitigate(channel, bank, physRow, now);
    }
}

RowId
Mitigation::pickSwapPartner(const RowIndirection &r, RowId avoid)
{
    const std::uint32_t rows = r.rowsPerBank();
    SRS_ASSERT(cfg_.reservedLowRows + 2 < rows, "bank too small");
    for (int attempts = 0; attempts < 64; ++attempts) {
        const RowId cand = static_cast<RowId>(
            cfg_.reservedLowRows +
            rng_.nextBelow(rows - cfg_.reservedLowRows));
        if (cand != avoid && !r.displaced(cand) &&
            r.remap(cand) == cand) {
            return cand;
        }
    }
    // Under extreme RIT pressure fall back to any row != avoid.
    stats_.inc("partner_fallbacks");
    RowId cand = avoid;
    while (cand == avoid) {
        cand = static_cast<RowId>(
            cfg_.reservedLowRows +
            rng_.nextBelow(rows - cfg_.reservedLowRows));
    }
    return cand;
}

void
Mitigation::schedule(std::uint32_t channel, std::uint32_t bank,
                     MigrationJob job)
{
    ctrl_.scheduleMigration(channel, bank, std::move(job));
}

void
Mitigation::tick(Cycle now)
{
    if (nextLazyAt_ == kNoCycle || now < nextLazyAt_)
        return;
    nextLazyAt_ += lazyInterval_;
    lazyStep(now);
}

void
Mitigation::lazyStep(Cycle now)
{
    (void)now;
}

void
Mitigation::onEpochEnd(Cycle now, Cycle epochLen)
{
    tracker_.resetEpoch();
    // 19-bit epoch register semantics (Section IV-F).
    epochId_ = (epochId_ + 1) & ((1u << 19) - 1);

    // Arm the lazy-eviction pacing for the new epoch: spread the
    // stale-entry cleanup evenly across the whole epoch.
    std::uint64_t stale = 0;
    const auto &org = ctrl_.org();
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel_; ++b)
            stale += rit(ch, b).staleCount(epochId_);
    }
    if (stale == 0) {
        nextLazyAt_ = kNoCycle;
        return;
    }
    lazyInterval_ = std::max<Cycle>(1, epochLen / stale);
    nextLazyAt_ = now + lazyInterval_;
    stats_.set("stale_entries_last_epoch", stale);
}

std::uint64_t
Mitigation::storageBitsPerBank() const
{
    // RIT entries: two directions (tuples or real+mirrored halves),
    // each mapping two row ids plus valid/lock bits.
    const std::uint64_t rowBits = 17;
    const std::uint64_t entryBits = 2 * rowBits + 2;
    const std::uint64_t cap = cfg_.ritCapacityPerBank != 0
        ? cfg_.ritCapacityPerBank
        : 0;
    return 2 * cap * entryBits;
}

} // namespace srs
