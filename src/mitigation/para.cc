#include "mitigation/para.hh"

#include "common/logging.hh"

namespace srs
{

Para::Para(MemoryController &ctrl, AggressorTracker &tracker,
           const MitigationConfig &cfg, const ParaConfig &paraCfg)
    : Mitigation(ctrl, tracker, cfg), paraCfg_(paraCfg)
{
    if (paraCfg_.refreshProbability <= 0.0 ||
        paraCfg_.refreshProbability > 1.0) {
        fatal("PARA refresh probability outside (0, 1]");
    }
    // A victim refresh is one ACT + restore per neighbor row.
    refreshCycles_ = ctrl_.timing().tRC;
}

void
Para::onActivate(std::uint32_t channel, std::uint32_t bank,
                 RowId physRow, Cycle now)
{
    // No tracker threshold: sample the refresh lottery per ACT.
    if (rng_.nextBool(paraCfg_.refreshProbability)) {
        stats_.inc("mitigations");
        mitigate(channel, bank, physRow, now);
    }
}

void
Para::mitigate(std::uint32_t channel, std::uint32_t bank, RowId physRow,
               Cycle now)
{
    (void)now;
    const std::uint32_t rows = ctrl_.org().rowsPerBank;

    // Refresh every row within the blast radius.  Each refresh is an
    // activation of the *victim* row — this is precisely the extra
    // activation the half-double attack feeds on.
    MigrationJob job;
    job.kind = MigrationJob::Kind::CounterAccess;
    job.duration = 0;
    for (std::uint32_t d = 1; d <= paraCfg_.blastRadius; ++d) {
        if (physRow >= d)
            job.charges.push_back(RowCharge{physRow - d, 1});
        if (physRow + d < rows)
            job.charges.push_back(RowCharge{physRow + d, 1});
    }
    const std::uint64_t victims = job.charges.size();
    job.duration = refreshCycles_ * victims;
    schedule(channel, bank, std::move(job));
    stats_.inc("victim_refreshes", victims);
}

} // namespace srs
