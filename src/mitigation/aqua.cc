#include "mitigation/aqua.hh"

#include "common/logging.hh"

namespace srs
{

Aqua::Aqua(MemoryController &ctrl, AggressorTracker &tracker,
           const MitigationConfig &cfg, const AquaConfig &aquaCfg)
    : Mitigation(ctrl, tracker, cfg), aquaCfg_(aquaCfg),
      banksPerChannel_(ctrl.org().ranksPerChannel *
                       ctrl.org().banksPerRank)
{
    const std::uint32_t rows = ctrl_.org().rowsPerBank;
    quarantineRows_ = aquaCfg_.quarantineRows != 0
        ? aquaCfg_.quarantineRows
        : rows / 100;
    if (quarantineRows_ < 2 || quarantineRows_ >= rows / 2)
        fatal("aqua: quarantine must cover [2, 50%) of the bank");
    quarantineBase_ = rows - quarantineRows_;

    // An AQUA migration moves one row one way: two row transfers
    // (read out, write into the quarantine slot).
    moveCycles_ = 2 * ctrl_.timing().rowTransferCycles(
        ctrl_.org().linesPerRow());

    states_.resize(ctrl_.org().channels * banksPerChannel_);
}

Aqua::BankState &
Aqua::state(std::uint32_t channel, std::uint32_t bank)
{
    const std::uint32_t idx = channel * banksPerChannel_ + bank;
    SRS_ASSERT(idx < states_.size(), "bank index out of range");
    return states_[idx];
}

void
Aqua::evictSlot(std::uint32_t channel, std::uint32_t bank, RowId slot,
                Cycle now)
{
    (void)now;
    RowIndirection &r = rit(channel, bank);
    if (!r.displaced(slot))
        return;
    // Move the tenant towards its home slot.  When the home holds
    // another displaced row the swap parks that row here instead;
    // repeated lazy steps unwind such chains exactly like the SRS
    // place-back sequence of Figure 8.
    const RowId tenant = r.logicalAt(slot);
    r.swapPhysical(slot, tenant, epochId_);

    MigrationJob job;
    job.kind = MigrationJob::Kind::PlaceBack;
    job.duration = moveCycles_;
    job.charges.push_back(RowCharge{slot, 1});
    job.charges.push_back(RowCharge{tenant, 1});
    schedule(channel, bank, std::move(job));
    stats_.inc("quarantine_evictions");
}

void
Aqua::mitigate(std::uint32_t channel, std::uint32_t bank, RowId physRow,
               Cycle now)
{
    if (inQuarantine(physRow) &&
        !rit(channel, bank).displaced(physRow)) {
        // A quarantine slot with no tenant has no victim rows worth
        // protecting (the region is isolated by design).
        stats_.inc("quarantine_self_acts");
        return;
    }

    BankState &st = state(channel, bank);
    const RowId slot = quarantineBase_ + st.cursor;
    st.cursor = (st.cursor + 1) % quarantineRows_;

    if (slot == physRow) {
        // The cursor handed us the aggressor's own slot (it is a
        // quarantined row being re-hammered); take the next one.
        return mitigate(channel, bank, physRow, now);
    }

    // Wrapping inside an epoch reuses a slot: restore its tenant
    // first so the move below lands in a free slot.
    RowIndirection &r = rit(channel, bank);
    if (r.displaced(slot)) {
        evictSlot(channel, bank, slot, now);
        stats_.inc("quarantine_wraps");
    }

    r.swapPhysical(physRow, slot, epochId_);

    MigrationJob job;
    job.kind = MigrationJob::Kind::Swap;
    job.duration = moveCycles_;
    // One-way move: one ACT at the source, one at the destination.
    // Like SRS, re-migrations leave the original home untouched.
    job.charges.push_back(RowCharge{physRow, 1});
    job.charges.push_back(RowCharge{slot, 1});
    schedule(channel, bank, std::move(job));
    stats_.inc("quarantine_moves");
}

bool
Aqua::restoreOne(std::uint32_t channel, std::uint32_t bank, Cycle now)
{
    RowIndirection &r = rit(channel, bank);
    const RowId logical = r.findStale(epochId_);
    if (logical == kInvalidRow)
        return false;
    const RowId pos = r.remap(logical);
    SRS_ASSERT(pos != logical, "stale identity mapping");
    evictSlot(channel, bank, pos, now);
    return true;
}

void
Aqua::lazyStep(Cycle now)
{
    const auto &org = ctrl_.org();
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < banksPerChannel_; ++b) {
            if (restoreOne(ch, b, now))
                return;
        }
    }
    nextLazyAt_ = kNoCycle;
}

std::uint64_t
Aqua::storageBitsPerBank() const
{
    // Forward and reverse pointer tables (FPT/RPT): one entry per
    // quarantine slot, each holding a row id plus a valid bit.
    const std::uint64_t rowBits = 17;
    return 2ULL * quarantineRows_ * (rowBits + 1);
}

std::uint32_t
Aqua::quarantineOccupancy(std::uint32_t channel,
                          std::uint32_t bank) const
{
    const RowIndirection &r = indirection(channel, bank);
    std::uint32_t occupied = 0;
    for (std::uint32_t off = 0; off < quarantineRows_; ++off)
        occupied += r.displaced(quarantineBase_ + off) ? 1 : 0;
    return occupied;
}

} // namespace srs
