/**
 * @file
 * Randomized Row-Swap (RRS; Saileshwar et al., ASPLOS 2022), the
 * baseline defense the paper breaks (Sections II-F and III).
 *
 * Behaviour reproduced here:
 *  - first T_S crossing of a row: swap with a random partner
 *    (one latent activation at the aggressor's original slot);
 *  - subsequent crossings: *unswap-swap* — restore the tuple, then
 *    re-swap to a fresh partner (up to two latent activations at the
 *    original slot per round; 1.5 on average with the swap-buffer
 *    optimization, footnote 2);
 *  - optional no-unswap mode (Figure 4 ablation): chained swaps with
 *    a bulk restore burst at the epoch boundary;
 *  - stale tuples from the previous epoch are unswapped lazily.
 */

#ifndef SRS_MITIGATION_RRS_HH
#define SRS_MITIGATION_RRS_HH

#include "mitigation/mitigation.hh"

namespace srs
{

/** RRS-specific knobs. */
struct RrsConfig
{
    /** Unswap before every re-swap (the shipping RRS behaviour). */
    bool immediateUnswap = true;
};

/** The RRS mitigation. */
class Rrs : public Mitigation
{
  public:
    Rrs(MemoryController &ctrl, AggressorTracker &tracker,
        const MitigationConfig &cfg, const RrsConfig &rrsCfg = {});

    const char *name() const override
    {
        return rrsCfg_.immediateUnswap ? "rrs" : "rrs-no-unswap";
    }

    void onEpochEnd(Cycle now, Cycle epochLen) override;

  protected:
    void mitigate(std::uint32_t channel, std::uint32_t bank,
                  RowId physRow, Cycle now) override;
    void lazyStep(Cycle now) override;

  private:
    /** Restore one stale tuple on (channel, bank); @return done. */
    bool restoreOneStale(std::uint32_t channel, std::uint32_t bank,
                         Cycle now);

    RrsConfig rrsCfg_;
    Cycle swapCycles_;
    Cycle unswapSwapCycles_;
};

} // namespace srs

#endif // SRS_MITIGATION_RRS_HH
