/**
 * @file
 * Base class for row-swap Row Hammer mitigations.
 *
 * A Mitigation plugs into the memory controller as its
 * MemCtrlListener: it remaps logical rows through per-bank
 * RowIndirection state and feeds demand activations to an
 * AggressorTracker.  When the tracker flags a T_S crossing the
 * concrete mitigation (RRS / SRS / Scale-SRS) performs its swap
 * choreography by scheduling migration jobs (which occupy banks and
 * deposit the latent activations that the paper's security analysis
 * revolves around).
 */

#ifndef SRS_MITIGATION_MITIGATION_HH
#define SRS_MITIGATION_MITIGATION_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memctrl/controller.hh"
#include "rowswap/indirection.hh"
#include "tracker/tracker.hh"

namespace srs
{

/** Shared mitigation configuration. */
struct MitigationConfig
{
    std::uint32_t trh = 4800;     ///< Row Hammer threshold T_RH
    std::uint32_t swapRate = 6;   ///< T_RH / T_S
    std::uint64_t seed = 0x5125ULL;

    /** RIT capacity in mappings per bank (0 = unbounded). */
    std::uint64_t ritCapacityPerBank = 0;

    /** Physical rows [0, reservedLowRows) are never swap partners
     *  (they hold the in-DRAM counter structures). */
    std::uint32_t reservedLowRows = 64;

    std::uint32_t ts() const { return trh / swapRate; }
};

/** Abstract row-swap mitigation. */
class Mitigation : public MemCtrlListener
{
  public:
    Mitigation(MemoryController &ctrl, AggressorTracker &tracker,
               const MitigationConfig &cfg);
    ~Mitigation() override = default;

    // MemCtrlListener
    RowId remapRow(std::uint32_t channel, std::uint32_t bank,
                   RowId logical) override;
    void onActivate(std::uint32_t channel, std::uint32_t bank,
                    RowId physRow, Cycle now) override;

    /** Pace lazy background work; call every controller tick. */
    virtual void tick(Cycle now);

    /**
     * Earliest cycle (> @p now) at which tick() is not provably a
     * no-op.  The base implementation exposes the lazy-eviction
     * deadline; mitigations with additional self-timed work
     * (BlockHammer's filter rotation) override and fold theirs in.
     * @return kNoCycle when no future tick can have any effect
     */
    virtual Cycle nextEventAt(Cycle now) const
    {
        if (nextLazyAt_ == kNoCycle)
            return kNoCycle;
        return std::max(nextLazyAt_, now + 1);
    }

    /**
     * Refresh-epoch boundary: unlock RIT entries, reset the tracker,
     * arm lazy eviction for the epoch that just ended.
     */
    virtual void onEpochEnd(Cycle now, Cycle epochLen);

    /** Current epoch id (19-bit register semantics). */
    std::uint32_t epochId() const { return epochId_; }

    virtual const char *name() const = 0;

    /** SRAM bits per bank (RIT and friends) for storage reports. */
    virtual std::uint64_t storageBitsPerBank() const;

    const StatSet &stats() const { return stats_; }
    const MitigationConfig &config() const { return cfg_; }

    /** Per-bank indirection state (for tests and security probes). */
    const RowIndirection &indirection(std::uint32_t channel,
                                      std::uint32_t bank) const;

  protected:
    /** React to a T_S crossing at physical row @p physRow. */
    virtual void mitigate(std::uint32_t channel, std::uint32_t bank,
                          RowId physRow, Cycle now) = 0;

    /** One lazy-eviction step (place-back / RIT cleanup). */
    virtual void lazyStep(Cycle now);

    RowIndirection &rit(std::uint32_t channel, std::uint32_t bank);

    /** Pick a random un-displaced physical row in the bank. */
    RowId pickSwapPartner(const RowIndirection &r, RowId avoid);

    /** Queue a migration job on (channel, bank). */
    void schedule(std::uint32_t channel, std::uint32_t bank,
                  MigrationJob job);

    MemoryController &ctrl_;
    AggressorTracker &tracker_;
    MitigationConfig cfg_;
    Rng rng_;
    StatSet stats_;

    std::uint32_t epochId_ = 0;
    Cycle nextLazyAt_ = kNoCycle;
    Cycle lazyInterval_ = 0;

  private:
    std::vector<RowIndirection> rits_;  ///< channel-major per bank
    std::uint32_t banksPerChannel_;
};

/** Baseline: no protection (identity mapping, no swaps). */
class NoMitigation : public Mitigation
{
  public:
    NoMitigation(MemoryController &ctrl, AggressorTracker &tracker,
                 const MitigationConfig &cfg)
        : Mitigation(ctrl, tracker, cfg)
    {}

    const char *name() const override { return "baseline"; }
    std::uint64_t storageBitsPerBank() const override { return 0; }

  protected:
    void mitigate(std::uint32_t, std::uint32_t, RowId, Cycle) override {}
};

} // namespace srs

#endif // SRS_MITIGATION_MITIGATION_HH
