#include "rowswap/swap_counters.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

SwapTrackingCounters::SwapTrackingCounters(std::uint32_t rowsPerBank,
                                           std::uint32_t epochBits,
                                           std::uint32_t countBits)
    : rowsPerBank_(rowsPerBank), epochBits_(epochBits),
      countBits_(countBits)
{
    if (epochBits_ + countBits_ > 32)
        fatal("swap counter fields exceed the 32-bit counter word");
}

std::uint32_t
SwapTrackingCounters::recordSwap(RowId row, std::uint32_t epochId,
                                 std::uint32_t actDelta)
{
    SRS_ASSERT(row < rowsPerBank_, "row out of range");
    SRS_ASSERT(epochId < epochIdLimit(), "epoch id beyond field width");
    Counter &c = counters_[row];
    if (c.epochId != epochId) {
        c.epochId = epochId;
        c.count = 0;
        stats_.inc("epoch_resets");
    }
    const std::uint32_t maxCount = (1u << countBits_) - 1;
    c.count = c.count + actDelta > maxCount ? maxCount
                                            : c.count + actDelta;
    stats_.inc("updates");
    return c.count;
}

std::uint32_t
SwapTrackingCounters::countOf(RowId row, std::uint32_t epochId) const
{
    const auto it = counters_.find(row);
    if (it == counters_.end() || it->second.epochId != epochId)
        return 0;
    return it->second.count;
}

void
SwapTrackingCounters::resetAll()
{
    counters_.clear();
    stats_.inc("global_resets");
}

std::uint64_t
SwapTrackingCounters::reservedBytesPerBank() const
{
    return static_cast<std::uint64_t>(rowsPerBank_) * 4;
}

std::uint32_t
SwapTrackingCounters::counterRows(std::uint32_t rowBytes) const
{
    return static_cast<std::uint32_t>(
        ceilDiv(reservedBytesPerBank(), rowBytes));
}

} // namespace srs
