#include "rowswap/compact_rit.hh"

#include "common/logging.hh"

namespace srs
{

CompactRit::CompactRit(std::uint32_t rowsPerBank,
                       const CatSizing &sizing, std::uint64_t seed)
    : rowsPerBank_(rowsPerBank), table_(sizing, seed)
{
    SRS_ASSERT(rowsPerBank_ > 1, "bank needs at least two rows");
}

RowId
CompactRit::remap(RowId logical) const
{
    const auto phys = table_.lookup(logical);
    return phys.has_value() ? *phys : logical;
}

RowId
CompactRit::logicalAt(RowId phys) const
{
    // Walk the permutation cycle through @p phys.  Starting at the
    // slot's home row, each forward probe moves one hop around the
    // cycle; the predecessor of @p phys is its resident.  A home
    // (identity) slot terminates on the first probe.
    ++walks_;
    RowId cur = phys;
    std::uint64_t hops = 0;
    do {
        ++hops;
        SRS_ASSERT(hops <= rowsPerBank_, "broken permutation cycle");
        const auto next = table_.lookup(cur);
        if (!next.has_value()) {
            // cur is at home; the walk only reaches an undisplaced
            // row when it is the starting slot itself.
            SRS_ASSERT(cur == phys, "cycle escaped the permutation");
            break;
        }
        if (*next == phys)
            break;
        cur = *next;
    } while (true);
    walkProbes_ += hops;
    if (hops > maxWalk_)
        maxWalk_ = hops;
    return cur;
}

bool
CompactRit::displaced(RowId phys) const
{
    // Slot P is occupied by a foreign row exactly when logical row P
    // is itself displaced (permutation fixed-point argument).
    return table_.lookup(phys).has_value();
}

bool
CompactRit::setMapping(RowId logical, RowId phys)
{
    if (logical == phys) {
        table_.erase(logical);
        return true;
    }
    return table_.insert(logical, phys);
}

bool
CompactRit::swapPhysical(RowId p, RowId q)
{
    SRS_ASSERT(p < rowsPerBank_ && q < rowsPerBank_, "row out of range");
    SRS_ASSERT(p != q, "self-swap");
    const RowId lp = logicalAt(p);
    const RowId lq = logicalAt(q);
    const RowId oldLp = remap(lp);
    if (!setMapping(lp, q)) {
        ++rejects_;
        return false;
    }
    if (!setMapping(lq, p)) {
        // Roll back the first mapping so the permutation stays
        // consistent; the caller must pick a different partner.
        setMapping(lp, oldLp);
        ++rejects_;
        return false;
    }
    return true;
}

void
CompactRit::unlockAll()
{
    table_.unlockAll();
}

std::uint64_t
CompactRit::storageBits(std::uint32_t rowBits) const
{
    return table_.capacity() * (2ULL * rowBits + 7);
}

} // namespace srs
