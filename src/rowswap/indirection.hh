/**
 * @file
 * Per-bank row indirection state — the functional core of the Row
 * Indirection Table.
 *
 * Conceptually the bank's rows form a permutation: logical row L
 * (the OS-visible row whose id equals its home physical slot) lives
 * at physical slot remap(L).  Swaps compose transpositions into this
 * permutation; RRS's immediate unswaps keep it a product of disjoint
 * transpositions (fixed tuple pairs), while SRS's swap-only policy
 * lets longer cycles form, resolved lazily by place-back steps.
 *
 * Entries carry the epoch in which they were last touched so lazy
 * eviction (SRS place-back, RRS RIT cleanup) can target stale
 * mappings only.
 */

#ifndef SRS_ROWSWAP_INDIRECTION_HH
#define SRS_ROWSWAP_INDIRECTION_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace srs
{

/** Exact row-permutation tracker with epoch tags. */
class RowIndirection
{
  public:
    explicit RowIndirection(std::uint32_t rowsPerBank);

    /** Current physical slot of logical row @p logical. */
    RowId remap(RowId logical) const;

    /** Logical row currently stored in physical slot @p phys. */
    RowId logicalAt(RowId phys) const;

    /** @return true when @p phys holds a displaced (non-home) row. */
    bool displaced(RowId phys) const;

    /**
     * Exchange the contents of physical slots @p p and @p q, tagging
     * the touched mappings with @p epoch.
     */
    void swapPhysical(RowId p, RowId q, std::uint32_t epoch);

    /** Non-identity mappings (RIT occupancy, one per displaced row). */
    std::uint64_t entries() const { return log2phys_.size(); }

    /** Epoch tag of logical row's mapping (nullopt when identity). */
    std::optional<std::uint32_t> epochOf(RowId logical) const;

    /**
     * Find a displaced logical row whose mapping is older than
     * @p epoch (a lazy-eviction candidate).
     * @return kInvalidRow when none exist
     */
    RowId findStale(std::uint32_t epoch) const;

    /** Count mappings older than @p epoch. */
    std::uint64_t staleCount(std::uint32_t epoch) const;

    std::uint32_t rowsPerBank() const { return rowsPerBank_; }

  private:
    void setMapping(RowId logical, RowId phys, std::uint32_t epoch);

    std::uint32_t rowsPerBank_;
    std::unordered_map<RowId, RowId> log2phys_;
    std::unordered_map<RowId, RowId> phys2log_;
    std::unordered_map<RowId, std::uint32_t> epochTag_;
};

} // namespace srs

#endif // SRS_ROWSWAP_INDIRECTION_HH
