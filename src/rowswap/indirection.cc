#include "rowswap/indirection.hh"

#include "common/logging.hh"

namespace srs
{

RowIndirection::RowIndirection(std::uint32_t rowsPerBank)
    : rowsPerBank_(rowsPerBank)
{
    SRS_ASSERT(rowsPerBank_ > 1, "bank needs at least two rows");
}

RowId
RowIndirection::remap(RowId logical) const
{
    const auto it = log2phys_.find(logical);
    return it == log2phys_.end() ? logical : it->second;
}

RowId
RowIndirection::logicalAt(RowId phys) const
{
    const auto it = phys2log_.find(phys);
    return it == phys2log_.end() ? phys : it->second;
}

bool
RowIndirection::displaced(RowId phys) const
{
    return phys2log_.find(phys) != phys2log_.end();
}

void
RowIndirection::setMapping(RowId logical, RowId phys, std::uint32_t epoch)
{
    if (logical == phys) {
        log2phys_.erase(logical);
        epochTag_.erase(logical);
        // phys2log for this slot is rewritten by the caller.
        phys2log_.erase(phys);
        return;
    }
    log2phys_[logical] = phys;
    phys2log_[phys] = logical;
    epochTag_[logical] = epoch;
}

void
RowIndirection::swapPhysical(RowId p, RowId q, std::uint32_t epoch)
{
    SRS_ASSERT(p < rowsPerBank_ && q < rowsPerBank_, "row out of range");
    SRS_ASSERT(p != q, "self-swap");
    const RowId lp = logicalAt(p);
    const RowId lq = logicalAt(q);
    // Clear both slots' reverse entries first so setMapping's identity
    // erasure cannot clobber the other slot's fresh state.
    phys2log_.erase(p);
    phys2log_.erase(q);
    setMapping(lp, q, epoch);
    setMapping(lq, p, epoch);
}

std::optional<std::uint32_t>
RowIndirection::epochOf(RowId logical) const
{
    const auto it = epochTag_.find(logical);
    if (it == epochTag_.end())
        return std::nullopt;
    return it->second;
}

RowId
RowIndirection::findStale(std::uint32_t epoch) const
{
    for (const auto &[logical, tag] : epochTag_) {
        if (tag < epoch)
            return logical;
    }
    return kInvalidRow;
}

std::uint64_t
RowIndirection::staleCount(std::uint32_t epoch) const
{
    std::uint64_t n = 0;
    for (const auto &[logical, tag] : epochTag_) {
        if (tag < epoch)
            ++n;
    }
    return n;
}

} // namespace srs
