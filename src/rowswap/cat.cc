#include "rowswap/cat.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace srs
{

std::uint64_t
CatSizing::numBuckets() const
{
    SRS_ASSERT(targetEntries > 0 && ways > 0, "degenerate CAT sizing");
    const double provisioned =
        static_cast<double>(targetEntries) * overProvision;
    const auto buckets = static_cast<std::uint64_t>(
        std::ceil(provisioned / ways));
    return nextPowerOfTwo(buckets == 0 ? 1 : buckets);
}

Cat::Cat(const CatSizing &sizing, std::uint64_t seed)
    : numBuckets_(sizing.numBuckets()), ways_(sizing.ways),
      slots_(numBuckets_ * sizing.ways), hashSeed_(seed),
      rng_(seed ^ 0xCA7CA7CA7ULL)
{
}

std::uint64_t
Cat::bucketOf(RowId key) const
{
    // Fibonacci-style mixing keyed by the per-instance seed so an
    // adversary cannot precompute bucket collisions.
    std::uint64_t x = (static_cast<std::uint64_t>(key) + hashSeed_) *
                      0x9E3779B97F4A7C15ULL;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 32;
    return x & (numBuckets_ - 1);
}

std::uint64_t
Cat::altBucketOf(RowId key) const
{
    // Second, independently-keyed skew (MIRAGE-style two-choice
    // hashing keeps per-bucket load near the average).
    std::uint64_t x = (static_cast<std::uint64_t>(key) ^
                       (hashSeed_ * 0xD6E8FEB86659FD93ULL)) +
                      0xA0761D6478BD642FULL;
    x ^= x >> 33;
    x *= 0xE7037ED1A0B428DBULL;
    x ^= x >> 29;
    return x & (numBuckets_ - 1);
}

Cat::Entry *
Cat::find(RowId key)
{
    for (const std::uint64_t bucket : {bucketOf(key), altBucketOf(key)}) {
        Entry *base = &slots_[bucket * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].key == key)
                return &base[w];
        }
    }
    return nullptr;
}

const Cat::Entry *
Cat::find(RowId key) const
{
    return const_cast<Cat *>(this)->find(key);
}

bool
Cat::insert(RowId key, RowId value)
{
    if (Entry *existing = find(key)) {
        existing->value = value;
        existing->locked = true;
        return true;
    }

    // Two-choice placement: fill the less-loaded of the two buckets.
    Entry *primary = &slots_[bucketOf(key) * ways_];
    Entry *alternate = &slots_[altBucketOf(key) * ways_];
    auto loadOf = [this](const Entry *base) {
        std::uint32_t load = 0;
        for (std::uint32_t w = 0; w < ways_; ++w)
            load += base[w].valid ? 1 : 0;
        return load;
    };
    if (loadOf(alternate) < loadOf(primary))
        std::swap(primary, alternate);

    Entry *target = nullptr;
    for (Entry *base : {primary, alternate}) {
        for (std::uint32_t w = 0; w < ways_ && target == nullptr; ++w) {
            if (!base[w].valid)
                target = &base[w];
        }
        if (target != nullptr)
            break;
    }
    if (target == nullptr) {
        // Evict a random unlocked (previous-epoch) victim from
        // either bucket.
        std::vector<Entry *> candidates;
        for (Entry *base : {primary, alternate}) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (!base[w].locked)
                    candidates.push_back(&base[w]);
            }
        }
        if (candidates.empty())
            return false;
        target = candidates[rng_.nextBelow(candidates.size())];
        if (onEvict_)
            onEvict_(*target);
        --live_;
    }
    target->key = key;
    target->value = value;
    target->valid = true;
    target->locked = true;
    ++live_;
    return true;
}

std::optional<RowId>
Cat::lookup(RowId key) const
{
    const Entry *e = find(key);
    if (e == nullptr)
        return std::nullopt;
    return e->value;
}

bool
Cat::erase(RowId key)
{
    Entry *e = find(key);
    if (e == nullptr)
        return false;
    *e = Entry{};
    --live_;
    return true;
}

void
Cat::unlockAll()
{
    for (Entry &e : slots_) {
        if (e.valid)
            e.locked = false;
    }
}

void
Cat::forEach(const std::function<void(const Entry &)> &fn) const
{
    for (const Entry &e : slots_) {
        if (e.valid)
            fn(e);
    }
}

} // namespace srs
