/**
 * @file
 * Collision Avoidance Table (CAT) — the MIRAGE-style bucketed hash
 * structure the RRS artifact uses to build both the Misra-Gries
 * tracker and the Row Indirection Table (paper Section IV-B).
 *
 * Keys hash into power-of-two buckets of fixed associativity with an
 * over-provisioned entry budget so the occupancy per bucket stays low
 * and conflict-based attacks cannot force deterministic evictions.
 * Entries carry a lock bit: locked entries belong to the current
 * epoch and are never displaced; inserting into a full bucket evicts
 * a random *unlocked* (previous-epoch) entry and reports it so the
 * owner can restore the displaced row.
 */

#ifndef SRS_ROWSWAP_CAT_HH
#define SRS_ROWSWAP_CAT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace srs
{

/** Sizing rule shared with the storage model (Table IV). */
struct CatSizing
{
    std::uint64_t targetEntries = 0;  ///< worst-case live entries
    double overProvision = 1.5;       ///< capacity multiplier
    std::uint32_t ways = 8;           ///< bucket associativity

    /** Buckets: next power of two covering the provisioned budget. */
    std::uint64_t numBuckets() const;
    /** Total entry slots = buckets * ways. */
    std::uint64_t totalSlots() const { return numBuckets() * ways; }
};

/** Fixed-capacity key/value CAT over RowId keys. */
class Cat
{
  public:
    struct Entry
    {
        RowId key = kInvalidRow;
        RowId value = kInvalidRow;
        bool valid = false;
        bool locked = false;
    };

    Cat(const CatSizing &sizing, std::uint64_t seed);

    /** Fired when an unlocked entry is displaced to make room. */
    using EvictHandler = std::function<void(const Entry &)>;
    void setEvictHandler(EvictHandler handler)
    {
        onEvict_ = std::move(handler);
    }

    /**
     * Insert (or update) key -> value, locking the entry.
     * @return false only when the bucket is full of locked entries
     *         (a provisioning failure the caller must count)
     */
    bool insert(RowId key, RowId value);

    /** @return mapped value when present. */
    std::optional<RowId> lookup(RowId key) const;

    /** Remove a key. @return true when it existed. */
    bool erase(RowId key);

    /** Unlock every entry (epoch boundary). */
    void unlockAll();

    /** Live entries. */
    std::uint64_t size() const { return live_; }
    std::uint64_t capacity() const { return slots_.size(); }
    std::uint32_t ways() const { return ways_; }

    /** Walk all valid entries. */
    void forEach(const std::function<void(const Entry &)> &fn) const;

  private:
    std::uint64_t bucketOf(RowId key) const;
    std::uint64_t altBucketOf(RowId key) const;
    Entry *find(RowId key);
    const Entry *find(RowId key) const;

    std::uint64_t numBuckets_;
    std::uint32_t ways_;
    std::vector<Entry> slots_;
    std::uint64_t live_ = 0;
    std::uint64_t hashSeed_;
    mutable Rng rng_;
    EvictHandler onEvict_;
};

} // namespace srs

#endif // SRS_ROWSWAP_CAT_HH
