/**
 * @file
 * Single-table Row Indirection Table — the Section VIII-4 storage
 * optimization.
 *
 * The SRS RIT of Section IV-C stores every mapping twice: once in
 * the real half (logical row -> physical slot) and once in the
 * mirrored half (physical slot -> logical row).  In any permutation
 * the displaced logical rows and the occupied non-home slots are the
 * same set, so the forward mappings alone determine the reverse
 * ones: the resident of slot P is found by walking the permutation
 * cycle through P.  Storing only the forward direction (tagged by
 * the paper's original/reverse bit) halves the RIT entry count —
 * the "almost 2x" saving of Section VIII-4.
 *
 * The trade-off, modelled and benchmarked here, is that reverse
 * lookups (needed when a swap victimizes an occupied slot, and by
 * place-back) cost one CAT probe per hop of the containing cycle.
 * Forward remaps — the per-access critical path — stay one probe.
 * Swap-only SRS lets cycles grow until lazy place-back resolves
 * them, so the walk length is a real, measurable cost of the
 * compact organization.
 */

#ifndef SRS_ROWSWAP_COMPACT_RIT_HH
#define SRS_ROWSWAP_COMPACT_RIT_HH

#include <cstdint>

#include "common/types.hh"
#include "rowswap/cat.hh"

namespace srs
{

/** Forward-only single-table RIT with cycle-walking reverse lookup. */
class CompactRit
{
  public:
    /**
     * @param rowsPerBank  permutation domain (row ids < rowsPerBank)
     * @param sizing       CAT sizing; the target covers one entry
     *                     per displaced row (half the split RIT)
     * @param seed         hash/eviction seed for the backing CAT
     */
    CompactRit(std::uint32_t rowsPerBank, const CatSizing &sizing,
               std::uint64_t seed);

    /** Current physical slot of @p logical (one CAT probe). */
    RowId remap(RowId logical) const;

    /**
     * Logical row resident in physical slot @p phys, found by
     * walking the permutation cycle through @p phys (one probe per
     * hop; identity when the slot is home).
     */
    RowId logicalAt(RowId phys) const;

    /** @return true when @p phys holds a displaced row. */
    bool displaced(RowId phys) const;

    /**
     * Exchange the contents of physical slots @p p and @p q.
     *
     * @return false when the backing CAT rejected an insert (bucket
     *         full of locked entries — a provisioning failure); the
     *         permutation is rolled back in that case
     */
    bool swapPhysical(RowId p, RowId q);

    /** Unlock all entries (epoch boundary). */
    void unlockAll();

    /** Live entries (one per displaced row). */
    std::uint64_t entries() const { return table_.size(); }

    /** Total slot capacity of the single table. */
    std::uint64_t capacity() const { return table_.capacity(); }

    /** Provisioning failures observed (rejected swaps). */
    std::uint64_t rejects() const { return rejects_; }

    /** Probes spent in the most expensive reverse walk so far. */
    std::uint64_t maxWalkLength() const { return maxWalk_; }

    /** Total reverse-walk probes (average cost = total / walks). */
    std::uint64_t totalWalkProbes() const { return walkProbes_; }
    std::uint64_t walks() const { return walks_; }

    /**
     * SRAM bits for this organization, matching the StorageModel
     * Section VIII-4 convention: entries x (2 * rowBits + 7).
     */
    std::uint64_t storageBits(std::uint32_t rowBits) const;

    std::uint32_t rowsPerBank() const { return rowsPerBank_; }

  private:
    /** Install logical -> phys, erasing identity mappings. */
    bool setMapping(RowId logical, RowId phys);

    std::uint32_t rowsPerBank_;
    Cat table_;
    std::uint64_t rejects_ = 0;
    mutable std::uint64_t maxWalk_ = 0;
    mutable std::uint64_t walkProbes_ = 0;
    mutable std::uint64_t walks_ = 0;
};

} // namespace srs

#endif // SRS_ROWSWAP_COMPACT_RIT_HH
