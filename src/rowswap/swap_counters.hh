/**
 * @file
 * Per-row swap-tracking counters (paper Section IV-F).
 *
 * One 32-bit counter per DRAM row, stored in a reserved region of
 * main memory (0.05% of capacity: 64 counter rows per 128K-row bank).
 * Each counter holds a 19-bit epoch-id and a 13-bit cumulative
 * activation count including latent activations.  The counter for a
 * row is read and updated before each swap; a mismatched epoch-id
 * resets the count.  When the on-chip 19-bit epoch register wraps,
 * all counters are cleared (64 counter-row reads, ~41 us every
 * 4.6 hours).
 *
 * Scale-SRS classifies a row as an *outlier* when its in-epoch count
 * reaches outlierSwaps * T_S and pins it in the LLC (Section V-B).
 */

#ifndef SRS_ROWSWAP_SWAP_COUNTERS_HH
#define SRS_ROWSWAP_SWAP_COUNTERS_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace srs
{

/** Per-bank swap-tracking counter file. */
class SwapTrackingCounters
{
  public:
    /**
     * @param rowsPerBank counters provisioned (one per row)
     * @param epochBits   epoch-id field width (paper: 19)
     * @param countBits   activation count field width (paper: 13)
     */
    SwapTrackingCounters(std::uint32_t rowsPerBank,
                         std::uint32_t epochBits = 19,
                         std::uint32_t countBits = 13);

    /**
     * Read-modify-write the counter of physical row @p row before a
     * swap: stale epoch-ids reset the count, then @p actDelta
     * (T_S + latent activations) is accumulated, saturating at the
     * field maximum.
     * @return the post-update count
     */
    std::uint32_t recordSwap(RowId row, std::uint32_t epochId,
                             std::uint32_t actDelta);

    /** Current in-epoch count (0 when the stored epoch-id is stale). */
    std::uint32_t countOf(RowId row, std::uint32_t epochId) const;

    /** Wipe all counters (epoch-register wrap-around). */
    void resetAll();

    /** Maximum representable epoch-id (wrap point). */
    std::uint32_t epochIdLimit() const { return (1u << epochBits_); }

    /** DRAM bytes reserved per bank (paper: 512KB at 128K rows). */
    std::uint64_t reservedBytesPerBank() const;

    /** Counter rows per bank holding the reserved bytes. */
    std::uint32_t counterRows(std::uint32_t rowBytes) const;

    const StatSet &stats() const { return stats_; }

  private:
    struct Counter
    {
        std::uint32_t epochId = 0;
        std::uint32_t count = 0;
    };

    std::uint32_t rowsPerBank_;
    std::uint32_t epochBits_;
    std::uint32_t countBits_;
    /** Sparse: only swapped rows materialize a counter. */
    std::unordered_map<RowId, Counter> counters_;
    StatSet stats_;
};

} // namespace srs

#endif // SRS_ROWSWAP_SWAP_COUNTERS_HH
