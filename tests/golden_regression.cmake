# Golden-regression test, run via
#   cmake -DSRS_SIM=<path> -DGOLDEN=<tests/golden/tiny_sweep.csv> \
#         -P golden_regression.cmake
#
# Re-runs the tiny reference sweep committed under tests/golden/ and
# byte-compares the regenerated CSV against the checked-in file.  Any
# drift in the CSV schema, the axes spellings, the per-cell seeding,
# or the simulation itself is caught here *by name* instead of as a
# downstream resume/merge failure.
#
# The grid deliberately crosses the identity-bearing axes (page
# policy, DDR4/DDR5 preset, a DRAM organization, a tREFI override)
# at a tiny cycle budget,
# and uses a low T_RH so the mitigations actually swap rows — the
# payload columns lock down mitigation behaviour, not just identity
# formatting.  A zipf and a blend generator cell ride next to the
# synthetic workload so the generator sampling paths and the
# schema-v6 latency-percentile and Monte-Carlo-confidence columns
# are locked down
# too, and the multi-channel multi-rank org cells pin down the
# channel-parallel execution kernel's byte-identity.  The
# regeneration runs at the default thread count:
# sweep CSVs are byte-identical for any --threads value (that
# invariant has its own tests), so the comparison is exact while the
# regeneration parallelizes.
#
# If a change intentionally alters simulation results or the schema,
# regenerate the reference with the command below and commit the new
# file together with the change that explains it.

if(NOT DEFINED SRS_SIM)
  message(FATAL_ERROR "pass -DSRS_SIM=<path to srs_sim>")
endif()
if(NOT DEFINED GOLDEN)
  message(FATAL_ERROR "pass -DGOLDEN=<path to the committed reference CSV>")
endif()
if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR "reference CSV '${GOLDEN}' does not exist")
endif()

set(regen ${CMAKE_CURRENT_BINARY_DIR}/golden_regen.csv)
execute_process(
  COMMAND ${SRS_SIM} sweep
          --workloads=gups,zipf:4096@s=0.99,blend:zipf:4096@s=0.9+attack@0.05
          --mitigations=rrs,scale-srs --trh=60
          --rates=6 --page-policy=closed,open --preset=ddr4,ddr5
          --org=2x1x16,2x2x32
          --trefi=0,3900 --cycles=120000 --epoch=30000 --threads=0
          --out=${regen} --journal=none
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "golden sweep exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${GOLDEN} ${regen}
                RESULT_VARIABLE golden_diff)
if(NOT golden_diff EQUAL 0)
  message(FATAL_ERROR
          "regenerated sweep CSV differs from the committed reference "
          "${GOLDEN} (regenerated copy: ${regen}).  If the change is "
          "intentional, regenerate the reference with the command in "
          "tests/golden_regression.cmake and commit it.")
endif()

message(STATUS "golden_regression passed")
