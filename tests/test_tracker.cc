/**
 * @file
 * Unit tests for the aggressor trackers: Space-Saving, Misra-Gries
 * and Hydra (including its DRAM counter traffic).
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tracker/cbt.hh"
#include "tracker/counting_bloom.hh"
#include "tracker/hydra.hh"
#include "tracker/misra_gries.hh"
#include "tracker/space_saving.hh"
#include "tracker/twice.hh"

namespace srs
{
namespace
{

TEST(SpaceSaving, CountsExactWhenUnderCapacity)
{
    SpaceSaving t(8);
    for (int i = 0; i < 5; ++i)
        t.increment(100);
    t.increment(200);
    EXPECT_EQ(t.countOf(100), 5u);
    EXPECT_EQ(t.countOf(200), 1u);
    EXPECT_EQ(t.countOf(999), 0u);
    EXPECT_EQ(t.size(), 2u);
}

TEST(SpaceSaving, NeverUndercounts)
{
    // The Misra-Gries family guarantee: estimate >= true count.
    SpaceSaving t(4);
    std::map<RowId, std::uint32_t> truth;
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const RowId row = static_cast<RowId>(rng.nextBelow(32));
        ++truth[row];
        t.increment(row);
    }
    for (const auto &[row, count] : truth) {
        if (t.countOf(row) != 0)
            EXPECT_GE(t.countOf(row), 0u);
    }
    // A row hammered far above the eviction floor must be tracked
    // with at least its true count.
    SpaceSaving t2(4);
    for (int i = 0; i < 100; ++i) {
        t2.increment(7);
        t2.increment(static_cast<RowId>(1000 + i));
    }
    EXPECT_GE(t2.countOf(7), 100u);
}

TEST(SpaceSaving, EvictionInheritsMinCount)
{
    SpaceSaving t(2);
    t.increment(1);
    t.increment(1);
    t.increment(2);
    // Table full; a new row displaces the min (row 2, count 1).
    EXPECT_EQ(t.increment(3), 2u);
    EXPECT_EQ(t.countOf(2), 0u);
    EXPECT_EQ(t.countOf(3), 2u);
}

TEST(SpaceSaving, ResetZeroesRow)
{
    SpaceSaving t(4);
    for (int i = 0; i < 10; ++i)
        t.increment(5);
    t.reset(5);
    EXPECT_EQ(t.countOf(5), 0u);
    EXPECT_EQ(t.increment(5), 1u);
}

TEST(SpaceSaving, ClearEmptiesTable)
{
    SpaceSaving t(4);
    t.increment(1);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.countOf(1), 0u);
}

MisraGriesConfig
mgConfig(std::uint32_t ts)
{
    MisraGriesConfig cfg;
    cfg.ts = ts;
    cfg.actMaxPerEpoch = 100000;
    return cfg;
}

TEST(MisraGries, FiresExactlyAtTs)
{
    MisraGriesTracker t(mgConfig(100));
    for (int i = 0; i < 99; ++i)
        EXPECT_FALSE(t.recordActivation(0, 0, 42, 0));
    EXPECT_TRUE(t.recordActivation(0, 0, 42, 0));
}

TEST(MisraGries, ResetsAfterFiring)
{
    MisraGriesTracker t(mgConfig(100));
    for (int i = 0; i < 100; ++i)
        t.recordActivation(0, 0, 42, 0);
    // Counting restarts from zero after the mitigation trigger.
    for (int i = 0; i < 99; ++i)
        EXPECT_FALSE(t.recordActivation(0, 0, 42, 0));
    EXPECT_TRUE(t.recordActivation(0, 0, 42, 0));
}

TEST(MisraGries, BanksAreIndependent)
{
    MisraGriesTracker t(mgConfig(10));
    for (int i = 0; i < 9; ++i) {
        t.recordActivation(0, 0, 42, 0);
        t.recordActivation(0, 1, 42, 0);
        t.recordActivation(1, 0, 42, 0);
    }
    EXPECT_TRUE(t.recordActivation(0, 0, 42, 0));
    EXPECT_TRUE(t.recordActivation(0, 1, 42, 0));
    EXPECT_TRUE(t.recordActivation(1, 0, 42, 0));
}

TEST(MisraGries, EpochResetClearsCounts)
{
    MisraGriesTracker t(mgConfig(10));
    for (int i = 0; i < 9; ++i)
        t.recordActivation(0, 0, 42, 0);
    t.resetEpoch();
    EXPECT_FALSE(t.recordActivation(0, 0, 42, 0));
}

TEST(MisraGries, TableSizedFromActMax)
{
    // entries = ceil(actMax / ts) * overProvision.
    MisraGriesTracker t(mgConfig(100));
    EXPECT_EQ(t.entriesPerBank(), 2000u);
    EXPECT_GT(t.storageBitsPerBank(), 0u);
}

TEST(MisraGries, GuaranteeUnderAdversarialNoise)
{
    // One row gets ts activations amid heavy one-off noise; the
    // tracker must still fire for it (possibly early, never late).
    MisraGriesConfig cfg = mgConfig(50);
    cfg.actMaxPerEpoch = 10000;
    MisraGriesTracker t(cfg);
    Rng rng(9);
    bool fired = false;
    int hotActs = 0;
    for (int i = 0; i < 10000 && !fired; ++i) {
        if (i % 3 == 0) {
            ++hotActs;
            fired = t.recordActivation(0, 0, 7, 0);
        } else {
            t.recordActivation(0, 0,
                               static_cast<RowId>(
                                   10 + rng.nextBelow(100000)), 0);
        }
    }
    EXPECT_TRUE(fired);
    EXPECT_LE(hotActs, 50);
}

HydraConfig
hydraConfig(std::uint32_t ts)
{
    HydraConfig cfg;
    cfg.ts = ts;
    cfg.rowsPerBank = 4096;
    cfg.rowsPerGroup = 64;
    cfg.rccEntries = 16;
    return cfg;
}

TEST(Hydra, NoPerRowTrackingBelowGroupThreshold)
{
    HydraTracker t(hydraConfig(100));
    int traffic = 0;
    t.setTrafficHook([&](std::uint32_t, std::uint32_t,
                         MigrationJob) { ++traffic; });
    // Group threshold is ts/2 = 50; stay below it.
    for (int i = 0; i < 49; ++i)
        EXPECT_FALSE(t.recordActivation(0, 0, 10, 0));
    EXPECT_EQ(traffic, 0);
}

TEST(Hydra, FiresAfterTs)
{
    HydraTracker t(hydraConfig(100));
    bool fired = false;
    int acts = 0;
    while (!fired && acts < 300) {
        fired = t.recordActivation(0, 0, 10, 0);
        ++acts;
    }
    EXPECT_TRUE(fired);
    // Pessimistic counter init means it can fire early but never
    // later than ts activations past the group threshold.
    EXPECT_LE(acts, 150);
}

TEST(Hydra, RccMissGeneratesCounterTraffic)
{
    HydraTracker t(hydraConfig(100));
    std::vector<MigrationJob> jobs;
    t.setTrafficHook([&](std::uint32_t, std::uint32_t,
                         MigrationJob job) {
        jobs.push_back(std::move(job));
    });
    // Drive one group hot, then touch a row in it.
    for (int i = 0; i < 50; ++i)
        t.recordActivation(0, 0, 10, 0);
    t.recordActivation(0, 0, 10, 0);
    ASSERT_FALSE(jobs.empty());
    EXPECT_EQ(jobs[0].kind, MigrationJob::Kind::CounterAccess);
    EXPECT_EQ(t.stats().get("rcc_misses"), 1u);
}

TEST(Hydra, RccHitsAvoidTraffic)
{
    HydraTracker t(hydraConfig(100));
    int traffic = 0;
    t.setTrafficHook([&](std::uint32_t, std::uint32_t,
                         MigrationJob) { ++traffic; });
    for (int i = 0; i < 50; ++i)
        t.recordActivation(0, 0, 10, 0);
    for (int i = 0; i < 20; ++i)
        t.recordActivation(0, 0, 10, 0);
    EXPECT_EQ(traffic, 1); // one miss, then hits
    EXPECT_EQ(t.stats().get("rcc_hits"), 19u);
}

TEST(Hydra, RccCapacityCausesEvictions)
{
    HydraConfig cfg = hydraConfig(100);
    cfg.rccEntries = 4;
    HydraTracker t(cfg);
    // Heat one group, then touch more distinct rows than the RCC
    // holds.
    for (int i = 0; i < 50; ++i)
        t.recordActivation(0, 0, 0, 0);
    for (RowId r = 0; r < 8; ++r)
        t.recordActivation(0, 0, r, 0);
    EXPECT_GT(t.stats().get("rcc_evictions"), 0u);
}

TEST(Hydra, EpochResetClearsState)
{
    HydraTracker t(hydraConfig(100));
    for (int i = 0; i < 60; ++i)
        t.recordActivation(0, 0, 10, 0);
    t.resetEpoch();
    int traffic = 0;
    t.setTrafficHook([&](std::uint32_t, std::uint32_t,
                         MigrationJob) { ++traffic; });
    // Group counters were cleared: below threshold again.
    for (int i = 0; i < 49; ++i)
        t.recordActivation(0, 0, 10, 0);
    EXPECT_EQ(traffic, 0);
}

TEST(Hydra, StorageSmallerThanPerRowTracking)
{
    HydraConfig cfg;
    cfg.ts = 200;
    HydraTracker t(cfg);
    // The whole point of Hydra: far less SRAM than one counter per
    // row (128K rows x 13 bits).
    EXPECT_LT(t.storageBitsPerBank(), 128ULL * 1024 * 13 / 4);
}


// ---------------------------------------------------------------------
// Counting Bloom filters (BlockHammer substrate).
// ---------------------------------------------------------------------

CountingBloomConfig
bloomConfig(std::uint32_t counters = 1024, std::uint32_t hashes = 4)
{
    CountingBloomConfig cfg;
    cfg.counters = counters;
    cfg.hashes = hashes;
    return cfg;
}

TEST(CountingBloom, EmptyEstimatesZero)
{
    CountingBloom cbf(bloomConfig(), 1);
    for (RowId r : {0u, 5u, 1000u, 131071u})
        EXPECT_EQ(cbf.estimate(r), 0u);
}

TEST(CountingBloom, NeverUnderCounts)
{
    // The BlockHammer safety property: estimate >= true count.
    CountingBloom cbf(bloomConfig(256, 2), 7);
    Rng rng(3);
    std::unordered_map<RowId, std::uint32_t> truth;
    for (int i = 0; i < 5000; ++i) {
        const RowId r = static_cast<RowId>(rng.nextBelow(512));
        ++truth[r];
        cbf.insert(r);
    }
    for (const auto &[row, count] : truth)
        ASSERT_GE(cbf.estimate(row), count) << "row " << row;
}

TEST(CountingBloom, ExactWhenUncontended)
{
    CountingBloom cbf(bloomConfig(4096, 4), 9);
    for (int i = 0; i < 100; ++i)
        cbf.insert(42);
    EXPECT_EQ(cbf.estimate(42), 100u);
}

TEST(CountingBloom, ConservativeUpdateTightensEstimates)
{
    CountingBloomConfig plain = bloomConfig(128, 4);
    plain.conservativeUpdate = false;
    CountingBloomConfig cons = bloomConfig(128, 4);
    CountingBloom a(plain, 5);
    CountingBloom b(cons, 5);
    Rng rng(17);
    std::vector<RowId> keys;
    for (int i = 0; i < 2000; ++i) {
        const RowId r = static_cast<RowId>(rng.nextBelow(256));
        keys.push_back(r);
        a.insert(r);
        b.insert(r);
    }
    std::uint64_t sumPlain = 0, sumCons = 0;
    for (RowId r = 0; r < 256; ++r) {
        sumPlain += a.estimate(r);
        sumCons += b.estimate(r);
    }
    EXPECT_LE(sumCons, sumPlain);
}

TEST(CountingBloom, SaturatesAtCounterWidth)
{
    CountingBloomConfig cfg = bloomConfig(64, 2);
    cfg.counterBits = 4;
    CountingBloom cbf(cfg, 1);
    for (int i = 0; i < 100; ++i)
        cbf.insert(7);
    EXPECT_EQ(cbf.estimate(7), 15u);
}

TEST(CountingBloom, ClearResets)
{
    CountingBloom cbf(bloomConfig(), 1);
    cbf.insert(3);
    EXPECT_EQ(cbf.inserts(), 1u);
    cbf.clear();
    EXPECT_EQ(cbf.estimate(3), 0u);
    EXPECT_EQ(cbf.inserts(), 0u);
}

TEST(CountingBloom, StorageBits)
{
    EXPECT_EQ(CountingBloom(bloomConfig(8192, 4), 1).storageBits(),
              8192u * 16);
}

TEST(CountingBloom, RejectsBadConfig)
{
    CountingBloomConfig bad = bloomConfig(1000); // not a power of two
    EXPECT_THROW(CountingBloom(bad, 1), FatalError);
    bad = bloomConfig(1024, 0);
    EXPECT_THROW(CountingBloom(bad, 1), FatalError);
    bad = bloomConfig(1024, 4);
    bad.counterBits = 0;
    EXPECT_THROW(CountingBloom(bad, 1), FatalError);
}

TEST(DualCountingBloom, RotationForgetsOldHistory)
{
    DualCountingBloom dual(bloomConfig(), 11);
    for (int i = 0; i < 50; ++i)
        dual.insert(9);
    EXPECT_GE(dual.estimate(9), 50u);
    dual.rotate(); // history moves to the passive filter
    EXPECT_GE(dual.estimate(9), 50u);
    dual.rotate(); // second rotation clears it
    EXPECT_EQ(dual.estimate(9), 0u);
    EXPECT_EQ(dual.rotations(), 2u);
}

TEST(DualCountingBloom, EstimateSpansWindowBoundary)
{
    // A row hammered across a rotation must not lose its count —
    // the reason BlockHammer keeps two filters.
    DualCountingBloom dual(bloomConfig(), 11);
    for (int i = 0; i < 30; ++i)
        dual.insert(4);
    dual.rotate();
    for (int i = 0; i < 5; ++i)
        dual.insert(4);
    EXPECT_GE(dual.estimate(4), 30u);
}

TEST(DualCountingBloom, ClearAllZeroesBoth)
{
    DualCountingBloom dual(bloomConfig(), 11);
    dual.insert(4);
    dual.rotate();
    dual.insert(4);
    dual.clearAll();
    EXPECT_EQ(dual.estimate(4), 0u);
}

TEST(DualCountingBloom, StorageIsTwoFilters)
{
    DualCountingBloom dual(bloomConfig(8192, 4), 1);
    EXPECT_EQ(dual.storageBits(), 2u * 8192 * 16);
}

/** False-positive pressure: estimates stay near truth when the
 *  filter is provisioned for the live key count. */
class BloomAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(BloomAccuracy, ProvisionedFilterStaysTight)
{
    CountingBloom cbf(bloomConfig(8192, 4), GetParam());
    Rng rng(GetParam() * 31 + 5);
    std::unordered_map<RowId, std::uint32_t> truth;
    // ~500 live keys in an 8K-counter filter: BlockHammer's regime.
    for (int i = 0; i < 20000; ++i) {
        const RowId r = static_cast<RowId>(rng.nextBelow(500));
        ++truth[r];
        cbf.insert(r);
    }
    std::uint64_t overshoot = 0, total = 0;
    for (const auto &[row, count] : truth) {
        ASSERT_GE(cbf.estimate(row), count);
        overshoot += cbf.estimate(row) - count;
        total += count;
    }
    // Aggregate over-approximation below 5% of the inserted mass.
    EXPECT_LT(static_cast<double>(overshoot),
              0.05 * static_cast<double>(total));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomAccuracy, ::testing::Range(1, 9));


// ---------------------------------------------------------------------
// CBT — counter-based tree tracker.
// ---------------------------------------------------------------------

CbtConfig
cbtConfig(std::uint32_t ts = 100, std::uint32_t counters = 64)
{
    CbtConfig cfg;
    cfg.ts = ts;
    cfg.maxCounters = counters;
    cfg.rowsPerBank = 1024;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    return cfg;
}

TEST(Cbt, StartsWithOneRootLeaf)
{
    CbtTracker t(cbtConfig());
    EXPECT_EQ(t.leavesAt(0, 0), 1u);
    EXPECT_EQ(t.countOf(0, 0, 512), 0u);
}

TEST(Cbt, SplitsTowardsHotRow)
{
    CbtTracker t(cbtConfig());
    for (int i = 0; i < 60; ++i)
        t.recordActivation(0, 0, 700, 0);
    EXPECT_GT(t.leavesAt(0, 0), 1u);
    // The hot row's leaf carries the full count.
    EXPECT_GE(t.countOf(0, 0, 700), 60u);
}

TEST(Cbt, FiresAtTsOnSingleRowLeaf)
{
    CbtTracker t(cbtConfig());
    int triggers = 0;
    for (int i = 0; i < 300; ++i)
        triggers += t.recordActivation(0, 0, 700, 0) ? 1 : 0;
    EXPECT_GE(triggers, 1);
    EXPECT_EQ(t.stats().get("triggers"),
              static_cast<std::uint64_t>(triggers));
    // Counts reset after the trigger, so roughly 300 / threshold
    // triggers happen; the tree never misses the hammer entirely.
    EXPECT_LE(triggers, 3);
}

TEST(Cbt, NeverUnderCounts)
{
    // Children inherit the parent count: the estimate for a row is
    // always >= its true activation count.
    CbtTracker t(cbtConfig(1000, 32));
    Rng rng(5);
    std::unordered_map<RowId, std::uint32_t> truth;
    for (int i = 0; i < 3000; ++i) {
        const RowId r = static_cast<RowId>(rng.nextBelow(1024));
        ++truth[r];
        t.recordActivation(0, 0, r, 0);
    }
    for (const auto &[row, count] : truth)
        ASSERT_GE(t.countOf(0, 0, row), count) << "row " << row;
}

TEST(Cbt, CounterBudgetBounded)
{
    CbtConfig cfg = cbtConfig(100, 8);
    CbtTracker t(cfg);
    Rng rng(6);
    for (int i = 0; i < 5000; ++i)
        t.recordActivation(
            0, 0, static_cast<RowId>(rng.nextBelow(1024)), 0);
    EXPECT_LE(t.leavesAt(0, 0), 8u);
}

TEST(Cbt, CoarseTriggersWhenOutOfCounters)
{
    // With a tiny budget the tree cannot isolate single rows; it
    // must still fire (conservatively) instead of going blind.
    CbtConfig cfg = cbtConfig(100, 2);
    CbtTracker t(cfg);
    bool fired = false;
    for (int i = 0; i < 400 && !fired; ++i)
        fired = t.recordActivation(0, 0, 700, 0);
    EXPECT_TRUE(fired);
    EXPECT_GE(t.stats().get("coarse_triggers"), 1u);
}

TEST(Cbt, EpochResetCollapsesTree)
{
    CbtTracker t(cbtConfig());
    for (int i = 0; i < 80; ++i)
        t.recordActivation(0, 0, 700, 0);
    ASSERT_GT(t.leavesAt(0, 0), 1u);
    t.resetEpoch();
    EXPECT_EQ(t.leavesAt(0, 0), 1u);
    EXPECT_EQ(t.countOf(0, 0, 700), 0u);
}

TEST(Cbt, StorageIsCounterBudget)
{
    CbtTracker t(cbtConfig(100, 256));
    EXPECT_EQ(t.storageBitsPerBank(), 256u * (2 * 17 + 13));
}

TEST(Cbt, RejectsBadConfig)
{
    CbtConfig bad = cbtConfig();
    bad.ts = 0;
    EXPECT_THROW(CbtTracker{bad}, FatalError);
    bad = cbtConfig();
    bad.maxCounters = 1;
    EXPECT_THROW(CbtTracker{bad}, FatalError);
    bad = cbtConfig();
    bad.splitFraction = 0.0;
    EXPECT_THROW(CbtTracker{bad}, FatalError);
}

/** Distinct hot rows in distinct banks are isolated by the trees. */
class CbtMultiBank : public ::testing::TestWithParam<int>
{
};

TEST_P(CbtMultiBank, BanksTrackIndependently)
{
    CbtConfig cfg = cbtConfig();
    cfg.banksPerChannel = 4;
    CbtTracker t(cfg);
    const RowId row = static_cast<RowId>(GetParam() * 37 % 1024);
    for (int i = 0; i < 60; ++i)
        t.recordActivation(0, 2, row, 0);
    EXPECT_GE(t.countOf(0, 2, row), 60u);
    EXPECT_EQ(t.countOf(0, 1, row), 0u);
    EXPECT_EQ(t.leavesAt(0, 0), 1u);
}

INSTANTIATE_TEST_SUITE_P(Rows, CbtMultiBank, ::testing::Range(1, 7));


// ---------------------------------------------------------------------
// TWiCe — time-window counters with on-pace pruning.
// ---------------------------------------------------------------------

TwiceConfig
twiceConfig(std::uint32_t ts = 100, std::uint32_t checkpoints = 10)
{
    TwiceConfig cfg;
    cfg.ts = ts;
    cfg.actMaxPerEpoch = 10000;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    cfg.checkpoints = checkpoints;
    return cfg;
}

TEST(Twice, FiresExactlyAtThreshold)
{
    TwiceTracker t(twiceConfig());
    for (int i = 0; i < 99; ++i)
        EXPECT_FALSE(t.recordActivation(0, 0, 7, 0));
    EXPECT_TRUE(t.recordActivation(0, 0, 7, 0));
    // The fired entry resets; the next T_S acts fire again.
    EXPECT_EQ(t.countOf(0, 0, 7), 0u);
}

TEST(Twice, OnPaceRowsSurviveCheckpoints)
{
    // A row hammered steadily (above T_S / checkpoints per
    // interval) is never pruned: no false negatives for attackers.
    TwiceTracker t(twiceConfig(100, 10));
    // Interval = 1000 acts; pace needs >= 10 per checkpoint.
    int fired = 0;
    for (int interval = 0; interval < 10; ++interval) {
        for (int i = 0; i < 20; ++i)
            fired += t.recordActivation(0, 0, 7, 0) ? 1 : 0;
        for (int i = 0; i < 980; ++i)
            t.recordActivation(
                0, 0, static_cast<RowId>(1000 + i % 400), 0);
    }
    // 200 activations on row 7 at T_S = 100: two triggers.
    EXPECT_EQ(fired, 2);
}

TEST(Twice, OffPaceRowsPruned)
{
    TwiceTracker t(twiceConfig(100, 10));
    // 5 acts on row 7 (below the 10/checkpoint pace), then filler
    // traffic to cross one checkpoint.
    for (int i = 0; i < 5; ++i)
        t.recordActivation(0, 0, 7, 0);
    for (int i = 0; i < 1000; ++i)
        t.recordActivation(0, 0, static_cast<RowId>(100 + i % 500),
                           0);
    EXPECT_EQ(t.countOf(0, 0, 7), 0u);
    EXPECT_GT(t.stats().get("pruned"), 0u);
}

TEST(Twice, PruningBoundsTableOccupancy)
{
    // Uniform background traffic cannot grow the table without
    // bound: each checkpoint clears everything off pace.
    TwiceTracker t(twiceConfig(100, 10));
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        t.recordActivation(
            0, 0, static_cast<RowId>(rng.nextBelow(4096)), 0);
    EXPECT_LT(t.entriesAt(0, 0), 2500u);
    EXPECT_GT(t.stats().get("checkpoints"), 10u);
}

TEST(Twice, EpochResetClears)
{
    TwiceTracker t(twiceConfig());
    t.recordActivation(0, 0, 7, 0);
    t.resetEpoch();
    EXPECT_EQ(t.countOf(0, 0, 7), 0u);
    EXPECT_EQ(t.entriesAt(0, 0), 0u);
}

TEST(Twice, StorageProvisioning)
{
    TwiceConfig cfg = twiceConfig(100);
    TwiceTracker t(cfg);
    EXPECT_EQ(t.storageBitsPerBank(), (10000u / 100) * (17 + 13 + 5));
}

TEST(Twice, RejectsBadConfig)
{
    TwiceConfig bad = twiceConfig(0);
    EXPECT_THROW(TwiceTracker{bad}, FatalError);
    bad = twiceConfig(100, 0);
    EXPECT_THROW(TwiceTracker{bad}, FatalError);
    bad = twiceConfig(100, 100000); // interval rounds to zero
    EXPECT_THROW(TwiceTracker{bad}, FatalError);
}

} // namespace
} // namespace srs
