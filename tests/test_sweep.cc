/**
 * @file
 * SweepRunner / ThreadPool coverage: grid expansion order, result
 * ordering under concurrency, threads=1 vs threads=8 determinism,
 * per-cell seeding, and CSV stability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/sweep.hh"
#include "trace_fixture.hh"

namespace srs
{
namespace
{

/** Small budget so a full sweep stays fast in Debug CI. */
ExperimentConfig
tinyExperiment()
{
    ExperimentConfig exp;
    exp.cycles = 60'000;
    exp.epochLen = 25'000;
    return exp;
}

TEST(ThreadPool, RunsEveryJobOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ResolveThreadsDefaultsToHardware)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
}

TEST(SweepGrid, ExpandsRowMajorRatesInnermost)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200, 4800};
    grid.swapRates = {3, 6};
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 16u);
    // First block: workload gups, mitigation rrs.
    EXPECT_EQ(cells[0].workload.label(), "gups");
    EXPECT_EQ(cells[0].mitigation, MitigationKind::Rrs);
    EXPECT_EQ(cells[0].trh, 1200u);
    EXPECT_EQ(cells[0].swapRate, 3u);
    EXPECT_EQ(cells[1].swapRate, 6u);
    EXPECT_EQ(cells[2].trh, 4800u);
    // Mitigation increments after rates x trhs cells.
    EXPECT_EQ(cells[4].mitigation, MitigationKind::ScaleSrs);
    // Workload increments after mitigations x trhs x rates cells.
    EXPECT_EQ(cells[8].workload.label(), "gcc");
    EXPECT_EQ(cells[8].mitigation, MitigationKind::Rrs);
}

TEST(SweepGrid, EmptyAxisYieldsNoCells)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups")};
    grid.mitigations = {};
    grid.trhs = {1200};
    grid.swapRates = {3};
    EXPECT_TRUE(grid.expand().empty());
}

TEST(SweepRunner, CellSeedIsDeterministicAndWorkloadKeyed)
{
    const std::uint64_t a = SweepRunner::cellSeed(0xBEEF, "gups");
    EXPECT_EQ(a, SweepRunner::cellSeed(0xBEEF, "gups"));
    EXPECT_NE(a, SweepRunner::cellSeed(0xBEEF, "gcc"));
    EXPECT_NE(a, SweepRunner::cellSeed(0xF00D, "gups"));
}

TEST(SweepRunner, ResultsMatchCellOrder)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200, 4800};
    grid.swapRates = {6};
    const std::vector<SweepCell> cells = grid.expand();

    SweepRunner runner(tinyExperiment(), 8);
    const std::vector<SweepResult> results = runner.run(cells);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(results[i].cell.workload.label(),
                  cells[i].workload.label());
        EXPECT_EQ(results[i].cell.mitigation, cells[i].mitigation);
        EXPECT_EQ(results[i].cell.trh, cells[i].trh);
        EXPECT_EQ(results[i].cell.swapRate, cells[i].swapRate);
        EXPECT_GT(results[i].run.aggregateIpc, 0.0);
        EXPECT_GT(results[i].baselineIpc, 0.0);
    }
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc"),
                      WorkloadSpec::synthetic("hmmer")};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    const ExperimentConfig exp = tinyExperiment();

    SweepRunner serial(exp, 1);
    SweepRunner parallel(exp, 8);
    const std::vector<SweepResult> a = serial.run(grid);
    const std::vector<SweepResult> b = parallel.run(grid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed) << "cell " << i;
        EXPECT_EQ(a[i].run.aggregateIpc, b[i].run.aggregateIpc)
            << "cell " << i;
        EXPECT_EQ(a[i].run.swaps, b[i].run.swaps) << "cell " << i;
        EXPECT_EQ(a[i].baselineIpc, b[i].baselineIpc) << "cell " << i;
        EXPECT_EQ(a[i].normalized, b[i].normalized) << "cell " << i;
    }

    // CSV serialization is byte-identical too.
    std::ostringstream csvA, csvB;
    SweepRunner::writeCsv(csvA, a);
    SweepRunner::writeCsv(csvB, b);
    EXPECT_EQ(csvA.str(), csvB.str());
}

TEST(SweepRunner, BaselineSharesTraceSeedWithProtectedCells)
{
    // A baseline-mitigation cell replays the exact baseline run, so
    // its normalized performance is exactly 1.
    std::vector<SweepCell> cells(1);
    cells[0].workload = WorkloadSpec::synthetic("gups");
    cells[0].mitigation = MitigationKind::None;
    SweepRunner runner(tinyExperiment(), 2);
    const std::vector<SweepResult> results = runner.run(cells);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_DOUBLE_EQ(results[0].run.aggregateIpc,
                     results[0].baselineIpc);
    EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
}

TEST(SweepRunner, UnknownWorkloadIsFatalBeforeSimulation)
{
    std::vector<SweepCell> cells(1);
    cells[0].workload = WorkloadSpec::synthetic("no-such-benchmark");
    SweepRunner runner(tinyExperiment(), 2);
    EXPECT_THROW(runner.run(cells), FatalError);
}

TEST(SweepRunner, ConfigErrorInWorkerSurfacesAsFatalError)
{
    // A bad cell config only trips inside the worker (System
    // construction); the error must come back as a FatalError on the
    // calling thread, not std::terminate the process.
    std::vector<SweepCell> cells(1);
    cells[0].workload = WorkloadSpec::synthetic("gups");
    cells[0].mitigation = MitigationKind::Rrs;
    cells[0].trh = 1200;
    cells[0].swapRate = 2000; // swap rate exceeds T_RH
    SweepRunner runner(tinyExperiment(), 2);
    EXPECT_THROW(runner.run(cells), FatalError);
}

/** CSV text of one full run of @p cells at @p threads workers. */
std::string
sweepCsv(const std::vector<SweepCell> &cells, std::size_t threads)
{
    SweepRunner runner(tinyExperiment(), threads);
    std::ostringstream os;
    SweepRunner::writeCsv(os, runner.run(cells));
    return os.str();
}

/** Write @p text to a fresh file under the test temp dir. */
std::string
writeTempFile(const char *name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
}

std::vector<SweepCell>
resumeTestCells()
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    return grid.expand();
}

TEST(SweepResume, TruncatedCsvResumesByteIdentical)
{
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string full = sweepCsv(cells, 1);

    // Simulate a sweep killed mid-grid: keep the header, the first
    // two data rows, and half of the third (a torn final line).
    std::istringstream in(full);
    std::string line, partial;
    for (int i = 0; i < 3 && std::getline(in, line); ++i)
        partial += line + "\n";
    std::getline(in, line);
    partial += line.substr(0, line.size() / 2);
    const std::string path =
        writeTempFile("sweep_truncated.csv", partial);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        SweepRunner runner(tinyExperiment(), threads);
        runner.setResume(path);
        const std::vector<SweepResult> results = runner.run(cells);
        // The two intact rows were reused, the torn one recomputed.
        EXPECT_FALSE(results[0].resumedRow.empty());
        EXPECT_FALSE(results[1].resumedRow.empty());
        EXPECT_TRUE(results[2].resumedRow.empty());
        EXPECT_GT(results[0].normalized, 0.0);
        std::ostringstream os;
        SweepRunner::writeCsv(os, results);
        EXPECT_EQ(os.str(), full) << "threads=" << threads;
    }
}

TEST(SweepResume, FinalLineTornMidDigitIsNotTrusted)
{
    // The nastiest truncation: the file is cut inside the digits of
    // the last field, so the torn line still splits into 15
    // plausible fields.  Only the missing trailing newline gives it
    // away; the row must be recomputed, not trusted.
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string full = sweepCsv(cells, 1);
    ASSERT_EQ(full.back(), '\n');
    const std::string path = writeTempFile(
        "sweep_torn_digit.csv",
        full.substr(0, full.size() - 2)); // drop "N\n" of the last row

    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_TRUE(results.back().resumedRow.empty());
    std::ostringstream os;
    SweepRunner::writeCsv(os, results);
    EXPECT_EQ(os.str(), full);
}

TEST(SweepResume, JournalIsACompleteCheckpoint)
{
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string full = sweepCsv(cells, 1);
    const std::string journalPath =
        testing::TempDir() + "sweep_test.journal";

    SweepRunner first(tinyExperiment(), 8);
    first.setJournal(journalPath);
    first.run(cells);

    // Resuming from the journal recomputes nothing and reproduces
    // the uninterrupted CSV byte for byte.
    SweepRunner second(tinyExperiment(), 8);
    second.setResume(journalPath);
    const std::vector<SweepResult> results = second.run(cells);
    for (const SweepResult &r : results)
        EXPECT_FALSE(r.resumedRow.empty());
    std::ostringstream os;
    SweepRunner::writeCsv(os, results);
    EXPECT_EQ(os.str(), full);
    std::remove(journalPath.c_str());
}

TEST(SweepResume, MismatchedGridIsFatal)
{
    // Synthesize a plausible checkpoint without running simulations:
    // formatRow() emits the exact bytes a real sweep would.
    const std::vector<SweepCell> cells = resumeTestCells();
    const ExperimentConfig exp = tinyExperiment();
    std::string full;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SweepResult r;
        r.cell = cells[i];
        r.seed = SweepRunner::cellSeed(exp.seed,
                                       cells[i].workload.label());
        r.run.aggregateIpc = 1.0;
        r.baselineIpc = 2.0;
        r.normalized = 0.5;
        full += SweepRunner::formatRow(i, r) + "\n";
    }
    const std::string path =
        writeTempFile("sweep_mismatch.csv", full);

    // Same shape, different T_RH: every row's identity prefix
    // disagrees with the file.
    std::vector<SweepCell> other = cells;
    for (SweepCell &cell : other)
        cell.trh = 4800;
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    EXPECT_THROW(runner.run(other), FatalError);

    // A row index past the end of the grid is rejected too.
    SweepRunner shrunk(tinyExperiment(), 2);
    shrunk.setResume(path);
    EXPECT_THROW(shrunk.run(std::vector<SweepCell>(
                     cells.begin(), cells.begin() + 2)),
                 FatalError);
}

TEST(SweepJournal, HeaderNamesSchemaAndGridIdentity)
{
    const std::vector<SweepCell> cells = resumeTestCells();
    const ExperimentConfig exp = tinyExperiment();
    const std::string header =
        SweepRunner::journalHeader(cells, exp.seed);
    EXPECT_EQ(header.rfind("# srs_sim sweep journal schema=6 ", 0),
              0u)
        << header;

    SweepRunner::JournalHeader parsed;
    ASSERT_TRUE(SweepRunner::parseJournalHeader(header, parsed));
    EXPECT_EQ(parsed.schema, SweepRunner::kJournalSchema);
    EXPECT_EQ(parsed.cells, cells.size());
    EXPECT_EQ(parsed.digest,
              SweepRunner::gridDigest(cells, exp.seed));
    EXPECT_EQ(parsed.seed, exp.seed);

    // The digest is a function of the grid and the base seed: any
    // change to either renames the journal.
    EXPECT_NE(SweepRunner::gridDigest(cells, exp.seed ^ 1),
              parsed.digest);
    std::vector<SweepCell> other = cells;
    other[0].trh = 4800;
    EXPECT_NE(SweepRunner::gridDigest(other, exp.seed),
              parsed.digest);

    // Unrelated comments are not journal headers.
    EXPECT_FALSE(SweepRunner::parseJournalHeader("# a note", parsed));
    // A mangled header line is fatal, never silently skipped.
    EXPECT_THROW(SweepRunner::parseJournalHeader(
                     "# srs_sim sweep journal gibberish", parsed),
                 FatalError);
}

TEST(SweepJournal, RunWritesTheHeaderFirstAndResumeAcceptsIt)
{
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string full = sweepCsv(cells, 1);
    const std::string journalPath =
        testing::TempDir() + "sweep_header.journal";

    SweepRunner first(tinyExperiment(), 8);
    first.setJournal(journalPath);
    first.run(cells);

    std::ifstream in(journalPath);
    std::string firstLine;
    ASSERT_TRUE(std::getline(in, firstLine));
    EXPECT_EQ(firstLine, SweepRunner::journalHeader(
                             cells, tinyExperiment().seed));

    // The headered journal resumes byte-identically.
    SweepRunner second(tinyExperiment(), 8);
    second.setResume(journalPath);
    std::ostringstream os;
    SweepRunner::writeCsv(os, second.run(cells));
    EXPECT_EQ(os.str(), full);
    std::remove(journalPath.c_str());
}

TEST(SweepJournal, MismatchedHeaderIsFatalByName)
{
    const std::vector<SweepCell> cells = resumeTestCells();

    // A journal headed for a differently-seeded grid must be
    // rejected even though it holds no rows to disagree with.
    const std::string foreign = writeTempFile(
        "journal_foreign",
        SweepRunner::journalHeader(cells, tinyExperiment().seed ^ 1)
            + "\n");
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(foreign);
    try {
        runner.run(cells);
        FAIL() << "foreign journal header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("different grid"),
                  std::string::npos)
            << err.what();
    }

    // A stale schema is named in the error.
    const std::string stale = writeTempFile(
        "journal_stale",
        "# srs_sim sweep journal schema=4 cells=4 "
        "grid=0x0000000000000000 seed=0x0000000000000000\n");
    SweepRunner old(tinyExperiment(), 2);
    old.setResume(stale);
    try {
        old.run(cells);
        FAIL() << "schema-4 journal header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema 4"),
                  std::string::npos)
            << err.what();
    }

    // Headerless journals (pre-header builds) still resume.
    const ExperimentConfig exp = tinyExperiment();
    std::string rows;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SweepResult r;
        r.cell = cells[i];
        r.seed = SweepRunner::cellSeed(exp.seed,
                                       cells[i].workload.label());
        r.run.aggregateIpc = 1.0;
        r.baselineIpc = 2.0;
        r.normalized = 0.5;
        rows += SweepRunner::formatRow(i, r) + "\n";
    }
    const std::string headerless =
        writeTempFile("journal_headerless", rows);
    SweepRunner tolerant(tinyExperiment(), 2);
    tolerant.setResume(headerless);
    const std::vector<SweepResult> results = tolerant.run(cells);
    for (const SweepResult &r : results)
        EXPECT_FALSE(r.resumedRow.empty());
}

TEST(SweepMix, CellsRouteThroughRunWorkloadMixDeterministically)
{
    const ExperimentConfig exp = tinyExperiment();
    std::vector<SweepCell> cells;
    SweepCell mix = mixSweepCell(0, exp.numCores);
    ASSERT_EQ(mix.workload.label(), "mix0");
    ASSERT_EQ(mix.workload.kind, WorkloadKind::Mix);
    ASSERT_EQ(mix.workload.mixProfiles.size(), exp.numCores);
    mix.mitigation = MitigationKind::Rrs;
    mix.trh = 1200;
    mix.swapRate = 6;
    cells.push_back(mix);
    SweepCell single;
    single.workload = WorkloadSpec::synthetic("gups");
    single.mitigation = MitigationKind::Rrs;
    single.trh = 1200;
    single.swapRate = 6;
    cells.push_back(single);

    EXPECT_EQ(sweepCsv(cells, 1), sweepCsv(cells, 8));
    SweepRunner runner(exp, 4);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_GT(results[0].baselineIpc, 0.0);
    EXPECT_GT(results[0].run.aggregateIpc, 0.0);
}

TEST(SweepMix, GridAppendsMixPointsAfterWorkloads)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups")};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {6};
    grid.mixCount = 2;
    grid.mixCores = 8;
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].workload.label(), "gups");
    EXPECT_TRUE(cells[0].workload.mixProfiles.empty());
    EXPECT_EQ(cells[1].workload.label(), "mix0");
    EXPECT_EQ(cells[1].workload.mixProfiles.size(), 8u);
    EXPECT_EQ(cells[2].workload.label(), "mix1");
    // Distinct MIX points draw distinct per-core profile lists.
    EXPECT_NE(cells[1].workload.mixProfiles,
              cells[2].workload.mixProfiles);
}

TEST(SweepMix, MixBaseShiftsThePointRange)
{
    // A shard covering the middle of a MIX campaign names its exact
    // points: mixBase=3, mixCount=2 expands to mix3 and mix4 with
    // the same per-core draws the full grid would give them.
    SweepGrid grid;
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {6};
    grid.mixCount = 2;
    grid.mixBase = 3;
    grid.mixCores = 8;
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].workload.label(), "mix3");
    EXPECT_EQ(cells[1].workload.label(), "mix4");
    EXPECT_EQ(cells[0].workload, mixSweepCell(3, 8).workload);
    EXPECT_EQ(cells[1].workload, mixSweepCell(4, 8).workload);
}

TEST(SweepMix, InconsistentLabelOrCoreCountIsFatal)
{
    const ExperimentConfig exp = tinyExperiment();
    SweepCell a = mixSweepCell(0, exp.numCores);
    a.mitigation = MitigationKind::Rrs;
    SweepCell b = mixSweepCell(1, exp.numCores);
    b.workload.name = a.workload.name; // same label, other profiles
    b.mitigation = MitigationKind::ScaleSrs;
    SweepRunner runner(exp, 2);
    EXPECT_THROW(runner.run({a, b}), FatalError);

    SweepCell c = mixSweepCell(0, exp.numCores + 1);
    SweepRunner runner2(exp, 2);
    EXPECT_THROW(runner2.run({c}), FatalError);
}

TEST(SweepCsv, HeaderAndRowShape)
{
    SweepResult r;
    r.cell.workload = WorkloadSpec::synthetic("gups");
    r.cell.mitigation = MitigationKind::Rrs;
    r.cell.trh = 1200;
    r.cell.swapRate = 6;
    r.seed = 0x1234;
    r.run.aggregateIpc = 1.5;
    r.baselineIpc = 2.0;
    r.normalized = 0.75;
    r.run.p50Lat = 31;
    r.run.p99Lat = 95;
    r.run.p999Lat = 127;
    r.run.latSamples = 4242;
    std::ostringstream os;
    SweepRunner::writeCsv(os, {r});
    const std::string csv = os.str();
    EXPECT_NE(csv.find("index,workload_spec,mitigation,tracker,trh,"
                       "rate,axes,seed,"),
              std::string::npos);
    // Schema v6: the Monte-Carlo confidence columns close the
    // header; performance cells write zeros there.
    EXPECT_NE(csv.find(",p50_lat,p99_lat,p999_lat,lat_samples,"
                       "iterations,censored,p_break,ci_lo,ci_hi\n"),
              std::string::npos);
    EXPECT_NE(csv.find("0,gups,rrs,misra-gries,1200,6,closed,"),
              std::string::npos);
    EXPECT_NE(csv.find("0.750000"), std::string::npos);
    EXPECT_NE(csv.find(",31,95,127,4242,0,0,0,0,0\n"),
              std::string::npos);
    // Every data row carries exactly kRowColumns comma-separated
    // fields.
    const std::string row = csv.substr(csv.find('\n') + 1);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(row.begin(), row.end(), ',')),
              SweepRunner::kRowColumns - 1);
}

TEST(WorkloadSpecApi, ParseRoundTripsSyntheticAndTraceSpellings)
{
    const WorkloadSpec synth = WorkloadSpec::parse("gcc", 8);
    EXPECT_EQ(synth.kind, WorkloadKind::Synthetic);
    EXPECT_EQ(synth.label(), "gcc");

    const WorkloadSpec one = WorkloadSpec::parse("trace:/tmp/a.usimm", 8);
    EXPECT_EQ(one.kind, WorkloadKind::TraceFile);
    ASSERT_EQ(one.tracePaths.size(), 1u);
    EXPECT_EQ(one.label(), "trace:/tmp/a.usimm");
    EXPECT_EQ(WorkloadSpec::parse(one.label(), 8), one);

    // Per-core path lists round-trip through the ';' spelling.
    std::string perCore = "trace:";
    for (int c = 0; c < 8; ++c)
        perCore += (c ? ";" : "") + ("/t/c" + std::to_string(c));
    const WorkloadSpec spec = WorkloadSpec::parse(perCore, 8);
    EXPECT_EQ(spec.tracePaths.size(), 8u);
    EXPECT_EQ(spec.label(), perCore);
    EXPECT_EQ(WorkloadSpec::parse(spec.label(), 8), spec);

    // Generator spellings parse into the Generator kind and
    // round-trip through their canonical label.
    const WorkloadSpec gen =
        WorkloadSpec::parse("blend:hotspot:512@hot=0.25@p=0.8"
                            "@shift=50000+attack@0.1", 8);
    EXPECT_EQ(gen.kind, WorkloadKind::Generator);
    EXPECT_EQ(gen.label(),
              "blend:hotspot:512@hot=0.25@p=0.8@shift=50000"
              "+attack@0.1");
    EXPECT_EQ(WorkloadSpec::parse(gen.label(), 8), gen);
}

TEST(WorkloadSpecApi, MalformedTraceSpellingsAreFatal)
{
    // No path at all.
    EXPECT_THROW(WorkloadSpec::parse("trace:", 8), FatalError);
    // Wrong per-core count (neither 1 nor cores).
    EXPECT_THROW(WorkloadSpec::parse("trace:/a;/b;/c", 8), FatalError);
    // Characters the CSV/manifest spelling cannot carry (';' would
    // make a single path re-parse as a per-core list).
    EXPECT_THROW(WorkloadSpec::traceFiles({"/tmp/a,b.usimm"}),
                 FatalError);
    EXPECT_THROW(WorkloadSpec::traceFiles({"/tmp/a;b.usimm"}),
                 FatalError);
    EXPECT_THROW(WorkloadSpec::traceFiles({"/tmp/a b.usimm"}),
                 FatalError);
    EXPECT_THROW(WorkloadSpec::traceFiles({"/tmp/a#b.usimm"}),
                 FatalError);
}

TEST(SystemAxesApi, FieldRoundTripsAndRejectsUnknownSpellings)
{
    SystemAxes axes;
    EXPECT_EQ(axes.field(), "closed");
    axes.pagePolicy = PagePolicy::Open;
    EXPECT_EQ(axes.field(), "open");
    axes.tRcNs = 48;
    EXPECT_EQ(axes.field(), "open@trc=48");
    EXPECT_EQ(SystemAxes::parse("open@trc=48"), axes);
    EXPECT_EQ(SystemAxes::parse("closed"), SystemAxes{});

    EXPECT_THROW(pagePolicyFromName("half-open"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@tras=30"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trc=zero"), FatalError);
}

TEST(SystemAxesApi, PresetAndTimingKnobSpellingsRoundTrip)
{
    // The DDR5 preset chains right after the policy; overridden
    // knobs follow in the canonical trc, trcd, trp, trefi, trfc
    // order.  parse() is the exact inverse of field().
    SystemAxes axes;
    axes.pagePolicy = PagePolicy::Open;
    axes.preset = DramPreset::Ddr5;
    EXPECT_EQ(axes.field(), "open@ddr5");
    EXPECT_EQ(SystemAxes::parse("open@ddr5"), axes);

    axes.tRefiNs = 3900;
    EXPECT_EQ(axes.field(), "open@ddr5@trefi=3900");
    EXPECT_EQ(SystemAxes::parse("open@ddr5@trefi=3900"), axes);

    axes.tRcNs = 48;
    axes.tRcdNs = 15;
    axes.tRpNs = 15;
    axes.tRfcNs = 295;
    EXPECT_EQ(axes.field(),
              "open@ddr5@trc=48@trcd=15@trp=15@trefi=3900@trfc=295");
    EXPECT_EQ(SystemAxes::parse(axes.field()), axes);

    // ddr4 is accepted as an explicit preset but never emitted (it
    // is the default): parse canonicalizes it away.
    EXPECT_EQ(SystemAxes::parse("closed@ddr4"), SystemAxes{});
    EXPECT_EQ(SystemAxes::parse("closed@ddr4").field(), "closed");
}

TEST(SystemAxesApi, MalformedOrInconsistentSpellingsAreFatal)
{
    // Out-of-order, repeated, or misplaced suffixes are rejected —
    // canonical order is what makes parse/field exact inverses.
    EXPECT_THROW(SystemAxes::parse("open@trefi=3900@trc=48"),
                 FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trc=48@trc=50"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trc=48@ddr5"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@ddr3"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trefi=0"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trefi=200000"), FatalError);
    EXPECT_THROW(SystemAxes::parse("open@trc=20000"), FatalError);
    // tREFI's bound is per-knob: relaxed-refresh points above the
    // 10 us row-timing cap (e.g. 2x DDR4 tREFI) stay spellable.
    EXPECT_EQ(SystemAxes::parse("open@trefi=15600").tRefiNs, 15600u);

    // Inconsistent timings: a tRC smaller than tRCD + tRP cannot
    // describe a real row cycle.
    EXPECT_THROW(SystemAxes::parse("closed@trc=20"), FatalError);
    SystemAxes inconsistent;
    inconsistent.tRcNs = 40;
    inconsistent.tRcdNs = 30;
    inconsistent.tRpNs = 20;
    EXPECT_THROW(inconsistent.validate(), FatalError);

    // Every axes fatal names the accepted spellings and the
    // offending input verbatim.
    try {
        SystemAxes::parse("open@trefi=3900@trc=48");
        FAIL() << "out-of-order suffix was not rejected";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("open@trefi=3900@trc=48"),
                  std::string::npos) << msg;
        EXPECT_NE(msg.find("closed|open"), std::string::npos) << msg;
        EXPECT_NE(msg.find("@trefi=NS"), std::string::npos) << msg;
    }
}

TEST(SystemAxesApi, Ddr5PresetAppliesTheDdr5TimingClass)
{
    SystemAxes axes;
    axes.preset = DramPreset::Ddr5;
    SystemConfig cfg;
    const double ddr4Refi = cfg.timingNs.tREFI;
    axes.apply(cfg);
    EXPECT_DOUBLE_EQ(cfg.timingNs.tREFI, ddr4Refi / 2.0);
    EXPECT_DOUBLE_EQ(cfg.timingNs.tRFC, DramTimingNs::ddr5().tRFC);
    // An override layered on the preset wins over its default.
    axes.tRefiNs = 5000;
    axes.apply(cfg);
    EXPECT_DOUBLE_EQ(cfg.timingNs.tREFI, 5000.0);
    // tRAS is re-derived from the effective tRC and tRP.
    EXPECT_DOUBLE_EQ(cfg.timingNs.tRAS,
                     cfg.timingNs.tRC - cfg.timingNs.tRP);
}

TEST(SweepAxes, GridExpandsAxesBetweenWorkloadAndMitigation)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    grid.tRcOverrides = {0, 48};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 16u);
    ASSERT_EQ(grid.innerCells(), 8u);

    // Axes sit between the workload (outermost) and the mitigation:
    // page policy outermost of the pair, tRC override inner.
    EXPECT_EQ(cells[0].axes.field(), "closed");
    EXPECT_EQ(cells[0].mitigation, MitigationKind::Rrs);
    EXPECT_EQ(cells[1].mitigation, MitigationKind::ScaleSrs);
    EXPECT_EQ(cells[2].axes.field(), "closed@trc=48");
    EXPECT_EQ(cells[4].axes.field(), "open");
    EXPECT_EQ(cells[6].axes.field(), "open@trc=48");
    // The whole axes block repeats for the next workload.
    EXPECT_EQ(cells[8].workload.label(), "gcc");
    EXPECT_EQ(cells[8].axes.field(), "closed");
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(cells[i].workload.label(), "gups") << "cell " << i;
}

TEST(SweepAxes, PresetAndOverrideAxesCrossInDeclarationOrder)
{
    // Policy outermost, then preset, then the five timing overrides
    // (trc, trcd, trp, trefi, trfc) innermost-last.
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups")};
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.tRefiOverrides = {0, 3900};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    ASSERT_EQ(grid.innerCells(), 8u);
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].axes.field(), "closed");
    EXPECT_EQ(cells[1].axes.field(), "closed@trefi=3900");
    EXPECT_EQ(cells[2].axes.field(), "closed@ddr5");
    EXPECT_EQ(cells[3].axes.field(), "closed@ddr5@trefi=3900");
    EXPECT_EQ(cells[4].axes.field(), "open");
    EXPECT_EQ(cells[7].axes.field(), "open@ddr5@trefi=3900");

    // An inconsistent override combination is fatal at expansion,
    // before any simulation starts.
    SweepGrid bad = grid;
    bad.tRcOverrides = {20}; // < tRCD + tRP
    EXPECT_THROW(bad.expand(), FatalError);
}

TEST(SweepAxes, OrgAxisCrossesBetweenPresetAndTimingOverrides)
{
    // The canonical suffix order is also the expansion order:
    // policy, then preset, then org, then the timing overrides.
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups")};
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.orgs = {"2x1x16", "4x2x32"};
    grid.tRefiOverrides = {0, 3900};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    ASSERT_EQ(grid.innerCells(), 8u);
    const std::vector<SweepCell> cells = grid.expand();
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].axes.field(), "closed");
    EXPECT_EQ(cells[1].axes.field(), "closed@trefi=3900");
    EXPECT_EQ(cells[2].axes.field(), "closed@org=4x2x32");
    EXPECT_EQ(cells[3].axes.field(),
              "closed@org=4x2x32@trefi=3900");
    EXPECT_EQ(cells[4].axes.field(), "closed@ddr5");
    EXPECT_EQ(cells[6].axes.field(), "closed@ddr5@org=4x2x32");
    EXPECT_EQ(cells[7].axes.field(),
              "closed@ddr5@org=4x2x32@trefi=3900");

    // A malformed org spelling is fatal at expansion, before any
    // simulation starts, naming the input verbatim.
    SweepGrid bad = grid;
    bad.orgs = {"2x2"};
    try {
        bad.expand();
        FAIL() << "malformed org was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("2x2"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("CxRxB"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepAxes, EachOrgVariantNormalizesAgainstItsOwnBaseline)
{
    // Organization variants of the same workload share a trace seed
    // but not a baseline: a 4-channel cell normalizes against the
    // unprotected 4-channel run, never the default-org one.
    std::vector<SweepCell> cells(2);
    cells[0].workload = WorkloadSpec::synthetic("gups");
    cells[0].mitigation = MitigationKind::None;
    cells[1] = cells[0];
    dramOrgFromName("4x2x32", cells[1].axes);
    SweepRunner runner(tinyExperiment(), 2);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
    EXPECT_DOUBLE_EQ(results[1].normalized, 1.0);
    EXPECT_GT(results[0].baselineIpc, 0.0);
    EXPECT_GT(results[1].baselineIpc, 0.0);
    EXPECT_EQ(results[0].seed, results[1].seed);
}

TEST(SweepAxes, EachPresetVariantNormalizesAgainstItsOwnBaseline)
{
    // DDR4 and DDR5 cells of the same workload share a seed but not
    // a baseline: each normalizes against the unprotected run of
    // its own preset.
    std::vector<SweepCell> cells(2);
    cells[0].workload = WorkloadSpec::synthetic("gups");
    cells[0].mitigation = MitigationKind::None;
    cells[1] = cells[0];
    cells[1].axes.preset = DramPreset::Ddr5;
    SweepRunner runner(tinyExperiment(), 2);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
    EXPECT_DOUBLE_EQ(results[1].normalized, 1.0);
    EXPECT_GT(results[0].baselineIpc, 0.0);
    EXPECT_GT(results[1].baselineIpc, 0.0);
    EXPECT_EQ(results[0].seed, results[1].seed);
}

TEST(SweepAxes, EachAxesVariantNormalizesAgainstItsOwnBaseline)
{
    // An unprotected cell is its own baseline, per axes variant: both
    // normalize to exactly 1.0 even though the two baselines differ.
    std::vector<SweepCell> cells(2);
    cells[0].workload = WorkloadSpec::synthetic("gups");
    cells[0].mitigation = MitigationKind::None;
    cells[1] = cells[0];
    cells[1].axes.pagePolicy = PagePolicy::Open;
    SweepRunner runner(tinyExperiment(), 2);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_DOUBLE_EQ(results[0].normalized, 1.0);
    EXPECT_DOUBLE_EQ(results[1].normalized, 1.0);
    EXPECT_GT(results[0].baselineIpc, 0.0);
    EXPECT_GT(results[1].baselineIpc, 0.0);
    // Same seed on both variants: the trace replays identically, so
    // only the machine differs.
    EXPECT_EQ(results[0].seed, results[1].seed);
}

TEST(SweepTrace, TraceCellsAreThreadCountInvariant)
{
    const test::TraceFixture fx("srs_sweep_trace.usimm", "gups",
                                4000);
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gcc"),
                      WorkloadSpec::parse("trace:" + fx.path, 8)};
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {6};
    const std::vector<SweepCell> cells = grid.expand();
    EXPECT_EQ(sweepCsv(cells, 1), sweepCsv(cells, 8));

    SweepRunner runner(tinyExperiment(), 4);
    const std::vector<SweepResult> results = runner.run(cells);
    for (const SweepResult &r : results) {
        EXPECT_GT(r.run.aggregateIpc, 0.0);
        EXPECT_GT(r.baselineIpc, 0.0);
    }
}

TEST(SweepTrace, WrongPerCoreTraceCountOrMissingFileIsFatal)
{
    const ExperimentConfig exp = tinyExperiment();
    std::vector<SweepCell> cells(1);
    cells[0].workload =
        WorkloadSpec::traceFiles({"/a", "/b", "/c"}); // not 1 or 8
    SweepRunner runner(exp, 2);
    EXPECT_THROW(runner.run(cells), FatalError);

    cells[0].workload =
        WorkloadSpec::traceFiles({"/nonexistent/trace.usimm"});
    SweepRunner runner2(exp, 2);
    EXPECT_THROW(runner2.run(cells), FatalError);
}

TEST(SweepResume, SchemaV1FilesAreRejectedWithAVersionedError)
{
    const std::vector<SweepCell> cells = resumeTestCells();

    // A v1 CSV (header names no workload_spec/policy columns).
    const std::string v1Header =
        "index,workload,mitigation,tracker,trh,rate,seed,ipc,"
        "baseline_ipc,normalized,swaps,unswap_swaps,place_backs,"
        "rows_pinned,max_row_acts\n";
    const std::string headerPath =
        writeTempFile("sweep_v1_header.csv", v1Header);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(headerPath);
    try {
        runner.run(cells);
        FAIL() << "v1 CSV header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v1"),
                  std::string::npos)
            << err.what();
    }

    // A v1 journal (no header, 15-column rows with the seed in
    // column 7) must fail the same way, not recompute silently.
    const std::string v1Row =
        "0,gups,rrs,misra-gries,1200,3,0x1234567890abcdef,1.0,2.0,"
        "0.5,1,2,3,4,5\n";
    const std::string rowPath =
        writeTempFile("sweep_v1_journal", v1Row);
    SweepRunner journalRunner(tinyExperiment(), 2);
    journalRunner.setResume(rowPath);
    try {
        journalRunner.run(cells);
        FAIL() << "v1 journal row was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v1"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepResume, SchemaV2FilesAreRejectedWithAVersionedError)
{
    // A v2 CSV names its 7th identity column `policy`; v3 renamed
    // it to `axes` when the DRAM preset/timing knobs joined the
    // axis.  Resuming from a v2 file must fail naming schema v2.
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string v2Header =
        "index,workload_spec,mitigation,tracker,trh,rate,policy,"
        "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
        "place_backs,rows_pinned,max_row_acts\n";
    const std::string path =
        writeTempFile("sweep_v2_header.csv", v2Header);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    try {
        runner.run(cells);
        FAIL() << "v2 CSV header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v2"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepResume, SchemaV3FilesAreRejectedWithAVersionedError)
{
    // A v3 CSV has the axes column but no tail-latency percentile
    // columns; v4 appended p50_lat/p99_lat/p999_lat.  Resuming from
    // a v3 file must fail naming schema v3, both via its header and
    // via a headerless journal row.
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string v3Header =
        "index,workload_spec,mitigation,tracker,trh,rate,axes,"
        "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
        "place_backs,rows_pinned,max_row_acts\n";
    const std::string path =
        writeTempFile("sweep_v3_header.csv", v3Header);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    try {
        runner.run(cells);
        FAIL() << "v3 CSV header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v3"),
                  std::string::npos)
            << err.what();
    }

    // A v3 journal row: 16 fields, 0x-seed in column 8.
    const std::string v3Row =
        "0,gups,rrs,misra-gries,1200,3,closed,0x1234567890abcdef,"
        "1.0,2.0,0.5,1,2,3,4,5\n";
    const std::string rowPath =
        writeTempFile("sweep_v3_journal", v3Row);
    SweepRunner journalRunner(tinyExperiment(), 2);
    journalRunner.setResume(rowPath);
    try {
        journalRunner.run(cells);
        FAIL() << "v3 journal row was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("v3"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepResume, SchemaV4FilesAreRejectedWithAVersionedError)
{
    // A v4 CSV has the tail-latency percentile columns but no
    // lat_samples count; v5 appended it alongside the
    // DRAM-organization axis.  Resuming from a v4 file must fail
    // naming schema v4, both via its header and via a headerless
    // journal row.
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string v4Header =
        "index,workload_spec,mitigation,tracker,trh,rate,axes,"
        "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
        "place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,"
        "p999_lat\n";
    const std::string path =
        writeTempFile("sweep_v4_header.csv", v4Header);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    try {
        runner.run(cells);
        FAIL() << "v4 CSV header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v4"),
                  std::string::npos)
            << err.what();
    }

    // A v4 journal row: 19 fields, 0x-seed in column 8.
    const std::string v4Row =
        "0,gups,rrs,misra-gries,1200,3,closed,0x1234567890abcdef,"
        "1.0,2.0,0.5,1,2,3,4,5,31,95,127\n";
    const std::string rowPath =
        writeTempFile("sweep_v4_journal", v4Row);
    SweepRunner journalRunner(tinyExperiment(), 2);
    journalRunner.setResume(rowPath);
    try {
        journalRunner.run(cells);
        FAIL() << "v4 journal row was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("v4"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepResume, SchemaV5FilesAreRejectedWithAVersionedError)
{
    // A v5 CSV has the lat_samples count but none of the v6
    // iterations/censored/p_break/ci_lo/ci_hi Monte-Carlo
    // confidence columns.  Resuming from a v5 file must fail naming
    // schema v5, both via its header and via a headerless journal
    // row.
    const std::vector<SweepCell> cells = resumeTestCells();
    const std::string v5Header =
        "index,workload_spec,mitigation,tracker,trh,rate,axes,"
        "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
        "place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,"
        "p999_lat,lat_samples\n";
    const std::string path =
        writeTempFile("sweep_v5_header.csv", v5Header);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    try {
        runner.run(cells);
        FAIL() << "v5 CSV header was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema v5"),
                  std::string::npos)
            << err.what();
    }

    // A v5 journal row: 20 fields, 0x-seed in column 8.
    const std::string v5Row =
        "0,gups,rrs,misra-gries,1200,3,closed,0x1234567890abcdef,"
        "1.0,2.0,0.5,1,2,3,4,5,31,95,127,4242\n";
    const std::string rowPath =
        writeTempFile("sweep_v5_journal", v5Row);
    SweepRunner journalRunner(tinyExperiment(), 2);
    journalRunner.setResume(rowPath);
    try {
        journalRunner.run(cells);
        FAIL() << "v5 journal row was not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("v5"),
                  std::string::npos)
            << err.what();
    }
}

TEST(SweepGenerator, ZipfAndBlendCellsAreThreadCountInvariant)
{
    // Generator-backed cells derive their per-cell seed from the
    // canonical label like every other workload, so a zipf and a
    // blend cell must produce byte-identical CSV at any worker
    // count — the invariance the orchestrator's shard split relies
    // on.
    SweepGrid grid;
    grid.workloads = {
        WorkloadSpec::parse("zipf:4096@s=0.99", 8),
        WorkloadSpec::parse("blend:zipf:4096@s=0.9+attack@0.05", 8),
    };
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::None};
    grid.trhs = {1200};
    grid.swapRates = {6};
    const std::vector<SweepCell> cells = grid.expand();
    const std::string csv1 = sweepCsv(cells, 1);
    EXPECT_EQ(csv1, sweepCsv(cells, 8));
    // The identity column carries the canonical spellings, and the
    // percentile columns are live (nonzero for a read-heavy stream).
    EXPECT_NE(csv1.find(",zipf:4096@s=0.99,"), std::string::npos);
    EXPECT_NE(csv1.find(",blend:zipf:4096@s=0.9+attack@0.05,"),
              std::string::npos);

    SweepRunner runner(tinyExperiment(), 4);
    const std::vector<SweepResult> results = runner.run(cells);
    for (const SweepResult &r : results) {
        EXPECT_GT(r.run.aggregateIpc, 0.0);
        EXPECT_GT(r.run.readLatency.total(), 0u);
        EXPECT_GT(r.run.p50Lat, 0u);
        EXPECT_GE(r.run.p99Lat, r.run.p50Lat);
        EXPECT_GE(r.run.p999Lat, r.run.p99Lat);
    }
}

TEST(SweepGenerator, ResumedGeneratorCellsReplayByteIdentical)
{
    // A truncated generator sweep resumes to the uninterrupted
    // bytes: parsed-back identity must validate against the
    // generator labels, and recomputed cells reproduce the same
    // percentiles.
    SweepGrid grid;
    grid.workloads = {
        WorkloadSpec::parse("hotspot:1024@hot=0.1@p=0.9", 8),
        WorkloadSpec::parse("zipf:2048@s=1.2", 8),
    };
    grid.mitigations = {MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {6};
    const std::vector<SweepCell> cells = grid.expand();
    const std::string full = sweepCsv(cells, 2);

    std::istringstream in(full);
    std::string line, partial;
    for (int i = 0; i < 2 && std::getline(in, line); ++i)
        partial += line + "\n";
    const std::string path =
        writeTempFile("sweep_generator_resume.csv", partial);
    SweepRunner runner(tinyExperiment(), 2);
    runner.setResume(path);
    const std::vector<SweepResult> results = runner.run(cells);
    EXPECT_FALSE(results[0].resumedRow.empty());
    std::ostringstream os;
    SweepRunner::writeCsv(os, results);
    EXPECT_EQ(os.str(), full);
}

TEST(SweepNames, MitigationAndTrackerRoundTrip)
{
    for (const MitigationKind kind :
         {MitigationKind::Rrs, MitigationKind::RrsNoUnswap,
          MitigationKind::Srs, MitigationKind::ScaleSrs,
          MitigationKind::BlockHammer, MitigationKind::Aqua}) {
        EXPECT_EQ(mitigationKindFromName(mitigationKindName(kind)),
                  kind);
    }
    for (const TrackerKind kind :
         {TrackerKind::MisraGries, TrackerKind::Hydra, TrackerKind::Cbt,
          TrackerKind::TwiCe}) {
        EXPECT_EQ(trackerKindFromName(trackerKindName(kind)), kind);
    }
    for (const DramPreset preset :
         {DramPreset::Ddr4, DramPreset::Ddr5}) {
        EXPECT_EQ(dramPresetFromName(dramPresetName(preset)), preset);
    }
    EXPECT_THROW(mitigationKindFromName("bogus"), FatalError);
    EXPECT_THROW(trackerKindFromName("bogus"), FatalError);
    EXPECT_THROW(dramPresetFromName("ddr6"), FatalError);
}

} // namespace
} // namespace srs
