/**
 * @file
 * Shared TraceWriter -> FileTrace roundtrip fixture for the test
 * suites: synthesize a deterministic workload trace, write it in
 * USIMM text format, and hand back both the on-disk path and the
 * records that were written, so tests can replay the file and
 * compare record-for-record (or feed the path to trace-file sweep
 * cells).
 */

#ifndef SRS_TESTS_TRACE_FIXTURE_HH
#define SRS_TESTS_TRACE_FIXTURE_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dram/address.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace srs::test
{

/**
 * A synthetic workload recorded to a USIMM trace file under the
 * gtest temp dir; the file is removed on destruction.
 */
struct TraceFixture
{
    std::string path;
    std::vector<TraceRecord> written;

    /**
     * Record @p records accesses of profile @p profileName (drawn
     * with @p seed) through TraceWriter into
     * TempDir()/<fileName>.
     */
    TraceFixture(const std::string &fileName,
                 const std::string &profileName, std::uint64_t records,
                 std::uint64_t seed = 0xBEEF)
        : path(::testing::TempDir() + fileName)
    {
        const DramOrg org;
        const AddressMap map(org);
        SyntheticTrace source(profileByName(profileName), map,
                              /*core=*/0, seed);
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < records; ++i) {
            const TraceRecord rec = source.next();
            writer.append(rec, /*pc=*/0x400000 + i);
            written.push_back(rec);
        }
    }

    ~TraceFixture() { std::remove(path.c_str()); }

    TraceFixture(const TraceFixture &) = delete;
    TraceFixture &operator=(const TraceFixture &) = delete;

    /** Replay the file and require it to reproduce written exactly. */
    void expectRoundTrip() const
    {
        FileTrace replay(path);
        ASSERT_EQ(replay.size(), written.size());
        for (const TraceRecord &expect : written) {
            const TraceRecord got = replay.next();
            EXPECT_EQ(got.addr, expect.addr);
            EXPECT_EQ(got.isWrite, expect.isWrite);
            EXPECT_EQ(got.nonMemGap, expect.nonMemGap);
        }
        EXPECT_EQ(replay.wraps(), 0u);
    }
};

} // namespace srs::test

#endif // SRS_TESTS_TRACE_FIXTURE_HH
