# CLI smoke test, run via `cmake -DSRS_SIM=<path> -P cli_smoke.cmake`.
#
# Asserts that the cheap srs_sim subcommands exit 0 and that an
# unknown flag is rejected with a fatal error (nonzero exit) instead
# of being silently ignored.

if(NOT DEFINED SRS_SIM)
  message(FATAL_ERROR "pass -DSRS_SIM=<path to srs_sim>")
endif()

function(run_expect_ok)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "srs_sim ${ARGV} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

function(run_expect_fail)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "srs_sim ${ARGV} unexpectedly exited 0")
  endif()
endfunction()

# Tiny cycle budgets keep the smoke test fast.
run_expect_ok(list)
run_expect_ok(storage --trh=1200)
run_expect_ok(perf --workload=gups --mitigation=rrs --trh=1200
              --rate=6 --cycles=60000 --epoch=25000 --csv)
run_expect_ok(sweep --workloads=gups --mitigations=rrs --trh=1200
              --rates=6 --cycles=60000 --epoch=25000 --threads=2)

# MIX points and batched Monte-Carlo validation.
run_expect_ok(sweep --workloads= --mix=1 --mitigations=rrs --trh=1200
              --rates=6 --cycles=60000 --epoch=25000 --threads=2)
run_expect_ok(attack --defense=rrs --trh=2400 --rate=6 --rounds=900
              --montecarlo=2000 --shards=4 --threads=2)

# Resume roundtrip: a full CSV resumes to byte-identical output
# without recomputing anything.
set(smoke_dir ${CMAKE_CURRENT_BINARY_DIR})
set(smoke_args sweep --workloads=gups --mitigations=rrs,scale-srs
    --trh=1200 --rates=6 --cycles=60000 --epoch=25000 --threads=2)
run_expect_ok(${smoke_args} --out=${smoke_dir}/smoke_full.csv)
run_expect_ok(${smoke_args} --resume=${smoke_dir}/smoke_full.csv
              --out=${smoke_dir}/smoke_resumed.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/smoke_full.csv
                ${smoke_dir}/smoke_resumed.csv
                RESULT_VARIABLE smoke_diff)
if(NOT smoke_diff EQUAL 0)
  message(FATAL_ERROR "resumed sweep CSV differs from the fresh run")
endif()
# The journal of the full run is itself a resumable checkpoint.
run_expect_ok(${smoke_args} --resume=${smoke_dir}/smoke_full.csv.journal
              --out=${smoke_dir}/smoke_journal.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/smoke_full.csv
                ${smoke_dir}/smoke_journal.csv
                RESULT_VARIABLE smoke_jdiff)
if(NOT smoke_jdiff EQUAL 0)
  message(FATAL_ERROR "journal-resumed sweep CSV differs")
endif()

# Unknown flags must be fatal on every subcommand; so are a resume
# file that does not exist and a sweep with no workloads at all.
run_expect_fail(list --bogus=1)
run_expect_fail(storage --thr=1200)
run_expect_fail(perf --workload=gups --cylces=1000)
run_expect_fail(sweep --workloads=gups --thread=2)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/no_such_file.csv)
run_expect_fail(sweep --workloads= --mitigations=rrs --trh=1200
                --rates=6)

# No subcommand / unknown subcommand -> usage + nonzero exit.
run_expect_fail()
run_expect_fail(frobnicate)

message(STATUS "cli_smoke passed")
