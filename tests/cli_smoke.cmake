# CLI smoke test, run via `cmake -DSRS_SIM=<path> -P cli_smoke.cmake`.
#
# Asserts that the cheap srs_sim subcommands exit 0 and that an
# unknown flag is rejected with a fatal error (nonzero exit) instead
# of being silently ignored.

if(NOT DEFINED SRS_SIM)
  message(FATAL_ERROR "pass -DSRS_SIM=<path to srs_sim>")
endif()

function(run_expect_ok)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "srs_sim ${ARGV} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

function(run_expect_fail)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "srs_sim ${ARGV} unexpectedly exited 0")
  endif()
endfunction()

# Tiny cycle budgets keep the smoke test fast.
run_expect_ok(list)
run_expect_ok(storage --trh=1200)
run_expect_ok(perf --workload=gups --mitigation=rrs --trh=1200
              --rate=6 --cycles=60000 --epoch=25000 --csv)
run_expect_ok(sweep --workloads=gups --mitigations=rrs --trh=1200
              --rates=6 --cycles=60000 --epoch=25000 --threads=2)

# Unknown flags must be fatal on every subcommand.
run_expect_fail(list --bogus=1)
run_expect_fail(storage --thr=1200)
run_expect_fail(perf --workload=gups --cylces=1000)
run_expect_fail(sweep --workloads=gups --thread=2)

# No subcommand / unknown subcommand -> usage + nonzero exit.
run_expect_fail()
run_expect_fail(frobnicate)

message(STATUS "cli_smoke passed")
