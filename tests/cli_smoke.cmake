# CLI smoke test, run via `cmake -DSRS_SIM=<path> -P cli_smoke.cmake`.
#
# Asserts that the cheap srs_sim subcommands exit 0 and that an
# unknown flag is rejected with a fatal error (nonzero exit) instead
# of being silently ignored.

if(NOT DEFINED SRS_SIM)
  message(FATAL_ERROR "pass -DSRS_SIM=<path to srs_sim>")
endif()

function(run_expect_ok)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "srs_sim ${ARGV} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

function(run_expect_fail)
  execute_process(COMMAND ${SRS_SIM} ${ARGV}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "srs_sim ${ARGV} unexpectedly exited 0")
  endif()
endfunction()

# Tiny cycle budgets keep the smoke test fast.
run_expect_ok(list)
run_expect_ok(storage --trh=1200)
run_expect_ok(perf --workload=gups --mitigation=rrs --trh=1200
              --rate=6 --cycles=60000 --epoch=25000 --csv)
run_expect_ok(sweep --workloads=gups --mitigations=rrs --trh=1200
              --rates=6 --cycles=60000 --epoch=25000 --threads=2)

# MIX points and batched Monte-Carlo validation.
run_expect_ok(sweep --workloads= --mix=1 --mitigations=rrs --trh=1200
              --rates=6 --cycles=60000 --epoch=25000 --threads=2)
run_expect_ok(attack --defense=rrs --trh=2400 --rate=6 --rounds=900
              --montecarlo=2000 --shards=4 --threads=2)

# Resume roundtrip: a full CSV resumes to byte-identical output
# without recomputing anything.
set(smoke_dir ${CMAKE_CURRENT_BINARY_DIR})
set(smoke_args sweep --workloads=gups --mitigations=rrs,scale-srs
    --trh=1200 --rates=6 --cycles=60000 --epoch=25000 --threads=2)
run_expect_ok(${smoke_args} --out=${smoke_dir}/smoke_full.csv)
run_expect_ok(${smoke_args} --resume=${smoke_dir}/smoke_full.csv
              --out=${smoke_dir}/smoke_resumed.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/smoke_full.csv
                ${smoke_dir}/smoke_resumed.csv
                RESULT_VARIABLE smoke_diff)
if(NOT smoke_diff EQUAL 0)
  message(FATAL_ERROR "resumed sweep CSV differs from the fresh run")
endif()
# The journal of the full run is itself a resumable checkpoint.
run_expect_ok(${smoke_args} --resume=${smoke_dir}/smoke_full.csv.journal
              --out=${smoke_dir}/smoke_journal.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/smoke_full.csv
                ${smoke_dir}/smoke_journal.csv
                RESULT_VARIABLE smoke_jdiff)
if(NOT smoke_jdiff EQUAL 0)
  message(FATAL_ERROR "journal-resumed sweep CSV differs")
endif()

# Trace-file workloads and the system axes: record a synthetic
# workload as a USIMM trace, then sweep the recorded file next to a
# synthetic workload across both page policies — threads=1 and
# threads=2 must produce byte-identical CSVs, and the identity
# columns must carry the trace spelling and both policy names.
run_expect_ok(trace --workload=gups --records=20000 --seed=7
              --out=${smoke_dir}/smoke_trace.usimm)
set(axes_grid --workloads=gcc --trace=${smoke_dir}/smoke_trace.usimm
    --mitigations=rrs --trh=1200 --rates=6 --page-policy=closed,open
    --cycles=60000 --epoch=25000)
run_expect_ok(sweep ${axes_grid} --threads=1
              --out=${smoke_dir}/axes_t1.csv --journal=none)
run_expect_ok(sweep ${axes_grid} --threads=2
              --out=${smoke_dir}/axes_t2.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/axes_t1.csv ${smoke_dir}/axes_t2.csv
                RESULT_VARIABLE axes_diff)
if(NOT axes_diff EQUAL 0)
  message(FATAL_ERROR "trace/page-policy sweep is thread-count dependent")
endif()
file(READ ${smoke_dir}/axes_t1.csv axes_csv)
foreach(needle "trace:${smoke_dir}/smoke_trace.usimm" ",closed," ",open,")
  if(NOT axes_csv MATCHES "${needle}")
    message(FATAL_ERROR "sweep CSV lacks identity field '${needle}'")
  endif()
endforeach()
# A tRC-override axis sweeps through the same mechanism.
run_expect_ok(sweep --workloads=gups --mitigations=rrs --trh=1200
              --rates=6 --trc=48 --cycles=60000 --epoch=25000
              --threads=2)

# The DDR5 preset and the per-knob timing overrides are system axes
# too: a preset + trefi-override grid must be thread-count invariant,
# carry the chained axes spellings in the identity column, and ride
# orchestrate/merge byte-identically (the Section VIII-5 recipe).
set(ddr5_grid --workloads=gups --mitigations=rrs --trh=1200 --rates=6
    --preset=ddr4,ddr5 --trefi=0,5000 --cycles=60000 --epoch=25000)
run_expect_ok(sweep ${ddr5_grid} --threads=1
              --out=${smoke_dir}/ddr5_t1.csv --journal=none)
run_expect_ok(sweep ${ddr5_grid} --threads=2
              --out=${smoke_dir}/ddr5_t2.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/ddr5_t1.csv ${smoke_dir}/ddr5_t2.csv
                RESULT_VARIABLE ddr5_diff)
if(NOT ddr5_diff EQUAL 0)
  message(FATAL_ERROR "preset/timing sweep is thread-count dependent")
endif()
file(READ ${smoke_dir}/ddr5_t1.csv ddr5_csv)
foreach(needle ",closed," ",closed@ddr5," ",closed@trefi=5000,"
        ",closed@ddr5@trefi=5000,")
  if(NOT ddr5_csv MATCHES "${needle}")
    message(FATAL_ERROR "sweep CSV lacks axes field '${needle}'")
  endif()
endforeach()
file(REMOVE_RECURSE ${smoke_dir}/ddr5_shards)
run_expect_ok(orchestrate ${ddr5_grid} --shards=2 --jobs=2 --threads=1
              --out=${smoke_dir}/ddr5_merged.csv
              --dir=${smoke_dir}/ddr5_shards)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/ddr5_t1.csv ${smoke_dir}/ddr5_merged.csv
                RESULT_VARIABLE ddr5_orch_diff)
if(NOT ddr5_orch_diff EQUAL 0)
  message(FATAL_ERROR "orchestrated preset/timing CSV differs")
endif()
run_expect_ok(merge --manifest=${smoke_dir}/ddr5_shards/manifest
              --out=${smoke_dir}/ddr5_stitched.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/ddr5_t1.csv ${smoke_dir}/ddr5_stitched.csv
                RESULT_VARIABLE ddr5_merge_diff)
if(NOT ddr5_merge_diff EQUAL 0)
  message(FATAL_ERROR "stitch-only preset/timing CSV differs")
endif()

# The recorded trace rides orchestrate/merge too: the merged CSV is
# byte-identical to the single-process sweep of the same grid.
file(REMOVE_RECURSE ${smoke_dir}/axes_shards)
run_expect_ok(orchestrate ${axes_grid} --shards=2 --jobs=2 --threads=1
              --out=${smoke_dir}/axes_merged.csv
              --dir=${smoke_dir}/axes_shards)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/axes_t1.csv ${smoke_dir}/axes_merged.csv
                RESULT_VARIABLE axes_orch_diff)
if(NOT axes_orch_diff EQUAL 0)
  message(FATAL_ERROR "orchestrated trace/page-policy CSV differs")
endif()

# Orchestrate: split the same grid into 3 shards (one per workload),
# run them as supervised child processes two at a time, and require
# the merged CSV to be byte-identical to a single-process sweep.
set(orch_grid --workloads=gups,gcc,hmmer --mitigations=rrs --trh=1200
    --rates=3,6 --cycles=60000 --epoch=25000)
file(REMOVE_RECURSE ${smoke_dir}/orch_shards ${smoke_dir}/orch_plan)
run_expect_ok(sweep ${orch_grid} --threads=2
              --out=${smoke_dir}/orch_single.csv --journal=none)
run_expect_ok(orchestrate ${orch_grid} --shards=3 --jobs=2 --threads=1
              --out=${smoke_dir}/orch_merged.csv
              --dir=${smoke_dir}/orch_shards)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/orch_single.csv
                ${smoke_dir}/orch_merged.csv
                RESULT_VARIABLE orch_diff)
if(NOT orch_diff EQUAL 0)
  message(FATAL_ERROR "orchestrated CSV differs from single-process sweep")
endif()
# Re-orchestrating a finished run launches nothing and still merges
# identically; stitch-only `merge` reads the same manifest.
run_expect_ok(orchestrate ${orch_grid} --shards=3 --jobs=2 --threads=1
              --out=${smoke_dir}/orch_again.csv
              --dir=${smoke_dir}/orch_shards)
run_expect_ok(merge --manifest=${smoke_dir}/orch_shards/manifest
              --out=${smoke_dir}/orch_stitched.csv)
foreach(redone orch_again orch_stitched)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${smoke_dir}/orch_single.csv
                  ${smoke_dir}/${redone}.csv
                  RESULT_VARIABLE orch_rediff)
  if(NOT orch_rediff EQUAL 0)
    message(FATAL_ERROR "${redone}.csv differs from single-process sweep")
  endif()
endforeach()
# --plan writes the manifest and the per-shard commands without
# running anything; merging the unrun plan must fail (no shard CSVs).
run_expect_ok(orchestrate ${orch_grid} --shards=3 --plan
              --dir=${smoke_dir}/orch_plan)
if(NOT EXISTS ${smoke_dir}/orch_plan/manifest)
  message(FATAL_ERROR "orchestrate --plan did not write a manifest")
endif()
if(EXISTS ${smoke_dir}/orch_plan/shard0.csv)
  message(FATAL_ERROR "orchestrate --plan ran a shard")
endif()
run_expect_fail(merge --manifest=${smoke_dir}/orch_plan/manifest)

# A tampered shard must be rejected by merge, never mixed in.
file(READ ${smoke_dir}/orch_shards/shard1.csv shard1_text)
string(REPLACE ",1200,3," ",4800,3," shard1_bad "${shard1_text}")
file(WRITE ${smoke_dir}/orch_shards/shard1.csv "${shard1_bad}")
run_expect_fail(merge --manifest=${smoke_dir}/orch_shards/manifest
                --out=${smoke_dir}/orch_rejected.csv)
file(WRITE ${smoke_dir}/orch_shards/shard1.csv "${shard1_text}")

# Generator workloads: a zipf + blend grid must be thread-count
# invariant, carry the canonical spellings in the identity column,
# and emit the schema-v6 tail-latency + Monte-Carlo-confidence
# header.
set(gen_grid --workloads=zipf:4096@s=0.99,blend:zipf:4096@s=0.9+attack@0.05
    --mitigations=rrs --trh=1200 --rates=6 --cycles=60000 --epoch=25000)
run_expect_ok(sweep ${gen_grid} --threads=1
              --out=${smoke_dir}/gen_t1.csv --journal=none)
run_expect_ok(sweep ${gen_grid} --threads=8
              --out=${smoke_dir}/gen_t8.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/gen_t1.csv ${smoke_dir}/gen_t8.csv
                RESULT_VARIABLE gen_diff)
if(NOT gen_diff EQUAL 0)
  message(FATAL_ERROR "generator sweep is thread-count dependent")
endif()
file(READ ${smoke_dir}/gen_t1.csv gen_csv)
foreach(needle ",zipf:4096@s=0.99," ",blend:zipf:4096@s=0.9\\+attack@0.05,"
        ",p50_lat,p99_lat,p999_lat,lat_samples,iterations,censored,p_break,ci_lo,ci_hi")
  if(NOT gen_csv MATCHES "${needle}")
    message(FATAL_ERROR "generator sweep CSV lacks '${needle}'")
  endif()
endforeach()
# The generator grid rides orchestrate/merge byte-identically too.
file(REMOVE_RECURSE ${smoke_dir}/gen_shards)
run_expect_ok(orchestrate ${gen_grid} --shards=2 --jobs=2 --threads=1
              --out=${smoke_dir}/gen_merged.csv
              --dir=${smoke_dir}/gen_shards)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/gen_t1.csv ${smoke_dir}/gen_merged.csv
                RESULT_VARIABLE gen_orch_diff)
if(NOT gen_orch_diff EQUAL 0)
  message(FATAL_ERROR "orchestrated generator CSV differs")
endif()
# Malformed generator spellings must be fatal up front.
run_expect_fail(sweep --workloads=zipf:0 --mitigations=rrs --trh=1200
                --rates=6)
run_expect_fail(sweep --workloads=blend:zipf:64@s=1 --mitigations=rrs
                --trh=1200 --rates=6)
run_expect_fail(sweep --workloads=hotspot:4096@hot=1.5@p=0.5
                --mitigations=rrs --trh=1200 --rates=6)

# The DRAM organization is a system axis too: an org grid must be
# invariant under both --threads and --channel-workers (the channel-
# parallel kernel is an optimization, never an axis), carry the
# @org= spellings in the identity column, and ride orchestrate/merge
# byte-identically.
set(org_grid --workloads=gups --mitigations=rrs,scale-srs --trh=1200
    --rates=6 --org=1x1x16,2x1x16,2x2x32 --cycles=60000 --epoch=25000)
run_expect_ok(sweep ${org_grid} --threads=1 --channel-workers=1
              --out=${smoke_dir}/org_serial.csv --journal=none)
run_expect_ok(sweep ${org_grid} --threads=8 --channel-workers=8
              --out=${smoke_dir}/org_parallel.csv --journal=none)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/org_serial.csv
                ${smoke_dir}/org_parallel.csv
                RESULT_VARIABLE org_diff)
if(NOT org_diff EQUAL 0)
  message(FATAL_ERROR "org sweep depends on the thread/channel-worker count")
endif()
file(READ ${smoke_dir}/org_serial.csv org_csv)
foreach(needle ",closed@org=1x1x16," ",closed,")
  if(NOT org_csv MATCHES "${needle}")
    message(FATAL_ERROR "org sweep CSV lacks axes field '${needle}'")
  endif()
endforeach()
if(NOT org_csv MATCHES ",closed@org=2x2x32,")
  message(FATAL_ERROR "org sweep CSV lacks the 2x2x32 axes field")
endif()
file(REMOVE_RECURSE ${smoke_dir}/org_shards)
run_expect_ok(orchestrate ${org_grid} --shards=2 --jobs=2 --threads=1
              --out=${smoke_dir}/org_merged.csv
              --dir=${smoke_dir}/org_shards)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/org_serial.csv ${smoke_dir}/org_merged.csv
                RESULT_VARIABLE org_orch_diff)
if(NOT org_orch_diff EQUAL 0)
  message(FATAL_ERROR "orchestrated org CSV differs")
endif()
# Malformed or out-of-range --org values are fatal up front.
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --org=2x2)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --org=0x1x16)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --org=2x2x128)

# Unknown axis values must be fatal with the accepted spellings
# listed, and schema-v1/v2/v3/v4 checkpoints/manifests must be
# rejected with a versioned error instead of a cryptic identity
# mismatch.
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --page-policy=half-open)
run_expect_fail(sweep --workloads=trace: --mitigations=rrs --trh=1200
                --rates=6)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --trc=fast)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --preset=ddr6)
# Inconsistent timings (tRC < tRCD + tRP) are fatal up front.
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --trc=20)
file(WRITE ${smoke_dir}/v1_checkpoint.csv
     "index,workload,mitigation,tracker,trh,rate,seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,place_backs,rows_pinned,max_row_acts\n")
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/v1_checkpoint.csv)
file(WRITE ${smoke_dir}/v2_checkpoint.csv
     "index,workload_spec,mitigation,tracker,trh,rate,policy,seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,place_backs,rows_pinned,max_row_acts\n")
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/v2_checkpoint.csv)
file(WRITE ${smoke_dir}/v3_checkpoint.csv
     "index,workload_spec,mitigation,tracker,trh,rate,axes,seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,place_backs,rows_pinned,max_row_acts\n")
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/v3_checkpoint.csv)
file(WRITE ${smoke_dir}/v4_checkpoint.csv
     "index,workload_spec,mitigation,tracker,trh,rate,axes,seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,p999_lat\n")
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/v4_checkpoint.csv)
file(WRITE ${smoke_dir}/v5_checkpoint.csv
     "index,workload_spec,mitigation,tracker,trh,rate,axes,seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,p999_lat,lat_samples\n")
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/v5_checkpoint.csv)
file(READ ${smoke_dir}/orch_shards/manifest manifest_v6)
if(NOT manifest_v6 MATCHES "version=6")
  message(FATAL_ERROR "orchestrate manifest is not schema v6")
endif()
foreach(stale_version 1 2 3 4 5)
  string(REPLACE "version=6" "version=${stale_version}" manifest_stale
         "${manifest_v6}")
  file(WRITE ${smoke_dir}/orch_shards/stale_manifest "${manifest_stale}")
  run_expect_fail(merge --manifest=${smoke_dir}/orch_shards/stale_manifest)
endforeach()
file(REMOVE ${smoke_dir}/orch_shards/stale_manifest)

# Farm: dispatch a planned orchestration across a simulated fleet of
# two "local" hosts x 2 jobs and require the merged CSV to be
# byte-identical to the single-process sweep; the JSON plan names
# every shard's argv; monitor reports fleet completion from the
# journals alone.
file(REMOVE_RECURSE ${smoke_dir}/farm_shards)
run_expect_ok(orchestrate ${orch_grid} --shards=3 --plan
              --dir=${smoke_dir}/farm_shards)
execute_process(COMMAND ${SRS_SIM} orchestrate ${orch_grid} --shards=3
                --plan --plan-format=json --dir=${smoke_dir}/farm_shards
                OUTPUT_VARIABLE plan_json RESULT_VARIABLE plan_rc
                ERROR_QUIET)
if(NOT plan_rc EQUAL 0)
  message(FATAL_ERROR "orchestrate --plan --plan-format=json failed")
endif()
foreach(needle "\"shards\":" "\"argv\":" "\"merge\":")
  if(NOT plan_json MATCHES "${needle}")
    message(FATAL_ERROR "JSON plan lacks '${needle}'")
  endif()
endforeach()
run_expect_fail(orchestrate ${orch_grid} --plan --plan-format=yaml)
file(WRITE ${smoke_dir}/farm_hosts.conf
     "version=1\nhosts=2\nhost0.host=local\nhost0.jobs=2\nhost1.host=local\nhost1.jobs=2\n")
run_expect_ok(farm --manifest=${smoke_dir}/farm_shards/manifest
              --hosts=${smoke_dir}/farm_hosts.conf --threads=1
              --out=${smoke_dir}/farm_merged.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/orch_single.csv
                ${smoke_dir}/farm_merged.csv
                RESULT_VARIABLE farm_diff)
if(NOT farm_diff EQUAL 0)
  message(FATAL_ERROR "farm CSV differs from single-process sweep")
endif()
file(READ ${smoke_dir}/farm_shards/farm.status farm_status)
foreach(needle "\"type\":\"fleet\"" "\"done\":3" "\"host\":\"local\"")
  if(NOT farm_status MATCHES "${needle}")
    message(FATAL_ERROR "farm status file lacks '${needle}'")
  endif()
endforeach()
execute_process(COMMAND ${SRS_SIM} monitor --dir=${smoke_dir}/farm_shards
                OUTPUT_VARIABLE monitor_json RESULT_VARIABLE monitor_rc
                ERROR_QUIET)
if(NOT monitor_rc EQUAL 0)
  message(FATAL_ERROR "monitor exited ${monitor_rc}")
endif()
foreach(needle "\"type\":\"shard\"" "\"type\":\"fleet\"" "\"done\":3"
        "\"pct\":100.0" "\"host\":\"local\"")
  if(NOT monitor_json MATCHES "${needle}")
    message(FATAL_ERROR "monitor JSON lacks '${needle}'")
  endif()
endforeach()
# Re-farming a finished directory launches nothing and merges the
# same bytes.
run_expect_ok(farm --manifest=${smoke_dir}/farm_shards/manifest
              --hosts=${smoke_dir}/farm_hosts.conf
              --out=${smoke_dir}/farm_again.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/orch_single.csv ${smoke_dir}/farm_again.csv
                RESULT_VARIABLE farm_rediff)
if(NOT farm_rediff EQUAL 0)
  message(FATAL_ERROR "re-farmed CSV differs from single-process sweep")
endif()
# Misconfigured fleets and missing inputs are fatal by name.
run_expect_fail(farm)
run_expect_fail(farm --manifest=${smoke_dir}/farm_shards/manifest)
run_expect_fail(farm --hosts=${smoke_dir}/farm_hosts.conf)
file(WRITE ${smoke_dir}/bad_hosts.conf
     "version=9\nhosts=1\nhost0.host=local\n")
run_expect_fail(farm --manifest=${smoke_dir}/farm_shards/manifest
                --hosts=${smoke_dir}/bad_hosts.conf)
run_expect_fail(monitor)
run_expect_fail(monitor --dir=${smoke_dir}/no_such_dir)

# Security sweep: the security subcommand enumerates (axes, trh,
# rate) security cells with the same schema-v6 CSV the performance
# sweep writes, thread-count invariant, Monte-Carlo confidence
# columns live when a campaign runs and zero when analytic-only.
set(sec_grid --defenses=srs,rrs --trh=2400 --rates=6 --rounds=900,best)
run_expect_ok(security ${sec_grid} --montecarlo=2000 --threads=1
              --out=${smoke_dir}/sec_t1.csv)
run_expect_ok(security ${sec_grid} --montecarlo=2000 --threads=8
              --out=${smoke_dir}/sec_t8.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${smoke_dir}/sec_t1.csv ${smoke_dir}/sec_t8.csv
                RESULT_VARIABLE sec_diff)
if(NOT sec_diff EQUAL 0)
  message(FATAL_ERROR "security sweep is thread-count dependent")
endif()
file(READ ${smoke_dir}/sec_t1.csv sec_csv)
foreach(needle ",iterations,censored,p_break,ci_lo,ci_hi"
        ",attack:srs,srs,-,2400,6,closed,0x"
        ",attack:rrs@n=900,rrs,-,2400,6,closed,0x"
        ",attack:rrs@best,rrs,-,2400,6,closed,0x")
  if(NOT sec_csv MATCHES "${needle}")
    message(FATAL_ERROR "security sweep CSV lacks '${needle}'")
  endif()
endforeach()
if(NOT sec_csv MATCHES ",2000,[0-9]+,[0-9.e+-]+,")
  message(FATAL_ERROR "security CSV has no live Monte-Carlo columns")
endif()
# Analytic-only runs leave the campaign columns zeroed.
run_expect_ok(security --defenses=srs --trh=4800 --rates=6
              --out=${smoke_dir}/sec_analytic.csv)
file(READ ${smoke_dir}/sec_analytic.csv sec_analytic_csv)
if(NOT sec_analytic_csv MATCHES ",0,0,0,0,0\n")
  message(FATAL_ERROR
          "analytic-only security row has live campaign columns")
endif()
run_expect_fail(security --defenses=scale-rrs --trh=2400 --rates=6)
run_expect_fail(security ${sec_grid} --montecarlo=banana)

# Unknown flags must be fatal on every subcommand; so are a resume
# file that does not exist, a sweep with no workloads at all, a
# merge without a manifest, and an orchestration with zero shards.
run_expect_fail(list --bogus=1)
run_expect_fail(storage --thr=1200)
run_expect_fail(perf --workload=gups --cylces=1000)
run_expect_fail(sweep --workloads=gups --thread=2)
run_expect_fail(sweep --workloads=gups --mitigations=rrs --trh=1200
                --rates=6 --resume=${smoke_dir}/no_such_file.csv)
run_expect_fail(sweep --workloads= --mitigations=rrs --trh=1200
                --rates=6)
run_expect_fail(orchestrate ${orch_grid} --shard=3)
run_expect_fail(orchestrate ${orch_grid} --shards=0)
run_expect_fail(orchestrate --workloads= --mitigations=rrs --trh=1200
                --rates=6)
run_expect_fail(merge)
run_expect_fail(merge --manifest=${smoke_dir}/no_such_manifest)

# No subcommand / unknown subcommand -> usage + nonzero exit, and the
# usage text actually summarizes every subcommand's flags.
run_expect_fail()
run_expect_fail(frobnicate)
execute_process(COMMAND ${SRS_SIM} OUTPUT_VARIABLE usage_text
                RESULT_VARIABLE usage_rc ERROR_QUIET)
foreach(subcommand perf sweep orchestrate merge farm monitor attack
        security storage trace list
        --workloads --shards --manifest --montecarlo --defenses --rounds
        --trace --page-policy --preset --org --channel-workers
        --trc --trcd --trp --trefi --trfc "trace:"
        --hosts --status-file --stale-sec --plan-format --watch
        --interval-ms --poll-ms)
  if(NOT usage_text MATCHES "${subcommand}")
    message(FATAL_ERROR "usage() does not mention '${subcommand}'")
  endif()
endforeach()

message(STATUS "cli_smoke passed")
