/**
 * @file
 * Unit tests for the workload profiles and trace generators.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <set>

#include "common/logging.hh"
#include "trace/attack.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "trace_fixture.hh"

namespace srs
{
namespace
{

TEST(Profiles, TableIsPopulated)
{
    EXPECT_GE(allProfiles().size(), 35u);
}

TEST(Profiles, AllSuitesPresent)
{
    for (const std::string &suite : suiteNames())
        EXPECT_FALSE(profilesOfSuite(suite).empty()) << suite;
}

TEST(Profiles, PaperHeavyHittersExist)
{
    // The benchmarks Figure 14 singles out must be in the table.
    for (const char *name : {"gcc", "hmmer", "bzip2", "zeusmp", "astar",
                             "sphinx3", "xz_17", "gups"}) {
        EXPECT_NO_THROW(profileByName(name)) << name;
    }
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_THROW(profileByName("not-a-benchmark"), FatalError);
}

TEST(Profiles, MixIsDeterministicPerIndex)
{
    const auto a = mixWorkload(3, 8);
    const auto b = mixWorkload(3, 8);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].name, b[i].name);
    const auto c = mixWorkload(4, 8);
    bool anyDiff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        anyDiff |= a[i].name != c[i].name;
    EXPECT_TRUE(anyDiff);
}

struct TraceFixture : public ::testing::Test
{
    TraceFixture() : map(org) {}
    DramOrg org;
    AddressMap map;
};

TEST_F(TraceFixture, SyntheticIsDeterministic)
{
    const WorkloadProfile &p = profileByName("gcc");
    SyntheticTrace a(p, map, 0, 42);
    SyntheticTrace b(p, map, 0, 42);
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.nonMemGap, rb.nonMemGap);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST_F(TraceFixture, CoresGetDisjointStreams)
{
    const WorkloadProfile &p = profileByName("gcc");
    SyntheticTrace a(p, map, 0, 42);
    SyntheticTrace b(p, map, 1, 42);
    int same = 0;
    for (int i = 0; i < 500; ++i)
        same += a.next().addr == b.next().addr;
    EXPECT_LT(same, 5);
}

TEST_F(TraceFixture, GapMatchesProfileMean)
{
    WorkloadProfile p = profileByName("gcc");
    p.avgGap = 20.0;
    SyntheticTrace t(p, map, 0, 7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += t.next().nonMemGap;
    EXPECT_NEAR(sum / 20000.0, 20.0, 1.0);
}

TEST_F(TraceFixture, WriteFractionMatches)
{
    WorkloadProfile p = profileByName("gcc");
    p.writeFrac = 0.4;
    SyntheticTrace t(p, map, 0, 7);
    int writes = 0;
    for (int i = 0; i < 20000; ++i)
        writes += t.next().isWrite;
    EXPECT_NEAR(writes / 20000.0, 0.4, 0.02);
}

TEST_F(TraceFixture, HotRowsConcentrateActivity)
{
    WorkloadProfile p = profileByName("gcc");
    p.hotProb = 0.5;
    SyntheticTrace t(p, map, 0, 7);
    std::set<Addr> hotBases(t.hotRowBases().begin(),
                            t.hotRowBases().end());
    ASSERT_EQ(hotBases.size(), p.hotRows);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Addr rowBase = map.rowBaseOf(t.next().addr);
        hot += hotBases.count(rowBase) > 0;
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.5, 0.03);
}

TEST_F(TraceFixture, HotSkewFavorsFirstRows)
{
    WorkloadProfile p = profileByName("gcc");
    p.hotProb = 1.0;
    p.hotRows = 16;
    p.hotSkew = 0.3;
    SyntheticTrace t(p, map, 0, 7);
    std::map<Addr, int> counts;
    for (int i = 0; i < 20000; ++i)
        counts[map.rowBaseOf(t.next().addr)]++;
    const int hottest = counts[t.hotRowBases().front()];
    const int coldest = counts[t.hotRowBases().back()];
    EXPECT_GT(hottest, 3 * std::max(coldest, 1));
}

TEST_F(TraceFixture, FootprintBoundsRespected)
{
    WorkloadProfile p = profileByName("hmmer"); // 24 MB footprint
    p.hotProb = 0.0;
    SyntheticTrace t(p, map, 2, 7);
    const Addr base = 2ULL * p.footprintMB * 1024 * 1024;
    const Addr end = base + p.footprintMB * 1024 * 1024;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = t.next().addr;
        EXPECT_GE(a, base);
        EXPECT_LT(a, end);
    }
}

TEST_F(TraceFixture, OversizedFootprintIsFatal)
{
    WorkloadProfile p = profileByName("gcc");
    p.footprintMB = 8ULL * 1024 * 1024; // 8 TB
    EXPECT_THROW(SyntheticTrace(p, map, 0, 7), FatalError);
}

TEST_F(TraceFixture, HammerTargetsOneRow)
{
    HammerTrace t(map, 1, 5, 7777, 0);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord rec = t.next();
        const DramCoord c = map.decode(rec.addr);
        EXPECT_EQ(c.channel, 1u);
        EXPECT_EQ(c.bank, 5u);
        EXPECT_EQ(c.row, 7777u);
        EXPECT_EQ(rec.nonMemGap, 0u);
    }
}

TEST_F(TraceFixture, HammerCyclesColumns)
{
    HammerTrace t(map, 0, 0, 1, 0);
    std::set<std::uint32_t> cols;
    for (int i = 0; i < 200; ++i)
        cols.insert(map.decode(t.next().addr).column);
    EXPECT_EQ(cols.size(), org.linesPerRow());
}

TEST_F(TraceFixture, JuggernautPhases)
{
    const std::uint32_t ts = 100;
    const std::uint32_t rounds = 3;
    JuggernautTrace t(map, 0, 2, 5000, ts, rounds, 1);
    // Phase 1: 2*ts - 1 + rounds*ts accesses to the aggressor.
    const std::uint64_t phase1 = 2 * ts - 1 + rounds * ts;
    for (std::uint64_t i = 0; i < phase1; ++i) {
        EXPECT_FALSE(t.guessing());
        EXPECT_EQ(map.decode(t.next().addr).row, 5000u);
    }
    // Phase 2: random guesses, ts accesses per guessed row.
    std::set<RowId> guessed;
    for (int g = 0; g < 5; ++g) {
        const RowId row = map.decode(t.next().addr).row;
        guessed.insert(row);
        EXPECT_TRUE(t.guessing());
        for (std::uint32_t i = 1; i < ts; ++i)
            EXPECT_EQ(map.decode(t.next().addr).row, row);
    }
    EXPECT_EQ(t.guessesMade(), 5u);
    EXPECT_GE(guessed.size(), 4u); // collisions vanishingly unlikely
}



TEST_F(TraceFixture, HotBanksDecorrelateAcrossCores)
{
    // Rate-mode copies must not pile their hot rows into the same
    // banks, or bank tRC would cap per-row activation rates at
    // 1/cores of the hammer ceiling (the Figure 14 calibration
    // depends on this).
    const WorkloadProfile &profile = profileByName("gcc");
    std::set<std::pair<std::uint32_t, std::uint32_t>> first;
    for (CoreId core = 0; core < 4; ++core) {
        SyntheticTrace t(profile, map, core, 9);
        const DramCoord c = map.decode(t.hotRowBases().front());
        first.insert({c.channel, c.bank});
    }
    // The four cores' hottest rows occupy four distinct banks.
    EXPECT_EQ(first.size(), 4u);
}


TEST_F(TraceFixture, HotRowsAvoidQuarantineRegion)
{
    // AQUA reserves the top 1% of each bank; hot rows must stay
    // clear of the top 2% or the defense would misread the hammer
    // as quarantine self-traffic.
    for (const char *name : {"gups", "gcc", "pr"}) {
        SyntheticTrace t(profileByName(name), map, 3, 11);
        for (const Addr base : t.hotRowBases()) {
            const DramCoord c = map.decode(base);
            EXPECT_LT(c.row, org.rowsPerBank - org.rowsPerBank / 50)
                << name;
        }
    }
}

// ---------------------------------------------------------------------
// USIMM trace file I/O.
// ---------------------------------------------------------------------

/** Temp-file helper that cleans up after itself. */
struct TempTraceFile
{
    TempTraceFile()
    {
        path = ::testing::TempDir() + "srs_trace_" +
               std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
               ".txt";
    }
    ~TempTraceFile() { std::remove(path.c_str()); }
    std::string path;
};

TEST(TraceFileParse, AcceptsCanonicalLines)
{
    TraceRecord rec;
    ASSERT_TRUE(parseTraceLine("3 R 0xdeadbeef 0x400123", rec, "t"));
    EXPECT_EQ(rec.nonMemGap, 3u);
    EXPECT_FALSE(rec.isWrite);
    EXPECT_EQ(rec.addr, 0xdeadbeefULL);

    ASSERT_TRUE(parseTraceLine("0 W 0x1000", rec, "t"));
    EXPECT_TRUE(rec.isWrite);
    EXPECT_EQ(rec.addr, 0x1000ULL);
}

TEST(TraceFileParse, SkipsCommentsAndBlanks)
{
    TraceRecord rec;
    EXPECT_FALSE(parseTraceLine("", rec, "t"));
    EXPECT_FALSE(parseTraceLine("   ", rec, "t"));
    EXPECT_FALSE(parseTraceLine("# header", rec, "t"));
    EXPECT_FALSE(parseTraceLine("  # indented comment", rec, "t"));
}

TEST(TraceFileParse, RejectsMalformedLines)
{
    TraceRecord rec;
    EXPECT_THROW(parseTraceLine("R 0x1000", rec, "t"), FatalError);
    EXPECT_THROW(parseTraceLine("1 X 0x1000", rec, "t"), FatalError);
    EXPECT_THROW(parseTraceLine("1 R zzz", rec, "t"), FatalError);
}

TEST(TraceFileParse, RejectsBadGapBadHexAndTruncatedWrite)
{
    TraceRecord rec;
    // Non-numeric instruction gap.
    EXPECT_THROW(parseTraceLine("gap R 0x1000", rec, "t"),
                 FatalError);
    // Address with no hex digits at all.
    EXPECT_THROW(parseTraceLine("4 W qq123", rec, "t"), FatalError);
    // Write line cut off before its address column.
    EXPECT_THROW(parseTraceLine("0 W", rec, "t"), FatalError);
    EXPECT_THROW(parseTraceLine("12", rec, "t"), FatalError);
}

TEST(TraceFile, WriteReadRoundTrip)
{
    TempTraceFile tmp;
    std::vector<TraceRecord> expect;
    {
        TraceWriter w(tmp.path);
        Rng rng(5);
        for (int i = 0; i < 200; ++i) {
            TraceRecord rec;
            rec.nonMemGap = static_cast<std::uint32_t>(
                rng.nextBelow(50));
            rec.isWrite = rng.nextBool(0.3);
            rec.addr = rng.nextBelow(1ULL << 35) & ~0x3FULL;
            w.append(rec, 0x400000 + i);
            expect.push_back(rec);
        }
        EXPECT_EQ(w.recordsWritten(), 200u);
    }
    FileTrace trace(tmp.path);
    ASSERT_EQ(trace.size(), expect.size());
    for (const TraceRecord &e : expect) {
        const TraceRecord got = trace.next();
        EXPECT_EQ(got.nonMemGap, e.nonMemGap);
        EXPECT_EQ(got.isWrite, e.isWrite);
        EXPECT_EQ(got.addr, e.addr);
    }
}

TEST(TraceFile, LoopWrapsAround)
{
    std::vector<TraceRecord> recs(3);
    recs[0].addr = 0x100;
    recs[1].addr = 0x200;
    recs[2].addr = 0x300;
    FileTrace trace(recs, /*loop=*/true);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(trace.next().addr, 0x100u);
        EXPECT_EQ(trace.next().addr, 0x200u);
        EXPECT_EQ(trace.next().addr, 0x300u);
    }
    EXPECT_EQ(trace.wraps(), 2u);
}

TEST(TraceFile, NonLoopingEmitsIdleRecords)
{
    std::vector<TraceRecord> recs(1);
    recs[0].addr = 0x100;
    FileTrace trace(recs, /*loop=*/false);
    EXPECT_EQ(trace.next().addr, 0x100u);
    for (int i = 0; i < 5; ++i) {
        const TraceRecord idle = trace.next();
        EXPECT_EQ(idle.addr, kInvalidAddr);
        EXPECT_GT(idle.nonMemGap, 0u);
    }
    EXPECT_EQ(trace.wraps(), 0u);
}

TEST(TraceFile, NonLoopingFileReplayEndsInTerminalGaps)
{
    // A non-looping trace *file* behaves like the record-built one:
    // after the last record the source repeats a pure-compute gap
    // forever instead of wrapping (USIMM's run-to-completion mode).
    test::TraceFixture fx("srs_nonloop.usimm", "gups", 25);
    FileTrace trace(fx.path, /*loop=*/false);
    for (std::size_t i = 0; i < fx.written.size(); ++i)
        EXPECT_EQ(trace.next().addr, fx.written[i].addr);
    for (int i = 0; i < 10; ++i) {
        const TraceRecord idle = trace.next();
        EXPECT_EQ(idle.addr, kInvalidAddr);
        EXPECT_GT(idle.nonMemGap, 0u);
    }
    EXPECT_EQ(trace.wraps(), 0u);
}

TEST(TraceFile, FixtureRoundTripsWriterThroughFileTrace)
{
    const test::TraceFixture fx("srs_fixture_rt.usimm", "gcc", 300,
                                /*seed=*/123);
    fx.expectRoundTrip();
}

TEST(TraceFile, SharedRecordsAreParsedOnceAndShared)
{
    const test::TraceFixture fx("srs_shared.usimm", "gups", 100);
    const SharedTraceRecords records = loadTraceRecords(fx.path);
    ASSERT_EQ(records->size(), 100u);
    // Two replays of one shared parse reference the same image.
    FileTrace a(records);
    FileTrace b(records);
    EXPECT_EQ(&a.records(), records.get());
    EXPECT_EQ(&b.records(), records.get());
    EXPECT_EQ(a.next().addr, b.next().addr);
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(FileTrace("/nonexistent/trace.txt"), FatalError);
}

TEST(TraceFile, EmptyFileIsFatal)
{
    TempTraceFile tmp;
    {
        TraceWriter w(tmp.path);
        w.close();
    }
    EXPECT_THROW(FileTrace{tmp.path}, FatalError);
}

TEST(TraceFile, SyntheticExportReplaysIdentically)
{
    // Export a synthetic stream and verify the file replays the
    // exact same record sequence (the artifact workflow).
    TempTraceFile tmp;
    DramOrg org;
    AddressMap map(org);
    SyntheticTrace synth(profileByName("gups"), map, 0, 77);
    {
        TraceWriter w(tmp.path);
        for (int i = 0; i < 500; ++i)
            w.append(synth.next());
    }
    SyntheticTrace again(profileByName("gups"), map, 0, 77);
    FileTrace replay(tmp.path);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord a = again.next();
        const TraceRecord b = replay.next();
        ASSERT_EQ(a.addr, b.addr) << "record " << i;
        ASSERT_EQ(a.isWrite, b.isWrite);
        ASSERT_EQ(a.nonMemGap, b.nonMemGap);
    }
}

} // namespace
} // namespace srs
