/**
 * @file
 * Event-driven loop equivalence: the skip-ahead System::run must be
 * indistinguishable from the tick-per-cycle reference loop.  Skipping
 * a cycle is only legal when ticking every component there is
 * provably a no-op, so every observable — IPC per core, mitigation
 * activity, Row Hammer ground truth, sweep CSV bytes — must match
 * exactly, not approximately.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep.hh"

namespace srs
{
namespace
{

ExperimentConfig
smallExperiment(bool referenceLoop)
{
    ExperimentConfig exp;
    exp.cycles = 120'000;
    exp.epochLen = 50'000;
    exp.referenceLoop = referenceLoop;
    return exp;
}

RunResult
runCell(const char *workload, MitigationKind kind, TrackerKind tracker,
        bool referenceLoop)
{
    const ExperimentConfig exp = smallExperiment(referenceLoop);
    const SystemConfig cfg =
        makeSystemConfig(exp, kind, 1200, 6, tracker);
    return runWorkload(cfg, profileByName(workload), exp);
}

void
expectIdentical(const RunResult &ref, const RunResult &ev,
                const std::string &label)
{
    // Exact double equality is intentional: both loops execute the
    // same component code at the same simulated cycles, so there is
    // no rounding to forgive.
    EXPECT_EQ(ref.aggregateIpc, ev.aggregateIpc) << label;
    ASSERT_EQ(ref.coreIpc.size(), ev.coreIpc.size()) << label;
    for (std::size_t i = 0; i < ref.coreIpc.size(); ++i)
        EXPECT_EQ(ref.coreIpc[i], ev.coreIpc[i]) << label << " core " << i;
    EXPECT_EQ(ref.swaps, ev.swaps) << label;
    EXPECT_EQ(ref.unswapSwaps, ev.unswapSwaps) << label;
    EXPECT_EQ(ref.placeBacks, ev.placeBacks) << label;
    EXPECT_EQ(ref.latentActivations, ev.latentActivations) << label;
    EXPECT_EQ(ref.maxRowActivations, ev.maxRowActivations) << label;
    EXPECT_EQ(ref.rowsPinned, ev.rowsPinned) << label;
    // Whole read-latency distributions must match bucket for bucket,
    // not just the three percentile columns derived from them.
    EXPECT_EQ(ref.readLatency, ev.readLatency) << label;
    EXPECT_EQ(ref.p50Lat, ev.p50Lat) << label;
    EXPECT_EQ(ref.p99Lat, ev.p99Lat) << label;
    EXPECT_EQ(ref.p999Lat, ev.p999Lat) << label;
}

TEST(EventLoop, MatchesReferenceAcrossMitigations)
{
    const char *workloads[] = {"gups", "gcc"};
    const MitigationKind kinds[] = {
        MitigationKind::None,
        MitigationKind::Srs,
        MitigationKind::ScaleSrs,
        MitigationKind::BlockHammer,
    };
    for (const char *wl : workloads) {
        for (const MitigationKind kind : kinds) {
            const std::string label =
                std::string(wl) + "/" + mitigationKindName(kind);
            const RunResult ref =
                runCell(wl, kind, TrackerKind::MisraGries, true);
            const RunResult ev =
                runCell(wl, kind, TrackerKind::MisraGries, false);
            expectIdentical(ref, ev, label);
        }
    }
}

TEST(EventLoop, MatchesReferenceWithHydraTracker)
{
    const RunResult ref =
        runCell("gups", MitigationKind::Srs, TrackerKind::Hydra, true);
    const RunResult ev =
        runCell("gups", MitigationKind::Srs, TrackerKind::Hydra, false);
    expectIdentical(ref, ev, "gups/srs/hydra");
}

TEST(EventLoop, MatchesReferenceOnGeneratorWorkloads)
{
    // The generator-backed streams (Zipf, migrating hotspot, blend
    // with an embedded hammer stream) draw their records from
    // generator-time, not wall-clock scheduling, so both loops must
    // see the identical access stream — and the identical latency
    // histogram.
    const char *specs[] = {
        "zipf:4096@s=0.99",
        "hotspot:1024@hot=0.1@p=0.9@shift=20000",
        "blend:zipf:4096@s=0.9+attack@0.05",
    };
    for (const char *spelling : specs) {
        const GeneratorSpec gen = GeneratorSpec::parse(spelling);
        RunResult results[2];
        for (int refLoop = 0; refLoop < 2; ++refLoop) {
            const ExperimentConfig exp =
                smallExperiment(refLoop == 1);
            const SystemConfig cfg = makeSystemConfig(
                exp, MitigationKind::ScaleSrs, 1200, 6);
            results[refLoop] = runWorkloadGenerator(cfg, gen, exp);
        }
        expectIdentical(results[1], results[0], spelling);
        EXPECT_GT(results[0].readLatency.total(), 0u) << spelling;
    }
}

/**
 * Run one workload spelling (synthetic profile name or generator
 * spec) under @p axes with @p channelWorkers controller workers.
 */
RunResult
runOrgCell(const std::string &workload, MitigationKind kind,
           const SystemAxes &axes, std::uint32_t channelWorkers)
{
    ExperimentConfig exp = smallExperiment(false);
    exp.channelWorkers = channelWorkers;
    const SystemConfig cfg = makeSystemConfig(
        exp, kind, 1200, 6, TrackerKind::MisraGries, axes);
    if (workload.find(':') != std::string::npos) {
        return runWorkloadGenerator(
            cfg, GeneratorSpec::parse(workload), exp);
    }
    return runWorkload(cfg, profileByName(workload), exp);
}

/**
 * The org-invariance contract: channel-parallel execution is an
 * optimization, never an axis.  For every workload x mitigation x
 * organization point — 1, 2 and 4 channels, multi-rank included —
 * a run with 8 channel workers must equal the serial run exactly:
 * every RunResult observable and the whole latency histogram,
 * bucket for bucket.
 */
TEST(EventLoop, ChannelParallelMatchesSerialAcrossOrgs)
{
    const char *workloads[] = {
        "gups",
        "zipf:4096@s=0.99",
        "blend:zipf:4096@s=0.9+attack@0.05",
    };
    const MitigationKind kinds[] = {
        MitigationKind::None,
        MitigationKind::Srs,
        MitigationKind::ScaleSrs,
    };
    const char *orgs[] = {"1x1x16", "2x1x16", "4x2x32"};
    for (const char *wl : workloads) {
        for (const MitigationKind kind : kinds) {
            for (const char *org : orgs) {
                SystemAxes axes;
                dramOrgFromName(org, axes);
                const std::string label = std::string(wl) + "/"
                    + mitigationKindName(kind) + "/org=" + org;
                const RunResult serial =
                    runOrgCell(wl, kind, axes, 1);
                const RunResult parallel =
                    runOrgCell(wl, kind, axes, 8);
                expectIdentical(serial, parallel, label);
                EXPECT_EQ(serial.latSamples, parallel.latSamples)
                    << label;
            }
        }
    }
}

/**
 * BlockHammer opts out of concurrent channel queries
 * (concurrentChannelQueriesSafe() == false), so the controller must
 * fall back to its serial loop — requesting workers still changes
 * nothing.
 */
TEST(EventLoop, ChannelParallelMatchesSerialWithBlockHammer)
{
    SystemAxes axes;
    dramOrgFromName("4x1x16", axes);
    const RunResult serial =
        runOrgCell("gups", MitigationKind::BlockHammer, axes, 1);
    const RunResult parallel =
        runOrgCell("gups", MitigationKind::BlockHammer, axes, 8);
    expectIdentical(serial, parallel, "gups/blockhammer/org=4x1x16");
}

/**
 * The same invariance one layer up: a sweep over an org axis emits
 * byte-identical CSV whatever --channel-workers is, exactly like
 * --threads.
 */
TEST(EventLoop, SweepCsvBytesMatchAtAnyChannelWorkerCount)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups")};
    grid.mitigations = {MitigationKind::Srs, MitigationKind::ScaleSrs};
    grid.orgs = {"1x1x16", "2x1x16", "4x2x32"};
    grid.trhs = {1200};
    grid.swapRates = {6};

    ExperimentConfig exp;
    exp.cycles = 60'000;
    exp.epochLen = 25'000;

    std::string csv[2];
    const std::uint32_t workerCounts[] = {1, 8};
    for (int w = 0; w < 2; ++w) {
        exp.channelWorkers = workerCounts[w];
        SweepRunner runner(exp, 2);
        const std::vector<SweepResult> results = runner.run(grid);
        std::ostringstream os;
        SweepRunner::writeCsv(os, results);
        csv[w] = os.str();
    }
    EXPECT_EQ(csv[0], csv[1]);
    // The org spelling really is part of cell identity.
    EXPECT_NE(csv[0].find("@org=4x2x32"), std::string::npos);
}

TEST(EventLoop, SweepCsvBytesMatchReferenceAtAnyThreadCount)
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Srs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {6};

    ExperimentConfig exp;
    exp.cycles = 60'000;
    exp.epochLen = 25'000;

    std::string csv[2][2];   // [referenceLoop][threads index]
    for (int refLoop = 0; refLoop < 2; ++refLoop) {
        exp.referenceLoop = refLoop == 1;
        const std::size_t threadCounts[] = {1, 8};
        for (int t = 0; t < 2; ++t) {
            SweepRunner runner(exp, threadCounts[t]);
            const std::vector<SweepResult> results = runner.run(grid);
            std::ostringstream os;
            SweepRunner::writeCsv(os, results);
            csv[refLoop][t] = os.str();
        }
    }
    EXPECT_EQ(csv[0][0], csv[0][1]);   // event: threads don't matter
    EXPECT_EQ(csv[1][0], csv[1][1]);   // reference: threads don't matter
    EXPECT_EQ(csv[0][0], csv[1][0]);   // loops emit identical bytes
}

} // namespace
} // namespace srs
