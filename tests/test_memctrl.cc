/**
 * @file
 * Unit tests for the memory controller: request flow, scheduling,
 * refresh, write draining, migration jobs and the mitigation hooks.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hh"
#include "common/logging.hh"
#include "memctrl/controller.hh"

namespace srs
{
namespace
{

struct CtrlFixture : public ::testing::Test
{
    CtrlFixture()
        : timing(DramTiming::fromNs(DramTimingNs{})),
          ctrl(org, timing), map(org)
    {
        ctrl.setReadCallback([this](const MemRequest &req) {
            completed.push_back(req);
        });
    }

    /** Tick the controller up to @p until (bus-clock granularity). */
    void
    runUntil(Cycle until)
    {
        for (; now < until; now += timing.busClock)
            ctrl.tick(now);
    }

    Addr
    addrOf(std::uint32_t ch, std::uint32_t bank, RowId row,
           std::uint32_t col = 0)
    {
        DramCoord c;
        c.channel = ch;
        c.bank = bank;
        c.row = row;
        c.column = col;
        return map.encode(c);
    }

    DramOrg org;
    DramTiming timing;
    MemoryController ctrl;
    AddressMap map;
    std::vector<MemRequest> completed;
    Cycle now = 0;
};

TEST_F(CtrlFixture, SingleReadCompletes)
{
    ctrl.enqueue(addrOf(0, 0, 100), false, 0, 0);
    runUntil(2000);
    ASSERT_EQ(completed.size(), 1u);
    // ACT + tRCD + CAS + tBL is on the order of 100 cycles.
    EXPECT_LT(completed[0].completion, 200u);
    EXPECT_EQ(ctrl.stats().get("activations"), 1u);
}

TEST_F(CtrlFixture, SameRowReadsCoalesceIntoOneActivation)
{
    for (std::uint32_t col = 0; col < 8; ++col)
        ctrl.enqueue(addrOf(0, 0, 100, col), false, 0, 0);
    runUntil(4000);
    EXPECT_EQ(completed.size(), 8u);
    EXPECT_EQ(ctrl.stats().get("activations"), 1u);
    EXPECT_EQ(ctrl.stats().get("row_hits"), 8u);
}

TEST_F(CtrlFixture, DifferentRowsConflictAndReactivate)
{
    ctrl.enqueue(addrOf(0, 0, 100), false, 0, 0);
    ctrl.enqueue(addrOf(0, 0, 200), false, 0, 0);
    runUntil(4000);
    EXPECT_EQ(completed.size(), 2u);
    EXPECT_EQ(ctrl.stats().get("activations"), 2u);
}

TEST_F(CtrlFixture, BanksOperateInParallel)
{
    for (std::uint32_t b = 0; b < 8; ++b)
        ctrl.enqueue(addrOf(0, b, 100), false, 0, 0);
    runUntil(4000);
    EXPECT_EQ(completed.size(), 8u);
    // All eight finish well before eight serialized tRC windows.
    Cycle last = 0;
    for (const auto &req : completed)
        last = std::max(last, req.completion);
    EXPECT_LT(last, 8 * timing.tRC);
}

TEST_F(CtrlFixture, ReadForwardsFromWriteQueue)
{
    const Addr a = addrOf(1, 3, 50, 7);
    ctrl.enqueue(a, true, 0, 0);
    ctrl.enqueue(a, false, 0, 0);
    runUntil(200);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(ctrl.stats().get("reads_forwarded"), 1u);
}

TEST_F(CtrlFixture, WritesDrainEventually)
{
    for (std::uint32_t i = 0; i < 20; ++i)
        ctrl.enqueue(addrOf(0, i % 16, 10 + i), true, 0, 0);
    runUntil(20000);
    EXPECT_EQ(ctrl.stats().get("writes_issued"), 20u);
    EXPECT_TRUE(ctrl.idle(now));
}

TEST_F(CtrlFixture, RefreshHappensEveryTrefi)
{
    runUntil(timing.tREFI * 10);
    // Two channels x one rank, ~9-10 refreshes each.
    const std::uint64_t refreshes = ctrl.stats().get("refreshes");
    EXPECT_GE(refreshes, 16u);
    EXPECT_LE(refreshes, 20u);
}

TEST_F(CtrlFixture, QueueCapacityIsEnforced)
{
    const MemCtrlConfig cfg;
    std::uint32_t accepted = 0;
    for (std::uint32_t i = 0; i < cfg.readQueueDepth + 10; ++i) {
        if (ctrl.canAccept(addrOf(0, 0, i), false)) {
            ctrl.enqueue(addrOf(0, 0, i), false, 0, 0);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, cfg.readQueueDepth);
}

TEST_F(CtrlFixture, MigrationBlocksBankAndChargesRows)
{
    MigrationJob job;
    job.kind = MigrationJob::Kind::Swap;
    job.duration = 5000;
    job.charges.push_back(RowCharge{42, 1});
    job.charges.push_back(RowCharge{77, 2});
    ctrl.scheduleMigration(0, 0, job);
    ctrl.enqueue(addrOf(0, 0, 42), false, 0, 0);
    runUntil(1000);
    // The demand read waits behind the migration.
    EXPECT_TRUE(completed.empty());
    EXPECT_TRUE(ctrl.bankAt(0, 0).blocked(now));
    runUntil(8000);
    EXPECT_EQ(completed.size(), 1u);
    // Charges: 1 + 2 latent plus the demand activation of row 42.
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(42), 2u);
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(77), 2u);
    EXPECT_EQ(ctrl.stats().get("latent_activations"), 3u);
    EXPECT_EQ(ctrl.stats().get("mig_started_swap"), 1u);
}

TEST_F(CtrlFixture, MigrationDoesNotBlockOtherBanks)
{
    MigrationJob job;
    job.kind = MigrationJob::Kind::Swap;
    job.duration = 20000;
    ctrl.scheduleMigration(0, 0, job);
    ctrl.enqueue(addrOf(0, 1, 42), false, 0, 0);
    runUntil(2000);
    EXPECT_EQ(completed.size(), 1u);
}

TEST_F(CtrlFixture, PendingMigrationsAreCounted)
{
    MigrationJob job;
    job.duration = 100000;
    ctrl.scheduleMigration(0, 5, job);
    ctrl.scheduleMigration(0, 5, job);
    EXPECT_EQ(ctrl.pendingMigrations(0, 5), 2u);
    runUntil(10);
    EXPECT_EQ(ctrl.pendingMigrations(0, 5), 1u); // one started
}

/** Listener that remaps one logical row and records activations. */
struct TestListener : public MemCtrlListener
{
    RowId
    remapRow(std::uint32_t, std::uint32_t, RowId logical) override
    {
        return logical == 100 ? 5000 : logical;
    }

    void
    onActivate(std::uint32_t, std::uint32_t, RowId physRow,
               Cycle) override
    {
        activations.push_back(physRow);
    }

    std::vector<RowId> activations;
};

TEST_F(CtrlFixture, ListenerRemapAndObserve)
{
    TestListener listener;
    ctrl.setListener(&listener);
    ctrl.enqueue(addrOf(0, 0, 100), false, 0, 0);
    ctrl.enqueue(addrOf(0, 0, 200), false, 0, 0);
    runUntil(2000);
    ASSERT_EQ(completed.size(), 2u);
    ASSERT_EQ(listener.activations.size(), 2u);
    // Logical 100 activated at physical 5000.
    EXPECT_TRUE((listener.activations[0] == 5000 &&
                 listener.activations[1] == 200) ||
                (listener.activations[0] == 200 &&
                 listener.activations[1] == 5000));
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(5000), 1u);
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(100), 0u);
}

TEST_F(CtrlFixture, EpochResetClearsBankCounters)
{
    ctrl.enqueue(addrOf(0, 0, 100), false, 0, 0);
    runUntil(1000);
    EXPECT_GT(ctrl.bankAt(0, 0).totalActivations(), 0u);
    ctrl.resetEpochCounters();
    EXPECT_EQ(ctrl.bankAt(0, 0).totalActivations(), 0u);
}

TEST_F(CtrlFixture, IdleReportsCorrectly)
{
    EXPECT_TRUE(ctrl.idle(0));
    ctrl.enqueue(addrOf(0, 0, 100), false, 0, 0);
    EXPECT_FALSE(ctrl.idle(0));
    runUntil(2000);
    EXPECT_TRUE(ctrl.idle(now));
}

TEST_F(CtrlFixture, RandomTrafficSustainsThroughput)
{
    // Regression guard for the write-hit scheduling deadlock: random
    // mixed traffic must sustain healthy throughput.
    Rng rng(7);
    std::uint64_t enqueued = 0;
    for (Cycle c = 0; c < 200000; c += timing.busClock) {
        while (enqueued - completed.size() < 12) {
            const Addr a = addrOf(rng.nextBelow(2) & 1,
                                  static_cast<std::uint32_t>(
                                      rng.nextBelow(16)),
                                  static_cast<RowId>(
                                      rng.nextBelow(512)),
                                  static_cast<std::uint32_t>(
                                      rng.nextBelow(128)));
            const bool isWrite = rng.nextBool(0.3);
            if (!ctrl.canAccept(a, isWrite))
                break;
            ctrl.enqueue(a, isWrite, 0, c);
            if (!isWrite)
                ++enqueued;
        }
        ctrl.tick(c);
    }
    // ~200K cycles at worst-case tRC-bound service of ~12 banks in
    // flight must complete thousands of reads, not hundreds.
    EXPECT_GT(completed.size(), 5000u);
}

TEST(MemCtrlConfig, WatermarksValidated)
{
    DramOrg org;
    const DramTiming t = DramTiming::fromNs(DramTimingNs{});
    MemCtrlConfig cfg;
    cfg.writeHiWatermark = 8;
    cfg.writeLoWatermark = 8;
    EXPECT_THROW(MemoryController(org, t, cfg), FatalError);
}

TEST(MigrationKind, Names)
{
    EXPECT_STREQ(migrationKindName(MigrationJob::Kind::Swap), "swap");
    EXPECT_STREQ(migrationKindName(MigrationJob::Kind::UnswapSwap),
                 "unswap_swap");
    EXPECT_STREQ(migrationKindName(MigrationJob::Kind::PlaceBack),
                 "place_back");
    EXPECT_STREQ(migrationKindName(MigrationJob::Kind::CounterAccess),
                 "counter_access");
}


// ---------------------------------------------------------------------
// Throttle hook (BlockHammer's controller interface).
// ---------------------------------------------------------------------

/** Listener that forbids ACTs of one row until a given cycle. */
struct ThrottleListener : public MemCtrlListener
{
    RowId row = kInvalidRow;
    Cycle until = 0;
    std::uint64_t queries = 0;

    Cycle
    actAllowedAt(std::uint32_t, std::uint32_t, RowId physRow,
                 Cycle) override
    {
        ++queries;
        return physRow == row ? until : 0;
    }
};

TEST(ControllerThrottle, ThrottledRowWaitsOthersProceed)
{
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    MemoryController ctrl(org, timing);
    ThrottleListener listener;
    const AddressMap &map = ctrl.addressMap();

    // Two reads to different rows of the same bank; row 50 throttled.
    const Addr throttled = map.rowBaseAddr(0, 0, 0, 50);
    const Addr free = map.rowBaseAddr(0, 0, 0, 60);
    listener.row = 50;
    listener.until = 1'000'000;
    ctrl.setListener(&listener);

    std::vector<Addr> done;
    ctrl.setReadCallback([&done](const MemRequest &req) {
        done.push_back(req.addr);
    });
    ctrl.enqueue(throttled, false, 0, 0);
    ctrl.enqueue(free, false, 0, 0);

    Cycle now = 0;
    while (done.size() < 1 && now < 100'000) {
        ctrl.tick(now);
        now += timing.busClock;
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], free);
    EXPECT_GT(listener.queries, 0u);
    EXPECT_GT(ctrl.stats().get("p2_skip_throttled"), 0u);

    // Release the throttle: the stalled request now completes.
    listener.until = 0;
    while (done.size() < 2 && now < 300'000) {
        ctrl.tick(now);
        now += timing.busClock;
    }
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1], throttled);
}

TEST(ControllerThrottle, RowHitsBypassThrottle)
{
    // Throttling gates ACTs only; an already-open row's hits flow
    // (matches BlockHammer: the damage vector is the activation).
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    MemCtrlConfig cfg;
    cfg.pagePolicy = PagePolicy::Open;
    MemoryController ctrl(org, timing, cfg);
    ThrottleListener listener;
    const AddressMap &map = ctrl.addressMap();
    const Addr rowBase = map.rowBaseAddr(0, 0, 0, 50);

    std::uint32_t done = 0;
    ctrl.setReadCallback([&done](const MemRequest &) { ++done; });

    // First access opens the row (no throttle yet).
    ctrl.enqueue(rowBase, false, 0, 0);
    Cycle now = 0;
    while (done < 1 && now < 100'000) {
        ctrl.tick(now);
        now += timing.busClock;
    }
    ASSERT_EQ(done, 1u);

    // Throttle the row, then issue a second access to another
    // column: it is a row hit and must complete anyway.
    listener.row = 50;
    listener.until = 10'000'000;
    ctrl.setListener(&listener);
    ctrl.enqueue(rowBase + 64, false, 0, now);
    const Cycle limit = now + 100'000;
    while (done < 2 && now < limit) {
        ctrl.tick(now);
        now += timing.busClock;
    }
    EXPECT_EQ(done, 2u);
}

TEST(ForwardingReject, ForwardEligibleReadAcceptedWhenReadQueueFull)
{
    // Regression: canAccept() used to check read-queue capacity
    // before forwarding eligibility, so a read that would have been
    // served straight from a queued write was rejected — and the
    // issuing core stalled — whenever the read queue was full.
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    MemCtrlConfig cfg;
    cfg.readQueueDepth = 2;
    MemoryController ctrl(org, timing, cfg);
    const AddressMap &map = ctrl.addressMap();

    std::vector<Addr> done;
    ctrl.setReadCallback([&done](const MemRequest &req) {
        done.push_back(req.addr);
    });

    const Addr written = map.rowBaseAddr(0, 0, 0, 50);
    ctrl.enqueue(written, true, 0, 0);
    for (RowId row = 60; row < 62; ++row)
        ctrl.enqueue(map.rowBaseAddr(0, 0, 0, row), false, 0, 0);

    // The queue is full: an unrelated read is rejected...
    EXPECT_FALSE(ctrl.canAccept(map.rowBaseAddr(0, 0, 0, 70), false));
    // ...but a read of the queued write's line is forward-eligible
    // and must be accepted regardless of capacity.
    EXPECT_TRUE(ctrl.canAccept(written, false));
    const std::uint64_t id = ctrl.enqueue(written, false, 0, 0);
    EXPECT_NE(id, std::numeric_limits<std::uint64_t>::max());

    Cycle now = 0;
    while (done.empty() && now < 10'000) {
        ctrl.tick(now);
        now += timing.busClock;
    }
    ASSERT_FALSE(done.empty());
    EXPECT_EQ(done[0], written);
    EXPECT_EQ(ctrl.stats().get("reads_forwarded"), 1u);
}

} // namespace
} // namespace srs
