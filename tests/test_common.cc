/**
 * @file
 * Unit tests for the common substrate: logging, RNG, log-space
 * combinatorics and statistics containers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include <cmath>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/mathutil.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace srs
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, FatalMessagePreserved)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBelow(8)];
    for (int count : seen)
        EXPECT_GT(count, 800); // each bucket near 1000
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(17);
    double sum = 0.0;
    const double lambda = 4.2;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.nextPoisson(lambda));
    EXPECT_NEAR(sum / 20000.0, lambda, 0.1);
}

TEST(Rng, PoissonZeroLambda)
{
    Rng rng(19);
    EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(Rng, BinomialSmallExact)
{
    Rng rng(23);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.nextBinomial(20, 0.25));
    EXPECT_NEAR(sum / 20000.0, 5.0, 0.1);
}

TEST(Rng, BinomialPoissonRegimeMean)
{
    Rng rng(29);
    // The random-guess landing regime: huge n, tiny p.
    const std::uint64_t n = 100000;
    const double p = 1.0 / 131072.0;
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.nextBinomial(n, p));
    EXPECT_NEAR(sum / 20000.0, n * p, 0.02);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(31);
    EXPECT_EQ(rng.nextBinomial(0, 0.5), 0u);
    EXPECT_EQ(rng.nextBinomial(10, 0.0), 0u);
    EXPECT_EQ(rng.nextBinomial(10, 1.0), 10u);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(37);
    const double p = 0.02;
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    EXPECT_NEAR(sum / 20000.0, 1.0 / p, 2.0);
}

TEST(Rng, GeometricCertainty)
{
    Rng rng(41);
    EXPECT_EQ(rng.nextGeometric(1.0), 1u);
}

TEST(MathUtil, LogFactorialSmallValues)
{
    EXPECT_NEAR(logFactorial(0), 0.0, 1e-12);
    EXPECT_NEAR(logFactorial(1), 0.0, 1e-12);
    EXPECT_NEAR(logFactorial(5), std::log(120.0), 1e-9);
}

TEST(MathUtil, BinomialCoeffMatchesPascal)
{
    EXPECT_NEAR(std::exp(logBinomialCoeff(5, 2)), 10.0, 1e-6);
    EXPECT_NEAR(std::exp(logBinomialCoeff(10, 5)), 252.0, 1e-6);
    EXPECT_EQ(logBinomialCoeff(3, 5),
              -std::numeric_limits<double>::infinity());
}

TEST(MathUtil, BinomialPmfSumsToOne)
{
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k)
        total += binomialPmf(30, k, 0.37);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathUtil, BinomialPmfDegenerate)
{
    EXPECT_DOUBLE_EQ(binomialPmf(10, 0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(10, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(binomialPmf(10, 10, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(10, 12, 0.5), 0.0);
}

TEST(MathUtil, BinomialSfMatchesDirectSum)
{
    const std::uint64_t n = 40;
    const double p = 0.2;
    for (std::uint64_t k : {0ULL, 1ULL, 5ULL, 12ULL}) {
        double direct = 0.0;
        for (std::uint64_t i = k; i <= n; ++i)
            direct += binomialPmf(n, i, p);
        EXPECT_NEAR(binomialSf(n, k, p), direct, 1e-9);
    }
}

TEST(MathUtil, BinomialPmfAttackRegime)
{
    // The paper's Eq. 8 at T_RH 4800 / N 1100: G ~ 400 guesses over
    // 128K rows needing k = 2 hits; probability ~ (G/R)^2 / 2.
    const double p = binomialPmf(400, 2, 1.0 / 131072.0);
    const double lambda = 400.0 / 131072.0;
    const double poissonApprox = lambda * lambda / 2.0 * std::exp(-lambda);
    EXPECT_NEAR(p / poissonApprox, 1.0, 0.01);
}

TEST(MathUtil, PoissonPmfSums)
{
    double total = 0.0;
    for (std::uint64_t k = 0; k < 100; ++k)
        total += poissonPmf(k, 6.5);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathUtil, PoissonSfTinyTail)
{
    // Deep-tail survival must stay positive and finite.
    const double sf = poissonSf(10, 0.006);
    EXPECT_GT(sf, 0.0);
    EXPECT_LT(sf, 1e-15);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 100), 1u);
}

TEST(MathUtil, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(5), 8u);
    EXPECT_EQ(nextPowerOfTwo(4096), 4096u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(131072), 17u);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndMax)
{
    Histogram h;
    h.add(3);
    h.add(3);
    h.add(7, 5);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.countOf(3), 2u);
    EXPECT_EQ(h.countOf(7), 5u);
    EXPECT_EQ(h.countOf(42), 0u);
    EXPECT_EQ(h.maxKey(), 7u);
}

TEST(LatencyHistogram, SmallValuesHaveExactBuckets)
{
    // Values below 16 land in unit-wide buckets, so every quantile
    // of a small-value stream is exact.
    LatencyHistogram h;
    for (std::uint64_t v : {1, 1, 2, 3, 4, 4, 4, 5, 9, 15})
        h.add(v);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.quantilePermille(100), 1u);
    EXPECT_EQ(h.quantilePermille(500), 4u);
    EXPECT_EQ(h.quantilePermille(900), 9u);
    EXPECT_EQ(h.quantilePermille(990), 15u);
    EXPECT_EQ(h.quantilePermille(999), 15u);
    EXPECT_EQ(h.quantilePermille(1000), 15u);
}

TEST(LatencyHistogram, BucketBoundariesAtTheOctaveEdges)
{
    // The exact range ends at 15; 16 opens the first sub-bucketed
    // octave, whose 8 buckets cover [16,17]..[30,31].
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(15), 15u);
    EXPECT_EQ(LatencyHistogram::bucketOf(16), 16u);
    EXPECT_EQ(LatencyHistogram::bucketOf(17), 16u);
    EXPECT_EQ(LatencyHistogram::bucketOf(18), 17u);
    EXPECT_EQ(LatencyHistogram::bucketOf(31), 23u);
    EXPECT_EQ(LatencyHistogram::bucketOf(32), 24u);
    // Every bucket's upper bound maps back into that bucket, and the
    // next value starts the next bucket (the buckets tile the axis).
    for (std::uint32_t b = 0;
         b + 1 < LatencyHistogram::kBucketCount; ++b) {
        const std::uint64_t hi = LatencyHistogram::bucketUpperBound(b);
        EXPECT_EQ(LatencyHistogram::bucketOf(hi), b) << "bucket " << b;
        EXPECT_EQ(LatencyHistogram::bucketOf(hi + 1), b + 1)
            << "bucket " << b;
    }
    EXPECT_EQ(LatencyHistogram::bucketOf(
                  std::numeric_limits<std::uint64_t>::max()),
              LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogram, QuantilesReportBucketUpperBounds)
{
    // Above the exact range a quantile reports its bucket's upper
    // bound — deterministic and conservative (never understates).
    LatencyHistogram h;
    h.add(100, 10);
    const std::uint64_t bound = LatencyHistogram::bucketUpperBound(
        LatencyHistogram::bucketOf(100));
    EXPECT_GE(bound, 100u);
    EXPECT_EQ(h.quantilePermille(500), bound);
    EXPECT_EQ(h.quantilePermille(999), bound);
}

TEST(LatencyHistogram, MergeEqualsConcatenatedStream)
{
    // merge() is exactly stream concatenation: per-core and
    // per-shard histograms combine into the bytes a single-threaded
    // run would have produced — the invariance the CSV percentile
    // columns rely on.
    LatencyHistogram all, a, b;
    Rng rng(0x1a7e);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.nextBelow(1u << 20);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    LatencyHistogram ab = a;
    ab.merge(b);
    LatencyHistogram ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, all);
    EXPECT_EQ(ba, all);
    EXPECT_EQ(ab.quantilePermille(990), all.quantilePermille(990));
    EXPECT_NE(a, all);
}

TEST(LatencyHistogram, EmptyIsSafeAndEqualityIsStructural)
{
    LatencyHistogram empty;
    EXPECT_EQ(empty.total(), 0u);
    EXPECT_EQ(empty.quantilePermille(500), 0u);
    LatencyHistogram one;
    one.add(0);
    EXPECT_NE(empty, one);
    EXPECT_EQ(one.quantilePermille(500), 0u);
}

TEST(StatSet, IncSetGetDump)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    s.set("b", 9);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("b"), 9u);
    EXPECT_EQ(s.get("missing"), 0u);
    EXPECT_NE(s.dump().find("a = 5"), std::string::npos);
}


// ---------------------------------------------------------------------
// Options parsing.
// ---------------------------------------------------------------------

TEST(Options, ParsesArgsFlagsAndPositional)
{
    const char *argv[] = {"prog", "perf", "--trh=1200",
                          "--csv", "--rate=3", "extra"};
    Options o = Options::fromArgs(6, argv);
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "perf");
    EXPECT_EQ(o.positional()[1], "extra");
    EXPECT_EQ(o.getUint("trh", 0), 1200u);
    EXPECT_EQ(o.getUint("rate", 0), 3u);
    EXPECT_TRUE(o.getBool("csv", false));
    EXPECT_EQ(o.getString("workload", "gcc"), "gcc");
}

TEST(Options, TypedGetterErrors)
{
    const char *argv[] = {"prog", "--trh=abc", "--p=x", "--b=maybe"};
    Options o = Options::fromArgs(4, argv);
    EXPECT_THROW(o.getUint("trh", 0), FatalError);
    EXPECT_THROW(o.getDouble("p", 0.0), FatalError);
    EXPECT_THROW(o.getBool("b", false), FatalError);
}

TEST(Options, RejectUnknownCatchesTypos)
{
    const char *argv[] = {"prog", "--thr=1200"};
    Options o = Options::fromArgs(2, argv);
    o.getUint("trh", 4800); // the real option name
    EXPECT_THROW(o.rejectUnknown(), FatalError);
}

TEST(Options, RejectUnknownPassesWhenAllConsumed)
{
    const char *argv[] = {"prog", "--trh=1200"};
    Options o = Options::fromArgs(2, argv);
    o.getUint("trh", 4800);
    EXPECT_NO_THROW(o.rejectUnknown());
}

TEST(Options, FileParsing)
{
    const std::string path = ::testing::TempDir() + "srs_opts.cfg";
    {
        std::ofstream out(path);
        out << "# experiment config\n"
            << "trh = 2400\n"
            << "workload=hmmer   # inline comment\n"
            << "\n"
            << "pin = true\n";
    }
    Options o = Options::fromFile(path);
    EXPECT_EQ(o.getUint("trh", 0), 2400u);
    EXPECT_EQ(o.getString("workload", ""), "hmmer");
    EXPECT_TRUE(o.getBool("pin", false));
    std::remove(path.c_str());
}

TEST(Options, FileErrors)
{
    EXPECT_THROW(Options::fromFile("/nonexistent/x.cfg"), FatalError);
    const std::string path = ::testing::TempDir() + "srs_bad.cfg";
    {
        std::ofstream out(path);
        out << "just a word\n";
    }
    EXPECT_THROW(Options::fromFile(path), FatalError);
    std::remove(path.c_str());
}

TEST(Options, SetOverrides)
{
    Options o;
    o.set("trh", "512");
    EXPECT_EQ(o.getUint("trh", 0), 512u);
    o.set("trh", "1200");
    EXPECT_EQ(o.getUint("trh", 0), 1200u);
}

} // namespace
} // namespace srs
