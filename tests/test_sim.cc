/**
 * @file
 * Integration tests for the full system: baseline execution, the
 * Juggernaut access pattern end-to-end against RRS vs SRS (the
 * paper's central security claim, observed in the activation ground
 * truth), Scale-SRS LLC pinning, and the experiment harness.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/attack.hh"
#include "trace/synthetic.hh"

namespace srs
{
namespace
{

ExperimentConfig
quickExp()
{
    ExperimentConfig exp;
    exp.cycles = 400'000;
    exp.epochLen = 800'000;
    return exp;
}

SystemConfig
attackConfig(MitigationKind kind, std::uint32_t trh = 600,
             std::uint32_t rate = 6)
{
    ExperimentConfig exp = quickExp();
    SystemConfig cfg = makeSystemConfig(exp, kind, trh, rate);
    cfg.numCores = 1;
    cfg.srsCfg.modelCounterTraffic = false;
    return cfg;
}

/**
 * Run an attacker trace for @p cycles and return the final
 * activation ground truth at the aggressor's home slot.
 */
struct AttackOutcome
{
    std::uint64_t homeActs;
    std::uint64_t maxActs;
    std::uint64_t swaps;
    std::uint64_t unswapSwaps;
};

AttackOutcome
runAttack(MitigationKind kind, RowId aggressor, Cycle cycles)
{
    SystemConfig cfg = attackConfig(kind);
    System sys(cfg);
    // A hammer on the logical aggressor follows it through swaps and
    // keeps forcing mitigations — the Juggernaut biasing phase.
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0,
                        aggressor));
    sys.run(cycles);
    AttackOutcome out;
    out.homeActs =
        sys.controller().bankAt(0, 0).activationsOf(aggressor);
    out.maxActs = sys.maxEpochActivations();
    out.swaps = sys.mitigation().stats().get("swaps");
    out.unswapSwaps = sys.mitigation().stats().get("unswap_swaps");
    return out;
}

TEST(SystemIntegration, BaselineRunsAndRetires)
{
    ExperimentConfig exp = quickExp();
    SystemConfig cfg = makeSystemConfig(exp, MitigationKind::None,
                                        1200, 6);
    const RunResult r =
        runWorkload(cfg, profileByName("streamcluster"), exp);
    EXPECT_GT(r.aggregateIpc, 0.5);
    EXPECT_EQ(r.swaps, 0u);
    EXPECT_EQ(r.latentActivations, 0u);
}

TEST(SystemIntegration, HammerWithoutMitigationCrossesTrh)
{
    const AttackOutcome out =
        runAttack(MitigationKind::None, 5000, 400'000);
    // An unprotected bank lets the hammer exceed T_RH = 600 easily.
    EXPECT_GT(out.homeActs, 600u);
    EXPECT_EQ(out.swaps, 0u);
}

TEST(SystemIntegration, RrsAccumulatesLatentBiasAtHomeSlot)
{
    const AttackOutcome rrs =
        runAttack(MitigationKind::Rrs, 5000, 400'000);
    // Mitigation engaged and kept unswap-swapping the aggressor.
    EXPECT_GT(rrs.swaps, 0u);
    EXPECT_GT(rrs.unswapSwaps, 2u);
    // Home slot: ~T_S demand acts + latent acts per round.
    EXPECT_GT(rrs.homeActs, 100u + rrs.unswapSwaps);
}

TEST(SystemIntegration, SrsCapsHomeSlotActivations)
{
    const AttackOutcome srs =
        runAttack(MitigationKind::Srs, 5000, 400'000);
    EXPECT_GT(srs.swaps, 2u);
    EXPECT_EQ(srs.unswapSwaps, 0u);
    // Equation 11: home slot stays near T_S (+1 initial latent),
    // no matter how long the attack runs.
    EXPECT_LE(srs.homeActs, 100u + 2u);
}

TEST(SystemIntegration, SrsStrictlySaferThanRrsUnderJuggernaut)
{
    const AttackOutcome rrs =
        runAttack(MitigationKind::Rrs, 5000, 400'000);
    const AttackOutcome srs =
        runAttack(MitigationKind::Srs, 5000, 400'000);
    EXPECT_GT(rrs.homeActs, srs.homeActs);
}

TEST(SystemIntegration, JuggernautTraceDrivesBothPhases)
{
    SystemConfig cfg = attackConfig(MitigationKind::Rrs);
    System sys(cfg);
    auto trace = std::make_unique<JuggernautTrace>(
        sys.controller().addressMap(), 0, 0, 5000, cfg.mit.ts(), 5,
        99);
    JuggernautTrace *probe = trace.get();
    sys.setTrace(0, std::move(trace));
    sys.run(800'000);
    EXPECT_TRUE(probe->guessing());
    EXPECT_GT(probe->guessesMade(), 3u);
    EXPECT_GT(sys.mitigation().stats().get("mitigations"), 5u);
}

TEST(SystemIntegration, ScaleSrsPinsAndAbsorbsOutlier)
{
    // Repeatedly hammering the same logical row makes its physical
    // slot... move; instead hammer the same slot's residents via the
    // counter path: at swap rate 6 with outlierSwaps = 1 the very
    // first crossing pins the row — that exercises the full
    // pin path (detector -> pin-buffer -> absorbed accesses).
    SystemConfig cfg = attackConfig(MitigationKind::ScaleSrs);
    cfg.scaleCfg.outlierSwaps = 1;
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 5000));
    sys.run(400'000);
    EXPECT_GE(sys.mitigation().stats().get("rows_pinned"), 1u);
    EXPECT_GT(sys.stats().get("pinned_absorbed"), 0u);
    // Once pinned, the aggressor's slot stops accumulating: far
    // below what the unprotected run reached.
    EXPECT_LT(sys.maxEpochActivations(), 2000u);
}

TEST(SystemIntegration, EpochBoundariesFireAndUnpin)
{
    SystemConfig cfg = attackConfig(MitigationKind::ScaleSrs);
    cfg.scaleCfg.outlierSwaps = 1;
    cfg.epochLen = 100'000;
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 5000));
    sys.run(450'000);
    EXPECT_EQ(sys.epochsCompleted(), 4u);
    // Pins are cleared at each refresh boundary and re-established
    // when the attack persists.
    EXPECT_GT(sys.stats().get("pinned_rows_restored"), 0u);
}

TEST(SystemIntegration, MitigationsSlowDownAttackThroughput)
{
    // Swap busy-time must cost the attacker throughput: the
    // protected run completes fewer demand activations.
    const AttackOutcome none =
        runAttack(MitigationKind::None, 5000, 300'000);
    const AttackOutcome rrs =
        runAttack(MitigationKind::Rrs, 5000, 300'000);
    EXPECT_LT(rrs.maxActs, none.maxActs);
}

TEST(SystemIntegration, HydraTrackerDrivesMitigations)
{
    SystemConfig cfg = attackConfig(MitigationKind::Srs);
    cfg.tracker = TrackerKind::Hydra;
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 5000));
    sys.run(300'000);
    EXPECT_GT(sys.mitigation().stats().get("mitigations"), 0u);
    // Hydra's RCT traffic appears as counter accesses.
    EXPECT_GT(sys.controller().stats().get(
                  "mig_started_counter_access"), 0u);
}

TEST(SystemIntegration, FullLlcModeFiltersTraffic)
{
    ExperimentConfig exp = quickExp();
    SystemConfig cfg = makeSystemConfig(exp, MitigationKind::None,
                                        1200, 6);
    cfg.modelLlc = true;
    const RunResult r = runWorkload(cfg, profileByName("hmmer"), exp);
    EXPECT_GT(r.aggregateIpc, 0.0);
}


// ---------------------------------------------------------------------
// Related-work defenses through the full System stack.
// ---------------------------------------------------------------------

TEST(SystemIntegration, BlockHammerThrottlesHammerStream)
{
    // Under BlockHammer the hammered row gets blacklisted; the
    // controller then spaces its ACTs, so the ground-truth count
    // stays bounded while a baseline run blows straight past it.
    SystemConfig cfg = attackConfig(MitigationKind::BlockHammer);
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 700));
    sys.run(400'000);
    const auto &stats = sys.mitigation().stats();
    EXPECT_GT(stats.get("rows_blacklisted"), 0u);
    EXPECT_GT(stats.get("throttled_acts"), 0u);
    // No row movement ever happens.
    EXPECT_EQ(stats.get("swaps"), 0u);
    EXPECT_EQ(sys.mitigation().indirection(0, 0).entries(), 0u);

    SystemConfig base = attackConfig(MitigationKind::None);
    System unprotected(base);
    unprotected.setTrace(
        0, std::make_unique<HammerTrace>(
               unprotected.controller().addressMap(), 0, 0, 700));
    unprotected.run(400'000);
    EXPECT_LT(sys.controller().bankAt(0, 0).activationsOf(700),
              unprotected.controller().bankAt(0, 0)
                  .activationsOf(700));
}

TEST(SystemIntegration, BlockHammerLeavesBenignTrafficAlone)
{
    SystemConfig cfg = attackConfig(MitigationKind::BlockHammer);
    System sys(cfg);
    sys.setTrace(0, std::make_unique<SyntheticTrace>(
                        profileByName("comm1"),
                        sys.controller().addressMap(), 0, 1));
    sys.run(400'000);
    EXPECT_EQ(sys.mitigation().stats().get("throttled_acts"), 0u);
    EXPECT_GT(sys.aggregateIpc(), 0.0);
}

TEST(SystemIntegration, AquaQuarantinesHammeredRow)
{
    SystemConfig cfg = attackConfig(MitigationKind::Aqua);
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 700));
    sys.run(400'000);
    const auto &stats = sys.mitigation().stats();
    EXPECT_GT(stats.get("quarantine_moves"), 0u);
    // Home-slot ground truth stays close to T_S: the home only sees
    // demand acts before the first migration (plus the move itself).
    const std::uint64_t ts = cfg.mit.ts();
    EXPECT_LE(sys.controller().bankAt(0, 0).activationsOf(700),
              2 * ts + 8);
}

TEST(SystemIntegration, AquaHomeStaysColdLikeSrs)
{
    // AQUA shares the SRS security property (no unswap-swap latent
    // activations at the home slot) and both beat RRS.
    const AttackOutcome aqua =
        runAttack(MitigationKind::Aqua, 700, 400'000);
    const AttackOutcome rrs =
        runAttack(MitigationKind::Rrs, 700, 400'000);
    EXPECT_LT(aqua.homeActs, rrs.homeActs);
}


TEST(SystemIntegration, CbtTrackerDrivesMitigations)
{
    SystemConfig cfg = attackConfig(MitigationKind::Srs);
    cfg.tracker = TrackerKind::Cbt;
    System sys(cfg);
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0, 700));
    sys.run(400'000);
    // The counter tree narrows onto the hammered row and fires; the
    // SRS machinery behind it swaps as usual.
    EXPECT_GT(sys.mitigation().stats().get("mitigations"), 0u);
    EXPECT_GT(sys.mitigation().stats().get("swaps"), 0u);
    EXPECT_STREQ(sys.tracker().name(), "cbt");
}

TEST(ExperimentHarness, NormalizedPerfNearOneForLightWorkload)
{
    ExperimentConfig exp = quickExp();
    const double norm =
        normalizedPerf(exp, MitigationKind::ScaleSrs, 4800, 3,
                       profileByName("swaptions"));
    EXPECT_NEAR(norm, 1.0, 0.02);
}

TEST(ExperimentHarness, RunIsDeterministic)
{
    ExperimentConfig exp = quickExp();
    SystemConfig cfg = makeSystemConfig(exp, MitigationKind::Rrs,
                                        1200, 6);
    const RunResult a = runWorkload(cfg, profileByName("gcc"), exp);
    const RunResult b = runWorkload(cfg, profileByName("gcc"), exp);
    EXPECT_DOUBLE_EQ(a.aggregateIpc, b.aggregateIpc);
    EXPECT_EQ(a.swaps, b.swaps);
}

TEST(ExperimentHarness, MixRunsPerCoreProfiles)
{
    ExperimentConfig exp = quickExp();
    SystemConfig cfg = makeSystemConfig(exp, MitigationKind::None,
                                        1200, 6);
    const RunResult r =
        runWorkloadMix(cfg, mixWorkload(0, cfg.numCores), exp);
    EXPECT_GT(r.aggregateIpc, 0.0);
    EXPECT_EQ(r.coreIpc.size(), cfg.numCores);
}

TEST(ExperimentHarness, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(geoMean({0.5, 2.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(SystemConfigTest, EpochDefaultsTo64ms)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.effectiveEpochLen(),
              nsToCycles(64e6, cfg.timingNs.cpuFreqGHz));
    // ACT_max ~ 1.36 million for the full 64 ms window (paper II-B).
    EXPECT_NEAR(static_cast<double>(cfg.actMaxPerEpoch()), 1.36e6,
                0.05e6);
}

TEST(SystemConfigTest, MitigationNames)
{
    EXPECT_STREQ(mitigationKindName(MitigationKind::None), "baseline");
    EXPECT_STREQ(mitigationKindName(MitigationKind::Rrs), "rrs");
    EXPECT_STREQ(mitigationKindName(MitigationKind::ScaleSrs),
                 "scale-srs");
}

TEST(SystemIntegration, DirtyVictimWritebackNeverSilentlyDropped)
{
    // Regression: in full-LLC mode an access was admitted when the
    // *miss address* had queue space, but the dirty victim it evicts
    // can live on a different (full) channel — its writeback was
    // enqueue()d into a full queue and silently discarded, losing
    // committed stores.  The access must be rejected up front
    // instead, leaving the victim cached and dirty.
    SystemConfig cfg;
    cfg.modelLlc = true;
    System sys(cfg);
    MemoryController &ctrl = sys.controller();
    const AddressMap &map = ctrl.addressMap();
    const SetAssocCache &tags = sys.llc().cache();

    // Addresses that all map to LLC set 0: multiples of
    // lineBytes * numSets.  Order them victim-first with the victim
    // on channel 0, the channel the test saturates.
    const Addr setStride =
        static_cast<Addr>(cfg.llc.lineBytes) * tags.numSets();
    const std::uint32_t ways = cfg.llc.ways;
    std::vector<Addr> fills;
    for (Addr k = 0; fills.size() < ways + 1; ++k) {
        const Addr a = k * setStride;
        if (fills.empty() && map.decode(a).channel != 0)
            continue;
        fills.push_back(a);
    }
    const Addr victim = fills[0];
    const Addr missAddr = fills[ways];

    // Dirty the whole set; the first line written is the LRU victim.
    Cycle lat = 0;
    for (std::uint32_t w = 0; w < ways; ++w)
        sys.access(fills[w], true, 0, w, 0, lat);
    ASSERT_TRUE(tags.contains(victim));

    // Saturate channel 0's write queue.
    std::uint32_t row = 1000;
    while (ctrl.canAccept(map.rowBaseAddr(0, 0, 0, row), true)) {
        ctrl.enqueue(map.rowBaseAddr(0, 0, 0, row), true, 0, 0);
        ++row;
    }

    // The miss itself fits, but the victim's writeback does not:
    // the access must bounce without touching the tags.
    const auto out = sys.access(missAddr, false, 0, 99, 0, lat);
    EXPECT_EQ(out, CoreMemoryInterface::Outcome::Reject);
    EXPECT_EQ(sys.stats().get("writebacks_dropped"), 0u);
    EXPECT_TRUE(tags.contains(victim));
    EXPECT_FALSE(tags.contains(missAddr));

    // Drain the writes; the same access then lands and posts the
    // victim's writeback instead of dropping it.
    Cycle now = 0;
    while (!ctrl.canAccept(map.rowBaseAddr(0, 0, 0, row), true) &&
           now < 1'000'000) {
        ctrl.tick(now);
        now += ctrl.timing().busClock;
    }
    ASSERT_TRUE(ctrl.canAccept(map.rowBaseAddr(0, 0, 0, row), true));
    const auto out2 = sys.access(missAddr, false, 0, 100, now, lat);
    EXPECT_EQ(out2, CoreMemoryInterface::Outcome::Pending);
    EXPECT_EQ(sys.stats().get("writebacks_dropped"), 0u);
    EXPECT_FALSE(tags.contains(victim));
    EXPECT_EQ(sys.llc().stats().get("writebacks"), 0u);
    EXPECT_EQ(sys.llc().cache().stats().get("writebacks"), 1u);
}

} // namespace
} // namespace srs
