/**
 * @file
 * Unit tests for the mitigations: RRS swap/unswap-swap choreography
 * and its latent activations, SRS swap-only behaviour, Scale-SRS
 * outlier pinning, and lazy eviction pacing.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "memctrl/controller.hh"
#include "mitigation/aqua.hh"
#include "mitigation/blockhammer.hh"
#include "mitigation/para.hh"
#include "mitigation/rrs.hh"
#include "mitigation/scale_srs.hh"
#include "mitigation/srs.hh"
#include "tracker/misra_gries.hh"

namespace srs
{
namespace
{

struct MitFixture : public ::testing::Test
{
    MitFixture()
        : timing(DramTiming::fromNs(DramTimingNs{})),
          ctrl(org, timing),
          tracker(trackerConfig())
    {
    }

    static MisraGriesConfig
    trackerConfig()
    {
        MisraGriesConfig cfg;
        cfg.ts = 100;
        cfg.actMaxPerEpoch = 100000;
        return cfg;
    }

    static MitigationConfig
    mitConfig()
    {
        MitigationConfig cfg;
        cfg.trh = 600;
        cfg.swapRate = 6; // ts = 100, matches the tracker
        return cfg;
    }

    /** Feed @p n activations of the row logical @p row through the
     *  mitigation, resolving remap each time like the controller
     *  does, and run migrations to completion. */
    void
    hammer(Mitigation &mit, RowId row, int n)
    {
        for (int i = 0; i < n; ++i) {
            const RowId phys = mit.remapRow(0, 0, row);
            ctrl.bankAt(0, 0).chargeActivation(phys);
            mit.onActivate(0, 0, phys, now);
            drainMigrations();
        }
    }

    void
    drainMigrations()
    {
        // Advance the controller until all queued migrations ran.
        int guard = 0;
        while ((ctrl.pendingMigrations(0, 0) > 0 ||
                ctrl.bankAt(0, 0).blocked(now)) &&
               guard++ < 1000000) {
            ctrl.tick(now);
            now += timing.busClock;
        }
    }

    DramOrg org;
    DramTiming timing;
    MemoryController ctrl;
    MisraGriesTracker tracker;
    Cycle now = 0;
};

TEST_F(MitFixture, RrsFirstCrossingSwaps)
{
    Rrs rrs(ctrl, tracker, mitConfig());
    hammer(rrs, 500, 100);
    EXPECT_EQ(rrs.stats().get("mitigations"), 1u);
    EXPECT_EQ(rrs.stats().get("swaps"), 1u);
    EXPECT_EQ(rrs.stats().get("unswap_swaps"), 0u);
    // Logical row 500 no longer lives in its home slot.
    EXPECT_NE(rrs.indirection(0, 0).remap(500), 500u);
    EXPECT_EQ(rrs.indirection(0, 0).entries(), 2u);
}

TEST_F(MitFixture, RrsSecondCrossingUnswapSwaps)
{
    Rrs rrs(ctrl, tracker, mitConfig());
    hammer(rrs, 500, 200);
    EXPECT_EQ(rrs.stats().get("mitigations"), 2u);
    EXPECT_EQ(rrs.stats().get("swaps"), 1u);
    EXPECT_EQ(rrs.stats().get("unswap_swaps"), 1u);
}

TEST_F(MitFixture, RrsLatentActivationsAccumulateAtHome)
{
    // The heart of the Juggernaut exploit (paper Section II-F):
    // N unswap-swap rounds leave ~1.5 N latent activations at the
    // aggressor's original physical slot.
    Rrs rrs(ctrl, tracker, mitConfig());
    const RowId home = 500;
    const int rounds = 20;
    hammer(rrs, home, 100 * (rounds + 1));
    const std::uint64_t latent =
        ctrl.stats().get("latent_activations");
    // Swap: 2 charges; each unswap-swap: >= 3 charges.
    EXPECT_GE(latent, static_cast<std::uint64_t>(2 + 3 * rounds));
    // Ground truth at the home slot: demand acts landed there only
    // before the first swap (100), the rest is latent bias.
    const std::uint64_t homeActs =
        ctrl.bankAt(0, 0).activationsOf(home);
    EXPECT_GE(homeActs, 100u + rounds); // >= 1 latent per round
    EXPECT_LE(homeActs, 100u + 2u * rounds + 2u);
}

TEST_F(MitFixture, SrsAvoidsLatentAccumulationAtHome)
{
    // Equation 11: with swap-only indirection the home slot sees
    // only the initial-swap latent activation, no matter how many
    // rounds the attacker forces.
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    Srs srs(ctrl, tracker, mitConfig(), srsCfg);
    const RowId home = 500;
    const int rounds = 20;
    hammer(srs, home, 100 * (rounds + 1));
    EXPECT_EQ(srs.stats().get("swaps"),
              static_cast<std::uint64_t>(rounds + 1));
    EXPECT_EQ(srs.stats().get("unswap_swaps"), 0u);
    const std::uint64_t homeActs =
        ctrl.bankAt(0, 0).activationsOf(home);
    EXPECT_LE(homeActs, 100u + 1u);
}

TEST_F(MitFixture, SrsSwapCountersTrackMitigations)
{
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    Srs srs(ctrl, tracker, mitConfig(), srsCfg);
    hammer(srs, 500, 100);
    // One swap at the home slot: counter = ts + 1 latent.
    EXPECT_EQ(srs.counters(0, 0).countOf(500, srs.epochId()), 101u);
}

TEST_F(MitFixture, SrsCounterTrafficOccupiesBank)
{
    Srs srs(ctrl, tracker, mitConfig()); // traffic modelling on
    hammer(srs, 500, 100);
    EXPECT_EQ(ctrl.stats().get("mig_started_counter_access"), 1u);
}

TEST_F(MitFixture, ScaleSrsPinsOutliers)
{
    MitigationConfig cfg = mitConfig();
    cfg.swapRate = 6;
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    ScaleSrsConfig scaleCfg;
    scaleCfg.outlierSwaps = 3;
    ScaleSrs scale(ctrl, tracker, cfg, srsCfg, scaleCfg);
    std::vector<RowId> pinned;
    scale.setPinHook([&](std::uint32_t, std::uint32_t, RowId row) {
        pinned.push_back(row);
        return true;
    });
    // Random-guess attack analogue: keep hammering whatever row sits
    // in the same physical slot so its counter accumulates.
    const RowId slot = 500;
    for (int landing = 0; landing < 3; ++landing) {
        const RowId resident =
            scale.indirection(0, 0).logicalAt(slot);
        hammer(scale, resident, 100);
    }
    EXPECT_GE(scale.stats().get("outliers_detected"), 1u);
    ASSERT_FALSE(pinned.empty());
    EXPECT_GE(scale.stats().get("rows_pinned"), 1u);
}

TEST_F(MitFixture, ScaleSrsNoOutlierForSpreadTraffic)
{
    ScaleSrsConfig scaleCfg;
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    ScaleSrs scale(ctrl, tracker, mitConfig(), srsCfg, scaleCfg);
    int pins = 0;
    scale.setPinHook([&](std::uint32_t, std::uint32_t, RowId) {
        ++pins;
        return true;
    });
    // Different rows crossing once each: no slot accumulates 3 T_S.
    for (RowId row = 1000; row < 1010; ++row)
        hammer(scale, row, 100);
    EXPECT_EQ(pins, 0);
    EXPECT_EQ(scale.stats().get("outliers_detected"), 0u);
}

TEST_F(MitFixture, LazyPlaceBackDrainsStaleEntries)
{
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    Srs srs(ctrl, tracker, mitConfig(), srsCfg);
    hammer(srs, 500, 100);
    hammer(srs, 700, 100);
    EXPECT_GT(srs.indirection(0, 0).entries(), 0u);
    // Epoch turns: stale mappings are placed back, paced over the
    // next epoch.
    srs.onEpochEnd(now, 100000);
    for (int i = 0; i < 200000; ++i) {
        srs.tick(now);
        ctrl.tick(now);
        now += timing.busClock;
    }
    drainMigrations();
    EXPECT_EQ(srs.indirection(0, 0).entries(), 0u);
    EXPECT_GT(srs.stats().get("place_backs"), 0u);
}

TEST_F(MitFixture, RrsNoUnswapChainsThenBurstRestores)
{
    Rrs rrs(ctrl, tracker, mitConfig(), RrsConfig{false});
    hammer(rrs, 500, 300); // three crossings, chained swaps
    EXPECT_EQ(rrs.stats().get("swaps"), 3u);
    EXPECT_EQ(rrs.stats().get("unswap_swaps"), 0u);
    EXPECT_GE(rrs.indirection(0, 0).entries(), 3u);
    rrs.onEpochEnd(now, 100000);
    drainMigrations();
    // The burst restore happens at the boundary (Figure 4's spike).
    EXPECT_GT(rrs.stats().get("burst_restores"), 0u);
    // One more boundary finishes any re-tagged chain remnants.
    rrs.onEpochEnd(now, 100000);
    drainMigrations();
    EXPECT_EQ(rrs.indirection(0, 0).entries(), 0u);
}

TEST_F(MitFixture, EpochRegisterWraps19Bits)
{
    Rrs rrs(ctrl, tracker, mitConfig());
    EXPECT_EQ(rrs.epochId(), 0u);
    rrs.onEpochEnd(now, 1000);
    EXPECT_EQ(rrs.epochId(), 1u);
}

TEST_F(MitFixture, SwapPartnerAvoidsReservedRows)
{
    MitigationConfig cfg = mitConfig();
    cfg.reservedLowRows = 64;
    cfg.seed = 99;
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    Srs srs(ctrl, tracker, cfg, srsCfg);
    for (RowId row = 5000; row < 5040; ++row)
        hammer(srs, row, 100);
    // No partner may land below the reserved counter-row region.
    srs.indirection(0, 0);
    for (RowId phys = 0; phys < 64; ++phys)
        EXPECT_FALSE(srs.indirection(0, 0).displaced(phys));
}

TEST_F(MitFixture, ConfigValidation)
{
    MitigationConfig bad;
    bad.swapRate = 0;
    EXPECT_THROW(Rrs(ctrl, tracker, bad), FatalError);
    MitigationConfig bad2;
    bad2.trh = 3;
    bad2.swapRate = 6;
    EXPECT_THROW(Srs(ctrl, tracker, bad2), FatalError);
}

TEST_F(MitFixture, BaselineDoesNothing)
{
    NoMitigation none(ctrl, tracker, mitConfig());
    hammer(none, 500, 1000);
    EXPECT_EQ(none.stats().get("mitigations"), 10u); // tracked...
    EXPECT_EQ(ctrl.stats().get("latent_activations"), 0u); // ...inert
    EXPECT_EQ(none.remapRow(0, 0, 500), 500u);
}


TEST_F(MitFixture, ParaRefreshesNeighborsProbabilistically)
{
    MitigationConfig cfg = mitConfig();
    ParaConfig pc;
    pc.refreshProbability = 0.1;
    Para para(ctrl, tracker, cfg, pc);
    hammer(para, 500, 2000);
    // ~200 expected lottery wins, each refreshing two neighbors.
    const std::uint64_t refreshes =
        para.stats().get("victim_refreshes");
    EXPECT_GT(refreshes, 250u);
    EXPECT_LT(refreshes, 550u);
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(499) +
                  ctrl.bankAt(0, 0).activationsOf(501),
              refreshes);
}

TEST_F(MitFixture, ParaExposesHalfDoubleLever)
{
    // The paper's motivation (Section II-E): under a victim-focused
    // defense the mitigative refreshes themselves accumulate
    // activations on distance-1 rows — which a half-double attacker
    // exploits against distance-2 victims.  Row swaps avoid this.
    MitigationConfig cfg = mitConfig();
    ParaConfig pc;
    pc.refreshProbability = 0.2;
    Para para(ctrl, tracker, cfg, pc);
    hammer(para, 500, 3000);
    const std::uint64_t neighborActs =
        ctrl.bankAt(0, 0).activationsOf(501);
    EXPECT_GT(neighborActs, 200u); // far beyond T_S = 100

    // Contrast: SRS under the same hammering never biases any
    // specific nearby row (partners are random across the bank).
    MemoryController ctrl2(org, timing);
    MisraGriesTracker tracker2(trackerConfig());
    SrsConfig srsCfg;
    srsCfg.modelCounterTraffic = false;
    Srs srs(ctrl2, tracker2, cfg, srsCfg);
    for (int i = 0; i < 3000; ++i) {
        const RowId phys = srs.remapRow(0, 0, 500);
        ctrl2.bankAt(0, 0).chargeActivation(phys);
        srs.onActivate(0, 0, phys, 0);
    }
    EXPECT_LT(ctrl2.bankAt(0, 0).activationsOf(501), 110u);
}

TEST_F(MitFixture, ParaBlastRadiusTwo)
{
    MitigationConfig cfg = mitConfig();
    ParaConfig pc;
    pc.refreshProbability = 1.0; // deterministic for the test
    pc.blastRadius = 2;
    Para para(ctrl, tracker, cfg, pc);
    hammer(para, 500, 10);
    for (const RowId victim : {498u, 499u, 501u, 502u})
        EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(victim), 10u);
}

TEST_F(MitFixture, ParaRejectsBadProbability)
{
    ParaConfig pc;
    pc.refreshProbability = 0.0;
    EXPECT_THROW(Para(ctrl, tracker, mitConfig(), pc), FatalError);
}


// ---------------------------------------------------------------------
// BlockHammer (Section IX-A baseline): throttling, no row movement.
// ---------------------------------------------------------------------

TEST_F(MitFixture, BlockHammerNeverRemaps)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    hammer(bh, 500, 250);
    EXPECT_EQ(bh.remapRow(0, 0, 500), 500u);
    EXPECT_EQ(bh.indirection(0, 0).entries(), 0u);
    EXPECT_EQ(bh.stats().get("mitigations"), 0u);
}

TEST_F(MitFixture, BlockHammerBlacklistsAtThreshold)
{
    // T_RH = 600, default fraction 0.5 -> N_BL = 300.
    BlockHammer bh(ctrl, tracker, mitConfig());
    EXPECT_EQ(bh.blacklistThreshold(), 300u);
    hammer(bh, 500, 299);
    EXPECT_EQ(bh.blacklistedRows(0, 0), 0u);
    EXPECT_EQ(bh.actAllowedAt(0, 0, 500, now), 0u);
    hammer(bh, 500, 1);
    EXPECT_EQ(bh.blacklistedRows(0, 0), 1u);
    EXPECT_GT(bh.actAllowedAt(0, 0, 500, now), now);
    EXPECT_GE(bh.stats().get("rows_blacklisted"), 1u);
}

TEST_F(MitFixture, BlockHammerThrottleExpires)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    hammer(bh, 500, 320);
    const Cycle allowed = bh.actAllowedAt(0, 0, 500, now);
    ASSERT_GT(allowed, now);
    // Once the stamp expires the row may activate again.
    EXPECT_EQ(bh.actAllowedAt(0, 0, 500, allowed), 0u);
}

TEST_F(MitFixture, BlockHammerSpacingBoundsEpochActivations)
{
    // Spacing must keep a blacklisted row below T_RH per window:
    // window / spacing + N_BL <= T_RH (with safety factor 1).
    BlockHammer bh(ctrl, tracker, mitConfig());
    const Cycle window = ctrl.timing().tREFI * 8192 / 2;
    const double maxActs =
        static_cast<double>(window) /
        static_cast<double>(bh.throttleSpacing());
    EXPECT_LE(maxActs + bh.blacklistThreshold(),
              static_cast<double>(mitConfig().trh) + 1.0);
}

TEST_F(MitFixture, BlockHammerPaperDosLatency)
{
    // Paper Section IX-A: at T_RH = 4800 requests are delayed by
    // ~20 us per activation.  With N_BL = T_RH/2 and two windows
    // per 64 ms epoch, spacing = 32 ms / 2400 = 13.3 us; the quoted
    // 20 us corresponds to a safety factor of ~0.66.
    MitigationConfig cfg = mitConfig();
    cfg.trh = 4800;
    BlockHammerConfig bhCfg;
    bhCfg.safetyFactor = 0.66;
    BlockHammer bh(ctrl, tracker, cfg, bhCfg);
    const double spacingUs =
        static_cast<double>(bh.throttleSpacing()) / 3200.0; // 3.2 GHz
    EXPECT_NEAR(spacingUs, 20.0, 2.5);
}

TEST_F(MitFixture, BlockHammerBenignRowsUnthrottled)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    // Spread activations over many rows, none crossing N_BL.
    for (RowId r = 1000; r < 1200; ++r)
        hammer(bh, r, 2);
    EXPECT_EQ(bh.blacklistedRows(0, 0), 0u);
    EXPECT_EQ(bh.stats().get("throttled_acts"), 0u);
}

TEST_F(MitFixture, BlockHammerRotationAgesOutBlacklist)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    hammer(bh, 500, 320);
    EXPECT_GE(bh.estimateOf(0, 0, 500), 320u);
    // Two window rotations clear both filters.
    const Cycle window = ctrl.timing().tREFI * 8192 / 2;
    bh.tick(window);
    bh.tick(2 * window);
    EXPECT_EQ(bh.estimateOf(0, 0, 500), 0u);
}

TEST_F(MitFixture, BlockHammerEpochEndRescalesSpacing)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    const Cycle before = bh.throttleSpacing();
    bh.onEpochEnd(now, 1000000); // short test epoch
    EXPECT_LT(bh.throttleSpacing(), before);
}

TEST_F(MitFixture, BlockHammerStorageHasNoRit)
{
    BlockHammer bh(ctrl, tracker, mitConfig());
    // Dual 8K x 16-bit filters + 1KB blocker = 33KB per bank.
    EXPECT_EQ(bh.storageBitsPerBank(),
              2u * 8192 * 16 + 1024u * 8);
}

TEST_F(MitFixture, BlockHammerRejectsBadConfig)
{
    BlockHammerConfig bad;
    bad.blacklistFraction = 1.5;
    EXPECT_THROW(BlockHammer(ctrl, tracker, mitConfig(), bad),
                 FatalError);
    bad = BlockHammerConfig{};
    bad.windowsPerEpoch = 0;
    EXPECT_THROW(BlockHammer(ctrl, tracker, mitConfig(), bad),
                 FatalError);
    bad = BlockHammerConfig{};
    bad.safetyFactor = 0.0;
    EXPECT_THROW(BlockHammer(ctrl, tracker, mitConfig(), bad),
                 FatalError);
}



TEST_F(MitFixture, SrsEpochRegisterWrapSweepsCounters)
{
    // Section IV-F: when the 19-bit epoch register wraps, every
    // per-row swap-tracking counter is reset by a row sweep.
    SrsConfig scfg;
    scfg.modelCounterTraffic = false;
    Srs srsMit(ctrl, tracker, mitConfig(), scfg);
    hammer(srsMit, 500, 100); // one swap -> nonzero counter
    const RowId where = srsMit.indirection(0, 0).remap(500);
    const std::uint32_t epoch = srsMit.epochId();
    ASSERT_GT(srsMit.counters(0, 0).countOf(500, epoch) +
                  srsMit.counters(0, 0).countOf(where, epoch),
              0u);
    // Drive the register to all-1s, then across the wrap.
    for (std::uint32_t e = srsMit.epochId(); e < (1u << 19) - 1; ++e)
        srsMit.onEpochEnd(now, 1000000); // cheap: no stale entries
    EXPECT_EQ(srsMit.epochId(), (1u << 19) - 1);
    srsMit.onEpochEnd(now, 1000000);
    EXPECT_EQ(srsMit.epochId(), 0u);
    EXPECT_EQ(srsMit.stats().get("counter_sweeps"), 1u);
    EXPECT_EQ(srsMit.counters(0, 0).countOf(500, 0), 0u);
    EXPECT_EQ(srsMit.counters(0, 0).stats().get("global_resets"), 1u);
}

// ---------------------------------------------------------------------
// AQUA (Section IX-A baseline): quarantine-region isolation.
// ---------------------------------------------------------------------

AquaConfig
aquaConfig(std::uint32_t slots = 16)
{
    AquaConfig cfg;
    cfg.quarantineRows = slots;
    return cfg;
}

TEST_F(MitFixture, AquaDerivesQuarantineSize)
{
    Aqua aqua(ctrl, tracker, mitConfig());
    // Default: 1% of a 128K-row bank, at the top of the bank.
    EXPECT_EQ(aqua.quarantineRows(), 128u * 1024 / 100);
    EXPECT_EQ(aqua.quarantineBase(),
              128u * 1024 - aqua.quarantineRows());
    EXPECT_TRUE(aqua.inQuarantine(aqua.quarantineBase()));
    EXPECT_FALSE(aqua.inQuarantine(aqua.quarantineBase() - 1));
}

TEST_F(MitFixture, AquaMovesAggressorIntoQuarantine)
{
    Aqua aqua(ctrl, tracker, mitConfig(), aquaConfig());
    hammer(aqua, 500, 100);
    EXPECT_EQ(aqua.stats().get("quarantine_moves"), 1u);
    const RowId where = aqua.indirection(0, 0).remap(500);
    EXPECT_TRUE(aqua.inQuarantine(where));
    EXPECT_EQ(aqua.quarantineOccupancy(0, 0), 1u);
}

TEST_F(MitFixture, AquaReMigrationLeavesHomeUntouched)
{
    // The SRS-like security property: re-hammering a quarantined
    // row moves it to the next slot without touching its home, so
    // latent activations cannot accumulate there (unlike RRS).
    Aqua aqua(ctrl, tracker, mitConfig(), aquaConfig());
    hammer(aqua, 500, 100);
    const std::uint64_t homeActsAfterFirst =
        ctrl.bankAt(0, 0).activationsOf(500);
    hammer(aqua, 500, 300);
    EXPECT_GE(aqua.stats().get("quarantine_moves"), 3u);
    EXPECT_EQ(ctrl.bankAt(0, 0).activationsOf(500),
              homeActsAfterFirst);
}

TEST_F(MitFixture, AquaCursorWrapEvictsOldTenant)
{
    Aqua aqua(ctrl, tracker, mitConfig(), aquaConfig(4));
    // Quarantine 6 distinct aggressors through a 4-slot region.
    for (RowId r = 600; r < 606; ++r)
        hammer(aqua, r, 100);
    EXPECT_GE(aqua.stats().get("quarantine_wraps"), 1u);
    EXPECT_GE(aqua.stats().get("quarantine_evictions"), 1u);
    EXPECT_LE(aqua.quarantineOccupancy(0, 0), 4u);
}

TEST_F(MitFixture, AquaLazyRestoreEmptiesQuarantine)
{
    Aqua aqua(ctrl, tracker, mitConfig(), aquaConfig());
    hammer(aqua, 500, 100);
    hammer(aqua, 700, 100);
    ASSERT_EQ(aqua.quarantineOccupancy(0, 0), 2u);
    // Epoch ends; paced lazy ticks restore the stale tenants.
    aqua.onEpochEnd(now, 1000000);
    for (int i = 0; i < 2000000 && aqua.quarantineOccupancy(0, 0) > 0;
         ++i) {
        aqua.tick(now);
        now += timing.busClock;
        drainMigrations();
    }
    EXPECT_EQ(aqua.quarantineOccupancy(0, 0), 0u);
    EXPECT_EQ(aqua.indirection(0, 0).entries(), 0u);
    EXPECT_EQ(aqua.indirection(0, 0).remap(500), 500u);
    EXPECT_EQ(aqua.indirection(0, 0).remap(700), 700u);
}

TEST_F(MitFixture, AquaStorageIsPointerTables)
{
    Aqua aqua(ctrl, tracker, mitConfig(), aquaConfig(1024));
    // FPT + RPT: 2 x slots x (17-bit row id + valid).
    EXPECT_EQ(aqua.storageBitsPerBank(), 2u * 1024 * 18);
}

TEST_F(MitFixture, AquaRejectsBadQuarantine)
{
    EXPECT_THROW(Aqua(ctrl, tracker, mitConfig(), aquaConfig(1)),
                 FatalError);
    AquaConfig huge;
    huge.quarantineRows = 128 * 1024;
    EXPECT_THROW(Aqua(ctrl, tracker, mitConfig(), huge), FatalError);
}

} // namespace
} // namespace srs
