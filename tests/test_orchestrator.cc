/**
 * @file
 * Orchestrator coverage: shard planning (balance, MIX-awareness),
 * manifest round-tripping, and the merge path — shard CSVs stitched
 * byte-identically to a single-process sweep, index renumbering,
 * rejection of mismatched or torn shards, and a killed-shard →
 * resume → re-merge roundtrip.  Child-process supervision itself is
 * exercised end-to-end by tests/cli_smoke.cmake and the CI
 * orchestrator smoke job.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/orchestrator.hh"
#include "sim/sweep.hh"

namespace srs
{
namespace
{

/** Small budget so a full sweep stays fast in Debug CI. */
ExperimentConfig
tinyExperiment()
{
    ExperimentConfig exp;
    exp.cycles = 60'000;
    exp.epochLen = 25'000;
    return exp;
}

/** 2 named workloads + 1 MIX point, 2 mitigations x 1 trh x 2 rates. */
SweepGrid
testGrid()
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {3, 6};
    grid.mixCount = 1;
    grid.mixCores = tinyExperiment().numCores;
    return grid;
}

/** CSV text of one full run of @p grid at @p threads workers. */
std::string
sweepCsv(const SweepGrid &grid, std::size_t threads)
{
    SweepRunner runner(tinyExperiment(), threads);
    std::ostringstream os;
    SweepRunner::writeCsv(os, runner.run(grid));
    return os.str();
}

/** Write @p text to @p name under the test temp dir; returns path. */
std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Run every shard of @p manifest in-process (as `srs_sim sweep` on
 * another machine would) and write its CSV next to the manifest
 * under the test temp dir, with file names prefixed by @p tag.
 * Returns the manifest with the prefixed CSV names patched in.
 */
ShardManifest
runShardsInProcess(ShardManifest manifest, const std::string &tag,
                   std::size_t threads)
{
    for (ShardSpec &shard : manifest.shards) {
        shard.csv = tag + shard.csv;
        SweepRunner runner(manifest.exp, threads);
        std::ofstream out(testing::TempDir() + shard.csv,
                          std::ios::trunc | std::ios::binary);
        SweepRunner::writeCsv(out, runner.run(shard.grid));
    }
    return manifest;
}

/** Temp-dir path merge output of @p manifest as a string. */
std::string
mergedCsv(const ShardManifest &manifest)
{
    std::ostringstream os;
    // TempDir() ends with a separator; strip it for the dir join.
    std::string dir = testing::TempDir();
    if (!dir.empty() && dir.back() == '/')
        dir.pop_back();
    mergeShards(manifest, dir, os);
    return os.str();
}

TEST(ShardPlan, BalancedContiguousAndMixAware)
{
    SweepGrid grid = testGrid();
    grid.mixCount = 2; // outer axis: gups, gcc, mix0, mix1
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest = planShards(grid, exp, 3);
    ASSERT_EQ(manifest.shards.size(), 3u);
    const std::size_t inner = grid.innerCells();
    ASSERT_EQ(inner, 4u);

    // 4 outer entries over 3 shards: 1 + 1 + 2 (contiguous).
    EXPECT_EQ(manifest.shards[0].grid.workloads,
              std::vector<WorkloadSpec>{WorkloadSpec::synthetic(
                  "gups")});
    EXPECT_EQ(manifest.shards[0].grid.mixCount, 0u);
    EXPECT_EQ(manifest.shards[0].offset, 0u);
    EXPECT_EQ(manifest.shards[0].cells, inner);

    EXPECT_EQ(manifest.shards[1].grid.workloads,
              std::vector<WorkloadSpec>{WorkloadSpec::synthetic(
                  "gcc")});
    EXPECT_EQ(manifest.shards[1].grid.mixCount, 0u);
    EXPECT_EQ(manifest.shards[1].offset, inner);

    // The last shard is MIX-only: mix0..mix1 via mixBase/mixCount.
    EXPECT_TRUE(manifest.shards[2].grid.workloads.empty());
    EXPECT_EQ(manifest.shards[2].grid.mixBase, 0u);
    EXPECT_EQ(manifest.shards[2].grid.mixCount, 2u);
    EXPECT_EQ(manifest.shards[2].offset, 2 * inner);
    EXPECT_EQ(manifest.shards[2].cells, 2 * inner);
    EXPECT_EQ(manifest.totalCells(), grid.expand().size());

    // A MIX sub-range expands to the same labels as the full grid.
    const std::vector<SweepCell> slice =
        manifest.shards[2].grid.expand();
    EXPECT_EQ(slice.front().workload.label(), "mix0");
    EXPECT_EQ(slice.back().workload.label(), "mix1");
}

TEST(ShardPlan, ShardCountClampsToOuterEntries)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 64);
    EXPECT_EQ(manifest.shards.size(), 3u); // gups, gcc, mix0
    for (const ShardSpec &shard : manifest.shards)
        EXPECT_EQ(shard.cells, testGrid().innerCells());
}

TEST(ShardPlan, EmptyGridOrZeroShardsIsFatal)
{
    SweepGrid empty;
    EXPECT_THROW(planShards(empty, tinyExperiment(), 2), FatalError);
    EXPECT_THROW(planShards(testGrid(), tinyExperiment(), 0),
                 FatalError);
}

TEST(ShardManifestFile, RoundTripsThroughDisk)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    const std::string path = testing::TempDir() + "manifest_rt";
    writeManifest(manifest, path);
    const ShardManifest loaded = loadManifest(path);
    EXPECT_EQ(serializeManifest(loaded),
              serializeManifest(manifest));
    EXPECT_EQ(loaded.shards.size(), manifest.shards.size());
    EXPECT_EQ(loaded.exp.seed, manifest.exp.seed);
    EXPECT_EQ(loaded.grid.expand().size(),
              manifest.grid.expand().size());
    std::remove(path.c_str());
}

TEST(ShardManifestFile, CorruptedTilingIsFatal)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    std::string text = serializeManifest(manifest);

    // An offset that no longer follows the previous shard.
    std::string broken = text;
    const auto at = broken.find("shard1.offset=");
    ASSERT_NE(at, std::string::npos);
    broken.replace(at, std::string("shard1.offset=4").size(),
                   "shard1.offset=5");
    EXPECT_THROW(
        loadManifest(writeTempFile("manifest_bad_offset", broken)),
        FatalError);

    // A shard claiming more cells than its grid slice expands to.
    broken = text;
    const auto cells = broken.find("shard0.cells=");
    ASSERT_NE(cells, std::string::npos);
    broken.replace(cells, std::string("shard0.cells=4").size(),
                   "shard0.cells=9");
    EXPECT_THROW(
        loadManifest(writeTempFile("manifest_bad_cells", broken)),
        FatalError);

    // Future manifest versions are rejected, not misread.
    broken = text;
    const auto version = broken.find("version=6");
    ASSERT_NE(version, std::string::npos);
    broken.replace(version, 9, "version=7");
    EXPECT_THROW(
        loadManifest(writeTempFile("manifest_bad_version", broken)),
        FatalError);

    // Out-of-range axis values must not wrap: trh=2^32+1200 is a
    // fatal parse error, never a silent trh=1200.
    broken = text;
    const auto trh = broken.find("trh=1200");
    ASSERT_NE(trh, std::string::npos);
    broken.replace(trh, std::string("trh=1200").size(),
                   "trh=4294968496");
    EXPECT_THROW(
        loadManifest(writeTempFile("manifest_overflow", broken)),
        FatalError);
    broken = text;
    broken.replace(trh, std::string("trh=1200").size(), "trh=-1");
    EXPECT_THROW(
        loadManifest(writeTempFile("manifest_negative", broken)),
        FatalError);
}

TEST(ShardManifestFile, StaleManifestsAreRejectedWithVersionedErrors)
{
    // A version-1 through version-5 manifest (pre-WorkloadSpec,
    // pre-DRAM-preset/timing-axes, pre-latency-percentiles,
    // pre-DRAM-organization-axis, and pre-Monte-Carlo-confidence
    // columns respectively) must fail with an error that names the
    // version, not a key-parsing mess or a cryptic identity
    // mismatch downstream.
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    const std::string text = serializeManifest(manifest);
    const auto version = text.find("version=6");
    ASSERT_NE(version, std::string::npos);
    for (const int old : {1, 2, 3, 4, 5}) {
        std::string stale = text;
        stale.replace(version, 9,
                      "version=" + std::to_string(old));
        const std::string path = writeTempFile(
            "manifest_v" + std::to_string(old), stale);
        try {
            loadManifest(path);
            FAIL() << "v" << old << " manifest was not rejected";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what())
                          .find("version " + std::to_string(old)),
                      std::string::npos)
                << err.what();
        }
    }
}

TEST(ShardManifestFile, RoundTripsTraceSpecsAndSystemAxes)
{
    // Trace-file workloads and the page-policy/tRC axes survive the
    // serialize -> parse -> serialize cycle byte-exactly; they are
    // what version 2 of the schema exists to carry.
    SweepGrid grid = testGrid();
    grid.workloads.push_back(
        WorkloadSpec::parse("trace:/tmp/srs_manifest_rt.usimm", 8));
    grid.workloads.push_back(
        WorkloadSpec::parse("zipf:4096@s=0.99", 8));
    grid.workloads.push_back(WorkloadSpec::parse(
        "blend:hotspot:1024@hot=0.1@p=0.9+attack@0.05", 8));
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.tRcOverrides = {0, 48};
    grid.tRefiOverrides = {0, 3900};
    grid.tRfcOverrides = {0, 295};
    const ShardManifest manifest =
        planShards(grid, tinyExperiment(), 2);
    const std::string path =
        writeTempFile("manifest_specs_rt", serializeManifest(manifest));
    const ShardManifest loaded = loadManifest(path);
    EXPECT_EQ(serializeManifest(loaded), serializeManifest(manifest));
    EXPECT_EQ(loaded.grid.workloads, grid.workloads);
    EXPECT_EQ(loaded.grid.pagePolicies, grid.pagePolicies);
    EXPECT_EQ(loaded.grid.presets, grid.presets);
    EXPECT_EQ(loaded.grid.tRcOverrides, grid.tRcOverrides);
    EXPECT_EQ(loaded.grid.tRefiOverrides, grid.tRefiOverrides);
    EXPECT_EQ(loaded.grid.tRfcOverrides, grid.tRfcOverrides);
    EXPECT_EQ(loaded.grid.innerCells(), grid.innerCells());
}

TEST(ShardMerge, PresetAndTimingOverrideAxesMergeByteIdentical)
{
    // The DDR5-preset axis plus a timing override, sharded and
    // merged, must reproduce the single-process CSV byte for byte —
    // the acceptance case behind the Section VIII-5 sweep.
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {6};
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.tRefiOverrides = {0, 5000};
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 2), "preset_", 8);
    EXPECT_EQ(mergedCsv(manifest), full);
    // Preset and override spellings appear in the identity columns.
    EXPECT_NE(full.find(",closed@ddr5,"), std::string::npos);
    EXPECT_NE(full.find(",closed@ddr5@trefi=5000,"),
              std::string::npos);
    EXPECT_NE(full.find(",closed@trefi=5000,"), std::string::npos);
}

TEST(ShardMerge, PagePolicyAxisMergesByteIdentical)
{
    // The satellite case behind the ported page-policy ablation: a
    // grid sweeping closed vs open page, sharded and merged, must
    // reproduce the single-process CSV byte for byte.
    SweepGrid grid = testGrid();
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "policy_", 8);
    EXPECT_EQ(mergedCsv(manifest), full);
    // Both policy spellings actually appear in the identity columns.
    EXPECT_NE(full.find(",closed,"), std::string::npos);
    EXPECT_NE(full.find(",open,"), std::string::npos);
}

TEST(ShardMerge, GeneratorWorkloadsMergeByteIdentical)
{
    // The tentpole invariance: a zipf + blend grid, sharded and
    // merged, reproduces the single-process CSV — including the
    // schema-v4 percentile columns — byte for byte, because the
    // per-cell seed and the latency histogram are pure functions of
    // the canonical label and the access stream.
    SweepGrid grid;
    grid.workloads = {
        WorkloadSpec::parse("zipf:4096@s=0.99", 8),
        WorkloadSpec::parse("blend:zipf:4096@s=0.9+attack@0.05", 8),
    };
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::None};
    grid.trhs = {1200};
    grid.swapRates = {6};
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const ShardManifest manifest = runShardsInProcess(
            planShards(grid, exp, 2),
            "gen_t" + std::to_string(threads) + "_", threads);
        EXPECT_EQ(mergedCsv(manifest), full)
            << "threads=" << threads;
    }
    // The generator spellings ride the manifest's workloads= key.
    const ShardManifest manifest = planShards(grid, exp, 2);
    const std::string text = serializeManifest(manifest);
    EXPECT_NE(text.find("zipf:4096@s=0.99"), std::string::npos);
    EXPECT_NE(text.find("blend:zipf:4096@s=0.9+attack@0.05"),
              std::string::npos);
}

TEST(ShardMerge, ByteIdenticalToSingleProcessSweep)
{
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);

    // Shard runs and single-process runs must agree for any thread
    // count on either side.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const ShardManifest manifest = runShardsInProcess(
            planShards(grid, exp, 3),
            "merge_t" + std::to_string(threads) + "_", threads);
        EXPECT_EQ(mergedCsv(manifest), full)
            << "threads=" << threads;
    }
    EXPECT_EQ(sweepCsv(grid, 8), full);
}

TEST(ShardMerge, RenumbersShardLocalIndices)
{
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "renum_", 8);

    // Every shard CSV numbers its rows from 0...
    const std::string shard1 =
        readFile(testing::TempDir() + manifest.shards[1].csv);
    const auto headerEnd = shard1.find('\n');
    EXPECT_EQ(shard1.compare(headerEnd + 1, 2, "0,"), 0);

    // ...and the merge rewrites them to the global cell index: row
    // text of shard 1's first cell appears at its global offset.
    const std::string merged = mergedCsv(manifest);
    const std::string localRow = shard1.substr(
        headerEnd + 1,
        shard1.find('\n', headerEnd + 1) - headerEnd - 1);
    const std::string globalRow =
        std::to_string(manifest.shards[1].offset)
        + localRow.substr(1);
    EXPECT_NE(merged.find("\n" + globalRow + "\n"),
              std::string::npos);
    // The shard-local numbering ("0,gcc,...") must not leak into
    // the merged CSV — global index 0 belongs to another workload.
    EXPECT_EQ(merged.find("\n" + localRow + "\n"),
              std::string::npos);
}

TEST(ShardMerge, MismatchedIdentityPrefixIsFatal)
{
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "mismatch_", 8);

    // Flip the trh field of shard 1's first data row: the row no
    // longer byte-matches the manifest's cell identity.
    const std::string path = testing::TempDir() + manifest.shards[1].csv;
    std::string text = readFile(path);
    const auto at = text.find(",1200,3,");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 8, ",4800,3,");
    writeTempFile(manifest.shards[1].csv, text);
    EXPECT_THROW(mergedCsv(manifest), FatalError);
    const std::string reason = validateShardCsv(
        manifest.shards[1], exp, path);
    EXPECT_NE(reason.find("identity"), std::string::npos);

    // A manifest with a different seed rejects *every* shard row
    // (the derived seed is part of the identity prefix).
    ShardManifest reseeded = runShardsInProcess(
        planShards(grid, exp, 3), "reseed_", 8);
    reseeded.exp.seed ^= 1;
    EXPECT_THROW(mergedCsv(reseeded), FatalError);
}

TEST(ShardMerge, TornOrShortShardIsFatal)
{
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "torn_", 8);

    const std::string path =
        testing::TempDir() + manifest.shards[2].csv;
    const std::string intact = readFile(path);
    ASSERT_EQ(intact.back(), '\n');

    // Torn: the writer died mid-row (no final newline).
    writeTempFile(manifest.shards[2].csv,
                  intact.substr(0, intact.size() - 3));
    EXPECT_THROW(mergedCsv(manifest), FatalError);
    EXPECT_NE(validateShardCsv(manifest.shards[2], exp, path)
                  .find("torn"),
              std::string::npos);

    // Short: a complete file with a whole row missing.
    const auto lastRow = intact.rfind('\n', intact.size() - 2);
    writeTempFile(manifest.shards[2].csv,
                  intact.substr(0, lastRow + 1));
    EXPECT_THROW(mergedCsv(manifest), FatalError);

    // A missing shard file never merges as empty.
    writeTempFile(manifest.shards[2].csv, intact); // restore
    ShardManifest missing = manifest;
    missing.shards[1].csv = "no_such_shard.csv";
    EXPECT_THROW(mergedCsv(missing), FatalError);
}

TEST(ShardMerge, StaleShardCsvHeaderIsRejectedWithAVersionedError)
{
    // A shard produced by a schema-v4 build (percentile columns but
    // no lat_samples, predating the DRAM-organization axis) must be
    // rejected naming schema v4, mirroring the manifest-version
    // checks — never merged with reinterpreted columns.
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "stalehdr_", 8);
    const std::string path =
        testing::TempDir() + manifest.shards[0].csv;
    const std::string intact = readFile(path);
    const auto headerEnd = intact.find('\n');
    const std::string v4Header =
        "index,workload_spec,mitigation,tracker,trh,rate,axes,"
        "seed,ipc,baseline_ipc,normalized,swaps,unswap_swaps,"
        "place_backs,rows_pinned,max_row_acts,p50_lat,p99_lat,"
        "p999_lat";
    writeTempFile(manifest.shards[0].csv,
                  v4Header + intact.substr(headerEnd));
    const std::string reason =
        validateShardCsv(manifest.shards[0], exp, path);
    EXPECT_NE(reason.find("schema v4"), std::string::npos) << reason;
    EXPECT_NE(reason.find("lat_samples"), std::string::npos)
        << reason;
    EXPECT_THROW(mergedCsv(manifest), FatalError);
}

TEST(ShardMerge, OrgAxisSurvivesShardingAndMergesByteIdentical)
{
    // An org-bearing grid shards and merges to the bytes of the
    // single-process sweep, org spellings intact in every identity
    // prefix.
    SweepGrid grid = testGrid();
    grid.orgs = {"2x1x16", "4x2x32"};
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);
    const ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "orgmerge_", 8);
    EXPECT_EQ(mergedCsv(manifest), full);
    EXPECT_NE(full.find("@org=4x2x32"), std::string::npos);
    // The org axis round-trips through the manifest bytes too.
    const std::string text = serializeManifest(manifest);
    EXPECT_NE(text.find("orgs=2x1x16,4x2x32"), std::string::npos);
    const std::string path = writeTempFile("manifest_orgs", text);
    EXPECT_EQ(serializeManifest(loadManifest(path)), text);
}

TEST(ShardMerge, KilledShardResumesAndRemergesByteIdentical)
{
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    const std::string full = sweepCsv(grid, 1);
    ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "resume_", 8);

    // Simulate shard 1 killed mid-run: all that survives is a
    // checkpoint with one complete row and one torn final line.
    const std::string csvPath =
        testing::TempDir() + manifest.shards[1].csv;
    const std::string intact = readFile(csvPath);
    const auto headerEnd = intact.find('\n');
    const auto row0End = intact.find('\n', headerEnd + 1);
    const std::string journalPath = writeTempFile(
        manifest.shards[1].csv + ".journal",
        intact.substr(headerEnd + 1,
                      row0End + 1 - (headerEnd + 1))
            + intact.substr(row0End + 1,
                            (intact.find('\n', row0End + 1)
                             - row0End - 1) / 2));
    std::remove(csvPath.c_str());
    EXPECT_THROW(mergedCsv(manifest), FatalError);

    // Resume the shard from its journal (what a relaunched
    // `srs_sim sweep --resume` does), re-write its CSV, re-merge.
    SweepRunner runner(exp, 8);
    runner.setResume(journalPath);
    const std::vector<SweepResult> results =
        runner.run(manifest.shards[1].grid.expand());
    EXPECT_FALSE(results[0].resumedRow.empty());
    EXPECT_TRUE(results[1].resumedRow.empty());
    std::ofstream out(csvPath, std::ios::trunc | std::ios::binary);
    SweepRunner::writeCsv(out, results);
    out.close();
    EXPECT_EQ(mergedCsv(manifest), full);
}

TEST(ShardMerge, DuplicatedShardCsvIsFatal)
{
    // Two manifest entries pointing at the same shard CSV (a
    // copy-paste accident in a hand-dispatched run) must never
    // merge: shard 1's slice expects different identity rows than
    // shard 0's file carries.
    const SweepGrid grid = testGrid();
    const ExperimentConfig exp = tinyExperiment();
    ShardManifest manifest = runShardsInProcess(
        planShards(grid, exp, 3), "dupcsv_", 8);
    manifest.shards[1].csv = manifest.shards[0].csv;
    EXPECT_THROW(mergedCsv(manifest), FatalError);

    // The same accident in the manifest *text* — shard 1's slice
    // re-describing shard 0's — breaks the offset chain and is
    // rejected at load time, before any merge.
    const ShardManifest clean = planShards(grid, exp, 3);
    std::string text = serializeManifest(clean);
    const auto at = text.find("shard1.offset=");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("shard1.offset=4").size(),
                 "shard1.offset=0");
    EXPECT_THROW(loadManifest(writeTempFile("manifest_dup", text)),
                 FatalError);
}

TEST(OrchestratorPlan, JsonPlanCarriesShardArgvs)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    Orchestrator::Config cfg;
    cfg.dir = "plan_json_dir";
    cfg.simPath = "/opt/srs_sim";
    Orchestrator orchestrator(manifest, cfg);
    std::ostringstream os;
    orchestrator.writePlan(os, /*json=*/true);
    const std::string plan = os.str();
    EXPECT_NE(plan.find("\"manifest\": \"plan_json_dir/manifest\""),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("\"argv\""), std::string::npos);
    EXPECT_NE(plan.find("\"/opt/srs_sim\""), std::string::npos);
    EXPECT_NE(plan.find("out=plan_json_dir/shard1.csv"),
              std::string::npos);
    // Text mode still leads with the manifest comment.
    std::ostringstream text;
    orchestrator.writePlan(text, /*json=*/false);
    EXPECT_EQ(text.str().rfind("# manifest:", 0), 0u);
}

TEST(OrchestratorSummary, TableNamesEveryShardsOutcome)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 3);
    std::vector<ShardRunState> states(3);
    states[0].done = true; // never launched: cached
    states[1].launches = 2;
    states[1].restarts = 1;
    states[1].done = true;
    states[2].launches = 3;
    states[2].restarts = 2;
    states[2].lastError = "killed by signal 9";
    std::ostringstream os;
    writeShardSummary(os, manifest, states, "sum_dir");
    const std::string table = os.str();
    EXPECT_NE(table.find("cached"), std::string::npos) << table;
    EXPECT_NE(table.find("done"), std::string::npos);
    EXPECT_NE(table.find("FAILED"), std::string::npos);
    EXPECT_NE(table.find("sum_dir/shard2.log"), std::string::npos);
    EXPECT_NE(table.find("killed by signal 9"), std::string::npos);
}

TEST(OrchestratorSummary, JsonQuoteEscapesControlBytes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("line\nbreak\t"), "\"line\\nbreak\\t\"");
    EXPECT_EQ(jsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(OrchestratorSummary, LastLogLineSkipsBlankTails)
{
    const std::string path = writeTempFile(
        "tail.log", "first line\nthe real tail\r\n\n   \n");
    EXPECT_EQ(lastLogLine(path), "the real tail");
    EXPECT_EQ(lastLogLine(testing::TempDir() + "no_such.log"), "");
}

TEST(OrchestratorConfig, MissingBinaryOrDirIsFatal)
{
    // Launching real children is cli_smoke's job; here only the
    // configuration contract is checked.
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    EXPECT_THROW(Orchestrator(manifest, Orchestrator::Config{}),
                 FatalError);
    Orchestrator::Config noDir;
    noDir.simPath = "/bin/false";
    EXPECT_THROW(Orchestrator(manifest, noDir), FatalError);
}

} // namespace
} // namespace srs
