/**
 * @file
 * Unit tests for the DRAM substrate: parameter conversion, address
 * mapping (with property sweeps), the bank timing FSM, and rank-level
 * pacing/refresh.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/address.hh"
#include "dram/bank.hh"
#include "dram/params.hh"
#include "dram/rank.hh"

namespace srs
{
namespace
{

DramTiming
defaultTiming()
{
    return DramTiming::fromNs(DramTimingNs{});
}

TEST(Params, NsToCyclesRoundsUp)
{
    EXPECT_EQ(nsToCycles(45.0, 3.2), 144u);
    EXPECT_EQ(nsToCycles(14.0, 3.2), 45u);
    EXPECT_EQ(nsToCycles(0.625, 3.2), 2u);
}

TEST(Params, TableIIIConversion)
{
    const DramTiming t = defaultTiming();
    EXPECT_EQ(t.tRC, 144u);     // 45 ns
    EXPECT_EQ(t.tRFC, 1120u);   // 350 ns
    EXPECT_EQ(t.tREFI, 24960u); // 7.8 us
    EXPECT_EQ(t.busClock, 2u);  // 1.6 GHz bus on a 3.2 GHz core
}

TEST(Params, RowTransferApproximatesPaperSwapCost)
{
    const DramTiming t = defaultTiming();
    // One row transfer ~ 668 ns; a swap is four transfers ~ 2.7 us
    // (paper Section III-B, t_swap).
    const double transferNs =
        static_cast<double>(t.rowTransferCycles(128)) / 3.2;
    EXPECT_NEAR(4.0 * transferNs, 2700.0, 300.0);
}

TEST(Params, OrgValidateRejectsNonPow2)
{
    DramOrg org;
    org.rowsPerBank = 100000;
    EXPECT_THROW(org.validate(), FatalError);
}

TEST(Params, OrgValidateRejectsNonPow2Ranks)
{
    DramOrg org;
    org.ranksPerChannel = 3;
    EXPECT_THROW(org.validate(), FatalError);
}

TEST(Params, OrgCapacityMatchesTableIII)
{
    DramOrg org;
    EXPECT_EQ(org.capacityBytes(), 32ULL * 1024 * 1024 * 1024);
    EXPECT_EQ(org.linesPerRow(), 128u);
    EXPECT_EQ(org.totalBanks(), 32u);
}

TEST(AddressMap, EncodeDecodeKnownCoord)
{
    AddressMap map((DramOrg()));
    DramCoord c;
    c.channel = 1;
    c.bank = 7;
    c.row = 12345;
    c.column = 77;
    const Addr a = map.encode(c);
    EXPECT_EQ(map.decode(a), c);
}

TEST(AddressMap, RowIsContiguous8KB)
{
    DramOrg org;
    AddressMap map(org);
    const Addr base = map.rowBaseAddr(0, 0, 3, 999);
    for (std::uint32_t col = 0; col < org.linesPerRow(); ++col) {
        const DramCoord c = map.decode(base + col * 64ULL);
        EXPECT_EQ(c.row, 999u);
        EXPECT_EQ(c.bank, 3u);
        EXPECT_EQ(c.column, col);
    }
}

TEST(AddressMap, RowBaseOfStripsColumn)
{
    AddressMap map((DramOrg()));
    const Addr base = map.rowBaseAddr(1, 0, 9, 4242);
    EXPECT_EQ(map.rowBaseOf(base + 3000), base);
}

TEST(AddressMap, FlatBankCoversAllBanks)
{
    DramOrg org;
    AddressMap map(org);
    std::vector<bool> seen(org.totalBanks(), false);
    for (std::uint32_t ch = 0; ch < org.channels; ++ch) {
        for (std::uint32_t b = 0; b < org.banksPerRank; ++b) {
            DramCoord c;
            c.channel = ch;
            c.bank = b;
            seen[map.flatBank(c)] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

/**
 * The layout's striping contract, proved for non-default orgs: the
 * bank-select bits (channel, rank, bank) sit directly above the
 * column, so the first totalBanks() consecutive row-sized blocks of
 * the address space land on every (channel, rank, bank) triple
 * exactly once — all in row 0 — before the row index advances.
 * Before the field widths were derived from the live org, a
 * multi-rank geometry silently aliased ranks onto bank bits.
 */
TEST(AddressMap, RowStripingCoversEveryBankOncePerOrg)
{
    for (const DramOrg base : {DramOrg{}, DramOrg{4, 2, 32},
                               DramOrg{1, 1, 4}, DramOrg{8, 4, 64}}) {
        AddressMap map(base);
        std::vector<std::uint32_t> hits(base.totalBanks(), 0);
        for (std::uint32_t blk = 0; blk < base.totalBanks(); ++blk) {
            const Addr addr =
                static_cast<Addr>(blk) * base.rowBytes;
            const DramCoord c = map.decode(addr);
            EXPECT_EQ(c.row, 0u);
            EXPECT_EQ(c.column, 0u);
            ++hits[map.flatBank(c)];
        }
        for (std::uint32_t h : hits)
            EXPECT_EQ(h, 1u);
        // The next block wraps back to bank 0, one row up.
        const DramCoord next = map.decode(
            static_cast<Addr>(base.totalBanks()) * base.rowBytes);
        EXPECT_EQ(map.flatBank(next), 0u);
        EXPECT_EQ(next.row, 1u);
    }
}

TEST(AddressMap, EncodeDecodeRoundTripsNonDefaultOrgs)
{
    for (const DramOrg org : {DramOrg{4, 2, 32}, DramOrg{8, 4, 64},
                              DramOrg{1, 2, 8}}) {
        AddressMap map(org);
        std::uint64_t x = 0x2545F4914F6CDD1DULL;
        for (int i = 0; i < 32; ++i) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            std::uint64_t v = x;
            DramCoord c;
            c.channel = static_cast<std::uint32_t>(v % org.channels);
            v /= org.channels;
            c.rank = static_cast<std::uint32_t>(v % org.ranksPerChannel);
            v /= org.ranksPerChannel;
            c.bank = static_cast<std::uint32_t>(v % org.banksPerRank);
            v /= org.banksPerRank;
            c.row = static_cast<RowId>(v % org.rowsPerBank);
            v /= org.rowsPerBank;
            c.column = static_cast<std::uint32_t>(v % org.linesPerRow());
            const Addr a = map.encode(c);
            EXPECT_EQ(map.decode(a), c);
            EXPECT_LT(a, org.capacityBytes());
        }
    }
}

/** Property sweep: decode(encode(x)) == x across the coordinate space. */
class AddressRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressRoundTrip, Bijective)
{
    DramOrg org;
    AddressMap map(org);
    // Derive a pseudo-random coordinate from the parameter.
    std::uint64_t x = GetParam() * 0x9E3779B97F4A7C15ULL;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(x % org.channels);
    x /= org.channels;
    c.bank = static_cast<std::uint32_t>(x % org.banksPerRank);
    x /= org.banksPerRank;
    c.row = static_cast<RowId>(x % org.rowsPerBank);
    x /= org.rowsPerBank;
    c.column = static_cast<std::uint32_t>(x % org.linesPerRow());
    const Addr a = map.encode(c);
    EXPECT_EQ(map.decode(a), c);
    EXPECT_LT(a, org.capacityBytes());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AddressRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 64));

TEST(Bank, ActivateThenReadTiming)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    EXPECT_TRUE(bank.canIssue(DramCommand::Activate, 5, 0));
    bank.issue(DramCommand::Activate, 5, 0);
    EXPECT_TRUE(bank.rowOpen());
    EXPECT_EQ(bank.openRow(), 5u);
    // Read must wait tRCD.
    EXPECT_FALSE(bank.canIssue(DramCommand::Read, 5, t.tRCD - 1));
    EXPECT_TRUE(bank.canIssue(DramCommand::Read, 5, t.tRCD));
}

TEST(Bank, ReadWrongRowRejected)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    EXPECT_FALSE(bank.canIssue(DramCommand::Read, 6, t.tRCD));
}

TEST(Bank, AutoPrechargeClosesRow)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    bank.issue(DramCommand::Read, 5, t.tRCD, /*autoPre=*/true);
    EXPECT_FALSE(bank.rowOpen());
}

TEST(Bank, NoAutoPrechargeKeepsRowOpen)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    bank.issue(DramCommand::Read, 5, t.tRCD, /*autoPre=*/false);
    EXPECT_TRUE(bank.rowOpen());
}

TEST(Bank, ActToActRespectsTRc)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    bank.issue(DramCommand::Precharge, 0, t.tRAS);
    // ACT-to-ACT >= tRC, and >= tRAS + tRP through the precharge.
    const Cycle ready = bank.actReadyAt();
    EXPECT_GE(ready, t.tRC);
    EXPECT_FALSE(bank.canIssue(DramCommand::Activate, 6, ready - 1));
    EXPECT_TRUE(bank.canIssue(DramCommand::Activate, 6, ready));
}

TEST(Bank, PrechargeWaitsForTRas)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    EXPECT_FALSE(bank.canIssue(DramCommand::Precharge, 0, t.tRAS - 1));
    EXPECT_TRUE(bank.canIssue(DramCommand::Precharge, 0, t.tRAS));
}

TEST(Bank, ActivationGroundTruthCounts)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.issue(DramCommand::Activate, 5, 0);
    bank.issue(DramCommand::Precharge, 0, t.tRAS);
    bank.issue(DramCommand::Activate, 5, bank.actReadyAt());
    EXPECT_EQ(bank.activationsOf(5), 2u);
    EXPECT_EQ(bank.maxActivations(), 2u);
    EXPECT_EQ(bank.maxActivationRow(), 5u);
    EXPECT_EQ(bank.totalActivations(), 2u);
}

TEST(Bank, ChargeActivationFeedsGroundTruth)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.chargeActivation(77, 3);
    EXPECT_EQ(bank.activationsOf(77), 3u);
    EXPECT_EQ(bank.maxActivations(), 3u);
}

TEST(Bank, EpochResetClearsCounts)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    bank.chargeActivation(77, 3);
    bank.resetEpochCounters();
    EXPECT_EQ(bank.activationsOf(77), 0u);
    EXPECT_EQ(bank.maxActivations(), 0u);
    EXPECT_EQ(bank.totalActivations(), 0u);
}

TEST(Bank, BlockForMigration)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 1024);
    const Cycle done = bank.blockFor(10, 1000);
    EXPECT_EQ(done, 1010u);
    EXPECT_TRUE(bank.blocked(500));
    EXPECT_FALSE(bank.blocked(1010));
    EXPECT_FALSE(bank.canIssue(DramCommand::Activate, 1, 500));
    EXPECT_TRUE(bank.canIssue(DramCommand::Activate, 1, 1010));
}

TEST(Bank, IssueOutOfRangeRowRejected)
{
    const DramTiming t = defaultTiming();
    Bank bank(t, 16);
    EXPECT_FALSE(bank.canIssue(DramCommand::Activate, 16, 0));
}

TEST(Rank, TRrdSpacesActivates)
{
    const DramTiming t = defaultTiming();
    DramOrg org;
    Rank rank(t, org);
    rank.issue(DramCommand::Activate, 0, 1, 0);
    EXPECT_FALSE(rank.canIssue(DramCommand::Activate, 1, 1, t.tRRD - 1));
    EXPECT_TRUE(rank.canIssue(DramCommand::Activate, 1, 1, t.tRRD));
}

TEST(Rank, TFawLimitsFourActivates)
{
    const DramTiming t = defaultTiming();
    DramOrg org;
    Rank rank(t, org);
    Cycle now = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_TRUE(rank.canIssue(DramCommand::Activate, b, 1, now));
        rank.issue(DramCommand::Activate, b, 1, now);
        now += t.tRRD;
    }
    // Fifth ACT must wait until tFAW past the first.
    EXPECT_FALSE(rank.canIssue(DramCommand::Activate, 4, 1, now));
    EXPECT_TRUE(rank.canIssue(DramCommand::Activate, 4, 1, t.tFAW));
}

TEST(Rank, DataBusSerializesTransfers)
{
    const DramTiming t = defaultTiming();
    DramOrg org;
    Rank rank(t, org);
    rank.issue(DramCommand::Activate, 0, 1, 0);
    rank.issue(DramCommand::Activate, 1, 1, t.tRRD);
    // Wait until both banks are column-ready so only the bus gates.
    const Cycle rd = t.tRRD + t.tRCD;
    rank.issue(DramCommand::Read, 0, 1, rd, false);
    // A second read whose data would overlap the bus must wait.
    EXPECT_FALSE(rank.canIssue(DramCommand::Read, 1, 1, rd + 2));
    EXPECT_TRUE(rank.canIssue(DramCommand::Read, 1, 1, rd + t.tBL));
}

TEST(Rank, RefreshRequiresAllBanksIdle)
{
    const DramTiming t = defaultTiming();
    DramOrg org;
    Rank rank(t, org);
    rank.issue(DramCommand::Activate, 3, 1, 0);
    EXPECT_FALSE(rank.canRefresh(t.tRAS));
    rank.issue(DramCommand::Precharge, 3, 0, t.tRAS);
    // Still not idle until tRC from the ACT.
    EXPECT_FALSE(rank.canRefresh(t.tRAS + 1));
    EXPECT_TRUE(rank.canRefresh(t.tRC + t.tRP));
}

TEST(Rank, RefreshOccupiesTRfc)
{
    const DramTiming t = defaultTiming();
    DramOrg org;
    Rank rank(t, org);
    const Cycle done = rank.refresh(0);
    EXPECT_EQ(done, t.tRFC);
    EXPECT_TRUE(rank.refreshing(t.tRFC - 1));
    EXPECT_FALSE(rank.refreshing(t.tRFC));
    EXPECT_EQ(rank.refreshCount(), 1u);
    EXPECT_FALSE(rank.canIssue(DramCommand::Activate, 0, 1, 10));
    EXPECT_TRUE(rank.canIssue(DramCommand::Activate, 0, 1, t.tRFC));
}


TEST(Ddr5Preset, DoubledRefreshHalvesTheWindow)
{
    const DramTimingNs ddr4;
    const DramTimingNs ddr5 = DramTimingNs::ddr5();
    EXPECT_DOUBLE_EQ(ddr5.tREFI, ddr4.tREFI / 2.0);
    EXPECT_LT(ddr5.tCK, ddr4.tCK);
    // Core row timing is generation-stable.
    EXPECT_DOUBLE_EQ(ddr5.tRC, ddr4.tRC);
    // The attack-relevant quantity: refresh epochs per 64 ms double,
    // so activations available per epoch halve.
    const DramTiming t4 = DramTiming::fromNs(ddr4);
    const DramTiming t5 = DramTiming::fromNs(ddr5);
    EXPECT_NEAR(static_cast<double>(t5.tREFI),
                static_cast<double>(t4.tREFI) / 2.0, 2.0);
}

} // namespace
} // namespace srs
