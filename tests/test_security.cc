/**
 * @file
 * Tests for the analytical security models — these encode the
 * paper's headline numbers as regression checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include <cmath>

#include "common/logging.hh"
#include "security/attack_model.hh"
#include "security/half_double.hh"
#include "security/monte_carlo.hh"
#include "security/outlier_model.hh"
#include "security/power_model.hh"
#include "security/storage_model.hh"

namespace srs
{
namespace
{

constexpr double kHour = 3600.0;
constexpr double kDay = 24 * kHour;
constexpr double kYear = 365 * kDay;

AttackParams
paperParams(std::uint32_t trh = 4800, std::uint32_t rate = 6)
{
    AttackParams p;
    p.trh = trh;
    p.swapRate = rate;
    return p;
}

TEST(Juggernaut, Equation1LatentBias)
{
    JuggernautModel m(paperParams());
    const AttackResult r = m.evaluateRrs(800);
    // Paper Section III-A: 800 rounds -> ~1600 + 1.5*800 = 2800...
    // (text quotes 2401 with L=2 bounds; our L=1.5 average).
    EXPECT_NEAR(r.actAggr, 2.0 * 800 + 1.5 * 800, 1.0);
    EXPECT_EQ(r.k, 3u);
}

TEST(Juggernaut, RequiredGuessesMatchFigure7)
{
    // Figure 7 at T_RH 4800: k = 4 for N <= 500, k = 2 for N >= 1100.
    JuggernautModel m(paperParams());
    EXPECT_EQ(m.requiredGuesses(0), 4u);
    EXPECT_EQ(m.requiredGuesses(400), 4u);
    EXPECT_EQ(m.requiredGuesses(800), 3u);
    EXPECT_EQ(m.requiredGuesses(1100), 2u);
}

TEST(Juggernaut, LowTrhBreaksInOneEpoch)
{
    // Figure 7 note: at T_RH 1200/2400, latent activations alone
    // (k = 0) break RRS within a single refresh interval.
    JuggernautModel m(paperParams(1200, 6));
    const AttackResult best = m.bestRrs();
    EXPECT_EQ(best.k, 0u);
    EXPECT_NEAR(best.timeToBreakSec, 64e-3, 1e-6);
}

TEST(Juggernaut, BreaksRrsInUnder4Hours)
{
    // The headline: T_RH 4800, swap rate 6 -> < 4 hours (Figure 6).
    JuggernautModel m(paperParams());
    const AttackResult best = m.bestRrs();
    EXPECT_TRUE(best.feasible);
    EXPECT_LT(best.timeToBreakSec, 4 * kHour);
    EXPECT_GT(best.timeToBreakSec, 0.5 * kHour);
    // The optimum sits near N ~ 1100 (paper Section III-C).
    EXPECT_NEAR(static_cast<double>(best.rounds), 1100.0, 150.0);
}

TEST(Juggernaut, RrsBrokenUnderOneDayForAllSwapRates)
{
    // Abstract: "breaks RRS in under 1 day regardless of the swap
    // rate" (rates 6-10 at T_RH 4800, Figure 10).
    for (std::uint32_t rate = 6; rate <= 10; ++rate) {
        JuggernautModel m(paperParams(4800, rate));
        EXPECT_LT(m.bestRrs().timeToBreakSec, kDay) << "rate " << rate;
    }
}

TEST(Juggernaut, SrsHoldsForYears)
{
    // Figure 10: SRS at T_RH 4800 / rate 6 -> > 2 years.
    JuggernautModel m(paperParams());
    const AttackResult srs = m.evaluateSrs();
    EXPECT_GT(srs.timeToBreakSec, 2 * kYear);
}

TEST(Juggernaut, SrsSecurityGrowsWithSwapRate)
{
    // "SRS is more robust at higher swap rates" (Section IV-E).
    // Integer T_S rounding makes the curve non-monotone point to
    // point, so compare every higher rate against the rate-6 floor.
    const double base = JuggernautModel(paperParams(4800, 6))
                            .evaluateSrs().timeToBreakSec;
    for (std::uint32_t rate = 7; rate <= 10; ++rate) {
        JuggernautModel m(paperParams(4800, rate));
        const double t = m.evaluateSrs().timeToBreakSec;
        EXPECT_GT(t, 10.0 * base) << "rate " << rate;
    }
}

TEST(Juggernaut, Figure1aRandomGuessTakesYears)
{
    // Figure 1(a): the RRS-studied attack at rate 6 needs ~10^3 days.
    JuggernautModel m(paperParams());
    const AttackResult r = m.evaluateRrs(0);
    EXPECT_GT(r.timeToBreakSec, 300 * kDay);
    EXPECT_LT(r.timeToBreakSec, 30000 * kDay);
}

TEST(Juggernaut, TimeToBreakHasCliffsAtKTransitions)
{
    // Figure 6's "steep cliffs": crossing an N where k drops causes
    // a discontinuous improvement.
    JuggernautModel m(paperParams());
    // Find the N where k changes from 3 to 2.
    std::uint64_t cliff = 0;
    for (std::uint64_t n = 800; n < 1400; ++n) {
        if (m.requiredGuesses(n) == 2) {
            cliff = n;
            break;
        }
    }
    ASSERT_GT(cliff, 0u);
    const double before = m.evaluateRrs(cliff - 1).timeToBreakSec;
    const double after = m.evaluateRrs(cliff).timeToBreakSec;
    EXPECT_GT(before / after, 50.0);
}

TEST(Juggernaut, TimeIncreasesWithinSameK)
{
    // Within a k-plateau, more rounds shrink G and raise the time.
    JuggernautModel m(paperParams());
    ASSERT_EQ(m.requiredGuesses(600), m.requiredGuesses(700));
    EXPECT_LT(m.evaluateRrs(600).timeToBreakSec,
              m.evaluateRrs(700).timeToBreakSec);
}

TEST(Juggernaut, InfeasibleWhenRoundsExceedEpoch)
{
    JuggernautModel m(paperParams());
    // ~1670 rounds of (T_S-1)*tRC + t_reswap exhaust the 61 ms budget.
    const AttackResult r = m.evaluateRrs(5000);
    EXPECT_FALSE(r.feasible);
}

TEST(Juggernaut, MultiBankAttackIsFarSlower)
{
    // Section III-C: 16 banks turn 4 hours into years.
    JuggernautModel m(paperParams());
    const double single = m.bestRrs().timeToBreakSec;
    const double multi = m.evaluateRrsMultiBank(16).timeToBreakSec;
    EXPECT_GT(multi, 100.0 * single);
    EXPECT_GT(multi, kYear);
}

TEST(Juggernaut, OpenPagePolicySlowsAttackAtHighTrh)
{
    // Section VIII-3: open page stretches the attack at T_RH 4800...
    AttackParams open = paperParams();
    open.actTimeFactor = kOpenPageActFactor;
    const double closed =
        JuggernautModel(paperParams()).bestRrs().timeToBreakSec;
    const double opened =
        JuggernautModel(open).bestRrs().timeToBreakSec;
    EXPECT_GT(opened, 5.0 * closed);

    // ...but not at low T_RH, where latent activations alone win.
    AttackParams lowOpen = paperParams(2400, 6);
    lowOpen.actTimeFactor = 2.0;
    EXPECT_LT(JuggernautModel(lowOpen).bestRrs().timeToBreakSec, kDay);
}

TEST(Juggernaut, Ddr5DoubleRefreshStillBroken)
{
    // Section VIII-5: DDR5 refreshes 2x as often (32 ms windows);
    // RRS still falls in under a day when T_RH <= ~3100.
    AttackParams ddr5 = paperParams(3100, 6);
    ddr5.epochSec = 32e-3;
    ddr5.refreshOpsPerEpoch = 8192 / 2;
    JuggernautModel m(ddr5);
    EXPECT_LT(m.bestRrs().timeToBreakSec, kDay);
}

TEST(MonteCarlo, MatchesAnalyticAtModerateProbability)
{
    // Use T_RH 2400 with few rounds so per-epoch success is sampled
    // event-by-event.
    AttackParams p = paperParams(2400, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(900);
    ASSERT_TRUE(analytic.feasible);
    MonteCarloAttack mc(p, 1234);
    const MonteCarloResult r = mc.runRrs(900, 20000);
    ASSERT_TRUE(r.feasible);
    // P[X = k] vs P[X >= k] differ negligibly in this regime.
    EXPECT_NEAR(r.meanTimeSec / analytic.timeToBreakSec, 1.0, 0.15);
}

TEST(MonteCarlo, ZeroKBreaksInOneEpoch)
{
    AttackParams p = paperParams(1200, 6);
    MonteCarloAttack mc(p, 1);
    const MonteCarloResult r = mc.runRrs(600, 100);
    EXPECT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(r.meanEpochs, 1.0);
}

TEST(MonteCarloBatch, SingleShardMatchesSerialBitForBit)
{
    // shardSeed(base, 0) == base, so a one-shard batch replays the
    // serial campaign exactly.
    AttackParams p = paperParams(2400, 6);
    MonteCarloAttack serial(p, 42);
    const MonteCarloResult a = serial.runRrs(900, 4000);
    MonteCarloBatch batch(p, 42, 4);
    const MonteCarloResult b = batch.runRrs(900, 4000, 100000, 1);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_DOUBLE_EQ(a.meanEpochs, b.meanEpochs);
    EXPECT_DOUBLE_EQ(a.meanTimeSec, b.meanTimeSec);
    EXPECT_DOUBLE_EQ(a.stddevTimeSec, b.stddevTimeSec);
}

TEST(MonteCarloBatch, ThreadCountNeverChangesResults)
{
    AttackParams p = paperParams(2400, 6);
    MonteCarloBatch one(p, 7, 1);
    MonteCarloBatch many(p, 7, 8);
    const MonteCarloResult a = one.runRrs(900, 8000, 100000, 8);
    const MonteCarloResult b = many.runRrs(900, 8000, 100000, 8);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.meanEpochs, b.meanEpochs);
    EXPECT_DOUBLE_EQ(a.meanTimeSec, b.meanTimeSec);
    EXPECT_DOUBLE_EQ(a.stddevTimeSec, b.stddevTimeSec);

    const MonteCarloResult c = one.runSrs(2000, 4);
    const MonteCarloResult d = many.runSrs(2000, 4);
    EXPECT_EQ(c.feasible, d.feasible);
    EXPECT_DOUBLE_EQ(c.meanTimeSec, d.meanTimeSec);
}

TEST(MonteCarloBatch, MatchesAnalyticAtModerateProbability)
{
    AttackParams p = paperParams(2400, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(900);
    ASSERT_TRUE(analytic.feasible);
    MonteCarloBatch batch(p, 1234, 0);
    const MonteCarloResult r = batch.runRrs(900, 20000);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.iterations, 20000u);
    EXPECT_NEAR(r.meanTimeSec / analytic.timeToBreakSec, 1.0, 0.15);
}

TEST(MonteCarloBatch, ShardResolution)
{
    EXPECT_EQ(MonteCarloBatch::resolveShards(0, 20000), 16u);
    EXPECT_EQ(MonteCarloBatch::resolveShards(0, 5), 5u);
    EXPECT_EQ(MonteCarloBatch::resolveShards(7, 20000), 7u);
    EXPECT_EQ(MonteCarloBatch::resolveShards(64, 10), 10u);
    EXPECT_EQ(MonteCarloBatch::resolveShards(4, 0), 1u);
    EXPECT_EQ(MonteCarloBatch::shardSeed(99, 0), 99u);
    EXPECT_NE(MonteCarloBatch::shardSeed(99, 1),
              MonteCarloBatch::shardSeed(99, 2));
}

TEST(MonteCarlo, GeometricFallbackForTinyProbabilities)
{
    AttackParams p = paperParams(4800, 6);
    MonteCarloAttack mc(p, 7);
    const MonteCarloResult r = mc.runRrs(1100, 2000);
    ASSERT_TRUE(r.feasible);
    JuggernautModel m(p);
    const double analytic = m.evaluateRrs(1100).timeToBreakSec;
    EXPECT_NEAR(r.meanTimeSec / analytic, 1.0, 0.2);
}

TEST(MonteCarlo, ValveCensorsInsteadOfBookingBreaks)
{
    // Regression for the old safety-valve bias: a trial that hit the
    // epoch cap used to be booked as a break *at* the cap, silently
    // deflating the mean.  With a valve far below the expected
    // epoch count, most trials are cut off — they must be recorded
    // as censored, excluded from the time mean, and flagged.
    AttackParams p = paperParams(2400, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(900);
    ASSERT_TRUE(analytic.feasible);
    const auto valve =
        static_cast<std::uint64_t>(analytic.expectedEpochs / 4.0);
    ASSERT_GE(valve, 1u);

    MonteCarloAttack mc(p, 99);
    mc.setEpochValve(valve);
    const MonteCarloResult r = mc.run(analytic, 2000, 100000);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.iterations, 2000u);
    // P[T > valve] ~ e^{-1/4} ~ 78%: censoring must be visible and
    // must mark the estimate unreliable (> 5% censored).
    EXPECT_GT(r.censored, r.iterations / 2);
    EXPECT_LT(r.censored, r.iterations);
    EXPECT_FALSE(r.reliable);
    // Censored trials are excluded: every kept trial broke within
    // the valve, so the mean cannot exceed valve epochs.
    EXPECT_LE(r.meanTimeSec,
              static_cast<double>(valve) * p.epochSec + 1e-12);
    EXPECT_LE(r.meanEpochs, static_cast<double>(valve));
    // The old estimator — censored trials booked as breaks at the
    // cap and averaged in — underestimates the analytic
    // time-to-break by a wide margin; that bias is what the
    // censored count now surfaces.
    const double oldBiased =
        (r.sumTimeSec
         + static_cast<double>(r.censored)
               * static_cast<double>(valve) * p.epochSec)
        / static_cast<double>(r.iterations);
    EXPECT_LT(oldBiased, 0.5 * analytic.timeToBreakSec);
}

TEST(MonteCarlo, NoCensoringUnderDefaultValve)
{
    // The derived valve (100x the epoch loop limit) sits far above
    // any expected epoch count in the iterate regime.
    AttackParams p = paperParams(2400, 6);
    MonteCarloAttack mc(p, 11);
    const MonteCarloResult r = mc.runRrs(900, 4000);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.censored, 0u);
    EXPECT_TRUE(r.reliable);
    EXPECT_GT(r.timeCiHiSec, r.timeCiLoSec);
    EXPECT_GE(r.meanTimeSec, r.timeCiLoSec);
    EXPECT_LE(r.meanTimeSec, r.timeCiHiSec);
}

TEST(MonteCarlo, InfeasibleAnalyticWithZeroKStaysInfeasible)
{
    // Regression: rounds so large the biasing phase overruns the
    // epoch give an *infeasible* analytic result whose k is 0
    // (latent activations alone exceed T_RH).  The old code keyed
    // "instant break" off k == 0 alone and reported a feasible
    // one-epoch break for an attack that cannot run at all.
    AttackParams p = paperParams(4800, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(100000);
    ASSERT_FALSE(analytic.feasible);
    ASSERT_EQ(analytic.k, 0u);

    MonteCarloAttack mc(p, 3);
    const MonteCarloResult r = mc.run(analytic, 500, 100000);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.reliable);
    EXPECT_DOUBLE_EQ(r.meanTimeSec, 0.0);
    EXPECT_DOUBLE_EQ(r.meanEpochs, 0.0);
}

TEST(MonteCarloBatch, ShardCountInvariantIncludingConfidenceFields)
{
    // The campaign always uses the fixed strata, so 1 shard and 16
    // shards (and any thread count) must agree bit for bit on every
    // field — including the exact sums and the confidence columns
    // that land in the v6 CSV.
    AttackParams p = paperParams(2400, 6);
    MonteCarloBatch one(p, 4242, 1);
    MonteCarloBatch many(p, 4242, 8);
    const MonteCarloResult a = one.runRrs(900, 6000, 100000, 1);
    const MonteCarloResult b = many.runRrs(900, 6000, 100000, 16);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.censored, b.censored);
    EXPECT_DOUBLE_EQ(a.meanEpochs, b.meanEpochs);
    EXPECT_DOUBLE_EQ(a.meanTimeSec, b.meanTimeSec);
    EXPECT_DOUBLE_EQ(a.stddevTimeSec, b.stddevTimeSec);
    EXPECT_DOUBLE_EQ(a.timeCiLoSec, b.timeCiLoSec);
    EXPECT_DOUBLE_EQ(a.timeCiHiSec, b.timeCiHiSec);
    EXPECT_DOUBLE_EQ(a.pBreak, b.pBreak);
    EXPECT_DOUBLE_EQ(a.pBreakCiLo, b.pBreakCiLo);
    EXPECT_DOUBLE_EQ(a.pBreakCiHi, b.pBreakCiHi);
    EXPECT_DOUBLE_EQ(a.sumTimeSec, b.sumTimeSec);
    EXPECT_DOUBLE_EQ(a.sumSqTimeSec, b.sumSqTimeSec);
    EXPECT_DOUBLE_EQ(a.sumPBreak, b.sumPBreak);
    EXPECT_DOUBLE_EQ(a.sumSqPBreak, b.sumSqPBreak);
    EXPECT_EQ(a.reliable, b.reliable);
}

TEST(MonteCarlo, ImportanceAndNaiveEstimatorsAgree)
{
    // The same cell run through both estimator paths: a high epoch
    // loop limit keeps the per-epoch probability above 1/limit (the
    // naive epoch-by-epoch path); a low limit pushes the same cell
    // into the stratified-geometric + importance-sampled path.  The
    // two p_break estimates must agree within overlapping 95% CIs,
    // and both must straddle the analytic per-epoch probability.
    AttackParams p = paperParams(2400, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(900);
    ASSERT_TRUE(analytic.feasible);

    MonteCarloAttack naive(p, 2026);
    const MonteCarloResult a = naive.run(analytic, 20000, 100000);
    MonteCarloAttack tail(p, 2026);
    const MonteCarloResult b = tail.run(analytic, 20000, 100);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);

    // CIs overlap...
    EXPECT_LE(a.pBreakCiLo, b.pBreakCiHi);
    EXPECT_LE(b.pBreakCiLo, a.pBreakCiHi);
    // ...and each covers the analytic value.
    EXPECT_LE(a.pBreakCiLo, analytic.pSuccess);
    EXPECT_GE(a.pBreakCiHi, analytic.pSuccess);
    EXPECT_LE(b.pBreakCiLo, analytic.pSuccess);
    EXPECT_GE(b.pBreakCiHi, analytic.pSuccess);
    // Time estimates agree with the analytic expectation too.
    EXPECT_NEAR(a.meanTimeSec / analytic.timeToBreakSec, 1.0, 0.15);
    EXPECT_NEAR(b.meanTimeSec / analytic.timeToBreakSec, 1.0, 0.15);
}

TEST(MonteCarlo, ImportanceSamplingResolvesDeepTail)
{
    // At T_RH 4800 / N = 0 the per-epoch probability is ~1e-9 —
    // naive sampling would need ~1/p trials to see one success.
    // The importance-sampled estimator must land within a few
    // relative percent with 20k trials.
    AttackParams p = paperParams(4800, 6);
    JuggernautModel m(p);
    const AttackResult analytic = m.evaluateRrs(0);
    ASSERT_TRUE(analytic.feasible);
    ASSERT_LT(analytic.pSuccess, 1e-6);

    MonteCarloAttack mc(p, 31337);
    const MonteCarloResult r = mc.run(analytic, 20000, 100000);
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.pBreak, 0.0);
    EXPECT_NEAR(r.pBreak / analytic.pSuccess, 1.0, 0.1);
    EXPECT_LE(r.pBreakCiLo, analytic.pSuccess);
    EXPECT_GE(r.pBreakCiHi, analytic.pSuccess);
}

TEST(AttackParams, FromAxesMatchesPaperDefaultsOnDdr4)
{
    // The default (ddr4, closed-page) axes must reproduce the
    // paper-default AttackParams exactly — the security sweep and
    // the hand-written Table II agree on every knob.
    const AttackParams derived =
        attackParamsFromAxes(SystemAxes{}, 4800, 6);
    const AttackParams paper = paperParams(4800, 6);
    EXPECT_EQ(derived.trh, paper.trh);
    EXPECT_EQ(derived.swapRate, paper.swapRate);
    EXPECT_EQ(derived.rowsPerBank, paper.rowsPerBank);
    EXPECT_DOUBLE_EQ(derived.tRcSec, paper.tRcSec);
    EXPECT_DOUBLE_EQ(derived.tRfcSec, paper.tRfcSec);
    EXPECT_EQ(derived.refreshOpsPerEpoch, paper.refreshOpsPerEpoch);
    EXPECT_DOUBLE_EQ(derived.epochSec, paper.epochSec);
    EXPECT_DOUBLE_EQ(derived.tSwapSec, paper.tSwapSec);
    EXPECT_DOUBLE_EQ(derived.tReswapSec, paper.tReswapSec);
    EXPECT_DOUBLE_EQ(derived.latentPerRound, paper.latentPerRound);
    EXPECT_DOUBLE_EQ(derived.actTimeFactor, paper.actTimeFactor);
}

TEST(AttackParams, FromAxesDerivesDdr5AndOpenPage)
{
    // The ddr5 preset halves tREFI: 32 ms epochs holding 4096
    // refresh commands (the Section VIII-5 environment the benches
    // used to hand-roll), with the preset's own tRC/tRFC.
    SystemAxes ddr5;
    ddr5.preset = DramPreset::Ddr5;
    const AttackParams p = attackParamsFromAxes(ddr5, 3100, 6);
    EXPECT_DOUBLE_EQ(p.epochSec, 32e-3);
    EXPECT_EQ(p.refreshOpsPerEpoch, 4096u);
    const DramTimingNs t = DramTimingNs::preset(DramPreset::Ddr5);
    EXPECT_DOUBLE_EQ(p.tRcSec, t.tRC * 1e-9);
    EXPECT_DOUBLE_EQ(p.tRfcSec, t.tRFC * 1e-9);
    EXPECT_DOUBLE_EQ(p.actTimeFactor, 1.0);

    SystemAxes open;
    open.pagePolicy = PagePolicy::Open;
    EXPECT_DOUBLE_EQ(attackParamsFromAxes(open, 4800, 6)
                         .actTimeFactor,
                     kOpenPageActFactor);

    // A @trefi override stretches the epoch proportionally.
    SystemAxes relaxed;
    relaxed.tRefiNs = 15600;
    const AttackParams r = attackParamsFromAxes(relaxed, 4800, 6);
    EXPECT_DOUBLE_EQ(r.epochSec, 128e-3);
    EXPECT_EQ(r.refreshOpsPerEpoch, 16384u);
}

TEST(Outlier, PaperFigure13Anchors)
{
    // T_RH 4800, swap rate 3: 3 simultaneous outliers every ~31
    // days; 4 outliers take ~64 years.  Check order of magnitude.
    OutlierParams p;
    OutlierModel m(p);
    const double t3 = m.timeToAppearSec(3);
    EXPECT_GT(t3, 5 * kDay);
    EXPECT_LT(t3, 200 * kDay);
    const double t4 = m.timeToAppearSec(4);
    EXPECT_GT(t4, 10 * kYear);
}

TEST(Outlier, HigherSwapRateMakesOutliersRarer)
{
    // Figure 13: at swap rate k an outlier is a row chosen k times;
    // higher rates need more simultaneous landings and are rarer.
    double prev = 0.0;
    for (std::uint32_t rate = 2; rate <= 6; ++rate) {
        OutlierParams p;
        p.swapRate = rate;
        OutlierModel m(p);
        const double t = m.timeToAppearSec(3);
        EXPECT_GT(t, prev) << "rate " << rate;
        prev = t;
    }
}

TEST(Outlier, SwapsPerEpochMatchesActMax)
{
    OutlierParams p; // trh 4800, rate 3 -> ts 1600
    OutlierModel m(p);
    EXPECT_NEAR(m.swapsPerEpoch(), 850.0, 1.0);
}

TEST(Outlier, ExpectedRowsDecayWithK)
{
    OutlierParams p;
    OutlierModel m(p);
    EXPECT_GT(m.expectedRowsWith(1), m.expectedRowsWith(2));
    EXPECT_GT(m.expectedRowsWith(2), m.expectedRowsWith(3));
}

TEST(Storage, ScaleSrsSavesAbout3xAt1200)
{
    StorageParams p;
    p.trh = 1200;
    StorageModel m(p);
    EXPECT_NEAR(m.savingsRatio(), 3.3, 0.7);
    EXPECT_GT(m.totalRrsBytes(), 100ULL * 1024);
}

TEST(Storage, RitShrinksWithHigherTrh)
{
    StorageParams lo, hi;
    lo.trh = 1200;
    hi.trh = 4800;
    EXPECT_GT(StorageModel(lo).ritBytesRrs(),
              StorageModel(hi).ritBytesRrs());
}

TEST(Storage, ScaleSrsRitNearPaperAt4800)
{
    StorageParams p;
    p.trh = 4800;
    StorageModel m(p);
    // Paper Table IV: 9.4KB.
    EXPECT_NEAR(static_cast<double>(m.ritBytesScaleSrs()) / 1024.0,
                9.4, 2.0);
}

TEST(Storage, SingleTableOptimizationHalves)
{
    // Section VIII-4: the direction-bit trick halves the RIT.
    StorageParams p;
    StorageModel m(p);
    const double ratio =
        static_cast<double>(m.ritBytesScaleSrs()) /
        static_cast<double>(m.ritBytesScaleSrsSingleTable());
    EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Storage, BreakdownHasAllTableIVLines)
{
    StorageModel m(StorageParams{});
    const auto lines = m.breakdown();
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0].structure, "RIT");
    EXPECT_EQ(lines[2].structure, "Place-Back Buffer");
    EXPECT_EQ(lines[2].rrsBytes, 0u); // RRS has no place-back buffer
    EXPECT_EQ(lines[2].scaleSrsBytes, 8192u);
}

TEST(Power, CalibratedToTableV)
{
    PowerModel m;
    // RRS: 36KB -> ~903 mW; Scale-SRS: 18.7KB -> ~703 mW.
    EXPECT_NEAR(m.sramPowerMw(36.0), 903.0, 5.0);
    EXPECT_NEAR(m.sramPowerMw(18.7), 703.0, 5.0);
}

TEST(Power, DramOverheadMatchesTableV)
{
    PowerModel m;
    // RRS: swap rate 6, two row-pair moves per re-mitigation.
    EXPECT_NEAR(m.dramOverheadPct(6, 2.0), 0.5, 0.01);
    // Scale-SRS: swap rate 3, one move.
    EXPECT_NEAR(m.dramOverheadPct(3, 1.0), 0.125, 0.08);
}

TEST(AttackParams, TsDerivedFromSwapRate)
{
    AttackParams p = paperParams(4800, 6);
    EXPECT_EQ(p.ts(), 800u);
}


// ---------------------------------------------------------------------
// Half-double model (motivation for aggressor-focused mitigation).
// ---------------------------------------------------------------------

TEST(HalfDouble, AggressorLevelIsJustTrh)
{
    HalfDoubleModel m(HalfDoubleParams{});
    const HalfDoubleResult r = m.evaluateAtDistance(0);
    EXPECT_EQ(r.aggressorActsNeeded, 4800u);
    EXPECT_TRUE(r.feasibleWithinEpoch);
}

TEST(HalfDouble, InducedActsScaleWithRefreshPeriod)
{
    HalfDoubleParams p;
    p.victimRefreshPeriod = 100;
    HalfDoubleModel m(p);
    // 100k aggressor acts -> 1k refreshes of each blast-radius row.
    EXPECT_DOUBLE_EQ(m.inducedActivations(1, 100000), 1000.0);
    EXPECT_DOUBLE_EQ(m.inducedActivations(2, 100000), 1000.0);
    // Beyond blastRadius + 1 nothing arrives.
    EXPECT_DOUBLE_EQ(m.inducedActivations(3, 100000), 0.0);
}

TEST(HalfDouble, AggressiveVfmIsVulnerable)
{
    // T_V = 128: half-double needs 128 * 4800 = 614k acts < 1.36M.
    HalfDoubleParams p;
    p.victimRefreshPeriod = 128;
    HalfDoubleModel m(p);
    const HalfDoubleResult r = m.evaluate();
    EXPECT_TRUE(r.feasibleWithinEpoch);
    EXPECT_EQ(r.aggressorActsNeeded, 128u * 4800);
    EXPECT_GE(r.inducedActs, 4800.0);
}

TEST(HalfDouble, LazyVfmEscapesHalfDoubleButNotDistance1)
{
    // T_V = 2400: half-double needs 11.5M acts (> ACT_max) but a
    // double-sided attack breaks distance 1.
    HalfDoubleParams p;
    p.victimRefreshPeriod = 2400;
    HalfDoubleModel m(p);
    EXPECT_FALSE(m.evaluate().feasibleWithinEpoch);
    EXPECT_FALSE(m.distance1Safe(2));
}

TEST(HalfDouble, NoSafeRefreshPeriodAtLowTrh)
{
    // The paper's scaling argument: as T_RH drops, the safe band
    // between half-double (small T_V) and distance-1 (large T_V)
    // vanishes.
    HalfDoubleParams p;
    p.trh = 1200;
    HalfDoubleModel m(p);
    // Vulnerable to half-double while T_V <= 1133.
    EXPECT_EQ(m.maxVulnerablePeriod(), 1133u);
    // Safe from double-sided distance-1 only while T_V < 600.
    p.victimRefreshPeriod = 599;
    EXPECT_TRUE(HalfDoubleModel(p).distance1Safe(2));
    // 599 < 1133: every distance-1-safe period is half-double
    // vulnerable.
    EXPECT_LT(599u, m.maxVulnerablePeriod());
}

TEST(HalfDouble, DribbleLowersTheBar)
{
    HalfDoubleParams p;
    p.victimRefreshPeriod = 512;
    p.directDribble = 800;
    HalfDoubleModel m(p);
    EXPECT_EQ(m.evaluate().aggressorActsNeeded, 512u * 4000);
    p.directDribble = 5000; // dribble alone crosses T_RH
    EXPECT_EQ(HalfDoubleModel(p).evaluate().aggressorActsNeeded, 0u);
}

TEST(HalfDouble, CountedRefreshesCompoundPerLevel)
{
    HalfDoubleParams p;
    p.victimRefreshPeriod = 128;
    p.refreshesCounted = true;
    HalfDoubleModel m(p);
    const HalfDoubleResult d2 = m.evaluateAtDistance(2);
    // 128^2 * 4800 = 78.6M >> ACT_max: escalation becomes
    // infeasible once refreshes are fed back into the tracker.
    EXPECT_FALSE(d2.feasibleWithinEpoch);
    EXPECT_GT(d2.epochFraction, 1.0);
}

TEST(HalfDouble, WiderBlastRadiusShiftsNotShrinksExposure)
{
    // Refreshing two rows per side just moves the target to
    // distance 3 at the same cost — Section IX-B's observation
    // that widening the radius does not solve the problem.
    HalfDoubleParams p1;
    p1.victimRefreshPeriod = 128;
    HalfDoubleParams p2 = p1;
    p2.blastRadius = 2;
    const auto r1 = HalfDoubleModel(p1).evaluate();
    const auto r2 = HalfDoubleModel(p2).evaluate();
    EXPECT_EQ(r1.aggressorActsNeeded, r2.aggressorActsNeeded);
}

TEST(HalfDouble, RejectsBadParams)
{
    HalfDoubleParams bad;
    bad.trh = 0;
    EXPECT_THROW(HalfDoubleModel{bad}, FatalError);
    bad = HalfDoubleParams{};
    bad.victimRefreshPeriod = 0;
    EXPECT_THROW(HalfDoubleModel{bad}, FatalError);
    bad = HalfDoubleParams{};
    bad.blastRadius = 0;
    EXPECT_THROW(HalfDoubleModel{bad}, FatalError);
}


// ---------------------------------------------------------------------
// Attack-model monotonicity properties (parameterized sweeps).
// ---------------------------------------------------------------------

/** Sweep T_RH values for monotonicity properties. */
class AttackMonotonicity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AttackMonotonicity, SwapRateStaircase)
{
    // Against the random-guess attack (N = 0) the required correct
    // guesses k never decrease with the swap rate, and each k step
    // jumps the time-to-break above everything seen before.  (The
    // raw time is a sawtooth — Figure 1(a) itself dips between
    // k steps because cheaper guesses mean more of them — so the
    // paper-faithful invariants are these two.)
    const std::uint32_t trh = GetParam();
    std::uint64_t prevK = 0;
    double runningMax = 0.0;
    for (std::uint32_t rate = 2; rate <= 10; ++rate) {
        AttackParams p;
        p.trh = trh;
        p.swapRate = rate;
        const AttackResult r = JuggernautModel(p).evaluateRrs(0);
        if (!r.feasible)
            break;
        EXPECT_GE(r.k, prevK) << "rate " << rate << " trh " << trh;
        if (r.k > prevK) {
            EXPECT_GT(r.timeToBreakSec, runningMax)
                << "rate " << rate << " trh " << trh;
        }
        prevK = r.k;
        runningMax = std::max(runningMax, r.timeToBreakSec);
    }
    EXPECT_GE(prevK, 2u);
}

TEST_P(AttackMonotonicity, SrsAlwaysBeatsBestRrs)
{
    const std::uint32_t trh = GetParam();
    for (std::uint32_t rate = 4; rate <= 8; rate += 2) {
        AttackParams p;
        p.trh = trh;
        p.swapRate = rate;
        JuggernautModel m(p);
        const AttackResult srs = m.evaluateSrs();
        const AttackResult rrs = m.bestRrs();
        if (!rrs.feasible)
            continue;
        if (srs.feasible) {
            // Equality holds exactly when the attacker-optimal N is
            // zero (high T_RH): biasing buys nothing, so "RRS under
            // Juggernaut" degenerates to the random-guess attack.
            EXPECT_GE(srs.timeToBreakSec, rrs.timeToBreakSec)
                << "rate " << rate << " trh " << trh;
            if (rrs.rounds > 0) {
                EXPECT_GT(srs.timeToBreakSec, rrs.timeToBreakSec)
                    << "rate " << rate << " trh " << trh;
            }
        }
    }
}

TEST_P(AttackMonotonicity, OpenPageNeverHelpsTheAttacker)
{
    const std::uint32_t trh = GetParam();
    AttackParams closed;
    closed.trh = trh;
    AttackParams open = closed;
    open.actTimeFactor = kOpenPageActFactor;
    const AttackResult rc = JuggernautModel(closed).bestRrs();
    const AttackResult ro = JuggernautModel(open).bestRrs();
    if (rc.feasible && ro.feasible)
        EXPECT_GE(ro.timeToBreakSec, rc.timeToBreakSec);
}

TEST_P(AttackMonotonicity, MoreBanksSlowTheAttack)
{
    const std::uint32_t trh = GetParam();
    AttackParams p;
    p.trh = trh;
    JuggernautModel m(p);
    double prev = 0.0;
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 16u}) {
        const AttackResult r = m.evaluateRrsMultiBank(banks, 400);
        if (!r.feasible)
            break;
        EXPECT_GE(r.timeToBreakSec, prev) << banks << " banks";
        prev = r.timeToBreakSec;
    }
}

INSTANTIATE_TEST_SUITE_P(TrhSweep, AttackMonotonicity,
                         ::testing::Values(1200u, 2400u, 4800u,
                                           9600u));

TEST(OutlierModelProperty, ExposureGrowsAsSwapRateDrops)
{
    double prev = std::numeric_limits<double>::infinity();
    for (const std::uint32_t rate : {8u, 6u, 4u, 3u, 2u}) {
        OutlierParams p;
        p.swapRate = rate;
        const double t = OutlierModel(p).timeToAppearSec(3);
        EXPECT_LT(t, prev) << "rate " << rate;
        prev = t;
    }
}

TEST(StorageModelProperty, SingleTableAlwaysRoughlyHalves)
{
    for (const std::uint32_t trh : {512u, 1200u, 2400u, 4800u}) {
        StorageParams p;
        p.trh = trh;
        StorageModel m(p);
        const double ratio =
            static_cast<double>(m.ritBytesScaleSrs()) /
            static_cast<double>(m.ritBytesScaleSrsSingleTable());
        EXPECT_GT(ratio, 1.8) << trh;
        EXPECT_LT(ratio, 2.1) << trh;
    }
}

TEST(StorageModelProperty, SavingsGrowAsTrhDrops)
{
    // The scalability argument: Scale-SRS's advantage widens at
    // lower thresholds (Table IV trend: 1.9x -> 3.2x).
    double prev = 0.0;
    for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
        StorageParams p;
        p.trh = trh;
        const double ratio = StorageModel(p).savingsRatio();
        EXPECT_GT(ratio, prev) << trh;
        prev = ratio;
    }
}


TEST(OpenPage, CalibratedFactorHitsPaperAnchors)
{
    // Section VIII-3: 4 hours closed -> ~10 days open at 4800/6...
    AttackParams p;
    p.actTimeFactor = kOpenPageActFactor;
    const AttackResult open = JuggernautModel(p).bestRrs();
    ASSERT_TRUE(open.feasible);
    const double days = open.timeToBreakSec / 86400.0;
    EXPECT_GT(days, 3.0);
    EXPECT_LT(days, 30.0);
    // ...and the advantage disappears below T_RH 3300: broken in
    // under 1 day even at swap rate 10.
    p.trh = 3300;
    p.swapRate = 10;
    const AttackResult low = JuggernautModel(p).bestRrs();
    ASSERT_TRUE(low.feasible);
    EXPECT_LT(low.timeToBreakSec, 86400.0);
}


TEST(OutlierModelMc, PoissonMatchesSimulation)
{
    // Validate the footnote-4 statistics in their regime of
    // validity (rare events, R_K << 1): a 4K-row bank with G = 3200
    // swap landings per epoch and k = 7 landings on the same row.
    // The footnote's Poisson pmf at M = 1 then coincides with the
    // simulated P[at least one such row] up to O(R_K).
    OutlierParams p;
    p.trh = 4800;
    p.swapRate = 3;
    p.rowsPerBank = 4096;
    p.actMaxPerEpoch = 3200 * 1600; // G = 3200 swaps per epoch
    OutlierModel model(p);
    const double rk = model.expectedRowsWith(7);
    ASSERT_LT(rk, 0.1) << "test regime must be rare-event";
    const double analytic = model.pSimultaneous(1, 7);
    const double simulated =
        model.simulateSimultaneous(1, 7, 8000, 0xFEED);
    ASSERT_GT(analytic, 1e-4);
    EXPECT_NEAR(simulated / analytic, 1.0, 0.3)
        << "analytic=" << analytic << " simulated=" << simulated;
}

TEST(OutlierModelMc, RareEventsStayRare)
{
    // At the paper's real scale (128K rows), 4000 simulated epochs
    // must show zero triple-outlier events (expected ~1 per 42000
    // epochs at rate 3).
    OutlierParams p;
    p.trh = 4800;
    p.swapRate = 3;
    OutlierModel model(p);
    EXPECT_EQ(model.simulateSimultaneous(3, 3, 200, 0xABC), 0.0);
}

} // namespace
} // namespace srs
