/**
 * @file
 * SecuritySweep engine tests: grid expansion order, axes-derived
 * attack parameters, per-cell seed purity, thread-count byte
 * identity, and the schema-v6 CSV row shape the security cells
 * share with the performance sweep.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "security/security_sweep.hh"
#include "sim/sweep.hh"

namespace srs
{
namespace
{

std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    for (;;) {
        const auto comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

TEST(SecurityCell, LabelSpellsDefenseAndRounds)
{
    SecurityCell cell;
    cell.defense = SecurityDefense::Srs;
    EXPECT_EQ(cell.label(), "attack:srs");
    cell.defense = SecurityDefense::Rrs;
    cell.rounds = 800;
    EXPECT_EQ(cell.label(), "attack:rrs@n=800");
    cell.bestRounds = true;
    EXPECT_EQ(cell.label(), "attack:rrs@best");
}

TEST(SecurityDefenseNames, RoundTripAndReject)
{
    EXPECT_STREQ(securityDefenseName(SecurityDefense::Srs), "srs");
    EXPECT_STREQ(securityDefenseName(SecurityDefense::Rrs), "rrs");
    EXPECT_EQ(securityDefenseFromName("srs"), SecurityDefense::Srs);
    EXPECT_EQ(securityDefenseFromName("rrs"), SecurityDefense::Rrs);
    EXPECT_THROW(securityDefenseFromName("scale-rrs"), FatalError);
}

TEST(SecurityGrid, ExpansionOrderMatchesPerfSweep)
{
    // Axes outermost (policy -> preset -> ... as SweepGrid), then
    // defenses, trhs, swapRates, the rounds axis innermost.  SRS
    // ignores rounds and appears once per (axes, trh, rate).
    SecurityGrid grid;
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.defenses = {SecurityDefense::Srs, SecurityDefense::Rrs};
    grid.trhs = {4800, 2400};
    grid.swapRates = {6};
    grid.rounds = {0, SecurityGrid::kBestRounds};
    const std::vector<SecurityCell> cells = grid.expand();
    // Per axes point: SRS 2 (trhs) + RRS 2 (trhs) * 2 (rounds) = 6.
    ASSERT_EQ(cells.size(), 12u);

    EXPECT_EQ(cells[0].label(), "attack:srs");
    EXPECT_EQ(cells[0].trh, 4800u);
    EXPECT_EQ(cells[1].label(), "attack:srs");
    EXPECT_EQ(cells[1].trh, 2400u);
    EXPECT_EQ(cells[2].label(), "attack:rrs@n=0");
    EXPECT_EQ(cells[2].trh, 4800u);
    EXPECT_EQ(cells[3].label(), "attack:rrs@best");
    EXPECT_EQ(cells[4].label(), "attack:rrs@n=0");
    EXPECT_EQ(cells[4].trh, 2400u);
    EXPECT_EQ(cells[5].label(), "attack:rrs@best");
    // Second axes point (ddr5) repeats the pattern.
    EXPECT_EQ(cells[6].axes.field(), "closed@ddr5");
    EXPECT_EQ(cells[6].label(), "attack:srs");
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(cells[i].axes.field(), "closed");
    for (std::size_t i = 6; i < 12; ++i)
        EXPECT_EQ(cells[i].axes.field(), "closed@ddr5");
}

TEST(SecurityGrid, RejectsInvalidCombinationsAtExpansion)
{
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Srs};
    grid.trhs = {4800};
    grid.swapRates = {1};
    EXPECT_THROW(grid.expand(), FatalError);

    grid.swapRates = {6000}; // T_S = 4800/6000 rounds to zero
    EXPECT_THROW(grid.expand(), FatalError);

    grid.swapRates = {6};
    grid.defenses.clear();
    EXPECT_THROW(grid.expand(), FatalError);
}

TEST(SecuritySweep, CellSeedIsPureFunctionOfIdentity)
{
    SecurityCell cell;
    cell.defense = SecurityDefense::Rrs;
    cell.trh = 2400;
    cell.swapRate = 6;
    cell.rounds = 900;
    const std::uint64_t direct = SweepRunner::cellSeed(
        77, "attack:rrs@n=900,2400,6,closed");
    EXPECT_EQ(SecuritySweep::cellSeed(77, cell), direct);

    // Different identity -> different seed; grid position is not an
    // input at all.
    SecurityCell other = cell;
    other.trh = 4800;
    EXPECT_NE(SecuritySweep::cellSeed(77, other),
              SecuritySweep::cellSeed(77, cell));
    other = cell;
    other.axes.preset = DramPreset::Ddr5;
    EXPECT_NE(SecuritySweep::cellSeed(77, other),
              SecuritySweep::cellSeed(77, cell));
}

TEST(SecuritySweep, ThreadCountNeverChangesBytes)
{
    SecurityGrid grid;
    grid.presets = {DramPreset::Ddr4, DramPreset::Ddr5};
    grid.defenses = {SecurityDefense::Srs, SecurityDefense::Rrs};
    grid.trhs = {2400};
    grid.swapRates = {6};
    grid.rounds = {900};

    SecuritySweep one(0xABC, 1);
    one.setIterations(2000);
    SecuritySweep many(0xABC, 8);
    many.setIterations(2000);
    std::ostringstream a, b;
    SecuritySweep::writeCsv(a, one.run(grid));
    SecuritySweep::writeCsv(b, many.run(grid));
    EXPECT_EQ(a.str(), b.str());
}

TEST(SecuritySweep, RowsCarrySchemaV6Shape)
{
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Rrs};
    grid.trhs = {2400};
    grid.swapRates = {6};
    grid.rounds = {900};
    SecuritySweep sweep(0x5EED, 2);
    sweep.setIterations(1000);
    const std::vector<SecurityResult> results = sweep.run(grid);
    ASSERT_EQ(results.size(), 1u);
    const SecurityResult &r = results[0];
    ASSERT_TRUE(r.mc.feasible);
    EXPECT_EQ(r.mc.iterations, 1000u);

    const std::string row = SecuritySweep::formatRow(0, r);
    const std::vector<std::string> f = fields(row);
    ASSERT_EQ(f.size(), SweepRunner::kRowColumns);
    EXPECT_EQ(f[0], "0");
    EXPECT_EQ(f[1], "attack:rrs@n=900");
    EXPECT_EQ(f[2], "rrs");
    EXPECT_EQ(f[3], "-");
    EXPECT_EQ(f[4], "2400");
    EXPECT_EQ(f[5], "6");
    EXPECT_EQ(f[6], "closed");
    EXPECT_EQ(f[7].substr(0, 2), "0x");
    EXPECT_EQ(f[7].size(), 18u);
    // The v6 Monte-Carlo confidence columns are live, not zeros.
    EXPECT_EQ(f[20], "1000");               // iterations
    EXPECT_EQ(f[21], "0");                  // censored
    EXPECT_NE(f[22], "0");                  // p_break
    EXPECT_NE(f[24], "0");                  // ci_hi
    // swaps/unswap_swaps/place_backs carry k, G, N.
    EXPECT_EQ(f[13], "900");
    EXPECT_NE(f[11], "0");

    std::ostringstream os;
    SecuritySweep::writeCsv(os, results);
    const std::string text = os.str();
    const std::string header = SweepRunner::csvHeader();
    ASSERT_GE(text.size(), header.size());
    EXPECT_EQ(text.substr(0, header.size()), header);
}

TEST(SecuritySweep, AnalyticOnlyLeavesCampaignColumnsZero)
{
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Srs};
    grid.trhs = {4800};
    grid.swapRates = {6};
    SecuritySweep sweep(0x5EED, 1);
    const std::vector<SecurityResult> results = sweep.run(grid);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].mc.iterations, 0u);
    EXPECT_TRUE(results[0].analytic.feasible);
    const std::vector<std::string> f =
        fields(SecuritySweep::formatRow(0, results[0]));
    ASSERT_EQ(f.size(), SweepRunner::kRowColumns);
    EXPECT_EQ(f[20], "0");
    EXPECT_EQ(f[21], "0");
    EXPECT_EQ(f[22], "0");
    // The analytic time still lands in baseline_ipc.
    EXPECT_NE(f[9], "0");
}

TEST(SecuritySweep, DerivedParamsMatchHandDerivation)
{
    // A ddr5 cell's Monte-Carlo campaign and analytic evaluation
    // must be driven by attackParamsFromAxes — cross-check the
    // sweep's analytic numbers against a hand-built model.
    SecurityGrid grid;
    grid.presets = {DramPreset::Ddr5};
    grid.defenses = {SecurityDefense::Rrs};
    grid.trhs = {3100};
    grid.swapRates = {6};
    grid.rounds = {SecurityGrid::kBestRounds};
    SecuritySweep sweep(1, 1);
    const std::vector<SecurityResult> results = sweep.run(grid);
    ASSERT_EQ(results.size(), 1u);

    SystemAxes axes;
    axes.preset = DramPreset::Ddr5;
    const JuggernautModel model(attackParamsFromAxes(axes, 3100, 6));
    const AttackResult expect = model.bestRrs();
    EXPECT_DOUBLE_EQ(results[0].analytic.timeToBreakSec,
                     expect.timeToBreakSec);
    EXPECT_EQ(results[0].analytic.rounds, expect.rounds);
    EXPECT_EQ(results[0].analytic.k, expect.k);
}

} // namespace
} // namespace srs
