/**
 * @file
 * Unit tests for the LLC model: set-associative tag store, way
 * reservation, the pin-buffer and the composed Llc with row pinning.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/llc.hh"
#include "cache/pin_buffer.hh"
#include "common/logging.hh"

namespace srs
{
namespace
{

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024; // 64 sets x 16 ways x 64B
    return cfg;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit); // same line
    EXPECT_EQ(cache.stats().get("hits"), 2u);
    EXPECT_EQ(cache.stats().get("misses"), 1u);
}

TEST(Cache, LruEviction)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    const std::uint64_t setStride = cfg.numSets() * cfg.lineBytes;
    // Fill one set completely, then one more: way 0's line evicts.
    for (std::uint32_t i = 0; i <= cfg.ways; ++i)
        cache.access(i * setStride, false);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(cfg.ways * setStride));
}

TEST(Cache, LruRefreshOnHit)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    const std::uint64_t setStride = cfg.numSets() * cfg.lineBytes;
    for (std::uint32_t i = 0; i < cfg.ways; ++i)
        cache.access(i * setStride, false);
    cache.access(0, false); // refresh line 0
    cache.access(cfg.ways * setStride, false);
    EXPECT_TRUE(cache.contains(0));            // survived
    EXPECT_FALSE(cache.contains(setStride));   // way 1 evicted
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    const std::uint64_t setStride = cfg.numSets() * cfg.lineBytes;
    cache.access(0, true); // dirty
    for (std::uint32_t i = 1; i <= cfg.ways; ++i) {
        const auto res = cache.access(i * setStride, false);
        if (i == cfg.ways) {
            EXPECT_TRUE(res.writebackNeeded);
            EXPECT_EQ(res.writebackAddr, 0u);
        }
    }
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    SetAssocCache cache(smallCache());
    cache.access(0x40, true);
    cache.access(0x80, false);
    EXPECT_TRUE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.invalidate(0x80));
    EXPECT_FALSE(cache.invalidate(0xc0)); // absent
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, ReservedWaysShrinkCapacity)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    std::vector<Addr> wbs;
    cache.reserveWays(0, cfg.ways, wbs);
    const auto res = cache.access(0, false); // maps to set 0
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.bypassed);
    EXPECT_FALSE(cache.contains(0));
}

TEST(Cache, ReservationEvictsDirtyResidents)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    const std::uint64_t setStride = cfg.numSets() * cfg.lineBytes;
    for (std::uint32_t i = 0; i < cfg.ways; ++i)
        cache.access(i * setStride, true);
    std::vector<Addr> wbs;
    cache.reserveWays(0, cfg.ways, wbs);
    EXPECT_EQ(wbs.size(), cfg.ways);
}

TEST(Cache, ReleaseRestoresAllocation)
{
    CacheConfig cfg = smallCache();
    SetAssocCache cache(cfg);
    std::vector<Addr> wbs;
    cache.reserveWays(0, cfg.ways, wbs);
    cache.releaseWays(0);
    EXPECT_FALSE(cache.access(0, false).bypassed);
    EXPECT_TRUE(cache.contains(0));
}

TEST(PinBuffer, PinAndLookup)
{
    PinBuffer pins(4, 8192);
    EXPECT_EQ(pins.lookup(0x2000), nullptr);
    ASSERT_NE(pins.pin(0x2000, 0), nullptr);
    EXPECT_NE(pins.lookup(0x2000), nullptr);
    EXPECT_NE(pins.lookup(0x2000 + 8191), nullptr); // same row
    EXPECT_EQ(pins.lookup(0x4000), nullptr);
}

TEST(PinBuffer, CapacityEnforced)
{
    PinBuffer pins(2, 8192);
    EXPECT_NE(pins.pin(0x0000, 0), nullptr);
    EXPECT_NE(pins.pin(0x2000, 8), nullptr);
    EXPECT_EQ(pins.pin(0x4000, 16), nullptr);
    EXPECT_EQ(pins.stats().get("pin_rejected_full"), 1u);
}

TEST(PinBuffer, DuplicateRejected)
{
    PinBuffer pins(4, 8192);
    EXPECT_NE(pins.pin(0x2000, 0), nullptr);
    EXPECT_EQ(pins.pin(0x2000, 8), nullptr);
    EXPECT_EQ(pins.size(), 1u);
}

TEST(PinBuffer, ClearEmpties)
{
    PinBuffer pins(4, 8192);
    pins.pin(0x2000, 0);
    pins.clear();
    EXPECT_EQ(pins.size(), 0u);
    EXPECT_EQ(pins.lookup(0x2000), nullptr);
}

TEST(PinBuffer, StorageBitsMatchPaper)
{
    // Paper Section V-C: 66 entries x 35 bits (48-bit address minus
    // 13 row-offset bits).
    PinBuffer pins(66, 8192);
    EXPECT_EQ(pins.storageBits(48), 66u * 35u);
}

TEST(Llc, PinnedRowAlwaysHits)
{
    Llc llc(CacheConfig{}, 8192, 66);
    const Addr rowBase = 0x100000;
    EXPECT_FALSE(llc.access(rowBase, false).hit); // cold miss
    ASSERT_TRUE(llc.pinRow(rowBase));
    for (Addr off = 0; off < 8192; off += 64) {
        const LlcResult res = llc.access(rowBase + off, false);
        EXPECT_TRUE(res.hit);
        EXPECT_TRUE(res.pinnedHit);
    }
    EXPECT_TRUE(llc.rowPinned(rowBase + 4096));
}

TEST(Llc, PinReservesSetRange)
{
    Llc llc(CacheConfig{}, 8192, 66);
    // 8KB row / 64B lines / 16 ways = 8 sets per pinned row.
    EXPECT_EQ(llc.setsPerRow(), 8u);
    ASSERT_TRUE(llc.pinRow(0));
    ASSERT_TRUE(llc.pinRow(8192));
    EXPECT_EQ(llc.pinnedRows(), 2u);
}

TEST(Llc, UnpinReturnsRowsAndRestoresCapacity)
{
    Llc llc(CacheConfig{}, 8192, 66);
    ASSERT_TRUE(llc.pinRow(0));
    ASSERT_TRUE(llc.pinRow(16384));
    const std::vector<Addr> rows = llc.unpinAll();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], 0u);
    EXPECT_EQ(rows[1], 16384u);
    EXPECT_EQ(llc.pinnedRows(), 0u);
    EXPECT_FALSE(llc.rowPinned(0));
}

TEST(Llc, PinIdempotent)
{
    Llc llc(CacheConfig{}, 8192, 66);
    EXPECT_TRUE(llc.pinRow(0));
    EXPECT_TRUE(llc.pinRow(0)); // already pinned: reports success
    EXPECT_EQ(llc.pinnedRows(), 1u);
}

TEST(Llc, PinCapacityBound)
{
    Llc llc(CacheConfig{}, 8192, 2);
    EXPECT_TRUE(llc.pinRow(0));
    EXPECT_TRUE(llc.pinRow(8192));
    EXPECT_FALSE(llc.pinRow(16384));
}

TEST(Llc, PaperCapacityShare)
{
    // Paper: 3 pinned rows = 24KB of an 8MB LLC ~ 0.3%; 66 rows
    // (multi-bank worst case) = 528KB ~ 6.5%.
    CacheConfig cfg; // 8MB
    Llc llc(cfg, 8192, 66);
    const double share3 = 3.0 * 8192 / cfg.sizeBytes;
    const double share66 = 66.0 * 8192 / cfg.sizeBytes;
    EXPECT_NEAR(share3 * 100, 0.29, 0.05);
    EXPECT_NEAR(share66 * 100, 6.45, 0.2);
}

TEST(Llc, RejectsOversizedPinCapacity)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    EXPECT_THROW(Llc(cfg, 8192, 66), FatalError);
}

TEST(Llc, PinSurfacesDisplacedDirtyForeignLines)
{
    // Regression: reserving a pinned row's set range displaces
    // whatever lives there.  Dirty lines of *other* rows exist
    // nowhere else — pinRow must hand them to the caller for
    // writeback rather than discard them with the reservation.
    CacheConfig cfg;
    Llc llc(cfg, 8192, 66);
    // A dirty line of a foreign row that maps into set 0, inside
    // row 0's reserved range: addr = lineBytes * numSets.
    const Addr foreign =
        static_cast<Addr>(cfg.lineBytes) * cfg.numSets();
    llc.access(foreign, true);
    // A clean foreign line in the same range must NOT be surfaced.
    const Addr cleanForeign = 2 * foreign;
    llc.access(cleanForeign, false);
    // Row 0's own line: absorbed by the pinned copy, not surfaced.
    llc.access(64, true);

    std::vector<Addr> evicted;
    ASSERT_TRUE(llc.pinRow(0, &evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], foreign);
    EXPECT_EQ(llc.stats().get("pin_evictions"), 1u);
}

} // namespace
} // namespace srs
