/**
 * @file
 * Farm subsystem coverage: hostfile parsing and slot expansion, the
 * journal-based progress channel (scans, rate/ETA clock, JSON and
 * table snapshots), transport plumbing over LocalTransport, and the
 * dispatcher's configuration and skip/fail contracts.  Live
 * multi-host dispatch with kills and restarts is exercised
 * end-to-end by tests/cli_smoke.cmake and the CI farm smoke job.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/subprocess.hh"
#include "farm/dispatcher.hh"
#include "farm/hostfile.hh"
#include "farm/progress.hh"
#include "farm/transport.hh"
#include "sim/orchestrator.hh"
#include "sim/sweep.hh"

namespace srs
{
namespace
{

/** Small budget so a full sweep stays fast in Debug CI. */
ExperimentConfig
tinyExperiment()
{
    ExperimentConfig exp;
    exp.cycles = 60'000;
    exp.epochLen = 25'000;
    return exp;
}

/** 2 workloads x 1 mitigation x 1 trh x 1 rate: 2 one-cell shards. */
SweepGrid
testGrid()
{
    SweepGrid grid;
    grid.workloads = {WorkloadSpec::synthetic("gups"),
                      WorkloadSpec::synthetic("gcc")};
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {1200};
    grid.swapRates = {3};
    return grid;
}

/** Write @p text to @p name under the test temp dir; returns path. */
std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(Hostfile, RoundTripsThroughDisk)
{
    std::vector<HostSpec> fleet;
    fleet.push_back({"local", 2, "", ""});
    fleet.push_back({"user@node1", 4, "/opt/srs/bin/srs_sim",
                     "/scratch/srs"});
    const std::string path =
        writeTempFile("hosts_rt.conf", serializeHostfile(fleet));
    const std::vector<HostSpec> loaded = loadHostfile(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].host, "local");
    EXPECT_EQ(loaded[0].jobs, 2u);
    EXPECT_TRUE(loaded[0].isLocal());
    EXPECT_EQ(loaded[1].host, "user@node1");
    EXPECT_EQ(loaded[1].jobs, 4u);
    EXPECT_EQ(loaded[1].sim, "/opt/srs/bin/srs_sim");
    EXPECT_EQ(loaded[1].workdir, "/scratch/srs");
    EXPECT_FALSE(loaded[1].isLocal());
    EXPECT_EQ(serializeHostfile(loaded), serializeHostfile(fleet));
}

TEST(Hostfile, MisconfiguredFleetsAreFatalByName)
{
    // Unsupported version.
    EXPECT_THROW(loadHostfile(writeTempFile(
                     "hosts_v9.conf",
                     "version=9\nhosts=1\nhost0.host=local\n")),
                 FatalError);
    // No hosts at all.
    EXPECT_THROW(
        loadHostfile(writeTempFile("hosts_none.conf", "version=1\n")),
        FatalError);
    // A host block without its host= key.
    EXPECT_THROW(loadHostfile(writeTempFile(
                     "hosts_nohost.conf",
                     "version=1\nhosts=1\nhost0.jobs=2\n")),
                 FatalError);
    // Zero job slots.
    EXPECT_THROW(
        loadHostfile(writeTempFile(
            "hosts_zerojobs.conf",
            "version=1\nhosts=1\nhost0.host=local\nhost0.jobs=0\n")),
        FatalError);
    // An ssh destination with nowhere to run.
    EXPECT_THROW(loadHostfile(writeTempFile(
                     "hosts_nowork.conf",
                     "version=1\nhosts=1\nhost0.host=node7\n")),
                 FatalError);
    // Typos are fatal, not silently ignored knobs.
    EXPECT_THROW(loadHostfile(writeTempFile(
                     "hosts_typo.conf",
                     "version=1\nhosts=1\nhost0.host=local\n"
                     "host0.slots=4\n")),
                 FatalError);
}

TEST(Hostfile, SlotsExpandHostMajor)
{
    std::vector<HostSpec> fleet;
    fleet.push_back({"a", 2, "", ""});
    fleet.push_back({"local", 1, "", ""});
    const std::vector<std::size_t> slots = expandHostSlots(fleet);
    EXPECT_EQ(slots, (std::vector<std::size_t>{0, 0, 1}));
}

TEST(Transport, ShellQuoteSurvivesHostileStrings)
{
    EXPECT_EQ(shellQuote("plain"), "'plain'");
    EXPECT_EQ(shellQuote("it's"), "'it'\\''s'");
    EXPECT_EQ(shellQuote("a b;rm -rf"), "'a b;rm -rf'");
}

TEST(Transport, LocalLaunchReportsChildExitFaithfully)
{
    std::string dir = testing::TempDir();
    if (!dir.empty() && dir.back() == '/')
        dir.pop_back();
    LocalTransport transport("local", dir);
    EXPECT_EQ(transport.label(), "local");
    EXPECT_EQ(transport.remoteDir(), dir);

    const std::string log = dir + "/transport_test.log";
    std::remove(log.c_str());
    const long ok = transport.launch(
        {"/bin/sh", "-c", "echo transport-was-here"}, log);
    EXPECT_TRUE(processExitedCleanly(waitProcess(ok)));
    EXPECT_NE(readFile(log).find("transport-was-here"),
              std::string::npos);

    const long bad =
        transport.launch({"/bin/sh", "-c", "exit 3"}, log);
    const int status = waitProcess(bad);
    EXPECT_FALSE(processExitedCleanly(status));
    EXPECT_NE(describeProcessExit(status).find("status 3"),
              std::string::npos);
}

TEST(Transport, LocalPullIsAnExistenceCheck)
{
    std::string dir = testing::TempDir();
    if (!dir.empty() && dir.back() == '/')
        dir.pop_back();
    LocalTransport transport("local", dir);
    EXPECT_FALSE(transport.pull("no_such_shard_file.journal"));
    writeTempFile("pull_probe.journal", "row\n");
    EXPECT_TRUE(transport.pull("pull_probe.journal"));
    // push is a no-op locally: the shard writes in place.
    transport.push("pull_probe.journal");
}

TEST(Transport, FactoryDispatchesOnHostName)
{
    EXPECT_NE(dynamic_cast<LocalTransport *>(
                  makeTransport({"local", 1, "", ""}, "/tmp").get()),
              nullptr);
    EXPECT_NE(dynamic_cast<SshTransport *>(
                  makeTransport({"node1", 1, "", "/scratch"}, "/tmp")
                      .get()),
              nullptr);
    // An ssh transport without a workdir cannot exist.
    EXPECT_THROW(makeTransport({"node1", 1, "", ""}, "/tmp"),
                 FatalError);
}

TEST(ProgressClock, RatesNeedTwoAdvancingSamples)
{
    ProgressClock clock(2);
    EXPECT_LT(clock.rowsPerSec(0), 0.0);
    clock.sample(0, 0, 10.0);
    EXPECT_LT(clock.rowsPerSec(0), 0.0); // one sample: unknown
    clock.sample(0, 10, 20.0);
    EXPECT_DOUBLE_EQ(clock.rowsPerSec(0), 1.0);
    EXPECT_DOUBLE_EQ(clock.etaSec(0, 30), 20.0);
    // A shard the clock never saw stays unknown.
    EXPECT_LT(clock.rowsPerSec(1), 0.0);
    EXPECT_LT(clock.etaSec(1, 30), 0.0);
    // Out-of-range shards are harmless.
    EXPECT_LT(clock.rowsPerSec(99), 0.0);
    clock.sample(99, 5, 1.0);
}

TEST(ProgressClock, RestartShrinkResetsTheMeasurement)
{
    ProgressClock clock(1);
    clock.sample(0, 8, 10.0);
    clock.sample(0, 12, 20.0);
    EXPECT_GT(clock.rowsPerSec(0), 0.0);
    // A relaunch resumed from an older checkpoint: the row count
    // went backwards.  The rate must restart, not go negative.
    clock.sample(0, 5, 30.0);
    EXPECT_LT(clock.rowsPerSec(0), 0.0);
    clock.sample(0, 8, 31.0);
    EXPECT_DOUBLE_EQ(clock.rowsPerSec(0), 3.0);
    // At or past the target the ETA is zero, whatever the rate.
    EXPECT_DOUBLE_EQ(clock.etaSec(0, 8), 0.0);
}

TEST(JournalScan, CountsCompleteRowsAndSkipsTornTail)
{
    const std::vector<SweepCell> cells = testGrid().expand();
    const ExperimentConfig exp = tinyExperiment();
    const std::uint64_t digest =
        SweepRunner::gridDigest(cells, exp.seed);
    const std::string header =
        SweepRunner::journalHeader(cells, exp.seed);

    const std::string path = writeTempFile(
        "scan_rows.journal",
        header + "\nrow-a\nrow-b\ntorn-final-line-without-newline");
    const JournalScan scan =
        scanShardJournal(path, cells.size(), digest);
    EXPECT_TRUE(scan.exists);
    EXPECT_TRUE(scan.headerSeen);
    EXPECT_TRUE(scan.error.empty()) << scan.error;
    EXPECT_EQ(scan.rows, 2u);

    // A missing journal is "no progress yet", not an error.
    const JournalScan missing = scanShardJournal(
        testing::TempDir() + "no_such.journal", cells.size(), digest);
    EXPECT_FALSE(missing.exists);
    EXPECT_EQ(missing.rows, 0u);
    EXPECT_TRUE(missing.error.empty());

    // Headerless journals (pre-header builds) still scan, and rows
    // clamp to the shard's cell count (resumes re-record rows).
    const std::string old = writeTempFile(
        "scan_headerless.journal", "r0\nr1\nr2\nr3\nr4\n");
    const JournalScan clamped =
        scanShardJournal(old, cells.size(), digest);
    EXPECT_FALSE(clamped.headerSeen);
    EXPECT_TRUE(clamped.error.empty());
    EXPECT_EQ(clamped.rows, cells.size());
}

TEST(JournalScan, ForeignOrStaleJournalsAreRejectedByName)
{
    const std::vector<SweepCell> cells = testGrid().expand();
    const ExperimentConfig exp = tinyExperiment();
    const std::uint64_t digest =
        SweepRunner::gridDigest(cells, exp.seed);

    // A header from a differently-seeded grid names the mismatch.
    const std::string foreign = writeTempFile(
        "scan_foreign.journal",
        SweepRunner::journalHeader(cells, exp.seed ^ 1) + "\nrow\n");
    const JournalScan wrongGrid =
        scanShardJournal(foreign, cells.size(), digest);
    EXPECT_NE(wrongGrid.error.find("different grid"),
              std::string::npos)
        << wrongGrid.error;

    // A stale schema is named, not misread.
    const std::string stale = writeTempFile(
        "scan_stale.journal",
        "# srs_sim sweep journal schema=4 cells=2 "
        "grid=0x0000000000000000 seed=0x0000000000000000\n");
    const JournalScan wrongSchema =
        scanShardJournal(stale, cells.size(), digest);
    EXPECT_NE(wrongSchema.error.find("schema 4"), std::string::npos)
        << wrongSchema.error;

    // A mangled header is an error, never silently skipped.
    const std::string mangled = writeTempFile(
        "scan_mangled.journal", "# srs_sim sweep journal gibberish\n");
    EXPECT_FALSE(
        scanShardJournal(mangled, cells.size(), digest).error.empty());

    // Unrelated comments are fine.
    const std::string chatty = writeTempFile(
        "scan_chatty.journal", "# a note\nrow\n");
    const JournalScan ok =
        scanShardJournal(chatty, cells.size(), digest);
    EXPECT_TRUE(ok.error.empty());
    EXPECT_EQ(ok.rows, 1u);
}

TEST(StatusSnapshot, JsonLinesHaveFixedShape)
{
    std::vector<ShardStatus> shards(2);
    shards[0].index = 0;
    shards[0].state = ShardState::Running;
    shards[0].host = "local";
    shards[0].rows = 2;
    shards[0].cells = 4;
    shards[0].attempts = 1;
    shards[0].rowsPerSec = 1.25;
    shards[0].etaSec = 1.6;
    shards[1].index = 1;
    shards[1].state = ShardState::Done;
    shards[1].host = "user@node1";
    shards[1].rows = 4;
    shards[1].cells = 4;
    shards[1].attempts = 2;
    shards[1].etaSec = 0.0;

    std::ostringstream os;
    writeStatusJson(os, shards);
    EXPECT_EQ(
        os.str(),
        "{\"type\":\"shard\",\"shard\":0,\"state\":\"running\","
        "\"host\":\"local\",\"rows\":2,\"cells\":4,\"pct\":50.0,"
        "\"rows_per_sec\":1.25,\"eta_sec\":1.6,\"attempts\":1}\n"
        "{\"type\":\"shard\",\"shard\":1,\"state\":\"done\","
        "\"host\":\"user@node1\",\"rows\":4,\"cells\":4,"
        "\"pct\":100.0,\"rows_per_sec\":-1,\"eta_sec\":0.0,"
        "\"attempts\":2}\n"
        "{\"type\":\"fleet\",\"shards\":2,\"pending\":0,"
        "\"running\":1,\"done\":1,\"failed\":0,\"rows\":6,"
        "\"cells\":8,\"pct\":75.0,\"rows_per_sec\":1.25,"
        "\"eta_sec\":1.6}\n");

    EXPECT_FALSE(fleetDone(shards));
    shards[0].state = ShardState::Done;
    EXPECT_TRUE(fleetDone(shards));

    std::ostringstream table;
    writeStatusTable(table, shards);
    EXPECT_NE(table.str().find("fleet: 2/2 shards, 6/8 rows"),
              std::string::npos)
        << table.str();
}

TEST(StatusSnapshot, HostLabelsRoundTripThroughTheStatusFile)
{
    std::vector<ShardStatus> shards(2);
    shards[0].index = 0;
    shards[0].host = "local";
    shards[1].index = 1;
    shards[1].host = "user@node1";
    std::ostringstream os;
    writeStatusJson(os, shards);
    const std::string path =
        writeTempFile("farm_rt.status", os.str());

    const std::vector<std::string> hosts =
        readHostsFromStatus(path, 2);
    ASSERT_EQ(hosts.size(), 2u);
    EXPECT_EQ(hosts[0], "local");
    EXPECT_EQ(hosts[1], "user@node1");

    // Missing status file: empty labels, never an error — monitor
    // must work from the journals alone.
    const std::vector<std::string> none = readHostsFromStatus(
        testing::TempDir() + "no_such.status", 2);
    EXPECT_EQ(none, std::vector<std::string>(2));
}

/**
 * Run every shard of @p manifest in-process and write its CSV (and
 * journal) into @p dir, as finished `srs_sim sweep` children would.
 */
void
completeShardsInProcess(const ShardManifest &manifest,
                        const std::string &dir)
{
    std::filesystem::create_directories(dir);
    for (const ShardSpec &shard : manifest.shards) {
        SweepRunner runner(manifest.exp, 2);
        runner.setJournal(dir + "/" + shard.csv + ".journal");
        std::ofstream out(dir + "/" + shard.csv,
                          std::ios::trunc | std::ios::binary);
        SweepRunner::writeCsv(out, runner.run(shard.grid));
    }
}

TEST(Monitor, SnapshotComesFromJournalsAlone)
{
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest =
        planShards(testGrid(), exp, 2);
    std::string dir = testing::TempDir() + "monitor_dir";
    completeShardsInProcess(manifest, dir);

    // Both shards journaled to completion: Done, rows == cells.
    std::vector<ShardStatus> snapshot =
        snapshotFromJournals(manifest, dir, nullptr);
    ASSERT_EQ(snapshot.size(), 2u);
    for (const ShardStatus &s : snapshot) {
        EXPECT_EQ(s.state, ShardState::Done);
        EXPECT_EQ(s.rows, s.cells);
        EXPECT_DOUBLE_EQ(s.etaSec, 0.0);
        EXPECT_EQ(s.host, "-"); // no status file consulted
    }
    EXPECT_TRUE(fleetDone(snapshot));

    // Remove one journal: that shard reads as Pending.
    std::remove(
        (dir + "/" + manifest.shards[1].csv + ".journal").c_str());
    snapshot = snapshotFromJournals(manifest, dir, nullptr);
    EXPECT_EQ(snapshot[0].state, ShardState::Done);
    EXPECT_EQ(snapshot[1].state, ShardState::Pending);
    EXPECT_FALSE(fleetDone(snapshot));

    // A journal whose header names another grid is fatal by name.
    std::ofstream bad(dir + "/" + manifest.shards[1].csv
                      + ".journal");
    bad << SweepRunner::journalHeader(
               manifest.shards[1].grid.expand(), exp.seed ^ 1)
        << "\n";
    bad.close();
    EXPECT_THROW(snapshotFromJournals(manifest, dir, nullptr),
                 FatalError);
}

TEST(FarmDispatcher, MisconfigurationIsFatalBeforeAnyLaunch)
{
    const ShardManifest manifest =
        planShards(testGrid(), tinyExperiment(), 2);
    FarmConfig none;
    EXPECT_THROW(FarmDispatcher(manifest, none), FatalError);
    FarmConfig noSim;
    noSim.dir = "some_dir";
    noSim.hosts = {{"local", 1, "", ""}};
    noSim.simPath = "";
    EXPECT_THROW(FarmDispatcher(manifest, noSim), FatalError);
    FarmConfig noHosts;
    noHosts.dir = "some_dir";
    noHosts.simPath = "/bin/false";
    EXPECT_THROW(FarmDispatcher(manifest, noHosts), FatalError);
}

TEST(FarmDispatcher, CompletedShardsMergeWithoutLaunching)
{
    // Every shard CSV already validates, so a farm pass over the
    // directory — even with more fleet slots than shards and a sim
    // path that could never work — launches nothing and stitches
    // the byte-identical merged CSV.
    const ExperimentConfig exp = tinyExperiment();
    const SweepGrid grid = testGrid();
    const ShardManifest manifest = planShards(grid, exp, 2);
    std::string dir = testing::TempDir() + "farm_done_dir";
    completeShardsInProcess(manifest, dir);

    SweepRunner single(exp, 1);
    std::ostringstream full;
    SweepRunner::writeCsv(full, single.run(grid));

    FarmConfig cfg;
    cfg.dir = dir;
    cfg.simPath = "/bin/false"; // must never be invoked
    cfg.hosts = {{"local", 4, "", ""}, {"local", 4, "", ""}};
    cfg.pollMs = 10;
    FarmDispatcher farm(manifest, cfg);
    std::ostringstream merged;
    farm.run(merged);
    EXPECT_EQ(merged.str(), full.str());
    EXPECT_EQ(farm.launches(), 0u);
    EXPECT_EQ(farm.restarts(), 0u);
    EXPECT_EQ(farm.skippedShards(), manifest.shards.size());
    for (const ShardRunState &state : farm.shardStates())
        EXPECT_TRUE(state.done);

    // The run left a final status snapshot behind: all shards done.
    const std::string status = readFile(dir + "/farm.status");
    EXPECT_NE(status.find("\"type\":\"fleet\""), std::string::npos);
    EXPECT_NE(status.find("\"done\":2"), std::string::npos);
}

TEST(FarmDispatcher, ExhaustedRetriesAreFatalWithTheChildsExit)
{
    // A fleet whose sim always dies: one relaunch (retries=1), then
    // a fatal that carries the child's exit description.
    const ExperimentConfig exp = tinyExperiment();
    const ShardManifest manifest =
        planShards(testGrid(), exp, 1);
    std::string dir = testing::TempDir() + "farm_fail_dir";
    std::filesystem::remove_all(dir);

    FarmConfig cfg;
    cfg.dir = dir;
    cfg.simPath = "/bin/false";
    cfg.hosts = {{"local", 1, "", ""}};
    cfg.retries = 1;
    cfg.pollMs = 10;
    FarmDispatcher farm(manifest, cfg);
    std::ostringstream merged;
    try {
        farm.run(merged);
        FAIL() << "a fleet of /bin/false cannot succeed";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("failed after 2 attempt(s)"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("status 1"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_EQ(farm.launches(), 2u);
    EXPECT_EQ(farm.restarts(), 1u);
    EXPECT_FALSE(farm.shardStates()[0].lastError.empty());
}

} // namespace
} // namespace srs
